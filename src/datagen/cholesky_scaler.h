#ifndef IDEBENCH_DATAGEN_CHOLESKY_SCALER_H_
#define IDEBENCH_DATAGEN_CHOLESKY_SCALER_H_

/// \file cholesky_scaler.h
/// IDEBench's data scaling algorithm (paper §4.2).
///
/// "From the seed dataset we first create a random sample.  We then
///  compute the covariance matrix Σ and perform the Cholesky
///  decomposition on Σ = AᵀA.  To create a new tuple, we first generate a
///  vector X ∼ N(0,1) of random normal variables and induce correlation
///  by computing X̃ = AX.  We then transform X̃ to uniform distribution and
///  finally use the CDF from our sample to transform the uniform
///  variables to a correlated tuple."
///
/// This is a Gaussian copula with empirical marginals.  We estimate the
/// copula on *normal scores* of the sample (rank-transformed), which is
/// the numerically robust variant of the covariance recipe above: the
/// resulting X̃ has exactly unit marginal variance, so Φ(X̃ⱼ) is uniform by
/// construction.  Nominal attributes participate through their dictionary
/// codes; the empirical inverse CDF reproduces their frequencies.
///
/// Functional dependencies (e.g. carrier → carrier_name) would be broken
/// by independent per-column inversion, so dependent columns can be
/// declared and are re-derived from their parent after generation using
/// the mapping observed in the seed.

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/table.h"

namespace idebench::datagen {

/// A functional dependency to preserve while scaling.
struct DerivedColumn {
  std::string column;  // e.g. "carrier_name"
  std::string parent;  // e.g. "carrier"
};

/// Scaling configuration.
struct ScalerConfig {
  /// Number of output rows (may be larger or smaller than the seed).
  int64_t target_rows = 1'000'000;

  /// Size of the random sample used to estimate the copula and marginals.
  int64_t sample_size = 20'000;

  uint64_t seed = 7;

  /// Columns re-derived from a parent after generation.
  std::vector<DerivedColumn> derived;
};

/// Default derived-column set for the flights schema.
std::vector<DerivedColumn> FlightsDerivedColumns();

/// Scales `seed_table` to `config.target_rows` rows.
Result<storage::Table> ScaleDataset(const storage::Table& seed_table,
                                    const ScalerConfig& config);

}  // namespace idebench::datagen

#endif  // IDEBENCH_DATAGEN_CHOLESKY_SCALER_H_
