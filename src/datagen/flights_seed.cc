#include "datagen/flights_seed.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"
#include "common/string_util.h"

namespace idebench::datagen {

using storage::AttributeKind;
using storage::DataType;
using storage::Field;
using storage::Schema;
using storage::Table;

Schema FlightsSchema() {
  return Schema({
      {"flight_date", DataType::kInt64, AttributeKind::kQuantitative},
      {"day_of_week", DataType::kInt64, AttributeKind::kNominal},
      {"dep_time", DataType::kDouble, AttributeKind::kQuantitative},
      {"arr_time", DataType::kDouble, AttributeKind::kQuantitative},
      {"dep_delay", DataType::kDouble, AttributeKind::kQuantitative},
      {"arr_delay", DataType::kDouble, AttributeKind::kQuantitative},
      {"air_time", DataType::kDouble, AttributeKind::kQuantitative},
      {"distance", DataType::kDouble, AttributeKind::kQuantitative},
      {"taxi_in", DataType::kDouble, AttributeKind::kQuantitative},
      {"taxi_out", DataType::kDouble, AttributeKind::kQuantitative},
      {"carrier", DataType::kString, AttributeKind::kNominal},
      {"carrier_name", DataType::kString, AttributeKind::kNominal},
      {"origin_airport", DataType::kString, AttributeKind::kNominal},
      {"origin_state", DataType::kString, AttributeKind::kNominal},
      {"dest_airport", DataType::kString, AttributeKind::kNominal},
  });
}

namespace {

/// Two-letter-plus-digit carrier codes ("AA0", "AB1", ...).
std::string CarrierCode(int i) {
  std::string code;
  code.push_back(static_cast<char>('A' + i / 26 % 26));
  code.push_back(static_cast<char>('A' + i % 26));
  return code;
}

/// Three-letter airport codes ("AAA", "AAB", ...).
std::string AirportCode(int i) {
  std::string code(3, 'A');
  code[2] = static_cast<char>('A' + i % 26);
  code[1] = static_cast<char>('A' + (i / 26) % 26);
  code[0] = static_cast<char>('A' + (i / 676) % 26);
  return code;
}

const char* kStates[] = {
    "AL", "AK", "AZ", "AR", "CA", "CO", "CT", "DE", "FL", "GA",
    "HI", "ID", "IL", "IN", "IA", "KS", "KY", "LA", "ME", "MD",
    "MA", "MI", "MN", "MS", "MO", "MT", "NE", "NV", "NH", "NJ",
    "NM", "NY", "NC", "ND", "OH", "OK", "OR", "PA", "RI", "SC",
    "SD", "TN", "TX", "UT", "VT", "VA", "WA", "WV", "WI", "WY"};
constexpr int kNumStates = 50;

/// Departure hour: morning / midday / evening peaks plus a uniform floor.
double DrawDepTime(Rng* rng) {
  const double u = rng->NextDouble();
  double t;
  if (u < 0.35) {
    t = rng->Gaussian(7.5, 1.4);
  } else if (u < 0.60) {
    t = rng->Gaussian(12.5, 1.8);
  } else if (u < 0.90) {
    t = rng->Gaussian(17.5, 1.9);
  } else {
    t = rng->Uniform(5.0, 23.5);
  }
  while (t < 0.0) t += 24.0;
  while (t >= 24.0) t -= 24.0;
  return t;
}

/// Flight distance in miles: short / medium / long-haul mixture.
double DrawDistance(Rng* rng) {
  const double u = rng->NextDouble();
  double d;
  if (u < 0.30) {
    d = rng->Gaussian(350.0, 120.0);
  } else if (u < 0.75) {
    d = rng->Gaussian(900.0, 250.0);
  } else {
    d = rng->Gaussian(2200.0, 500.0);
  }
  return std::max(d, 80.0);
}

}  // namespace

Result<Table> GenerateFlightsSeed(const FlightsSeedConfig& config) {
  if (config.rows <= 0) return Status::Invalid("rows must be positive");
  if (config.num_carriers < 1 || config.num_airports < 2) {
    return Status::Invalid("need >= 1 carrier and >= 2 airports");
  }

  Table table("flights", FlightsSchema());
  table.Reserve(config.rows);
  Rng rng(config.seed);

  // Pre-generate the carrier and airport universes so dictionary codes are
  // assigned in popularity order (Zipf rank order).
  std::vector<std::string> carriers;
  carriers.reserve(static_cast<size_t>(config.num_carriers));
  for (int i = 0; i < config.num_carriers; ++i) carriers.push_back(CarrierCode(i));
  std::vector<std::string> airports;
  std::vector<int> airport_state;
  airports.reserve(static_cast<size_t>(config.num_airports));
  for (int i = 0; i < config.num_airports; ++i) {
    airports.push_back(AirportCode(i));
    airport_state.push_back(static_cast<int>(rng.UniformInt(0, kNumStates - 1)));
  }

  // Pre-seed the nominal dictionaries in popularity-rank order so that a
  // dictionary code equals the value's Zipf rank (tests and the scaler
  // rely on stable, rank-ordered codes).
  {
    storage::Dictionary& carrier_dict =
        table.MutableColumnByName("carrier")->mutable_dictionary();
    storage::Dictionary& carrier_name_dict =
        table.MutableColumnByName("carrier_name")->mutable_dictionary();
    for (const std::string& c : carriers) {
      carrier_dict.GetOrInsert(c);
      carrier_name_dict.GetOrInsert("Carrier " + c);
    }
    storage::Dictionary& origin_dict =
        table.MutableColumnByName("origin_airport")->mutable_dictionary();
    storage::Dictionary& dest_dict =
        table.MutableColumnByName("dest_airport")->mutable_dictionary();
    for (const std::string& a : airports) {
      origin_dict.GetOrInsert(a);
      dest_dict.GetOrInsert(a);
    }
  }

  storage::Column* c_date = table.MutableColumnByName("flight_date");
  storage::Column* c_dow = table.MutableColumnByName("day_of_week");
  storage::Column* c_dep_time = table.MutableColumnByName("dep_time");
  storage::Column* c_arr_time = table.MutableColumnByName("arr_time");
  storage::Column* c_dep_delay = table.MutableColumnByName("dep_delay");
  storage::Column* c_arr_delay = table.MutableColumnByName("arr_delay");
  storage::Column* c_air_time = table.MutableColumnByName("air_time");
  storage::Column* c_distance = table.MutableColumnByName("distance");
  storage::Column* c_taxi_in = table.MutableColumnByName("taxi_in");
  storage::Column* c_taxi_out = table.MutableColumnByName("taxi_out");
  storage::Column* c_carrier = table.MutableColumnByName("carrier");
  storage::Column* c_carrier_name = table.MutableColumnByName("carrier_name");
  storage::Column* c_origin = table.MutableColumnByName("origin_airport");
  storage::Column* c_origin_state = table.MutableColumnByName("origin_state");
  storage::Column* c_dest = table.MutableColumnByName("dest_airport");

  for (int64_t r = 0; r < config.rows; ++r) {
    const int64_t date = rng.UniformInt(0, config.num_days - 1);
    const int64_t dow = date % 7 + 1;

    const double dep_time = DrawDepTime(&rng);
    const double distance = DrawDistance(&rng);
    const double air_time =
        std::max(20.0, distance / 7.5 + rng.Gaussian(18.0, 8.0));

    // Departure delay: mixture of on-time and exponentially-delayed, with
    // evening departures accumulating more delay (knock-on effects).
    double dep_delay;
    if (rng.Bernoulli(0.65)) {
      dep_delay = rng.Gaussian(-3.0, 5.0);
    } else {
      dep_delay = 5.0 + rng.Exponential(1.0 / 28.0);
    }
    dep_delay += 0.6 * std::max(0.0, dep_time - 12.0);
    dep_delay = std::clamp(dep_delay, -25.0, 480.0);

    double arr_delay = dep_delay + rng.Gaussian(-4.0, 12.0);
    arr_delay = std::clamp(arr_delay, -60.0, 500.0);

    const double taxi_out = 8.0 + rng.Exponential(1.0 / 6.0);
    const double taxi_in = 4.0 + rng.Exponential(1.0 / 3.0);
    double arr_time = dep_time + air_time / 60.0;
    while (arr_time >= 24.0) arr_time -= 24.0;

    const int carrier = static_cast<int>(rng.Zipf(config.num_carriers, 1.1));
    int origin = static_cast<int>(rng.Zipf(config.num_airports, 1.05));
    int dest = static_cast<int>(rng.Zipf(config.num_airports, 1.05));
    if (dest == origin) dest = (dest + 1) % config.num_airports;

    c_date->AppendInt(date);
    c_dow->AppendInt(dow);
    c_dep_time->AppendDouble(dep_time);
    c_arr_time->AppendDouble(arr_time);
    c_dep_delay->AppendDouble(dep_delay);
    c_arr_delay->AppendDouble(arr_delay);
    c_air_time->AppendDouble(air_time);
    c_distance->AppendDouble(distance);
    c_taxi_in->AppendDouble(taxi_in);
    c_taxi_out->AppendDouble(taxi_out);
    c_carrier->AppendString(carriers[static_cast<size_t>(carrier)]);
    c_carrier_name->AppendString("Carrier " +
                                 carriers[static_cast<size_t>(carrier)]);
    c_origin->AppendString(airports[static_cast<size_t>(origin)]);
    c_origin_state->AppendString(
        kStates[airport_state[static_cast<size_t>(origin)]]);
    c_dest->AppendString(airports[static_cast<size_t>(dest)]);
  }

  IDB_RETURN_NOT_OK(table.Validate());
  return table;
}

}  // namespace idebench::datagen
