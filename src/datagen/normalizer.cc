#include "datagen/normalizer.h"

#include <map>
#include <unordered_map>

#include "common/string_util.h"

namespace idebench::datagen {

using storage::AttributeKind;
using storage::Catalog;
using storage::Column;
using storage::DataType;
using storage::Field;
using storage::ForeignKey;
using storage::Schema;
using storage::Table;

std::vector<DimensionSpec> FlightsDimensionSpecs() {
  return {
      {"carriers", {"carrier", "carrier_name"}, "carrier_id"},
      {"airports", {"origin_airport", "origin_state"}, "airport_id"},
  };
}

Result<Catalog> MakeDenormalizedCatalog(std::shared_ptr<Table> denormalized) {
  Catalog catalog;
  IDB_RETURN_NOT_OK(catalog.AddTable(std::move(denormalized)));
  return catalog;
}

Result<Catalog> Normalize(const Table& denormalized,
                          const std::vector<DimensionSpec>& dims) {
  const Schema& schema = denormalized.schema();

  // Column -> owning dimension spec index; -1 keeps it in the fact table.
  std::vector<int> owner(static_cast<size_t>(schema.num_fields()), -1);
  for (size_t d = 0; d < dims.size(); ++d) {
    for (const std::string& col : dims[d].columns) {
      const int idx = schema.FieldIndex(col);
      if (idx < 0) {
        return Status::KeyError("dimension column '" + col +
                                "' not in fact schema");
      }
      if (owner[static_cast<size_t>(idx)] >= 0) {
        return Status::Invalid("column '" + col +
                               "' assigned to two dimensions");
      }
      owner[static_cast<size_t>(idx)] = static_cast<int>(d);
    }
  }

  // Fact schema: untouched columns plus one surrogate FK per dimension.
  Schema fact_schema;
  for (int c = 0; c < schema.num_fields(); ++c) {
    if (owner[static_cast<size_t>(c)] < 0) {
      IDB_RETURN_NOT_OK(fact_schema.AddField(schema.field(c)));
    }
  }
  for (const DimensionSpec& spec : dims) {
    IDB_RETURN_NOT_OK(fact_schema.AddField(
        {spec.key_column, DataType::kInt64, AttributeKind::kNominal}));
  }

  auto fact = std::make_shared<Table>(denormalized.name(), fact_schema);
  fact->Reserve(denormalized.num_rows());

  // Dimension builders: distinct combo (as numeric-view tuple) -> key.
  struct DimBuilder {
    std::shared_ptr<Table> table;
    std::map<std::vector<double>, int64_t> index;
    std::vector<int> source_columns;  // indexes into the denormalized table
  };
  std::vector<DimBuilder> builders;
  for (const DimensionSpec& spec : dims) {
    DimBuilder b;
    Schema dim_schema;
    IDB_RETURN_NOT_OK(dim_schema.AddField(
        {spec.key_column, DataType::kInt64, AttributeKind::kNominal}));
    for (const std::string& col : spec.columns) {
      const int idx = schema.FieldIndex(col);
      IDB_RETURN_NOT_OK(dim_schema.AddField(schema.field(idx)));
      b.source_columns.push_back(idx);
    }
    b.table = std::make_shared<Table>(spec.table_name, dim_schema);
    builders.push_back(std::move(b));
  }

  // Single pass over the fact data.
  const int64_t n = denormalized.num_rows();
  std::vector<double> combo;
  for (int64_t r = 0; r < n; ++r) {
    // Untouched fact columns.
    for (int c = 0; c < schema.num_fields(); ++c) {
      if (owner[static_cast<size_t>(c)] >= 0) continue;
      const Column& src = denormalized.column(c);
      Column* dst = fact->MutableColumnByName(src.name());
      dst->AppendFrom(src, r);
    }
    // Dimension keys.
    for (size_t d = 0; d < builders.size(); ++d) {
      DimBuilder& b = builders[d];
      combo.clear();
      for (int src_col : b.source_columns) {
        combo.push_back(denormalized.column(src_col).ValueAsDouble(r));
      }
      auto it = b.index.find(combo);
      int64_t key;
      if (it == b.index.end()) {
        key = static_cast<int64_t>(b.index.size());
        b.index.emplace(combo, key);
        // Materialize the dimension row.
        b.table->mutable_column(0).AppendInt(key);
        for (size_t j = 0; j < b.source_columns.size(); ++j) {
          const Column& src = denormalized.column(b.source_columns[j]);
          b.table->mutable_column(static_cast<int>(j) + 1).AppendFrom(src, r);
        }
      } else {
        key = it->second;
      }
      fact->MutableColumnByName(dims[d].key_column)->AppendInt(key);
    }
  }

  Catalog catalog;
  IDB_RETURN_NOT_OK(catalog.AddTable(fact));
  for (size_t d = 0; d < builders.size(); ++d) {
    IDB_RETURN_NOT_OK(catalog.AddTable(builders[d].table));
    IDB_RETURN_NOT_OK(catalog.AddForeignKey(
        {dims[d].key_column, dims[d].table_name, dims[d].key_column}));
  }
  return catalog;
}

}  // namespace idebench::datagen
