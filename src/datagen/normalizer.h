#ifndef IDEBENCH_DATAGEN_NORMALIZER_H_
#define IDEBENCH_DATAGEN_NORMALIZER_H_

/// \file normalizer.h
/// Star-schema normalization (paper §4.2: "the data generator then
/// vertically partitions the data into multiple tables (normalization)
/// based on a user-given schema specification").
///
/// A `DimensionSpec` names a set of columns that move into a dimension
/// table.  The normalizer builds one row per distinct value combination,
/// assigns a surrogate integer key, and replaces the columns in the fact
/// table with a single foreign-key column.

#include <string>
#include <vector>

#include "common/result.h"
#include "storage/catalog.h"

namespace idebench::datagen {

/// One dimension to extract.
struct DimensionSpec {
  std::string table_name;            // e.g. "carriers"
  std::vector<std::string> columns;  // e.g. {"carrier", "carrier_name"}
  std::string key_column;            // e.g. "carrier_id"
};

/// Default normalization of the flights schema: carriers and airports
/// dimensions (paper §5.3 normalizes exactly these two).
std::vector<DimensionSpec> FlightsDimensionSpecs();

/// Wraps `denormalized` as a single-table catalog.
Result<storage::Catalog> MakeDenormalizedCatalog(
    std::shared_ptr<storage::Table> denormalized);

/// Vertically partitions `denormalized` into a star schema.
Result<storage::Catalog> Normalize(const storage::Table& denormalized,
                                   const std::vector<DimensionSpec>& dims);

}  // namespace idebench::datagen

#endif  // IDEBENCH_DATAGEN_NORMALIZER_H_
