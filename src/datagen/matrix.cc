#include "datagen/matrix.h"

#include <cmath>

namespace idebench::datagen {

Matrix Matrix::Identity(int n) {
  Matrix m(n, n);
  for (int i = 0; i < n; ++i) m.at(i, i) = 1.0;
  return m;
}

std::vector<double> Matrix::MultiplyVector(const std::vector<double>& x) const {
  std::vector<double> y(static_cast<size_t>(rows_), 0.0);
  for (int r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (int c = 0; c < cols_; ++c) acc += at(r, c) * x[static_cast<size_t>(c)];
    y[static_cast<size_t>(r)] = acc;
  }
  return y;
}

namespace {

/// One Cholesky attempt; false when a pivot is non-positive.
bool TryCholesky(const Matrix& m, double jitter, Matrix* out) {
  const int n = m.rows();
  Matrix l(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j <= i; ++j) {
      double sum = m.at(i, j) + (i == j ? jitter : 0.0);
      for (int k = 0; k < j; ++k) sum -= l.at(i, k) * l.at(j, k);
      if (i == j) {
        if (sum <= 0.0) return false;
        l.at(i, j) = std::sqrt(sum);
      } else {
        l.at(i, j) = sum / l.at(j, j);
      }
    }
  }
  *out = std::move(l);
  return true;
}

}  // namespace

Result<Matrix> CholeskyDecompose(const Matrix& m, double initial_jitter) {
  if (m.rows() != m.cols()) {
    return Status::Invalid("Cholesky requires a square matrix");
  }
  if (m.rows() == 0) return Matrix(0, 0);
  Matrix l;
  if (TryCholesky(m, 0.0, &l)) return l;
  for (double jitter = initial_jitter; jitter < 1.0; jitter *= 10.0) {
    if (TryCholesky(m, jitter, &l)) return l;
  }
  return Status::Invalid("matrix is not positive definite even with ridge");
}

Result<Matrix> CorrelationMatrix(
    const std::vector<std::vector<double>>& columns) {
  const int k = static_cast<int>(columns.size());
  if (k == 0) return Matrix(0, 0);
  const size_t n = columns[0].size();
  if (n == 0) return Status::Invalid("correlation of empty columns");
  for (const auto& col : columns) {
    if (col.size() != n) {
      return Status::Invalid("columns have unequal lengths");
    }
  }

  std::vector<double> mean(static_cast<size_t>(k), 0.0);
  std::vector<double> sd(static_cast<size_t>(k), 0.0);
  for (int j = 0; j < k; ++j) {
    double sum = 0.0;
    for (double v : columns[static_cast<size_t>(j)]) sum += v;
    mean[static_cast<size_t>(j)] = sum / static_cast<double>(n);
    double ss = 0.0;
    for (double v : columns[static_cast<size_t>(j)]) {
      const double d = v - mean[static_cast<size_t>(j)];
      ss += d * d;
    }
    sd[static_cast<size_t>(j)] = std::sqrt(ss / static_cast<double>(n));
  }

  Matrix r(k, k);
  for (int i = 0; i < k; ++i) {
    for (int j = i; j < k; ++j) {
      if (i == j) {
        r.at(i, j) = 1.0;
        continue;
      }
      if (sd[static_cast<size_t>(i)] == 0.0 || sd[static_cast<size_t>(j)] == 0.0) {
        r.at(i, j) = r.at(j, i) = 0.0;
        continue;
      }
      double cov = 0.0;
      for (size_t t = 0; t < n; ++t) {
        cov += (columns[static_cast<size_t>(i)][t] - mean[static_cast<size_t>(i)]) *
               (columns[static_cast<size_t>(j)][t] - mean[static_cast<size_t>(j)]);
      }
      cov /= static_cast<double>(n);
      double corr = cov / (sd[static_cast<size_t>(i)] * sd[static_cast<size_t>(j)]);
      if (corr > 1.0) corr = 1.0;
      if (corr < -1.0) corr = -1.0;
      r.at(i, j) = r.at(j, i) = corr;
    }
  }
  return r;
}

}  // namespace idebench::datagen
