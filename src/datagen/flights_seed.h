#ifndef IDEBENCH_DATAGEN_FLIGHTS_SEED_H_
#define IDEBENCH_DATAGEN_FLIGHTS_SEED_H_

/// \file flights_seed.h
/// Synthetic seed dataset with the schema of the paper's default dataset
/// (U.S. domestic flights from the Bureau of Transportation Statistics,
/// Figure 2).  The real BTS file is not redistributable, so this module
/// synthesizes a seed with the same schema and realistic marginal
/// distributions *and* cross-attribute correlations:
///
///  * dep_delay is a mixture of "on time" (normal around -3 min) and
///    "delayed" (exponential tail), with later departures more delayed;
///  * arr_delay tracks dep_delay plus noise;
///  * air_time is an affine function of distance plus noise;
///  * carrier / airport popularity is Zipf-distributed;
///  * day_of_week is derived from flight_date.
///
/// IDEBench's scaling algorithm (see cholesky_scaler.h) then grows this
/// seed to the benchmark sizes, preserving those distributions — exactly
/// the pipeline the paper runs on the real seed.

#include <cstdint>
#include <memory>

#include "common/result.h"
#include "storage/table.h"

namespace idebench::datagen {

/// Configuration for seed synthesis.
struct FlightsSeedConfig {
  int64_t rows = 100'000;
  uint64_t seed = 42;
  int num_carriers = 25;   // paper Exp. 3 bins carriers into 25 bins
  int num_airports = 120;
  int num_days = 730;      // two years of flight dates
};

/// The de-normalized flights schema (paper Figure 2).
storage::Schema FlightsSchema();

/// Synthesizes a seed table per `config`.
Result<storage::Table> GenerateFlightsSeed(const FlightsSeedConfig& config);

}  // namespace idebench::datagen

#endif  // IDEBENCH_DATAGEN_FLIGHTS_SEED_H_
