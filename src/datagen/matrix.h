#ifndef IDEBENCH_DATAGEN_MATRIX_H_
#define IDEBENCH_DATAGEN_MATRIX_H_

/// \file matrix.h
/// Minimal dense linear algebra for the data generator: just enough to
/// estimate a correlation matrix and take its Cholesky factor (paper
/// §4.2: Σ = AᵀA, X̃ = AX).

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace idebench::datagen {

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;

  /// Creates a `rows` x `cols` zero matrix.
  Matrix(int rows, int cols)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows) * static_cast<size_t>(cols), 0.0) {}

  /// Creates the n x n identity.
  static Matrix Identity(int n);

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  double& at(int r, int c) {
    return data_[static_cast<size_t>(r) * static_cast<size_t>(cols_) +
                 static_cast<size_t>(c)];
  }
  double at(int r, int c) const {
    return data_[static_cast<size_t>(r) * static_cast<size_t>(cols_) +
                 static_cast<size_t>(c)];
  }

  /// y = this * x (x.size() must equal cols()).
  std::vector<double> MultiplyVector(const std::vector<double>& x) const;

  bool operator==(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_ &&
           data_ == other.data_;
  }

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<double> data_;
};

/// Lower-triangular Cholesky factor L with M = L * Lᵀ.
///
/// When `m` is not positive definite (common for empirical correlation
/// matrices with collinear columns), a ridge `jitter * I` is added with
/// geometrically increasing jitter until the factorization succeeds.
Result<Matrix> CholeskyDecompose(const Matrix& m, double initial_jitter = 1e-10);

/// Pearson correlation matrix of `columns` (each inner vector is one
/// variable's observations; all must have equal, non-zero length).
/// Degenerate (constant) columns get unit self-correlation and zero
/// cross-correlation.
Result<Matrix> CorrelationMatrix(const std::vector<std::vector<double>>& columns);

}  // namespace idebench::datagen

#endif  // IDEBENCH_DATAGEN_MATRIX_H_
