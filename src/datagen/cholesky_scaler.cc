#include "datagen/cholesky_scaler.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "aqp/confidence.h"
#include "common/random.h"
#include "datagen/matrix.h"

namespace idebench::datagen {

using storage::Column;
using storage::DataType;
using storage::Table;

std::vector<DerivedColumn> FlightsDerivedColumns() {
  return {{"carrier_name", "carrier"},
          {"origin_state", "origin_airport"},
          {"day_of_week", "flight_date"}};
}

namespace {

/// Empirical marginal of one column: sorted numeric-view sample values.
struct Marginal {
  std::vector<double> sorted;

  /// Inverse empirical CDF at u in [0, 1).
  double Quantile(double u) const {
    if (sorted.empty()) return 0.0;
    const size_t idx = std::min(
        sorted.size() - 1,
        static_cast<size_t>(u * static_cast<double>(sorted.size())));
    return sorted[idx];
  }
};

/// Maps parent numeric-view value -> derived numeric-view value, observed
/// from the seed (first occurrence wins; the seed's FDs make this exact).
using FdMap = std::unordered_map<double, double>;

}  // namespace

Result<Table> ScaleDataset(const Table& seed_table,
                           const ScalerConfig& config) {
  if (config.target_rows <= 0) {
    return Status::Invalid("target_rows must be positive");
  }
  const int64_t seed_rows = seed_table.num_rows();
  if (seed_rows == 0) return Status::Invalid("seed table is empty");
  const int k = seed_table.num_columns();

  Rng rng(config.seed);

  // ---- Step 1: random sample of the seed -----------------------------
  const int64_t m = std::min(config.sample_size, seed_rows);
  std::vector<int64_t> sample_rows(static_cast<size_t>(seed_rows));
  for (int64_t i = 0; i < seed_rows; ++i) sample_rows[static_cast<size_t>(i)] = i;
  rng.Shuffle(&sample_rows);
  sample_rows.resize(static_cast<size_t>(m));

  // Identify which columns are generated vs. derived.
  std::vector<int> parent_of(static_cast<size_t>(k), -1);
  for (const DerivedColumn& d : config.derived) {
    const int child = seed_table.ColumnIndex(d.column);
    const int parent = seed_table.ColumnIndex(d.parent);
    if (child < 0 || parent < 0) {
      return Status::KeyError("derived column '" + d.column + "' or parent '" +
                              d.parent + "' not in seed schema");
    }
    if (parent_of[static_cast<size_t>(parent)] >= 0) {
      return Status::Invalid("derived column '" + d.parent +
                             "' cannot also be a parent");
    }
    parent_of[static_cast<size_t>(child)] = parent;
  }
  std::vector<int> generated;  // column indices driven by the copula
  for (int c = 0; c < k; ++c) {
    if (parent_of[static_cast<size_t>(c)] < 0) generated.push_back(c);
  }
  const int g = static_cast<int>(generated.size());

  // ---- Step 2: marginals and normal scores ---------------------------
  std::vector<Marginal> marginals(static_cast<size_t>(g));
  std::vector<std::vector<double>> scores(static_cast<size_t>(g));
  for (int j = 0; j < g; ++j) {
    const Column& col = seed_table.column(generated[static_cast<size_t>(j)]);
    std::vector<double> values(static_cast<size_t>(m));
    for (int64_t i = 0; i < m; ++i) {
      values[static_cast<size_t>(i)] =
          col.ValueAsDouble(sample_rows[static_cast<size_t>(i)]);
    }
    // Normal scores: rank -> Phi^{-1}((rank + 0.5) / m).  Ties share the
    // average rank implicitly through stable sorting of (value, index).
    std::vector<int64_t> order(static_cast<size_t>(m));
    for (int64_t i = 0; i < m; ++i) order[static_cast<size_t>(i)] = i;
    std::sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
      return values[static_cast<size_t>(a)] < values[static_cast<size_t>(b)];
    });
    scores[static_cast<size_t>(j)].resize(static_cast<size_t>(m));
    for (int64_t rank = 0; rank < m; ++rank) {
      const double u =
          (static_cast<double>(rank) + 0.5) / static_cast<double>(m);
      scores[static_cast<size_t>(j)][static_cast<size_t>(order[static_cast<size_t>(rank)])] =
          aqp::NormalQuantile(u);
    }
    Marginal& marg = marginals[static_cast<size_t>(j)];
    marg.sorted = values;
    std::sort(marg.sorted.begin(), marg.sorted.end());
  }

  // ---- Step 3: copula correlation + Cholesky -------------------------
  IDB_ASSIGN_OR_RETURN(Matrix corr, CorrelationMatrix(scores));
  IDB_ASSIGN_OR_RETURN(Matrix chol, CholeskyDecompose(corr));

  // ---- Step 4: functional-dependency maps ----------------------------
  std::vector<FdMap> fd_maps(static_cast<size_t>(k));
  for (int c = 0; c < k; ++c) {
    const int parent = parent_of[static_cast<size_t>(c)];
    if (parent < 0) continue;
    const Column& parent_col = seed_table.column(parent);
    const Column& child_col = seed_table.column(c);
    FdMap& map = fd_maps[static_cast<size_t>(c)];
    for (int64_t r = 0; r < seed_rows; ++r) {
      map.emplace(parent_col.ValueAsDouble(r), child_col.ValueAsDouble(r));
    }
  }

  // ---- Step 5: generate tuples ----------------------------------------
  Table out(seed_table.name(), seed_table.schema());
  out.Reserve(config.target_rows);

  // Pre-seed string dictionaries so numeric-view codes in the output match
  // the seed's codes (required for FD maps and nominal predicates).
  for (int c = 0; c < k; ++c) {
    if (seed_table.column(c).type() == DataType::kString) {
      storage::Dictionary& dict = out.mutable_column(c).mutable_dictionary();
      for (const std::string& v : seed_table.column(c).dictionary().values()) {
        dict.GetOrInsert(v);
      }
    }
  }

  std::vector<double> gauss(static_cast<size_t>(g));
  std::vector<double> row_values(static_cast<size_t>(k), 0.0);
  for (int64_t r = 0; r < config.target_rows; ++r) {
    for (int j = 0; j < g; ++j) gauss[static_cast<size_t>(j)] = rng.Gaussian();
    const std::vector<double> correlated = chol.MultiplyVector(gauss);

    for (int j = 0; j < g; ++j) {
      const double u = aqp::NormalCdf(correlated[static_cast<size_t>(j)]);
      row_values[static_cast<size_t>(generated[static_cast<size_t>(j)])] =
          marginals[static_cast<size_t>(j)].Quantile(u);
    }
    for (int c = 0; c < k; ++c) {
      const int parent = parent_of[static_cast<size_t>(c)];
      if (parent < 0) continue;
      const FdMap& map = fd_maps[static_cast<size_t>(c)];
      auto it = map.find(row_values[static_cast<size_t>(parent)]);
      row_values[static_cast<size_t>(c)] = it != map.end() ? it->second : 0.0;
    }

    for (int c = 0; c < k; ++c) {
      Column& col = out.mutable_column(c);
      const double v = row_values[static_cast<size_t>(c)];
      switch (col.type()) {
        case DataType::kInt64:
          col.AppendInt(static_cast<int64_t>(std::llround(v)));
          break;
        case DataType::kDouble:
          col.AppendDouble(v);
          break;
        case DataType::kString:
          col.AppendCode(static_cast<int64_t>(std::llround(v)));
          break;
      }
    }
  }

  IDB_RETURN_NOT_OK(out.Validate());
  return out;
}

}  // namespace idebench::datagen
