#ifndef IDEBENCH_ENGINES_ENGINE_BASE_H_
#define IDEBENCH_ENGINES_ENGINE_BASE_H_

/// \file engine_base.h
/// Shared plumbing for the concrete engines: catalog/handle bookkeeping,
/// join-index caches (materialized and lazy), query binding, and the
/// shuffled row order used by sampling engines.

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "aqp/sampler.h"
#include "common/random.h"
#include "engines/cost.h"
#include "engines/engine.h"
#include "exec/bound_query.h"

namespace idebench::engines {

/// Common engine state and helpers.
class EngineBase : public Engine {
 public:
  EngineBase(std::string name, double confidence_level, uint64_t seed);

  const std::string& name() const override { return name_; }

  /// Nominal rows the catalog represents (drives the cost model).
  int64_t nominal_rows() const { return nominal_rows_; }

  /// Physically materialized fact rows (drives answers).
  int64_t actual_rows() const { return actual_rows_; }

 protected:
  /// Binds the engine to a catalog; called from Prepare implementations.
  Status Attach(std::shared_ptr<const storage::Catalog> catalog);

  /// True once Attach succeeded.
  bool attached() const { return catalog_ != nullptr; }

  /// Fresh query handle.
  QueryHandle NextHandle() { return next_handle_++; }

  /// Scale-up factor nominal/actual (>= 1 in normal configurations).
  double scale() const { return scale_; }

  /// z-score matching the configured confidence level.
  double z_score() const { return z_; }

  Rng* rng() { return &rng_; }

  const storage::Catalog& catalog() const { return *catalog_; }

  /// Returns the dimension tables `spec` needs joins for.
  Result<std::vector<std::string>> RequiredJoins(
      const query::QuerySpec& spec) const;

  /// Returns (building and caching if needed) the materialized join index
  /// for `dimension`; sets `*built_now` when this call constructed it (the
  /// caller must charge the build cost).
  ///
  /// Threading: join indexes are built *eagerly and completely* here at
  /// bind time — before any morsel dispatch — and a `JoinIndex`'s flat
  /// fact→dim mapping is immutable after construction, so morsel workers
  /// only ever read frozen arrays.  The cache maps themselves are guarded
  /// by `join_mu_` so concurrent Submit calls cannot race on insertion.
  Result<const exec::JoinIndex*> MaterializedJoin(const std::string& dimension,
                                                  bool* built_now);

  /// Returns (building and caching if needed) the lazy join index; same
  /// threading contract as `MaterializedJoin`.
  Result<const exec::JoinIndex*> LazyJoin(const std::string& dimension);

  /// Binds `spec` using materialized (`lazy == false`) or lazy joins.
  /// `spec` must outlive the returned BoundQuery.  `joins_built_now`
  /// (optional) receives the number of materialized indexes constructed
  /// by this call.
  Result<exec::BoundQuery> BindQuery(const query::QuerySpec& spec, bool lazy,
                                     int* joins_built_now = nullptr);

  /// Shared shuffled row order over the fact table (built lazily); the
  /// basis of without-replacement online sampling.
  const aqp::ShuffledIndex& ShuffledRows();

 private:
  std::string name_;
  double confidence_level_;
  double z_;
  Rng rng_;
  std::shared_ptr<const storage::Catalog> catalog_;
  int64_t nominal_rows_ = 0;
  int64_t actual_rows_ = 0;
  double scale_ = 1.0;
  QueryHandle next_handle_ = 1;
  /// Guards the join caches: binding may run while morsel workers of a
  /// previously bound query are still touching *other* join mappings, and
  /// rehashing the cache map must never invalidate anything mid-build.
  std::mutex join_mu_;
  std::unordered_map<std::string, std::unique_ptr<exec::JoinIndex>>
      materialized_joins_;
  std::unordered_map<std::string, std::unique_ptr<exec::JoinIndex>>
      lazy_joins_;
  std::unique_ptr<aqp::ShuffledIndex> shuffled_;
};

/// Canonical signature of a query (bins + aggregates + sorted predicates);
/// used for result reuse and speculative-result matching.
std::string QuerySignature(const query::QuerySpec& spec);

}  // namespace idebench::engines

#endif  // IDEBENCH_ENGINES_ENGINE_BASE_H_
