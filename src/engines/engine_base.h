#ifndef IDEBENCH_ENGINES_ENGINE_BASE_H_
#define IDEBENCH_ENGINES_ENGINE_BASE_H_

/// \file engine_base.h
/// Shared plumbing for the concrete engines: catalog/handle bookkeeping,
/// join-index caches (materialized and lazy), query binding, and the
/// shuffled row order used by sampling engines.

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "aqp/sampler.h"
#include "common/random.h"
#include "engines/cost.h"
#include "engines/engine.h"
#include "exec/bound_query.h"
#include "exec/reuse_cache.h"

namespace idebench::engines {

/// Common engine state and helpers.
class EngineBase : public Engine {
 public:
  EngineBase(std::string name, double confidence_level, uint64_t seed);

  const std::string& name() const override { return name_; }

  /// Nominal rows the catalog represents (drives the cost model).
  int64_t nominal_rows() const { return nominal_rows_; }

  /// Physically materialized fact rows *at attach time* (drives the cost
  /// model and walk offsets).  Deliberately frozen under streaming
  /// ingest: per-query walk offsets hash modulo this value, and reuse
  /// replay requires the same core signature to keep the same offset for
  /// the lifetime of the engine.
  int64_t actual_rows() const { return actual_rows_; }

  /// Fact rows visible under the current published watermark — equals
  /// `actual_rows()` until ingest publishes an epoch.  Queries pin this
  /// at submission and never read past their pinned value.
  int64_t visible_rows() const;

  /// Telemetry of the cross-interaction reuse cache (zeros when off).
  metrics::ReuseCacheStats reuse_cache_stats() const override;

  /// A workflow models a fresh user session: cached physical work must
  /// not carry across the boundary.  Engines overriding this must call
  /// the base implementation.
  void WorkflowStart() override;

  /// Discarding a viz drops its cached snapshots.  Engines overriding
  /// this must call the base implementation.
  void DiscardViz(const std::string& viz) override;

  /// Turns the reuse cache on (Settings::reuse_cache).  First call wins:
  /// callers wanting non-default options (e.g. the invalidate-on-growth
  /// baseline BENCH_ingest.json compares against) invoke this before
  /// `Prepare`, which makes the engine's own opt-in a no-op.
  void EnableReuseCache(const exec::ReuseCacheOptions& options = {});

 protected:
  /// Binds the engine to a catalog; called from Prepare implementations.
  Status Attach(std::shared_ptr<const storage::Catalog> catalog);

  /// True once Attach succeeded.
  bool attached() const { return catalog_ != nullptr; }

  /// Fresh query handle.
  QueryHandle NextHandle() { return next_handle_++; }

  /// Scale-up factor nominal/actual (>= 1 in normal configurations).
  double scale() const { return scale_; }

  /// z-score matching the configured confidence level.
  double z_score() const { return z_; }

  Rng* rng() { return &rng_; }

  /// Engine seed — the base for per-epoch derived streams (walk-segment
  /// and stratified-delta shuffles must be pure functions of
  /// (seed, epoch), never of when the engine observed the publish).
  uint64_t seed() const { return seed_; }

  const storage::Catalog& catalog() const { return *catalog_; }

  /// Returns the dimension tables `spec` needs joins for.
  Result<std::vector<std::string>> RequiredJoins(
      const query::QuerySpec& spec) const;

  /// Returns (building and caching if needed) the materialized join index
  /// for `dimension`; sets `*built_now` when this call constructed it (the
  /// caller must charge the build cost).
  ///
  /// Threading: join indexes are built *eagerly and completely* here at
  /// bind time — before any morsel dispatch — and a `JoinIndex`'s flat
  /// fact→dim mapping is immutable after construction, so morsel workers
  /// only ever read frozen arrays.  The cache maps themselves are guarded
  /// by `join_mu_` so concurrent Submit calls cannot race on insertion.
  Result<const exec::JoinIndex*> MaterializedJoin(const std::string& dimension,
                                                  bool* built_now);

  /// Returns (building and caching if needed) the lazy join index; same
  /// threading contract as `MaterializedJoin`.
  Result<const exec::JoinIndex*> LazyJoin(const std::string& dimension);

  /// Binds `spec` using materialized (`lazy == false`) or lazy joins.
  /// `spec` must outlive the returned BoundQuery.  `joins_built_now`
  /// (optional) receives the number of materialized indexes constructed
  /// by this call.
  Result<exec::BoundQuery> BindQuery(const query::QuerySpec& spec, bool lazy,
                                     int* joins_built_now = nullptr);

  /// Shared shuffled row order over the fact table (built lazily); the
  /// basis of without-replacement online sampling.
  const aqp::ShuffledIndex& ShuffledRows();

  // --- Cross-interaction reuse (exec/reuse_cache.h) --------------------
  //
  // Engines opt in from Prepare via `EnableReuseCache`; every query then
  // (1) builds its aggregator with `MakeAggregatorOptions` so candidates
  // are recorded, (2) acquires a match at Submit, (3) routes each feed
  // advance through `ServeReuse` before processing the remainder
  // physically, and (4) stores its snapshot from Cancel.  All helpers are
  // no-ops when the cache is disabled, keeping engine behavior (and
  // results — see the transparency contract in reuse_cache.h) identical
  // either way.

  /// Turns the cache on sized for `expected_sessions` concurrent
  /// dashboards (session/session.h): the global entry cap scales with
  /// the session count so one session's working set cannot evict every
  /// other session's snapshots; the byte budget stays the fixed
  /// process-level bound.  `expected_sessions <= 1` equals
  /// `EnableReuseCache()`.
  void EnableReuseCacheForSessions(int expected_sessions);

  bool reuse_cache_enabled() const { return reuse_cache_ != nullptr; }

  /// Aggregator options for live queries: default execution knobs, with
  /// match recording on when the cache is enabled.
  exec::BinnedAggregatorOptions MakeAggregatorOptions() const;

  /// Best cached entry for `spec` (empty when disabled or no match).
  exec::ReuseCache::Match AcquireReuse(const query::QuerySpec& spec);

  /// Serves feed positions [begin, end) into `agg` from `match`; returns
  /// the position up to which the cache served (begin when nothing was).
  int64_t ServeReuse(const exec::ReuseCache::Match& match,
                     exec::BinnedAggregator* agg, int64_t begin, int64_t end);

  /// Snapshots `agg` under `spec`'s signature (no-op when disabled);
  /// `lazy_joins` selects the join strategy for the entry's binding.
  void StoreReuse(const query::QuerySpec& spec,
                  const exec::BinnedAggregator& agg, bool lazy_joins);

  /// Deterministic start offset into the shuffled walk for `spec`:
  /// stable-hashed from the engine seed and the spec's *core* signature,
  /// so queries that differ only in their predicate sets share one walk —
  /// the precondition for replaying a cached prefix under a refined
  /// filter — and repeated submissions re-walk identical rows.
  int64_t WalkOffsetFor(const query::QuerySpec& spec) const;

 private:
  std::string name_;
  double confidence_level_;
  double z_;
  uint64_t seed_;
  Rng rng_;
  std::shared_ptr<const storage::Catalog> catalog_;
  int64_t nominal_rows_ = 0;
  int64_t actual_rows_ = 0;
  double scale_ = 1.0;
  QueryHandle next_handle_ = 1;
  /// Guards the join caches: binding may run while morsel workers of a
  /// previously bound query are still touching *other* join mappings, and
  /// rehashing the cache map must never invalidate anything mid-build.
  std::mutex join_mu_;
  std::unordered_map<std::string, std::unique_ptr<exec::JoinIndex>>
      materialized_joins_;
  std::unordered_map<std::string, std::unique_ptr<exec::JoinIndex>>
      lazy_joins_;
  std::unique_ptr<aqp::ShuffledIndex> shuffled_;
  std::unique_ptr<exec::ReuseCache> reuse_cache_;
};

/// Canonical signature of a query (bins + aggregates + canonicalized
/// predicate set); used for result reuse and speculative-result matching.
/// Delegates to `query::QuerySpec::Signature`.
std::string QuerySignature(const query::QuerySpec& spec);

}  // namespace idebench::engines

#endif  // IDEBENCH_ENGINES_ENGINE_BASE_H_
