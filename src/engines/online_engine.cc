#include "engines/online_engine.h"

#include <algorithm>
#include <cmath>

#include "chaos/fault_injector.h"
#include "exec/parallel.h"

namespace idebench::engines {

OnlineEngine::OnlineEngine(OnlineEngineConfig config)
    : EngineBase("online", config.confidence_level, config.seed),
      config_(config) {}

bool OnlineEngine::SupportsOnline(const query::QuerySpec& spec) {
  if (spec.aggregates.size() != 1) return false;
  const query::AggregateType type = spec.aggregates[0].type;
  return type == query::AggregateType::kCount ||
         type == query::AggregateType::kSum;
}

Result<Micros> OnlineEngine::Prepare(
    std::shared_ptr<const storage::Catalog> catalog) {
  IDB_RETURN_NOT_OK(Attach(std::move(catalog)));
  if (config_.reuse_cache) {
    EnableReuseCacheForSessions(config_.expected_sessions);
  }
  double rows = 0.0;
  for (const auto& table : this->catalog().tables()) {
    rows += table.get() == this->catalog().fact_table()
                ? static_cast<double>(nominal_rows())
                : static_cast<double>(table->num_rows());
  }
  return static_cast<Micros>(rows * config_.load_ns_per_row / 1000.0);
}

Result<QueryHandle> OnlineEngine::Submit(const query::QuerySpec& spec) {
  if (!attached()) return Status::Invalid("engine not prepared");
  auto rq = std::make_unique<RunningQuery>();
  rq->spec = spec;
  rq->online = SupportsOnline(spec);
  if (!rq->online && !config_.enable_fallback) {
    return Status::NotImplemented(
        "query not supported online and fallback is disabled");
  }

  int joins_built = 0;
  IDB_ASSIGN_OR_RETURN(
      exec::BoundQuery bound,
      BindQuery(rq->spec, /*lazy=*/rq->online, &joins_built));
  rq->bound = std::make_unique<exec::BoundQuery>(std::move(bound));
  rq->aggregator = std::make_unique<exec::BinnedAggregator>(
      rq->bound.get(), MakeAggregatorOptions());
  rq->reuse = AcquireReuse(rq->spec);

  IDB_ASSIGN_OR_RETURN(std::vector<std::string> dims, RequiredJoins(rq->spec));
  const double mult = ComplexityMultiplier(
      rq->spec, static_cast<int>(dims.size()), config_.factors);
  if (rq->online) {
    // Wander-join-style sampling: each sampled tuple costs sample_us
    // (times complexity), independent of data scale — absolute sample
    // size is what determines estimate quality.  The walk offset is a
    // stable function of the query's core signature, so equal or refined
    // queries re-walk the same rows — the precondition for reuse.
    rq->row_cost_us = config_.sample_us_per_row * mult;
    rq->walk_offset = WalkOffsetFor(rq->spec);
  } else {
    // Blocking fallback at row-store scan speed over the nominal data;
    // the normalized fact table's narrower rows scan faster.
    double scan_ns = config_.fallback_scan_ns_per_row;
    if (this->catalog().is_normalized()) {
      scan_ns *= 1.0 - config_.normalized_scan_discount;
    }
    rq->row_cost_us = scan_ns * mult * scale() / 1000.0;
    // Fallback joins are materialized and charged like a hash join build.
    rq->overhead_remaining += static_cast<Micros>(
        static_cast<double>(joins_built) * static_cast<double>(nominal_rows()) *
        (2.0 * config_.fallback_scan_ns_per_row) / 1000.0);
  }
  rq->overhead_remaining += static_cast<Micros>(config_.query_overhead_us);
  // Pin the published watermark: the walk/scan never reads past it, so
  // the answer is independent of rows staged or published afterwards.
  rq->pinned_rows = visible_rows();

  const QueryHandle handle = NextHandle();
  queries_.emplace(handle, std::move(rq));
  return handle;
}

void OnlineEngine::PublishSnapshot(RunningQuery* rq) {
  query::QueryResult snapshot =
      rq->aggregator->EstimateFromUniformSample(rq->pinned_rows, z_score());
  snapshot.available = rq->aggregator->rows_seen() > 0;
  rq->snapshot = std::move(snapshot);
  rq->last_report_us = rq->work_done_us;
}

Micros OnlineEngine::RunFor(QueryHandle handle, Micros budget) {
  auto it = queries_.find(handle);
  if (it == queries_.end() || budget <= 0) return 0;
  RunningQuery& rq = *it->second;
  if (rq.done || rq.faulted) return 0;
  // Chaos site: transient mid-run failure; the handle wedges and the
  // error surfaces on the next PollResult.
  if (chaos::FaultInjector::Fire(chaos::FaultSite::kEngineRun)) {
    rq.faulted = true;
    return 0;
  }

  Micros consumed = 0;
  const Micros overhead = std::min(budget, rq.overhead_remaining);
  rq.overhead_remaining -= overhead;
  consumed += overhead;
  if (rq.overhead_remaining > 0) return consumed;

  rq.credit_us += static_cast<double>(budget - consumed);
  const int64_t affordable =
      rq.row_cost_us > 0.0
          ? static_cast<int64_t>(rq.credit_us / rq.row_cost_us)
          : rq.pinned_rows;
  const int64_t remaining = rq.pinned_rows - rq.cursor;
  const int64_t todo = std::min(affordable, remaining);
  if (todo > 0) {
    // Positions covered by a cached snapshot (walk and scan positions
    // alike — the mode is a function of the core signature) are served
    // from it; the remainder runs through the physical pipeline.
    const int64_t end = rq.cursor + todo;
    const int64_t served_to =
        ServeReuse(rq.reuse, rq.aggregator.get(), rq.cursor, end);
    if (served_to < end) {
      if (rq.online) {
        // Batched shuffled-walk sampling through the vectorized pipeline.
        exec::ProcessWalkParallel(rq.aggregator.get(), ShuffledRows(),
                                  rq.walk_offset, served_to, end - served_to,
                                  config_.execution_threads);
      } else {
        exec::ProcessRangeParallel(rq.aggregator.get(), served_to, end,
                                   config_.execution_threads);
      }
    }
    rq.cursor += todo;
    const double spent = static_cast<double>(todo) * rq.row_cost_us;
    rq.credit_us -= spent;
    consumed += static_cast<Micros>(std::llround(spent));
    rq.work_done_us += static_cast<Micros>(std::llround(spent));
  }

  if (rq.cursor >= rq.pinned_rows) {
    rq.done = true;
    rq.credit_us = 0.0;
    PublishSnapshot(&rq);
  } else if (rq.online && rq.work_done_us - rq.last_report_us >=
                              config_.report_interval_us) {
    // Intermediate results surface only at report-interval boundaries.
    PublishSnapshot(&rq);
  }
  // Leftover sub-row budget is banked in credit_us, so the whole slice
  // counts as consumed while the query is still running.
  if (!rq.done) return budget;
  return std::min(consumed, budget);
}

bool OnlineEngine::IsDone(QueryHandle handle) const {
  auto it = queries_.find(handle);
  return it != queries_.end() && it->second->done;
}

Result<query::QueryResult> OnlineEngine::PollResult(QueryHandle handle) {
  auto it = queries_.find(handle);
  if (it == queries_.end()) return Status::KeyError("unknown query handle");
  RunningQuery& rq = *it->second;
  if (rq.faulted) {
    return Status::IOError("injected run fault (engine '" + name() + "')");
  }
  if (rq.done) {
    query::QueryResult result = rq.aggregator->ExactResult();
    result.available = true;
    return result;
  }
  if (!rq.online) {
    query::QueryResult pending;
    pending.available = false;
    return pending;
  }
  return rq.snapshot;  // may be unavailable before the first interval
}

void OnlineEngine::Cancel(QueryHandle handle) {
  auto it = queries_.find(handle);
  if (it != queries_.end()) {
    StoreReuse(it->second->spec, *it->second->aggregator,
               /*lazy_joins=*/it->second->online);
    queries_.erase(it);
  }
}

}  // namespace idebench::engines
