#ifndef IDEBENCH_ENGINES_COST_H_
#define IDEBENCH_ENGINES_COST_H_

/// \file cost.h
/// The virtual-time cost model.
///
/// The paper evaluates at 100 M – 1 B tuples on a fixed testbed; this
/// reproduction materializes a scaled-down table and charges engines a
/// calibrated per-*nominal*-row cost, so time requirements behave as they
/// would at paper scale while answers are computed over real data.
/// Calibration targets (documented in EXPERIMENTS.md):
///
///   engine        | path                | cost / nominal row
///   --------------|---------------------|-------------------
///   blocking      | sequential scan+agg | ~5 ns
///   online (XDB)  | online sample       | ~3 µs, fallback scan ~24 ns
///   progressive   | online sample       | ~2 µs
///   stratified    | sample scan         | ~80 ns over the 1 % sample
///
/// A query's effective per-row cost is the base cost times a complexity
/// multiplier derived from its shape (extra aggregates, second binning
/// dimension, predicates, joins).

#include <cstdint>

#include "common/clock.h"
#include "query/spec.h"

namespace idebench::engines {

/// Complexity surcharges (fractions of the base per-row cost).
struct CostFactors {
  double extra_aggregate = 0.25;  // each aggregate beyond the first
  double second_dimension = 0.35; // 2-D binning
  double per_predicate = 0.08;    // each filter predicate
  double per_join = 0.50;         // each dimension join probed per row
  double avg_aggregate = 0.15;    // AVG needs two accumulators
};

/// Multiplier >= 1 for the query's shape.
double ComplexityMultiplier(const query::QuerySpec& spec, int num_joins,
                            const CostFactors& factors);

/// Microseconds to process `rows` nominal rows at `ns_per_row` with the
/// given multiplier.
Micros RowsToMicros(int64_t rows, double ns_per_row, double multiplier);

/// How many nominal rows `budget_us` microseconds buy at this rate.
int64_t MicrosToRows(Micros budget_us, double ns_per_row, double multiplier);

}  // namespace idebench::engines

#endif  // IDEBENCH_ENGINES_COST_H_
