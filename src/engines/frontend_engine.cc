#include "engines/frontend_engine.h"

#include <algorithm>

namespace idebench::engines {

FrontendEngine::FrontendEngine(std::unique_ptr<Engine> backend,
                               FrontendEngineConfig config)
    : name_("frontend+" + backend->name()),
      backend_(std::move(backend)),
      config_(config),
      rng_(config.seed) {}

Result<Micros> FrontendEngine::Prepare(
    std::shared_ptr<const storage::Catalog> catalog) {
  return backend_->Prepare(std::move(catalog));
}

Result<QueryHandle> FrontendEngine::Submit(const query::QuerySpec& spec) {
  IDB_ASSIGN_OR_RETURN(QueryHandle handle, backend_->Submit(spec));
  LayeredQuery layered;
  layered.render_remaining =
      rng_.UniformInt(config_.min_render_us, config_.max_render_us);
  queries_.emplace(handle, layered);
  return handle;
}

Micros FrontendEngine::RunFor(QueryHandle handle, Micros budget) {
  auto it = queries_.find(handle);
  if (it == queries_.end() || budget <= 0) return 0;
  Micros consumed = backend_->RunFor(handle, budget);
  if (backend_->IsDone(handle)) {
    // Rendering happens after the backend result arrives and occupies the
    // interaction timeline just like query time.
    const Micros render = std::min(budget - consumed,
                                   it->second.render_remaining);
    it->second.render_remaining -= render;
    consumed += render;
  }
  return consumed;
}

bool FrontendEngine::IsDone(QueryHandle handle) const {
  auto it = queries_.find(handle);
  if (it == queries_.end()) return false;
  return backend_->IsDone(handle) && it->second.render_remaining == 0;
}

Result<query::QueryResult> FrontendEngine::PollResult(QueryHandle handle) {
  auto it = queries_.find(handle);
  if (it == queries_.end()) return Status::KeyError("unknown query handle");
  if (it->second.render_remaining > 0) {
    // The visualization is not on screen until rendering finishes.
    query::QueryResult pending;
    pending.available = false;
    return pending;
  }
  return backend_->PollResult(handle);
}

void FrontendEngine::Cancel(QueryHandle handle) {
  backend_->Cancel(handle);
  queries_.erase(handle);
}

void FrontendEngine::LinkVizs(const std::string& from, const std::string& to) {
  backend_->LinkVizs(from, to);
}

void FrontendEngine::DiscardViz(const std::string& viz) {
  backend_->DiscardViz(viz);
}

void FrontendEngine::OnThink(Micros duration) { backend_->OnThink(duration); }

void FrontendEngine::WorkflowStart() { backend_->WorkflowStart(); }

void FrontendEngine::WorkflowEnd() { backend_->WorkflowEnd(); }

}  // namespace idebench::engines
