#include "engines/registry.h"

#include "engines/blocking_engine.h"
#include "engines/frontend_engine.h"
#include "engines/online_engine.h"
#include "engines/progressive_engine.h"
#include "engines/stratified_engine.h"

namespace idebench::engines {

const std::vector<std::string>& BuiltinEngineNames() {
  static const std::vector<std::string> kNames = {
      "blocking", "online", "progressive", "stratified", "frontend"};
  return kNames;
}

Result<std::unique_ptr<Engine>> CreateEngine(const std::string& name,
                                             uint64_t seed, int threads,
                                             bool reuse_cache, int sessions) {
  if (threads < 0) {
    return Status::Invalid("threads must be >= 0 (0 = hardware concurrency)");
  }
  if (sessions < 1) {
    return Status::Invalid("sessions must be >= 1");
  }
  if (name == "blocking") {
    BlockingEngineConfig config;
    config.seed += seed;
    config.execution_threads = threads;
    config.reuse_cache = reuse_cache;
    config.expected_sessions = sessions;
    return std::unique_ptr<Engine>(new BlockingEngine(config));
  }
  if (name == "online") {
    OnlineEngineConfig config;
    config.seed += seed;
    config.execution_threads = threads;
    config.reuse_cache = reuse_cache;
    config.expected_sessions = sessions;
    return std::unique_ptr<Engine>(new OnlineEngine(config));
  }
  if (name == "progressive") {
    ProgressiveEngineConfig config;
    config.seed += seed;
    config.execution_threads = threads;
    config.reuse_cache = reuse_cache;
    config.expected_sessions = sessions;
    return std::unique_ptr<Engine>(new ProgressiveEngine(config));
  }
  if (name == "stratified") {
    StratifiedEngineConfig config;
    config.seed += seed;
    config.execution_threads = threads;
    config.reuse_cache = reuse_cache;
    config.expected_sessions = sessions;
    return std::unique_ptr<Engine>(new StratifiedEngine(config));
  }
  if (name == "frontend") {
    BlockingEngineConfig backend_config;
    backend_config.seed += seed;
    backend_config.execution_threads = threads;
    backend_config.reuse_cache = reuse_cache;
    backend_config.expected_sessions = sessions;
    FrontendEngineConfig config;
    config.seed += seed;
    return std::unique_ptr<Engine>(new FrontendEngine(
        std::make_unique<BlockingEngine>(backend_config), config));
  }
  return Status::KeyError("unknown engine '" + name + "'");
}

}  // namespace idebench::engines
