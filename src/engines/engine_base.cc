#include "engines/engine_base.h"

#include <algorithm>

#include "aqp/confidence.h"
#include "chaos/fault_injector.h"

namespace idebench::engines {

EngineBase::EngineBase(std::string name, double confidence_level,
                       uint64_t seed)
    : name_(std::move(name)),
      confidence_level_(confidence_level),
      z_(aqp::ZScoreForConfidence(confidence_level)),
      seed_(seed),
      rng_(seed) {}

Status EngineBase::Attach(std::shared_ptr<const storage::Catalog> catalog) {
  // Chaos site: data preparation fails I/O-style before any state is
  // bound, so a later Prepare retry starts clean and can succeed.
  if (chaos::FaultInjector::Fire(chaos::FaultSite::kEnginePrepare)) {
    return Status::IOError("injected prepare fault (engine '" + name_ + "')");
  }
  if (catalog == nullptr || catalog->fact_table() == nullptr) {
    return Status::Invalid("engine '" + name_ + "': empty catalog");
  }
  if (attached()) {
    return Status::Invalid("engine '" + name_ + "' already prepared");
  }
  catalog_ = std::move(catalog);
  // Visible (published-watermark) rows only: rows staged in an open
  // ingest epoch are invisible to every reader until published.
  actual_rows_ = catalog_->fact_table()->visible_rows();
  nominal_rows_ = catalog_->nominal_rows();
  scale_ = actual_rows_ > 0 ? static_cast<double>(nominal_rows_) /
                                  static_cast<double>(actual_rows_)
                            : 1.0;
  if (scale_ < 1.0) scale_ = 1.0;
  return Status::OK();
}

Result<std::vector<std::string>> EngineBase::RequiredJoins(
    const query::QuerySpec& spec) const {
  return exec::BoundQuery::RequiredJoins(spec, *catalog_);
}

Result<const exec::JoinIndex*> EngineBase::MaterializedJoin(
    const std::string& dimension, bool* built_now) {
  // Coarse once-per-dimension guard: the index is built completely (and
  // its mapping frozen) before the pointer escapes the lock, so morsel
  // workers can gather from it without further synchronization.
  std::lock_guard<std::mutex> lock(join_mu_);
  if (built_now != nullptr) *built_now = false;
  auto it = materialized_joins_.find(dimension);
  if (it != materialized_joins_.end()) return it->second.get();
  const storage::ForeignKey* fk = catalog_->FindForeignKey(dimension);
  if (fk == nullptr) {
    return Status::KeyError("no foreign key to dimension '" + dimension + "'");
  }
  IDB_ASSIGN_OR_RETURN(exec::JoinIndex index,
                       exec::JoinIndex::BuildMaterialized(*catalog_, *fk));
  auto owned = std::make_unique<exec::JoinIndex>(std::move(index));
  const exec::JoinIndex* ptr = owned.get();
  materialized_joins_.emplace(dimension, std::move(owned));
  if (built_now != nullptr) *built_now = true;
  return ptr;
}

Result<const exec::JoinIndex*> EngineBase::LazyJoin(
    const std::string& dimension) {
  std::lock_guard<std::mutex> lock(join_mu_);
  auto it = lazy_joins_.find(dimension);
  if (it != lazy_joins_.end()) return it->second.get();
  const storage::ForeignKey* fk = catalog_->FindForeignKey(dimension);
  if (fk == nullptr) {
    return Status::KeyError("no foreign key to dimension '" + dimension + "'");
  }
  IDB_ASSIGN_OR_RETURN(exec::JoinIndex index,
                       exec::JoinIndex::BuildLazy(*catalog_, *fk));
  auto owned = std::make_unique<exec::JoinIndex>(std::move(index));
  const exec::JoinIndex* ptr = owned.get();
  lazy_joins_.emplace(dimension, std::move(owned));
  return ptr;
}

Result<exec::BoundQuery> EngineBase::BindQuery(const query::QuerySpec& spec,
                                               bool lazy,
                                               int* joins_built_now) {
  if (joins_built_now != nullptr) *joins_built_now = 0;
  IDB_ASSIGN_OR_RETURN(std::vector<std::string> dims, RequiredJoins(spec));
  std::vector<const exec::JoinIndex*> joins;
  for (const std::string& dim : dims) {
    if (lazy) {
      IDB_ASSIGN_OR_RETURN(const exec::JoinIndex* join, LazyJoin(dim));
      joins.push_back(join);
    } else {
      bool built = false;
      IDB_ASSIGN_OR_RETURN(const exec::JoinIndex* join,
                           MaterializedJoin(dim, &built));
      if (built && joins_built_now != nullptr) ++(*joins_built_now);
      joins.push_back(join);
    }
  }
  return exec::BoundQuery::Bind(spec, *catalog_, joins);
}

int64_t EngineBase::visible_rows() const {
  if (catalog_ == nullptr || catalog_->fact_table() == nullptr) return 0;
  return catalog_->fact_table()->visible_rows();
}

namespace {
/// Stream id base for per-epoch walk-segment shuffles, forked from a
/// fresh Rng(seed): far away from any other fork stream in the codebase.
constexpr uint64_t kWalkEpochStreamBase = 0x1DEB0000ULL;
}  // namespace

const aqp::ShuffledIndex& EngineBase::ShuffledRows() {
  if (shuffled_ == nullptr) {
    // Ingest-enabled tables: the base index covers only the first epoch
    // (the pre-ingest rows); epochs published *before* this engine
    // attached are appended below through the same per-epoch streams a
    // live engine would have used, so the walk is a pure function of the
    // table's epoch history, not of when the engine showed up.
    int64_t base = actual_rows_;
    const storage::Table* t = catalog_->fact_table();
    if (t->ingest_enabled() && !t->epoch_boundaries().empty()) {
      base = std::min(base, t->epoch_boundaries().front());
    }
    shuffled_ = std::make_unique<aqp::ShuffledIndex>(base, &rng_);
  }
  // Streaming ingest: cover any epochs published since the last call,
  // one segment per epoch.  Each segment's shuffle is keyed purely by
  // (engine seed, epoch index) — never by the advancing member rng_ or
  // by when this engine happened to observe the publish — so a live run
  // and a pre-staged run that publish the same epochs build identical
  // indexes no matter how publishes interleave with queries.  Earlier
  // segments are never touched (ShuffledIndex prefix property), keeping
  // in-flight walks and cached replay positions valid.
  const storage::Table* fact = catalog_->fact_table();
  if (fact->ingest_enabled()) {
    const std::vector<int64_t>& epochs = fact->epoch_boundaries();
    for (size_t e = 0; e < epochs.size(); ++e) {
      if (epochs[e] > shuffled_->size()) {
        Rng child = Rng(seed_).Fork(kWalkEpochStreamBase + e);
        shuffled_->ExtendTo(epochs[e], &child);
      }
    }
  }
  return *shuffled_;
}

void EngineBase::EnableReuseCache(const exec::ReuseCacheOptions& options) {
  if (reuse_cache_ == nullptr) {
    reuse_cache_ = std::make_unique<exec::ReuseCache>(options);
  }
}

void EngineBase::EnableReuseCacheForSessions(int expected_sessions) {
  exec::ReuseCacheOptions options;
  if (expected_sessions > 1) {
    options.max_entries_total *= expected_sessions;
  }
  EnableReuseCache(options);
}

void EngineBase::WorkflowStart() {
  if (reuse_cache_ != nullptr) reuse_cache_->Clear();
}

void EngineBase::DiscardViz(const std::string& viz) {
  if (reuse_cache_ != nullptr) reuse_cache_->DropViz(viz);
}

metrics::ReuseCacheStats EngineBase::reuse_cache_stats() const {
  return reuse_cache_ != nullptr ? reuse_cache_->stats()
                                 : metrics::ReuseCacheStats{};
}

exec::BinnedAggregatorOptions EngineBase::MakeAggregatorOptions() const {
  exec::BinnedAggregatorOptions options;
  options.record_matches = reuse_cache_enabled();
  return options;
}

exec::ReuseCache::Match EngineBase::AcquireReuse(
    const query::QuerySpec& spec) {
  if (reuse_cache_ == nullptr) return {};
  reuse_cache_->SetEpochWatermark(visible_rows());
  return reuse_cache_->Lookup(spec);
}

int64_t EngineBase::ServeReuse(const exec::ReuseCache::Match& match,
                               exec::BinnedAggregator* agg, int64_t begin,
                               int64_t end) {
  if (reuse_cache_ == nullptr) return begin;
  const int64_t served_to = exec::ReuseCache::Serve(match, agg, begin, end);
  if (served_to > begin) reuse_cache_->AddRowsServed(served_to - begin);
  return served_to;
}

void EngineBase::StoreReuse(const query::QuerySpec& spec,
                            const exec::BinnedAggregator& agg,
                            bool lazy_joins) {
  if (reuse_cache_ == nullptr) return;
  reuse_cache_->SetEpochWatermark(visible_rows());
  reuse_cache_->Store(spec, agg, [this, lazy_joins](const query::QuerySpec& s) {
    return BindQuery(s, lazy_joins);
  });
}

namespace {

/// FNV-1a over a string, finished with a SplitMix64 mix: a stable,
/// platform-independent 64-bit hash (std::hash makes no such promise).
uint64_t StableHash(const std::string& s, uint64_t seed) {
  uint64_t h = 1469598103934665603ULL ^ seed;
  for (const char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ULL;
  }
  h += 0x9e3779b97f4a7c15ULL;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

}  // namespace

int64_t EngineBase::WalkOffsetFor(const query::QuerySpec& spec) const {
  if (actual_rows_ <= 0) return 0;
  const uint64_t h = StableHash(spec.CoreSignature(), seed_);
  return static_cast<int64_t>(h % static_cast<uint64_t>(actual_rows_));
}

std::string QuerySignature(const query::QuerySpec& spec) {
  return spec.Signature();
}

}  // namespace idebench::engines
