#include "engines/engine_base.h"

#include <algorithm>

#include "aqp/confidence.h"

namespace idebench::engines {

EngineBase::EngineBase(std::string name, double confidence_level,
                       uint64_t seed)
    : name_(std::move(name)),
      confidence_level_(confidence_level),
      z_(aqp::ZScoreForConfidence(confidence_level)),
      rng_(seed) {}

Status EngineBase::Attach(std::shared_ptr<const storage::Catalog> catalog) {
  if (catalog == nullptr || catalog->fact_table() == nullptr) {
    return Status::Invalid("engine '" + name_ + "': empty catalog");
  }
  if (attached()) {
    return Status::Invalid("engine '" + name_ + "' already prepared");
  }
  catalog_ = std::move(catalog);
  actual_rows_ = catalog_->fact_table()->num_rows();
  nominal_rows_ = catalog_->nominal_rows();
  scale_ = actual_rows_ > 0 ? static_cast<double>(nominal_rows_) /
                                  static_cast<double>(actual_rows_)
                            : 1.0;
  if (scale_ < 1.0) scale_ = 1.0;
  return Status::OK();
}

Result<std::vector<std::string>> EngineBase::RequiredJoins(
    const query::QuerySpec& spec) const {
  return exec::BoundQuery::RequiredJoins(spec, *catalog_);
}

Result<const exec::JoinIndex*> EngineBase::MaterializedJoin(
    const std::string& dimension, bool* built_now) {
  // Coarse once-per-dimension guard: the index is built completely (and
  // its mapping frozen) before the pointer escapes the lock, so morsel
  // workers can gather from it without further synchronization.
  std::lock_guard<std::mutex> lock(join_mu_);
  if (built_now != nullptr) *built_now = false;
  auto it = materialized_joins_.find(dimension);
  if (it != materialized_joins_.end()) return it->second.get();
  const storage::ForeignKey* fk = catalog_->FindForeignKey(dimension);
  if (fk == nullptr) {
    return Status::KeyError("no foreign key to dimension '" + dimension + "'");
  }
  IDB_ASSIGN_OR_RETURN(exec::JoinIndex index,
                       exec::JoinIndex::BuildMaterialized(*catalog_, *fk));
  auto owned = std::make_unique<exec::JoinIndex>(std::move(index));
  const exec::JoinIndex* ptr = owned.get();
  materialized_joins_.emplace(dimension, std::move(owned));
  if (built_now != nullptr) *built_now = true;
  return ptr;
}

Result<const exec::JoinIndex*> EngineBase::LazyJoin(
    const std::string& dimension) {
  std::lock_guard<std::mutex> lock(join_mu_);
  auto it = lazy_joins_.find(dimension);
  if (it != lazy_joins_.end()) return it->second.get();
  const storage::ForeignKey* fk = catalog_->FindForeignKey(dimension);
  if (fk == nullptr) {
    return Status::KeyError("no foreign key to dimension '" + dimension + "'");
  }
  IDB_ASSIGN_OR_RETURN(exec::JoinIndex index,
                       exec::JoinIndex::BuildLazy(*catalog_, *fk));
  auto owned = std::make_unique<exec::JoinIndex>(std::move(index));
  const exec::JoinIndex* ptr = owned.get();
  lazy_joins_.emplace(dimension, std::move(owned));
  return ptr;
}

Result<exec::BoundQuery> EngineBase::BindQuery(const query::QuerySpec& spec,
                                               bool lazy,
                                               int* joins_built_now) {
  if (joins_built_now != nullptr) *joins_built_now = 0;
  IDB_ASSIGN_OR_RETURN(std::vector<std::string> dims, RequiredJoins(spec));
  std::vector<const exec::JoinIndex*> joins;
  for (const std::string& dim : dims) {
    if (lazy) {
      IDB_ASSIGN_OR_RETURN(const exec::JoinIndex* join, LazyJoin(dim));
      joins.push_back(join);
    } else {
      bool built = false;
      IDB_ASSIGN_OR_RETURN(const exec::JoinIndex* join,
                           MaterializedJoin(dim, &built));
      if (built && joins_built_now != nullptr) ++(*joins_built_now);
      joins.push_back(join);
    }
  }
  return exec::BoundQuery::Bind(spec, *catalog_, joins);
}

const aqp::ShuffledIndex& EngineBase::ShuffledRows() {
  if (shuffled_ == nullptr) {
    shuffled_ = std::make_unique<aqp::ShuffledIndex>(actual_rows_, &rng_);
  }
  return *shuffled_;
}

std::string QuerySignature(const query::QuerySpec& spec) {
  JsonValue j = JsonValue::Object();
  JsonValue bins = JsonValue::Array();
  for (const query::BinDimension& d : spec.bins) bins.Append(d.ToJson());
  j.Set("bins", std::move(bins));
  JsonValue aggs = JsonValue::Array();
  for (const query::AggregateSpec& a : spec.aggregates) aggs.Append(a.ToJson());
  j.Set("aggs", std::move(aggs));
  // Predicates are conjunctive, so ordering is irrelevant; sort their
  // serialized forms to make the signature canonical.
  std::vector<std::string> preds;
  for (const expr::Predicate& p : spec.filter.predicates()) {
    preds.push_back(p.ToJson().Dump());
  }
  std::sort(preds.begin(), preds.end());
  // Drop exact duplicates (the same predicate can arrive via several link
  // paths).
  preds.erase(std::unique(preds.begin(), preds.end()), preds.end());
  JsonValue parr = JsonValue::Array();
  for (const std::string& p : preds) parr.Append(p);
  j.Set("filter", std::move(parr));
  return j.Dump();
}

}  // namespace idebench::engines
