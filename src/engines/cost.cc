#include "engines/cost.h"

#include <algorithm>
#include <cmath>

namespace idebench::engines {

double ComplexityMultiplier(const query::QuerySpec& spec, int num_joins,
                            const CostFactors& factors) {
  double mult = 1.0;
  const int num_aggs = static_cast<int>(spec.aggregates.size());
  if (num_aggs > 1) {
    mult *= 1.0 + factors.extra_aggregate * static_cast<double>(num_aggs - 1);
  }
  for (const query::AggregateSpec& agg : spec.aggregates) {
    if (agg.type == query::AggregateType::kAvg) {
      mult *= 1.0 + factors.avg_aggregate;
    }
  }
  if (spec.two_dimensional()) mult *= 1.0 + factors.second_dimension;
  mult *= 1.0 + factors.per_predicate *
                    static_cast<double>(spec.filter.predicates().size());
  if (num_joins > 0) {
    mult *= 1.0 + factors.per_join * static_cast<double>(num_joins);
  }
  return mult;
}

Micros RowsToMicros(int64_t rows, double ns_per_row, double multiplier) {
  const double us =
      static_cast<double>(rows) * ns_per_row * multiplier / 1000.0;
  return static_cast<Micros>(std::llround(us));
}

int64_t MicrosToRows(Micros budget_us, double ns_per_row, double multiplier) {
  if (budget_us <= 0 || ns_per_row <= 0.0) return 0;
  const double rows =
      static_cast<double>(budget_us) * 1000.0 / (ns_per_row * multiplier);
  return static_cast<int64_t>(rows);
}

}  // namespace idebench::engines
