#ifndef IDEBENCH_ENGINES_REGISTRY_H_
#define IDEBENCH_ENGINES_REGISTRY_H_

/// \file registry.h
/// Engine construction by name, the way the benchmark driver's `--driver`
/// flag selects a system adapter in the paper's harness.

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "engines/engine.h"

namespace idebench::engines {

/// Names of all built-in engines:
/// "blocking", "online", "progressive", "stratified", "frontend".
const std::vector<std::string>& BuiltinEngineNames();

/// Creates an engine by name with default configuration.  "frontend"
/// layers the rendering delay over a blocking backend (as in Exp. 5).
/// `seed` perturbs the engine's internal randomness.  `threads` sets the
/// engine's physical execution parallelism (Settings::threads semantics:
/// 1 = single-threaded path, 0 = hardware concurrency).  `reuse_cache`
/// enables the cross-interaction result-reuse cache (Settings::reuse_cache
/// semantics: physical work only, results unchanged).  `sessions` is the
/// number of concurrent exploration sessions the engine is expected to
/// serve (Settings::sessions semantics; sizes per-engine caches, never
/// changes results).
Result<std::unique_ptr<Engine>> CreateEngine(const std::string& name,
                                             uint64_t seed = 0,
                                             int threads = 1,
                                             bool reuse_cache = false,
                                             int sessions = 1);

}  // namespace idebench::engines

#endif  // IDEBENCH_ENGINES_REGISTRY_H_
