#ifndef IDEBENCH_ENGINES_FRONTEND_ENGINE_H_
#define IDEBENCH_ENGINES_FRONTEND_ENGINE_H_

/// \file frontend_engine.h
/// A commercial IDE frontend layered over a DBMS backend (the paper's
/// System Y stand-in, §5.6): it forwards queries to an inner engine and
/// adds a per-query rendering/visualization delay of 1–2 s.  The paper
/// found no evidence of pre-fetching or an intermediate optimization
/// layer in System Y ("renders and updates the visualizations roughly at
/// the same speed as when one uses MonetDB directly, with an added delay
/// of about 1–2 s per query"), so none is modeled.

#include <memory>
#include <string>
#include <unordered_map>

#include "engines/engine.h"
#include "common/random.h"

namespace idebench::engines {

/// Knobs of the frontend layer.
struct FrontendEngineConfig {
  Micros min_render_us = 1'000'000;  // 1 s
  Micros max_render_us = 2'000'000;  // 2 s
  uint64_t seed = 5;
};

/// Frontend layer over an inner engine.
class FrontendEngine : public Engine {
 public:
  FrontendEngine(std::unique_ptr<Engine> backend,
                 FrontendEngineConfig config = {});

  const std::string& name() const override { return name_; }

  Result<Micros> Prepare(
      std::shared_ptr<const storage::Catalog> catalog) override;
  Result<QueryHandle> Submit(const query::QuerySpec& spec) override;
  Micros RunFor(QueryHandle handle, Micros budget) override;
  bool IsDone(QueryHandle handle) const override;
  Result<query::QueryResult> PollResult(QueryHandle handle) override;
  void Cancel(QueryHandle handle) override;

  void LinkVizs(const std::string& from, const std::string& to) override;
  void DiscardViz(const std::string& viz) override;
  void OnThink(Micros duration) override;
  void WorkflowStart() override;
  void WorkflowEnd() override;

  Engine* backend() { return backend_.get(); }

  /// The backend owns any reuse cache; surface its telemetry.
  metrics::ReuseCacheStats reuse_cache_stats() const override {
    return backend_->reuse_cache_stats();
  }

 private:
  struct LayeredQuery {
    Micros render_remaining = 0;  // rendering delay, paid after the backend
  };

  std::string name_;
  std::unique_ptr<Engine> backend_;
  FrontendEngineConfig config_;
  Rng rng_;
  std::unordered_map<QueryHandle, LayeredQuery> queries_;
};

}  // namespace idebench::engines

#endif  // IDEBENCH_ENGINES_FRONTEND_ENGINE_H_
