#ifndef IDEBENCH_ENGINES_ENGINE_H_
#define IDEBENCH_ENGINES_ENGINE_H_

/// \file engine.h
/// The system-adapter interface every engine under test implements
/// (paper §4.5).  The paper's adapters proxy to external processes; here
/// the engines are in-process *cooperative simulators* driven on a
/// virtual clock:
///
///  * `Prepare` ingests a dataset and returns the virtual data-preparation
///    time (CSV load, index/sample construction, warm-up — §5.2).
///  * `Submit` registers a query and returns a handle.
///  * `RunFor` grants the query up to `budget` microseconds of virtual
///    compute; the engine processes as many tuples as its cost model
///    allows and returns the time actually consumed.
///  * `PollResult` fetches the current answer; `available == false` means
///    a frontend would see nothing yet (blocking engine mid-scan).
///  * `OnThink` grants idle time between interactions, which speculative
///    engines may spend on pre-computation (paper §5.4).
///  * `LinkVizs` / `DiscardViz` forward the dashboard topology as hints.
///
/// Concurrency model: the driver grants each concurrent query its own
/// full budget (queries run on distinct cores; the paper's Exp. 4 found
/// no significant concurrency effect on its 20-core testbed).  A
/// contention penalty is available in the driver settings for ablation.

#include <cstdint>
#include <memory>
#include <string>

#include "common/clock.h"
#include "common/result.h"
#include "metrics/metrics.h"
#include "query/result.h"
#include "query/spec.h"
#include "storage/catalog.h"

namespace idebench::engines {

/// Opaque per-query identifier.
using QueryHandle = int64_t;

/// Abstract system under test.
class Engine {
 public:
  virtual ~Engine() = default;

  /// Engine display name ("blocking", "online", ...).
  virtual const std::string& name() const = 0;

  /// Ingests `catalog`; returns virtual preparation time in microseconds.
  /// Must be called exactly once before any Submit.
  virtual Result<Micros> Prepare(
      std::shared_ptr<const storage::Catalog> catalog) = 0;

  /// Registers a query for execution.  The spec's bins must be resolved.
  virtual Result<QueryHandle> Submit(const query::QuerySpec& spec) = 0;

  /// Grants up to `budget` microseconds of virtual work; returns the
  /// amount consumed (less than `budget` when the query completes early
  /// or is already done).
  virtual Micros RunFor(QueryHandle handle, Micros budget) = 0;

  /// True once the query has fully completed.
  virtual bool IsDone(QueryHandle handle) const = 0;

  /// Fetches the current answer (see QueryResult::available).
  virtual Result<query::QueryResult> PollResult(QueryHandle handle) = 0;

  /// Cancels a running query and releases its state.
  virtual void Cancel(QueryHandle handle) = 0;

  /// Dashboard hints (optional).
  virtual void LinkVizs(const std::string& from, const std::string& to) {
    (void)from;
    (void)to;
  }
  virtual void DiscardViz(const std::string& viz) { (void)viz; }

  /// Grants idle (think) time; speculative engines may use it.
  virtual void OnThink(Micros duration) { (void)duration; }

  /// Workflow lifecycle notifications.
  virtual void WorkflowStart() {}
  virtual void WorkflowEnd() {}

  /// Cross-interaction reuse-cache telemetry (exec/reuse_cache.h); zeros
  /// when the engine has no cache or it is disabled.
  virtual metrics::ReuseCacheStats reuse_cache_stats() const { return {}; }
};

}  // namespace idebench::engines

#endif  // IDEBENCH_ENGINES_ENGINE_H_
