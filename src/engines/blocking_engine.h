#ifndef IDEBENCH_ENGINES_BLOCKING_ENGINE_H_
#define IDEBENCH_ENGINES_BLOCKING_ENGINE_H_

/// \file blocking_engine.h
/// A classic analytical column store (the paper's MonetDB stand-in).
///
/// Execution model: every query is a full sequential scan with hash
/// aggregation; joins are materialized fact→dimension indexes built once
/// per dimension (radix-hash-join equivalent).  The result is exact and
/// becomes available only when the scan completes — "upon initiating a
/// query, the run-time of the query is unknown" (paper §5).

#include <memory>
#include <string>
#include <unordered_map>

#include "engines/engine_base.h"
#include "exec/aggregator.h"

namespace idebench::engines {

/// Cost/behavior knobs of the blocking engine.  Defaults are calibrated
/// so a simple aggregation over 500 M nominal rows takes ~2.5 s and CSV
/// ingest takes ~19 min (paper §5.2).
struct BlockingEngineConfig {
  double scan_ns_per_row = 4.5;        // sequential scan+aggregate
  double load_ns_per_row = 2280.0;     // CSV ingest (19 min / 500 M)
  double join_build_ns_per_row = 3.0;  // per fact row, per dimension
  double query_overhead_us = 30'000;   // parse/plan/dispatch
  /// Wider complexity spread than the sampling engines: a column store's
  /// run time reacts strongly to extra aggregates and 2-D grouping, which
  /// is what makes its TR violations fall *gradually* with the time
  /// requirement (Figure 6a) instead of as a step.
  CostFactors factors{/*extra_aggregate=*/0.35, /*second_dimension=*/0.8,
                      /*per_predicate=*/0.12, /*per_join=*/0.12,
                      /*avg_aggregate=*/0.25};
  /// Scan-cost discount on star schemas: moving wide nominal attributes
  /// into dimensions shrinks the fact table, which is why the paper's
  /// Exp. 2 finds both systems slightly *faster* normalized (Figure 6e).
  /// Joins themselves cost `factors.per_join` per probed dimension
  /// (a cached join-index probe is an array lookup, not a hash join).
  double normalized_scan_discount = 0.12;
  double confidence_level = 0.95;
  uint64_t seed = 1;
  /// Physical worker threads for the scan pipeline: 1 = the exact
  /// single-threaded code path, 0 = hardware concurrency, n = n-way
  /// morsel-parallel execution (exec/parallel.h).  Virtual-time cost
  /// accounting is unaffected; this controls wall-clock speed only.
  int execution_threads = 1;
  /// Cross-interaction reuse cache (exec/reuse_cache.h): repeated or
  /// refined scans resume from cached snapshots.  Physical work only;
  /// virtual costs and results are unchanged.
  bool reuse_cache = false;
  /// Concurrent exploration sessions this engine is expected to serve
  /// (session/session.h); sizes the reuse cache's entry cap so one
  /// dashboard's working set cannot evict every other session's.
  int expected_sessions = 1;
};

/// Blocking exact engine.
class BlockingEngine : public EngineBase {
 public:
  explicit BlockingEngine(BlockingEngineConfig config = {});

  Result<Micros> Prepare(
      std::shared_ptr<const storage::Catalog> catalog) override;
  Result<QueryHandle> Submit(const query::QuerySpec& spec) override;
  Micros RunFor(QueryHandle handle, Micros budget) override;
  bool IsDone(QueryHandle handle) const override;
  Result<query::QueryResult> PollResult(QueryHandle handle) override;
  void Cancel(QueryHandle handle) override;

  const BlockingEngineConfig& config() const { return config_; }

 private:
  struct RunningQuery {
    query::QuerySpec spec;
    std::unique_ptr<exec::BoundQuery> bound;
    std::unique_ptr<exec::BinnedAggregator> aggregator;
    exec::ReuseCache::Match reuse;  // cached prefix to serve scans from
    int64_t cursor = 0;            // next actual fact row
    int64_t pinned_rows = 0;       // visible watermark pinned at Submit
    Micros overhead_remaining = 0; // fixed costs to pay before scanning
    double row_cost_us = 0.0;      // virtual cost per actual row
    double credit_us = 0.0;        // sub-row budget carry
    bool done = false;
    bool faulted = false;          // injected run fault; surfaced via Poll
  };

  BlockingEngineConfig config_;
  std::unordered_map<QueryHandle, std::unique_ptr<RunningQuery>> queries_;
};

}  // namespace idebench::engines

#endif  // IDEBENCH_ENGINES_BLOCKING_ENGINE_H_
