#include "engines/progressive_engine.h"

#include <algorithm>
#include <cmath>

#include "chaos/fault_injector.h"
#include "exec/parallel.h"

namespace idebench::engines {

ProgressiveEngine::ProgressiveEngine(ProgressiveEngineConfig config)
    : EngineBase("progressive", config.confidence_level, config.seed),
      config_(config) {}

Result<Micros> ProgressiveEngine::Prepare(
    std::shared_ptr<const storage::Catalog> catalog) {
  IDB_RETURN_NOT_OK(Attach(std::move(catalog)));
  if (config_.reuse_cache) {
    EnableReuseCacheForSessions(config_.expected_sessions);
  }
  first_query_after_prepare_ = true;
  // IDEA "expects data in a single CSV file and does not need any
  // pre-processing"; start-up loads a fixed amount into memory (§5.2).
  return config_.prepare_time_us;
}

Result<std::shared_ptr<ProgressiveEngine::SampleState>>
ProgressiveEngine::MakeState(const query::QuerySpec& spec) {
  auto state = std::make_shared<SampleState>();
  state->spec = spec;
  IDB_ASSIGN_OR_RETURN(exec::BoundQuery bound,
                       BindQuery(state->spec, /*lazy=*/true));
  state->bound = std::make_unique<exec::BoundQuery>(std::move(bound));
  state->aggregator = std::make_unique<exec::BinnedAggregator>(
      state->bound.get(), MakeAggregatorOptions());
  state->reuse = AcquireReuse(state->spec);
  IDB_ASSIGN_OR_RETURN(std::vector<std::string> dims, RequiredJoins(spec));
  const double mult = ComplexityMultiplier(
      spec, static_cast<int>(dims.size()), config_.factors);
  state->row_cost_us = config_.sample_us_per_row * mult;
  // Stable per-core-signature offset: equal or refined queries re-walk
  // the same permutation positions, which is what lets the reuse cache
  // replay one query's candidates under another's filter.
  state->walk_offset = WalkOffsetFor(spec);
  state->pinned_rows = visible_rows();
  return state;
}

Result<QueryHandle> ProgressiveEngine::Submit(const query::QuerySpec& spec) {
  if (!attached()) return Status::Invalid("engine not prepared");
  const std::string signature = QuerySignature(spec);

  auto rq = std::make_unique<RunningQuery>();
  // 1. Reuse a cached sample state for an identical query.
  if (config_.enable_reuse) {
    auto cached = cache_.find(signature);
    if (cached != cache_.end()) {
      rq->state = cached->second;
      ++reuse_hits_;
    }
  }
  // 2. Adopt a speculative pre-execution.
  if (rq->state == nullptr) {
    auto spec_it = speculations_.find(signature);
    if (spec_it != speculations_.end()) {
      rq->state = spec_it->second.state;
      if (rq->state->cursor > 0) ++speculation_hits_;
      speculations_.erase(spec_it);
    }
  }
  // 3. Cold start.
  if (rq->state == nullptr) {
    IDB_ASSIGN_OR_RETURN(rq->state, MakeState(spec));
  }
  // (Re)pin to the watermark current at this submission: an adopted
  // cached state keeps its sample and extends its walk over any epochs
  // published since it last ran.
  rq->state->pinned_rows = visible_rows();
  if (config_.enable_reuse) cache_[signature] = rq->state;

  rq->overhead_remaining = static_cast<Micros>(config_.query_overhead_us);
  if (first_query_after_prepare_) {
    rq->overhead_remaining +=
        static_cast<Micros>(config_.restart_overhead_us);
    first_query_after_prepare_ = false;
  }
  rq->done = rq->state->cursor >= rq->state->pinned_rows;

  if (!spec.viz_name.empty()) last_spec_[spec.viz_name] = spec;
  if (config_.enable_speculation) RefreshSpeculations();

  const QueryHandle handle = NextHandle();
  queries_.emplace(handle, std::move(rq));
  return handle;
}

Micros ProgressiveEngine::AdvanceState(SampleState* state, Micros budget) {
  if (budget <= 0) return 0;
  state->credit_us += static_cast<double>(budget);
  const int64_t affordable =
      state->row_cost_us > 0.0
          ? static_cast<int64_t>(state->credit_us / state->row_cost_us)
          : state->pinned_rows;
  const int64_t remaining = state->pinned_rows - state->cursor;
  const int64_t todo = std::min(affordable, remaining);
  if (todo <= 0) {
    // Either out of budget for even one row, or the walk is complete.
    if (remaining == 0) {
      state->credit_us = 0.0;
      return 0;
    }
    return 0;
  }
  // Walk positions covered by a cached snapshot are served from it; the
  // remainder runs batched shuffled-walk sampling through the vectorized
  // pipeline, morsel-parallel when worker threads are configured.
  const int64_t end = state->cursor + todo;
  const int64_t served_to =
      ServeReuse(state->reuse, state->aggregator.get(), state->cursor, end);
  if (served_to < end) {
    exec::ProcessWalkParallel(state->aggregator.get(), ShuffledRows(),
                              state->walk_offset, served_to, end - served_to,
                              config_.execution_threads);
  }
  state->cursor += todo;
  const double spent = static_cast<double>(todo) * state->row_cost_us;
  state->credit_us -= spent;
  return static_cast<Micros>(std::llround(spent));
}

Micros ProgressiveEngine::RunFor(QueryHandle handle, Micros budget) {
  auto it = queries_.find(handle);
  if (it == queries_.end() || budget <= 0) return 0;
  RunningQuery& rq = *it->second;
  if (rq.done || rq.faulted) return 0;
  // Chaos site: transient mid-run failure; the handle wedges and the
  // error surfaces on the next PollResult.
  if (chaos::FaultInjector::Fire(chaos::FaultSite::kEngineRun)) {
    rq.faulted = true;
    return 0;
  }

  Micros consumed = 0;
  const Micros overhead = std::min(budget, rq.overhead_remaining);
  rq.overhead_remaining -= overhead;
  consumed += overhead;
  if (rq.overhead_remaining > 0) return consumed;

  consumed += AdvanceState(rq.state.get(), budget - consumed);
  if (rq.state->cursor >= rq.state->pinned_rows) rq.done = true;
  // Leftover sub-row budget is banked in the state's credit, so the whole
  // slice counts as consumed while the walk is still running.
  if (!rq.done) return budget;
  return std::min(consumed, budget);
}

bool ProgressiveEngine::IsDone(QueryHandle handle) const {
  auto it = queries_.find(handle);
  return it != queries_.end() && it->second->done;
}

Result<query::QueryResult> ProgressiveEngine::PollResult(QueryHandle handle) {
  auto it = queries_.find(handle);
  if (it == queries_.end()) return Status::KeyError("unknown query handle");
  RunningQuery& rq = *it->second;
  if (rq.faulted) {
    return Status::IOError("injected run fault (engine '" + name() + "')");
  }
  query::QueryResult result = rq.state->aggregator->EstimateFromUniformSample(
      rq.state->pinned_rows, z_score());
  // Fully progressive: anything sampled so far is fetchable immediately.
  result.available = rq.state->aggregator->rows_seen() > 0;
  return result;
}

void ProgressiveEngine::Cancel(QueryHandle handle) {
  // The sample state stays in the semantic reuse cache; only the handle
  // dies.  The cross-interaction cache snapshots the state's progress so
  // later equal/refined queries can skip the physical recomputation.
  auto it = queries_.find(handle);
  if (it != queries_.end()) {
    const SampleState& state = *it->second->state;
    StoreReuse(state.spec, *state.aggregator, /*lazy_joins=*/true);
    queries_.erase(it);
  }
}

void ProgressiveEngine::LinkVizs(const std::string& from,
                                 const std::string& to) {
  const std::pair<std::string, std::string> edge{from, to};
  if (std::find(links_.begin(), links_.end(), edge) == links_.end()) {
    links_.push_back(edge);
  }
  if (config_.enable_speculation) RefreshSpeculations();
}

void ProgressiveEngine::DiscardViz(const std::string& viz) {
  EngineBase::DiscardViz(viz);
  last_spec_.erase(viz);
  links_.erase(std::remove_if(links_.begin(), links_.end(),
                              [&](const auto& edge) {
                                return edge.first == viz || edge.second == viz;
                              }),
               links_.end());
  if (config_.enable_speculation) RefreshSpeculations();
}

void ProgressiveEngine::WorkflowStart() {
  // A workflow models a fresh user session: the dashboard state resets
  // (the base drops the cross-interaction reuse snapshots).
  EngineBase::WorkflowStart();
  links_.clear();
  last_spec_.clear();
  speculations_.clear();
}

void ProgressiveEngine::RefreshSpeculations() {
  // For every link whose endpoint specs are known, enumerate single-bin
  // selections of the source's first binning dimension and pre-plan the
  // target's query under each selection.  Popularity weights come from
  // the source query's current sample counts when available.
  for (const auto& [from, to] : links_) {
    auto from_it = last_spec_.find(from);
    auto to_it = last_spec_.find(to);
    if (from_it == last_spec_.end() || to_it == last_spec_.end()) continue;
    const query::QuerySpec& source = from_it->second;
    const query::QuerySpec& target = to_it->second;
    if (source.bins.empty() || !source.bins[0].resolved) continue;
    const query::BinDimension& dim = source.bins[0];
    const int64_t bins =
        std::min<int64_t>(dim.bin_count,
                          static_cast<int64_t>(config_.max_speculations_per_link));

    // Bin popularity from the source's cached sample, when present.
    std::unordered_map<int64_t, double> popularity;
    if (config_.enable_reuse) {
      auto cached = cache_.find(QuerySignature(source));
      if (cached != cache_.end()) {
        const query::QueryResult sample =
            cached->second->aggregator->EstimateFromUniformSample(
                cached->second->pinned_rows, z_score());
        for (const auto& [key, bin] : sample.bins) {
          if (!bin.values.empty()) {
            popularity[query::BinKeyDim1(key)] = bin.values[0].estimate;
          }
        }
      }
    }

    for (int64_t b = 0; b < bins; ++b) {
      query::QuerySpec candidate = target;
      expr::Predicate selection;
      selection.column = dim.column;
      if (dim.mode == query::BinningMode::kNominal) {
        selection.op = expr::CompareOp::kIn;
        selection.set_values = {dim.lo + static_cast<double>(b)};
        const storage::Table* owner = nullptr;
        auto owner_result = catalog().TableForColumn(dim.column);
        if (owner_result.ok()) owner = owner_result.ValueOrDie();
        selection.string_values = {dim.BinLabel(b, owner)};
      } else {
        selection.op = expr::CompareOp::kRange;
        selection.lo = dim.BinLowerEdge(b);
        selection.hi = dim.BinLowerEdge(b) + dim.width;
      }
      candidate.filter.And(selection);
      // The driver also conjoins the source's own filter into the target
      // query; mirror that.
      for (const expr::Predicate& p : source.filter.predicates()) {
        candidate.filter.And(p);
      }
      const std::string signature = QuerySignature(candidate);
      if (speculations_.count(signature) != 0) continue;
      auto state_result = MakeState(candidate);
      if (!state_result.ok()) continue;
      Speculation spec_entry;
      spec_entry.state = std::move(state_result).MoveValueUnsafe();
      auto pop = popularity.find(b);
      spec_entry.weight = pop != popularity.end() ? std::max(pop->second, 1.0)
                                                  : 1.0;
      speculations_.emplace(signature, std::move(spec_entry));
    }
  }
}

void ProgressiveEngine::OnThink(Micros duration) {
  if (!config_.enable_speculation || speculations_.empty() || duration <= 0) {
    return;
  }
  // Split think time across candidates proportionally to popularity: the
  // engine bets on the selections the user is most likely to make.
  double total_weight = 0.0;
  for (const auto& [sig, spec_entry] : speculations_) {
    total_weight += spec_entry.weight;
  }
  if (total_weight <= 0.0) return;
  for (auto& [sig, spec_entry] : speculations_) {
    const Micros share = static_cast<Micros>(
        static_cast<double>(duration) * spec_entry.weight / total_weight);
    AdvanceState(spec_entry.state.get(), share);
  }
}

}  // namespace idebench::engines
