#include "engines/stratified_engine.h"

#include <algorithm>
#include <cmath>

#include "chaos/fault_injector.h"
#include "exec/parallel.h"

namespace idebench::engines {

StratifiedEngine::StratifiedEngine(StratifiedEngineConfig config)
    : EngineBase("stratified", config.confidence_level, config.seed),
      config_(config) {}

Result<Micros> StratifiedEngine::Prepare(
    std::shared_ptr<const storage::Catalog> catalog) {
  // Reject unsupported layouts *before* attaching: a failed Prepare must
  // leave the engine unprepared (Submit keeps failing cleanly) instead of
  // half-attached with an empty sample.
  if (catalog != nullptr && catalog->fact_table() != nullptr &&
      catalog->is_normalized()) {
    return Status::NotImplemented(
        "the stratified engine only supports de-normalized data");
  }
  IDB_RETURN_NOT_OK(Attach(std::move(catalog)));
  const storage::Table& fact = *this->catalog().fact_table();
  strat_column_ =
      fact.ColumnByName(config_.stratify_by) != nullptr ? config_.stratify_by
                                                        : std::string();
  // Sample the published watermark only: rows staged in an open ingest
  // epoch stay invisible until published (then ExtendSampleFor-
  // PublishedEpochs covers them with per-epoch delta blocks).
  sampled_watermark_ = fact.visible_rows();
  IDB_ASSIGN_OR_RETURN(
      sample_, aqp::BuildStratifiedSample(fact, strat_column_,
                                          config_.sampling_rate,
                                          config_.min_rows_per_stratum, rng(),
                                          /*row_begin=*/0,
                                          /*row_end=*/sampled_watermark_));
  if (config_.reuse_cache) {
    EnableReuseCacheForSessions(config_.expected_sessions);
  }
  // Preparation = CSV ingest + offline sample construction + warm-up
  // query over the sample (paper §5.2: 27 min at 500 M).
  const double nominal = static_cast<double>(nominal_rows());
  const double load_us = nominal * config_.load_ns_per_row / 1000.0;
  const double build_us =
      nominal *
      (config_.sample_build_scan_ns_per_row +
       config_.sampling_rate * config_.sample_build_write_ns_per_sample) /
      1000.0;
  const double warmup_us = nominal * config_.sampling_rate *
                           config_.sample_scan_ns_per_row / 1000.0;
  return static_cast<Micros>(load_us + build_us + warmup_us);
}

namespace {
/// Stream id base for per-epoch stratified delta-sample shuffles, forked
/// from a fresh Rng(seed); disjoint from the walk-segment stream base in
/// engine_base.cc.
constexpr uint64_t kStratifiedEpochStreamBase = 0x1DEB1000ULL;
}  // namespace

void StratifiedEngine::ExtendSampleForPublishedEpochs() {
  const storage::Table& fact = *catalog().fact_table();
  if (!fact.ingest_enabled()) return;
  const std::vector<int64_t>& epochs = fact.epoch_boundaries();
  for (size_t e = 0; e < epochs.size(); ++e) {
    if (epochs[e] <= sampled_watermark_) continue;
    Rng child = Rng(seed()).Fork(kStratifiedEpochStreamBase + e);
    auto delta = aqp::BuildStratifiedSample(
        fact, strat_column_, config_.sampling_rate,
        config_.min_rows_per_stratum, &child, sampled_watermark_, epochs[e]);
    if (!delta.ok()) continue;
    const aqp::StratifiedSample& block = *delta;
    sample_.rows.insert(sample_.rows.end(), block.rows.begin(),
                        block.rows.end());
    sample_.weights.insert(sample_.weights.end(), block.weights.begin(),
                           block.weights.end());
    sample_.base_rows += block.base_rows;
    sampled_watermark_ = epochs[e];
  }
}

Result<QueryHandle> StratifiedEngine::Submit(const query::QuerySpec& spec) {
  if (!attached()) return Status::Invalid("engine not prepared");
  IDB_ASSIGN_OR_RETURN(std::vector<std::string> dims, RequiredJoins(spec));
  if (!dims.empty()) {
    return Status::NotImplemented("stratified engine does not support joins");
  }
  // Cover any epochs published since the last submission before pinning
  // this query's sample extent.
  ExtendSampleForPublishedEpochs();

  auto rq = std::make_unique<RunningQuery>();
  rq->spec = spec;
  IDB_ASSIGN_OR_RETURN(exec::BoundQuery bound,
                       BindQuery(rq->spec, /*lazy=*/true));
  rq->bound = std::make_unique<exec::BoundQuery>(std::move(bound));
  rq->aggregator = std::make_unique<exec::BinnedAggregator>(
      rq->bound.get(), MakeAggregatorOptions());
  rq->reuse = AcquireReuse(rq->spec);

  const double mult = ComplexityMultiplier(rq->spec, 0, config_.factors);
  // Scanning the whole sample costs rate * nominal * ns; spread evenly
  // over the actual sample rows.
  const double total_us = static_cast<double>(nominal_rows()) *
                          config_.sampling_rate *
                          config_.sample_scan_ns_per_row * mult / 1000.0;
  rq->row_cost_us =
      sample_.size() > 0 ? total_us / static_cast<double>(sample_.size()) : 0.0;
  rq->overhead_remaining = static_cast<Micros>(config_.query_overhead_us);
  rq->pinned_sample = sample_.size();

  const QueryHandle handle = NextHandle();
  queries_.emplace(handle, std::move(rq));
  return handle;
}

Micros StratifiedEngine::RunFor(QueryHandle handle, Micros budget) {
  auto it = queries_.find(handle);
  if (it == queries_.end() || budget <= 0) return 0;
  RunningQuery& rq = *it->second;
  if (rq.done || rq.faulted) return 0;
  // Chaos site: transient mid-run failure; the handle wedges and the
  // error surfaces on the next PollResult.
  if (chaos::FaultInjector::Fire(chaos::FaultSite::kEngineRun)) {
    rq.faulted = true;
    return 0;
  }

  Micros consumed = 0;
  const Micros overhead = std::min(budget, rq.overhead_remaining);
  rq.overhead_remaining -= overhead;
  consumed += overhead;
  if (rq.overhead_remaining > 0) return consumed;

  rq.credit_us += static_cast<double>(budget - consumed);
  const int64_t affordable =
      rq.row_cost_us > 0.0
          ? static_cast<int64_t>(rq.credit_us / rq.row_cost_us)
          : rq.pinned_sample;
  const int64_t remaining = rq.pinned_sample - rq.cursor;
  const int64_t todo = std::min(affordable, remaining);
  if (todo > 0) {
    // Sample positions covered by a cached snapshot are served from it
    // (candidates carry their stratum weights).  The sample is laid out
    // stratum by stratum, so per-row weights of the remainder form runs
    // of equal values; feed each run as one weighted batch through the
    // vectorized pipeline.
    const int64_t end = rq.cursor + todo;
    const int64_t served_to =
        ServeReuse(rq.reuse, rq.aggregator.get(), rq.cursor, end);
    for (int64_t i = served_to; i < end;) {
      const size_t pos = static_cast<size_t>(i);
      const double w = sample_.weights[pos];
      int64_t j = i + 1;
      while (j < end && sample_.weights[static_cast<size_t>(j)] == w) {
        ++j;
      }
      exec::ProcessBatchParallel(rq.aggregator.get(), &sample_.rows[pos],
                                 j - i, w, config_.execution_threads);
      i = j;
    }
    rq.cursor += todo;
    const double spent = static_cast<double>(todo) * rq.row_cost_us;
    rq.credit_us -= spent;
    consumed += static_cast<Micros>(std::llround(spent));
  }
  if (rq.cursor >= rq.pinned_sample) {
    rq.done = true;
    rq.credit_us = 0.0;
  }
  // Leftover sub-row budget is banked in credit_us, so the whole slice
  // counts as consumed while the query is still running.
  if (!rq.done) return budget;
  return std::min(consumed, budget);
}

bool StratifiedEngine::IsDone(QueryHandle handle) const {
  auto it = queries_.find(handle);
  return it != queries_.end() && it->second->done;
}

Result<query::QueryResult> StratifiedEngine::PollResult(QueryHandle handle) {
  auto it = queries_.find(handle);
  if (it == queries_.end()) return Status::KeyError("unknown query handle");
  const RunningQuery& rq = *it->second;
  if (rq.faulted) {
    return Status::IOError("injected run fault (engine '" + name() + "')");
  }
  if (!rq.done) {
    // The sample scan is blocking: no intermediate results.
    query::QueryResult pending;
    pending.available = false;
    return pending;
  }
  query::QueryResult result =
      rq.aggregator->EstimateFromWeightedSample(z_score());
  result.available = true;
  // Progress in nominal terms: the whole sample covers `sampling_rate` of
  // the data.
  result.progress = config_.sampling_rate;
  return result;
}

void StratifiedEngine::Cancel(QueryHandle handle) {
  auto it = queries_.find(handle);
  if (it != queries_.end()) {
    StoreReuse(it->second->spec, *it->second->aggregator, /*lazy_joins=*/true);
    queries_.erase(it);
  }
}

}  // namespace idebench::engines
