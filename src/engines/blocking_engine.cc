#include "engines/blocking_engine.h"

#include <algorithm>
#include <cmath>

#include "chaos/fault_injector.h"
#include "exec/parallel.h"

namespace idebench::engines {

BlockingEngine::BlockingEngine(BlockingEngineConfig config)
    : EngineBase("blocking", config.confidence_level, config.seed),
      config_(config) {}

Result<Micros> BlockingEngine::Prepare(
    std::shared_ptr<const storage::Catalog> catalog) {
  IDB_RETURN_NOT_OK(Attach(std::move(catalog)));
  if (config_.reuse_cache) {
    EnableReuseCacheForSessions(config_.expected_sessions);
  }
  // CSV ingest of every table; dimensions are negligible next to the fact
  // table but are charged for completeness.
  double rows = 0.0;
  for (const auto& table : this->catalog().tables()) {
    if (table.get() == this->catalog().fact_table()) {
      rows += static_cast<double>(nominal_rows());
    } else {
      rows += static_cast<double>(table->num_rows());
    }
  }
  return static_cast<Micros>(rows * config_.load_ns_per_row / 1000.0);
}

Result<QueryHandle> BlockingEngine::Submit(const query::QuerySpec& spec) {
  if (!attached()) return Status::Invalid("engine not prepared");
  auto rq = std::make_unique<RunningQuery>();
  rq->spec = spec;

  int joins_built = 0;
  IDB_ASSIGN_OR_RETURN(exec::BoundQuery bound,
                       BindQuery(rq->spec, /*lazy=*/false, &joins_built));
  rq->bound = std::make_unique<exec::BoundQuery>(std::move(bound));
  rq->aggregator = std::make_unique<exec::BinnedAggregator>(
      rq->bound.get(), MakeAggregatorOptions());
  rq->reuse = AcquireReuse(rq->spec);

  IDB_ASSIGN_OR_RETURN(std::vector<std::string> dims, RequiredJoins(rq->spec));
  const double mult = ComplexityMultiplier(
      rq->spec, static_cast<int>(dims.size()), config_.factors);
  // Virtual cost per *actual* row so that scanning all actual rows costs
  // scan_ns * nominal rows.
  double scan_ns = config_.scan_ns_per_row;
  if (this->catalog().is_normalized()) {
    scan_ns *= 1.0 - config_.normalized_scan_discount;
  }
  rq->row_cost_us = scan_ns * mult * scale() / 1000.0;
  rq->overhead_remaining =
      static_cast<Micros>(config_.query_overhead_us) +
      static_cast<Micros>(static_cast<double>(joins_built) *
                          static_cast<double>(nominal_rows()) *
                          config_.join_build_ns_per_row / 1000.0);
  // Pin the published watermark: the scan stops at it, so rows staged or
  // published after submission never leak into the answer.
  rq->pinned_rows = visible_rows();

  const QueryHandle handle = NextHandle();
  queries_.emplace(handle, std::move(rq));
  return handle;
}

Micros BlockingEngine::RunFor(QueryHandle handle, Micros budget) {
  auto it = queries_.find(handle);
  if (it == queries_.end() || budget <= 0) return 0;
  RunningQuery& rq = *it->second;
  if (rq.done || rq.faulted) return 0;
  // Chaos site: the physical pipeline hits a transient I/O-style failure
  // mid-run.  The handle wedges (no further progress) and the error
  // surfaces on the next PollResult, mirroring a real engine whose fetch
  // fails after submission.
  if (chaos::FaultInjector::Fire(chaos::FaultSite::kEngineRun)) {
    rq.faulted = true;
    return 0;
  }

  Micros consumed = 0;
  // Pay fixed costs first.
  const Micros overhead = std::min(budget, rq.overhead_remaining);
  rq.overhead_remaining -= overhead;
  consumed += overhead;
  if (rq.overhead_remaining > 0) return consumed;

  rq.credit_us += static_cast<double>(budget - consumed);
  const int64_t affordable =
      rq.row_cost_us > 0.0
          ? static_cast<int64_t>(rq.credit_us / rq.row_cost_us)
          : rq.pinned_rows;
  const int64_t remaining = rq.pinned_rows - rq.cursor;
  const int64_t todo = std::min(affordable, remaining);
  if (todo > 0) {
    // Scan positions covered by a cached snapshot are served from it; the
    // remainder runs through the physical pipeline as usual (fused
    // kernels + zone-map block skipping — this is the full-scan path the
    // zone maps exist for; the *virtual* cost model still charges every
    // row, only wall-clock work shrinks).
    const int64_t end = rq.cursor + todo;
    const int64_t served_to =
        ServeReuse(rq.reuse, rq.aggregator.get(), rq.cursor, end);
    if (served_to < end) {
      exec::ProcessRangeParallel(rq.aggregator.get(), served_to, end,
                                 config_.execution_threads);
    }
    rq.cursor += todo;
    const double spent = static_cast<double>(todo) * rq.row_cost_us;
    rq.credit_us -= spent;
    consumed += static_cast<Micros>(std::llround(spent));
  }
  if (rq.cursor >= rq.pinned_rows) {
    rq.done = true;
    rq.credit_us = 0.0;
  }
  // Leftover sub-row budget is banked in credit_us, so the whole slice
  // counts as consumed while the query is still running.
  if (!rq.done) return budget;
  return std::min(consumed, budget);
}

bool BlockingEngine::IsDone(QueryHandle handle) const {
  auto it = queries_.find(handle);
  return it != queries_.end() && it->second->done;
}

Result<query::QueryResult> BlockingEngine::PollResult(QueryHandle handle) {
  auto it = queries_.find(handle);
  if (it == queries_.end()) {
    return Status::KeyError("unknown query handle");
  }
  const RunningQuery& rq = *it->second;
  if (rq.faulted) {
    return Status::IOError("injected run fault (engine '" + name() + "')");
  }
  if (!rq.done) {
    // Blocking execution: nothing is fetchable until completion.
    query::QueryResult pending;
    pending.available = false;
    pending.progress = rq.pinned_rows > 0
                           ? static_cast<double>(rq.cursor) /
                                 static_cast<double>(rq.pinned_rows)
                           : 0.0;
    return pending;
  }
  query::QueryResult result = rq.aggregator->ExactResult();
  result.available = true;
  return result;
}

void BlockingEngine::Cancel(QueryHandle handle) {
  auto it = queries_.find(handle);
  if (it != queries_.end()) {
    StoreReuse(it->second->spec, *it->second->aggregator, /*lazy_joins=*/false);
    queries_.erase(it);
  }
}

}  // namespace idebench::engines
