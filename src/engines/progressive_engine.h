#ifndef IDEBENCH_ENGINES_PROGRESSIVE_ENGINE_H_
#define IDEBENCH_ENGINES_PROGRESSIVE_ENGINE_H_

/// \file progressive_engine.h
/// A progressive online-sampling engine in the mold of IDEA (paper §5):
///
///  * fully progressive computation — after submitting a query, a result
///    can be polled at *any* time and improves monotonically;
///  * all aggregate types are supported online;
///  * results of earlier queries are reused: a new query whose canonical
///    signature matches a cached one adopts the cached sample state
///    instead of starting from zero (cf. "Revisiting reuse for
///    approximate query processing");
///  * an experimental speculative mode (paper §5.4 / Exp. 3): when two
///    visualizations are linked, think time is spent pre-executing the
///    target's query for every possible single-bin selection in the
///    source, budgeted proportionally to observed bin popularity.  When
///    the user then selects a bin, the speculative partial result gives
///    the real query a head start.

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "engines/engine_base.h"
#include "exec/aggregator.h"

namespace idebench::engines {

/// Cost/behavior knobs of the progressive engine.
struct ProgressiveEngineConfig {
  /// Cost per sampled tuple.  Calibrated against the materialized data
  /// scale so the quality-vs-TR gradient spans the observable range (see
  /// EXPERIMENTS.md); what carries the paper's findings is the *ratio* to
  /// the online engine's per-tuple cost (progressive is ~3x faster).
  double sample_us_per_row = 8.0;
  Micros prepare_time_us = 180'000'000;  // fixed warm load (3 min, §5.2)
  double query_overhead_us = 10'000;  // dispatch
  /// Extra overhead on the first query after preparation ("slightly
  /// higher overhead for the first query after a restart", §5.2).
  double restart_overhead_us = 600'000;
  bool enable_reuse = true;
  bool enable_speculation = false;    // Exp. 3 extension; off by default
  /// Cap on enumerated single-bin selections per link.
  int max_speculations_per_link = 64;
  CostFactors factors;
  double confidence_level = 0.95;
  uint64_t seed = 3;
  /// Physical worker threads for the shuffled-walk pipeline (1 = exact
  /// single-threaded path, 0 = hardware concurrency; see exec/parallel.h).
  int execution_threads = 1;
  /// Cross-interaction reuse cache (exec/reuse_cache.h).  Orthogonal to
  /// `enable_reuse`: that models IDEA's *semantic* reuse (an identical
  /// query continues sampling and improves), which changes answers by
  /// design; this cache displaces physical recomputation only and never
  /// changes an answer.
  bool reuse_cache = false;
  /// Concurrent exploration sessions this engine is expected to serve
  /// (session/session.h); sizes the reuse cache's entry cap.
  int expected_sessions = 1;
};

/// Progressive AQP engine with reuse and optional speculation.
class ProgressiveEngine : public EngineBase {
 public:
  explicit ProgressiveEngine(ProgressiveEngineConfig config = {});

  Result<Micros> Prepare(
      std::shared_ptr<const storage::Catalog> catalog) override;
  Result<QueryHandle> Submit(const query::QuerySpec& spec) override;
  Micros RunFor(QueryHandle handle, Micros budget) override;
  bool IsDone(QueryHandle handle) const override;
  Result<query::QueryResult> PollResult(QueryHandle handle) override;
  void Cancel(QueryHandle handle) override;

  void LinkVizs(const std::string& from, const std::string& to) override;
  void DiscardViz(const std::string& viz) override;
  void OnThink(Micros duration) override;
  void WorkflowStart() override;

  const ProgressiveEngineConfig& config() const { return config_; }

  /// Telemetry: number of Submit calls answered from the reuse cache.
  int64_t reuse_hits() const { return reuse_hits_; }
  /// Telemetry: number of Submit calls that adopted speculative state.
  int64_t speculation_hits() const { return speculation_hits_; }

 private:
  /// Shared sample state for one canonical query (live, cached or
  /// speculative).
  struct SampleState {
    query::QuerySpec spec;
    std::unique_ptr<exec::BoundQuery> bound;
    std::unique_ptr<exec::BinnedAggregator> aggregator;
    exec::ReuseCache::Match reuse;  // cached walk prefix to serve from
    int64_t cursor = 0;       // progress along the shuffled walk
    int64_t walk_offset = 0;  // signature-stable start into the permutation
    /// Visible-row watermark the walk is pinned to: set at creation,
    /// refreshed to the current watermark each time a Submit adopts this
    /// state (the continuous-aggregate behavior — a re-submitted query
    /// keeps its sample and extends the walk over newly published
    /// epochs).  The walk never reads past it, so results stay
    /// bit-identical to a run against a table frozen at this watermark
    /// no matter what lands in the open epoch meanwhile.
    int64_t pinned_rows = 0;
    double row_cost_us = 0.0;
    double credit_us = 0.0;
  };

  struct RunningQuery {
    std::shared_ptr<SampleState> state;
    Micros overhead_remaining = 0;
    bool done = false;
    bool faulted = false;  // injected run fault; surfaced via Poll
  };

  Result<std::shared_ptr<SampleState>> MakeState(const query::QuerySpec& spec);

  /// Advances `state` by up to `budget`; returns consumed micros.
  Micros AdvanceState(SampleState* state, Micros budget);

  /// (Re)builds the speculative candidate list for one link.
  void RefreshSpeculations();

  ProgressiveEngineConfig config_;
  std::unordered_map<QueryHandle, std::unique_ptr<RunningQuery>> queries_;
  /// Reuse cache: canonical signature -> sample state.
  std::unordered_map<std::string, std::shared_ptr<SampleState>> cache_;
  /// Last submitted spec per viz name (for speculation).
  std::unordered_map<std::string, query::QuerySpec> last_spec_;
  /// Dashboard links (from, to).
  std::vector<std::pair<std::string, std::string>> links_;
  /// Speculative candidates: signature -> (state, popularity weight).
  struct Speculation {
    std::shared_ptr<SampleState> state;
    double weight = 1.0;
  };
  std::map<std::string, Speculation> speculations_;
  bool first_query_after_prepare_ = true;
  int64_t reuse_hits_ = 0;
  int64_t speculation_hits_ = 0;
};

}  // namespace idebench::engines

#endif  // IDEBENCH_ENGINES_PROGRESSIVE_ENGINE_H_
