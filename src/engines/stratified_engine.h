#ifndef IDEBENCH_ENGINES_STRATIFIED_ENGINE_H_
#define IDEBENCH_ENGINES_STRATIFIED_ENGINE_H_

/// \file stratified_engine.h
/// A commercial-style in-memory AQP system operating on *offline*
/// stratified sample tables (the paper's System X stand-in):
///
///  * data preparation builds stratified sample tables at a configured
///    sampling rate (default 1 %, as in the paper) and runs a warm-up
///    query;
///  * every query scans its sample table to completion — "the run time of
///    queries cannot be set explicitly, but must be specified by means of
///    setting the size of sample tables";
///  * estimate quality is therefore *constant* across time requirements
///    (paper §6), and the only way to improve it is a bigger sample,
///    which increases preparation time;
///  * joins are not supported — "System X only works on de-normalized
///    data" (§5.3).

#include <memory>
#include <string>
#include <unordered_map>

#include "aqp/sampler.h"
#include "engines/engine_base.h"
#include "exec/aggregator.h"

namespace idebench::engines {

/// Cost/behavior knobs of the stratified-sampling engine.
struct StratifiedEngineConfig {
  double sampling_rate = 0.01;          // 1 % offline sample (paper §5.2)
  std::string stratify_by = "carrier";  // stratification column
  int64_t min_rows_per_stratum = 50;
  double sample_scan_ns_per_row = 80.0;  // per nominal sample row
  double load_ns_per_row = 2280.0;       // CSV ingest
  /// Offline sample construction: one base-table pass plus a write per
  /// sampled row — so preparation time grows with the sampling rate,
  /// the trade-off §6 discusses (27 min at 500 M and 1 %).
  double sample_build_scan_ns_per_row = 600.0;
  double sample_build_write_ns_per_sample = 36'000.0;
  double query_overhead_us = 20'000;
  CostFactors factors;
  double confidence_level = 0.95;
  uint64_t seed = 4;
  /// Physical worker threads for the weighted sample scan (1 = exact
  /// single-threaded path, 0 = hardware concurrency; see exec/parallel.h).
  int execution_threads = 1;
  /// Cross-interaction reuse cache (exec/reuse_cache.h); positions are
  /// sample indices, replayed with their recorded stratum weights.
  bool reuse_cache = false;
  /// Concurrent exploration sessions this engine is expected to serve
  /// (session/session.h); sizes the reuse cache's entry cap.
  int expected_sessions = 1;
};

/// Offline stratified-sampling AQP engine.
class StratifiedEngine : public EngineBase {
 public:
  explicit StratifiedEngine(StratifiedEngineConfig config = {});

  Result<Micros> Prepare(
      std::shared_ptr<const storage::Catalog> catalog) override;
  Result<QueryHandle> Submit(const query::QuerySpec& spec) override;
  Micros RunFor(QueryHandle handle, Micros budget) override;
  bool IsDone(QueryHandle handle) const override;
  Result<query::QueryResult> PollResult(QueryHandle handle) override;
  void Cancel(QueryHandle handle) override;

  const StratifiedEngineConfig& config() const { return config_; }

  /// The offline sample (valid after Prepare).
  const aqp::StratifiedSample& sample() const { return sample_; }

 private:
  struct RunningQuery {
    query::QuerySpec spec;
    std::unique_ptr<exec::BoundQuery> bound;
    std::unique_ptr<exec::BinnedAggregator> aggregator;
    exec::ReuseCache::Match reuse;  // cached sample-scan prefix
    int64_t cursor = 0;  // position within the sample
    /// Sample size pinned at Submit: under streaming ingest the sample
    /// grows by one delta block per published epoch, and a query must
    /// only scan the rows its watermark covers.
    int64_t pinned_sample = 0;
    Micros overhead_remaining = 0;
    double row_cost_us = 0.0;  // per sample row
    double credit_us = 0.0;
    bool done = false;
    bool faulted = false;  // injected run fault; surfaced via Poll
  };

  /// Appends one range-local stratified delta block per epoch published
  /// since the last call (no-op without ingest).  Each delta's shuffle is
  /// keyed purely by (engine seed, epoch index), so live and pre-staged
  /// runs that publish the same epochs build identical samples.
  void ExtendSampleForPublishedEpochs();

  StratifiedEngineConfig config_;
  aqp::StratifiedSample sample_;
  std::string strat_column_;         // resolved stratification column
  int64_t sampled_watermark_ = 0;    // base rows covered by sample_
  std::unordered_map<QueryHandle, std::unique_ptr<RunningQuery>> queries_;
};

}  // namespace idebench::engines

#endif  // IDEBENCH_ENGINES_STRATIFIED_ENGINE_H_
