#ifndef IDEBENCH_ENGINES_ONLINE_ENGINE_H_
#define IDEBENCH_ENGINES_ONLINE_ENGINE_H_

/// \file online_engine.h
/// An online-aggregation engine in the mold of approXimateDB/XDB
/// (PostgreSQL + wander join, paper §5).
///
/// Behavioral contract reproduced from the paper:
///  * online aggregation is supported only for a *single* COUNT or SUM
///    aggregate per query — "it does not provide online support for AVG
///    nor for multiple aggregates in a single query";
///  * unsupported queries fall back to a blocking scan at row-store speed
///    (the configured Postgres-like rate), which is what drives XDB's
///    flat ~66 % time-requirement violations;
///  * joins on the online path are wander joins: per-sampled-tuple hash
///    probes into the dimensions (lazy join indexes), no fact scan;
///  * intermediate results are published at a fixed report interval.

#include <memory>
#include <string>
#include <unordered_map>

#include "engines/engine_base.h"
#include "exec/aggregator.h"

namespace idebench::engines {

/// Cost/behavior knobs of the online engine.
struct OnlineEngineConfig {
  /// Per sampled tuple (random heap access + per-tuple estimator upkeep);
  /// deliberately several times the progressive engine's rate — the paper
  /// finds XDB's intermediate estimates far noisier than IDEA's at equal
  /// time requirements.
  double sample_us_per_row = 50.0;
  double fallback_scan_ns_per_row = 24.0;  // row-store full scan
  double load_ns_per_row = 15'600.0;    // COPY + PK build (130 min / 500 M)
  double query_overhead_us = 40'000;    // parse/plan/dispatch
  Micros report_interval_us = 250'000;  // intermediate-result cadence
  bool enable_fallback = true;          // ablation: fail instead of block
  /// Row-store fallback scans get faster on the narrower normalized fact
  /// table (see BlockingEngineConfig::normalized_scan_discount).
  double normalized_scan_discount = 0.15;
  CostFactors factors;
  double confidence_level = 0.95;
  uint64_t seed = 2;
  /// Physical worker threads for the sampling/scan pipeline (1 = exact
  /// single-threaded path, 0 = hardware concurrency; see exec/parallel.h).
  int execution_threads = 1;
  /// Cross-interaction reuse cache (exec/reuse_cache.h); physical work
  /// only, results unchanged.
  bool reuse_cache = false;
  /// Concurrent exploration sessions this engine is expected to serve
  /// (session/session.h); sizes the reuse cache's entry cap.
  int expected_sessions = 1;
};

/// Online-aggregation engine with blocking fallback.
class OnlineEngine : public EngineBase {
 public:
  explicit OnlineEngine(OnlineEngineConfig config = {});

  Result<Micros> Prepare(
      std::shared_ptr<const storage::Catalog> catalog) override;
  Result<QueryHandle> Submit(const query::QuerySpec& spec) override;
  Micros RunFor(QueryHandle handle, Micros budget) override;
  bool IsDone(QueryHandle handle) const override;
  Result<query::QueryResult> PollResult(QueryHandle handle) override;
  void Cancel(QueryHandle handle) override;

  const OnlineEngineConfig& config() const { return config_; }

  /// True when `spec` can run on the online-aggregation path.
  static bool SupportsOnline(const query::QuerySpec& spec);

 private:
  struct RunningQuery {
    query::QuerySpec spec;
    std::unique_ptr<exec::BoundQuery> bound;
    std::unique_ptr<exec::BinnedAggregator> aggregator;
    exec::ReuseCache::Match reuse;  // cached prefix (walk or scan)
    bool online = false;
    int64_t cursor = 0;             // position in the shuffled walk / scan
    int64_t walk_offset = 0;        // random start into the permutation
    int64_t pinned_rows = 0;        // visible watermark pinned at Submit
    Micros overhead_remaining = 0;
    double row_cost_us = 0.0;
    double credit_us = 0.0;
    Micros work_done_us = 0;        // virtual work spent on rows so far
    Micros last_report_us = 0;      // work mark of the published snapshot
    query::QueryResult snapshot;    // last published intermediate result
    bool done = false;
    bool faulted = false;           // injected run fault; surfaced via Poll
  };

  void PublishSnapshot(RunningQuery* rq);

  OnlineEngineConfig config_;
  std::unordered_map<QueryHandle, std::unique_ptr<RunningQuery>> queries_;
};

}  // namespace idebench::engines

#endif  // IDEBENCH_ENGINES_ONLINE_ENGINE_H_
