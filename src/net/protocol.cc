#include "net/protocol.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace idebench::net {

JsonValue QueryResultToJson(const query::QueryResult& result) {
  JsonValue j = JsonValue::Object();
  j.Set("available", result.available);
  j.Set("exact", result.exact);
  j.Set("progress", result.progress);
  j.Set("rows", result.rows_processed);
  std::vector<int64_t> keys;
  keys.reserve(result.bins.size());
  for (const auto& [key, bin] : result.bins) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  JsonValue bins = JsonValue::Array();
  for (const int64_t key : keys) {
    const query::BinResult& bin = result.bins.at(key);
    JsonValue entry = JsonValue::Array();
    entry.Append(key);
    JsonValue values = JsonValue::Array();
    for (const query::AggValue& v : bin.values) {
      JsonValue pair = JsonValue::Array();
      pair.Append(v.estimate);
      pair.Append(v.margin);
      values.Append(std::move(pair));
    }
    entry.Append(std::move(values));
    bins.Append(std::move(entry));
  }
  j.Set("bins", std::move(bins));
  return j;
}

Result<query::QueryResult> QueryResultFromJson(const JsonValue& j) {
  if (!j.is_object()) return Status::Invalid("result must be an object");
  query::QueryResult result;
  result.available = j.GetBool("available", false);
  result.exact = j.GetBool("exact", false);
  result.progress = j.GetDouble("progress", 0.0);
  result.rows_processed = j.GetInt("rows", 0);
  const JsonValue& bins = j.Get("bins");
  if (!bins.is_array()) return Status::Invalid("result.bins must be an array");
  for (size_t i = 0; i < bins.size(); ++i) {
    const JsonValue& entry = bins.at(i);
    if (!entry.is_array() || entry.size() != 2 || !entry.at(0).is_number() ||
        !entry.at(1).is_array()) {
      return Status::Invalid("malformed result bin entry");
    }
    query::BinResult bin;
    const JsonValue& values = entry.at(1);
    for (size_t v = 0; v < values.size(); ++v) {
      const JsonValue& pair = values.at(v);
      if (!pair.is_array() || pair.size() != 2 || !pair.at(0).is_number() ||
          !pair.at(1).is_number()) {
        return Status::Invalid("malformed aggregate value pair");
      }
      bin.values.push_back({pair.at(0).AsDouble(), pair.at(1).AsDouble()});
    }
    result.bins.emplace(entry.at(0).AsInt(), std::move(bin));
  }
  return result;
}

JsonValue UpdateToJson(const session::ProgressiveUpdate& update) {
  JsonValue j = JsonValue::Object();
  j.Set("type", "update");
  j.Set("session", update.session_id);
  j.Set("query", update.query_id);
  j.Set("interaction", update.interaction_id);
  j.Set("viz", update.viz_name);
  j.Set("confidence", update.confidence);
  j.Set("progress", update.progress);
  j.Set("virtual_time", update.virtual_time);
  j.Set("consumed", update.consumed);
  j.Set("budget", update.budget);
  j.Set("final", update.final_update);
  j.Set("completed", update.completed);
  j.Set("cancelled", update.cancelled);
  j.Set("unsupported", update.unsupported);
  j.Set("failed", update.failed);
  j.Set("result", QueryResultToJson(update.result));
  return j;
}

Result<session::ProgressiveUpdate> UpdateFromJson(const JsonValue& j) {
  if (!j.is_object() || MessageType(j) != "update") {
    return Status::Invalid("not an update message");
  }
  session::ProgressiveUpdate u;
  u.session_id = j.GetInt("session", 0);
  u.query_id = j.GetInt("query", 0);
  u.interaction_id = j.GetInt("interaction", 0);
  u.viz_name = j.GetString("viz", "");
  u.confidence = j.GetDouble("confidence", 0.95);
  u.progress = j.GetDouble("progress", 0.0);
  u.virtual_time = j.GetInt("virtual_time", 0);
  u.consumed = j.GetInt("consumed", 0);
  u.budget = j.GetInt("budget", 0);
  u.final_update = j.GetBool("final", false);
  u.completed = j.GetBool("completed", false);
  u.cancelled = j.GetBool("cancelled", false);
  u.unsupported = j.GetBool("unsupported", false);
  u.failed = j.GetBool("failed", false);
  IDB_ASSIGN_OR_RETURN(u.result, QueryResultFromJson(j.Get("result")));
  return u;
}

JsonValue MakeHello(const std::string& tenant) {
  JsonValue j = JsonValue::Object();
  j.Set("type", "hello");
  j.Set("tenant", tenant);
  j.Set("protocol", kProtocolVersion);
  return j;
}

JsonValue MakeError(const Status& status) {
  JsonValue j = JsonValue::Object();
  j.Set("type", "error");
  j.Set("code", StatusCodeToString(status.code()));
  j.Set("message", status.message());
  return j;
}

std::string MessageType(const JsonValue& message) {
  if (!message.is_object()) return "";
  const JsonValue& type = message.Get("type");
  return type.is_string() ? type.AsString() : "";
}

}  // namespace idebench::net
