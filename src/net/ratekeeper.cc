#include "net/ratekeeper.h"

#include <algorithm>
#include <cmath>

namespace idebench::net {

Ratekeeper::Ratekeeper(RatekeeperOptions options) : options_(options) {
  options_.soft_live_limit = std::max(1, options_.soft_live_limit);
  options_.hard_live_limit =
      std::max(options_.soft_live_limit, options_.hard_live_limit);
  options_.degrade_levels = std::max(1, options_.degrade_levels);
  options_.min_budget_scale =
      std::min(1.0, std::max(0.01, options_.min_budget_scale));
}

int Ratekeeper::LevelFor(Micros backlog) const {
  const int levels = options_.degrade_levels;
  int level = 0;
  if (live_ >= options_.hard_live_limit) {
    level = levels + 1;
  } else if (live_ >= options_.soft_live_limit) {
    // Linear ramp over [soft, hard): the first admission past soft is
    // already level 1, the last one before hard is level `levels`.
    const int64_t span =
        std::max<int64_t>(1, options_.hard_live_limit - options_.soft_live_limit);
    const int64_t into = live_ - options_.soft_live_limit;
    level = 1 + static_cast<int>((into * levels) / span);
    level = std::min(level, levels);
  }
  if (options_.backlog_degrade > 0 && backlog > 0) {
    if (options_.backlog_reject > 0 && backlog >= options_.backlog_reject) {
      return levels + 1;
    }
    level += static_cast<int>(backlog / options_.backlog_degrade);
  }
  return std::min(level, levels + 1);
}

AdmitDecision Ratekeeper::Admit(const std::string& tenant, Micros now,
                                Micros backlog) {
  AdmitDecision decision;

  // Tag throttle first (FDB order: the busiest tenant is shed before the
  // cluster degrades for everyone).
  if (options_.tenant_rate > 0.0) {
    Bucket& bucket = buckets_[tenant];
    if (!bucket.initialized) {
      bucket.tokens = options_.tenant_burst;
      bucket.last_refill = now;
      bucket.initialized = true;
    }
    if (now > bucket.last_refill) {
      bucket.tokens += MicrosToSeconds(now - bucket.last_refill) *
                       options_.tenant_rate;
      bucket.tokens = std::min(bucket.tokens, options_.tenant_burst);
      bucket.last_refill = now;
    }
    if (bucket.tokens < 1.0) {
      decision.action = AdmitAction::kThrottle;
      decision.reason = "tenant_throttled";
      decision.retry_after = SecondsToMicros(
          (1.0 - bucket.tokens) / options_.tenant_rate);
      ++stats_.throttled;
      return decision;
    }
    bucket.tokens -= 1.0;
  }

  const int level = LevelFor(backlog);
  if (level > options_.degrade_levels) {
    // Refund the tenant token: the refusal was global, not the tenant's
    // fault, and a retry after the hint should not double-charge them.
    // Clamped — repeated same-timestamp rejections must not bank burst
    // capacity beyond the cap.
    if (options_.tenant_rate > 0.0) {
      Bucket& bucket = buckets_[tenant];
      bucket.tokens = std::min(bucket.tokens + 1.0, options_.tenant_burst);
    }
    decision.action = AdmitAction::kReject;
    decision.reason =
        (options_.backlog_reject > 0 && backlog >= options_.backlog_reject)
            ? "backlogged"
            : "over_capacity";
    decision.degrade_level = options_.degrade_levels;
    decision.retry_after = options_.reject_retry_after;
    ++stats_.rejected;
    return decision;
  }

  decision.action = AdmitAction::kAdmit;
  decision.degrade_level = level;
  decision.budget_scale =
      1.0 - (1.0 - options_.min_budget_scale) *
                (static_cast<double>(level) /
                 static_cast<double>(options_.degrade_levels));
  decision.update_interval =
      level == 0 ? 0
                 : options_.degraded_update_interval
                       << std::min(level - 1, 16);
  ++stats_.admitted;
  if (level > 0) ++stats_.degraded;
  stats_.max_level_seen = std::max(stats_.max_level_seen, level);
  stats_.min_budget_scale_granted =
      std::min(stats_.min_budget_scale_granted, decision.budget_scale);
  return decision;
}

AdmitDecision Ratekeeper::AdmitIngest(Micros backlog) {
  AdmitDecision decision;
  const int level = LevelFor(backlog);
  if (level >= 1) {
    // Any degradation at all sheds ingest: queries give up sample
    // budget only after ingest has already given up everything.
    decision.action = AdmitAction::kReject;
    decision.reason = "ingest_shed";
    decision.degrade_level = level;
    decision.retry_after = options_.reject_retry_after;
    ++stats_.ingest_shed;
    return decision;
  }
  ++stats_.ingest_admitted;
  return decision;
}

void Ratekeeper::OnAdmitted(int n) {
  live_ += n;
  stats_.peak_live = std::max(stats_.peak_live, live_);
}

void Ratekeeper::OnFinalized(int n) { live_ = std::max<int64_t>(0, live_ - n); }

RatekeeperStats Ratekeeper::stats() const {
  RatekeeperStats s = stats_;
  s.live = live_;
  return s;
}

}  // namespace idebench::net
