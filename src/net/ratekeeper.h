#ifndef IDEBENCH_NET_RATEKEEPER_H_
#define IDEBENCH_NET_RATEKEEPER_H_

/// \file ratekeeper.h
/// Overload defense for the serving front-end, modeled on FoundationDB's
/// Ratekeeper/TagThrottle split: per-tenant *tag throttling* keeps one
/// noisy dashboard from monopolizing admission, a global *admission
/// budget* bounds concurrent live queries, and between "healthy" and
/// "full" the keeper *degrades gracefully* — shrinking per-query sample
/// budgets and stretching the update cadence — so quality gives way
/// before availability does.  The contract the chaos/overload tests pin
/// down:
///
///   throttle -> degrade -> reject, in that order, and every refusal is
///   an explicit decision the server turns into a rejection frame —
///   never a silent drop.
///
/// The ladder, as a function of live queries L (and scheduler backlog B
/// in wall-pacing mode):
///
///   L <  soft_live_limit                 admit, level 0, full budget
///   soft <= L < hard_live_limit          admit, level 1..degrade_levels:
///                                        budget scaled linearly down to
///                                        min_budget_scale, update cadence
///                                        stretched 2^level
///   L >= hard_live_limit (or B >= backlog_reject)
///                                        reject with retry_after
///
/// Determinism: the keeper never reads a clock — `now` is always passed
/// in — so it works identically under the virtual-clock test/chaos
/// harness and the wall-clock event loop.

#include <cstdint>
#include <string>
#include <unordered_map>

#include "common/clock.h"

namespace idebench::net {

struct RatekeeperOptions {
  /// Live-query count where degradation starts.
  int soft_live_limit = 32;
  /// Live-query count where admission stops (reject).
  int hard_live_limit = 64;
  /// Degradation steps between soft and hard.
  int degrade_levels = 3;
  /// Budget multiplier at the deepest degradation level; level k scales
  /// budgets by 1 - (1 - min) * k / degrade_levels.
  double min_budget_scale = 0.25;
  /// Partial-update cadence floor at level k: interval << (k - 1), 0 at
  /// level 0 (every materialized advance streams).
  Micros degraded_update_interval = 50'000;  // 50ms at level 1

  /// Per-tenant tag throttle: a token bucket admitting `tenant_rate`
  /// interactions per second sustained with `tenant_burst` of burst.
  /// <= 0 disables tenant throttling.
  double tenant_rate = 100.0;
  double tenant_burst = 20.0;

  /// Wall-pacing backlog (wall time minus scheduler virtual time): adds
  /// one degradation level per `backlog_degrade`, rejects outright at
  /// `backlog_reject` (the scheduler is too far behind real time for an
  /// admission to meet any deadline).  <= 0 disables the signal.
  Micros backlog_degrade = 500'000;
  Micros backlog_reject = 5'000'000;

  /// Retry hint attached to over-capacity rejections.
  Micros reject_retry_after = 250'000;
};

/// Millisecond retry hint for the wire: rounds `retry_after` *up* so a
/// positive sub-millisecond throttle never serializes as "retry now"
/// (0ms) — a client honoring that literally would hammer the keeper in a
/// busy loop.  0 stays 0 (no hint).
inline int64_t RetryAfterMillis(Micros retry_after) {
  if (retry_after <= 0) return 0;
  return (retry_after + 999) / 1000;
}

enum class AdmitAction : uint8_t {
  kAdmit = 0,
  kThrottle = 1,  // per-tenant rate exceeded; retry after `retry_after`
  kReject = 2,    // global capacity exhausted; retry after `retry_after`
};

/// One admission verdict.
struct AdmitDecision {
  AdmitAction action = AdmitAction::kAdmit;
  int degrade_level = 0;
  double budget_scale = 1.0;    // multiplier for per-query sample budgets
  Micros update_interval = 0;   // min gap between streamed partials
  Micros retry_after = 0;       // for kThrottle / kReject
  const char* reason = "";      // stable wire string ("", "tenant_throttled",
                                // "over_capacity", "backlogged")

  bool admitted() const { return action == AdmitAction::kAdmit; }
};

struct RatekeeperStats {
  int64_t admitted = 0;    // interactions admitted
  int64_t degraded = 0;    // admitted at level > 0
  int64_t throttled = 0;   // tenant-throttle refusals
  int64_t rejected = 0;    // capacity/backlog refusals
  int max_level_seen = 0;
  double min_budget_scale_granted = 1.0;
  int64_t live = 0;        // live queries currently tracked
  int64_t peak_live = 0;
  int64_t ingest_admitted = 0;  // append batches admitted
  int64_t ingest_shed = 0;      // append batches shed under load
};

class Ratekeeper {
 public:
  explicit Ratekeeper(RatekeeperOptions options);

  /// Decides admission of one interaction from `tenant` at time `now`
  /// (monotonic micros; virtual or wall — the keeper does not care).
  /// `backlog` is the scheduler's lag behind `now` (0 in virtual mode).
  /// Counting: an admitted decision is recorded immediately; the caller
  /// reports the resulting live queries via OnAdmitted/OnFinalized.
  AdmitDecision Admit(const std::string& tenant, Micros now,
                      Micros backlog = 0);

  /// Decides admission of one ingest append batch.  Ingest is the
  /// lowest-priority traffic class: it is shed at *any* degradation
  /// level (the first rung where queries merely lose sample budget),
  /// so under load ingest backs off strictly before query quality
  /// does — fresh data is worthless if the dashboards reading it
  /// stall.  Shed decisions carry reason "ingest_shed" and the
  /// standard retry hint.
  AdmitDecision AdmitIngest(Micros backlog = 0);

  /// Live-query accounting: `n` queries entered / left the scheduler.
  void OnAdmitted(int n);
  void OnFinalized(int n);

  int64_t live() const { return live_; }
  const RatekeeperOptions& options() const { return options_; }
  RatekeeperStats stats() const;

 private:
  struct Bucket {
    double tokens = 0.0;
    Micros last_refill = 0;
    bool initialized = false;
  };

  /// Degradation level for the current load; degrade_levels + 1 encodes
  /// "beyond hard limit" (reject).
  int LevelFor(Micros backlog) const;

  RatekeeperOptions options_;
  int64_t live_ = 0;
  std::unordered_map<std::string, Bucket> buckets_;
  RatekeeperStats stats_;
};

}  // namespace idebench::net

#endif  // IDEBENCH_NET_RATEKEEPER_H_
