#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "chaos/fault_injector.h"
#include "net/protocol.h"
#include "workflow/interaction.h"

namespace idebench::net {

namespace {

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

Status SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(O_NONBLOCK)");
  }
  return Status::OK();
}

}  // namespace

Server::Server(ServerOptions options, engines::Engine* engine,
               std::shared_ptr<const storage::Catalog> catalog)
    : options_(std::move(options)),
      engine_(engine),
      catalog_(std::move(catalog)),
      ratekeeper_(options_.ratekeeper) {
  manager_ = std::make_unique<session::SessionManager>(options_.scheduler,
                                                       engine_, catalog_);
}

Result<std::unique_ptr<Server>> Server::Create(
    ServerOptions options, engines::Engine* engine,
    std::shared_ptr<const storage::Catalog> catalog) {
  auto server = std::unique_ptr<Server>(
      new Server(std::move(options), engine, std::move(catalog)));
  IDB_RETURN_NOT_OK(server->Bind());
  return server;
}

Server::~Server() { CloseAll(); }

Status Server::Bind() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Errno("socket");
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::Invalid("bad listen address: " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return Errno("bind " + options_.host + ":" + std::to_string(options_.port));
  }
  if (::listen(listen_fd_, 64) < 0) return Errno("listen");
  IDB_RETURN_NOT_OK(SetNonBlocking(listen_fd_));

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) <
      0) {
    return Errno("getsockname");
  }
  port_ = ntohs(bound.sin_port);
  return Status::OK();
}

Micros Server::RatekeeperNow() const {
  return options_.wall_pacing ? wall_now_ : manager_->VirtualNow();
}

Micros Server::Backlog() const {
  if (!options_.wall_pacing) return 0;
  return std::max<Micros>(0, wall_now_ - manager_->VirtualNow());
}

Status Server::Serve(const std::function<bool()>& until) {
  while (!stop_.load(std::memory_order_acquire) && (!until || until())) {
    wall_now_ = wall_.Now();

    // poll over the listener + every live connection.
    std::vector<pollfd> fds;
    fds.reserve(connections_.size() + 1);
    fds.push_back({listen_fd_, POLLIN, 0});
    for (const auto& conn : connections_) {
      short events = POLLIN;
      if (!conn->write_queue.empty()) events |= POLLOUT;
      fds.push_back({conn->fd, events, 0});
    }
    const int timeout_ms = std::max(
        1, static_cast<int>(options_.poll_interval / 1000));
    const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
    if (ready < 0 && errno != EINTR) return Errno("poll");

    wall_now_ = wall_.Now();
    if (ready > 0) {
      // AcceptPending() grows connections_, but fds was built before the
      // accept — connections beyond the polled count have no pollfd.
      const size_t polled = fds.size() - 1;
      if (fds[0].revents & POLLIN) AcceptPending();
      for (size_t i = 0; i < polled; ++i) {
        Connection* conn = connections_[i].get();
        const short revents = fds[i + 1].revents;
        if (conn->dead) continue;
        if (revents & (POLLERR | POLLHUP | POLLNVAL)) {
          KillConnection(conn);
          continue;
        }
        if (revents & POLLIN) ReadFrom(conn);
      }
    }

    IDB_RETURN_NOT_OK(AdvanceScheduler());

    for (const auto& conn : connections_) {
      if (!conn->dead) FlushWrites(conn.get());
    }
    SweepDead();
  }
  CloseAll();
  return Status::OK();
}

void Server::AcceptPending() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      // Transient accept failures (EMFILE, ECONNABORTED, injected
      // chaos): the listener must survive and keep serving.
      ++stats_.accept_faults;
      return;
    }
    if (chaos::FaultInjector::Fire(chaos::FaultSite::kNetAccept) ||
        static_cast<int>(connections_.size()) >= options_.max_connections) {
      // Refuse the connection outright; the client observes a close,
      // which is an explicit signal, not a hang.
      ++stats_.accept_faults;
      ::close(fd);
      continue;
    }
    if (!SetNonBlocking(fd).ok()) {
      ++stats_.accept_faults;
      ::close(fd);
      continue;
    }
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->decoder = FrameDecoder(options_.max_frame_bytes);
    conn->sink = std::make_unique<ConnectionSink>(this, conn.get());
    connections_.push_back(std::move(conn));
    ++stats_.connections_accepted;
  }
}

void Server::ReadFrom(Connection* conn) {
  char buf[64 * 1024];
  while (!conn->dead) {
    if (chaos::FaultInjector::Fire(chaos::FaultSite::kNetRead)) {
      // Injected read tear: the connection is gone mid-stream; its
      // sessions must drain cleanly (SweepDead).
      ++stats_.read_faults;
      KillConnection(conn);
      return;
    }
    const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n == 0) {  // orderly peer close
      KillConnection(conn);
      return;
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      ++stats_.read_faults;
      KillConnection(conn);
      return;
    }
    conn->decoder.Feed(buf, static_cast<size_t>(n));
    while (!conn->dead) {
      JsonValue msg;
      auto next = conn->decoder.Next(&msg);
      if (!next.ok()) {
        // Framing violation: the stream is unsynchronized.  Tell the
        // peer why (best effort) and drop the connection.
        ++stats_.protocol_errors;
        SendMessage(conn, MakeError(next.status()));
        KillConnection(conn);
        return;
      }
      if (!*next) break;
      ++stats_.frames_received;
      HandleMessage(conn, msg);
    }
    if (n < static_cast<ssize_t>(sizeof(buf))) return;  // drained for now
  }
}

void Server::HandleMessage(Connection* conn, const JsonValue& msg) {
  const std::string type = MessageType(msg);
  if (type == "hello") {
    const int64_t version = msg.GetInt("protocol", 0);
    if (version != kProtocolVersion) {
      ++stats_.protocol_errors;
      SendMessage(conn, MakeError(Status::Invalid(
                            "unsupported protocol version " +
                            std::to_string(version))));
      KillConnection(conn);
      return;
    }
    conn->tenant = msg.GetString("tenant", "anon");
    conn->saw_hello = true;
    JsonValue reply = JsonValue::Object();
    reply.Set("type", "hello_ok");
    reply.Set("protocol", kProtocolVersion);
    reply.Set("engine", options_.engine_label);
    SendMessage(conn, reply);
    return;
  }
  if (type == "open_session") {
    auto created = manager_->CreateSession(conn->sink.get());
    if (!created.ok()) {
      ++stats_.protocol_errors;
      SendMessage(conn, MakeError(created.status()));
      return;
    }
    conn->sessions[(*created)->id()] = *created;
    JsonValue reply = JsonValue::Object();
    reply.Set("type", "session_opened");
    reply.Set("session", (*created)->id());
    SendMessage(conn, reply);
    return;
  }
  if (type == "interaction") {
    HandleInteraction(conn, msg);
    return;
  }
  if (type == "append") {
    HandleAppend(conn, msg);
    return;
  }
  if (type == "cancel") {
    auto it = conn->sessions.find(msg.GetInt("session", -1));
    if (it == conn->sessions.end()) {
      ++stats_.protocol_errors;
      SendMessage(conn, MakeError(Status::KeyError("unknown session")));
      return;
    }
    const Status st = it->second->Cancel(msg.GetInt("query", -1));
    if (!st.ok()) SendMessage(conn, MakeError(st));
    return;
  }
  if (type == "think") {
    auto it = conn->sessions.find(msg.GetInt("session", -1));
    if (it != conn->sessions.end()) {
      it->second->Think(std::max<int64_t>(0, msg.GetInt("micros", 0)));
    }
    return;
  }
  if (type == "close_session") {
    const int64_t id = msg.GetInt("session", -1);
    auto it = conn->sessions.find(id);
    if (it == conn->sessions.end()) {
      ++stats_.protocol_errors;
      SendMessage(conn, MakeError(Status::KeyError("unknown session")));
      return;
    }
    // Terminal cancelled updates for live queries enqueue first (through
    // the sink), then the close confirmation — the client never sees the
    // close overtake a terminal.
    const Status st = manager_->CloseSession(it->second);
    conn->sessions.erase(it);
    if (!st.ok()) {
      SendMessage(conn, MakeError(st));
      return;
    }
    JsonValue reply = JsonValue::Object();
    reply.Set("type", "session_closed");
    reply.Set("session", id);
    SendMessage(conn, reply);
    return;
  }
  if (type == "stats") {
    const session::SchedulerStats ss = manager_->stats();
    const RatekeeperStats rs = ratekeeper_.stats();
    JsonValue scheduler = JsonValue::Object();
    scheduler.Set("submitted", ss.queries_submitted);
    scheduler.Set("completed", ss.completed);
    scheduler.Set("deadline_cancelled", ss.deadline_cancelled);
    scheduler.Set("client_cancelled", ss.client_cancelled);
    scheduler.Set("unsupported", ss.unsupported);
    scheduler.Set("failed", ss.failed);
    scheduler.Set("updates_pushed", ss.updates_pushed);
    scheduler.Set("max_deadline_overshoot", ss.max_deadline_overshoot);
    scheduler.Set("virtual_now", ss.virtual_now);
    JsonValue keeper = JsonValue::Object();
    keeper.Set("admitted", rs.admitted);
    keeper.Set("degraded", rs.degraded);
    keeper.Set("throttled", rs.throttled);
    keeper.Set("rejected", rs.rejected);
    keeper.Set("max_level_seen", rs.max_level_seen);
    keeper.Set("min_budget_scale_granted", rs.min_budget_scale_granted);
    keeper.Set("live", rs.live);
    keeper.Set("peak_live", rs.peak_live);
    JsonValue server = JsonValue::Object();
    server.Set("connections_accepted", stats_.connections_accepted);
    server.Set("connections_closed", stats_.connections_closed);
    server.Set("accept_faults", stats_.accept_faults);
    server.Set("read_faults", stats_.read_faults);
    server.Set("frames_received", stats_.frames_received);
    server.Set("frames_sent", stats_.frames_sent);
    server.Set("updates_sent", stats_.updates_sent);
    server.Set("partials_coalesced", stats_.partials_coalesced);
    server.Set("partials_dropped", stats_.partials_dropped);
    server.Set("finals_after_disconnect", stats_.finals_after_disconnect);
    server.Set("slow_client_disconnects", stats_.slow_client_disconnects);
    server.Set("protocol_errors", stats_.protocol_errors);
    server.Set("max_backlog", stats_.max_backlog);
    server.Set("appends_received", stats_.appends_received);
    server.Set("append_rows", stats_.append_rows);
    server.Set("appends_rejected", stats_.appends_rejected);
    server.Set("epochs_published", stats_.epochs_published);
    if (ingestor_ != nullptr && ingestor_->wal() != nullptr) {
      const ingest::WalStats& ws = ingestor_->wal()->stats();
      server.Set("wal_batches_logged", ws.batches_logged);
      server.Set("wal_commits_logged", ws.commits_logged);
      server.Set("wal_syncs", ws.syncs);
      server.Set("wal_bytes", ws.bytes_logged);
      server.Set("wal_rollback_bytes", ws.rollback_bytes);
      server.Set("wal_durable", ingestor_->durable());
    }
    keeper.Set("ingest_admitted", rs.ingest_admitted);
    keeper.Set("ingest_shed", rs.ingest_shed);
    JsonValue reply = JsonValue::Object();
    reply.Set("type", "stats_report");
    reply.Set("scheduler", std::move(scheduler));
    reply.Set("ratekeeper", std::move(keeper));
    reply.Set("server", std::move(server));
    SendMessage(conn, reply);
    return;
  }
  if (type == "ping") {
    JsonValue reply = JsonValue::Object();
    reply.Set("type", "pong");
    reply.Set("id", msg.GetInt("id", 0));
    SendMessage(conn, reply);
    return;
  }
  ++stats_.protocol_errors;
  SendMessage(conn, MakeError(Status::Invalid("unknown message type: " +
                                              (type.empty() ? "<none>" : type))));
}

void Server::HandleInteraction(Connection* conn, const JsonValue& msg) {
  const int64_t session_id = msg.GetInt("session", -1);
  const int64_t request = msg.GetInt("request", -1);
  auto it = conn->sessions.find(session_id);

  const auto reject = [&](const char* reason, Micros retry_after, int level) {
    JsonValue reply = JsonValue::Object();
    reply.Set("type", "rejected");
    reply.Set("session", session_id);
    reply.Set("request", request);
    reply.Set("reason", reason);
    reply.Set("retry_after_ms", RetryAfterMillis(retry_after));
    reply.Set("degrade_level", level);
    SendMessage(conn, reply);
  };

  if (it == conn->sessions.end()) {
    ++stats_.protocol_errors;
    reject("unknown_session", 0, 0);
    return;
  }

  const AdmitDecision decision =
      ratekeeper_.Admit(conn->tenant, RatekeeperNow(), Backlog());
  if (!decision.admitted()) {
    reject(decision.reason, decision.retry_after, decision.degrade_level);
    return;
  }

  auto interaction = workflow::Interaction::FromJson(msg.Get("interaction"));
  if (!interaction.ok()) {
    ++stats_.protocol_errors;
    reject("invalid_interaction", 0, 0);
    return;
  }
  auto batch =
      it->second->SubmitInteraction(*interaction, decision.budget_scale);
  if (!batch.ok()) {
    // Submission-time refusal (closed session, resolve failure): still
    // an explicit rejection, never a dropped request.
    reject("submit_failed", 0, decision.degrade_level);
    return;
  }

  int live = 0;
  JsonValue queries = JsonValue::Array();
  for (const session::SubmittedQuery& sq : *batch) {
    JsonValue q = JsonValue::Object();
    q.Set("query", sq.query_id);
    q.Set("viz", sq.spec.viz_name);
    q.Set("unsupported", sq.unsupported);
    queries.Append(std::move(q));
    if (sq.unsupported) continue;  // already terminal, never live
    ++live;
    tracked_.insert(sq.query_id);
    streams_[sq.query_id] =
        QueryStream{decision.update_interval, /*last_partial=*/-1};
  }
  ratekeeper_.OnAdmitted(live);

  JsonValue reply = JsonValue::Object();
  reply.Set("type", "submitted");
  reply.Set("session", session_id);
  reply.Set("request", request);
  reply.Set("degrade_level", decision.degrade_level);
  reply.Set("budget_scale", decision.budget_scale);
  reply.Set("queries", std::move(queries));
  SendMessage(conn, reply);
}

void Server::AttachIngestor(ingest::Ingestor* ingestor) {
  ingestor_ = ingestor;
  manager_->AttachIngest(ingestor);
}

void Server::HandleAppend(Connection* conn, const JsonValue& msg) {
  const int64_t request = msg.GetInt("request", -1);
  ++stats_.appends_received;

  const auto reject = [&](const char* reason, Micros retry_after, int level) {
    ++stats_.appends_rejected;
    JsonValue reply = JsonValue::Object();
    reply.Set("type", "rejected");
    reply.Set("request", request);
    reply.Set("reason", reason);
    reply.Set("retry_after_ms", RetryAfterMillis(retry_after));
    reply.Set("degrade_level", level);
    SendMessage(conn, reply);
  };

  if (ingestor_ == nullptr) {
    reject("no_ingestor", 0, 0);
    return;
  }
  // Ingest is the lowest-priority traffic class: shed at any degradation
  // level, so query quality never pays for fresh rows.
  const AdmitDecision decision = ratekeeper_.AdmitIngest(Backlog());
  if (!decision.admitted()) {
    reject(decision.reason, decision.retry_after, decision.degrade_level);
    return;
  }

  // rows: [[field, ...], ...] — every field a wire string in fact-schema
  // column order, the same text contract as CSV load.
  const JsonValue& rows = msg.Get("rows");
  ingest::RowBatch batch;
  if (rows.is_array()) {
    batch.rows.reserve(rows.size());
    for (size_t r = 0; r < rows.size(); ++r) {
      const JsonValue& row = rows.at(r);
      if (!row.is_array()) {
        ++stats_.protocol_errors;
        reject("invalid_rows", 0, 0);
        return;
      }
      std::vector<std::string> fields;
      fields.reserve(row.size());
      for (size_t f = 0; f < row.size(); ++f) {
        const JsonValue& field = row.at(f);
        if (!field.is_string()) {
          ++stats_.protocol_errors;
          reject("invalid_rows", 0, 0);
          return;
        }
        fields.push_back(field.AsString());
      }
      batch.rows.push_back(std::move(fields));
    }
  } else if (!rows.is_null()) {
    ++stats_.protocol_errors;
    reject("invalid_rows", 0, 0);
    return;
  }

  // HandleMessage runs on the loop thread with no engine call in flight,
  // so applying here honors the Ingestor's single-writer protocol.
  // All-or-nothing: a failed append stages nothing.
  if (!batch.empty()) {
    const Status st = ingestor_->Append(batch);
    if (!st.ok()) {
      const char* reason =
          st.code() == StatusCode::kResourceExhausted ? "ingest_capacity"
          : st.code() == StatusCode::kIoError         ? "ingest_fault"
                                                      : "invalid_rows";
      reject(reason, options_.ratekeeper.reject_retry_after, 0);
      return;
    }
    stats_.append_rows += batch.size();
  }

  bool published = false;
  if (msg.GetBool("publish", false)) {
    const int64_t before = ingestor_->visible_rows();
    auto watermark = ingestor_->Publish();
    // A failed publish (injected fault) is not a failed append: the rows
    // are staged and a later publish picks them up.  The reply reports
    // published=false so the client can retry the publish alone.
    published = watermark.ok() && *watermark > before;
    if (published) ++stats_.epochs_published;
  }

  JsonValue reply = JsonValue::Object();
  reply.Set("type", "appended");
  reply.Set("request", request);
  reply.Set("staged", ingestor_->staged_rows());
  reply.Set("watermark", ingestor_->visible_rows());
  reply.Set("published", published);
  // Durability report: true when a WAL is attached and everything logged
  // so far is fsynced — i.e. the rows in this reply would survive a
  // crash right now.  Volatile ingestors always report false; a grouped
  // sync policy reports false between group boundaries.
  reply.Set("durable", ingestor_->durable());
  SendMessage(conn, reply);
}

Status Server::AdvanceScheduler() {
  if (options_.wall_pacing) {
    // Chase the wall clock, at most max_catchup per pass so a deep
    // backlog can never wedge the socket loop inside AdvanceTo.
    const Micros now = manager_->VirtualNow();
    const Micros target =
        std::min(wall_now_, now + std::max<Micros>(1, options_.max_catchup));
    if (target > now) IDB_RETURN_NOT_OK(manager_->AdvanceTo(target));
    stats_.max_backlog = std::max(stats_.max_backlog, Backlog());
    return Status::OK();
  }
  if (manager_->HasLive()) {
    IDB_RETURN_NOT_OK(
        manager_->AdvanceTo(manager_->VirtualNow() + options_.virtual_step));
  }
  return Status::OK();
}

void Server::OnUpdate(Connection* conn,
                      const session::ProgressiveUpdate& update) {
  if (update.final_update) {
    // The ratekeeper's live count tracks admitted queries to their
    // terminal update, whatever path delivered it.
    if (tracked_.erase(update.query_id) > 0) ratekeeper_.OnFinalized(1);
    streams_.erase(update.query_id);
    if (conn->dead) {
      // The client is gone; its admitted queries still finalize.  This
      // is the one place a terminal update misses the wire, and it is
      // counted, never silent.
      ++stats_.finals_after_disconnect;
      return;
    }
    Enqueue(conn, QueuedFrame{EncodeFrame(UpdateToJson(update)),
                              update.query_id, /*final_update=*/true});
    return;
  }
  if (conn->dead) return;  // partials to a gone client are worthless

  // Degraded cadence: at level > 0 a query streams at most one partial
  // per update_interval of virtual time.
  auto sit = streams_.find(update.query_id);
  if (sit != streams_.end() && sit->second.update_interval > 0 &&
      sit->second.last_partial >= 0 &&
      update.virtual_time - sit->second.last_partial <
          sit->second.update_interval) {
    ++stats_.partials_dropped;
    return;
  }

  // Coalescing: a queued, not-yet-sent partial for the same query is
  // replaced in place — a slow client sees the newest snapshot, and the
  // queue never grows because of one chatty query.
  for (size_t i = conn->write_queue.size(); i-- > 1;) {
    QueuedFrame& pending = conn->write_queue[i];
    if (pending.query_id == update.query_id && !pending.final_update) {
      pending.bytes = EncodeFrame(UpdateToJson(update));
      ++stats_.partials_coalesced;
      if (sit != streams_.end()) sit->second.last_partial = update.virtual_time;
      return;
    }
  }
  // Index 0 is skipped above (possibly mid-write); check it separately.
  if (!conn->write_queue.empty() && conn->front_written == 0) {
    QueuedFrame& front = conn->write_queue.front();
    if (front.query_id == update.query_id && !front.final_update) {
      front.bytes = EncodeFrame(UpdateToJson(update));
      ++stats_.partials_coalesced;
      if (sit != streams_.end()) sit->second.last_partial = update.virtual_time;
      return;
    }
  }

  if (conn->write_queue.size() >= options_.write_queue_soft_limit) {
    // Soft limit: partials are best effort and shed first.
    ++stats_.partials_dropped;
    return;
  }
  if (sit != streams_.end()) sit->second.last_partial = update.virtual_time;
  Enqueue(conn, QueuedFrame{EncodeFrame(UpdateToJson(update)),
                            update.query_id, /*final_update=*/false});
}

void Server::Enqueue(Connection* conn, QueuedFrame frame) {
  conn->write_queue.push_back(std::move(frame));
  if (conn->write_queue.size() > options_.write_queue_hard_limit) {
    // Only finals/control frames can breach the hard limit (partials
    // stop at the soft limit): this client cannot even drain terminal
    // updates.  Unbounded buffering is the one thing the server never
    // does — disconnect, explicitly counted; its sessions drain in
    // SweepDead and the remaining finals land in finals_after_disconnect.
    ++stats_.slow_client_disconnects;
    KillConnection(conn);
  }
}

void Server::SendMessage(Connection* conn, const JsonValue& msg) {
  if (conn->dead) return;
  Enqueue(conn, QueuedFrame{EncodeFrame(msg), -1, false});
}

void Server::FlushWrites(Connection* conn) {
  if (conn->write_queue.empty()) return;
  if (chaos::FaultInjector::Fire(chaos::FaultSite::kNetWrite)) {
    // Injected write stall: the socket pretends to be unwritable this
    // pass.  The queue holds (bounded), coalescing absorbs the chatter.
    return;
  }
  while (!conn->write_queue.empty()) {
    QueuedFrame& front = conn->write_queue.front();
    size_t remaining = front.bytes.size() - conn->front_written;
    if (chaos::FaultInjector::Fire(chaos::FaultSite::kNetPartialFrame)) {
      // Injected short write: at most half the frame leaves this pass,
      // exercising reassembly on the peer.
      remaining = std::max<size_t>(1, remaining / 2);
    }
    const ssize_t n = ::send(conn->fd, front.bytes.data() + conn->front_written,
                             remaining, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      KillConnection(conn);
      return;
    }
    conn->front_written += static_cast<size_t>(n);
    if (conn->front_written < front.bytes.size()) return;  // partial write
    ++stats_.frames_sent;
    if (front.query_id >= 0 || front.final_update) ++stats_.updates_sent;
    conn->write_queue.pop_front();
    conn->front_written = 0;
  }
}

void Server::KillConnection(Connection* conn) {
  // Deferred: sinks may be mid-callback from the manager, so session
  // teardown happens in SweepDead after the pass.
  conn->dead = true;
}

void Server::SweepDead() {
  for (auto& conn : connections_) {
    if (!conn->dead || conn->fd < 0) continue;
    // One best-effort non-blocking flush so a queued error frame (the
    // reason for the kill) can still reach the peer before the close.
    FlushWrites(conn.get());
    // Draining the sessions pushes terminal cancelled updates through
    // the (dead) sink, which counts them explicitly.
    for (auto& [id, session] : conn->sessions) {
      const Status st = manager_->CloseSession(session);
      (void)st;  // idempotent; teardown must not abort the loop
    }
    conn->sessions.clear();
    ::close(conn->fd);
    conn->fd = -1;
    ++stats_.connections_closed;
  }
  connections_.erase(
      std::remove_if(connections_.begin(), connections_.end(),
                     [](const auto& c) { return c->dead; }),
      connections_.end());
}

void Server::CloseAll() {
  for (auto& conn : connections_) {
    if (conn->fd < 0) continue;
    conn->dead = true;
  }
  SweepDead();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

}  // namespace idebench::net
