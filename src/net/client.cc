#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "net/protocol.h"

namespace idebench::net {

namespace {

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

}  // namespace

Result<std::unique_ptr<Client>> Client::Connect(const std::string& host,
                                                int port,
                                                const std::string& tenant,
                                                Micros timeout) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::Invalid("bad server address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const Status st = Errno("connect " + host + ":" + std::to_string(port));
    ::close(fd);
    return st;
  }
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  auto client = std::unique_ptr<Client>(new Client(fd));
  IDB_RETURN_NOT_OK(client->Send(MakeHello(tenant)));
  IDB_ASSIGN_OR_RETURN(JsonValue reply, client->WaitFor("hello_ok", timeout));
  (void)reply;
  return client;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Status Client::Send(const JsonValue& message) {
  const std::string frame = EncodeFrame(message);
  size_t written = 0;
  while (written < frame.size()) {
    const ssize_t n = ::send(fd_, frame.data() + written,
                             frame.size() - written, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<bool> Client::FillUntil(Micros deadline_wall) {
  while (true) {
    const Micros now = wall_.Now();
    if (now >= deadline_wall) return false;
    pollfd pfd{fd_, POLLIN, 0};
    const int timeout_ms = std::max<int>(
        1, static_cast<int>((deadline_wall - now) / 1000));
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return Errno("poll");
    }
    if (ready == 0) return false;
    char buf[64 * 1024];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) return Status::IOError("server closed the connection");
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return Errno("recv");
    }
    decoder_.Feed(buf, static_cast<size_t>(n));
    return true;
  }
}

Result<bool> Client::Next(JsonValue* out, Micros timeout) {
  if (!buffered_.empty()) {
    *out = std::move(buffered_.front());
    buffered_.pop_front();
    return true;
  }
  const Micros deadline = wall_.Now() + timeout;
  while (true) {
    IDB_ASSIGN_OR_RETURN(bool decoded, decoder_.Next(out));
    if (decoded) return true;
    IDB_ASSIGN_OR_RETURN(bool got_bytes, FillUntil(deadline));
    if (!got_bytes) return false;
  }
}

Result<JsonValue> Client::WaitFor(const std::string& type, Micros timeout) {
  const Micros deadline = wall_.Now() + timeout;
  // Check already-buffered messages first (arrival order preserved for
  // the rest).
  for (auto it = buffered_.begin(); it != buffered_.end(); ++it) {
    if (MessageType(*it) == type) {
      JsonValue msg = std::move(*it);
      buffered_.erase(it);
      return msg;
    }
  }
  while (true) {
    JsonValue msg;
    IDB_ASSIGN_OR_RETURN(bool decoded, decoder_.Next(&msg));
    if (decoded) {
      if (MessageType(msg) == type) return msg;
      buffered_.push_back(std::move(msg));  // kept in arrival order
      continue;
    }
    if (wall_.Now() >= deadline) {
      return Status::IOError("timed out waiting for '" + type + "'");
    }
    IDB_ASSIGN_OR_RETURN(bool got_bytes, FillUntil(deadline));
    if (!got_bytes) {
      return Status::IOError("timed out waiting for '" + type + "'");
    }
  }
}

Result<int64_t> Client::OpenSession(Micros timeout) {
  JsonValue msg = JsonValue::Object();
  msg.Set("type", "open_session");
  IDB_RETURN_NOT_OK(Send(msg));
  IDB_ASSIGN_OR_RETURN(JsonValue reply, WaitFor("session_opened", timeout));
  return reply.GetInt("session", -1);
}

Status Client::CloseSession(int64_t session, Micros timeout) {
  JsonValue msg = JsonValue::Object();
  msg.Set("type", "close_session");
  msg.Set("session", session);
  IDB_RETURN_NOT_OK(Send(msg));
  return WaitFor("session_closed", timeout).status();
}

}  // namespace idebench::net
