#ifndef IDEBENCH_NET_FRAME_H_
#define IDEBENCH_NET_FRAME_H_

/// \file frame.h
/// Length-prefixed JSON frame codec — the wire format of the serving
/// front-end (see README "Network serving").
///
/// A frame is a 4-byte big-endian unsigned payload length followed by
/// exactly that many bytes of UTF-8 JSON encoding one message object.
/// The prefix makes the stream self-delimiting over TCP (JSON itself is
/// not), and the decoder enforces a hard payload-size cap *before*
/// buffering, so a hostile or corrupt peer can never make the server
/// allocate an unbounded frame.
///
/// Decoder error contract (enforced by tests/net_frame_test.cc, run
/// under ASan+UBSan in CI): truncated input is never an error — the
/// decoder just waits for more bytes; an oversized length prefix, a
/// zero-length frame, or a payload that fails to parse as a single JSON
/// document returns a `Status` error and poisons the decoder (a framing
/// violation leaves the byte stream unsynchronized, so the only safe
/// reaction is to drop the connection).  Nothing in the codec throws,
/// crashes, or leaks on malformed input.

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/json.h"
#include "common/result.h"

namespace idebench::net {

/// Frame header size: 4-byte big-endian payload length.
inline constexpr size_t kFrameHeaderBytes = 4;

/// Default payload cap.  Progressive updates carry whole bin tables, but
/// even a 2-D 25x25-bin result with margins is a few tens of KiB; 4 MiB
/// leaves two orders of magnitude of headroom.
inline constexpr size_t kDefaultMaxFrameBytes = 4 * 1024 * 1024;

/// Encodes `payload` (already-serialized JSON) as one frame.
std::string EncodeFrame(const std::string& payload);

/// Encodes `message` as one frame (compact JSON payload).
std::string EncodeFrame(const JsonValue& message);

/// Incremental frame parser over a byte stream.  Feed bytes as they
/// arrive; `Next` yields complete messages in order.
class FrameDecoder {
 public:
  explicit FrameDecoder(size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  /// Appends raw bytes from the stream.  Cheap; parsing happens in Next.
  void Feed(const char* data, size_t n);
  void Feed(const std::string& bytes) { Feed(bytes.data(), bytes.size()); }

  /// Tries to decode the next complete frame.  Returns true and fills
  /// `*out` when one was available; false when more bytes are needed.
  /// Returns a non-OK Status on a framing violation (oversized or empty
  /// frame, payload that is not one valid JSON document); after an error
  /// the decoder is poisoned and every further call returns the same
  /// error — the caller must drop the connection.
  Result<bool> Next(JsonValue* out);

  /// Bytes buffered but not yet consumed by Next.
  size_t buffered() const { return buffer_.size() - consumed_; }

  /// True once a framing violation was seen.
  bool failed() const { return !error_.ok(); }

 private:
  size_t max_frame_bytes_;
  std::string buffer_;
  size_t consumed_ = 0;  // prefix of buffer_ already decoded
  Status error_ = Status::OK();
};

}  // namespace idebench::net

#endif  // IDEBENCH_NET_FRAME_H_
