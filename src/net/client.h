#ifndef IDEBENCH_NET_CLIENT_H_
#define IDEBENCH_NET_CLIENT_H_

/// \file client.h
/// Blocking client for the serving front-end (net/server.h): connects,
/// performs the hello handshake, and exchanges framed JSON messages.
///
/// The protocol is asynchronous — `update` frames interleave with
/// request replies — so the core surface is just `Send` plus a blocking
/// `Next` with a timeout; `WaitFor` drains to a specific reply type
/// while buffering everything else for later `Next` calls (arrival
/// order is preserved).  Used by tools/serve_bench workers and the
/// loopback tests; single-threaded, one instance per connection.

#include <cstdint>
#include <deque>
#include <memory>
#include <string>

#include "common/clock.h"
#include "common/result.h"
#include "net/frame.h"

namespace idebench::net {

class Client {
 public:
  /// Connects and completes the hello handshake as `tenant`.  Fails with
  /// IOError when the server refuses the connection (overload-refused
  /// accepts surface here, not as hangs).
  static Result<std::unique_ptr<Client>> Connect(
      const std::string& host, int port, const std::string& tenant,
      Micros timeout = 5 * kMicrosPerSecond);

  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Sends one message frame (blocking until fully written).
  Status Send(const JsonValue& message);

  /// Waits up to `timeout` for the next message.  Returns true with
  /// `*out` filled, false on timeout; a Status error on EOF, socket
  /// error, or framing violation (the connection is unusable after).
  Result<bool> Next(JsonValue* out, Micros timeout);

  /// Drains messages until one with `type` arrives (returned), buffering
  /// everything else for later Next calls.  Times out with an error.
  Result<JsonValue> WaitFor(const std::string& type, Micros timeout);

  /// Convenience wrappers over Send/WaitFor.
  Result<int64_t> OpenSession(Micros timeout = 5 * kMicrosPerSecond);
  Status CloseSession(int64_t session, Micros timeout = 5 * kMicrosPerSecond);

 private:
  explicit Client(int fd) : fd_(fd) {}

  /// Reads more bytes into the decoder (blocking up to the deadline).
  /// Returns true when bytes arrived, false on timeout.
  Result<bool> FillUntil(Micros deadline_wall);

  int fd_;
  FrameDecoder decoder_;
  std::deque<JsonValue> buffered_;
  WallClock wall_;
};

}  // namespace idebench::net

#endif  // IDEBENCH_NET_CLIENT_H_
