#ifndef IDEBENCH_NET_PROTOCOL_H_
#define IDEBENCH_NET_PROTOCOL_H_

/// \file protocol.h
/// Message layer of the serving protocol: the JSON shapes that travel
/// inside frames (net/frame.h).  Every message is an object with a
/// `type` member; see README "Network serving" for the full spec.
///
/// Client -> server:
///   hello          {type, tenant, protocol}
///   open_session   {type}
///   interaction    {type, session, request, interaction: <workflow JSON>}
///   cancel         {type, session, query}
///   think          {type, session, micros}
///   close_session  {type, session}
///   append         {type, request, rows: [[field, ...], ...],
///                   publish: bool}   <- streaming ingest: fields are wire
///                   strings in fact-schema column order (the CSV text
///                   contract); publish moves the epoch watermark after
///                   the batch stages
///   stats          {type}
///   ping           {type, id}
///
/// Server -> client:
///   hello_ok       {type, protocol, engine}
///   session_opened {type, session}
///   submitted      {type, session, request, degrade_level, budget_scale,
///                   queries: [{query, viz, unsupported}]}
///   rejected       {type, session, request, reason, retry_after_ms,
///                   degrade_level}   <- explicit refusal, never silent
///                   (also answers refused `append` frames, with reasons
///                   "ingest_shed" / "no_ingestor" / "invalid_rows" /
///                   "ingest_capacity" / "ingest_fault")
///   appended       {type, request, staged, watermark, published}
///   update         {type, ... see UpdateToJson}
///   session_closed {type, session}
///   stats_report   {type, scheduler: {...}, ratekeeper: {...},
///                   server: {...}}
///   error          {type, code, message}
///   pong           {type, id}

#include <string>

#include "common/json.h"
#include "common/result.h"
#include "query/result.h"
#include "session/session.h"

namespace idebench::net {

/// Protocol revision; bumped on incompatible frame-shape changes.
inline constexpr int kProtocolVersion = 1;

/// Serializes a query result.  Bins are emitted sorted by packed key so
/// equal results serialize byte-identically (frames diff cleanly in
/// logs and golden comparisons).
JsonValue QueryResultToJson(const query::QueryResult& result);
Result<query::QueryResult> QueryResultFromJson(const JsonValue& j);

/// Serializes one pushed update (type "update").
JsonValue UpdateToJson(const session::ProgressiveUpdate& update);
Result<session::ProgressiveUpdate> UpdateFromJson(const JsonValue& j);

/// Message constructors (the trivial ones clients and server share).
JsonValue MakeHello(const std::string& tenant);
JsonValue MakeError(const Status& status);

/// The `type` member, or "" when missing/not a string.
std::string MessageType(const JsonValue& message);

}  // namespace idebench::net

#endif  // IDEBENCH_NET_PROTOCOL_H_
