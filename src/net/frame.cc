#include "net/frame.h"

#include <cstring>

#include "common/logging.h"

namespace idebench::net {

namespace {

void AppendHeader(size_t n, std::string* out) {
  const uint32_t len = static_cast<uint32_t>(n);
  char header[kFrameHeaderBytes];
  header[0] = static_cast<char>((len >> 24) & 0xFF);
  header[1] = static_cast<char>((len >> 16) & 0xFF);
  header[2] = static_cast<char>((len >> 8) & 0xFF);
  header[3] = static_cast<char>(len & 0xFF);
  out->append(header, kFrameHeaderBytes);
}

uint32_t ReadHeader(const char* data) {
  const unsigned char* u = reinterpret_cast<const unsigned char*>(data);
  return (static_cast<uint32_t>(u[0]) << 24) |
         (static_cast<uint32_t>(u[1]) << 16) |
         (static_cast<uint32_t>(u[2]) << 8) | static_cast<uint32_t>(u[3]);
}

}  // namespace

std::string EncodeFrame(const std::string& payload) {
  // The length prefix is a u32; anything larger would silently truncate
  // into a corrupt frame.
  IDB_CHECK(payload.size() <= UINT32_MAX);
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  AppendHeader(payload.size(), &out);
  out.append(payload);
  return out;
}

std::string EncodeFrame(const JsonValue& message) {
  return EncodeFrame(message.Dump());
}

void FrameDecoder::Feed(const char* data, size_t n) {
  if (n == 0 || failed()) return;
  // Compact lazily: only when the dead prefix dominates the buffer.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(data, n);
}

Result<bool> FrameDecoder::Next(JsonValue* out) {
  if (failed()) return error_;
  const size_t avail = buffer_.size() - consumed_;
  if (avail < kFrameHeaderBytes) return false;
  const uint32_t len = ReadHeader(buffer_.data() + consumed_);
  if (len == 0) {
    error_ = Status::Invalid("empty frame");
    return error_;
  }
  if (static_cast<size_t>(len) > max_frame_bytes_) {
    error_ = Status::ResourceExhausted(
        "frame payload of " + std::to_string(len) + " bytes exceeds the " +
        std::to_string(max_frame_bytes_) + "-byte cap");
    return error_;
  }
  if (avail < kFrameHeaderBytes + static_cast<size_t>(len)) return false;
  const std::string payload =
      buffer_.substr(consumed_ + kFrameHeaderBytes, len);
  consumed_ += kFrameHeaderBytes + len;
  auto parsed = JsonValue::Parse(payload);
  if (!parsed.ok()) {
    error_ = Status::Invalid("frame payload is not valid JSON: " +
                             parsed.status().message());
    return error_;
  }
  *out = std::move(parsed).MoveValueUnsafe();
  return true;
}

}  // namespace idebench::net
