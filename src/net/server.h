#ifndef IDEBENCH_NET_SERVER_H_
#define IDEBENCH_NET_SERVER_H_

/// \file server.h
/// The overload-hardened serving front-end: a single-threaded poll()
/// event loop that multiplexes any number of TCP connections onto one
/// `session::SessionManager`, speaking the length-prefixed JSON frame
/// protocol (net/frame.h, net/protocol.h).
///
/// The four defenses the chaos/overload tests pin down:
///
///  * *Wall-clock pacing.*  In wall mode the scheduler's virtual clock
///    chases real elapsed time, advancing at most `max_catchup` per loop
///    pass so one pass can never stall the socket loop for long.  The
///    resulting lag (wall - virtual) is the backlog signal the
///    ratekeeper degrades and eventually rejects on.  Virtual mode
///    (wall_pacing = false) keeps the deterministic clock for tests and
///    chaos runs.
///
///  * *Admission control.*  Every `interaction` request passes through
///    the `Ratekeeper` before touching the scheduler; refusals are
///    explicit `rejected` frames carrying a reason and a retry hint —
///    never silent drops.
///
///  * *Graceful degradation.*  Between healthy and full the ratekeeper
///    shrinks per-query sample budgets (`budget_scale` through
///    `SubmitInteraction`) and stretches the per-query partial-update
///    cadence, so quality and chatter give way before availability.
///
///  * *Backpressure.*  Per-connection write queues are bounded: a slow
///    client's partial updates coalesce in place (newest replaces the
///    queued one for the same query) and are dropped past the soft
///    limit; terminal updates always enqueue, and a client that cannot
///    even drain those is disconnected — explicitly counted, sessions
///    drained — rather than buffered without bound.  One stuck
///    connection never stalls the loop or other sessions.
///
/// Threading: the loop, the manager and the ratekeeper live on the
/// thread calling Serve().  `RequestStop` is the only cross-thread entry
/// point; read stats after Serve returns.

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "ingest/ingest.h"
#include "net/frame.h"
#include "net/ratekeeper.h"
#include "session/session.h"

namespace idebench::net {

struct ServerOptions {
  std::string host = "127.0.0.1";
  int port = 0;  // 0 = ephemeral; the bound port is Server::port()

  int max_connections = 64;
  size_t max_frame_bytes = kDefaultMaxFrameBytes;

  /// Backpressure bounds, in queued frames per connection.  Partials
  /// coalesce/drop at the soft limit; breaching the hard limit (which
  /// only terminal frames can) disconnects the client.
  size_t write_queue_soft_limit = 64;
  size_t write_queue_hard_limit = 1024;

  /// Wall-clock pacing (see file doc).  Virtual mode instead advances
  /// `virtual_step` per pass while queries are live.
  bool wall_pacing = true;
  Micros max_catchup = 50'000;
  Micros virtual_step = 50'000;
  /// poll() timeout per pass (wall micros; floor 1ms).
  Micros poll_interval = 2'000;

  /// Engine label reported in hello_ok / stats (informational).
  std::string engine_label = "engine";

  session::SessionManagerOptions scheduler;
  RatekeeperOptions ratekeeper;
};

struct ServerStats {
  int64_t connections_accepted = 0;
  int64_t connections_closed = 0;
  int64_t accept_faults = 0;   // injected/spurious accept failures survived
  int64_t read_faults = 0;     // connections torn by read errors
  int64_t frames_received = 0;
  int64_t frames_sent = 0;
  int64_t updates_sent = 0;          // update frames fully written
  int64_t partials_coalesced = 0;    // replaced in-queue by a newer partial
  int64_t partials_dropped = 0;      // shed at the soft limit / cadence
  int64_t finals_after_disconnect = 0;  // terminal updates whose client was
                                        // already gone — counted, never silent
  int64_t slow_client_disconnects = 0;  // hard write-queue breaches
  int64_t protocol_errors = 0;
  Micros max_backlog = 0;  // peak wall-minus-virtual lag (wall mode)
  int64_t appends_received = 0;   // append frames seen
  int64_t append_rows = 0;        // rows staged through append frames
  int64_t appends_rejected = 0;   // shed / failed / no-ingestor refusals
  int64_t epochs_published = 0;   // publishes requested over the wire
};

/// See file doc.  Create binds + listens; Serve runs the loop.
class Server {
 public:
  /// `engine` must be prepared against `catalog`; both must outlive the
  /// server.
  static Result<std::unique_ptr<Server>> Create(
      ServerOptions options, engines::Engine* engine,
      std::shared_ptr<const storage::Catalog> catalog);

  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound listening port.
  int port() const { return port_; }

  /// Runs the event loop until RequestStop() or `until` (checked once
  /// per pass; null = run until stopped) returns false.  On return every
  /// connection has been drained and closed.
  Status Serve(const std::function<bool()>& until = nullptr);

  /// Thread-safe stop signal; the loop exits within one poll interval.
  void RequestStop() { stop_.store(true, std::memory_order_release); }

  /// Attaches the streaming-ingest channel: `append` frames stage rows
  /// into `ingestor`'s fact table (and optionally publish an epoch).
  /// Must be called before Serve; the ingestor must feed the catalog
  /// this server serves and outlive it.  Without an ingestor, `append`
  /// frames are rejected with reason "no_ingestor".  Appends apply on
  /// the loop thread between engine calls — the Ingestor's
  /// single-writer protocol — and pass `Ratekeeper::AdmitIngest` first,
  /// so ingest sheds strictly before query traffic degrades.
  void AttachIngestor(ingest::Ingestor* ingestor);

  /// Loop-thread-only accessors (or after Serve returned).
  const ServerStats& stats() const { return stats_; }
  const Ratekeeper& ratekeeper() const { return ratekeeper_; }
  session::SessionManager& manager() { return *manager_; }

 private:
  struct Connection;

  /// Per-connection ResultSink: forwards every pushed update into the
  /// connection's write queue with coalescing + cadence + the explicit
  /// post-disconnect accounting.
  class ConnectionSink : public session::ResultSink {
   public:
    ConnectionSink(Server* server, Connection* conn)
        : server_(server), conn_(conn) {}
    void OnUpdate(const session::ProgressiveUpdate& update) override {
      server_->OnUpdate(conn_, update);
    }

   private:
    Server* server_;
    Connection* conn_;
  };

  /// One queued outbound frame.  `query_id >= 0` marks a non-final
  /// update frame (the coalescing unit); finals and control frames are
  /// never replaced.
  struct QueuedFrame {
    std::string bytes;
    int64_t query_id = -1;
    bool final_update = false;
  };

  /// Per-query streaming state while admitted (degraded cadence).
  struct QueryStream {
    Micros update_interval = 0;  // min virtual-time gap between partials
    Micros last_partial = -1;    // virtual time of the last queued partial
  };

  struct Connection {
    int fd = -1;
    std::string tenant = "anon";
    bool saw_hello = false;
    bool dead = false;  // swept (sessions closed, fd closed) post-pass
    FrameDecoder decoder;
    std::deque<QueuedFrame> write_queue;
    size_t front_written = 0;  // bytes of the front frame already sent
    std::unique_ptr<ConnectionSink> sink;
    /// Sessions opened by this connection (id -> handle).
    std::map<int64_t, session::ExplorationSession*> sessions;
  };

  Server(ServerOptions options, engines::Engine* engine,
         std::shared_ptr<const storage::Catalog> catalog);

  Status Bind();
  void AcceptPending();
  void ReadFrom(Connection* conn);
  void HandleMessage(Connection* conn, const JsonValue& msg);
  void HandleInteraction(Connection* conn, const JsonValue& msg);
  void HandleAppend(Connection* conn, const JsonValue& msg);
  Status AdvanceScheduler();
  void FlushWrites(Connection* conn);
  void SweepDead();
  void CloseAll();

  void OnUpdate(Connection* conn, const session::ProgressiveUpdate& update);
  void Enqueue(Connection* conn, QueuedFrame frame);
  void SendMessage(Connection* conn, const JsonValue& msg);
  void KillConnection(Connection* conn);

  /// `now` for the ratekeeper: wall elapsed in wall mode, virtual time
  /// otherwise.
  Micros RatekeeperNow() const;
  Micros Backlog() const;

  ServerOptions options_;
  engines::Engine* engine_;
  std::shared_ptr<const storage::Catalog> catalog_;
  std::unique_ptr<session::SessionManager> manager_;
  Ratekeeper ratekeeper_;
  ingest::Ingestor* ingestor_ = nullptr;
  WallClock wall_;
  Micros wall_now_ = 0;  // wall elapsed, sampled once per pass

  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stop_{false};
  std::vector<std::unique_ptr<Connection>> connections_;

  /// Queries the ratekeeper counts live (admitted, not yet terminal).
  std::unordered_set<int64_t> tracked_;
  std::unordered_map<int64_t, QueryStream> streams_;

  ServerStats stats_;
};

}  // namespace idebench::net

#endif  // IDEBENCH_NET_SERVER_H_
