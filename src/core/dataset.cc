#include "core/dataset.h"

#include <algorithm>

#include "common/string_util.h"
#include "datagen/cholesky_scaler.h"
#include "datagen/flights_seed.h"
#include "datagen/normalizer.h"
#include "storage/segment.h"

namespace idebench::core {

int64_t DatasetConfig::EffectiveActualRows() const {
  if (actual_rows > 0) return actual_rows;
  return std::min<int64_t>(nominal_rows / 1000, 600'000);
}

DatasetConfig SmallDataset() {
  DatasetConfig c;
  c.nominal_rows = 100'000'000;
  return c;
}

DatasetConfig MediumDataset() {
  DatasetConfig c;
  c.nominal_rows = 500'000'000;
  return c;
}

DatasetConfig LargeDataset() {
  DatasetConfig c;
  c.nominal_rows = 1'000'000'000;
  return c;
}

std::string DataSizeLabel(int64_t nominal_rows) {
  std::string label = HumanCount(nominal_rows);
  return ToLower(label);
}

Result<std::shared_ptr<storage::Catalog>> BuildFlightsCatalog(
    const DatasetConfig& config) {
  // Segment cache: decoding packed segments replays every value through
  // the same append funnel the generator uses, so a cache hit yields a
  // catalog bit-identical to a fresh build (tests pin this down).
  if (!config.segment_cache_dir.empty()) {
    Result<storage::Catalog> cached =
        storage::LoadCatalogSegments(config.segment_cache_dir);
    if (cached.ok()) {
      return std::make_shared<storage::Catalog>(cached.MoveValueUnsafe());
    }
  }
  datagen::FlightsSeedConfig seed_config;
  seed_config.rows = config.seed_rows;
  seed_config.seed = config.seed;
  IDB_ASSIGN_OR_RETURN(storage::Table seed,
                       datagen::GenerateFlightsSeed(seed_config));

  datagen::ScalerConfig scaler_config;
  scaler_config.target_rows = config.EffectiveActualRows();
  scaler_config.seed = config.seed + 1;
  scaler_config.derived = datagen::FlightsDerivedColumns();
  IDB_ASSIGN_OR_RETURN(storage::Table scaled,
                       datagen::ScaleDataset(seed, scaler_config));

  storage::Catalog catalog;
  if (config.normalized) {
    IDB_ASSIGN_OR_RETURN(
        catalog,
        datagen::Normalize(scaled, datagen::FlightsDimensionSpecs()));
  } else {
    IDB_ASSIGN_OR_RETURN(
        catalog, datagen::MakeDenormalizedCatalog(
                     std::make_shared<storage::Table>(std::move(scaled))));
  }
  catalog.set_nominal_rows(config.nominal_rows);
  if (!config.segment_cache_dir.empty()) {
    // Best-effort: a write failure (full/read-only disk) only costs the
    // cache, never the run.
    (void)storage::WriteCatalogSegments(catalog, config.segment_cache_dir);
  }
  return std::make_shared<storage::Catalog>(std::move(catalog));
}

}  // namespace idebench::core
