#ifndef IDEBENCH_CORE_DATASET_H_
#define IDEBENCH_CORE_DATASET_H_

/// \file dataset.h
/// One-call construction of benchmark datasets: synthesize the flights
/// seed, scale it with the paper's generator, optionally normalize it
/// into a star schema, and tag it with the nominal row count the cost
/// model should simulate.

#include <cstdint>
#include <memory>
#include <string>

#include "common/result.h"
#include "storage/catalog.h"

namespace idebench::core {

/// Dataset build configuration.
struct DatasetConfig {
  /// Rows the dataset *represents* (drives virtual time): the paper's
  /// default sizes are S = 100 M, M = 500 M, L = 1 B.
  int64_t nominal_rows = 500'000'000;

  /// Rows physically materialized (drives answers and memory).  The
  /// default divides nominal by 1000 and caps at 600 k.
  int64_t actual_rows = 0;  // 0 = derive from nominal

  /// Rows in the synthesized seed before scaling.
  int64_t seed_rows = 60'000;

  /// Star schema (true) or one de-normalized table (false).
  bool normalized = false;

  uint64_t seed = 42;

  /// When non-empty, a directory of packed segment files (see
  /// storage/segment.h): the build loads the catalog from there when the
  /// directory holds a manifest, and otherwise generates the dataset as
  /// usual and packs it into the directory for the next run.  A cache
  /// that fails to load (corrupt/truncated/mismatched) is ignored and
  /// rebuilt from the generated catalog.
  std::string segment_cache_dir;

  /// Fills `actual_rows` when 0.
  int64_t EffectiveActualRows() const;
};

/// Canonical paper sizes.
DatasetConfig SmallDataset();   // 100 M nominal
DatasetConfig MediumDataset();  // 500 M nominal
DatasetConfig LargeDataset();   // 1 B nominal

/// Builds a flights catalog per `config`.
Result<std::shared_ptr<storage::Catalog>> BuildFlightsCatalog(
    const DatasetConfig& config);

/// Human label for a nominal size ("100m", "500m", "1b").
std::string DataSizeLabel(int64_t nominal_rows);

}  // namespace idebench::core

#endif  // IDEBENCH_CORE_DATASET_H_
