#include "core/idebench.h"

#include "common/string_util.h"

namespace idebench::core {

Result<BenchmarkOutcome> RunBenchmark(const BenchmarkConfig& config) {
  IDB_ASSIGN_OR_RETURN(std::shared_ptr<storage::Catalog> catalog,
                       BuildFlightsCatalog(config.dataset));

  // Workflows are generated against the de-normalized view of the data so
  // the same workflow files work on both layouts; when the catalog is
  // normalized, the driver re-resolves nominal predicate labels.
  std::shared_ptr<storage::Catalog> workflow_catalog = catalog;
  if (config.dataset.normalized) {
    DatasetConfig denorm = config.dataset;
    denorm.normalized = false;
    IDB_ASSIGN_OR_RETURN(workflow_catalog, BuildFlightsCatalog(denorm));
  }

  workflow::GeneratorConfig generator_config;
  workflow::WorkflowGenerator generator(workflow_catalog->fact_table(),
                                        generator_config, config.seed);
  std::vector<workflow::Workflow> workflows;
  for (workflow::WorkflowType type : config.workflow_types) {
    for (int i = 0; i < config.workflows_per_type; ++i) {
      const std::string name = std::string(workflow::WorkflowTypeName(type)) +
                               "_" + std::to_string(i);
      IDB_ASSIGN_OR_RETURN(workflow::Workflow wf,
                           generator.Generate(type, name));
      workflows.push_back(std::move(wf));
    }
  }

  BenchmarkOutcome outcome;
  // Exact answers depend only on the catalog; share the oracle's cache
  // across the whole time-requirement sweep.  The oracle runs at the
  // configured parallelism (its answers are thread-count independent).
  auto oracle =
      std::make_shared<driver::GroundTruthOracle>(catalog, config.threads);
  for (double tr_s : config.time_requirements_s) {
    // A fresh engine per time requirement keeps runs independent, as
    // restarting the system between configurations would.
    IDB_ASSIGN_OR_RETURN(
        std::unique_ptr<engines::Engine> engine,
        engines::CreateEngine(config.engine, config.seed, config.threads,
                              config.reuse_cache, config.sessions));

    driver::Settings settings;
    settings.time_requirement = SecondsToMicros(tr_s);
    settings.think_time = SecondsToMicros(config.think_time_s);
    settings.confidence_level = config.confidence_level;
    settings.data_size_label = DataSizeLabel(config.dataset.nominal_rows);
    settings.use_joins = config.dataset.normalized;
    settings.threads = config.threads;
    settings.reuse_cache = config.reuse_cache;
    settings.sessions = config.sessions;
    IDB_RETURN_NOT_OK(settings.Validate());

    driver::BenchmarkDriver bench_driver(settings, engine.get(), catalog,
                                         oracle);
    IDB_ASSIGN_OR_RETURN(outcome.data_preparation_time,
                         bench_driver.PrepareEngine());
    IDB_ASSIGN_OR_RETURN(std::vector<driver::QueryRecord> records,
                         bench_driver.RunWorkflows(workflows));
    for (driver::QueryRecord& r : records) {
      outcome.records.push_back(std::move(r));
    }
    outcome.reuse += engine->reuse_cache_stats();
    outcome.scheduler = bench_driver.scheduler_stats();
  }

  outcome.summary = report::SummarizeBy(
      outcome.records, [](const driver::QueryRecord& r) {
        return r.driver_name + " tr=" +
               FormatDouble(MicrosToSeconds(r.time_requirement), 1) + "s";
      });
  return outcome;
}

}  // namespace idebench::core
