#ifndef IDEBENCH_CORE_IDEBENCH_H_
#define IDEBENCH_CORE_IDEBENCH_H_

/// \file idebench.h
/// Umbrella header and one-call benchmark runner.
///
/// Typical use:
///
/// ```cpp
/// idebench::core::BenchmarkConfig config;
/// config.engine = "progressive";
/// config.time_requirement_s = {0.5, 1, 3, 5, 10};
/// auto outcome = idebench::core::RunBenchmark(config);
/// std::cout << idebench::report::RenderSummaryTable(outcome->summary);
/// ```

#include <memory>
#include <string>
#include <vector>

#include "core/dataset.h"
#include "driver/benchmark_driver.h"
#include "engines/registry.h"
#include "report/report.h"
#include "workflow/generator.h"

namespace idebench::core {

/// End-to-end benchmark run configuration.
struct BenchmarkConfig {
  /// Engine under test (see engines::BuiltinEngineNames()).
  std::string engine = "progressive";

  /// Dataset to build (nominal size, layout, seed).
  DatasetConfig dataset;

  /// Time requirements to sweep (seconds).
  std::vector<double> time_requirements_s = {0.5, 1.0, 3.0, 5.0, 10.0};

  /// Think time between interactions (seconds).
  double think_time_s = 1.0;

  double confidence_level = 0.95;

  /// Workflows per type in the generated suite; the paper's default
  /// configuration runs 10 per type.
  int workflows_per_type = 10;

  /// Restrict the run to these workflow types (empty = mixed only,
  /// matching the paper's main experiment).
  std::vector<workflow::WorkflowType> workflow_types = {
      workflow::WorkflowType::kMixed};

  /// Physical execution threads for the engine under test
  /// (Settings::threads semantics: 1 = single-threaded path, 0 =
  /// hardware concurrency).
  int threads = 1;

  /// Cross-interaction result-reuse cache for the engine under test
  /// (Settings::reuse_cache semantics: displaces physical work only;
  /// results are unchanged; default off).
  bool reuse_cache = false;

  /// Concurrent exploration sessions served by one shared engine
  /// (Settings::sessions semantics): 1 = the seed single-client behavior,
  /// n > 1 = the workflow suite distributed round-robin over n sessions
  /// under the fair time-slice scheduler (session/session.h).
  int sessions = 1;

  uint64_t seed = 7;
};

/// Results of an end-to-end run.
struct BenchmarkOutcome {
  /// Virtual data-preparation time.
  Micros data_preparation_time = 0;

  /// One record per executed query, across all TRs and workflows.
  std::vector<driver::QueryRecord> records;

  /// Summary rows grouped by (engine, time requirement).
  std::vector<report::SummaryRow> summary;

  /// Reuse-cache telemetry summed over the engines of the sweep (zeros
  /// when `BenchmarkConfig::reuse_cache` is off).
  metrics::ReuseCacheStats reuse;

  /// Scheduler telemetry of the last time requirement's run (fairness /
  /// cancellation counters; zeros for single-session configurations).
  session::SchedulerStats scheduler;
};

/// Builds the dataset, generates workflows, prepares the engine and runs
/// the full sweep.
Result<BenchmarkOutcome> RunBenchmark(const BenchmarkConfig& config);

}  // namespace idebench::core

#endif  // IDEBENCH_CORE_IDEBENCH_H_
