#ifndef IDEBENCH_EXEC_REUSE_CACHE_H_
#define IDEBENCH_EXEC_REUSE_CACHE_H_

/// \file reuse_cache.h
/// Cross-interaction result-reuse cache.
///
/// IDEBench workflows are sequences of *related* interactions: each step
/// tweaks a filter, drills down, or re-bins the previous visualization,
/// so consecutive queries recompute mostly-overlapping aggregates.  This
/// cache lets an engine resume from the physical work of an earlier
/// interaction instead of restarting:
///
///  * Entries snapshot a `BinnedAggregator`'s partial bin tables, keyed
///    by the normalized query signature (`query::QuerySpec::Signature`:
///    bin spec + aggregates + canonicalized predicate set; the table and
///    join chain are implied by the catalog) together with the
///    sampled-row *watermark* — how far along its feed (shuffled walk,
///    scan, or weighted sample) the snapshot got.
///  * A subsumption matcher recognizes when a new interaction's predicate
///    set is *equal to* a cached entry (serve the snapshot and continue
///    sampling past the watermark) or a *refinement* of one (replay only
///    the cached candidate rows through the refined filter instead of
///    rescanning every row — rows the weaker filter rejected cannot pass
///    the stronger one).
///
/// Transparency contract: serving from the cache reproduces, bit for
/// bit, the aggregator state the engine would have built by feeding the
/// same positions sequentially (see `BinnedAggregator::ReplayMatches`).
/// The virtual cost model is never touched — reuse displaces *physical*
/// work (benchmark wall-clock), not simulated time — so results with
/// the cache on and off are identical; `tests/workflow_fuzz_test.cc`
/// holds every engine to that differentially.  Caveat mirroring
/// exec/parallel.h: integer-valued fields (counters, COUNT, MIN/MAX)
/// are bit-identical unconditionally, but with `threads > 1` on feeds
/// spanning multiple morsels, serving shifts the remainder's morsel
/// boundaries, so real-valued sums may regroup in the last ulp relative
/// to a cache-off run (the fuzz fixture stays below one morsel so its
/// exact comparison is valid).
///
/// Snapshots compose with morsel-parallel execution: they are adopted
/// via `MergeFrom` (which also carries the recorded candidate list) and
/// the remainder of a feed may run through `exec/parallel.h` as usual.
///
/// Eviction is per-visualization LRU: dashboards hold few live vizs, and
/// a viz's next query overwhelmingly resembles its previous one, so each
/// viz keeps its most recent signatures; a global cap bounds the total.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/result.h"
#include "exec/aggregator.h"
#include "exec/bound_query.h"
#include "metrics/metrics.h"
#include "query/spec.h"

namespace idebench::exec {

/// Capacity knobs.
struct ReuseCacheOptions {
  /// Entries retained per visualization (LRU within the viz).
  int64_t max_entries_per_viz = 4;

  /// Global entry cap (LRU across all vizs).
  int64_t max_entries_total = 64;

  /// Global byte budget over the entries' dominant allocations
  /// (candidate lists + bin tables, estimated); LRU-evicts past it, so
  /// low-selectivity snapshots cannot pin entry-count × candidate-cap
  /// worth of memory.
  int64_t max_total_bytes = 64 << 20;

  /// Baseline mode for benchmarking delta maintenance: when set, any
  /// entry stored under an older epoch watermark than the cache's
  /// current one is treated as stale at lookup and dropped (classic
  /// invalidate-on-growth).  Off by default: every engine feed is
  /// *prefix-invariant* under epoch publishes (walk segments, scans and
  /// stratified samples are all append-only), so a snapshot's first
  /// `watermark` positions mean exactly the same rows at any later
  /// epoch — new epochs fold into matching snapshots by scanning only
  /// the delta positions past the snapshot's watermark.
  bool invalidate_on_growth = false;
};

/// Per-engine cross-interaction reuse cache.  Not thread-safe: engines
/// are single-threaded simulators; only the aggregation *inside* a feed
/// is morsel-parallel.
class ReuseCache {
 public:
  /// One cached snapshot.  The entry owns its spec copy and binding so
  /// the snapshot stays valid after the originating query is released;
  /// the join indexes and catalog it references belong to the engine,
  /// which outlives the cache.
  struct Entry {
    std::string full_key;   // query::QuerySpec::Signature()
    std::string core_key;   // query::QuerySpec::CoreSignature()
    std::string viz;        // owning viz (LRU bucket)
    std::unique_ptr<query::QuerySpec> spec;  // stable address for `bound`
    std::unique_ptr<BoundQuery> bound;
    /// Aggregator state after the first `watermark` feed positions; its
    /// recorder holds the candidate (matched) rows of that prefix.
    std::unique_ptr<BinnedAggregator> snapshot;
    int64_t watermark = 0;
    /// Visible-row epoch watermark when the snapshot was stored; keyed
    /// into staleness decisions under `invalidate_on_growth` and
    /// reported for observability (delta mode never invalidates on it).
    int64_t epoch_watermark = 0;
    uint64_t last_used = 0;
    /// Estimated resident size (candidate list + bin tables); the unit
    /// of the cache's byte budget.
    int64_t approx_bytes = 0;
  };

  /// How a lookup matched.
  enum class MatchKind : uint8_t {
    kNone = 0,
    kEqual,       // identical canonical predicate set
    kRefinement,  // new predicates refine the cached ones
  };

  /// A pinned lookup result: keeps the entry alive across evictions for
  /// the lifetime of the query that holds it.
  struct Match {
    std::shared_ptr<const Entry> entry;
    MatchKind kind = MatchKind::kNone;

    explicit operator bool() const { return entry != nullptr; }
    int64_t watermark() const { return entry != nullptr ? entry->watermark : 0; }
  };

  /// Binds an entry-owned spec copy for snapshot storage (supplied by the
  /// engine, which knows its join strategy).
  using Binder =
      std::function<Result<BoundQuery>(const query::QuerySpec& spec)>;

  explicit ReuseCache(ReuseCacheOptions options = {});

  /// Finds the best usable entry for `spec`: an equal-signature entry if
  /// one exists, otherwise the deepest-watermark entry with the same core
  /// signature whose predicate set `spec`'s filter refines.  Bumps LRU
  /// and hit/miss counters.
  Match Lookup(const query::QuerySpec& spec);

  /// Snapshots `agg` (which must have been built with
  /// `record_matches`, and fed in feed-position order) under `spec`'s
  /// signature.  Replaces an existing entry only when the new watermark
  /// is deeper; evicts per-viz and global LRU overflow.
  void Store(const query::QuerySpec& spec, const BinnedAggregator& agg,
             const Binder& binder);

  /// Serves feed positions [begin, end) of `match` into `agg`: adopts the
  /// whole snapshot via MergeFrom when the range covers the watermark
  /// from zero, otherwise replays the recorded candidate slice.  Returns
  /// the position up to which the cache served (== begin when the match
  /// is empty or exhausted); the caller feeds the remainder physically.
  static int64_t Serve(const Match& match, BinnedAggregator* agg,
                       int64_t begin, int64_t end);

  /// Adds to the rows-served telemetry (the engine knows how many
  /// positions `Serve` displaced).
  void AddRowsServed(int64_t n) { stats_.rows_served += n; }

  /// Advances the cache's view of the published epoch watermark (the
  /// engine calls this around lookups/stores).  Monotonic; entries
  /// stored from now on carry it, and under `invalidate_on_growth`
  /// entries below it die at their next lookup.
  void SetEpochWatermark(int64_t w) {
    if (w > epoch_watermark_) epoch_watermark_ = w;
  }

  int64_t epoch_watermark() const { return epoch_watermark_; }

  /// Drops every entry owned by `viz` (the dashboard discarded it).
  /// Pinned matches stay alive through their shared_ptrs.
  void DropViz(const std::string& viz);

  /// Drops all entries — a workflow boundary models a fresh user
  /// session, so physical work must not carry across it (it would
  /// distort per-workflow wall-clock accounting; results would be
  /// unchanged either way).  Counters are cumulative and survive.
  void Clear();

  /// Counters plus the current entry count.
  metrics::ReuseCacheStats stats() const;

  size_t size() const { return entries_.size(); }

  /// Estimated resident bytes across all entries.
  int64_t total_bytes() const { return total_bytes_; }

 private:
  void EvictOverflow(const std::string& viz);
  void Erase(std::unordered_map<std::string,
                                std::shared_ptr<Entry>>::iterator it);

  /// True when `entry` must be dropped instead of served (stale under
  /// `invalidate_on_growth`).
  bool IsStale(const Entry& entry) const {
    return options_.invalidate_on_growth &&
           entry.epoch_watermark < epoch_watermark_;
  }

  ReuseCacheOptions options_;
  std::unordered_map<std::string, std::shared_ptr<Entry>> entries_;
  int64_t epoch_watermark_ = 0;
  uint64_t use_tick_ = 0;
  int64_t total_bytes_ = 0;
  metrics::ReuseCacheStats stats_;
};

}  // namespace idebench::exec

#endif  // IDEBENCH_EXEC_REUSE_CACHE_H_
