#include "exec/aggregator.h"

#include <algorithm>
#include <cmath>

namespace idebench::exec {

using query::AggregateType;
using query::BinResult;
using query::QueryResult;

BinnedAggregator::BinnedAggregator(const BoundQuery* query) : query_(query) {}

void BinnedAggregator::ProcessRowWeighted(int64_t row, double weight) {
  ++rows_seen_;
  if (!query_->MatchesFilter(row)) return;
  const int64_t key = query_->BinKey(row);
  if (key < 0) return;
  ++rows_matched_;

  auto it = bins_.find(key);
  if (it == bins_.end()) {
    it = bins_.emplace(key, std::vector<AggAccum>(
                                query_->spec().aggregates.size()))
             .first;
  }
  std::vector<AggAccum>& accums = it->second;
  for (size_t a = 0; a < accums.size(); ++a) {
    const double v = query_->AggValueAt(a, row);
    if (std::isnan(v)) continue;
    AggAccum& acc = accums[a];
    ++acc.n;
    acc.sum += v;
    acc.sumsq += v * v;
    acc.wsum += weight;
    acc.wvar += weight * (weight - 1.0);
    acc.wvsum += weight * v;
    acc.wvsumsq += weight * (weight - 1.0) * v * v;
    acc.min = std::min(acc.min, v);
    acc.max = std::max(acc.max, v);
  }
}

void BinnedAggregator::ProcessRange(int64_t begin, int64_t end) {
  for (int64_t row = begin; row < end; ++row) ProcessRow(row);
}

void BinnedAggregator::Reset() {
  bins_.clear();
  rows_seen_ = 0;
  rows_matched_ = 0;
}

namespace {

/// Sample standard deviation from n / sum / sumsq; 0 when n < 2.
double SampleStddev(int64_t n, double sum, double sumsq) {
  if (n < 2) return 0.0;
  const double dn = static_cast<double>(n);
  const double var = (sumsq - sum * sum / dn) / (dn - 1.0);
  return var > 0.0 ? std::sqrt(var) : 0.0;
}

}  // namespace

QueryResult BinnedAggregator::ExactResult() const {
  QueryResult result;
  result.exact = true;
  result.progress = 1.0;
  result.rows_processed = rows_seen_;
  const auto& aggs = query_->spec().aggregates;
  for (const auto& [key, accums] : bins_) {
    BinResult bin;
    bin.values.resize(aggs.size());
    for (size_t a = 0; a < aggs.size(); ++a) {
      const AggAccum& acc = accums[a];
      query::AggValue& out = bin.values[a];
      out.margin = 0.0;
      switch (aggs[a].type) {
        case AggregateType::kCount:
          out.estimate = static_cast<double>(acc.n);
          break;
        case AggregateType::kSum:
          out.estimate = acc.sum;
          break;
        case AggregateType::kAvg:
          out.estimate = acc.n > 0 ? acc.sum / static_cast<double>(acc.n) : 0.0;
          break;
        case AggregateType::kMin:
          out.estimate = acc.n > 0 ? acc.min : 0.0;
          break;
        case AggregateType::kMax:
          out.estimate = acc.n > 0 ? acc.max : 0.0;
          break;
      }
    }
    if (!bin.values.empty()) result.bins.emplace(key, std::move(bin));
  }
  return result;
}

QueryResult BinnedAggregator::EstimateFromUniformSample(int64_t population,
                                                        double z) const {
  QueryResult result;
  result.exact = false;
  result.rows_processed = rows_seen_;
  const double s = static_cast<double>(rows_seen_);
  const double pop = static_cast<double>(std::max<int64_t>(population, 1));
  result.progress = std::min(1.0, s / pop);
  if (rows_seen_ <= 0) return result;

  const double scale = pop / s;
  // Finite-population correction: when the sample approaches the
  // population, scale-up variance vanishes.
  const double fpc = std::max(0.0, 1.0 - s / pop);
  const bool complete = rows_seen_ >= population;
  result.exact = complete;

  const auto& aggs = query_->spec().aggregates;
  for (const auto& [key, accums] : bins_) {
    BinResult bin;
    bin.values.resize(aggs.size());
    for (size_t a = 0; a < aggs.size(); ++a) {
      const AggAccum& acc = accums[a];
      query::AggValue& out = bin.values[a];
      switch (aggs[a].type) {
        case AggregateType::kCount: {
          // y_i = 1{row in bin}; est = N * mean(y).
          const double mean_y = static_cast<double>(acc.n) / s;
          out.estimate = complete ? static_cast<double>(acc.n)
                                  : scale * static_cast<double>(acc.n);
          const double var_y = mean_y * (1.0 - mean_y);
          out.margin =
              complete ? 0.0 : z * pop * std::sqrt(var_y * fpc / s);
          break;
        }
        case AggregateType::kSum: {
          // y_i = v_i * 1{row in bin}; est = N * mean(y).
          const double mean_y = acc.sum / s;
          out.estimate = complete ? acc.sum : scale * acc.sum;
          const double var_y = std::max(0.0, acc.sumsq / s - mean_y * mean_y);
          out.margin = complete ? 0.0 : z * pop * std::sqrt(var_y * fpc / s);
          break;
        }
        case AggregateType::kAvg: {
          const double n = static_cast<double>(acc.n);
          out.estimate = acc.n > 0 ? acc.sum / n : 0.0;
          const double sd = SampleStddev(acc.n, acc.sum, acc.sumsq);
          out.margin =
              complete || acc.n == 0 ? 0.0 : z * sd * std::sqrt(fpc) / std::sqrt(n);
          break;
        }
        case AggregateType::kMin:
          out.estimate = acc.n > 0 ? acc.min : 0.0;
          out.margin = 0.0;  // no distribution-free CI for extremes
          break;
        case AggregateType::kMax:
          out.estimate = acc.n > 0 ? acc.max : 0.0;
          out.margin = 0.0;
          break;
      }
    }
    if (!bin.values.empty()) result.bins.emplace(key, std::move(bin));
  }
  return result;
}

QueryResult BinnedAggregator::EstimateFromWeightedSample(double z) const {
  QueryResult result;
  result.exact = false;
  result.rows_processed = rows_seen_;
  // Progress is intentionally left at the sample coverage the caller
  // reports; weighted samples are fixed-size, so "progress" is 1 once the
  // sample is fully scanned.  The engine overrides this field.
  result.progress = 1.0;

  const auto& aggs = query_->spec().aggregates;
  for (const auto& [key, accums] : bins_) {
    BinResult bin;
    bin.values.resize(aggs.size());
    for (size_t a = 0; a < aggs.size(); ++a) {
      const AggAccum& acc = accums[a];
      query::AggValue& out = bin.values[a];
      switch (aggs[a].type) {
        case AggregateType::kCount:
          // Horvitz–Thompson: est = sum of weights; Poisson-approximation
          // variance sum w_i (w_i - 1).
          out.estimate = acc.wsum;
          out.margin = z * std::sqrt(std::max(0.0, acc.wvar));
          break;
        case AggregateType::kSum:
          out.estimate = acc.wvsum;
          out.margin = z * std::sqrt(std::max(0.0, acc.wvsumsq));
          break;
        case AggregateType::kAvg: {
          // Ratio estimator: weighted mean; CI from within-bin spread of
          // the unweighted sample (Hájek-style approximation).
          out.estimate = acc.wsum > 0 ? acc.wvsum / acc.wsum : 0.0;
          const double sd = SampleStddev(acc.n, acc.sum, acc.sumsq);
          out.margin =
              acc.n > 0 ? z * sd / std::sqrt(static_cast<double>(acc.n)) : 0.0;
          break;
        }
        case AggregateType::kMin:
          out.estimate = acc.n > 0 ? acc.min : 0.0;
          out.margin = 0.0;
          break;
        case AggregateType::kMax:
          out.estimate = acc.n > 0 ? acc.max : 0.0;
          out.margin = 0.0;
          break;
      }
    }
    if (!bin.values.empty()) result.bins.emplace(key, std::move(bin));
  }
  return result;
}

}  // namespace idebench::exec
