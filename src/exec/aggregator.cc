#include "exec/aggregator.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/logging.h"

namespace idebench::exec {

using query::AggregateType;
using query::BinResult;
using query::QueryResult;

BinnedAggregator::BinnedAggregator(const BoundQuery* query,
                                   BinnedAggregatorOptions options)
    : query_(query), options_(options) {
  if (!options_.enable_vectorized) return;
  auto vec =
      std::make_shared<VectorizedQuery>(VectorizedQuery::Compile(*query));
  if (!vec->ok()) return;
  vec_ = std::move(vec);
  DecideDense();
}

BinnedAggregator::BinnedAggregator(const BoundQuery* query,
                                   BinnedAggregatorOptions options,
                                   std::shared_ptr<const VectorizedQuery> vec)
    : query_(query), options_(options), vec_(std::move(vec)) {
  if (vec_ != nullptr && vec_->ok()) DecideDense();
}

void BinnedAggregator::DecideDense() {
  const int64_t keys = vec_->key_space();
  const int64_t naggs =
      std::max<int64_t>(1, static_cast<int64_t>(vec_->num_aggregates()));
  use_dense_ = options_.enable_dense_bins && keys > 0 &&
               keys <= options_.dense_key_limit &&
               keys * naggs <= options_.dense_accum_limit;
  dense_keys_ = use_dense_ ? keys : 0;
  use_fused_ = options_.enable_fused && vec_->fused_ok();
}

std::unique_ptr<BinnedAggregator> BinnedAggregator::NewPartial() const {
  return std::unique_ptr<BinnedAggregator>(
      new BinnedAggregator(query_, options_, vec_));
}

std::unique_ptr<BinnedAggregator> BinnedAggregator::AcquirePartial() {
  if (!partial_pool_.empty()) {
    std::unique_ptr<BinnedAggregator> p = std::move(partial_pool_.back());
    partial_pool_.pop_back();
    return p;
  }
  return NewPartial();
}

void BinnedAggregator::ReleasePartial(
    std::unique_ptr<BinnedAggregator> partial) {
  if (partial == nullptr) return;
  // Bounded by the widest wave the dispatcher can run (pool thread cap);
  // Reset() keeps the dense-table capacity, which is the point.
  constexpr size_t kMaxPooledPartials = 64;
  if (partial_pool_.size() >= kMaxPooledPartials) return;
  partial->Reset();
  partial_pool_.push_back(std::move(partial));
}

namespace {

/// Equivalent query shape: same binning columns and resolved bin counts,
/// same aggregate list.  (Filters are intentionally not compared: the
/// reuse cache only merges equal-signature snapshots, and morsel
/// partials share the identical bound query anyway.)
bool SameQueryShape(const query::QuerySpec& a, const query::QuerySpec& b) {
  if (a.bins.size() != b.bins.size() ||
      a.aggregates.size() != b.aggregates.size()) {
    return false;
  }
  for (size_t i = 0; i < a.bins.size(); ++i) {
    if (a.bins[i].column != b.bins[i].column ||
        a.bins[i].bin_count != b.bins[i].bin_count) {
      return false;
    }
  }
  for (size_t i = 0; i < a.aggregates.size(); ++i) {
    if (a.aggregates[i].type != b.aggregates[i].type ||
        a.aggregates[i].column != b.aggregates[i].column) {
      return false;
    }
  }
  return true;
}

}  // namespace

void BinnedAggregator::MergeFrom(const BinnedAggregator& other) {
  // Same bound query (morsel partials), or an equivalent binding of an
  // equal-shape spec (the reuse cache merges snapshots bound to
  // entry-owned spec copies).
  IDB_CHECK(query_ == other.query_ ||
            SameQueryShape(query_->spec(), other.query_->spec()));
  if (other.rows_seen_ == 0) return;
  if (options_.record_matches) {
    // A side whose matched rows were not (fully) recorded poisons the
    // candidate list: mark this recorder overflowed rather than leave an
    // incomplete list that looks replay-safe.
    const bool other_replayable =
        other.options_.record_matches && !other.matches_overflowed_;
    if (!other_replayable) {
      if (other.rows_matched_ > 0) {
        matches_overflowed_ = true;
        matches_ = {};
      }
    } else if (!other.matches_.empty() &&
               RecorderAccepts(static_cast<int64_t>(other.matches_.size()))) {
      // Shift the other side's feed positions past ours: partials fold
      // in morsel order, so positions stay the walk positions of the
      // whole feed; snapshots adopt into empty aggregators with a zero
      // shift.
      matches_.reserve(matches_.size() + other.matches_.size());
      for (const MatchedRow& m : other.matches_) {
        matches_.push_back({m.pos + rows_seen_, m.row, m.weight});
      }
    }
  }
  rows_seen_ += other.rows_seen_;
  rows_matched_ += other.rows_matched_;
  zone_rows_skipped_ += other.zone_rows_skipped_;
  zone_blocks_skipped_ += other.zone_blocks_skipped_;
  const size_t naggs = query_->spec().aggregates.size();

  // Fast path: both sides use the same dense layout — a flat index-wise
  // fold with no key translation.
  if (use_dense_ && other.use_dense_ && dense_keys_ == other.dense_keys_) {
    if (other.dense_touched_.empty()) return;
    EnsureDenseAllocated();
    for (int64_t d = 0; d < dense_keys_; ++d) {
      if (!other.dense_touched_[static_cast<size_t>(d)]) continue;
      dense_touched_[static_cast<size_t>(d)] = 1;
      AggAccum* into = dense_.data() + static_cast<size_t>(d) * naggs;
      const AggAccum* from =
          other.dense_.data() + static_cast<size_t>(d) * naggs;
      for (size_t a = 0; a < naggs; ++a) MergeAccum(&into[a], from[a]);
    }
    return;
  }

  // General path reconciling the dense/hash boundary: walk the other
  // side's touched bins by public key and fold into whichever table this
  // side uses.  Bins are independent, so the visit order is immaterial.
  other.ForEachBin([&](int64_t key, const AggAccum* from) {
    AggAccum* into = AccumsForPublicKey(key);
    for (size_t a = 0; a < naggs; ++a) MergeAccum(&into[a], from[a]);
  });
}

void BinnedAggregator::EnsureDenseAllocated() {
  if (!dense_touched_.empty()) return;
  const size_t naggs = query_->spec().aggregates.size();
  dense_.assign(static_cast<size_t>(dense_keys_) * naggs, AggAccum{});
  dense_touched_.assign(static_cast<size_t>(dense_keys_), 0);
}

AggAccum* BinnedAggregator::AccumsForPublicKey(int64_t key) {
  const size_t naggs = query_->spec().aggregates.size();
  if (use_dense_) {
    EnsureDenseAllocated();
    const int64_t d = vec_->PublicKeyToDense(key);
    dense_touched_[static_cast<size_t>(d)] = 1;
    return dense_.data() + static_cast<size_t>(d) * naggs;
  }
  auto it = bins_.find(key);
  if (it == bins_.end()) {
    it = bins_.emplace(key, std::vector<AggAccum>(naggs)).first;
  }
  return it->second.data();
}

void BinnedAggregator::ProcessRowWeighted(int64_t row, double weight) {
  ProcessRowAt(row, weight, rows_seen_);
}

void BinnedAggregator::ProcessRowAt(int64_t row, double weight, int64_t pos) {
  ++rows_seen_;
  if (!query_->MatchesFilter(row)) return;
  const int64_t key = query_->BinKey(row);
  if (key < 0) return;
  ++rows_matched_;
  if (RecorderAccepts(1)) matches_.push_back({pos, row, weight});

  AggAccum* accums = AccumsForPublicKey(key);
  const size_t naggs = query_->spec().aggregates.size();
  for (size_t a = 0; a < naggs; ++a) {
    const double v = query_->AggValueAt(a, row);
    if (std::isnan(v)) continue;
    Accumulate(&accums[a], v, weight);
  }
}

void BinnedAggregator::ProcessBatch(const int64_t* rows, int64_t n,
                                    double weight) {
  if (vec_ == nullptr) {
    for (int64_t i = 0; i < n; ++i) {
      ProcessRowAt(rows[i], weight,
                   replay_positions_ != nullptr ? replay_positions_[i]
                                                : rows_seen_);
    }
    return;
  }
  RowBatch batch;
  std::array<AggAccum*, kVectorBatchSize> bases;
  const size_t naggs = query_->spec().aggregates.size();

  for (int64_t off = 0; off < n; off += kVectorBatchSize) {
    batch.rows = rows + off;
    batch.n = std::min(n - off, kVectorBatchSize);
    const int64_t pos_base = rows_seen_;  // feed position of batch.rows[0]
    rows_seen_ += batch.n;

    // Fused and two-phase front ends share the postcondition (compact
    // sel + dense keys in feed order), so everything below — recorder,
    // base resolution, accumulation — is common code.
    const int64_t m = use_fused_ ? vec_->FusedFilterBin(&batch)
                                 : vec_->FilterAndBin(&batch);
    rows_matched_ += m;
    if (m == 0) continue;

    if (RecorderAccepts(m)) {
      // Bulk-append with one resize: per-element push_back capacity
      // checks cost more than the whole recording otherwise.
      const size_t old_size = matches_.size();
      matches_.resize(old_size + static_cast<size_t>(m));
      MatchedRow* out = matches_.data() + old_size;
      if (replay_positions_ != nullptr) {
        for (int64_t i = 0; i < m; ++i) {
          const int64_t idx = batch.sel[i];
          out[i] = {replay_positions_[off + idx], batch.rows[idx], weight};
        }
      } else {
        for (int64_t i = 0; i < m; ++i) {
          const int64_t idx = batch.sel[i];
          out[i] = {pos_base + idx, batch.rows[idx], weight};
        }
      }
    }

    // Fused agg-set kernel for the canonical dashboard shape — COUNT
    // plus one value aggregate, unit weight, dense table: one pass over
    // the selection, accumulator row resolved once per row, no bases
    // scratch.  Per-cell accumulation order (agg 0 then agg 1 within a
    // row, rows in feed order) matches the agg-major loops below
    // bit-exactly because the two aggregates never share a cell.  Gated
    // on the fused plan so enable_fused=false really is the unmodified
    // two-phase reference, accumulation tail included.
    if (use_fused_ && use_dense_ && weight == 1.0 && naggs == 2 &&
        vec_->agg_is_count(0) && !vec_->agg_is_count(1)) {
      EnsureDenseAllocated();
      const double* values = vec_->GatherAggValues(1, &batch);
      for (int64_t i = 0; i < m; ++i) {
        const size_t d = static_cast<size_t>(batch.keys[i]);
        dense_touched_[d] = 1;
        AggAccum* base = dense_.data() + d * 2;
        AccumulateUnit(&base[0], 1.0);
        const double v = values[i];
        if (v == v) AccumulateUnit(&base[1], v);
      }
      continue;
    }

    // Resolve each selected row's accumulator base once.
    if (use_dense_) {
      EnsureDenseAllocated();
      for (int64_t i = 0; i < m; ++i) {
        const size_t d = static_cast<size_t>(batch.keys[i]);
        dense_touched_[d] = 1;
        bases[i] = dense_.data() + d * naggs;
      }
    } else {
      for (int64_t i = 0; i < m; ++i) {
        const int64_t key = vec_->DenseKeyToPublic(batch.keys[i]);
        auto it = bins_.find(key);
        if (it == bins_.end()) {
          it = bins_.emplace(key, std::vector<AggAccum>(naggs)).first;
        }
        bases[i] = it->second.data();
      }
    }

    const bool unit_weight = weight == 1.0;
    for (size_t a = 0; a < naggs; ++a) {
      if (vec_->agg_is_count(a)) {
        if (unit_weight) {
          for (int64_t i = 0; i < m; ++i) AccumulateUnit(&bases[i][a], 1.0);
        } else {
          for (int64_t i = 0; i < m; ++i) Accumulate(&bases[i][a], 1.0, weight);
        }
        continue;
      }
      const double* values = vec_->GatherAggValues(a, &batch);
      for (int64_t i = 0; i < m; ++i) {
        const double v = values[i];
        if (!(v == v)) continue;  // NaN input: scalar parity
        if (unit_weight) {
          AccumulateUnit(&bases[i][a], v);
        } else {
          Accumulate(&bases[i][a], v, weight);
        }
      }
    }
  }
}

void BinnedAggregator::ProcessCountRun(int64_t dense_key, int64_t rows) {
  // Precondition checks: the caller (the segment scan's RLE fast path)
  // guarantees an all-COUNT aggregate list, so every accumulator this
  // touches has only ever taken unit observations — all affected fields
  // hold integers (n and sums of 1.0, exact far beyond any row count)
  // and min/max fold idempotently to 1.0.  One bulk add is therefore
  // bit-identical to `rows` individual batch-path updates.
  IDB_CHECK(vec_ != nullptr && vec_->ok());
  IDB_CHECK(!options_.record_matches);
  IDB_CHECK(rows > 0);
  IDB_CHECK(dense_key >= 0 && dense_key < vec_->key_space());
  const size_t naggs = query_->spec().aggregates.size();
  for (size_t a = 0; a < naggs; ++a) IDB_CHECK(vec_->agg_is_count(a));

  rows_seen_ += rows;
  rows_matched_ += rows;
  AggAccum* base;
  if (use_dense_) {
    EnsureDenseAllocated();
    dense_touched_[static_cast<size_t>(dense_key)] = 1;
    base = dense_.data() + static_cast<size_t>(dense_key) * naggs;
  } else {
    base = AccumsForPublicKey(vec_->DenseKeyToPublic(dense_key));
  }
  const double r = static_cast<double>(rows);
  for (size_t a = 0; a < naggs; ++a) {
    AggAccum* acc = &base[a];
    acc->n += rows;
    acc->sum += r;
    acc->sumsq += r;
    acc->wsum += r;
    acc->wvsum += r;
    acc->min = std::min(acc->min, 1.0);
    acc->max = std::max(acc->max, 1.0);
  }
}

void BinnedAggregator::ProcessRange(int64_t begin, int64_t end) {
  if (vec_ == nullptr) {
    for (int64_t row = begin; row < end; ++row) ProcessRow(row);
    return;
  }
  // Physical scans consult the fact columns' zone maps block by block:
  // a 64K block whose bounds prove no row can pass the filter (or land
  // in any bin) is skipped wholesale — rows still accounted, so results
  // are bit-identical to the unpruned scan.
  const VectorizedQuery* prune = zone_prune_query();
  std::array<int64_t, kVectorBatchSize> rows;
  for (int64_t seg = begin; seg < end;) {
    // Zone-block-aligned segment [seg, seg_end).
    const int64_t block_end =
        (seg / storage::kZoneMapBlockRows + 1) * storage::kZoneMapBlockRows;
    const int64_t seg_end = std::min(end, block_end);
    if (prune != nullptr && !prune->RangeCanMatch(seg, seg_end)) {
      AccountZoneSkip(seg_end - seg);
      seg = seg_end;
      continue;
    }
    for (int64_t b = seg; b < seg_end; b += kVectorBatchSize) {
      const int64_t c = std::min(seg_end - b, kVectorBatchSize);
      for (int64_t i = 0; i < c; ++i) rows[static_cast<size_t>(i)] = b + i;
      ProcessBatch(rows.data(), c);
    }
    seg = seg_end;
  }
}

void BinnedAggregator::ProcessShuffled(const aqp::ShuffledIndex& order,
                                       int64_t start_pos, int64_t count) {
  std::array<int64_t, kVectorBatchSize> rows;
  for (int64_t done = 0; done < count;) {
    const int64_t c = std::min(count - done, kVectorBatchSize);
    order.Gather(start_pos + done, c, rows.data());
    ProcessBatch(rows.data(), c);
    done += c;
  }
}

void BinnedAggregator::ProcessWalk(const aqp::ShuffledIndex& order,
                                   int64_t key, int64_t start_pos,
                                   int64_t count) {
  std::array<int64_t, kVectorBatchSize> rows;
  for (int64_t done = 0; done < count;) {
    const int64_t c = std::min(count - done, kVectorBatchSize);
    order.GatherWalk(key, start_pos + done, c, rows.data());
    ProcessBatch(rows.data(), c);
    done += c;
  }
}

void BinnedAggregator::ReplayMatches(const std::vector<MatchedRow>& matches,
                                     int64_t pos_begin, int64_t pos_end) {
  const int64_t span = pos_end - pos_begin;
  if (span <= 0) return;
  auto it = std::lower_bound(
      matches.begin(), matches.end(), pos_begin,
      [](const MatchedRow& m, int64_t p) { return m.pos < p; });

  // Feed the recorded rows in batches sharing one weight, carrying their
  // original positions for the recorder; gaps (rows that did not match
  // the recording filter, so cannot match this one either) are accounted
  // at the end in one SkipRows.  Accumulator update order equals the
  // original feed order, so the state is bit-compatible with a direct
  // walk of the underlying rows.
  std::array<int64_t, kVectorBatchSize> rows;
  std::array<int64_t, kVectorBatchSize> positions;
  int64_t fed = 0;
  int64_t n = 0;
  double w = 1.0;
  const auto flush = [&] {
    if (n == 0) return;
    replay_positions_ = positions.data();
    ProcessBatch(rows.data(), n, w);
    replay_positions_ = nullptr;
    fed += n;
    n = 0;
  };
  for (; it != matches.end() && it->pos < pos_end; ++it) {
    if (n == kVectorBatchSize || (n > 0 && it->weight != w)) flush();
    if (n == 0) w = it->weight;
    rows[static_cast<size_t>(n)] = it->row;
    positions[static_cast<size_t>(n)] = it->pos;
    ++n;
  }
  flush();
  SkipRows(span - fed);
}

void BinnedAggregator::Reset() {
  bins_.clear();
  dense_.clear();  // keeps capacity: pooled partials reuse the buffer
  dense_touched_.clear();
  matches_.clear();
  matches_overflowed_ = false;
  rows_seen_ = 0;
  rows_matched_ = 0;
  zone_rows_skipped_ = 0;
  zone_blocks_skipped_ = 0;
  partial_pool_.clear();
}

namespace {

/// Sample standard deviation from n / sum / sumsq; 0 when n < 2.
double SampleStddev(int64_t n, double sum, double sumsq) {
  if (n < 2) return 0.0;
  const double dn = static_cast<double>(n);
  const double var = (sumsq - sum * sum / dn) / (dn - 1.0);
  return var > 0.0 ? std::sqrt(var) : 0.0;
}

}  // namespace

QueryResult BinnedAggregator::ExactResult() const {
  QueryResult result;
  result.exact = true;
  result.progress = 1.0;
  result.rows_processed = rows_seen_;
  const auto& aggs = query_->spec().aggregates;
  ForEachBin([&](int64_t key, const AggAccum* accums) {
    BinResult bin;
    bin.values.resize(aggs.size());
    for (size_t a = 0; a < aggs.size(); ++a) {
      const AggAccum& acc = accums[a];
      query::AggValue& out = bin.values[a];
      out.margin = 0.0;
      switch (aggs[a].type) {
        case AggregateType::kCount:
          out.estimate = static_cast<double>(acc.n);
          break;
        case AggregateType::kSum:
          out.estimate = acc.sum;
          break;
        case AggregateType::kAvg:
          out.estimate = acc.n > 0 ? acc.sum / static_cast<double>(acc.n) : 0.0;
          break;
        case AggregateType::kMin:
          out.estimate = acc.n > 0 ? acc.min : 0.0;
          break;
        case AggregateType::kMax:
          out.estimate = acc.n > 0 ? acc.max : 0.0;
          break;
      }
    }
    if (!bin.values.empty()) result.bins.emplace(key, std::move(bin));
  });
  return result;
}

QueryResult BinnedAggregator::EstimateFromUniformSample(int64_t population,
                                                        double z) const {
  QueryResult result;
  result.exact = false;
  result.rows_processed = rows_seen_;
  const double s = static_cast<double>(rows_seen_);
  const double pop = static_cast<double>(std::max<int64_t>(population, 1));
  result.progress = std::min(1.0, s / pop);
  if (rows_seen_ <= 0) return result;

  const double scale = pop / s;
  // Finite-population correction: when the sample approaches the
  // population, scale-up variance vanishes.
  const double fpc = std::max(0.0, 1.0 - s / pop);
  const bool complete = rows_seen_ >= population;
  result.exact = complete;

  const auto& aggs = query_->spec().aggregates;
  ForEachBin([&](int64_t key, const AggAccum* accums) {
    BinResult bin;
    bin.values.resize(aggs.size());
    for (size_t a = 0; a < aggs.size(); ++a) {
      const AggAccum& acc = accums[a];
      query::AggValue& out = bin.values[a];
      switch (aggs[a].type) {
        case AggregateType::kCount: {
          // y_i = 1{row in bin}; est = N * mean(y).
          const double mean_y = static_cast<double>(acc.n) / s;
          out.estimate = complete ? static_cast<double>(acc.n)
                                  : scale * static_cast<double>(acc.n);
          const double var_y = mean_y * (1.0 - mean_y);
          out.margin =
              complete ? 0.0 : z * pop * std::sqrt(var_y * fpc / s);
          break;
        }
        case AggregateType::kSum: {
          // y_i = v_i * 1{row in bin}; est = N * mean(y).
          const double mean_y = acc.sum / s;
          out.estimate = complete ? acc.sum : scale * acc.sum;
          const double var_y = std::max(0.0, acc.sumsq / s - mean_y * mean_y);
          out.margin = complete ? 0.0 : z * pop * std::sqrt(var_y * fpc / s);
          break;
        }
        case AggregateType::kAvg: {
          const double n = static_cast<double>(acc.n);
          out.estimate = acc.n > 0 ? acc.sum / n : 0.0;
          const double sd = SampleStddev(acc.n, acc.sum, acc.sumsq);
          out.margin =
              complete || acc.n == 0 ? 0.0 : z * sd * std::sqrt(fpc) / std::sqrt(n);
          break;
        }
        case AggregateType::kMin:
          out.estimate = acc.n > 0 ? acc.min : 0.0;
          out.margin = 0.0;  // no distribution-free CI for extremes
          break;
        case AggregateType::kMax:
          out.estimate = acc.n > 0 ? acc.max : 0.0;
          out.margin = 0.0;
          break;
      }
    }
    if (!bin.values.empty()) result.bins.emplace(key, std::move(bin));
  });
  return result;
}

QueryResult BinnedAggregator::EstimateFromWeightedSample(double z) const {
  QueryResult result;
  result.exact = false;
  result.rows_processed = rows_seen_;
  // Progress is intentionally left at the sample coverage the caller
  // reports; weighted samples are fixed-size, so "progress" is 1 once the
  // sample is fully scanned.  The engine overrides this field.
  result.progress = 1.0;

  const auto& aggs = query_->spec().aggregates;
  ForEachBin([&](int64_t key, const AggAccum* accums) {
    BinResult bin;
    bin.values.resize(aggs.size());
    for (size_t a = 0; a < aggs.size(); ++a) {
      const AggAccum& acc = accums[a];
      query::AggValue& out = bin.values[a];
      switch (aggs[a].type) {
        case AggregateType::kCount:
          // Horvitz–Thompson: est = sum of weights; Poisson-approximation
          // variance sum w_i (w_i - 1).
          out.estimate = acc.wsum;
          out.margin = z * std::sqrt(std::max(0.0, acc.wvar));
          break;
        case AggregateType::kSum:
          out.estimate = acc.wvsum;
          out.margin = z * std::sqrt(std::max(0.0, acc.wvsumsq));
          break;
        case AggregateType::kAvg: {
          // Ratio estimator: weighted mean; CI from within-bin spread of
          // the unweighted sample (Hájek-style approximation).
          out.estimate = acc.wsum > 0 ? acc.wvsum / acc.wsum : 0.0;
          const double sd = SampleStddev(acc.n, acc.sum, acc.sumsq);
          out.margin =
              acc.n > 0 ? z * sd / std::sqrt(static_cast<double>(acc.n)) : 0.0;
          break;
        }
        case AggregateType::kMin:
          out.estimate = acc.n > 0 ? acc.min : 0.0;
          out.margin = 0.0;
          break;
        case AggregateType::kMax:
          out.estimate = acc.n > 0 ? acc.max : 0.0;
          out.margin = 0.0;
          break;
      }
    }
    if (!bin.values.empty()) result.bins.emplace(key, std::move(bin));
  });
  return result;
}

}  // namespace idebench::exec
