#include "exec/vectorized.h"

#include <cmath>
#include <limits>

namespace idebench::exec {
namespace {

using expr::CompareOp;

/// Physical load path a kernel is specialized on.
enum class Ld { kI64, kF64, kI64Join, kF64Join };

/// Loads the numeric-view value of `row` through access path `L`.
/// Returns false on a join miss (inner-join semantics drop the row).
template <Ld L>
inline bool Load(const ColumnAccess& c, int64_t row, double* v) {
  if constexpr (L == Ld::kI64) {
    *v = static_cast<double>(c.i64[row]);
    return true;
  } else if constexpr (L == Ld::kF64) {
    *v = c.f64[row];
    return true;
  } else {
    const int32_t dim = c.join[row];
    if (dim < 0) return false;
    if constexpr (L == Ld::kI64Join) {
      *v = static_cast<double>(c.i64[dim]);
    } else {
      *v = c.f64[dim];
    }
    return true;
  }
}

/// Predicate test, mirroring expr::Predicate::Matches exactly.
template <CompareOp Op>
inline bool Test(const FilterKernel& k, double v) {
  if constexpr (Op == CompareOp::kEq) return v == k.value;
  if constexpr (Op == CompareOp::kNeq) return v != k.value;
  if constexpr (Op == CompareOp::kLt) return v < k.value;
  if constexpr (Op == CompareOp::kLe) return v <= k.value;
  if constexpr (Op == CompareOp::kGt) return v > k.value;
  if constexpr (Op == CompareOp::kGe) return v >= k.value;
  if constexpr (Op == CompareOp::kRange) return v >= k.lo && v < k.hi;
  if constexpr (Op == CompareOp::kIn) {
    for (const double* s = k.set_begin; s != k.set_end; ++s) {
      if (*s == v) return true;
    }
    return false;
  }
}

template <CompareOp Op, Ld L>
int64_t FilterImpl(const FilterKernel& k, const int64_t* rows, int32_t* sel,
                   int64_t n_sel) {
  int64_t out = 0;
  for (int64_t i = 0; i < n_sel; ++i) {
    const int32_t s = sel[i];
    double v = std::numeric_limits<double>::quiet_NaN();
    const bool loaded = Load<L>(k.col, rows[s], &v);
    // Branchless compaction; NaN fails every predicate (scalar parity).
    const bool pass = loaded & (v == v) & Test<Op>(k, v);
    sel[out] = s;
    out += pass;
  }
  return out;
}

/// SIMD-friendly specialization of the two hottest kernels: the int64 and
/// double *fact-column* range filters.  The generic `FilterImpl` keeps a
/// predicate test inside the gather loop, which blocks vectorization of
/// the comparisons; here the gather is split into its own loop writing a
/// contiguous scratch array, so the compare + branchless compaction loop
/// is a pure vertical operation the compiler can turn into SIMD compares
/// (and, with -march=native, the gather loop into hardware gathers).
/// Semantics are identical to FilterImpl<kRange, L>: NaN never matches
/// ((NaN >= lo) is false), bounds are [lo, hi).
template <Ld L>
int64_t RangeFilterDense(const FilterKernel& k, const int64_t* rows,
                         int32_t* sel, int64_t n_sel) {
  static_assert(L == Ld::kI64 || L == Ld::kF64,
                "join loads keep the generic kernel");
  const double lo = k.lo;
  const double hi = k.hi;
  alignas(64) double vals[kVectorBatchSize];
  if constexpr (L == Ld::kI64) {
    const int64_t* data = k.col.i64;
    for (int64_t i = 0; i < n_sel; ++i) {
      vals[i] = static_cast<double>(data[rows[sel[i]]]);
    }
  } else {
    const double* data = k.col.f64;
    for (int64_t i = 0; i < n_sel; ++i) {
      vals[i] = data[rows[sel[i]]];
    }
  }
  int64_t out = 0;
  for (int64_t i = 0; i < n_sel; ++i) {
    const int32_t s = sel[i];
    sel[out] = s;
    out += (vals[i] >= lo) & (vals[i] < hi);
  }
  return out;
}

/// SIMD-friendly two-phase *fact-column* equality filter, mirroring
/// `RangeFilterDense`: gather into contiguous scratch, then a pure
/// vertical compare + branchless compaction loop the compiler can turn
/// into SIMD compares.  Semantics are identical to FilterImpl<kEq, L>:
/// NaN never matches ((NaN == v) is false), so the explicit NaN guard of
/// the generic kernel is redundant here.
template <Ld L>
int64_t EqFilterDense(const FilterKernel& k, const int64_t* rows,
                      int32_t* sel, int64_t n_sel) {
  static_assert(L == Ld::kI64 || L == Ld::kF64,
                "join loads keep the generic kernel");
  const double value = k.value;
  alignas(64) double vals[kVectorBatchSize];
  if constexpr (L == Ld::kI64) {
    const int64_t* data = k.col.i64;
    for (int64_t i = 0; i < n_sel; ++i) {
      vals[i] = static_cast<double>(data[rows[sel[i]]]);
    }
  } else {
    const double* data = k.col.f64;
    for (int64_t i = 0; i < n_sel; ++i) {
      vals[i] = data[rows[sel[i]]];
    }
  }
  int64_t out = 0;
  for (int64_t i = 0; i < n_sel; ++i) {
    const int32_t s = sel[i];
    sel[out] = s;
    out += vals[i] == value;
  }
  return out;
}

/// SIMD-friendly two-phase *fact-column* IN-set filter: gather into
/// contiguous scratch, then one vertical equality sweep per set element
/// OR-ing into a pass mask, then branchless compaction.  Turning the
/// per-row set loop of the generic kernel inside-out makes every inner
/// loop a vertical operation over contiguous arrays.  Semantics are
/// identical to FilterImpl<kIn, L>: NaN matches nothing, an empty set
/// selects nothing, duplicates in the set are harmless.
template <Ld L>
int64_t InFilterDense(const FilterKernel& k, const int64_t* rows,
                      int32_t* sel, int64_t n_sel) {
  static_assert(L == Ld::kI64 || L == Ld::kF64,
                "join loads keep the generic kernel");
  alignas(64) double vals[kVectorBatchSize];
  alignas(64) uint8_t pass[kVectorBatchSize];
  if constexpr (L == Ld::kI64) {
    const int64_t* data = k.col.i64;
    for (int64_t i = 0; i < n_sel; ++i) {
      vals[i] = static_cast<double>(data[rows[sel[i]]]);
    }
  } else {
    const double* data = k.col.f64;
    for (int64_t i = 0; i < n_sel; ++i) {
      vals[i] = data[rows[sel[i]]];
    }
  }
  for (int64_t i = 0; i < n_sel; ++i) pass[i] = 0;
  for (const double* s = k.set_begin; s != k.set_end; ++s) {
    const double v = *s;
    for (int64_t i = 0; i < n_sel; ++i) {
      pass[i] |= static_cast<uint8_t>(vals[i] == v);
    }
  }
  int64_t out = 0;
  for (int64_t i = 0; i < n_sel; ++i) {
    const int32_t s = sel[i];
    sel[out] = s;
    out += pass[i];
  }
  return out;
}

template <CompareOp Op>
FilterKernel::Fn PickFilterForOp(Ld load) {
  switch (load) {
    case Ld::kI64:
      return &FilterImpl<Op, Ld::kI64>;
    case Ld::kF64:
      return &FilterImpl<Op, Ld::kF64>;
    case Ld::kI64Join:
      return &FilterImpl<Op, Ld::kI64Join>;
    case Ld::kF64Join:
      return &FilterImpl<Op, Ld::kF64Join>;
  }
  return nullptr;
}

FilterKernel::Fn PickFilter(CompareOp op, Ld load) {
  switch (op) {
    case CompareOp::kEq:
      // Fact-column equality takes the SIMD-friendly two-phase kernel.
      if (load == Ld::kI64) return &EqFilterDense<Ld::kI64>;
      if (load == Ld::kF64) return &EqFilterDense<Ld::kF64>;
      return PickFilterForOp<CompareOp::kEq>(load);
    case CompareOp::kNeq:
      return PickFilterForOp<CompareOp::kNeq>(load);
    case CompareOp::kLt:
      return PickFilterForOp<CompareOp::kLt>(load);
    case CompareOp::kLe:
      return PickFilterForOp<CompareOp::kLe>(load);
    case CompareOp::kGt:
      return PickFilterForOp<CompareOp::kGt>(load);
    case CompareOp::kGe:
      return PickFilterForOp<CompareOp::kGe>(load);
    case CompareOp::kRange:
      // Fact-column range filters take the SIMD-friendly two-phase kernel.
      if (load == Ld::kI64) return &RangeFilterDense<Ld::kI64>;
      if (load == Ld::kF64) return &RangeFilterDense<Ld::kF64>;
      return PickFilterForOp<CompareOp::kRange>(load);
    case CompareOp::kIn:
      // Fact-column IN-sets take the SIMD-friendly two-phase kernel.
      if (load == Ld::kI64) return &InFilterDense<Ld::kI64>;
      if (load == Ld::kF64) return &InFilterDense<Ld::kF64>;
      return PickFilterForOp<CompareOp::kIn>(load);
  }
  return nullptr;
}

template <Ld L, bool Nominal>
void BinImpl(const BinKernel& k, const int64_t* rows, const int32_t* sel,
             int64_t n_sel, int64_t* out) {
  for (int64_t i = 0; i < n_sel; ++i) {
    double v;
    if (!Load<L>(k.col, rows[sel[i]], &v) || !(v == v)) {
      out[i] = -1;
      continue;
    }
    // Same expressions as BinDimension::BinIndex: truncation for nominal
    // (integer-coded) dimensions, floor division for quantitative ones.
    int64_t idx;
    if constexpr (Nominal) {
      idx = static_cast<int64_t>(v - k.lo);
    } else {
      idx = static_cast<int64_t>(std::floor((v - k.lo) / k.width));
    }
    out[i] = (idx >= 0 && idx < k.bin_count) ? idx : -1;
  }
}

BinKernel::Fn PickBin(Ld load, bool nominal) {
  switch (load) {
    case Ld::kI64:
      return nominal ? &BinImpl<Ld::kI64, true> : &BinImpl<Ld::kI64, false>;
    case Ld::kF64:
      return nominal ? &BinImpl<Ld::kF64, true> : &BinImpl<Ld::kF64, false>;
    case Ld::kI64Join:
      return nominal ? &BinImpl<Ld::kI64Join, true>
                     : &BinImpl<Ld::kI64Join, false>;
    case Ld::kF64Join:
      return nominal ? &BinImpl<Ld::kF64Join, true>
                     : &BinImpl<Ld::kF64Join, false>;
  }
  return nullptr;
}

template <Ld L>
void AggImpl(const AggKernel& k, const int64_t* rows, const int32_t* sel,
             int64_t n_sel, double* out) {
  for (int64_t i = 0; i < n_sel; ++i) {
    double v;
    out[i] = Load<L>(k.col, rows[sel[i]], &v)
                 ? v
                 : std::numeric_limits<double>::quiet_NaN();
  }
}

AggKernel::Fn PickAgg(Ld load) {
  switch (load) {
    case Ld::kI64:
      return &AggImpl<Ld::kI64>;
    case Ld::kF64:
      return &AggImpl<Ld::kF64>;
    case Ld::kI64Join:
      return &AggImpl<Ld::kI64Join>;
    case Ld::kF64Join:
      return &AggImpl<Ld::kF64Join>;
  }
  return nullptr;
}

/// Resolves the access path of `binding`; returns false when it cannot be
/// vectorized.
bool CompileAccess(const ColumnBinding& binding, ColumnAccess* access,
                   Ld* load) {
  if (binding.column == nullptr) return false;
  const bool is_double =
      binding.column->type() == storage::DataType::kDouble;
  if (is_double) {
    access->f64 = binding.column->DoubleData();
  } else {
    access->i64 = binding.column->Int64Data();
  }
  if (binding.join != nullptr) {
    access->join = binding.join->mapping_data();
    *load = is_double ? Ld::kF64Join : Ld::kI64Join;
  } else {
    *load = is_double ? Ld::kF64 : Ld::kI64;
  }
  return true;
}

}  // namespace

VectorizedQuery VectorizedQuery::Compile(const BoundQuery& query) {
  VectorizedQuery vq;
  const query::QuerySpec& spec = query.spec();
  if (spec.bins.empty() || spec.bins.size() > 2) return vq;

  // Bin-key kernels.
  for (size_t d = 0; d < spec.bins.size(); ++d) {
    const query::BinDimension& dim = spec.bins[d];
    if (!dim.resolved || dim.bin_count <= 0) return vq;
    BinKernel k;
    Ld load;
    if (!CompileAccess(query.bin_bindings()[d], &k.col, &load)) return vq;
    k.fn = PickBin(load, dim.mode == query::BinningMode::kNominal);
    k.lo = dim.lo;
    k.width = dim.width;
    k.bin_count = dim.bin_count;
    if (k.fn == nullptr) return vq;
    vq.bin_kernels_.push_back(k);
  }
  vq.two_d_ = spec.bins.size() == 2;
  vq.bins1_ = vq.two_d_ ? spec.bins[1].bin_count : 1;
  vq.key_space_ = spec.bins[0].bin_count * vq.bins1_;

  // Filter kernels, one per conjunct.
  const auto& predicates = spec.filter.predicates();
  for (size_t p = 0; p < predicates.size(); ++p) {
    const expr::Predicate& pred = predicates[p];
    FilterKernel k;
    Ld load;
    if (!CompileAccess(query.filter_bindings()[p], &k.col, &load)) return vq;
    k.fn = PickFilter(pred.op, load);
    if (k.fn == nullptr) return vq;
    k.value = pred.value;
    k.lo = pred.lo;
    k.hi = pred.hi;
    k.set_begin = pred.set_values.data();
    k.set_end = pred.set_values.data() + pred.set_values.size();
    vq.filters_.push_back(k);
  }

  // Aggregate gather kernels.
  for (size_t a = 0; a < spec.aggregates.size(); ++a) {
    AggKernel k;
    if (query.agg_bindings()[a].column == nullptr) {
      k.is_count = true;  // COUNT contributes 1 per row
    } else {
      Ld load;
      if (!CompileAccess(query.agg_bindings()[a], &k.col, &load)) return vq;
      k.fn = PickAgg(load);
      if (k.fn == nullptr) return vq;
    }
    vq.agg_kernels_.push_back(k);
  }

  vq.ok_ = true;
  return vq;
}

int64_t VectorizedQuery::FilterAndBin(RowBatch* batch) const {
  const int64_t n = batch->n;
  int64_t n_sel = n;
  for (int64_t i = 0; i < n; ++i) batch->sel[i] = static_cast<int32_t>(i);
  for (const FilterKernel& k : filters_) {
    if (n_sel == 0) break;
    n_sel = k.fn(k, batch->rows, batch->sel.data(), n_sel);
  }
  if (n_sel == 0) {
    batch->n_sel = 0;
    return 0;
  }

  const BinKernel& b0 = bin_kernels_[0];
  b0.fn(b0, batch->rows, batch->sel.data(), n_sel, batch->keys.data());
  if (two_d_) {
    const BinKernel& b1 = bin_kernels_[1];
    b1.fn(b1, batch->rows, batch->sel.data(), n_sel, batch->keys2.data());
  }

  // Drop rows with any out-of-range dimension and pack dense keys
  // (branchless compaction: out <= i, so in-place writes are safe).
  int64_t out = 0;
  if (!two_d_) {
    for (int64_t i = 0; i < n_sel; ++i) {
      const int64_t i0 = batch->keys[i];
      batch->sel[out] = batch->sel[i];
      batch->keys[out] = i0;
      out += i0 >= 0;
    }
  } else {
    for (int64_t i = 0; i < n_sel; ++i) {
      const int64_t i0 = batch->keys[i];
      const int64_t i1 = batch->keys2[i];
      batch->sel[out] = batch->sel[i];
      batch->keys[out] = i0 * bins1_ + i1;
      out += (i0 >= 0) & (i1 >= 0);
    }
  }
  batch->n_sel = out;
  return out;
}

void VectorizedQuery::GatherAggValues(size_t a, RowBatch* batch) const {
  const AggKernel& k = agg_kernels_[a];
  k.fn(k, batch->rows, batch->sel.data(), batch->n_sel, batch->values.data());
}

}  // namespace idebench::exec
