#include "exec/vectorized.h"

#include <cmath>
#include <limits>

namespace idebench::exec {
namespace {

using expr::CompareOp;

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();


/// Physical load path a kernel is specialized on.
enum class Ld { kI64, kF64, kI64Join, kF64Join };

/// Loads the numeric-view value of `row` through access path `L`.
/// Returns false on a join miss (inner-join semantics drop the row).
template <Ld L>
inline bool Load(const ColumnAccess& c, int64_t row, double* v) {
  if constexpr (L == Ld::kI64) {
    *v = static_cast<double>(c.i64[row]);
    return true;
  } else if constexpr (L == Ld::kF64) {
    *v = c.f64[row];
    return true;
  } else {
    const int32_t dim = c.join[row];
    if (dim < 0) return false;
    if constexpr (L == Ld::kI64Join) {
      *v = static_cast<double>(c.i64[dim]);
    } else {
      *v = c.f64[dim];
    }
    return true;
  }
}

/// Predicate test, mirroring expr::Predicate::Matches exactly.  `K` is
/// any kernel struct carrying value/lo/hi/set_begin/set_end.
template <CompareOp Op, typename K>
inline bool Test(const K& k, double v) {
  if constexpr (Op == CompareOp::kEq) return v == k.value;
  if constexpr (Op == CompareOp::kNeq) return v != k.value;
  if constexpr (Op == CompareOp::kLt) return v < k.value;
  if constexpr (Op == CompareOp::kLe) return v <= k.value;
  if constexpr (Op == CompareOp::kGt) return v > k.value;
  if constexpr (Op == CompareOp::kGe) return v >= k.value;
  if constexpr (Op == CompareOp::kRange) return v >= k.lo && v < k.hi;
  if constexpr (Op == CompareOp::kIn) {
    for (const double* s = k.set_begin; s != k.set_end; ++s) {
      if (*s == v) return true;
    }
    return false;
  }
}

/// `First` marks the first filter of the chain: the incoming selection
/// is the identity, so the kernel synthesizes it instead of reading it —
/// the caller skips the selection-vector init pass entirely.
template <CompareOp Op, Ld L, bool First = false>
int64_t FilterImpl(const FilterKernel& k, const int64_t* rows, int32_t* sel,
                   int64_t n_sel) {
  int64_t out = 0;
  for (int64_t i = 0; i < n_sel; ++i) {
    const int32_t s = First ? static_cast<int32_t>(i) : sel[i];
    double v = std::numeric_limits<double>::quiet_NaN();
    const bool loaded = Load<L>(k.col, rows[s], &v);
    // Branchless compaction; NaN fails every predicate (scalar parity).
    const bool pass = loaded & (v == v) & Test<Op>(k, v);
    sel[out] = s;
    out += pass;
  }
  return out;
}

/// SIMD-friendly specialization of the two hottest kernels: the int64 and
/// double *fact-column* range filters.  The generic `FilterImpl` keeps a
/// predicate test inside the gather loop, which blocks vectorization of
/// the comparisons; here the gather is split into its own loop writing a
/// contiguous scratch array, so the compare + branchless compaction loop
/// is a pure vertical operation the compiler can turn into SIMD compares
/// (and, with -march=native, the gather loop into hardware gathers).
/// Semantics are identical to FilterImpl<kRange, L>: NaN never matches
/// ((NaN >= lo) is false), bounds are [lo, hi).
template <Ld L, bool First = false>
int64_t RangeFilterDense(const FilterKernel& k, const int64_t* rows,
                         int32_t* sel, int64_t n_sel) {
  static_assert(L == Ld::kI64 || L == Ld::kF64,
                "join loads keep the generic kernel");
  const double lo = k.lo;
  const double hi = k.hi;
  alignas(64) double vals[kVectorBatchSize];
  if constexpr (L == Ld::kI64) {
    const int64_t* data = k.col.i64;
    for (int64_t i = 0; i < n_sel; ++i) {
      vals[i] = static_cast<double>(data[rows[First ? i : sel[i]]]);
    }
  } else {
    const double* data = k.col.f64;
    for (int64_t i = 0; i < n_sel; ++i) {
      vals[i] = data[rows[First ? i : sel[i]]];
    }
  }
  int64_t out = 0;
  for (int64_t i = 0; i < n_sel; ++i) {
    sel[out] = First ? static_cast<int32_t>(i) : sel[i];
    out += (vals[i] >= lo) & (vals[i] < hi);
  }
  return out;
}

/// SIMD-friendly two-phase *fact-column* equality filter, mirroring
/// `RangeFilterDense`: gather into contiguous scratch, then a pure
/// vertical compare + branchless compaction loop the compiler can turn
/// into SIMD compares.  Semantics are identical to FilterImpl<kEq, L>:
/// NaN never matches ((NaN == v) is false), so the explicit NaN guard of
/// the generic kernel is redundant here.
template <Ld L, bool First = false>
int64_t EqFilterDense(const FilterKernel& k, const int64_t* rows,
                      int32_t* sel, int64_t n_sel) {
  static_assert(L == Ld::kI64 || L == Ld::kF64,
                "join loads keep the generic kernel");
  const double value = k.value;
  alignas(64) double vals[kVectorBatchSize];
  if constexpr (L == Ld::kI64) {
    const int64_t* data = k.col.i64;
    for (int64_t i = 0; i < n_sel; ++i) {
      vals[i] = static_cast<double>(data[rows[First ? i : sel[i]]]);
    }
  } else {
    const double* data = k.col.f64;
    for (int64_t i = 0; i < n_sel; ++i) {
      vals[i] = data[rows[First ? i : sel[i]]];
    }
  }
  int64_t out = 0;
  for (int64_t i = 0; i < n_sel; ++i) {
    sel[out] = First ? static_cast<int32_t>(i) : sel[i];
    out += vals[i] == value;
  }
  return out;
}

/// SIMD-friendly two-phase *fact-column* IN-set filter: gather into
/// contiguous scratch, then one vertical equality sweep per set element
/// OR-ing into a pass mask, then branchless compaction.  Turning the
/// per-row set loop of the generic kernel inside-out makes every inner
/// loop a vertical operation over contiguous arrays.  Semantics are
/// identical to FilterImpl<kIn, L>: NaN matches nothing, an empty set
/// selects nothing, duplicates in the set are harmless.
template <Ld L, bool First = false>
int64_t InFilterDense(const FilterKernel& k, const int64_t* rows,
                      int32_t* sel, int64_t n_sel) {
  static_assert(L == Ld::kI64 || L == Ld::kF64,
                "join loads keep the generic kernel");
  alignas(64) double vals[kVectorBatchSize];
  alignas(64) uint8_t pass[kVectorBatchSize];
  if constexpr (L == Ld::kI64) {
    const int64_t* data = k.col.i64;
    for (int64_t i = 0; i < n_sel; ++i) {
      vals[i] = static_cast<double>(data[rows[First ? i : sel[i]]]);
    }
  } else {
    const double* data = k.col.f64;
    for (int64_t i = 0; i < n_sel; ++i) {
      vals[i] = data[rows[First ? i : sel[i]]];
    }
  }
  for (int64_t i = 0; i < n_sel; ++i) pass[i] = 0;
  for (const double* s = k.set_begin; s != k.set_end; ++s) {
    const double v = *s;
    for (int64_t i = 0; i < n_sel; ++i) {
      pass[i] |= static_cast<uint8_t>(vals[i] == v);
    }
  }
  int64_t out = 0;
  for (int64_t i = 0; i < n_sel; ++i) {
    sel[out] = First ? static_cast<int32_t>(i) : sel[i];
    out += pass[i];
  }
  return out;
}

template <CompareOp Op, bool First>
FilterKernel::Fn PickFilterForOp(Ld load) {
  switch (load) {
    case Ld::kI64:
      return &FilterImpl<Op, Ld::kI64, First>;
    case Ld::kF64:
      return &FilterImpl<Op, Ld::kF64, First>;
    case Ld::kI64Join:
      return &FilterImpl<Op, Ld::kI64Join, First>;
    case Ld::kF64Join:
      return &FilterImpl<Op, Ld::kF64Join, First>;
  }
  return nullptr;
}

template <bool First>
FilterKernel::Fn PickFilterImpl(CompareOp op, Ld load) {
  switch (op) {
    case CompareOp::kEq:
      // Fact-column equality takes the SIMD-friendly two-phase kernel.
      if (load == Ld::kI64) return &EqFilterDense<Ld::kI64, First>;
      if (load == Ld::kF64) return &EqFilterDense<Ld::kF64, First>;
      return PickFilterForOp<CompareOp::kEq, First>(load);
    case CompareOp::kNeq:
      return PickFilterForOp<CompareOp::kNeq, First>(load);
    case CompareOp::kLt:
      return PickFilterForOp<CompareOp::kLt, First>(load);
    case CompareOp::kLe:
      return PickFilterForOp<CompareOp::kLe, First>(load);
    case CompareOp::kGt:
      return PickFilterForOp<CompareOp::kGt, First>(load);
    case CompareOp::kGe:
      return PickFilterForOp<CompareOp::kGe, First>(load);
    case CompareOp::kRange:
      // Fact-column range filters take the SIMD-friendly two-phase kernel.
      if (load == Ld::kI64) return &RangeFilterDense<Ld::kI64, First>;
      if (load == Ld::kF64) return &RangeFilterDense<Ld::kF64, First>;
      return PickFilterForOp<CompareOp::kRange, First>(load);
    case CompareOp::kIn:
      // Fact-column IN-sets take the SIMD-friendly two-phase kernel.
      if (load == Ld::kI64) return &InFilterDense<Ld::kI64, First>;
      if (load == Ld::kF64) return &InFilterDense<Ld::kF64, First>;
      return PickFilterForOp<CompareOp::kIn, First>(load);
  }
  return nullptr;
}

FilterKernel::Fn PickFilter(CompareOp op, Ld load, bool first) {
  return first ? PickFilterImpl<true>(op, load)
               : PickFilterImpl<false>(op, load);
}

template <Ld L, bool Nominal>
void BinImpl(const BinKernel& k, const int64_t* rows, const int32_t* sel,
             int64_t n_sel, int64_t* out, double* out_vals) {
  for (int64_t i = 0; i < n_sel; ++i) {
    double v;
    if (!Load<L>(k.col, rows[sel[i]], &v) || !(v == v)) {
      out[i] = -1;
      out_vals[i] = kNaN;
      continue;
    }
    out_vals[i] = v;
    // Same expressions as BinDimension::BinIndex: truncation for nominal
    // (integer-coded) dimensions, floor division for quantitative ones.
    int64_t idx;
    if constexpr (Nominal) {
      idx = static_cast<int64_t>(v - k.lo);
    } else {
      idx = static_cast<int64_t>(std::floor((v - k.lo) / k.width));
    }
    out[i] = (idx >= 0 && idx < k.bin_count) ? idx : -1;
  }
}

BinKernel::Fn PickBin(Ld load, bool nominal) {
  switch (load) {
    case Ld::kI64:
      return nominal ? &BinImpl<Ld::kI64, true> : &BinImpl<Ld::kI64, false>;
    case Ld::kF64:
      return nominal ? &BinImpl<Ld::kF64, true> : &BinImpl<Ld::kF64, false>;
    case Ld::kI64Join:
      return nominal ? &BinImpl<Ld::kI64Join, true>
                     : &BinImpl<Ld::kI64Join, false>;
    case Ld::kF64Join:
      return nominal ? &BinImpl<Ld::kF64Join, true>
                     : &BinImpl<Ld::kF64Join, false>;
  }
  return nullptr;
}

template <Ld L>
void AggImpl(const AggKernel& k, const int64_t* rows, const int32_t* sel,
             int64_t n_sel, double* out) {
  for (int64_t i = 0; i < n_sel; ++i) {
    double v;
    out[i] = Load<L>(k.col, rows[sel[i]], &v)
                 ? v
                 : std::numeric_limits<double>::quiet_NaN();
  }
}

AggKernel::Fn PickAgg(Ld load) {
  switch (load) {
    case Ld::kI64:
      return &AggImpl<Ld::kI64>;
    case Ld::kF64:
      return &AggImpl<Ld::kF64>;
    case Ld::kI64Join:
      return &AggImpl<Ld::kI64Join>;
    case Ld::kF64Join:
      return &AggImpl<Ld::kF64Join>;
  }
  return nullptr;
}

/// Resolves the access path of `binding`; returns false when it cannot be
/// vectorized.
bool CompileAccess(const ColumnBinding& binding, ColumnAccess* access,
                   Ld* load) {
  if (binding.column == nullptr) return false;
  const bool is_double =
      binding.column->type() == storage::DataType::kDouble;
  if (is_double) {
    access->f64 = binding.column->DoubleData();
  } else {
    access->i64 = binding.column->Int64Data();
  }
  if (binding.join != nullptr) {
    access->join = binding.join->mapping_data();
    *load = is_double ? Ld::kF64Join : Ld::kI64Join;
  } else {
    *load = is_double ? Ld::kF64 : Ld::kI64;
  }
  return true;
}

bool SameAccess(const ColumnAccess& a, const ColumnAccess& b) {
  return a.i64 == b.i64 && a.f64 == b.f64 && a.join == b.join;
}

// --- Fused bin kernels -----------------------------------------------------

/// Fused quantitative bin keys: a gather phase loads each selected row's
/// value once into the contiguous lane `out_vals` (NaN sentinel on join
/// miss), then a *vertical* key phase evaluates the scalar path's
/// floor-division.  The range check moves onto the quotient itself —
/// `t >= 0` iff `floor(t) >= 0`, and (bin_count being an exactly
/// representable integer) `t < bin_count` iff `floor(t) < bin_count` —
/// after which truncation *is* floor (t is non-negative), so the key
/// phase is two compares, one select in the double domain (the cast is
/// always of a value in [-1, bin_count) — never UB) and one truncating
/// cast: no libm floor call, no per-row branch, fully vectorizable.
/// `UseInv` replaces the division with an exact reciprocal multiply,
/// chosen at compile time only when width is a power of two, where
/// `v * (1/width)` rounds identically to `v / width` for every v.
template <Ld L, bool UseInv>
void FusedBinQuantImpl(const BinKernel& k, const int64_t* rows,
                       const int32_t* sel, int64_t n_sel, int64_t* out,
                       double* out_vals) {
  if constexpr (L == Ld::kI64) {
    const int64_t* data = k.col.i64;
    for (int64_t i = 0; i < n_sel; ++i) {
      out_vals[i] = static_cast<double>(data[rows[sel[i]]]);
    }
  } else if constexpr (L == Ld::kF64) {
    const double* data = k.col.f64;
    for (int64_t i = 0; i < n_sel; ++i) out_vals[i] = data[rows[sel[i]]];
  } else {
    for (int64_t i = 0; i < n_sel; ++i) {
      double v;
      out_vals[i] = Load<L>(k.col, rows[sel[i]], &v) ? v : kNaN;
    }
  }
  const double lo = k.lo;
  const double width = k.width;
  const double inv = k.inv_width;
  const double dbc = static_cast<double>(k.bin_count);
#if defined(__AVX512DQ__)
  // vcvttpd2qq converts packed double -> int64 directly; no staging.
  for (int64_t i = 0; i < n_sel; ++i) {
    const double t =
        UseInv ? (out_vals[i] - lo) * inv : (out_vals[i] - lo) / width;
    // NaN fails both compares -> -1, matching the scalar NaN/miss path.
    const double ts = (t >= 0.0) & (t < dbc) ? t : -1.0;
    out[i] = static_cast<int64_t>(ts);
  }
#else
  // Staging through int32 lets the cast vectorize (cvttpd2dq exists from
  // SSE2 on; packed double->int64 needs AVX-512).  Bin indices are far
  // below 2^21 (`query::kBinKeyStride`), so the narrow cast is lossless.
  alignas(64) int32_t stage[kVectorBatchSize];
  for (int64_t i = 0; i < n_sel; ++i) {
    const double t =
        UseInv ? (out_vals[i] - lo) * inv : (out_vals[i] - lo) / width;
    // NaN fails both compares -> -1, matching the scalar NaN/miss path.
    const double ts = (t >= 0.0) & (t < dbc) ? t : -1.0;
    stage[i] = static_cast<int32_t>(ts);
  }
  for (int64_t i = 0; i < n_sel; ++i) out[i] = stage[i];
#endif
}

/// Fused nominal (truncation) bin keys: same gather phase, then a
/// vertical key phase whose truncating cast *is* the scalar path's
/// `(int64_t)(v - lo)`.  Guarding with `d > -1` (not `d >= 0`)
/// reproduces its boundary behavior exactly — v - lo in (-1, 0)
/// truncates to bin 0.
template <Ld L>
void FusedBinNominalImpl(const BinKernel& k, const int64_t* rows,
                         const int32_t* sel, int64_t n_sel, int64_t* out,
                         double* out_vals) {
  if constexpr (L == Ld::kI64) {
    const int64_t* data = k.col.i64;
    for (int64_t i = 0; i < n_sel; ++i) {
      out_vals[i] = static_cast<double>(data[rows[sel[i]]]);
    }
  } else if constexpr (L == Ld::kF64) {
    const double* data = k.col.f64;
    for (int64_t i = 0; i < n_sel; ++i) out_vals[i] = data[rows[sel[i]]];
  } else {
    for (int64_t i = 0; i < n_sel; ++i) {
      double v;
      out_vals[i] = Load<L>(k.col, rows[sel[i]], &v) ? v : kNaN;
    }
  }
  const double lo = k.lo;
  const double dbc = static_cast<double>(k.bin_count);
#if defined(__AVX512DQ__)
  for (int64_t i = 0; i < n_sel; ++i) {
    const double d = out_vals[i] - lo;
    const double ds = (d > -1.0) & (d < dbc) ? d : -1.0;
    out[i] = static_cast<int64_t>(ds);
  }
#else
  alignas(64) int32_t stage[kVectorBatchSize];
  for (int64_t i = 0; i < n_sel; ++i) {
    const double d = out_vals[i] - lo;
    const double ds = (d > -1.0) & (d < dbc) ? d : -1.0;
    stage[i] = static_cast<int32_t>(ds);
  }
  for (int64_t i = 0; i < n_sel; ++i) out[i] = stage[i];
#endif
}

/// Pre-binned dictionary dimension, *direct* form (no aggregate shares
/// the column, so the double value lane is not needed): per-row string
/// binning is one int gather through the compile-time code -> bin LUT.
/// Codes are dense in [0, dict size), so the LUT load can never go out
/// of bounds.
void FusedBinLutDirect(const BinKernel& k, const int64_t* rows,
                       const int32_t* sel, int64_t n_sel, int64_t* out,
                       double* /*out_vals*/) {
  const int64_t* codes = k.col.i64;
  const int32_t* lut = k.lut;
  for (int64_t i = 0; i < n_sel; ++i) out[i] = lut[codes[rows[sel[i]]]];
}

void FusedBinLutDirectJoin(const BinKernel& k, const int64_t* rows,
                           const int32_t* sel, int64_t n_sel, int64_t* out,
                           double* /*out_vals*/) {
  const int64_t* codes = k.col.i64;
  const int32_t* join = k.col.join;
  const int32_t* lut = k.lut;
  for (int64_t i = 0; i < n_sel; ++i) {
    const int32_t dim = join[rows[sel[i]]];
    out[i] = dim < 0 ? -1 : lut[codes[dim]];
  }
}

/// Pre-binned dictionary dimension, value-lane form (an aggregate reads
/// the same column): gathers the code lane like the numeric kernels,
/// then LUT-binned through an exact double -> int64 round trip (every
/// representable dictionary code survives it bit-exactly).
template <Ld L>
void FusedBinLutValsImpl(const BinKernel& k, const int64_t* rows,
                         const int32_t* sel, int64_t n_sel, int64_t* out,
                         double* out_vals) {
  if constexpr (L == Ld::kI64) {
    const int64_t* data = k.col.i64;
    for (int64_t i = 0; i < n_sel; ++i) {
      out_vals[i] = static_cast<double>(data[rows[sel[i]]]);
    }
  } else {
    for (int64_t i = 0; i < n_sel; ++i) {
      double v;
      out_vals[i] = Load<L>(k.col, rows[sel[i]], &v) ? v : kNaN;
    }
  }
  const int32_t* lut = k.lut;
  for (int64_t i = 0; i < n_sel; ++i) {
    const double v = out_vals[i];
    out[i] = (v == v) ? lut[static_cast<int64_t>(v)] : -1;
  }
}

template <Ld L>
BinKernel::Fn PickFusedQuant(bool use_inv) {
  return use_inv ? &FusedBinQuantImpl<L, true> : &FusedBinQuantImpl<L, false>;
}

/// True when 1/width is exactly representable, i.e. multiplying by the
/// reciprocal rounds identically to dividing (width a power of two).
bool ExactReciprocal(double width) {
  if (!(width > 0.0) || !std::isfinite(width)) return false;
  int exp = 0;
  const double mant = std::frexp(width, &exp);
  const double inv = 1.0 / width;
  return mant == 0.5 && std::isfinite(inv);
}

}  // namespace

void VectorizedQuery::CompileFused(const BoundQuery& query) {
  const query::QuerySpec& spec = query.spec();
  fused_bins_.reserve(bin_kernels_.size());
  for (size_t d = 0; d < spec.bins.size(); ++d) {
    const query::BinDimension& dim = spec.bins[d];
    const ColumnBinding& binding = query.bin_bindings()[d];
    const bool is_string =
        binding.column->type() == storage::DataType::kString;
    const bool is_double =
        binding.column->type() == storage::DataType::kDouble;
    const bool joined = binding.join != nullptr;
    BinKernel b = bin_kernels_[d];  // copy access path + params

    if (is_string && dim.mode == query::BinningMode::kNominal) {
      // Pre-bin every dictionary code once at compile time.  Codes
      // outside the resolved bin range (values that joined the
      // dictionary after the bin config froze, or a refined lo) map to
      // -1 like any out-of-range value.
      const storage::Dictionary& dict = binding.column->dictionary();
      auto lut = std::make_shared<std::vector<int32_t>>(
          static_cast<size_t>(dict.size()), -1);
      for (int64_t c = 0; c < dict.size(); ++c) {
        const int64_t idx =
            static_cast<int64_t>(static_cast<double>(c) - b.lo);
        (*lut)[static_cast<size_t>(c)] =
            (idx >= 0 && idx < b.bin_count) ? static_cast<int32_t>(idx) : -1;
      }
      b.lut = lut->data();
      b.lut_owner = std::move(lut);
      bool shared = false;
      for (size_t a = 0; a < agg_shared_dim_.size(); ++a) {
        if (agg_shared_dim_[a] == static_cast<int8_t>(d)) shared = true;
      }
      if (shared) {
        b.fn = joined ? &FusedBinLutValsImpl<Ld::kI64Join>
                      : &FusedBinLutValsImpl<Ld::kI64>;
      } else {
        b.fn = joined ? &FusedBinLutDirectJoin : &FusedBinLutDirect;
      }
    } else if (dim.mode == query::BinningMode::kNominal) {
      if (joined) {
        b.fn = is_double ? &FusedBinNominalImpl<Ld::kF64Join>
                         : &FusedBinNominalImpl<Ld::kI64Join>;
      } else {
        b.fn = is_double ? &FusedBinNominalImpl<Ld::kF64>
                         : &FusedBinNominalImpl<Ld::kI64>;
      }
    } else {
      const bool use_inv = ExactReciprocal(b.width);
      if (use_inv) b.inv_width = 1.0 / b.width;
      if (joined) {
        b.fn = is_double ? PickFusedQuant<Ld::kF64Join>(use_inv)
                         : PickFusedQuant<Ld::kI64Join>(use_inv);
      } else {
        b.fn = is_double ? PickFusedQuant<Ld::kF64>(use_inv)
                         : PickFusedQuant<Ld::kI64>(use_inv);
      }
    }
    fused_bins_.push_back(std::move(b));
  }
  fused_ok_ = true;
}

void VectorizedQuery::CompilePrune(const BoundQuery& query) {
  const query::QuerySpec& spec = query.spec();
  // Only fact columns prune: a block of fact rows says nothing about the
  // dimension-table values reached through its join column.
  const auto& predicates = spec.filter.predicates();
  for (size_t p = 0; p < predicates.size(); ++p) {
    const ColumnBinding& binding = query.filter_bindings()[p];
    if (binding.join != nullptr) continue;
    PruneCheck c;
    c.kind = PruneCheck::Kind::kCompare;
    c.op = predicates[p].op;
    c.col = binding.column;
    c.value = filters_[p].value;
    c.lo = filters_[p].lo;
    c.hi = filters_[p].hi;
    c.set_begin = filters_[p].set_begin;
    c.set_end = filters_[p].set_end;
    prune_checks_.push_back(c);
  }
  for (size_t d = 0; d < spec.bins.size(); ++d) {
    const ColumnBinding& binding = query.bin_bindings()[d];
    if (binding.join != nullptr) continue;
    const query::BinDimension& dim = spec.bins[d];
    PruneCheck c;
    c.col = binding.column;
    c.lo = bin_kernels_[d].lo;
    c.bin_count = bin_kernels_[d].bin_count;
    if (dim.mode == query::BinningMode::kNominal) {
      c.kind = PruneCheck::Kind::kBinNominal;
    } else {
      if (!(bin_kernels_[d].width > 0.0)) continue;
      c.kind = PruneCheck::Kind::kBinQuant;
      c.width = bin_kernels_[d].width;
    }
    prune_checks_.push_back(c);
  }
}

bool VectorizedQuery::PruneCheck::BlockCanMatch(
    const storage::ZoneEntry& z) const {
  // All tests are written so that a block with no finite values
  // (min = +inf > max = -inf) is excluded — its rows are all NaN and NaN
  // rows can never match — and so that NaN operands make the test return
  // "can match" (never prune on garbage).
  switch (kind) {
    case Kind::kCompare:
      switch (op) {
        case expr::CompareOp::kEq:
          return value >= z.min && value <= z.max;
        case expr::CompareOp::kNeq:
          // Excluded only when every finite value in the block equals
          // `value` exactly.
          return z.min < z.max || (z.min == z.max && z.min != value);
        case expr::CompareOp::kLt:
          return z.min < value;
        case expr::CompareOp::kLe:
          return z.min <= value;
        case expr::CompareOp::kGt:
          return z.max > value;
        case expr::CompareOp::kGe:
          return z.max >= value;
        case expr::CompareOp::kRange:
          return z.max >= lo && z.min < hi;
        case expr::CompareOp::kIn:
          for (const double* s = set_begin; s != set_end; ++s) {
            if (*s >= z.min && *s <= z.max) return true;
          }
          return false;  // empty sets match nothing (kernel parity)
      }
      return true;
    case Kind::kBinQuant: {
      // floor((v - lo) / width) is monotone non-decreasing in v (IEEE
      // subtraction and division by a positive constant are monotone, as
      // is floor), so evaluating the *kernel's own expression* at the
      // block bounds brackets every row's bin index — boundary rounding
      // included.
      const double bin_of_max = std::floor((z.max - lo) / width);
      const double bin_of_min = std::floor((z.min - lo) / width);
      return bin_of_max >= 0.0 &&
             bin_of_min < static_cast<double>(bin_count);
    }
    case Kind::kBinNominal: {
      // trunc(v - lo) is likewise monotone; `> -1` mirrors the kernel's
      // post-truncation `idx >= 0` (v - lo in (-1, 0) truncates to 0).
      const double t_max = std::trunc(z.max - lo);
      const double t_min = std::trunc(z.min - lo);
      return t_max > -1.0 && t_min < static_cast<double>(bin_count);
    }
  }
  return true;
}

bool VectorizedQuery::RangeCanMatch(int64_t begin, int64_t end) const {
  if (begin >= end) return true;
  for (const PruneCheck& c : prune_checks_) {
    const std::vector<storage::ZoneEntry>& zones = c.col->zone_map();
    const int64_t b0 = begin / storage::kZoneMapBlockRows;
    const int64_t b1 = (end - 1) / storage::kZoneMapBlockRows;
    bool any_block_matches = false;
    for (int64_t b = b0; b <= b1; ++b) {
      if (b >= static_cast<int64_t>(zones.size()) ||
          c.BlockCanMatch(zones[static_cast<size_t>(b)])) {
        any_block_matches = true;
        break;
      }
    }
    if (!any_block_matches) return false;
  }
  return true;
}

VectorizedQuery VectorizedQuery::Compile(const BoundQuery& query) {
  VectorizedQuery vq;
  const query::QuerySpec& spec = query.spec();
  if (spec.bins.empty() || spec.bins.size() > 2) return vq;

  // Bin-key kernels.
  for (size_t d = 0; d < spec.bins.size(); ++d) {
    const query::BinDimension& dim = spec.bins[d];
    if (!dim.resolved || dim.bin_count <= 0) return vq;
    BinKernel k;
    Ld load;
    if (!CompileAccess(query.bin_bindings()[d], &k.col, &load)) return vq;
    k.fn = PickBin(load, dim.mode == query::BinningMode::kNominal);
    k.lo = dim.lo;
    k.width = dim.width;
    k.bin_count = dim.bin_count;
    if (k.fn == nullptr) return vq;
    vq.bin_kernels_.push_back(k);
  }
  vq.two_d_ = spec.bins.size() == 2;
  vq.bins1_ = vq.two_d_ ? spec.bins[1].bin_count : 1;
  vq.key_space_ = spec.bins[0].bin_count * vq.bins1_;

  // Filter kernels, one per conjunct.
  const auto& predicates = spec.filter.predicates();
  for (size_t p = 0; p < predicates.size(); ++p) {
    const expr::Predicate& pred = predicates[p];
    FilterKernel k;
    Ld load;
    if (!CompileAccess(query.filter_bindings()[p], &k.col, &load)) return vq;
    k.fn = PickFilter(pred.op, load, /*first=*/p == 0);
    if (k.fn == nullptr) return vq;
    k.value = pred.value;
    k.lo = pred.lo;
    k.hi = pred.hi;
    k.set_begin = pred.set_values.data();
    k.set_end = pred.set_values.data() + pred.set_values.size();
    vq.filters_.push_back(k);
  }

  // Aggregate gather kernels.
  for (size_t a = 0; a < spec.aggregates.size(); ++a) {
    AggKernel k;
    if (query.agg_bindings()[a].column == nullptr) {
      k.is_count = true;  // COUNT contributes 1 per row
    } else {
      Ld load;
      if (!CompileAccess(query.agg_bindings()[a], &k.col, &load)) return vq;
      k.fn = PickAgg(load);
      if (k.fn == nullptr) return vq;
    }
    vq.agg_kernels_.push_back(k);
  }

  // Gather dedup: aggregates whose input column *is* a binned dimension
  // read the values the bin kernels already loaded.
  vq.agg_shared_dim_.assign(vq.agg_kernels_.size(), -1);
  for (size_t a = 0; a < vq.agg_kernels_.size(); ++a) {
    if (vq.agg_kernels_[a].is_count) continue;
    for (size_t d = 0; d < vq.bin_kernels_.size(); ++d) {
      if (SameAccess(vq.agg_kernels_[a].col, vq.bin_kernels_[d].col)) {
        vq.agg_shared_dim_[a] = static_cast<int8_t>(d);
        if (d == 0) vq.stash_vals0_ = true;
        if (d == 1) vq.stash_vals1_ = true;
        break;
      }
    }
  }

  vq.ok_ = true;
  vq.CompileFused(query);
  vq.CompilePrune(query);
  return vq;
}

int64_t VectorizedQuery::FilterAndBinImpl(
    RowBatch* batch, const std::vector<BinKernel>& bins) const {
  const int64_t n = batch->n;
  int64_t n_sel = n;
  // The first filter kernel synthesizes the identity selection itself;
  // only filter-less queries need the explicit init for the bin kernels.
  if (filters_.empty()) {
    for (int64_t i = 0; i < n; ++i) batch->sel[i] = static_cast<int32_t>(i);
  }
  for (const FilterKernel& k : filters_) {
    if (n_sel == 0) break;
    n_sel = k.fn(k, batch->rows, batch->sel.data(), n_sel);
  }
  if (n_sel == 0) {
    batch->n_sel = 0;
    return 0;
  }

  const BinKernel& b0 = bins[0];
  b0.fn(b0, batch->rows, batch->sel.data(), n_sel, batch->keys.data(),
        batch->bin_vals.data());
  if (two_d_) {
    const BinKernel& b1 = bins[1];
    b1.fn(b1, batch->rows, batch->sel.data(), n_sel, batch->keys2.data(),
          batch->bin_vals2.data());
  }

  // Drop rows with any out-of-range dimension and pack dense keys
  // (branchless compaction: out <= i, so in-place writes are safe).  The
  // stashed dimension value lanes compact alongside when an aggregate
  // reuses them.
  int64_t out = 0;
  if (!two_d_) {
    for (int64_t i = 0; i < n_sel; ++i) {
      const int64_t i0 = batch->keys[i];
      batch->sel[out] = batch->sel[i];
      batch->keys[out] = i0;
      if (stash_vals0_) batch->bin_vals[out] = batch->bin_vals[i];
      out += i0 >= 0;
    }
  } else {
    for (int64_t i = 0; i < n_sel; ++i) {
      const int64_t i0 = batch->keys[i];
      const int64_t i1 = batch->keys2[i];
      batch->sel[out] = batch->sel[i];
      batch->keys[out] = i0 * bins1_ + i1;
      if (stash_vals0_) batch->bin_vals[out] = batch->bin_vals[i];
      if (stash_vals1_) batch->bin_vals2[out] = batch->bin_vals2[i];
      out += (i0 >= 0) & (i1 >= 0);
    }
  }
  batch->n_sel = out;
  return out;
}

const double* VectorizedQuery::GatherAggValues(size_t a,
                                               RowBatch* batch) const {
  const int8_t shared = agg_shared_dim_[a];
  if (shared == 0) return batch->bin_vals.data();
  if (shared == 1) return batch->bin_vals2.data();
  const AggKernel& k = agg_kernels_[a];
  k.fn(k, batch->rows, batch->sel.data(), batch->n_sel, batch->values.data());
  return batch->values.data();
}

bool VectorizedQuery::SegmentCanMatch(
    const std::function<const storage::ZoneEntry*(const storage::Column*)>&
        zone_of) const {
  for (const PruneCheck& c : prune_checks_) {
    const storage::ZoneEntry* z = zone_of(c.col);
    if (z != nullptr && !c.BlockCanMatch(*z)) return false;
  }
  return true;
}

void ExpandRleRuns(const int64_t* values, const int32_t* lengths,
                   int32_t num_runs, int64_t* out) {
  for (int32_t r = 0; r < num_runs; ++r) {
    const int64_t v = values[r];
    const int32_t len = lengths[r];
    for (int32_t i = 0; i < len; ++i) *out++ = v;
  }
}

void UnpackBitsFOR(const uint64_t* words, uint8_t bits, int64_t base,
                   int64_t n, int64_t* out) {
  const uint64_t mask = (uint64_t{1} << bits) - 1;  // bits <= 32
  const uint64_t ubase = static_cast<uint64_t>(base);
  for (int64_t i = 0; i < n; ++i) {
    const uint64_t bitpos = static_cast<uint64_t>(i) * bits;
    const uint64_t shift = bitpos & 63;
    uint64_t u = words[bitpos >> 6] >> shift;
    // A value spans at most two words (bits <= 32 < 64).
    if (shift + bits > 64) u |= words[(bitpos >> 6) + 1] << (64 - shift);
    out[i] = static_cast<int64_t>(ubase + (u & mask));
  }
}

}  // namespace idebench::exec
