#include "exec/parallel.h"

#include <algorithm>
#include <atomic>

#include "chaos/fault_injector.h"

namespace idebench::exec {
namespace {

/// Upper bound on pool threads; a runaway `threads` setting must not fork
/// bomb the process.
constexpr int kMaxPoolThreads = 64;

/// Set while a pool thread runs tasks, so re-entrant ParallelFor calls
/// degrade to inline execution instead of deadlocking on the pool.
thread_local bool t_in_pool_worker = false;

}  // namespace

int HardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int ResolveThreadCount(int threads) {
  if (threads <= 0) return HardwareThreads();
  return threads;
}

/// One ParallelFor invocation: tasks are claimed off `next`; completion is
/// signalled through `done_mu`/`done_cv` when `finished` reaches `count`.
struct WorkerPool::Job {
  std::function<void(int64_t)> fn;
  int64_t count = 0;
  std::atomic<int64_t> next{0};
  // Participation cap: at most `max_helpers` pool threads may join this
  // job (the caller is an extra participant), so a pool grown large by
  // one caller cannot oversubscribe a later lower-parallelism job.
  int max_helpers = 0;  // guarded by pool mu_
  int joined = 0;       // guarded by pool mu_
  std::mutex done_mu;
  std::condition_variable done_cv;
  int64_t finished = 0;  // guarded by done_mu
};

WorkerPool& WorkerPool::Shared() {
  static WorkerPool pool;
  return pool;
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

int WorkerPool::thread_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(threads_.size());
}

void WorkerPool::EnsureThreadsLocked(int target) {
  target = std::min(target, kMaxPoolThreads);
  while (static_cast<int>(threads_.size()) < target) {
    threads_.emplace_back(&WorkerPool::ThreadMain, this);
  }
}

void WorkerPool::RunTasks(Job* job) {
  for (;;) {
    const int64_t i = job->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job->count) return;
    job->fn(i);
    std::lock_guard<std::mutex> lock(job->done_mu);
    if (++job->finished == job->count) job->done_cv.notify_all();
  }
}

void WorkerPool::ThreadMain() {
  t_in_pool_worker = true;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    // Retire fully-claimed jobs and find the first one with tasks left
    // and a free helper slot.
    std::shared_ptr<Job> job;
    for (auto it = jobs_.begin(); it != jobs_.end();) {
      if ((*it)->next.load(std::memory_order_relaxed) >= (*it)->count) {
        it = jobs_.erase(it);
        continue;
      }
      if ((*it)->joined < (*it)->max_helpers) {
        job = *it;
        break;
      }
      ++it;
    }
    if (job == nullptr) {
      if (shutdown_) return;
      work_cv_.wait(lock);
      continue;
    }
    ++job->joined;
    lock.unlock();
    RunTasks(job.get());
    lock.lock();
  }
}

void WorkerPool::ParallelFor(int64_t tasks, int parallelism,
                             const std::function<void(int64_t)>& fn) {
  if (tasks <= 0) return;
  // Chaos site: the pool stalls — no helper picks up the job, so the
  // caller drains every task inline (graceful degradation: slower, never
  // stuck, bit-identical results).  Drawn only on the dispatching thread,
  // never from a pool-worker re-entry, so the draw sequence stays
  // deterministic under the virtual-clock scheduler.
  const bool stalled =
      !t_in_pool_worker &&
      chaos::FaultInjector::Fire(chaos::FaultSite::kWorkerPoolStall);
  const int64_t helpers =
      std::min<int64_t>(static_cast<int64_t>(parallelism) - 1, tasks - 1);
  if (stalled || helpers <= 0 || t_in_pool_worker) {
    for (int64_t i = 0; i < tasks; ++i) fn(i);
    return;
  }

  auto job = std::make_shared<Job>();
  job->fn = fn;
  job->count = tasks;
  job->max_helpers = static_cast<int>(helpers);
  {
    std::lock_guard<std::mutex> lock(mu_);
    EnsureThreadsLocked(static_cast<int>(helpers));
    jobs_.push_back(job);
  }
  work_cv_.notify_all();

  // The calling thread is a full participant.
  RunTasks(job.get());
  {
    std::unique_lock<std::mutex> lock(job->done_mu);
    job->done_cv.wait(lock, [&] { return job->finished == job->count; });
  }
  {
    // Retire the job if a worker has not already done so.
    std::lock_guard<std::mutex> lock(mu_);
    auto it = std::find(jobs_.begin(), jobs_.end(), job);
    if (it != jobs_.end()) jobs_.erase(it);
  }
}

namespace {

/// Runs `run(partial, m)` for every morsel index m in [0, morsels) and
/// merges each partial into `target` in ascending morsel order.  Work
/// proceeds in waves of `parallelism` morsels (barrier per wave) with the
/// wave's partials reused via Reset(); since every partial holds exactly
/// one morsel and merges happen in morsel order, the reduction tree — and
/// therefore the result, bit for bit — is independent of both the wave
/// width and the scheduling of morsels onto threads.
void RunMorsels(BinnedAggregator* target, int64_t morsels, int parallelism,
                const std::function<void(BinnedAggregator*, int64_t)>& run) {
  if (morsels <= 0) return;
  if (morsels == 1) {
    // No parallelism to be had: skip the partial allocate/merge round
    // trip and aggregate straight into the target (this matters for the
    // stratified engine's many small weight runs).  The choice depends
    // only on the input size, never on `parallelism`, so results remain
    // thread-count independent.
    run(target, 0);
    return;
  }
  const int wave =
      static_cast<int>(std::min<int64_t>(std::max(parallelism, 1), morsels));
  // Wave partials come from (and return to) the target's pool, so dense
  // bin tables and batch scratch are reused across waves *and* across
  // successive MorselProcess* calls on the same aggregator — the engines
  // advance queries in many small budget slices, and reallocating the
  // dense table per slice shows up at high session counts.
  std::vector<std::unique_ptr<BinnedAggregator>> partials;
  partials.reserve(static_cast<size_t>(wave));
  for (int i = 0; i < wave; ++i) partials.push_back(target->AcquirePartial());
  for (int64_t base = 0; base < morsels; base += wave) {
    const int64_t in_wave = std::min<int64_t>(wave, morsels - base);
    WorkerPool::Shared().ParallelFor(in_wave, wave, [&](int64_t j) {
      run(partials[static_cast<size_t>(j)].get(), base + j);
    });
    for (int64_t j = 0; j < in_wave; ++j) {
      BinnedAggregator* partial = partials[static_cast<size_t>(j)].get();
      target->MergeFrom(*partial);
      partial->Reset();
    }
  }
  for (auto& partial : partials) target->ReleasePartial(std::move(partial));
}

/// Clamps a morsel-size override to a positive multiple of the batch size
/// so morsel boundaries coincide with batch boundaries.
int64_t ClampMorselRows(int64_t morsel_rows) {
  if (morsel_rows < kVectorBatchSize) return kVectorBatchSize;
  return morsel_rows - morsel_rows % kVectorBatchSize;
}

/// Chaos site: a slowdown shrinks morsels to a single vector batch —
/// maximal dispatch/merge overhead for the same work.  Drawn once per
/// MorselProcess* call on the dispatching thread.  The merge tree changes
/// with the morsel size, so this site is only *bit*-transparent for
/// aggregates whose partial sums are exact (integer-valued columns below
/// 2^53, which the bundled generators produce); the chaos suite's
/// bit-identity invariant runs on such data.
int64_t MaybeSlowMorsels(int64_t morsel_rows) {
  if (chaos::FaultInjector::Fire(chaos::FaultSite::kMorselSlowdown)) {
    return kVectorBatchSize;
  }
  return morsel_rows;
}

}  // namespace

void MorselProcessRange(BinnedAggregator* agg, int64_t begin, int64_t end,
                        int parallelism, int64_t morsel_rows) {
  const int64_t total = end - begin;
  if (total <= 0) return;
  morsel_rows = MaybeSlowMorsels(ClampMorselRows(morsel_rows));
  const int64_t morsels = (total + morsel_rows - 1) / morsel_rows;

  // Zone-map consult: morsels whose fact-column zone maps prove "no row
  // can match" are skipped *before dispatch* — no partial, no worker
  // wake-up, just the row accounting (skipped rows match nothing, so
  // results stay bit-identical at every thread count).  Morsels that
  // survive may still prune finer-grained block segments inside
  // ProcessRange.  Recording aggregators must account skips in feed
  // order (match positions are walk positions), so they keep the
  // in-order ProcessRange pruning and skip this reordering shortcut.
  const VectorizedQuery* prune =
      agg->options().record_matches ? nullptr : agg->zone_prune_query();
  if (prune != nullptr) {
    std::vector<int64_t> live;
    live.reserve(static_cast<size_t>(morsels));
    for (int64_t m = 0; m < morsels; ++m) {
      const int64_t b = begin + m * morsel_rows;
      const int64_t e = std::min(end, b + morsel_rows);
      if (prune->RangeCanMatch(b, e)) {
        live.push_back(b);
      } else {
        agg->AccountZoneSkip(
            e - b, (e - 1) / storage::kZoneMapBlockRows -
                       b / storage::kZoneMapBlockRows + 1);
      }
    }
    RunMorsels(agg, static_cast<int64_t>(live.size()), parallelism,
               [&](BinnedAggregator* partial, int64_t m) {
                 const int64_t b = live[static_cast<size_t>(m)];
                 partial->ProcessRange(b, std::min(end, b + morsel_rows));
               });
    return;
  }

  RunMorsels(agg, morsels, parallelism,
             [&](BinnedAggregator* partial, int64_t m) {
               const int64_t b = begin + m * morsel_rows;
               partial->ProcessRange(b, std::min(end, b + morsel_rows));
             });
}

void MorselProcessShuffled(BinnedAggregator* agg,
                           const aqp::ShuffledIndex& order, int64_t start_pos,
                           int64_t count, int parallelism,
                           int64_t morsel_rows) {
  if (count <= 0) return;
  morsel_rows = MaybeSlowMorsels(ClampMorselRows(morsel_rows));
  const int64_t morsels = (count + morsel_rows - 1) / morsel_rows;
  RunMorsels(agg, morsels, parallelism,
             [&](BinnedAggregator* partial, int64_t m) {
               const int64_t off = m * morsel_rows;
               partial->ProcessShuffled(order, start_pos + off,
                                        std::min(morsel_rows, count - off));
             });
}

void MorselProcessWalk(BinnedAggregator* agg, const aqp::ShuffledIndex& order,
                       int64_t key, int64_t start_pos, int64_t count,
                       int parallelism, int64_t morsel_rows) {
  if (count <= 0) return;
  morsel_rows = MaybeSlowMorsels(ClampMorselRows(morsel_rows));
  const int64_t morsels = (count + morsel_rows - 1) / morsel_rows;
  RunMorsels(agg, morsels, parallelism,
             [&](BinnedAggregator* partial, int64_t m) {
               const int64_t off = m * morsel_rows;
               partial->ProcessWalk(order, key, start_pos + off,
                                    std::min(morsel_rows, count - off));
             });
}

void MorselProcessBatch(BinnedAggregator* agg, const int64_t* rows, int64_t n,
                        double weight, int parallelism, int64_t morsel_rows) {
  if (n <= 0) return;
  morsel_rows = MaybeSlowMorsels(ClampMorselRows(morsel_rows));
  const int64_t morsels = (n + morsel_rows - 1) / morsel_rows;
  RunMorsels(agg, morsels, parallelism,
             [&](BinnedAggregator* partial, int64_t m) {
               const int64_t off = m * morsel_rows;
               partial->ProcessBatch(rows + off, std::min(morsel_rows, n - off),
                                     weight);
             });
}

void ProcessRangeParallel(BinnedAggregator* agg, int64_t begin, int64_t end,
                          int threads) {
  if (threads == 1) {
    agg->ProcessRange(begin, end);
    return;
  }
  MorselProcessRange(agg, begin, end, ResolveThreadCount(threads));
}

void ProcessShuffledParallel(BinnedAggregator* agg,
                             const aqp::ShuffledIndex& order,
                             int64_t start_pos, int64_t count, int threads) {
  if (threads == 1) {
    agg->ProcessShuffled(order, start_pos, count);
    return;
  }
  MorselProcessShuffled(agg, order, start_pos, count,
                        ResolveThreadCount(threads));
}

void ProcessWalkParallel(BinnedAggregator* agg,
                         const aqp::ShuffledIndex& order, int64_t key,
                         int64_t start_pos, int64_t count, int threads) {
  if (threads == 1) {
    agg->ProcessWalk(order, key, start_pos, count);
    return;
  }
  MorselProcessWalk(agg, order, key, start_pos, count,
                    ResolveThreadCount(threads));
}

void ProcessBatchParallel(BinnedAggregator* agg, const int64_t* rows,
                          int64_t n, double weight, int threads) {
  if (threads == 1) {
    agg->ProcessBatch(rows, n, weight);
    return;
  }
  MorselProcessBatch(agg, rows, n, weight, ResolveThreadCount(threads));
}

}  // namespace idebench::exec
