#ifndef IDEBENCH_EXEC_VECTORIZED_H_
#define IDEBENCH_EXEC_VECTORIZED_H_

/// \file vectorized.h
/// Vectorized (batch-at-a-time) execution kernels for sampled aggregation.
///
/// The scalar path runs one `MatchesFilter` + `BinKey` + `AggValueAt` call
/// chain per row, each doing a per-call type switch inside
/// `Column::ValueAsDouble`.  This subsystem replaces that hot loop with
/// type-specialized kernels compiled once per bound query:
///
///  * a `RowBatch` carries up to `kVectorBatchSize` gathered fact-row ids
///    plus a *selection vector* that filter kernels compact in place;
///  * filter kernels (range / IN-set / equality / ordering) are selected
///    from a per-(op, column-type, join) kernel table at compile time and
///    read raw contiguous arrays (`Column::Int64Data` / `DoubleData`);
///  * bin-key kernels map selected rows to dense bin indices;
///  * aggregate gather kernels materialize the aggregate inputs for the
///    surviving selection.
///
/// Semantics are bit-compatible with the scalar reference: every kernel
/// evaluates the same double-typed expression the scalar path evaluates
/// (including int64→double casts, NaN-never-matches, truncation for
/// nominal bins and `std::floor` for quantitative bins), so per-bin
/// accumulator streams are identical in value *and order*.

#include <array>
#include <cstdint>
#include <vector>

#include "exec/bound_query.h"

namespace idebench::exec {

/// Rows processed per kernel invocation.  Large enough to amortize
/// dispatch, small enough that batch scratch stays cache-resident.
inline constexpr int64_t kVectorBatchSize = 1024;

/// One batch of fact rows threaded through the kernels.  `rows` is the
/// caller-owned gather list (e.g. a slice of a shuffled walk); `sel`
/// holds the indices into `rows` that survived filtering; `keys` holds
/// the dense bin key per selected row after `FilterAndBin`.
struct RowBatch {
  const int64_t* rows = nullptr;
  int64_t n = 0;
  int64_t n_sel = 0;
  std::array<int32_t, kVectorBatchSize> sel;
  std::array<int64_t, kVectorBatchSize> keys;
  std::array<int64_t, kVectorBatchSize> keys2;   // scratch: 2nd-dim indices
  std::array<double, kVectorBatchSize> values;   // gathered agg inputs
};

/// A compiled column access path: exactly one of `i64`/`f64` is set
/// (dictionary codes ride the int64 array); `join` is the flat fact→dim
/// mapping for dimension columns, nullptr for fact columns.
struct ColumnAccess {
  const int64_t* i64 = nullptr;
  const double* f64 = nullptr;
  const int32_t* join = nullptr;
};

/// A compiled filter predicate: a type-specialized function pointer plus
/// its operands.
struct FilterKernel {
  using Fn = int64_t (*)(const FilterKernel&, const int64_t* rows,
                         int32_t* sel, int64_t n_sel);
  Fn fn = nullptr;
  ColumnAccess col;
  double value = 0.0;  // kEq..kGe
  double lo = 0.0;     // kRange
  double hi = 0.0;     // kRange (exclusive)
  const double* set_begin = nullptr;  // kIn
  const double* set_end = nullptr;
};

/// A compiled bin dimension: maps selected rows to per-dimension bin
/// indices (-1 = out of range / join miss / NaN).
struct BinKernel {
  using Fn = void (*)(const BinKernel&, const int64_t* rows,
                      const int32_t* sel, int64_t n_sel, int64_t* out);
  Fn fn = nullptr;
  ColumnAccess col;
  double lo = 0.0;
  double width = 1.0;
  int64_t bin_count = 0;
};

/// A compiled aggregate input: gathers the aggregate's value per selected
/// row (NaN on join miss).  COUNT has no kernel (`is_count`).
struct AggKernel {
  using Fn = void (*)(const AggKernel&, const int64_t* rows,
                      const int32_t* sel, int64_t n_sel, double* out);
  Fn fn = nullptr;
  ColumnAccess col;
  bool is_count = false;
};

/// The vectorized form of one `BoundQuery`: a kernel table compiled at
/// bind time.  When a query shape cannot be compiled (`!ok()`), callers
/// fall back to the scalar reference path.
class VectorizedQuery {
 public:
  /// Compiles kernels for `query`.  The query (and the spec/storage it
  /// points into) must outlive the compiled form.
  static VectorizedQuery Compile(const BoundQuery& query);

  /// False when the query shape could not be vectorized.
  bool ok() const { return ok_; }

  /// Size of the dense bin-key space (product of per-dimension counts).
  int64_t key_space() const { return key_space_; }

  size_t num_aggregates() const { return agg_kernels_.size(); }
  bool agg_is_count(size_t a) const { return agg_kernels_[a].is_count; }

  /// Runs all filter kernels then the bin-key kernels over
  /// `batch->rows[0..n)`.  On return `batch->sel[0..n_sel)` are the
  /// surviving row indices and `batch->keys[0..n_sel)` their *dense* bin
  /// keys.  Returns `n_sel`.
  int64_t FilterAndBin(RowBatch* batch) const;

  /// Gathers aggregate `a`'s inputs for the current selection into
  /// `batch->values` (requires `!agg_is_count(a)`).
  void GatherAggValues(size_t a, RowBatch* batch) const;

  /// Converts a dense key to the public packed key used in results.
  int64_t DenseKeyToPublic(int64_t dense) const {
    if (!two_d_) return dense;
    return query::EncodeBinKey(dense / bins1_, dense % bins1_);
  }

  /// Converts a public packed key to its dense index.
  int64_t PublicKeyToDense(int64_t key) const {
    if (!two_d_) return key;
    return query::BinKeyDim0(key) * bins1_ + query::BinKeyDim1(key);
  }

 private:
  std::vector<FilterKernel> filters_;
  std::vector<BinKernel> bin_kernels_;  // 1 or 2
  std::vector<AggKernel> agg_kernels_;
  bool two_d_ = false;
  int64_t bins1_ = 1;        // 2nd-dimension bin count (1 for 1-D)
  int64_t key_space_ = 0;
  bool ok_ = false;
};

}  // namespace idebench::exec

#endif  // IDEBENCH_EXEC_VECTORIZED_H_
