#ifndef IDEBENCH_EXEC_VECTORIZED_H_
#define IDEBENCH_EXEC_VECTORIZED_H_

/// \file vectorized.h
/// Vectorized (batch-at-a-time) execution kernels for sampled aggregation.
///
/// The scalar path runs one `MatchesFilter` + `BinKey` + `AggValueAt` call
/// chain per row, each doing a per-call type switch inside
/// `Column::ValueAsDouble`.  This subsystem replaces that hot loop with
/// type-specialized kernels compiled once per bound query, in two tiers:
///
/// **Two-phase pipeline** (the PR-1 design, kept compiled alongside as
/// the vectorized differential reference):
///
///  * a `RowBatch` carries up to `kVectorBatchSize` gathered fact-row ids
///    plus a *selection vector* that filter kernels compact in place;
///  * filter kernels (range / IN-set / equality / ordering) are selected
///    from a per-(op, column-type, join) kernel table at compile time and
///    read raw contiguous arrays (`Column::Int64Data` / `DoubleData`);
///  * bin-key kernels map selected rows to dense bin indices one row at a
///    time (per-row `std::floor` + integer range check);
///  * aggregate gather kernels materialize the aggregate inputs for the
///    surviving selection.
///
/// **Fused pipeline** (the default): the bin/aggregate tail of the batch
/// is one fused, branch-free sweep —
///
///  * bin kernels split into a gather phase (each dimension column
///    loaded exactly once per batch into a contiguous value lane, join
///    misses and NaNs becoming one NaN sentinel) and a *vertical* key
///    phase: quantitative bins evaluate `(v - lo) / width` (an exact
///    `* inv_width` multiply when width is a power of two) and replace
///    the scalar path's `std::floor` call + integer range check with
///    compare-guarded truncating casts — identical results for every
///    value, no libm call, no per-row branch, fully vectorizable;
///  * string/dictionary dimensions are *pre-binned*: a code → bin-id
///    lookup table built once at query compile from the column
///    `Dictionary` turns per-row string binning into an int gather;
///  * selection, keys, and the stashed dimension values compact in one
///    fused branchless pass, and aggregate inputs that share a binned
///    dimension column are read from the stash instead of re-gathered.
///
/// Semantics of both tiers are bit-compatible with the scalar reference:
/// every kernel evaluates the same double-typed expression the scalar
/// path evaluates (including int64→double casts, NaN-never-matches,
/// truncation for nominal bins and floor-division for quantitative
/// bins), and surviving rows hit each per-bin accumulator in the same
/// order, so accumulator streams are identical in value *and order*.
///
/// The compiled form also carries **zone-map prune checks**: for every
/// filter predicate and bin dimension that reads a fact column directly,
/// a per-64K-block test against the column's zone map
/// (`storage::Column::zone_map()`) that proves "no row in this block can
/// match".  Full-scan drivers use `RangeCanMatch` to skip whole blocks;
/// the tests evaluate the *same* monotone floating-point expressions as
/// the kernels at the block bounds, so a skipped block can never contain
/// a matching row.  Shuffled-walk feeds cannot use them (their batches
/// mix rows from every block).

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "exec/bound_query.h"
#include "storage/column.h"

namespace idebench::exec {

/// Rows processed per kernel invocation.  Large enough to amortize
/// dispatch, small enough that batch scratch stays cache-resident.
inline constexpr int64_t kVectorBatchSize = 1024;

/// One batch of fact rows threaded through the kernels.  `rows` is the
/// caller-owned gather list (e.g. a slice of a shuffled walk); `sel`
/// holds the indices into `rows` that survived filtering; `keys` holds
/// the dense bin key per selected row after `FilterAndBin` /
/// `FusedFilterBin`; `bin_vals`/`bin_vals2` stash the binned dimension
/// values (compacted with the selection) so aggregates sharing a binned
/// column skip their gather.
struct RowBatch {
  const int64_t* rows = nullptr;
  int64_t n = 0;
  int64_t n_sel = 0;
  std::array<int32_t, kVectorBatchSize> sel;
  std::array<int64_t, kVectorBatchSize> keys;
  std::array<int64_t, kVectorBatchSize> keys2;   // scratch: 2nd-dim indices
  std::array<double, kVectorBatchSize> values;   // gathered agg inputs
  std::array<double, kVectorBatchSize> bin_vals;   // dim-0 value lane
  std::array<double, kVectorBatchSize> bin_vals2;  // dim-1 value lane
};

/// A compiled column access path: exactly one of `i64`/`f64` is set
/// (dictionary codes ride the int64 array); `join` is the flat fact→dim
/// mapping for dimension columns, nullptr for fact columns.
struct ColumnAccess {
  const int64_t* i64 = nullptr;
  const double* f64 = nullptr;
  const int32_t* join = nullptr;
};

/// A compiled filter predicate: a type-specialized function pointer plus
/// its operands.
struct FilterKernel {
  using Fn = int64_t (*)(const FilterKernel&, const int64_t* rows,
                         int32_t* sel, int64_t n_sel);
  Fn fn = nullptr;
  ColumnAccess col;
  double value = 0.0;  // kEq..kGe
  double lo = 0.0;     // kRange
  double hi = 0.0;     // kRange (exclusive)
  const double* set_begin = nullptr;  // kIn
  const double* set_end = nullptr;
};

/// A compiled bin dimension: maps selected rows to per-dimension bin
/// indices (-1 = out of range / join miss / NaN), writing the loaded
/// value per row into `out_vals` (NaN on join miss) so aggregates over
/// the same column can reuse it.  The same struct backs both the
/// reference kernels and the fused vertical/LUT kernels (which ignore
/// the fields they do not need).
struct BinKernel {
  using Fn = void (*)(const BinKernel&, const int64_t* rows,
                      const int32_t* sel, int64_t n_sel, int64_t* out,
                      double* out_vals);
  Fn fn = nullptr;
  ColumnAccess col;
  double lo = 0.0;
  double width = 1.0;
  double inv_width = 1.0;  // fused: exact reciprocal (power-of-two width)
  int64_t bin_count = 0;
  const int32_t* lut = nullptr;  // fused: dictionary code -> bin id / -1
  std::shared_ptr<const std::vector<int32_t>> lut_owner;
};

/// A compiled aggregate input: gathers the aggregate's value per selected
/// row (NaN on join miss).  COUNT has no kernel (`is_count`).
struct AggKernel {
  using Fn = void (*)(const AggKernel&, const int64_t* rows,
                      const int32_t* sel, int64_t n_sel, double* out);
  Fn fn = nullptr;
  ColumnAccess col;
  bool is_count = false;
};

/// The vectorized form of one `BoundQuery`: a kernel table compiled at
/// bind time.  When a query shape cannot be compiled (`!ok()`), callers
/// fall back to the scalar reference path.
class VectorizedQuery {
 public:
  /// Compiles kernels for `query`.  The query (and the spec/storage it
  /// points into) must outlive the compiled form.
  static VectorizedQuery Compile(const BoundQuery& query);

  /// False when the query shape could not be vectorized.
  bool ok() const { return ok_; }

  /// True when the fused bin kernels compiled (implies `ok()`).
  bool fused_ok() const { return fused_ok_; }

  /// Size of the dense bin-key space (product of per-dimension counts).
  int64_t key_space() const { return key_space_; }

  size_t num_aggregates() const { return agg_kernels_.size(); }
  bool agg_is_count(size_t a) const { return agg_kernels_[a].is_count; }

  /// Runs all filter kernels then the bin-key kernels over
  /// `batch->rows[0..n)`.  On return `batch->sel[0..n_sel)` are the
  /// surviving row indices and `batch->keys[0..n_sel)` their *dense* bin
  /// keys.  Returns `n_sel`.  `FilterAndBin` runs the per-row reference
  /// bin kernels; `FusedFilterBin` runs the fused vertical/LUT bin
  /// kernels — same postcondition, bit-identical selection and keys.
  int64_t FilterAndBin(RowBatch* batch) const {
    return FilterAndBinImpl(batch, bin_kernels_);
  }
  int64_t FusedFilterBin(RowBatch* batch) const {
    return FilterAndBinImpl(batch, fused_bins_);
  }

  /// Returns aggregate `a`'s inputs for the current selection (requires
  /// `!agg_is_count(a)`): a pointer into `batch->bin_vals`/`bin_vals2`
  /// when the aggregate reads a binned dimension column (no re-gather),
  /// otherwise gathers into `batch->values` and returns that.
  const double* GatherAggValues(size_t a, RowBatch* batch) const;

  // --- Zone-map block pruning -------------------------------------------

  /// True when at least one filter predicate or bin dimension reads a
  /// fact column directly, i.e. `RangeCanMatch` can ever prune.
  bool can_prune_blocks() const { return !prune_checks_.empty(); }

  /// True unless the fact-column zone maps *prove* that no row in
  /// [begin, end) can survive filtering and binning.  Sound, not
  /// complete: `false` guarantees zero matches in the range; `true`
  /// promises nothing.  The range may span several zone blocks; each
  /// check prunes only when every overlapped block is excluded.
  bool RangeCanMatch(int64_t begin, int64_t end) const;

  /// Segment-backed variant of `RangeCanMatch` for scans whose zone
  /// entries come from a segment-file footer instead of the live column
  /// zone map: `zone_of` maps each compiled fact column to the current
  /// segment's persisted zone entry (nullptr = unknown, never pruned on).
  /// Same soundness contract — `false` proves the segment holds no
  /// matching row; the checks evaluate the identical monotone
  /// expressions `BlockCanMatch` evaluates on live zones.
  bool SegmentCanMatch(
      const std::function<const storage::ZoneEntry*(const storage::Column*)>&
          zone_of) const;

  /// Converts a dense key to the public packed key used in results.
  int64_t DenseKeyToPublic(int64_t dense) const {
    if (!two_d_) return dense;
    return query::EncodeBinKey(dense / bins1_, dense % bins1_);
  }

  /// Converts a public packed key to its dense index.
  int64_t PublicKeyToDense(int64_t key) const {
    if (!two_d_) return key;
    return query::BinKeyDim0(key) * bins1_ + query::BinKeyDim1(key);
  }

 private:
  /// One zone-map exclusion test over a fact column.
  struct PruneCheck {
    enum class Kind : uint8_t { kCompare, kBinQuant, kBinNominal };
    Kind kind = Kind::kCompare;
    expr::CompareOp op = expr::CompareOp::kEq;
    const storage::Column* col = nullptr;
    double value = 0.0;
    double lo = 0.0;
    double hi = 0.0;     // kCompare/kRange
    double width = 1.0;  // kBinQuant
    int64_t bin_count = 0;
    const double* set_begin = nullptr;  // kIn
    const double* set_end = nullptr;

    /// True unless the block bounds prove no row can match this check.
    bool BlockCanMatch(const storage::ZoneEntry& z) const;
  };

  /// Shared filter → bin → compact body parameterized on the bin kernel
  /// table (reference or fused).
  int64_t FilterAndBinImpl(RowBatch* batch,
                           const std::vector<BinKernel>& bins) const;

  /// Compiles the fused bin kernels / prune checks (called after the
  /// reference kernels compiled).
  void CompileFused(const BoundQuery& query);
  void CompilePrune(const BoundQuery& query);

  std::vector<FilterKernel> filters_;
  std::vector<BinKernel> bin_kernels_;  // 1 or 2 (per-row reference)
  std::vector<BinKernel> fused_bins_;   // 1 or 2 (vertical / LUT)
  std::vector<AggKernel> agg_kernels_;
  bool two_d_ = false;
  int64_t bins1_ = 1;        // 2nd-dimension bin count (1 for 1-D)
  int64_t key_space_ = 0;
  bool ok_ = false;
  bool fused_ok_ = false;

  // Gather dedup: per aggregate, the bin dimension whose stashed values
  // it can reuse (-1 = gather normally); the per-dimension flags turn on
  // value-lane compaction in the shared body.
  std::vector<int8_t> agg_shared_dim_;
  bool stash_vals0_ = false;
  bool stash_vals1_ = false;

  // Zone-map prune checks.
  std::vector<PruneCheck> prune_checks_;
};

// --- Compressed-segment decode kernels ---------------------------------
//
// The segment scan (exec/segment_scan.h) decodes storage/segment.h blobs
// into the staging columns the compiled kernels read.  These are the two
// non-trivial decoders; raw blobs are a memcpy.

/// Expands `num_runs` RLE runs (`values[r]` repeated `lengths[r]` times)
/// into `out`, which must hold the runs' total length.
void ExpandRleRuns(const int64_t* values, const int32_t* lengths,
                   int32_t num_runs, int64_t* out);

/// Decodes `n` frame-of-reference bit-packed values: `bits`-wide unsigned
/// deltas packed LSB-first into little-endian 64-bit `words`, added to
/// `base`.  `bits` must be in [1, 32].
void UnpackBitsFOR(const uint64_t* words, uint8_t bits, int64_t base,
                   int64_t n, int64_t* out);

}  // namespace idebench::exec

#endif  // IDEBENCH_EXEC_VECTORIZED_H_
