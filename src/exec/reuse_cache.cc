#include "exec/reuse_cache.h"

#include <algorithm>
#include <vector>

#include "chaos/fault_injector.h"

namespace idebench::exec {

namespace {

/// Chaos site: a would-be hit turns out corrupt.  The contract that keeps
/// this result-transparent: the cache only ever displaces *physical work*,
/// never changes results, so dropping the entry and reporting a miss just
/// forces the caller back onto the full pipeline.
bool PoisonHit() {
  return chaos::FaultInjector::Fire(chaos::FaultSite::kReusePoison);
}

/// Delta maintenance folds new epochs into *matching bin-table*
/// snapshots.  An epoch publish that moves a column's min/max or grows a
/// dictionary re-resolves the spec's bins, and a snapshot resolved under
/// the old tables can no longer be adopted index-wise — its dense arrays
/// are keyed by the old bin layout.  (The recorded candidate list stays
/// valid either way: replay re-bins by value through the new binding.)
bool SameBinTables(const query::QuerySpec& a, const query::QuerySpec& b) {
  if (a.bins.size() != b.bins.size()) return false;
  for (size_t i = 0; i < a.bins.size(); ++i) {
    const query::BinDimension& x = a.bins[i];
    const query::BinDimension& y = b.bins[i];
    if (x.bin_count != y.bin_count || x.lo != y.lo || x.width != y.width) {
      return false;
    }
  }
  return true;
}

}  // namespace

ReuseCache::ReuseCache(ReuseCacheOptions options) : options_(options) {}

ReuseCache::Match ReuseCache::Lookup(const query::QuerySpec& spec) {
  Match match;
  const std::string full_key = spec.Signature();
  auto it = entries_.find(full_key);
  if (it != entries_.end() && IsStale(*it->second)) {
    // Invalidate-on-growth baseline: the entry predates the current
    // epoch watermark, so it dies here and the query rescans from zero.
    Erase(it);
    ++stats_.stale_invalidations;
    it = entries_.end();
  }
  if (it != entries_.end() && it->second->watermark > 0) {
    if (PoisonHit()) {
      Erase(it);
      ++stats_.poisoned;
      ++stats_.misses;
      return match;
    }
    it->second->last_used = ++use_tick_;
    match.entry = it->second;
    if (SameBinTables(spec, *it->second->spec)) {
      ++stats_.equal_hits;
      match.kind = MatchKind::kEqual;
    } else {
      // An epoch publish re-shaped the bin tables since this snapshot
      // was stored: the dense arrays are unusable, but the candidate
      // list still displaces the scan — serve it as a replay hit.
      ++stats_.refinement_hits;
      match.kind = MatchKind::kRefinement;
    }
    return match;
  }

  // Refinement scan: same core signature, cached predicates implied by
  // the new ones.  Deepest watermark wins (most physical work displaced);
  // ties break on the key for determinism.
  const std::string core_key = spec.CoreSignature();
  Entry* best = nullptr;
  for (auto& [key, entry] : entries_) {
    if (entry->core_key != core_key || entry->watermark <= 0) continue;
    if (IsStale(*entry)) continue;  // dies lazily at its own equal lookup
    if (!expr::Refines(spec.filter, entry->spec->filter)) continue;
    if (best == nullptr || entry->watermark > best->watermark ||
        (entry->watermark == best->watermark &&
         entry->full_key < best->full_key)) {
      best = entry.get();
    }
  }
  if (best == nullptr) {
    ++stats_.misses;
    return match;
  }
  if (PoisonHit()) {
    Erase(entries_.find(best->full_key));
    ++stats_.poisoned;
    ++stats_.misses;
    return match;
  }
  best->last_used = ++use_tick_;
  ++stats_.refinement_hits;
  match.entry = entries_.find(best->full_key)->second;
  match.kind = MatchKind::kRefinement;
  return match;
}

void ReuseCache::Store(const query::QuerySpec& spec,
                       const BinnedAggregator& agg, const Binder& binder) {
  // Nothing to reuse from an empty feed, and nothing to replay from an
  // aggregator that did not record its candidates (or whose recorder
  // overflowed: the candidate list is incomplete).
  if (agg.rows_seen() <= 0 || !agg.options().record_matches ||
      agg.matches_overflowed()) {
    return;
  }

  // Chaos site: an eviction storm (memory-pressure spike) wipes the whole
  // cache just before the store.  Only physical work is displaced, so the
  // storm costs future lookups their hits and nothing else.
  if (chaos::FaultInjector::Fire(chaos::FaultSite::kReuseEvictStorm)) {
    stats_.evictions += static_cast<int64_t>(entries_.size());
    entries_.clear();
    total_bytes_ = 0;
  }

  const std::string full_key = spec.Signature();
  auto it = entries_.find(full_key);
  if (it != entries_.end() && IsStale(*it->second)) {
    // A stale entry must not suppress a fresh store, whatever its depth.
    Erase(it);
    ++stats_.stale_invalidations;
    it = entries_.end();
  }
  if (it != entries_.end() && it->second->watermark >= agg.rows_seen() &&
      SameBinTables(spec, *it->second->spec)) {
    it->second->last_used = ++use_tick_;
    return;  // the cached snapshot is at least as deep (and same-shaped);
             // a re-shaped entry falls through and is replaced below
  }

  auto entry = std::make_shared<Entry>();
  entry->full_key = full_key;
  entry->core_key = spec.CoreSignature();
  // Entries are owned by the viz that first stored the signature: a
  // deeper snapshot of the same query (possibly stored via another
  // viz's identical submission) must not migrate the entry between LRU
  // buckets.
  entry->viz = it != entries_.end() ? it->second->viz : spec.viz_name;
  entry->spec = std::make_unique<query::QuerySpec>(spec);
  auto bound = binder(*entry->spec);
  if (!bound.ok()) return;  // engine cannot re-bind: skip caching
  entry->bound = std::make_unique<BoundQuery>(std::move(bound).MoveValueUnsafe());

  BinnedAggregatorOptions snapshot_options = agg.options();
  snapshot_options.record_matches = true;  // the candidate list rides along
  entry->snapshot = std::make_unique<BinnedAggregator>(entry->bound.get(),
                                                       snapshot_options);
  entry->snapshot->MergeFrom(agg);
  entry->watermark = agg.rows_seen();
  entry->epoch_watermark = epoch_watermark_;
  entry->last_used = ++use_tick_;
  // Candidate list + bin tables, plus a coarse per-entry floor for the
  // binding and bookkeeping.
  entry->approx_bytes = entry->snapshot->ApproxMemoryBytes() + 4096;

  const std::string owner_viz = entry->viz;
  if (it != entries_.end()) Erase(it);
  total_bytes_ += entry->approx_bytes;
  entries_[full_key] = std::move(entry);
  ++stats_.stores;
  EvictOverflow(owner_viz);
}

void ReuseCache::Erase(
    std::unordered_map<std::string, std::shared_ptr<Entry>>::iterator it) {
  total_bytes_ -= it->second->approx_bytes;
  entries_.erase(it);
}

void ReuseCache::EvictOverflow(const std::string& viz) {
  const auto evict_lru = [&](const std::string* viz_filter) {
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (viz_filter != nullptr && it->second->viz != *viz_filter) continue;
      if (victim == entries_.end() ||
          it->second->last_used < victim->second->last_used) {
        victim = it;
      }
    }
    if (victim != entries_.end()) {
      Erase(victim);
      ++stats_.evictions;
    }
  };

  int64_t viz_count = 0;
  for (const auto& [key, entry] : entries_) {
    if (entry->viz == viz) ++viz_count;
  }
  while (viz_count > options_.max_entries_per_viz) {
    evict_lru(&viz);
    --viz_count;
  }
  while (static_cast<int64_t>(entries_.size()) > options_.max_entries_total) {
    evict_lru(nullptr);
  }
  // Byte budget last: entry-count caps bound the scan, this bounds the
  // resident footprint.  Always leave the most recent entry in place
  // (the one just stored is usually about to be hit).
  while (total_bytes_ > options_.max_total_bytes && entries_.size() > 1) {
    evict_lru(nullptr);
  }
}

int64_t ReuseCache::Serve(const Match& match, BinnedAggregator* agg,
                          int64_t begin, int64_t end) {
  if (!match || match.kind == MatchKind::kNone) return begin;
  const Entry& entry = *match.entry;
  const int64_t upto = std::min(end, entry.watermark);
  if (upto <= begin) return begin;

  if (match.kind == MatchKind::kEqual && begin == 0 &&
      agg->rows_seen() == 0 && upto == entry.watermark) {
    // The range covers the whole snapshot: adopt its bin tables (and
    // candidate list) wholesale.
    agg->MergeFrom(*entry.snapshot);
    return upto;
  }
  // Partial or refined coverage: replay the candidate slice through this
  // query's own filter at the original positions and weights.
  agg->ReplayMatches(entry.snapshot->matched_rows(), begin, upto);
  return upto;
}

void ReuseCache::DropViz(const std::string& viz) {
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second->viz == viz) {
      total_bytes_ -= it->second->approx_bytes;
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

void ReuseCache::Clear() {
  entries_.clear();
  total_bytes_ = 0;
}

metrics::ReuseCacheStats ReuseCache::stats() const {
  metrics::ReuseCacheStats s = stats_;
  s.entries = static_cast<int64_t>(entries_.size());
  return s;
}

}  // namespace idebench::exec
