#include "exec/bound_query.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace idebench::exec {
namespace {

/// Finds the table owning `column` and, when it is a dimension, the join
/// index to reach it.
Result<ColumnBinding> ResolveColumn(
    const std::string& column, const storage::Catalog& catalog,
    const std::vector<const JoinIndex*>& joins) {
  const storage::Table* fact = catalog.fact_table();
  if (fact == nullptr) return Status::Invalid("catalog has no fact table");
  if (const storage::Column* col = fact->ColumnByName(column)) {
    return ColumnBinding{col, nullptr};
  }
  for (const auto& table : catalog.tables()) {
    if (table.get() == fact) continue;
    const storage::Column* col = table->ColumnByName(column);
    if (col == nullptr) continue;
    for (const JoinIndex* join : joins) {
      if (join != nullptr && join->dimension_table() == table->name()) {
        return ColumnBinding{col, join};
      }
    }
    return Status::Invalid("column '" + column + "' lives in dimension '" +
                           table->name() + "' but no join index was provided");
  }
  return Status::KeyError("column '" + column + "' not found in catalog");
}

}  // namespace

Result<std::vector<std::string>> BoundQuery::RequiredJoins(
    const query::QuerySpec& spec, const storage::Catalog& catalog) {
  std::vector<std::string> dims;
  const storage::Table* fact = catalog.fact_table();
  if (fact == nullptr) return Status::Invalid("catalog has no fact table");
  auto consider = [&](const std::string& column) -> Status {
    if (fact->ColumnByName(column) != nullptr) return Status::OK();
    for (const auto& table : catalog.tables()) {
      if (table.get() == fact) continue;
      if (table->ColumnByName(column) != nullptr) {
        if (std::find(dims.begin(), dims.end(), table->name()) == dims.end()) {
          dims.push_back(table->name());
        }
        return Status::OK();
      }
    }
    return Status::KeyError("column '" + column + "' not found in catalog");
  };
  for (const auto& d : spec.bins) IDB_RETURN_NOT_OK(consider(d.column));
  for (const auto& p : spec.filter.predicates()) {
    IDB_RETURN_NOT_OK(consider(p.column));
  }
  for (const auto& a : spec.aggregates) {
    if (!a.column.empty()) IDB_RETURN_NOT_OK(consider(a.column));
  }
  return dims;
}

Result<BoundQuery> BoundQuery::Bind(const query::QuerySpec& spec,
                                    const storage::Catalog& catalog,
                                    const std::vector<const JoinIndex*>& joins) {
  BoundQuery bq;
  bq.spec_ = &spec;
  bq.fact_ = catalog.fact_table();
  if (bq.fact_ == nullptr) return Status::Invalid("catalog has no fact table");

  for (const query::BinDimension& d : spec.bins) {
    if (!d.resolved) {
      return Status::Invalid("bin dimension '" + d.column + "' not resolved");
    }
    IDB_ASSIGN_OR_RETURN(ColumnBinding b,
                         ResolveColumn(d.column, catalog, joins));
    bq.bin_bindings_.push_back(b);
  }
  for (const query::AggregateSpec& a : spec.aggregates) {
    if (a.column.empty()) {
      bq.agg_bindings_.push_back(ColumnBinding{});  // COUNT: no input
    } else {
      IDB_ASSIGN_OR_RETURN(ColumnBinding b,
                           ResolveColumn(a.column, catalog, joins));
      bq.agg_bindings_.push_back(b);
    }
  }
  for (const expr::Predicate& p : spec.filter.predicates()) {
    IDB_ASSIGN_OR_RETURN(ColumnBinding b,
                         ResolveColumn(p.column, catalog, joins));
    bq.filter_bindings_.push_back(b);
  }
  return bq;
}

bool BoundQuery::MatchesFilter(int64_t row) const {
  const auto& predicates = spec_->filter.predicates();
  for (size_t i = 0; i < predicates.size(); ++i) {
    const double v = filter_bindings_[i].Value(row);
    if (std::isnan(v)) return false;  // join miss -> inner join drops row
    if (!predicates[i].Matches(v)) return false;
  }
  return true;
}

int64_t BoundQuery::BinKey(int64_t row) const {
  const double v0 = bin_bindings_[0].Value(row);
  if (std::isnan(v0)) return -1;
  const int64_t i0 = spec_->bins[0].BinIndex(v0);
  if (spec_->bins.size() == 1) return spec_->EncodeKey(i0, 0);
  const double v1 = bin_bindings_[1].Value(row);
  if (std::isnan(v1)) return -1;
  const int64_t i1 = spec_->bins[1].BinIndex(v1);
  return spec_->EncodeKey(i0, i1);
}

double BoundQuery::AggValueAt(size_t agg_index, int64_t row) const {
  const ColumnBinding& b = agg_bindings_[agg_index];
  if (b.column == nullptr) return 1.0;  // COUNT contributes 1 per row
  return b.Value(row);
}

}  // namespace idebench::exec
