#ifndef IDEBENCH_EXEC_AGGREGATOR_H_
#define IDEBENCH_EXEC_AGGREGATOR_H_

/// \file aggregator.h
/// Incremental binned aggregation with exact and approximate snapshots.
///
/// All engines funnel rows through a `BinnedAggregator`; what differs is
/// *which* rows they feed (full scan, growing uniform sample, weighted
/// stratified sample) and which snapshot they take:
///
///  * `ExactResult()` — the blocking engine after a complete scan.
///  * `EstimateFromUniformSample()` — progressive/online engines that have
///    processed a uniform sample of `rows_seen()` rows out of a population;
///    estimates are Horvitz–Thompson scale-ups with CLT confidence
///    intervals and a finite-population correction.
///  * `EstimateFromWeightedSample()` — the offline stratified engine,
///    where each row carries its stratum weight N_s/n_s; variances use a
///    Poisson-sampling approximation (see DESIGN.md).

#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

#include "exec/bound_query.h"
#include "query/result.h"

namespace idebench::exec {

/// Per-(bin, aggregate) running sums.
struct AggAccum {
  int64_t n = 0;          // matched rows
  double sum = 0.0;       // sum of input values (weighted when weights used)
  double sumsq = 0.0;     // sum of squared inputs (unweighted)
  double wsum = 0.0;      // sum of weights
  double wvar = 0.0;      // sum of w*(w-1) — Poisson variance term
  double wvsum = 0.0;     // sum of w*v
  double wvsumsq = 0.0;   // sum of w*(w-1)*v^2
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
};

/// Streaming group-by aggregation for one bound query.
class BinnedAggregator {
 public:
  explicit BinnedAggregator(const BoundQuery* query);

  /// Feeds fact row `row` with weight 1.
  void ProcessRow(int64_t row) { ProcessRowWeighted(row, 1.0); }

  /// Feeds fact row `row` with inverse-inclusion-probability `weight`.
  void ProcessRowWeighted(int64_t row, double weight);

  /// Feeds the half-open fact-row range [begin, end) with weight 1.
  void ProcessRange(int64_t begin, int64_t end);

  /// Rows fed so far (matched or not).
  int64_t rows_seen() const { return rows_seen_; }

  /// Rows that passed the filter so far.
  int64_t rows_matched() const { return rows_matched_; }

  /// Exact answer (weight-1 complete scan).
  query::QueryResult ExactResult() const;

  /// Scale-up estimate assuming the fed rows are a uniform sample of
  /// `population` rows.  `z` is the normal quantile of the confidence
  /// level (1.96 for 95 %).  Margins include a finite-population
  /// correction so they shrink to zero as the sample approaches the
  /// population.
  query::QueryResult EstimateFromUniformSample(int64_t population,
                                               double z) const;

  /// Estimate from weighted rows (stratified/offline sampling); weights
  /// were supplied per row via `ProcessRowWeighted`.
  query::QueryResult EstimateFromWeightedSample(double z) const;

  /// Drops all accumulated state.
  void Reset();

 private:
  const BoundQuery* query_;
  std::unordered_map<int64_t, std::vector<AggAccum>> bins_;
  int64_t rows_seen_ = 0;
  int64_t rows_matched_ = 0;
};

}  // namespace idebench::exec

#endif  // IDEBENCH_EXEC_AGGREGATOR_H_
