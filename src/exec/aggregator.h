#ifndef IDEBENCH_EXEC_AGGREGATOR_H_
#define IDEBENCH_EXEC_AGGREGATOR_H_

/// \file aggregator.h
/// Incremental binned aggregation with exact and approximate snapshots.
///
/// All engines funnel rows through a `BinnedAggregator`; what differs is
/// *which* rows they feed (full scan, growing uniform sample, weighted
/// stratified sample) and which snapshot they take:
///
///  * `ExactResult()` — the blocking engine after a complete scan.
///  * `EstimateFromUniformSample()` — progressive/online engines that have
///    processed a uniform sample of `rows_seen()` rows out of a population;
///    estimates are Horvitz–Thompson scale-ups with CLT confidence
///    intervals and a finite-population correction.
///  * `EstimateFromWeightedSample()` — the offline stratified engine,
///    where each row carries its stratum weight N_s/n_s; variances use a
///    Poisson-sampling approximation (see DESIGN.md).
///
/// Rows arrive through three equivalent paths:
///
///  * the scalar reference path (`ProcessRow` / `ProcessRowWeighted`),
///    one `MatchesFilter`+`BinKey`+`AggValueAt` chain per row;
///  * the two-phase vectorized path (filter kernels → selection vector →
///    bin kernels → aggregate gathers), kept as the vectorized
///    differential reference (`enable_fused = false`);
///  * the fused single-pass path (the default for `ProcessBatch` /
///    `ProcessRange` / `ProcessShuffled`): one compiled plan per query
///    walks each ~1024-row batch once — every distinct column gathered
///    exactly once, vertical mask predicates, branchless SIMD bin keys
///    (dictionary dimensions through a compile-time code→bin LUT) — and
///    accumulates straight into a *dense flat bin table* whenever the
///    resolved bin-key space is small (the common IDEBench case),
///    falling back to the hash map transparently otherwise.
///
/// All paths write the same accumulator streams in the same per-bin
/// order, so results are bit-identical; the scalar path is the reference
/// implementation for differential testing
/// (`BinnedAggregatorOptions::enable_vectorized = false`).
///
/// `ProcessRange` feeds additionally consult the fact columns' zone maps
/// (storage/column.h) through the compiled prune checks: 64K blocks that
/// provably cannot contain a match are skipped wholesale (rows still
/// accounted via `SkipRows`, so results stay bit-identical).  Shuffled
/// walks cannot prune — their batches mix rows from every block.
///
/// For multi-core execution (exec/parallel.h) an aggregator is
/// *mergeable*: morsel workers accumulate into partial aggregators
/// created with `NewPartial()` — each with its own dense/hash bin table
/// but sharing this aggregator's immutable compiled kernels — and the
/// dispatcher folds them back with `MergeFrom()` in morsel order.  Every
/// accumulator field is a sum (or min/max), so merging is exact for
/// counts, weights with integral values, and extremes; double-valued
/// sums merge associatively up to the usual last-ulp floating-point
/// grouping effects (see exec/parallel.h for the determinism contract).

#include <algorithm>
#include <cstdint>
#include <limits>
#include <memory>
#include <unordered_map>
#include <vector>

#include "aqp/sampler.h"
#include "exec/bound_query.h"
#include "exec/vectorized.h"
#include "query/result.h"

namespace idebench::exec {

/// Per-(bin, aggregate) running sums.
struct AggAccum {
  int64_t n = 0;          // matched rows
  double sum = 0.0;       // sum of input values (weighted when weights used)
  double sumsq = 0.0;     // sum of squared inputs (unweighted)
  double wsum = 0.0;      // sum of weights
  double wvar = 0.0;      // sum of w*(w-1) — Poisson variance term
  double wvsum = 0.0;     // sum of w*v
  double wvsumsq = 0.0;   // sum of w*(w-1)*v^2
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
};

/// Execution knobs; defaults enable the fast paths.
struct BinnedAggregatorOptions {
  /// Compile and use the vectorized kernels for batch entry points.
  /// Disable to force the scalar reference path everywhere.
  bool enable_vectorized = true;

  /// Run the batch entry points through the fused single-pass plan
  /// (filter + bin + accumulate in one walk, each column gathered once).
  /// Disable to force the two-phase pipeline (filter kernels → selection
  /// vector → bin kernels → aggregate gathers), kept as the vectorized
  /// differential reference.  Ignored when `enable_vectorized` is off.
  bool enable_fused = true;

  /// Skip zone-map-excluded 64K blocks on `ProcessRange` feeds (skipped
  /// rows still advance `rows_seen()` via SkipRows, so results — rows
  /// seen, matches, every accumulator — are bit-identical with pruning
  /// on or off).  Shuffled and explicit-row feeds never prune.
  bool enable_zone_pruning = true;

  /// Use the dense flat-array bin table when the key space is small.
  bool enable_dense_bins = true;

  /// Dense table engages only when the resolved bin-key space is at most
  /// this many keys...
  int64_t dense_key_limit = 64 * 1024;

  /// ...and keys x aggregates is at most this many accumulators.
  int64_t dense_accum_limit = 128 * 1024;

  /// Record every matched row as (feed position, row id, weight) so the
  /// accumulated state can later be replayed into another aggregator over
  /// an equivalent (or refined) query — the substrate of the
  /// cross-interaction reuse cache (exec/reuse_cache.h).  Off by default:
  /// recording costs memory proportional to the matched row count.
  bool record_matches = false;

  /// Hard cap on recorded matches: beyond it the recorder overflows
  /// (releases its memory and marks the state non-replayable — see
  /// `matches_overflowed`) instead of growing without bound.  1 M
  /// matches = 24 MB, already far past where replaying beats rescanning.
  int64_t record_matches_limit = 1 << 20;
};

/// One recorded match: the position of the row in this aggregator's feed
/// (0-based; skipped/unmatched rows still advance positions), the fact
/// row id, and the weight it was fed with.  Deliberately trivial (no
/// default member initializers) so bulk vector growth in the recording
/// hot path memsets instead of constructing element-wise.
struct MatchedRow {
  int64_t pos;
  int64_t row;
  double weight;
};

/// Streaming group-by aggregation for one bound query.
class BinnedAggregator {
 public:
  explicit BinnedAggregator(const BoundQuery* query,
                            BinnedAggregatorOptions options = {});

  /// Adopts an already-compiled kernel table instead of recompiling.
  /// `vec` must have been compiled from `*query`.  This is how partials
  /// share their parent's kernels (`NewPartial`) and how the compressed
  /// segment scan (exec/segment_scan.h) uses one compile for both its
  /// aggregator and its footer-zone prune checks.
  BinnedAggregator(const BoundQuery* query, BinnedAggregatorOptions options,
                   std::shared_ptr<const VectorizedQuery> vec);

  /// Creates an empty partial aggregator over the same bound query that
  /// *shares* this aggregator's compiled kernels (immutable after
  /// construction, so safe to use from many threads at once) but owns its
  /// own bin tables and counters.  Morsel workers accumulate into
  /// partials; the dispatcher folds them back with `MergeFrom`.
  std::unique_ptr<BinnedAggregator> NewPartial() const;

  /// Pops a pooled (reset) partial or creates one via `NewPartial` — the
  /// morsel dispatcher's allocation-churn guard: dense bin tables and
  /// batch scratch survive across waves and across successive
  /// `MorselProcess*` calls on the same aggregator instead of being
  /// reallocated every morsel.  Caller-thread only (not for workers).
  std::unique_ptr<BinnedAggregator> AcquirePartial();

  /// Resets `partial` and returns it to this aggregator's pool (bounded;
  /// overflow is simply destroyed).  `partial` must have been created by
  /// this aggregator's `AcquirePartial`/`NewPartial`.
  void ReleasePartial(std::unique_ptr<BinnedAggregator> partial);

  /// Pooled partials currently held (diagnostics/tests).
  size_t partial_pool_size() const { return partial_pool_.size(); }

  /// Folds `other`'s accumulated state into this aggregator: counters
  /// add, per-bin accumulators merge field-wise (sums add, min/max fold),
  /// and bins only one side touched are reconciled across the dense/hash
  /// table boundary.  `other` must aggregate the same bound query, or an
  /// equivalent binding of the same spec (identical bins and aggregates —
  /// how the reuse cache revives snapshots bound to an entry-owned spec
  /// copy).  Recorded matches are appended with positions shifted past
  /// this aggregator's rows seen so far, which is exactly right both for
  /// morsel partials folded in morsel order and for adopting a snapshot
  /// into an empty aggregator.
  void MergeFrom(const BinnedAggregator& other);

  /// Feeds fact row `row` with weight 1 (scalar reference path).
  void ProcessRow(int64_t row) { ProcessRowWeighted(row, 1.0); }

  /// Feeds fact row `row` with inverse-inclusion-probability `weight`
  /// (scalar reference path).
  void ProcessRowWeighted(int64_t row, double weight);

  /// Feeds `n` gathered fact-row ids with a shared `weight` through the
  /// vectorized kernels (chunked at kVectorBatchSize); falls back to the
  /// scalar path when the query could not be compiled.
  void ProcessBatch(const int64_t* rows, int64_t n, double weight = 1.0);

  /// Feeds the half-open fact-row range [begin, end) with weight 1.
  void ProcessRange(int64_t begin, int64_t end);

  /// Feeds `count` rows of a shuffled walk starting at permutation
  /// position `start_pos` (wrapping), gathering into batches internally —
  /// the shared hot loop of the sampling engines.
  void ProcessShuffled(const aqp::ShuffledIndex& order, int64_t start_pos,
                       int64_t count);

  /// Segment-aware variant of `ProcessShuffled` for streaming ingest:
  /// feeds `count` positions starting at `start_pos` of the keyed
  /// per-epoch-segment walk `order.GatherWalk(key, ...)`.  With a
  /// single-segment index this is bit-identical to
  /// `ProcessShuffled(order, key + start_pos, count)` for key < n.
  void ProcessWalk(const aqp::ShuffledIndex& order, int64_t key,
                   int64_t start_pos, int64_t count);

  /// Bulk-accumulates `rows` matching rows into the bin with dense key
  /// `dense_key`, all aggregates taken as COUNT — the RLE run fast path
  /// of the segment scan (exec/segment_scan.h): when every aggregate is
  /// COUNT and a whole run of identical values passes the filter and
  /// bins to one key, the run contributes `rows` unit observations.
  /// Every accumulator field a COUNT observation touches is an integer
  /// (n, and sums of 1.0) or folds to 1.0 (min/max), so one bulk add of
  /// `rows` is bit-identical to `rows` individual batch-path updates.
  /// Requires compiled vectorized kernels, an all-COUNT aggregate list
  /// and no match recording (checked).
  void ProcessCountRun(int64_t dense_key, int64_t rows);

  /// Advances `rows_seen()` by `n` without feeding rows — the accounting
  /// for feed positions whose rows are known (from a recorded match list)
  /// not to pass the filter.
  void SkipRows(int64_t n) { rows_seen_ += n; }

  /// Accounts a zone-map-pruned range spanning `blocks` zone blocks:
  /// the rows are skipped (they provably cannot match) and the skip
  /// telemetry advances.  Called by the morsel dispatcher for whole
  /// pruned morsels (which may straddle two blocks when the scan cursor
  /// is unaligned); `ProcessRange` uses it internally for block-aligned
  /// sub-ranges.
  void AccountZoneSkip(int64_t rows, int64_t blocks = 1) {
    rows_seen_ += rows;
    zone_rows_skipped_ += rows;
    zone_blocks_skipped_ += blocks;
  }

  /// Rows / block-sized ranges skipped by zone-map pruning so far
  /// (telemetry; folded by MergeFrom like the row counters).
  int64_t zone_rows_skipped() const { return zone_rows_skipped_; }
  int64_t zone_blocks_skipped() const { return zone_blocks_skipped_; }

  /// Replays the slice of `matches` with positions in [pos_begin,
  /// pos_end) through the normal processing pipeline (each row re-runs
  /// filter + bin + aggregate, at its original feed position and weight)
  /// and accounts the gaps with `SkipRows` — on return `rows_seen()` has
  /// advanced by exactly `pos_end - pos_begin`.  When `matches` was
  /// recorded by an aggregator whose filter this query's filter equals or
  /// refines, and both fed the same underlying row sequence, the
  /// resulting state is identical to having fed that sequence directly.
  /// `matches` must be position-sorted (recorders only ever append in
  /// feed order).
  void ReplayMatches(const std::vector<MatchedRow>& matches,
                     int64_t pos_begin, int64_t pos_end);

  /// Matched rows recorded so far (empty unless
  /// `options().record_matches`).
  const std::vector<MatchedRow>& matched_rows() const { return matches_; }

  /// True when recording hit `record_matches_limit` (directly or via a
  /// merge): the candidate list is incomplete, so this state must not be
  /// replayed or cached.
  bool matches_overflowed() const { return matches_overflowed_; }

  /// Estimated resident bytes of the accumulated state (bin tables +
  /// recorded matches) — what a cache entry holding this state costs.
  int64_t ApproxMemoryBytes() const {
    const size_t naggs = query_->spec().aggregates.size();
    return static_cast<int64_t>(
        matches_.size() * sizeof(MatchedRow) +
        dense_.size() * sizeof(AggAccum) + dense_touched_.size() +
        bins_.size() * (naggs * sizeof(AggAccum) + 64));
  }

  /// Rows fed so far (matched or not).
  int64_t rows_seen() const { return rows_seen_; }

  /// Rows that passed the filter so far.
  int64_t rows_matched() const { return rows_matched_; }

  /// True when this aggregator accumulates into the dense flat bin table
  /// (diagnostics/tests).
  bool uses_dense_bins() const { return use_dense_; }

  /// True when the batch entry points run the vectorized kernels.
  bool uses_vectorized() const { return vec_ != nullptr && vec_->ok(); }

  /// True when the batch entry points run the fused single-pass plan.
  bool uses_fused() const { return use_fused_; }

  /// The compiled kernel table when zone-map pruning is active for this
  /// aggregator (options + at least one fact-column check); nullptr
  /// otherwise.  The morsel dispatcher consults it to skip whole morsels
  /// before they are ever dispatched to a worker.
  const VectorizedQuery* zone_prune_query() const {
    return options_.enable_zone_pruning && vec_ != nullptr &&
                   vec_->can_prune_blocks()
               ? vec_.get()
               : nullptr;
  }

  /// The bound query this aggregator executes.
  const BoundQuery& query() const { return *query_; }

  /// The execution options this aggregator was built with.
  const BinnedAggregatorOptions& options() const { return options_; }

  /// Exact answer (weight-1 complete scan).
  query::QueryResult ExactResult() const;

  /// Scale-up estimate assuming the fed rows are a uniform sample of
  /// `population` rows.  `z` is the normal quantile of the confidence
  /// level (1.96 for 95 %).  Margins include a finite-population
  /// correction so they shrink to zero as the sample approaches the
  /// population.
  query::QueryResult EstimateFromUniformSample(int64_t population,
                                               double z) const;

  /// Estimate from weighted rows (stratified/offline sampling); weights
  /// were supplied per row via `ProcessRowWeighted`/`ProcessBatch`.
  query::QueryResult EstimateFromWeightedSample(double z) const;

  /// Drops all accumulated state.
  void Reset();

 private:
  /// Applies the dense-table sizing decision shared by both constructors.
  void DecideDense();

  /// Folds one accumulator into another: sums add, extremes fold.
  static void MergeAccum(AggAccum* into, const AggAccum& from) {
    into->n += from.n;
    into->sum += from.sum;
    into->sumsq += from.sumsq;
    into->wsum += from.wsum;
    into->wvar += from.wvar;
    into->wvsum += from.wvsum;
    into->wvsumsq += from.wvsumsq;
    into->min = std::min(into->min, from.min);
    into->max = std::max(into->max, from.max);
  }

  /// Applies one (value, weight) observation to `acc`; the single shared
  /// update both paths funnel through.
  static void Accumulate(AggAccum* acc, double v, double weight) {
    ++acc->n;
    acc->sum += v;
    acc->sumsq += v * v;
    acc->wsum += weight;
    acc->wvar += weight * (weight - 1.0);
    acc->wvsum += weight * v;
    acc->wvsumsq += weight * (weight - 1.0) * v * v;
    acc->min = std::min(acc->min, v);
    acc->max = std::max(acc->max, v);
  }

  /// Weight-1 specialization of `Accumulate`: the Poisson terms
  /// w*(w-1) and w*(w-1)*v^2 are exactly 0 and w*v is exactly v, so the
  /// stored values are bit-identical to the general update (-0.0 vs +0.0
  /// is unobservable: the estimators compare/max against 0 first).
  static void AccumulateUnit(AggAccum* acc, double v) {
    ++acc->n;
    acc->sum += v;
    acc->sumsq += v * v;
    acc->wsum += 1.0;
    acc->wvsum += v;
    acc->min = std::min(acc->min, v);
    acc->max = std::max(acc->max, v);
  }

  /// Accumulator row (naggs entries) for a public packed bin key,
  /// creating it on first touch.
  AggAccum* AccumsForPublicKey(int64_t key);

  /// Allocates the dense table on first touch.
  void EnsureDenseAllocated();

  /// Visits (public_key, accums) for every touched bin.
  template <typename Fn>
  void ForEachBin(Fn&& fn) const {
    const size_t naggs = query_->spec().aggregates.size();
    if (use_dense_) {
      if (dense_touched_.empty()) return;
      for (int64_t d = 0; d < dense_keys_; ++d) {
        if (!dense_touched_[static_cast<size_t>(d)]) continue;
        fn(vec_->DenseKeyToPublic(d),
           dense_.data() + static_cast<size_t>(d) * naggs);
      }
    } else {
      for (const auto& [key, accums] : bins_) fn(key, accums.data());
    }
  }

  const BoundQuery* query_;
  BinnedAggregatorOptions options_;
  // Compiled kernel table; immutable after construction and shared with
  // partial aggregators, so morsel workers can run it concurrently.
  std::shared_ptr<const VectorizedQuery> vec_;
  bool use_fused_ = false;

  // Hash-map bin store (always correct; the fallback).
  std::unordered_map<int64_t, std::vector<AggAccum>> bins_;

  // Dense flat bin store (used when the key space is small).
  bool use_dense_ = false;
  int64_t dense_keys_ = 0;
  std::vector<AggAccum> dense_;         // dense_keys_ x naggs, lazy
  std::vector<uint8_t> dense_touched_;  // per dense key

  /// Applies one row through filter + bin + aggregates, recording the
  /// match at feed position `pos`; the scalar reference path.
  void ProcessRowAt(int64_t row, double weight, int64_t pos);

  int64_t rows_seen_ = 0;
  int64_t rows_matched_ = 0;
  int64_t zone_rows_skipped_ = 0;
  int64_t zone_blocks_skipped_ = 0;

  // Reset partials awaiting reuse (AcquirePartial/ReleasePartial).
  std::vector<std::unique_ptr<BinnedAggregator>> partial_pool_;

  // Matched-row recorder (options_.record_matches).
  std::vector<MatchedRow> matches_;
  bool matches_overflowed_ = false;

  /// True when the recorder should take `count` more matches; flips to
  /// overflowed (and releases the list) when that would exceed the cap.
  bool RecorderAccepts(int64_t count) {
    if (!options_.record_matches || matches_overflowed_) return false;
    if (static_cast<int64_t>(matches_.size()) + count >
        options_.record_matches_limit) {
      matches_overflowed_ = true;
      matches_ = {};
      return false;
    }
    return true;
  }
  // During ReplayMatches: original feed positions of the current batch
  // (parallel to the batch's rows); null in normal processing, where the
  // position is the running rows_seen index.
  const int64_t* replay_positions_ = nullptr;
};

}  // namespace idebench::exec

#endif  // IDEBENCH_EXEC_AGGREGATOR_H_
