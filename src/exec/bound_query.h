#ifndef IDEBENCH_EXEC_BOUND_QUERY_H_
#define IDEBENCH_EXEC_BOUND_QUERY_H_

/// \file bound_query.h
/// Binding of a `QuerySpec` to physical storage.
///
/// A bound query resolves every column the query touches (binning, filter,
/// aggregate inputs) to a physical column, routing dimension-table columns
/// through a `JoinIndex` when the catalog is normalized.  After binding,
/// operators access all values through a uniform `(fact_row) -> double`
/// interface regardless of schema layout.

#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "exec/join_index.h"
#include "query/spec.h"
#include "storage/catalog.h"

namespace idebench::exec {

/// A resolved column access path: either a fact column (direct) or a
/// dimension column reached through a join index.
struct ColumnBinding {
  const storage::Column* column = nullptr;
  const JoinIndex* join = nullptr;  // nullptr for fact columns

  /// Numeric-view value for fact row `row`; NaN when the join misses.
  double Value(int64_t row) const {
    if (join == nullptr) return column->ValueAsDouble(row);
    const int64_t dim_row = join->DimRow(row);
    if (dim_row < 0) return std::numeric_limits<double>::quiet_NaN();
    return column->ValueAsDouble(dim_row);
  }
};

/// A fully resolved, executable query over one catalog.
class BoundQuery {
 public:
  /// Binds `spec` to `catalog`.  The spec's bin dimensions must already be
  /// resolved.  Join indexes for any referenced dimension tables must be
  /// provided via `joins` (keyed by dimension table name); they can be
  /// shared across queries.
  static Result<BoundQuery> Bind(
      const query::QuerySpec& spec, const storage::Catalog& catalog,
      const std::vector<const JoinIndex*>& joins = {});

  const query::QuerySpec& spec() const { return *spec_; }
  const storage::Table& fact() const { return *fact_; }

  /// Number of fact rows.
  int64_t num_rows() const { return fact_->num_rows(); }

  /// True when all of row's filter predicates pass.
  bool MatchesFilter(int64_t row) const;

  /// Bin key for `row`, or -1 when out of range / join miss.
  int64_t BinKey(int64_t row) const;

  /// Aggregate input value of aggregate `agg_index` at `row` (0 for COUNT).
  double AggValueAt(size_t agg_index, int64_t row) const;

  /// Dimension tables this query needs joins for (empty when the catalog
  /// is de-normalized or all columns live in the fact table).
  static Result<std::vector<std::string>> RequiredJoins(
      const query::QuerySpec& spec, const storage::Catalog& catalog);

  /// Resolved access paths (parallel to spec().bins / aggregates /
  /// filter.predicates()); the inputs the vectorized kernel compiler
  /// specializes on.
  const std::vector<ColumnBinding>& bin_bindings() const {
    return bin_bindings_;
  }
  const std::vector<ColumnBinding>& agg_bindings() const {
    return agg_bindings_;
  }
  const std::vector<ColumnBinding>& filter_bindings() const {
    return filter_bindings_;
  }

 private:
  const query::QuerySpec* spec_ = nullptr;
  const storage::Table* fact_ = nullptr;
  std::vector<ColumnBinding> bin_bindings_;
  std::vector<ColumnBinding> agg_bindings_;    // parallel to aggregates
  std::vector<ColumnBinding> filter_bindings_; // parallel to predicates
};

}  // namespace idebench::exec

#endif  // IDEBENCH_EXEC_BOUND_QUERY_H_
