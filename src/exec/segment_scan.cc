#include "exec/segment_scan.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/logging.h"
#include "exec/parallel.h"
#include "storage/schema.h"

namespace idebench::exec {

namespace {

/// True when `v` is exactly an integral dictionary code candidate.
bool IntegralCode(double v, int64_t* code) {
  if (!(v == std::floor(v)) || std::abs(v) > 9.0e15) return false;
  *code = static_cast<int64_t>(v);
  return true;
}

/// Clears bits [pos, pos + len) of the match bitset.
void ClearBitRange(uint64_t* words, int64_t pos, int64_t len) {
  if (len <= 0) return;
  const int64_t last = pos + len - 1;
  int64_t w = pos >> 6;
  const int64_t w_last = last >> 6;
  const uint64_t lo = ~uint64_t{0} << (pos & 63);
  const uint64_t hi = ~uint64_t{0} >> (63 - (last & 63));
  if (w == w_last) {
    words[w] &= ~(lo & hi);
    return;
  }
  words[w] &= ~lo;
  for (++w; w < w_last; ++w) words[w] = 0;
  words[w_last] &= ~hi;
}

/// Number of set bits in [pos, pos + len) of the match bitset.
int64_t PopcountRange(const uint64_t* words, int64_t pos, int64_t len) {
  if (len <= 0) return 0;
  const int64_t last = pos + len - 1;
  int64_t w = pos >> 6;
  const int64_t w_last = last >> 6;
  const uint64_t lo = ~uint64_t{0} << (pos & 63);
  const uint64_t hi = ~uint64_t{0} >> (63 - (last & 63));
  if (w == w_last) return __builtin_popcountll(words[w] & lo & hi);
  int64_t n = __builtin_popcountll(words[w] & lo);
  for (++w; w < w_last; ++w) n += __builtin_popcountll(words[w]);
  return n + __builtin_popcountll(words[w_last] & hi);
}

/// ANDs `pred`'s per-row matches over `view`'s *compressed* payload into
/// the bitset: clears the bit of every row whose decoded value fails
/// `Predicate::Matches` — the same double-typed test the compiled filter
/// kernels evaluate, applied to exactly the values the decode tier would
/// materialize (RLE decides once per run; bit-packed fields reconstruct
/// through the same `base + field` arithmetic as `UnpackBitsFOR`; raw
/// payloads are read in place from the mapping).
void AndPredicateBits(const expr::Predicate& pred,
                      const storage::SegmentView& view, int64_t rows,
                      uint64_t* words) {
  switch (view.encoding) {
    case storage::SegmentEncoding::kRle: {
      const int64_t* values = view.rle_values();
      const int32_t* lengths = view.rle_lengths();
      int64_t pos = 0;
      for (int32_t r = 0; r < view.num_runs; ++r) {
        if (!pred.Matches(static_cast<double>(values[r]))) {
          ClearBitRange(words, pos, lengths[r]);
        }
        pos += lengths[r];
      }
      return;
    }
    case storage::SegmentEncoding::kRawInt64: {
      const int64_t* v = view.raw_int64();
      for (int64_t i = 0; i < rows; ++i) {
        if (!pred.Matches(static_cast<double>(v[i]))) {
          words[i >> 6] &= ~(uint64_t{1} << (i & 63));
        }
      }
      return;
    }
    case storage::SegmentEncoding::kRawDouble: {
      const double* v = view.raw_double();
      for (int64_t i = 0; i < rows; ++i) {
        if (!pred.Matches(v[i])) {
          words[i >> 6] &= ~(uint64_t{1} << (i & 63));
        }
      }
      return;
    }
    case storage::SegmentEncoding::kBitPacked: {
      const uint64_t* packed = view.packed_words();
      const uint8_t bits = view.bits;
      const uint64_t mask = (uint64_t{1} << bits) - 1;
      const uint64_t ubase = static_cast<uint64_t>(view.base);
      if (bits > 12) {
        // A match table over the field domain would cost more to build
        // (2^bits evaluations) than the per-row sweep it replaces.
        for (int64_t i = 0; i < rows; ++i) {
          const uint64_t bitpos = static_cast<uint64_t>(i) * bits;
          const uint64_t shift = bitpos & 63;
          uint64_t u = packed[bitpos >> 6] >> shift;
          if (shift + bits > 64) {
            u |= packed[(bitpos >> 6) + 1] << (64 - shift);
          }
          const double v =
              static_cast<double>(static_cast<int64_t>(ubase + (u & mask)));
          if (!pred.Matches(v)) {
            words[i >> 6] &= ~(uint64_t{1} << (i & 63));
          }
        }
        return;
      }
      // Decide once per distinct packed field, then stream the fields
      // through the table.
      std::vector<uint8_t> match(size_t{1} << bits);
      for (size_t f = 0; f < match.size(); ++f) {
        match[f] = pred.Matches(
            static_cast<double>(static_cast<int64_t>(ubase + f)));
      }
      int64_t i = 0;
      if (bits == 1 || bits == 2 || bits == 4 || bits == 8) {
        // Fields never straddle bytes, so fold the field table into a
        // byte-indexed table of per-field match bits and emit 8/bits
        // bitmap bits per payload *byte* — the packed stream's bytes in
        // memory are its bits LSB-first (little-endian words, the
        // format's native-endian mmap contract), so byte k holds rows
        // [k*8/bits, (k+1)*8/bits).
        const int fpb = 8 / bits;  // fields per payload byte
        uint8_t btab[256];
        for (int b = 0; b < 256; ++b) {
          uint8_t out = 0;
          for (int j = 0; j < fpb; ++j) {
            const uint64_t f =
                (static_cast<uint64_t>(b) >> (j * bits)) & mask;
            if (match[f]) out |= static_cast<uint8_t>(1u << j);
          }
          btab[b] = out;
        }
        const uint8_t* bytes = reinterpret_cast<const uint8_t*>(packed);
        const int64_t full_words = rows >> 6;  // 64-row bitmap words
        const int bpw = 8 * bits;              // payload bytes per 64 rows
        for (int64_t w = 0; w < full_words; ++w) {
          const uint8_t* p = bytes + w * bpw;
          uint64_t m = 0;
          for (int k = 0; k < bpw; ++k) {
            m |= static_cast<uint64_t>(btab[p[k]]) << (k * fpb);
          }
          words[w] &= m;
        }
        i = full_words << 6;
      }
      for (; i < rows; ++i) {
        const uint64_t bitpos = static_cast<uint64_t>(i) * bits;
        const uint64_t shift = bitpos & 63;
        uint64_t u = packed[bitpos >> 6] >> shift;
        if (shift + bits > 64) {
          u |= packed[(bitpos >> 6) + 1] << (64 - shift);
        }
        if (!match[u & mask]) {
          words[i >> 6] &= ~(uint64_t{1} << (i & 63));
        }
      }
      return;
    }
  }
}

}  // namespace

Result<std::unique_ptr<SegmentTableScanner>> SegmentTableScanner::Create(
    const storage::SegmentFile* file, const query::QuerySpec& spec,
    SegmentScanOptions options) {
  // The staging zone maps describe placeholder data; pruning from them
  // would be unsound.  Recorded matches would hold staging row ids.
  options.agg.enable_zone_pruning = false;
  options.agg.record_matches = false;

  std::unique_ptr<SegmentTableScanner> scanner(new SegmentTableScanner());
  scanner->file_ = file;
  scanner->spec_ = std::make_unique<query::QuerySpec>(spec);
  scanner->options_ = options;

  // Columns the scan must decode: bins, filter, aggregate inputs.
  std::vector<std::string> names;
  for (const query::BinDimension& dim : spec.bins) names.push_back(dim.column);
  for (const expr::Predicate& pred : spec.filter.predicates()) {
    names.push_back(pred.column);
  }
  for (const query::AggregateSpec& agg : spec.aggregates) {
    if (!agg.column.empty()) names.push_back(agg.column);
  }
  for (const std::string& name : names) {
    const int idx = file->ColumnIndex(name);
    if (idx < 0) {
      return Status::KeyError("segment file '" + file->table_name() +
                              "' has no column '" + name + "'");
    }
    if (std::find(scanner->referenced_cols_.begin(),
                  scanner->referenced_cols_.end(),
                  idx) == scanner->referenced_cols_.end()) {
      scanner->referenced_cols_.push_back(idx);
    }
  }

  // COUNT fast-path shapes: all aggregates COUNT, one bin dimension.
  // The RLE run tier additionally needs every predicate on the binned
  // column; the compressed-domain filter tier takes predicates on any
  // column.  Both require the compiled kernels (ProcessCountRun
  // accumulates through their dense-key space), so the flags finalize
  // only after the context below compiles.
  bool all_count = true;
  for (const query::AggregateSpec& agg : spec.aggregates) {
    all_count = all_count && agg.type == query::AggregateType::kCount;
  }
  bool run_shape = false;       // RLE run fast path
  bool filtered_shape = false;  // compressed-domain filtered COUNT
  if (all_count && spec.bins.size() == 1) {
    scanner->fastpath_col_ = file->ColumnIndex(spec.bins[0].column);
    bool preds_on_bin = true;
    for (const expr::Predicate& pred : spec.filter.predicates()) {
      preds_on_bin = preds_on_bin && pred.column == spec.bins[0].column;
    }
    run_shape = options.enable_rle_count_fastpath && preds_on_bin;
    filtered_shape = options.enable_compressed_filter_fastpath;
    // When the bin column is RLE in *every* segment, a COUNT tier covers
    // the whole file and contexts never decode — skip the staging
    // placeholder fill, the dominant cost of preparing a scan.
    if (filtered_shape || run_shape) {
      bool all_rle = file->num_segments() > 0;
      for (int64_t seg = 0; seg < file->num_segments(); ++seg) {
        all_rle = all_rle &&
                  file->view(scanner->fastpath_col_, seg).encoding ==
                      storage::SegmentEncoding::kRle;
      }
      // The run tier alone only covers segments when the filter reads
      // just the bin column.
      scanner->staging_lean_ = all_rle && (filtered_shape || preds_on_bin);
    }
  }

  IDB_ASSIGN_OR_RETURN(scanner->main_, scanner->NewContext());
  if (scanner->main_->agg->uses_vectorized()) {
    scanner->count_fastpath_shape_ = run_shape;
    scanner->filtered_count_shape_ = filtered_shape;
  } else if (scanner->staging_lean_) {
    // No compiled kernels, so no COUNT fast paths: rebuild the context
    // with the staging fill the decode tier needs.
    scanner->staging_lean_ = false;
    IDB_ASSIGN_OR_RETURN(scanner->main_, scanner->NewContext());
  }
  return scanner;
}

Result<std::unique_ptr<SegmentTableScanner::ScanContext>>
SegmentTableScanner::NewContext() const {
  auto ctx = std::make_unique<ScanContext>();

  // Staging table: the segment file's schema, with the *referenced*
  // columns pre-filled to kSegmentRows placeholder rows through the
  // normal append paths so the typed vectors reach their final size once
  // — the compiled kernels bake these buffers' addresses, so they must
  // never reallocate.  Per segment the buffers are overwritten in place
  // through the Mutable*Data escape hatches (storage/column.h).
  // Unreferenced columns stay empty: no kernel binds them, the decode
  // loop never writes them, and skipping their appends (each of which
  // updates stats and zone maps) keeps context creation proportional to
  // the query, not the schema.
  std::vector<storage::Field> fields;
  for (int c = 0; c < file_->num_columns(); ++c) {
    fields.push_back(file_->column_meta(c).field);
  }
  auto staging = std::make_shared<storage::Table>(
      file_->table_name(), storage::Schema(std::move(fields)));
  if (file_->num_segments() > 0) {
    for (const int c : referenced_cols_) {
      const storage::SegmentColumnMeta& meta = file_->column_meta(c);
      storage::Column& col = staging->mutable_column(c);
      if (meta.field.type == storage::DataType::kString) {
        // Restore the dictionary in code order: the compiled LUTs and
        // IN-set code resolution must see the original code mapping.
        for (const std::string& v : meta.dict_values) {
          col.mutable_dictionary().GetOrInsert(v);
        }
        if (col.dictionary().size() == 0) {
          return Status::Invalid("segment file '" + file_->table_name() +
                                 "': string column '" + meta.field.name +
                                 "' has rows but no dictionary");
        }
      }
      // A lean context never decodes (every segment is answerable by a
      // COUNT fast path), so the placeholder rows would be pure waste;
      // the dictionary restore above still matters — the compiled LUTs
      // and IN-set code resolution read it.
      if (!staging_lean_) col.AppendPlaceholderZeros(storage::kSegmentRows);
    }
  }

  ctx->staging = staging.get();
  IDB_RETURN_NOT_OK(ctx->catalog.AddTable(std::move(staging)));
  IDB_ASSIGN_OR_RETURN(BoundQuery bound,
                       BoundQuery::Bind(*spec_, ctx->catalog));
  ctx->bound = std::make_unique<BoundQuery>(std::move(bound));
  // Compile once; the same kernel table runs the aggregator's batches
  // and answers the footer-zone prune checks.
  auto vec =
      std::make_shared<VectorizedQuery>(VectorizedQuery::Compile(*ctx->bound));
  if (options_.agg.enable_vectorized && vec->ok()) {
    ctx->agg = std::make_unique<BinnedAggregator>(ctx->bound.get(),
                                                  options_.agg, vec);
  } else {
    ctx->agg =
        std::make_unique<BinnedAggregator>(ctx->bound.get(), options_.agg);
  }
  if (vec->ok()) ctx->prune = std::move(vec);

  ctx->file_col_of_staging.resize(
      static_cast<size_t>(file_->num_columns()));
  for (int c = 0; c < file_->num_columns(); ++c) {
    ctx->file_col_of_staging[static_cast<size_t>(c)] = c;
  }
  return ctx;
}

bool SegmentTableScanner::ZonePruned(const ScanContext& ctx,
                                     int64_t seg) const {
  if (!options_.enable_zone_pruning || ctx.prune == nullptr) return false;
  const auto zone_of =
      [&](const storage::Column* col) -> const storage::ZoneEntry* {
    for (int c = 0; c < ctx.staging->num_columns(); ++c) {
      if (&ctx.staging->column(c) == col) {
        return &file_->view(ctx.file_col_of_staging[static_cast<size_t>(c)],
                            seg)
                    .zone;
      }
    }
    return nullptr;
  };
  return !ctx.prune->SegmentCanMatch(zone_of);
}

bool SegmentTableScanner::DictPruned(int64_t seg) const {
  if (!options_.enable_dict_pruning) return false;
  for (const expr::Predicate& pred : spec_->filter.predicates()) {
    const int idx = file_->ColumnIndex(pred.column);
    if (idx < 0 ||
        file_->column_meta(idx).field.type != storage::DataType::kString) {
      continue;
    }
    const storage::SegmentView& view = file_->view(idx, seg);
    if (pred.op == expr::CompareOp::kEq) {
      int64_t code = 0;
      // A non-integral equality value matches no dictionary code at all;
      // an integral one must be present in this segment's bitset.
      if (!IntegralCode(pred.value, &code) || !view.MightContainCode(code)) {
        return true;
      }
    } else if (pred.op == expr::CompareOp::kIn) {
      bool any = false;
      for (const double v : pred.set_values) {
        int64_t code = 0;
        any = any || (IntegralCode(v, &code) && view.MightContainCode(code));
      }
      // Covers the empty set too: IN () matches nothing (kernel parity).
      if (!any) return true;
    }
  }
  return false;
}

bool SegmentTableScanner::CanCountRuns(int64_t seg) const {
  return count_fastpath_shape_ &&
         file_->view(fastpath_col_, seg).encoding ==
             storage::SegmentEncoding::kRle;
}

bool SegmentTableScanner::CanCountFiltered(int64_t seg) const {
  return filtered_count_shape_ &&
         file_->view(fastpath_col_, seg).encoding ==
             storage::SegmentEncoding::kRle;
}

void SegmentTableScanner::FilteredRunCount(ScanContext* ctx,
                                           BinnedAggregator* agg,
                                           int64_t seg,
                                           SegmentOutcome* outcome) const {
  const storage::SegmentView& bin_view = file_->view(fastpath_col_, seg);
  const int64_t rows = bin_view.rows;
  const int64_t nwords = (rows + 63) >> 6;
  std::vector<uint64_t>& words = ctx->match_words;
  words.assign(static_cast<size_t>(nwords), ~uint64_t{0});
  if ((rows & 63) != 0) {
    words[static_cast<size_t>(nwords) - 1] =
        ~uint64_t{0} >> (64 - (rows & 63));
  }
  outcome->bytes += bin_view.bytes;
  // Restrict the bitset by every predicate, straight off the compressed
  // payloads; bill each touched column's payload once.
  std::vector<int> billed = {fastpath_col_};
  for (const expr::Predicate& pred : spec_->filter.predicates()) {
    const int idx = file_->ColumnIndex(pred.column);
    const storage::SegmentView& view = file_->view(idx, seg);
    AndPredicateBits(pred, view, rows, words.data());
    if (std::find(billed.begin(), billed.end(), idx) == billed.end()) {
      billed.push_back(idx);
      outcome->bytes += view.bytes;
    }
  }
  // Fold per bin run: `BinIndex` on the run value is the kernels' scalar
  // reference (the tier-3 contract), the bitset holds exactly the rows
  // the decode tier's filter kernels would select, and COUNT
  // accumulators take bulk adds bit-identically (ProcessCountRun), so
  // `popcount` unit observations per run equal the batch path.
  const int64_t* values = bin_view.rle_values();
  const int32_t* lengths = bin_view.rle_lengths();
  const query::BinDimension& dim = spec_->bins[0];
  int64_t pos = 0;
  for (int32_t r = 0; r < bin_view.num_runs; ++r) {
    const int32_t len = lengths[r];
    const int64_t bin =
        dim.BinIndex(static_cast<double>(values[r]));
    if (bin >= 0) {
      const int64_t m = PopcountRange(words.data(), pos, len);
      if (m > 0) agg->ProcessCountRun(bin, m);
      if (m < len) agg->SkipRows(len - m);
    } else {
      agg->SkipRows(len);
    }
    pos += len;
  }
  outcome->filter_fastpath = true;
}

SegmentTableScanner::SegmentOutcome SegmentTableScanner::ProcessSegment(
    ScanContext* ctx, BinnedAggregator* agg, int64_t seg) const {
  SegmentOutcome outcome;
  outcome.rows = file_->segment_rows(seg);

  if (ZonePruned(*ctx, seg)) {
    outcome.kind = SegmentOutcome::Kind::kPrunedZone;
    return outcome;
  }
  if (DictPruned(seg)) {
    outcome.kind = SegmentOutcome::Kind::kPrunedDict;
    return outcome;
  }

  if (CanCountRuns(seg)) {
    // Per-run evaluation: `Predicate::Matches` and `BinDimension::
    // BinIndex` are bit-compatible with the compiled kernels (the
    // vectorized layer's documented contract), so deciding once per run
    // equals deciding per row, and a matching run of length L contributes
    // exactly L unit COUNT observations (ProcessCountRun).
    const storage::SegmentView& view = file_->view(fastpath_col_, seg);
    const int64_t* values = view.rle_values();
    const int32_t* lengths = view.rle_lengths();
    const auto& predicates = spec_->filter.predicates();
    const query::BinDimension& dim = spec_->bins[0];
    for (int32_t r = 0; r < view.num_runs; ++r) {
      const double v = static_cast<double>(values[r]);
      bool matches = true;
      for (const expr::Predicate& pred : predicates) {
        matches = matches && pred.Matches(v);
      }
      const int64_t bin = matches ? dim.BinIndex(v) : -1;
      if (bin >= 0) {
        agg->ProcessCountRun(bin, lengths[r]);
      } else {
        agg->SkipRows(lengths[r]);
      }
    }
    outcome.fastpath = true;
    outcome.bytes = view.bytes;
    return outcome;
  }

  if (CanCountFiltered(seg)) {
    FilteredRunCount(ctx, agg, seg, &outcome);
    return outcome;
  }

  // A lean context has no staging rows: Create proved every segment is
  // answerable by a COUNT fast path above, so reaching the decode tier
  // would scribble through the empty buffers the kernels baked.
  IDB_CHECK(!staging_lean_);

  // Decode the referenced columns into the staging buffers, then run the
  // segment's rows through the normal batch pipeline.  1024-row batch
  // boundaries fall where they fall in a flat ProcessRange over the
  // decoded table, because segments are 64K-aligned.
  for (const int idx : referenced_cols_) {
    const storage::SegmentView& view = file_->view(idx, seg);
    storage::Column& col = ctx->staging->mutable_column(idx);
    switch (view.encoding) {
      case storage::SegmentEncoding::kRawDouble:
        std::memcpy(col.MutableDoubleData(), view.raw_double(),
                    static_cast<size_t>(view.rows) * 8);
        break;
      case storage::SegmentEncoding::kRawInt64:
        std::memcpy(col.MutableInt64Data(), view.raw_int64(),
                    static_cast<size_t>(view.rows) * 8);
        break;
      case storage::SegmentEncoding::kRle:
        ExpandRleRuns(view.rle_values(), view.rle_lengths(), view.num_runs,
                      col.MutableInt64Data());
        break;
      case storage::SegmentEncoding::kBitPacked:
        UnpackBitsFOR(view.packed_words(), view.bits, view.base, view.rows,
                      col.MutableInt64Data());
        break;
    }
    outcome.bytes += view.bytes;
  }
  // The decoded segment sits contiguously at staging rows [0, rows), so
  // the dense in-order range path applies — same fused kernels, same
  // batch boundaries, and so the same accumulation order as the flat
  // scan (an index-gather ProcessBatch over an iota would visit the
  // identical rows in the identical order, only slower).
  agg->ProcessRange(0, outcome.rows);
  return outcome;
}

SegmentTableScanner::ScanContext* SegmentTableScanner::AcquireContext() {
  std::lock_guard<std::mutex> lock(pool_mu_);
  IDB_CHECK(!free_contexts_.empty());
  ScanContext* ctx = free_contexts_.back();
  free_contexts_.pop_back();
  return ctx;
}

void SegmentTableScanner::ReleaseContext(ScanContext* ctx) {
  std::lock_guard<std::mutex> lock(pool_mu_);
  free_contexts_.push_back(ctx);
}

Status SegmentTableScanner::Execute() {
  if (stats_.segments_total != 0) {
    return Status::Invalid("SegmentTableScanner::Execute ran already");
  }
  const int64_t nseg = file_->num_segments();
  stats_.segments_total = nseg;
  if (nseg == 0) return Status::OK();

  const int threads = ResolveThreadCount(options_.threads);
  std::vector<SegmentOutcome> outcomes(static_cast<size_t>(nseg));

  if (threads <= 1 || nseg <= 1) {
    // Exact sequential path: accumulate straight into the main
    // aggregator, segment by segment — the same accumulation order as a
    // flat ProcessRange over the decoded table.
    for (int64_t seg = 0; seg < nseg; ++seg) {
      outcomes[static_cast<size_t>(seg)] =
          ProcessSegment(main_.get(), main_->agg.get(), seg);
    }
  } else {
    const int n_ctx = static_cast<int>(
        std::min<int64_t>(threads, nseg));
    for (int i = 0; i < n_ctx; ++i) {
      IDB_ASSIGN_OR_RETURN(std::unique_ptr<ScanContext> ctx, NewContext());
      free_contexts_.push_back(ctx.get());
      pool_.push_back(std::move(ctx));
    }
    // One partial per segment, folded below in segment order — the fixed
    // reduction tree MorselProcessRange uses, so results are identical
    // for every parallelism.
    WorkerPool::Shared().ParallelFor(nseg, threads, [&](int64_t seg) {
      ScanContext* ctx = AcquireContext();
      std::unique_ptr<BinnedAggregator> partial = ctx->agg->NewPartial();
      SegmentOutcome outcome = ProcessSegment(ctx, partial.get(), seg);
      if (outcome.kind == SegmentOutcome::Kind::kScanned) {
        outcome.partial = std::move(partial);
      }
      outcomes[static_cast<size_t>(seg)] = std::move(outcome);
      ReleaseContext(ctx);
    });
  }

  for (SegmentOutcome& outcome : outcomes) {
    switch (outcome.kind) {
      case SegmentOutcome::Kind::kScanned:
        if (outcome.partial != nullptr) {
          main_->agg->MergeFrom(*outcome.partial);
        }
        ++stats_.segments_scanned;
        if (outcome.fastpath) ++stats_.segments_count_fastpath;
        if (outcome.filter_fastpath) ++stats_.segments_filter_fastpath;
        stats_.rows_scanned += outcome.rows;
        break;
      case SegmentOutcome::Kind::kPrunedZone:
      case SegmentOutcome::Kind::kPrunedDict:
        main_->agg->AccountZoneSkip(outcome.rows);
        if (outcome.kind == SegmentOutcome::Kind::kPrunedZone) {
          ++stats_.segments_pruned_zone;
        } else {
          ++stats_.segments_pruned_dict;
        }
        stats_.rows_skipped += outcome.rows;
        break;
    }
    stats_.payload_bytes_touched += outcome.bytes;
  }
  return Status::OK();
}

}  // namespace idebench::exec
