#include "exec/join_index.h"

namespace idebench::exec {
namespace {

struct FkColumns {
  const storage::Column* fk = nullptr;
  const storage::Column* pk = nullptr;
  const storage::Table* dim = nullptr;
};

Result<FkColumns> ResolveFk(const storage::Catalog& catalog,
                            const storage::ForeignKey& fk) {
  const storage::Table* fact = catalog.fact_table();
  if (fact == nullptr) return Status::Invalid("catalog has no fact table");
  const storage::Table* dim = catalog.GetTable(fk.dimension_table);
  if (dim == nullptr) {
    return Status::KeyError("no dimension table '" + fk.dimension_table + "'");
  }
  FkColumns out;
  out.fk = fact->ColumnByName(fk.fact_column);
  out.pk = dim->ColumnByName(fk.dimension_key);
  out.dim = dim;
  if (out.fk == nullptr || out.pk == nullptr) {
    return Status::KeyError("foreign key columns not found for dimension '" +
                            fk.dimension_table + "'");
  }
  return out;
}

std::unordered_map<double, int64_t> HashDimension(const FkColumns& cols) {
  std::unordered_map<double, int64_t> pk_index;
  const int64_t n = cols.dim->num_rows();
  pk_index.reserve(static_cast<size_t>(n));
  for (int64_t r = 0; r < n; ++r) {
    pk_index.emplace(cols.pk->ValueAsDouble(r), r);
  }
  return pk_index;
}

}  // namespace

Result<JoinIndex> JoinIndex::BuildMaterialized(const storage::Catalog& catalog,
                                               const storage::ForeignKey& fk) {
  IDB_ASSIGN_OR_RETURN(FkColumns cols, ResolveFk(catalog, fk));
  const std::unordered_map<double, int64_t> pk_index = HashDimension(cols);

  JoinIndex out;
  out.dimension_table_ = fk.dimension_table;
  const int64_t fact_rows = catalog.fact_table()->num_rows();
  out.mapping_.resize(static_cast<size_t>(fact_rows), -1);
  for (int64_t r = 0; r < fact_rows; ++r) {
    auto it = pk_index.find(cols.fk->ValueAsDouble(r));
    if (it != pk_index.end()) {
      out.mapping_[static_cast<size_t>(r)] = it->second;
    } else {
      ++out.miss_count_;
    }
  }
  return out;
}

Result<JoinIndex> JoinIndex::BuildLazy(const storage::Catalog& catalog,
                                       const storage::ForeignKey& fk) {
  IDB_ASSIGN_OR_RETURN(FkColumns cols, ResolveFk(catalog, fk));
  JoinIndex out;
  out.dimension_table_ = fk.dimension_table;
  out.lazy_ = true;
  out.fk_column_ = cols.fk;
  out.pk_index_ = HashDimension(cols);
  return out;
}

}  // namespace idebench::exec
