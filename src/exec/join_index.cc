#include "exec/join_index.h"

#include <cmath>
#include <limits>
#include <string>

#include "common/logging.h"

namespace idebench::exec {
namespace {

struct FkColumns {
  const storage::Column* fk = nullptr;
  const storage::Column* pk = nullptr;
  const storage::Table* dim = nullptr;
};

Result<FkColumns> ResolveFk(const storage::Catalog& catalog,
                            const storage::ForeignKey& fk) {
  const storage::Table* fact = catalog.fact_table();
  if (fact == nullptr) return Status::Invalid("catalog has no fact table");
  const storage::Table* dim = catalog.GetTable(fk.dimension_table);
  if (dim == nullptr) {
    return Status::KeyError("no dimension table '" + fk.dimension_table + "'");
  }
  FkColumns out;
  out.fk = fact->ColumnByName(fk.fact_column);
  out.pk = dim->ColumnByName(fk.dimension_key);
  out.dim = dim;
  if (out.fk == nullptr || out.pk == nullptr) {
    return Status::KeyError("foreign key columns not found for dimension '" +
                            fk.dimension_table + "'");
  }
  return out;
}

}  // namespace

namespace {

/// The integer-keyed index requires double-typed key columns to hold
/// integral values (truncating ValueAsInt would otherwise silently merge
/// distinct fractional keys); enforce the documented constraint.
Status CheckIntegralKeys(const storage::Column& col, const char* side) {
  if (col.type() != storage::DataType::kDouble) return Status::OK();
  const double* data = col.DoubleData();
  const int64_t n = col.size();
  for (int64_t r = 0; r < n; ++r) {
    const double v = data[r];
    if (!(v == std::floor(v)) ||
        std::fabs(v) > 9.007199254740992e15) {  // 2^53: exact int range
      return Status::Invalid(std::string(side) + " key column '" +
                             col.name() + "' holds non-integral value " +
                             std::to_string(v) +
                             "; join keys must be integers");
    }
  }
  return Status::OK();
}

}  // namespace

Result<JoinIndex> JoinIndex::Build(const storage::Catalog& catalog,
                                   const storage::ForeignKey& fk, bool lazy) {
  IDB_ASSIGN_OR_RETURN(FkColumns cols, ResolveFk(catalog, fk));
  IDB_RETURN_NOT_OK(CheckIntegralKeys(*cols.pk, "dimension"));
  IDB_RETURN_NOT_OK(CheckIntegralKeys(*cols.fk, "fact"));

  // Hash the dimension's primary key on its integer view: exact integer
  // equality, one cheap int64 hash per probe.
  std::unordered_map<int64_t, int32_t> pk_index;
  const int64_t dim_rows = cols.dim->num_rows();
  if (dim_rows > std::numeric_limits<int32_t>::max()) {
    return Status::Invalid("dimension '" + fk.dimension_table +
                           "' exceeds the int32 row-id range of the flat "
                           "join mapping");
  }
  pk_index.reserve(static_cast<size_t>(dim_rows));
  for (int64_t r = 0; r < dim_rows; ++r) {
    pk_index.emplace(cols.pk->ValueAsInt(r), static_cast<int32_t>(r));
  }

  JoinIndex out;
  out.dimension_table_ = fk.dimension_table;
  out.lazy_ = lazy;
  const int64_t fact_rows = catalog.fact_table()->num_rows();
  out.mapping_.resize(static_cast<size_t>(fact_rows), -1);
  for (int64_t r = 0; r < fact_rows; ++r) {
    auto it = pk_index.find(cols.fk->ValueAsInt(r));
    if (it != pk_index.end()) {
      out.mapping_[static_cast<size_t>(r)] = it->second;
    } else {
      ++out.miss_count_;
    }
  }
  return out;
}

Result<JoinIndex> JoinIndex::BuildMaterialized(const storage::Catalog& catalog,
                                               const storage::ForeignKey& fk) {
  return Build(catalog, fk, /*lazy=*/false);
}

Result<JoinIndex> JoinIndex::BuildLazy(const storage::Catalog& catalog,
                                       const storage::ForeignKey& fk) {
  return Build(catalog, fk, /*lazy=*/true);
}

}  // namespace idebench::exec
