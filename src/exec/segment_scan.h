#ifndef IDEBENCH_EXEC_SEGMENT_SCAN_H_
#define IDEBENCH_EXEC_SEGMENT_SCAN_H_

/// \file segment_scan.h
/// Query execution directly over compressed on-disk segments.
///
/// `SegmentTableScanner` runs one resolved `QuerySpec` against a
/// memory-mapped `storage::SegmentFile` (storage/segment.h) without
/// decompressing the whole table, and produces results **bit-identical**
/// to the in-memory path over the decoded table:
///
///  * `threads == 1` matches `BinnedAggregator::ProcessRange(0, rows)`
///    exactly — segments are 64K-row aligned, so the scanner's per-segment
///    1024-row batches fall on the very same boundaries;
///  * `threads > 1` matches `MorselProcessRange` at 64K morsels: one
///    partial aggregator per segment, folded in segment order, the same
///    fixed reduction tree for every parallelism.
///
/// Per segment, in order, the scanner tries the cheapest sufficient tier:
///
///  1. **Zone pruning** — the persisted zone-map entries in the segment
///     footer feed the compiled prune checks
///     (`VectorizedQuery::SegmentCanMatch`); an excluded segment costs a
///     few comparisons and zero payload bytes.
///  2. **Dictionary-bitset pruning** — for Eq/In predicates on string
///     columns, the per-segment code-presence bitset proves "this code
///     never occurs here" even when the zone range is too wide to help.
///  3. **RLE run fast path** — an all-COUNT query whose single bin
///     dimension and every filter predicate read one column that is
///     RLE-encoded in this segment is answered per *run*: the scalar
///     reference `Predicate::Matches` + `BinDimension::BinIndex` (both
///     bit-compatible with the compiled kernels by the vectorized-layer
///     contract) evaluate once per run, and matching runs bulk-accumulate
///     via `BinnedAggregator::ProcessCountRun` — payload work drops from
///     O(rows) to O(runs).
///  4. **Compressed-domain filtered COUNT** — an all-COUNT query whose
///     single bin dimension is RLE-encoded in this segment but whose
///     filter reads *other* columns is answered without any staging
///     decode: each predicate is evaluated directly on its column's
///     compressed payload (per run for RLE, per packed field through a
///     match table for bit-packed, in place on the mmap for raw) and
///     ANDed into a per-row match bitset, then each bin run contributes
///     `popcount(bitset slice)` unit observations via `ProcessCountRun`.
///     The decoded values these evaluations see are exactly what the
///     decode tier would materialize, and `Predicate::Matches` is the
///     kernels' scalar reference, so the counts are bit-identical.
///  5. **Decode + vectorized scan** — only the columns the query actually
///     references are decoded (memcpy / `ExpandRleRuns` /
///     `UnpackBitsFOR`) into a fixed 64K-row *staging table* whose raw
///     buffers the compiled kernels point at, then the segment's rows run
///     through the normal fused batch pipeline.
///
/// The staging table's own statistics and zone maps describe placeholder
/// data and are never consulted: the scanner forces the aggregator's
/// zone pruning off and prunes exclusively from the footer zones.

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/result.h"
#include "exec/aggregator.h"
#include "exec/bound_query.h"
#include "query/spec.h"
#include "storage/segment.h"

namespace idebench::exec {

/// Scan knobs.  The defaults enable every tier.
struct SegmentScanOptions {
  /// Settings-style thread count: 1 = exact sequential path, 0 = hardware
  /// concurrency, else morsel-style per-segment parallelism.
  int threads = 1;

  /// Prune segments via the footer zone entries.
  bool enable_zone_pruning = true;

  /// Prune segments via the per-segment dictionary presence bitsets.
  bool enable_dict_pruning = true;

  /// Answer all-COUNT single-column queries per RLE run where possible.
  bool enable_rle_count_fastpath = true;

  /// Answer all-COUNT queries whose bin column is RLE but whose filter
  /// reads other columns by evaluating the predicates directly on the
  /// compressed payloads (no staging decode) and counting matches per
  /// bin run.
  bool enable_compressed_filter_fastpath = true;

  /// Aggregator options for the result state.  `enable_zone_pruning` and
  /// `record_matches` are forced off internally (staging zone maps are
  /// meaningless; recorded staging row ids would be too).
  BinnedAggregatorOptions agg;
};

/// Per-scan telemetry.
struct SegmentScanStats {
  int64_t segments_total = 0;
  int64_t segments_scanned = 0;        // decoded (or fast-pathed)
  int64_t segments_pruned_zone = 0;
  int64_t segments_pruned_dict = 0;
  int64_t segments_count_fastpath = 0;  // subset of segments_scanned
  int64_t segments_filter_fastpath = 0;  // compressed-domain filtered COUNT
  int64_t rows_scanned = 0;
  int64_t rows_skipped = 0;
  uint64_t payload_bytes_touched = 0;   // compressed bytes read
};

/// Executes one query over one segment file; see the file comment.
class SegmentTableScanner {
 public:
  /// Prepares a scan of `spec` (bins already resolved) over `file`, which
  /// must outlive the scanner.  Fails when the spec references columns
  /// the file does not hold.
  static Result<std::unique_ptr<SegmentTableScanner>> Create(
      const storage::SegmentFile* file, const query::QuerySpec& spec,
      SegmentScanOptions options = {});

  /// Runs the scan once.  After it returns, `aggregator()` holds the
  /// accumulated state (take `ExactResult()` for the answer).
  Status Execute();

  /// The result aggregator (valid after `Execute`).
  const BinnedAggregator& aggregator() const { return *main_->agg; }

  const SegmentScanStats& stats() const { return stats_; }

 private:
  /// Everything one worker needs to process segments: a staging table the
  /// compiled kernels point into, the binding/aggregator compiled over
  /// it, and a prune-check kernel table.  A context is used by one thread
  /// at a time; the pool below hands them out under a mutex.
  struct ScanContext {
    storage::Catalog catalog;             // owns the staging table
    storage::Table* staging = nullptr;    // borrowed from catalog
    std::unique_ptr<BoundQuery> bound;    // points into catalog + spec_
    std::unique_ptr<BinnedAggregator> agg;
    // One compile serves both the aggregator's batch kernels and the
    // footer-zone prune checks (nullptr when compilation declines the
    // query shape).
    std::shared_ptr<const VectorizedQuery> prune;
    // Staging column -> segment-file column index, for SegmentCanMatch.
    std::vector<int> file_col_of_staging;
    // Scratch match bitset (one bit per segment row) for the
    // compressed-domain filtered COUNT tier.
    std::vector<uint64_t> match_words;
  };

  /// What one segment contributed; folded into the main aggregator in
  /// segment order after a parallel scan.
  struct SegmentOutcome {
    enum class Kind : uint8_t { kScanned, kPrunedZone, kPrunedDict };
    Kind kind = Kind::kScanned;
    bool fastpath = false;         // RLE run fast path (tier 3)
    bool filter_fastpath = false;  // compressed-domain filtered COUNT (tier 4)
    int64_t rows = 0;
    uint64_t bytes = 0;
    std::unique_ptr<BinnedAggregator> partial;  // parallel scans only
  };

  SegmentTableScanner() = default;

  Result<std::unique_ptr<ScanContext>> NewContext() const;

  /// Processes segment `seg` into `agg` (the main aggregator when
  /// sequential, a partial when parallel) and reports the outcome.
  SegmentOutcome ProcessSegment(ScanContext* ctx, BinnedAggregator* agg,
                                int64_t seg) const;

  /// True when the footer zones / dict bitsets prove segment `seg` holds
  /// no matching row.
  bool ZonePruned(const ScanContext& ctx, int64_t seg) const;
  bool DictPruned(int64_t seg) const;

  /// True when segment `seg` qualifies for the RLE COUNT run fast path.
  bool CanCountRuns(int64_t seg) const;

  /// True when segment `seg` qualifies for the compressed-domain
  /// filtered COUNT tier (bin column RLE here; filter evaluated on the
  /// compressed payloads).
  bool CanCountFiltered(int64_t seg) const;

  /// Runs the compressed-domain filtered COUNT tier over segment `seg`,
  /// filling `outcome`'s fast-path flag and payload byte count.
  void FilteredRunCount(ScanContext* ctx, BinnedAggregator* agg,
                        int64_t seg, SegmentOutcome* outcome) const;

  ScanContext* AcquireContext();
  void ReleaseContext(ScanContext* ctx);

  const storage::SegmentFile* file_ = nullptr;
  std::unique_ptr<query::QuerySpec> spec_;  // stable address for binding
  SegmentScanOptions options_;
  SegmentScanStats stats_;

  // Precomputed query shape.
  std::vector<int> referenced_cols_;  // file column indices to decode
  bool count_fastpath_shape_ = false; // all-COUNT, 1-D, preds on bin col
  bool filtered_count_shape_ = false; // all-COUNT, 1-D, preds anywhere
  int fastpath_col_ = -1;             // the single bin column's file index
  // True when every segment is answerable by a COUNT fast path (tiers
  // 3/4), so contexts skip the staging placeholder fill entirely — the
  // compiled kernels then bake empty buffers, and the decode tier must
  // never run (checked).
  bool staging_lean_ = false;

  std::unique_ptr<ScanContext> main_;          // sequential + merge target
  std::vector<std::unique_ptr<ScanContext>> pool_;  // parallel workers
  std::vector<ScanContext*> free_contexts_;
  std::mutex pool_mu_;
};

}  // namespace idebench::exec

#endif  // IDEBENCH_EXEC_SEGMENT_SCAN_H_
