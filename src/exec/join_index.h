#ifndef IDEBENCH_EXEC_JOIN_INDEX_H_
#define IDEBENCH_EXEC_JOIN_INDEX_H_

/// \file join_index.h
/// Foreign-key join support for star schemas.
///
/// A `JoinIndex` maps fact row numbers to dimension row numbers for one
/// fact→dimension foreign key.  It supports two physical forms:
///
///  * **Materialized** — a dense fact-length array, built by hashing the
///    dimension's primary key and probing once per fact row.  This is the
///    moral equivalent of a radix hash join's build+probe (what a blocking
///    column store runs); building it costs a full fact scan, which
///    engines charge against their virtual-time budget.
///  * **Lazy** — only the dimension-side hash is built (cheap: dimensions
///    are small).  Each `DimRow` call probes the hash with the fact row's
///    FK value.  This is the access path of wander-join-style online
///    aggregation (XDB): per-sampled-tuple random walks, no fact scan.

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "storage/catalog.h"

namespace idebench::exec {

/// Fact-row -> dimension-row mapping for one foreign key.
class JoinIndex {
 public:
  /// Builds the materialized (dense array) form.  Fact rows with no
  /// dimension match map to -1 (inner-join semantics drop them).
  static Result<JoinIndex> BuildMaterialized(const storage::Catalog& catalog,
                                             const storage::ForeignKey& fk);

  /// Builds the lazy (hash-probe) form; touches only the dimension table.
  static Result<JoinIndex> BuildLazy(const storage::Catalog& catalog,
                                     const storage::ForeignKey& fk);

  /// Dimension row for `fact_row`, or -1.
  int64_t DimRow(int64_t fact_row) const {
    if (!lazy_) return mapping_[static_cast<size_t>(fact_row)];
    auto it = pk_index_.find(fk_column_->ValueAsDouble(fact_row));
    return it == pk_index_.end() ? -1 : it->second;
  }

  const std::string& dimension_table() const { return dimension_table_; }

  /// True for the lazy (wander-join) form.
  bool is_lazy() const { return lazy_; }

  /// Materialized form: number of fact rows with no dimension match.
  int64_t miss_count() const { return miss_count_; }

 private:
  std::string dimension_table_;
  bool lazy_ = false;
  // Materialized form.
  std::vector<int64_t> mapping_;
  int64_t miss_count_ = 0;
  // Lazy form.
  const storage::Column* fk_column_ = nullptr;
  std::unordered_map<double, int64_t> pk_index_;
};

}  // namespace idebench::exec

#endif  // IDEBENCH_EXEC_JOIN_INDEX_H_
