#ifndef IDEBENCH_EXEC_JOIN_INDEX_H_
#define IDEBENCH_EXEC_JOIN_INDEX_H_

/// \file join_index.h
/// Foreign-key join support for star schemas.
///
/// A `JoinIndex` maps fact row numbers to dimension row numbers for one
/// fact→dimension foreign key.  It supports two *logical* forms that
/// drive the engines' virtual cost model:
///
///  * **Materialized** — the moral equivalent of a radix hash join's
///    build+probe (what a blocking column store runs); building it costs
///    a full fact scan, which engines charge against their virtual-time
///    budget.
///  * **Lazy** — models wander-join-style online aggregation (XDB):
///    per-sampled-tuple random walks, no charged fact scan.
///
/// Physically both forms now pre-materialize the fact→dim mapping as one
/// flat `int32_t` array at construction: a probe is a single array read,
/// which is what the vectorized kernels gather from.  The dimension's
/// primary key is hashed on its *integer* view (`ValueAsInt`) rather than
/// on raw doubles, avoiding FP-equality hazards and double-hashing cost.
/// Double-typed key columns must hold integral values (keys in this
/// benchmark are int64 or dictionary codes); fractional keys are rejected
/// with an error at build time rather than silently truncated.
///
/// Thread safety: both forms materialize the complete mapping inside
/// `Build` and never mutate it afterwards, so a fully constructed
/// `JoinIndex` is safe to probe from any number of morsel workers
/// concurrently.  Construction itself must finish before the index is
/// shared (EngineBase guards its caches accordingly).

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "storage/catalog.h"

namespace idebench::exec {

/// Fact-row -> dimension-row mapping for one foreign key.
class JoinIndex {
 public:
  /// Builds the materialized (dense array) form.  Fact rows with no
  /// dimension match map to -1 (inner-join semantics drop them).
  static Result<JoinIndex> BuildMaterialized(const storage::Catalog& catalog,
                                             const storage::ForeignKey& fk);

  /// Builds the lazy (wander-join) form.  Physically identical mapping;
  /// only the engines' cost accounting differs (see file comment).
  static Result<JoinIndex> BuildLazy(const storage::Catalog& catalog,
                                     const storage::ForeignKey& fk);

  /// Dimension row for `fact_row`, or -1.
  int64_t DimRow(int64_t fact_row) const {
    return mapping_[static_cast<size_t>(fact_row)];
  }

  /// Flat fact→dim mapping (length = fact row count, -1 = miss); the
  /// gather source for vectorized kernels.
  const int32_t* mapping_data() const { return mapping_.data(); }
  int64_t mapping_size() const { return static_cast<int64_t>(mapping_.size()); }

  const std::string& dimension_table() const { return dimension_table_; }

  /// True for the lazy (wander-join) form.
  bool is_lazy() const { return lazy_; }

  /// Number of fact rows with no dimension match.
  int64_t miss_count() const { return miss_count_; }

 private:
  static Result<JoinIndex> Build(const storage::Catalog& catalog,
                                 const storage::ForeignKey& fk, bool lazy);

  std::string dimension_table_;
  bool lazy_ = false;
  std::vector<int32_t> mapping_;
  int64_t miss_count_ = 0;
};

}  // namespace idebench::exec

#endif  // IDEBENCH_EXEC_JOIN_INDEX_H_
