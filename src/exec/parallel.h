#ifndef IDEBENCH_EXEC_PARALLEL_H_
#define IDEBENCH_EXEC_PARALLEL_H_

/// \file parallel.h
/// Morsel-driven parallel execution for the batch aggregation pipeline.
///
/// The vectorized kernels (exec/vectorized.h) are shared-nothing per
/// batch, so a scan or shuffled walk parallelizes by splitting the input
/// into *morsels* of `kMorselRows` rows (64 batches of `kVectorBatchSize`)
/// and fanning them out over a lazily-started, process-wide worker pool:
///
///     rows ──split──> morsel 0 ─> worker A ─> partial aggregator ─┐
///                     morsel 1 ─> worker B ─> partial aggregator ─┼─merge─> result
///                     morsel 2 ─> worker A ─> partial aggregator ─┘  (morsel order)
///
/// Each morsel is aggregated into its own partial `BinnedAggregator`
/// (private dense/hash bin table and `RowBatch` scratch, shared
/// immutable compiled kernels), and partials are folded back with
/// `MergeFrom()` **in morsel index order** on the calling thread.
/// Partials are pooled on the target aggregator
/// (`AcquirePartial`/`ReleasePartial`), so dense tables survive across
/// waves and across the many small budget slices engines advance in.
///
/// Range scans additionally consult the fact columns' zone maps
/// (storage/column.h) through the target's compiled prune checks:
/// morsels that provably cannot contain a match are skipped before
/// dispatch (rows accounted via `AccountZoneSkip`, results unchanged);
/// shuffled walks mix rows from every block and never prune.
///
/// Determinism contract: the morsel decomposition and the merge order
/// depend only on the input range and the morsel size — never on the
/// number of workers or on scheduling.  The floating-point reduction tree
/// is therefore fixed, and `MorselProcess*` produces **bit-identical**
/// results (bins, estimates, margins, row counters) for every
/// `parallelism >= 1`.  Integer-valued accumulator fields (row counters,
/// COUNT, MIN/MAX, unit weights) are additionally bit-identical to the
/// sequential reference path; real-valued sums differ from the flat
/// sequential sum only by last-ulp regrouping effects.
///
/// The engine-facing `Process*Parallel` wrappers honor the Settings
/// contract: `threads == 1` runs the exact single-threaded code path
/// (`BinnedAggregator::Process*`, no pool, no partials), `threads == 0`
/// resolves to the hardware concurrency, and any other value runs the
/// morsel path with that parallelism.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "aqp/sampler.h"
#include "exec/aggregator.h"
#include "exec/vectorized.h"

namespace idebench::exec {

/// Batches per morsel; a morsel is the unit of work-stealing *and* of the
/// deterministic merge order.
inline constexpr int64_t kMorselBatches = 64;

/// Rows per morsel (~64K): large enough that merge overhead vanishes,
/// small enough for load balancing across workers.
inline constexpr int64_t kMorselRows = kMorselBatches * kVectorBatchSize;

/// Hardware concurrency with a floor of 1.
int HardwareThreads();

/// Resolves a Settings-style thread count: 0 -> `HardwareThreads()`,
/// otherwise max(threads, 1).
int ResolveThreadCount(int threads);

/// A lazily-started, process-wide pool of worker threads.  Threads are
/// spawned on first use and grown on demand up to the requested
/// parallelism (capped); they are shared by all engines, the ground-truth
/// oracle, and the benchmarks, so a process never oversubscribes cores
/// with per-engine pools.
class WorkerPool {
 public:
  /// The shared pool (created on first call, joined at process exit).
  static WorkerPool& Shared();

  /// Runs `fn(0) .. fn(tasks - 1)`, each exactly once, using the calling
  /// thread plus up to `parallelism - 1` pool threads; blocks until all
  /// tasks complete.  Tasks are claimed dynamically (work stealing), so
  /// `fn` must be safe to call from multiple threads with distinct
  /// indices.  Re-entrant calls from a pool thread run inline.
  void ParallelFor(int64_t tasks, int parallelism,
                   const std::function<void(int64_t)>& fn);

  /// Threads currently live in the pool (diagnostics/tests).
  int thread_count() const;

  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

 private:
  WorkerPool() = default;

  struct Job;

  /// Grows the pool to `target` threads (caller holds `mu_`).
  void EnsureThreadsLocked(int target);

  void ThreadMain();

  /// Claims and runs tasks of `job` until none remain.
  static void RunTasks(Job* job);

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::vector<std::thread> threads_;
  std::deque<std::shared_ptr<Job>> jobs_;
  bool shutdown_ = false;
};

/// Morsel-driven drivers.  All three split the input into morsels of
/// `morsel_rows` (clamped to a multiple of `kVectorBatchSize`), aggregate
/// each morsel into a partial, and merge partials into `agg` in morsel
/// order — bit-identical results for every `parallelism >= 1`; see the
/// file comment.  `agg` may already hold state (incremental execution).
/// Inputs spanning a single morsel aggregate straight into `agg` (a
/// decision made from the input size only, so still schedule-independent).
void MorselProcessRange(BinnedAggregator* agg, int64_t begin, int64_t end,
                        int parallelism, int64_t morsel_rows = kMorselRows);
void MorselProcessShuffled(BinnedAggregator* agg,
                           const aqp::ShuffledIndex& order, int64_t start_pos,
                           int64_t count, int parallelism,
                           int64_t morsel_rows = kMorselRows);
void MorselProcessWalk(BinnedAggregator* agg, const aqp::ShuffledIndex& order,
                       int64_t key, int64_t start_pos, int64_t count,
                       int parallelism, int64_t morsel_rows = kMorselRows);
void MorselProcessBatch(BinnedAggregator* agg, const int64_t* rows, int64_t n,
                        double weight, int parallelism,
                        int64_t morsel_rows = kMorselRows);

/// Engine-facing wrappers: `threads == 1` -> the exact sequential code
/// path; otherwise the morsel path with `ResolveThreadCount(threads)`.
void ProcessRangeParallel(BinnedAggregator* agg, int64_t begin, int64_t end,
                          int threads);
void ProcessShuffledParallel(BinnedAggregator* agg,
                             const aqp::ShuffledIndex& order,
                             int64_t start_pos, int64_t count, int threads);
void ProcessWalkParallel(BinnedAggregator* agg,
                         const aqp::ShuffledIndex& order, int64_t key,
                         int64_t start_pos, int64_t count, int threads);
void ProcessBatchParallel(BinnedAggregator* agg, const int64_t* rows,
                          int64_t n, double weight, int threads);

}  // namespace idebench::exec

#endif  // IDEBENCH_EXEC_PARALLEL_H_
