#ifndef IDEBENCH_WORKFLOW_GENERATOR_H_
#define IDEBENCH_WORKFLOW_GENERATOR_H_

/// \file generator.h
/// The IDEBench workflow generator (paper §4.3).
///
/// Workflows are modeled as Markov chains: at each step the next
/// interaction kind is sampled from a per-workflow-type transition
/// distribution, and its parameters (binned columns, bin counts,
/// aggregate functions, filter predicates and selectivities) are sampled
/// from distributions estimated on the dataset itself — so generated
/// filters reference real attribute values and quantile-calibrated
/// ranges.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "storage/table.h"
#include "workflow/viz_graph.h"
#include "workflow/workflow.h"

namespace idebench::workflow {

/// Tunables of the workflow generator.  Defaults reflect the interaction
/// mix observed in the user studies the paper cites (drill-down-heavy,
/// COUNT/AVG-dominated).
struct GeneratorConfig {
  int min_interactions = 14;
  int max_interactions = 24;

  /// Probability that a new viz bins on two dimensions (heat map).
  double two_dim_prob = 0.2;

  /// Aggregate-function mix (normalized internally).  AVG-heavy, as in
  /// the paper's workloads (Table 1), which is also what drives XDB's
  /// ~66 % blocking-fallback share.
  double count_weight = 0.24;
  double avg_weight = 0.58;
  double sum_weight = 0.18;

  /// Probability that a viz carries a second aggregate.
  double second_agg_prob = 0.18;

  /// Filter selectivity is drawn uniformly from [min, max].
  double min_filter_selectivity = 0.01;
  double max_filter_selectivity = 0.5;

  /// Selection (brush) selectivity range — brushes are narrower.
  double min_selection_selectivity = 0.02;
  double max_selection_selectivity = 0.2;

  /// Maximum number of live visualizations on the dashboard.
  int max_vizs = 8;

  /// Sample size used to estimate column quantiles.
  int64_t stats_sample = 4000;
};

/// Generates workflows of all types against one dataset.
class WorkflowGenerator {
 public:
  /// `table` is the de-normalized dataset the workflows will refer to; it
  /// must outlive the generator.
  WorkflowGenerator(const storage::Table* table, GeneratorConfig config,
                    uint64_t seed);

  /// Generates one workflow of `type` named `name`.
  Result<Workflow> Generate(WorkflowType type, const std::string& name);

  /// Generates the paper's default suite: `per_type` workflows for each of
  /// the four base types plus `per_type` mixed workflows.
  Result<std::vector<Workflow>> GenerateDefaultSuite(int per_type);

 private:
  struct ColumnStats {
    std::string name;
    bool nominal = false;
    double weight = 1.0;                 // selection probability weight
    std::vector<double> quantile_values; // sorted sample (quantitative)
    std::vector<std::string> labels;     // nominal string labels
    std::vector<double> codes;           // nominal numeric-view values
  };

  void BuildStats(int64_t sample_size);
  const ColumnStats& PickColumn(bool prefer_quantitative);
  double Quantile(const ColumnStats& stats, double u) const;

  query::VizSpec MakeVizSpec(const std::string& name);
  expr::Predicate MakeFilterPredicate(double min_sel, double max_sel);
  expr::FilterExpr MakeSelectionFor(const query::VizSpec& viz);

  Status GenerateIndependent(VizGraph* graph, Workflow* out, int target);
  Status GenerateSequential(VizGraph* graph, Workflow* out, int target);
  Status GenerateOneToN(VizGraph* graph, Workflow* out, int target);
  Status GenerateNToOne(VizGraph* graph, Workflow* out, int target);
  Status GenerateMixed(VizGraph* graph, Workflow* out, int target);

  /// Applies `interaction` to the shadow graph; on success appends it to
  /// the workflow.
  Status Emit(VizGraph* graph, Workflow* out, Interaction interaction);

  const storage::Table* table_;
  GeneratorConfig config_;
  Rng rng_;
  std::vector<ColumnStats> columns_;
  int next_viz_id_ = 0;
};

}  // namespace idebench::workflow

#endif  // IDEBENCH_WORKFLOW_GENERATOR_H_
