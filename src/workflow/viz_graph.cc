#include "workflow/viz_graph.h"

#include <algorithm>
#include <deque>

namespace idebench::workflow {

query::VizSpec* VizGraph::Find(const std::string& name) {
  for (auto& v : vizs_) {
    if (v.name == name) return &v;
  }
  return nullptr;
}

const query::VizSpec* VizGraph::Find(const std::string& name) const {
  for (const auto& v : vizs_) {
    if (v.name == name) return &v;
  }
  return nullptr;
}

bool VizGraph::HasViz(const std::string& name) const {
  return Find(name) != nullptr;
}

Result<query::VizSpec> VizGraph::GetViz(const std::string& name) const {
  const query::VizSpec* v = Find(name);
  if (v == nullptr) return Status::KeyError("no viz named '" + name + "'");
  return *v;
}

std::vector<std::string> VizGraph::VizNames() const {
  std::vector<std::string> names;
  names.reserve(vizs_.size());
  for (const auto& v : vizs_) names.push_back(v.name);
  return names;
}

std::vector<std::string> VizGraph::Targets(const std::string& name) const {
  std::vector<std::string> out;
  for (const auto& [from, to] : links_) {
    if (from == name) out.push_back(to);
  }
  return out;
}

std::vector<std::string> VizGraph::Descendants(const std::string& name) const {
  std::vector<std::string> out;
  std::deque<std::string> frontier;
  frontier.push_back(name);
  while (!frontier.empty()) {
    const std::string current = frontier.front();
    frontier.pop_front();
    for (const std::string& target : Targets(current)) {
      if (target == name) continue;
      if (std::find(out.begin(), out.end(), target) == out.end()) {
        out.push_back(target);
        frontier.push_back(target);
      }
    }
  }
  return out;
}

Status VizGraph::Apply(const Interaction& interaction,
                       std::vector<std::string>* affected) {
  switch (interaction.type) {
    case InteractionType::kCreateViz: {
      IDB_RETURN_NOT_OK(interaction.viz.Validate());
      if (HasViz(interaction.viz.name)) {
        return Status::AlreadyExists("viz '" + interaction.viz.name +
                                     "' already exists");
      }
      vizs_.push_back(interaction.viz);
      affected->push_back(interaction.viz.name);
      return Status::OK();
    }
    case InteractionType::kSetFilter: {
      query::VizSpec* v = Find(interaction.viz_name);
      if (v == nullptr) {
        return Status::KeyError("no viz named '" + interaction.viz_name + "'");
      }
      v->filter = interaction.filter;
      affected->push_back(v->name);
      for (const std::string& d : Descendants(v->name)) {
        affected->push_back(d);
      }
      return Status::OK();
    }
    case InteractionType::kSetSelection: {
      query::VizSpec* v = Find(interaction.viz_name);
      if (v == nullptr) {
        return Status::KeyError("no viz named '" + interaction.viz_name + "'");
      }
      v->selection = interaction.filter;
      for (const std::string& d : Descendants(v->name)) {
        affected->push_back(d);
      }
      return Status::OK();
    }
    case InteractionType::kLink: {
      if (!HasViz(interaction.link_from)) {
        return Status::KeyError("no viz named '" + interaction.link_from + "'");
      }
      if (!HasViz(interaction.link_to)) {
        return Status::KeyError("no viz named '" + interaction.link_to + "'");
      }
      if (interaction.link_from == interaction.link_to) {
        return Status::Invalid("cannot link a viz to itself");
      }
      // Reject links that would create a cycle.
      const std::vector<std::string> reach = Descendants(interaction.link_to);
      if (std::find(reach.begin(), reach.end(), interaction.link_from) !=
          reach.end()) {
        return Status::Invalid("link would create a cycle");
      }
      const std::pair<std::string, std::string> edge{interaction.link_from,
                                                     interaction.link_to};
      if (std::find(links_.begin(), links_.end(), edge) == links_.end()) {
        links_.push_back(edge);
      }
      affected->push_back(interaction.link_to);
      for (const std::string& d : Descendants(interaction.link_to)) {
        affected->push_back(d);
      }
      return Status::OK();
    }
    case InteractionType::kDiscard: {
      const query::VizSpec* v = Find(interaction.viz_name);
      if (v == nullptr) {
        return Status::KeyError("no viz named '" + interaction.viz_name + "'");
      }
      vizs_.erase(std::remove_if(vizs_.begin(), vizs_.end(),
                                 [&](const query::VizSpec& spec) {
                                   return spec.name == interaction.viz_name;
                                 }),
                  vizs_.end());
      links_.erase(std::remove_if(
                       links_.begin(), links_.end(),
                       [&](const std::pair<std::string, std::string>& edge) {
                         return edge.first == interaction.viz_name ||
                                edge.second == interaction.viz_name;
                       }),
                   links_.end());
      return Status::OK();
    }
  }
  return Status::Invalid("unknown interaction type");
}

Result<query::QuerySpec> VizGraph::BuildQuery(
    const std::string& viz_name) const {
  const query::VizSpec* v = Find(viz_name);
  if (v == nullptr) return Status::KeyError("no viz named '" + viz_name + "'");

  query::QuerySpec q;
  q.viz_name = v->name;
  q.bins = v->bins;
  q.aggregates = v->aggregates;
  q.filter = v->filter;

  // Conjoin filters and selections of all ancestors (cycle-safe reverse
  // BFS over incoming links).
  std::vector<std::string> visited{viz_name};
  std::deque<std::string> frontier{viz_name};
  while (!frontier.empty()) {
    const std::string current = frontier.front();
    frontier.pop_front();
    for (const auto& [from, to] : links_) {
      if (to != current) continue;
      if (std::find(visited.begin(), visited.end(), from) != visited.end()) {
        continue;
      }
      visited.push_back(from);
      frontier.push_back(from);
      const query::VizSpec* source = Find(from);
      if (source == nullptr) continue;
      for (const expr::Predicate& p : source->filter.predicates()) {
        q.filter.And(p);
      }
      for (const expr::Predicate& p : source->selection.predicates()) {
        q.filter.And(p);
      }
    }
  }
  return q;
}

void VizGraph::Clear() {
  vizs_.clear();
  links_.clear();
}

}  // namespace idebench::workflow
