#ifndef IDEBENCH_WORKFLOW_VIZ_GRAPH_H_
#define IDEBENCH_WORKFLOW_VIZ_GRAPH_H_

/// \file viz_graph.h
/// The dashboard state the benchmark driver maintains while running a
/// workflow (paper §4.4: "the driver keeps track of a visualization
/// graph").  Nodes are visualizations; edges are directed links.  Applying
/// an interaction mutates the graph and yields the set of visualizations
/// whose queries must (re-)run:
///
///  * create_viz v       -> {v}
///  * set_filter on v    -> {v} ∪ descendants(v)
///  * set_selection on v -> descendants(v)   (the brushed viz itself does
///                          not re-query; its selection filters targets)
///  * link a -> b        -> {b} ∪ descendants(b)
///  * discard v          -> {}   (v and its links are removed)
///
/// The *effective* filter of a viz is its own filter conjoined with the
/// filters and selections of all its ancestors along links.

#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "query/spec.h"
#include "workflow/interaction.h"

namespace idebench::workflow {

/// Mutable dashboard state.
class VizGraph {
 public:
  /// Applies `interaction`; appends the names of visualizations that must
  /// update to `affected` (in deterministic order).
  Status Apply(const Interaction& interaction,
               std::vector<std::string>* affected);

  /// True when a viz with this name exists.
  bool HasViz(const std::string& name) const;

  /// The viz spec; error when absent.
  Result<query::VizSpec> GetViz(const std::string& name) const;

  /// Builds the executable query for `viz_name`: the viz's binning and
  /// aggregates plus the effective filter (own + ancestors').  Binning is
  /// NOT yet resolved; the driver resolves it against the catalog.
  Result<query::QuerySpec> BuildQuery(const std::string& viz_name) const;

  /// Names of all live vizs, in creation order.
  std::vector<std::string> VizNames() const;

  /// Directed links (from, to), in creation order.
  const std::vector<std::pair<std::string, std::string>>& links() const {
    return links_;
  }

  /// Direct link targets of `name`.
  std::vector<std::string> Targets(const std::string& name) const;

  /// All vizs reachable from `name` via links (BFS order, cycle-safe,
  /// excludes `name` itself).
  std::vector<std::string> Descendants(const std::string& name) const;

  /// Resets to an empty dashboard.
  void Clear();

 private:
  std::vector<query::VizSpec> vizs_;
  std::vector<std::pair<std::string, std::string>> links_;

  query::VizSpec* Find(const std::string& name);
  const query::VizSpec* Find(const std::string& name) const;
};

}  // namespace idebench::workflow

#endif  // IDEBENCH_WORKFLOW_VIZ_GRAPH_H_
