#include "workflow/interaction.h"

namespace idebench::workflow {

const char* InteractionTypeName(InteractionType type) {
  switch (type) {
    case InteractionType::kCreateViz:
      return "create_viz";
    case InteractionType::kSetFilter:
      return "set_filter";
    case InteractionType::kSetSelection:
      return "set_selection";
    case InteractionType::kLink:
      return "link";
    case InteractionType::kDiscard:
      return "discard";
  }
  return "unknown";
}

Result<InteractionType> InteractionTypeFromName(const std::string& name) {
  if (name == "create_viz") return InteractionType::kCreateViz;
  if (name == "set_filter") return InteractionType::kSetFilter;
  if (name == "set_selection") return InteractionType::kSetSelection;
  if (name == "link") return InteractionType::kLink;
  if (name == "discard") return InteractionType::kDiscard;
  return Status::Invalid("unknown interaction type '" + name + "'");
}

JsonValue Interaction::ToJson() const {
  JsonValue j = JsonValue::Object();
  j.Set("type", InteractionTypeName(type));
  switch (type) {
    case InteractionType::kCreateViz:
      j.Set("viz", viz.ToJson());
      break;
    case InteractionType::kSetFilter:
      j.Set("viz", viz_name);
      j.Set("filter", filter.ToJson());
      break;
    case InteractionType::kSetSelection:
      j.Set("viz", viz_name);
      j.Set("selection", filter.ToJson());
      break;
    case InteractionType::kLink:
      j.Set("from", link_from);
      j.Set("to", link_to);
      break;
    case InteractionType::kDiscard:
      j.Set("viz", viz_name);
      break;
  }
  return j;
}

Result<Interaction> Interaction::FromJson(const JsonValue& j) {
  if (!j.is_object()) return Status::Invalid("interaction must be an object");
  Interaction out;
  IDB_ASSIGN_OR_RETURN(out.type,
                       InteractionTypeFromName(j.GetString("type", "")));
  switch (out.type) {
    case InteractionType::kCreateViz: {
      IDB_ASSIGN_OR_RETURN(out.viz, query::VizSpec::FromJson(j.Get("viz")));
      break;
    }
    case InteractionType::kSetFilter: {
      out.viz_name = j.GetString("viz", "");
      IDB_ASSIGN_OR_RETURN(out.filter,
                           expr::FilterExpr::FromJson(j.Get("filter")));
      break;
    }
    case InteractionType::kSetSelection: {
      out.viz_name = j.GetString("viz", "");
      IDB_ASSIGN_OR_RETURN(out.filter,
                           expr::FilterExpr::FromJson(j.Get("selection")));
      break;
    }
    case InteractionType::kLink:
      out.link_from = j.GetString("from", "");
      out.link_to = j.GetString("to", "");
      if (out.link_from.empty() || out.link_to.empty()) {
        return Status::Invalid("link interaction needs 'from' and 'to'");
      }
      break;
    case InteractionType::kDiscard:
      out.viz_name = j.GetString("viz", "");
      break;
  }
  return out;
}

Interaction Interaction::CreateViz(query::VizSpec spec) {
  Interaction i;
  i.type = InteractionType::kCreateViz;
  i.viz = std::move(spec);
  return i;
}

Interaction Interaction::SetFilter(std::string viz, expr::FilterExpr filter) {
  Interaction i;
  i.type = InteractionType::kSetFilter;
  i.viz_name = std::move(viz);
  i.filter = std::move(filter);
  return i;
}

Interaction Interaction::SetSelection(std::string viz,
                                      expr::FilterExpr selection) {
  Interaction i;
  i.type = InteractionType::kSetSelection;
  i.viz_name = std::move(viz);
  i.filter = std::move(selection);
  return i;
}

Interaction Interaction::Link(std::string from, std::string to) {
  Interaction i;
  i.type = InteractionType::kLink;
  i.link_from = std::move(from);
  i.link_to = std::move(to);
  return i;
}

Interaction Interaction::Discard(std::string viz) {
  Interaction i;
  i.type = InteractionType::kDiscard;
  i.viz_name = std::move(viz);
  return i;
}

}  // namespace idebench::workflow
