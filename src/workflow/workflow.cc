#include "workflow/workflow.h"

#include <fstream>
#include <sstream>

namespace idebench::workflow {

const char* WorkflowTypeName(WorkflowType type) {
  switch (type) {
    case WorkflowType::kIndependent:
      return "independent";
    case WorkflowType::kSequential:
      return "sequential";
    case WorkflowType::kOneToN:
      return "one_to_n";
    case WorkflowType::kNToOne:
      return "n_to_one";
    case WorkflowType::kMixed:
      return "mixed";
  }
  return "unknown";
}

Result<WorkflowType> WorkflowTypeFromName(const std::string& name) {
  if (name == "independent") return WorkflowType::kIndependent;
  if (name == "sequential") return WorkflowType::kSequential;
  if (name == "one_to_n") return WorkflowType::kOneToN;
  if (name == "n_to_one") return WorkflowType::kNToOne;
  if (name == "mixed") return WorkflowType::kMixed;
  return Status::Invalid("unknown workflow type '" + name + "'");
}

const std::vector<WorkflowType>& AllWorkflowTypes() {
  static const std::vector<WorkflowType> kAll = {
      WorkflowType::kIndependent, WorkflowType::kSequential,
      WorkflowType::kOneToN, WorkflowType::kNToOne, WorkflowType::kMixed};
  return kAll;
}

JsonValue Workflow::ToJson() const {
  JsonValue j = JsonValue::Object();
  j.Set("name", name);
  j.Set("type", WorkflowTypeName(type));
  JsonValue arr = JsonValue::Array();
  for (const Interaction& i : interactions) arr.Append(i.ToJson());
  j.Set("interactions", std::move(arr));
  return j;
}

Result<Workflow> Workflow::FromJson(const JsonValue& j) {
  if (!j.is_object()) return Status::Invalid("workflow must be an object");
  Workflow w;
  w.name = j.GetString("name", "");
  IDB_ASSIGN_OR_RETURN(w.type, WorkflowTypeFromName(j.GetString("type", "")));
  const JsonValue& arr = j.Get("interactions");
  if (!arr.is_array()) return Status::Invalid("'interactions' must be array");
  for (size_t i = 0; i < arr.size(); ++i) {
    IDB_ASSIGN_OR_RETURN(Interaction interaction,
                         Interaction::FromJson(arr.at(i)));
    w.interactions.push_back(std::move(interaction));
  }
  return w;
}

Status Workflow::SaveToFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  out << ToJson().DumpPretty() << "\n";
  if (!out) return Status::IOError("write to '" + path + "' failed");
  return Status::OK();
}

Result<Workflow> Workflow::LoadFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open '" + path + "' for reading");
  std::stringstream buffer;
  buffer << in.rdbuf();
  IDB_ASSIGN_OR_RETURN(JsonValue j, JsonValue::Parse(buffer.str()));
  return Workflow::FromJson(j);
}

}  // namespace idebench::workflow
