#ifndef IDEBENCH_WORKFLOW_INTERACTION_H_
#define IDEBENCH_WORKFLOW_INTERACTION_H_

/// \file interaction.h
/// User interactions, the atoms of an IDEBench workflow (paper §4.3):
/// creating a visualization, changing its filter or brushed selection,
/// linking two visualizations, and discarding one.

#include <string>

#include "common/json.h"
#include "common/result.h"
#include "expr/predicate.h"
#include "query/spec.h"

namespace idebench::workflow {

/// Kind of user interaction.
enum class InteractionType : uint8_t {
  kCreateViz = 0,     // formulate + execute a new visualization query
  kSetFilter = 1,     // change a viz's own filter
  kSetSelection = 2,  // brush/select data in a viz (propagates over links)
  kLink = 3,          // link source viz -> target viz
  kDiscard = 4,       // remove a viz from the dashboard
};

/// Stable name ("create_viz", "set_filter", ...).
const char* InteractionTypeName(InteractionType type);

/// Parses a stable name back to the enum.
Result<InteractionType> InteractionTypeFromName(const std::string& name);

/// One interaction.  Which members are meaningful depends on `type`.
struct Interaction {
  InteractionType type = InteractionType::kCreateViz;

  query::VizSpec viz;        // kCreateViz
  std::string viz_name;      // kSetFilter / kSetSelection / kDiscard
  expr::FilterExpr filter;   // kSetFilter / kSetSelection payload
  std::string link_from;     // kLink
  std::string link_to;       // kLink

  /// JSON round-trip (workflow file format, Figure 4).
  JsonValue ToJson() const;
  static Result<Interaction> FromJson(const JsonValue& j);

  // Convenience constructors.
  static Interaction CreateViz(query::VizSpec spec);
  static Interaction SetFilter(std::string viz, expr::FilterExpr filter);
  static Interaction SetSelection(std::string viz, expr::FilterExpr selection);
  static Interaction Link(std::string from, std::string to);
  static Interaction Discard(std::string viz);
};

}  // namespace idebench::workflow

#endif  // IDEBENCH_WORKFLOW_INTERACTION_H_
