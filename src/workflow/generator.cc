#include "workflow/generator.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace idebench::workflow {

using expr::CompareOp;
using expr::FilterExpr;
using expr::Predicate;
using query::AggregateSpec;
using query::AggregateType;
using query::BinDimension;
using query::BinningMode;
using query::VizSpec;

WorkflowGenerator::WorkflowGenerator(const storage::Table* table,
                                     GeneratorConfig config, uint64_t seed)
    : table_(table), config_(config), rng_(seed) {
  BuildStats(config_.stats_sample);
}

void WorkflowGenerator::BuildStats(int64_t sample_size) {
  // Column weights tuned to the exploration behavior in the user studies:
  // delay/time/distance attributes and the small nominal attributes are
  // browsed far more often than identifiers.
  struct Weighted {
    const char* name;
    double weight;
  };
  static const Weighted kPreferred[] = {
      {"dep_delay", 3.0},   {"arr_delay", 3.0},  {"distance", 2.5},
      {"air_time", 2.0},    {"dep_time", 2.5},   {"arr_time", 1.0},
      {"taxi_in", 0.6},     {"taxi_out", 0.6},   {"flight_date", 1.2},
      {"day_of_week", 2.0}, {"carrier", 3.0},    {"origin_state", 1.5},
      {"origin_airport", 0.7}, {"dest_airport", 0.5},
  };

  // Custom datasets won't match the flights attribute list; fall back to
  // every column with uniform weight so the generator stays schema-
  // agnostic (paper §3.2: customizability).
  std::vector<Weighted> columns;
  for (const Weighted& w : kPreferred) {
    if (table_->ColumnByName(w.name) != nullptr) columns.push_back(w);
  }
  if (columns.empty()) {
    for (const storage::Field& field : table_->schema().fields()) {
      columns.push_back({field.name.c_str(), 1.0});
    }
  }

  const int64_t n = table_->num_rows();
  const int64_t m = std::min(sample_size, n);
  for (const Weighted& w : columns) {
    const storage::Column* col = table_->ColumnByName(w.name);
    if (col == nullptr) continue;
    ColumnStats stats;
    stats.name = w.name;
    stats.weight = w.weight;
    stats.nominal = col->field().kind == storage::AttributeKind::kNominal;
    if (stats.nominal) {
      if (col->type() == storage::DataType::kString) {
        const auto& dict = col->dictionary();
        for (int64_t code = 0; code < dict.size(); ++code) {
          stats.labels.push_back(dict.At(code));
          stats.codes.push_back(static_cast<double>(code));
        }
      } else {
        // Integer-coded nominal: enumerate the distinct values from a
        // scan (cheap; the domain is tiny, e.g. day_of_week).
        std::vector<double> distinct;
        for (int64_t r = 0; r < n; ++r) {
          const double v = col->ValueAsDouble(r);
          if (std::find(distinct.begin(), distinct.end(), v) ==
              distinct.end()) {
            distinct.push_back(v);
          }
          if (distinct.size() > 64) break;  // domain too large; keep prefix
        }
        std::sort(distinct.begin(), distinct.end());
        stats.codes = distinct;
      }
    } else {
      stats.quantile_values.reserve(static_cast<size_t>(m));
      const int64_t stride = std::max<int64_t>(1, n / std::max<int64_t>(m, 1));
      for (int64_t r = 0; r < n; r += stride) {
        stats.quantile_values.push_back(col->ValueAsDouble(r));
      }
      std::sort(stats.quantile_values.begin(), stats.quantile_values.end());
    }
    columns_.push_back(std::move(stats));
  }
}

const WorkflowGenerator::ColumnStats& WorkflowGenerator::PickColumn(
    bool prefer_quantitative) {
  std::vector<double> weights(columns_.size());
  for (size_t i = 0; i < columns_.size(); ++i) {
    weights[i] = columns_[i].weight;
    if (prefer_quantitative && columns_[i].nominal) weights[i] *= 0.4;
  }
  const int64_t idx = rng_.Categorical(weights);
  return columns_[static_cast<size_t>(std::max<int64_t>(idx, 0))];
}

double WorkflowGenerator::Quantile(const ColumnStats& stats, double u) const {
  if (stats.quantile_values.empty()) return 0.0;
  const size_t idx = std::min(
      stats.quantile_values.size() - 1,
      static_cast<size_t>(u * static_cast<double>(stats.quantile_values.size())));
  return stats.quantile_values[idx];
}

VizSpec WorkflowGenerator::MakeVizSpec(const std::string& name) {
  VizSpec viz;
  viz.name = name;
  viz.source = table_->name();

  const bool two_d = rng_.Bernoulli(config_.two_dim_prob);
  const int dims = two_d ? 2 : 1;
  for (int d = 0; d < dims; ++d) {
    const ColumnStats* stats = &PickColumn(/*prefer_quantitative=*/two_d);
    // Avoid binning twice on the same column.
    int guard = 0;
    while (d == 1 && stats->name == viz.bins[0].column && guard++ < 8) {
      stats = &PickColumn(two_d);
    }
    BinDimension bin;
    bin.column = stats->name;
    if (stats->nominal) {
      bin.mode = BinningMode::kNominal;
    } else if (rng_.Bernoulli(0.75)) {
      bin.mode = BinningMode::kFixedCount;
      static const int64_t kChoices1D[] = {10, 25, 50, 100};
      static const int64_t kChoices2D[] = {10, 15, 20, 25};
      bin.requested_bins = two_d
                               ? kChoices2D[rng_.UniformInt(0, 3)]
                               : kChoices1D[rng_.UniformInt(0, 3)];
    } else {
      bin.mode = BinningMode::kFixedWidth;
      const double span = Quantile(*stats, 0.999) - Quantile(*stats, 0.001);
      const double target_bins =
          static_cast<double>(rng_.UniformInt(10, two_d ? 25 : 60));
      bin.width = std::max(span / target_bins, 1e-6);
      bin.origin = 0.0;
    }
    viz.bins.push_back(std::move(bin));
  }

  // Aggregates.
  auto draw_agg = [&]() {
    AggregateSpec agg;
    const int64_t pick = rng_.Categorical(
        {config_.count_weight, config_.avg_weight, config_.sum_weight});
    agg.type = pick == 0   ? AggregateType::kCount
               : pick == 1 ? AggregateType::kAvg
                           : AggregateType::kSum;
    if (agg.type != AggregateType::kCount) {
      const ColumnStats* stats = &PickColumn(/*prefer_quantitative=*/true);
      int guard = 0;
      while (stats->nominal && guard++ < 16) stats = &PickColumn(true);
      if (stats->nominal) {
        // No quantitative column drawn; take the first one in the stats,
        // or degrade to COUNT on all-nominal schemas.
        for (const ColumnStats& candidate : columns_) {
          if (!candidate.nominal) {
            stats = &candidate;
            break;
          }
        }
      }
      if (stats->nominal) {
        agg.type = AggregateType::kCount;
      } else {
        agg.column = stats->name;
      }
    }
    return agg;
  };
  viz.aggregates.push_back(draw_agg());
  if (rng_.Bernoulli(config_.second_agg_prob)) {
    AggregateSpec second = draw_agg();
    if (!(second == viz.aggregates[0])) {
      viz.aggregates.push_back(std::move(second));
    }
  }
  return viz;
}

expr::Predicate WorkflowGenerator::MakeFilterPredicate(double min_sel,
                                                       double max_sel) {
  const ColumnStats& stats = PickColumn(/*prefer_quantitative=*/false);
  Predicate p;
  p.column = stats.name;
  if (stats.nominal) {
    const int64_t domain = static_cast<int64_t>(
        stats.labels.empty() ? stats.codes.size() : stats.labels.size());
    if (domain == 0) {
      // Degenerate; fall back to a tautology-ish range filter.
      p.op = CompareOp::kGe;
      p.value = 0.0;
      return p;
    }
    p.op = CompareOp::kIn;
    const int64_t take = std::min<int64_t>(domain, rng_.UniformInt(1, 3));
    std::vector<int64_t> chosen;
    int guard = 0;
    while (static_cast<int64_t>(chosen.size()) < take && guard++ < 64) {
      // Zipf-skewed choice mirrors real exploration: popular values are
      // selected more often.
      const int64_t idx = rng_.Zipf(domain, 0.8);
      if (std::find(chosen.begin(), chosen.end(), idx) == chosen.end()) {
        chosen.push_back(idx);
      }
    }
    for (int64_t idx : chosen) {
      p.set_values.push_back(stats.codes[static_cast<size_t>(idx)]);
      if (!stats.labels.empty()) {
        p.string_values.push_back(stats.labels[static_cast<size_t>(idx)]);
      }
    }
  } else {
    p.op = CompareOp::kRange;
    const double sel = rng_.Uniform(min_sel, max_sel);
    const double u_lo = rng_.Uniform(0.0, 1.0 - sel);
    p.lo = Quantile(stats, u_lo);
    p.hi = Quantile(stats, u_lo + sel);
    if (p.hi <= p.lo) p.hi = p.lo + 1e-6;
  }
  return p;
}

expr::FilterExpr WorkflowGenerator::MakeSelectionFor(const VizSpec& viz) {
  // Brush the first binning dimension of the viz.
  const std::string& column = viz.bins[0].column;
  const ColumnStats* stats = nullptr;
  for (const ColumnStats& s : columns_) {
    if (s.name == column) {
      stats = &s;
      break;
    }
  }
  FilterExpr out;
  if (stats == nullptr) return out;
  Predicate p;
  p.column = column;
  if (stats->nominal) {
    const int64_t domain = static_cast<int64_t>(
        stats->labels.empty() ? stats->codes.size() : stats->labels.size());
    if (domain == 0) return out;
    p.op = CompareOp::kIn;
    const int64_t idx = rng_.Zipf(domain, 0.8);
    p.set_values.push_back(stats->codes[static_cast<size_t>(idx)]);
    if (!stats->labels.empty()) {
      p.string_values.push_back(stats->labels[static_cast<size_t>(idx)]);
    }
  } else {
    p.op = CompareOp::kRange;
    const double sel = rng_.Uniform(config_.min_selection_selectivity,
                                    config_.max_selection_selectivity);
    const double u_lo = rng_.Uniform(0.0, 1.0 - sel);
    p.lo = Quantile(*stats, u_lo);
    p.hi = Quantile(*stats, u_lo + sel);
    if (p.hi <= p.lo) p.hi = p.lo + 1e-6;
  }
  out.And(std::move(p));
  return out;
}

Status WorkflowGenerator::Emit(VizGraph* graph, Workflow* out,
                               Interaction interaction) {
  std::vector<std::string> affected;
  IDB_RETURN_NOT_OK(graph->Apply(interaction, &affected));
  out->interactions.push_back(std::move(interaction));
  return Status::OK();
}

Status WorkflowGenerator::GenerateIndependent(VizGraph* graph, Workflow* out,
                                              int target) {
  while (static_cast<int>(out->interactions.size()) < target) {
    const int live = static_cast<int>(graph->VizNames().size());
    if (live == 0 || (live < config_.max_vizs && rng_.Bernoulli(0.45))) {
      IDB_RETURN_NOT_OK(Emit(graph, out,
                             Interaction::CreateViz(MakeVizSpec(
                                 "viz_" + std::to_string(next_viz_id_++)))));
    } else {
      const std::vector<std::string> names = graph->VizNames();
      const std::string& viz =
          names[static_cast<size_t>(rng_.UniformInt(0, live - 1))];
      FilterExpr f;
      f.And(MakeFilterPredicate(config_.min_filter_selectivity,
                                config_.max_filter_selectivity));
      IDB_RETURN_NOT_OK(Emit(graph, out, Interaction::SetFilter(viz, f)));
    }
  }
  return Status::OK();
}

Status WorkflowGenerator::GenerateSequential(VizGraph* graph, Workflow* out,
                                             int target) {
  // Seed the chain.
  std::string tail = "viz_" + std::to_string(next_viz_id_++);
  IDB_RETURN_NOT_OK(Emit(graph, out, Interaction::CreateViz(MakeVizSpec(tail))));

  while (static_cast<int>(out->interactions.size()) < target) {
    const std::vector<std::string> names = graph->VizNames();
    const int live = static_cast<int>(names.size());
    const double roll = rng_.NextDouble();
    if ((roll < 0.40 && live < config_.max_vizs) || live < 2) {
      // Extend the chain: create + link (two interactions).
      const std::string next = "viz_" + std::to_string(next_viz_id_++);
      IDB_RETURN_NOT_OK(
          Emit(graph, out, Interaction::CreateViz(MakeVizSpec(next))));
      IDB_RETURN_NOT_OK(Emit(graph, out, Interaction::Link(tail, next)));
      tail = next;
    } else if (roll < 0.72) {
      // Drill down: brush a viz in the chain (not the tail, so the brush
      // propagates somewhere).
      const std::string& viz =
          names[static_cast<size_t>(rng_.UniformInt(0, live - 1))];
      IDB_ASSIGN_OR_RETURN(query::VizSpec spec, graph->GetViz(viz));
      const FilterExpr sel = MakeSelectionFor(spec);
      if (sel.empty()) continue;
      IDB_RETURN_NOT_OK(Emit(graph, out, Interaction::SetSelection(viz, sel)));
    } else {
      const std::string& viz =
          names[static_cast<size_t>(rng_.UniformInt(0, live - 1))];
      FilterExpr f;
      f.And(MakeFilterPredicate(config_.min_filter_selectivity,
                                config_.max_filter_selectivity));
      IDB_RETURN_NOT_OK(Emit(graph, out, Interaction::SetFilter(viz, f)));
    }
  }
  return Status::OK();
}

Status WorkflowGenerator::GenerateOneToN(VizGraph* graph, Workflow* out,
                                         int target) {
  const std::string hub = "viz_" + std::to_string(next_viz_id_++);
  IDB_RETURN_NOT_OK(Emit(graph, out, Interaction::CreateViz(MakeVizSpec(hub))));

  // Fan out 2-4 targets.
  const int64_t fan = rng_.UniformInt(2, 4);
  std::vector<std::string> targets;
  for (int64_t i = 0; i < fan; ++i) {
    const std::string t = "viz_" + std::to_string(next_viz_id_++);
    IDB_RETURN_NOT_OK(Emit(graph, out, Interaction::CreateViz(MakeVizSpec(t))));
    IDB_RETURN_NOT_OK(Emit(graph, out, Interaction::Link(hub, t)));
    targets.push_back(t);
  }

  while (static_cast<int>(out->interactions.size()) < target) {
    const double roll = rng_.NextDouble();
    if (roll < 0.55) {
      IDB_ASSIGN_OR_RETURN(query::VizSpec spec, graph->GetViz(hub));
      const FilterExpr sel = MakeSelectionFor(spec);
      if (sel.empty()) continue;
      IDB_RETURN_NOT_OK(Emit(graph, out, Interaction::SetSelection(hub, sel)));
    } else if (roll < 0.75) {
      FilterExpr f;
      f.And(MakeFilterPredicate(config_.min_filter_selectivity,
                                config_.max_filter_selectivity));
      IDB_RETURN_NOT_OK(Emit(graph, out, Interaction::SetFilter(hub, f)));
    } else if (static_cast<int>(graph->VizNames().size()) < config_.max_vizs) {
      const std::string t = "viz_" + std::to_string(next_viz_id_++);
      IDB_RETURN_NOT_OK(
          Emit(graph, out, Interaction::CreateViz(MakeVizSpec(t))));
      IDB_RETURN_NOT_OK(Emit(graph, out, Interaction::Link(hub, t)));
      targets.push_back(t);
    } else {
      // Dashboard full: refine a random target's own filter instead.
      const std::string& t =
          targets[static_cast<size_t>(rng_.UniformInt(
              0, static_cast<int64_t>(targets.size()) - 1))];
      FilterExpr f;
      f.And(MakeFilterPredicate(config_.min_filter_selectivity,
                                config_.max_filter_selectivity));
      IDB_RETURN_NOT_OK(Emit(graph, out, Interaction::SetFilter(t, f)));
    }
  }
  return Status::OK();
}

Status WorkflowGenerator::GenerateNToOne(VizGraph* graph, Workflow* out,
                                         int target) {
  // N filter vizs feeding one target viz.
  const int64_t n_sources = rng_.UniformInt(2, 4);
  std::vector<std::string> sources;
  for (int64_t i = 0; i < n_sources; ++i) {
    const std::string s = "viz_" + std::to_string(next_viz_id_++);
    IDB_RETURN_NOT_OK(Emit(graph, out, Interaction::CreateViz(MakeVizSpec(s))));
    sources.push_back(s);
  }
  const std::string sink = "viz_" + std::to_string(next_viz_id_++);
  IDB_RETURN_NOT_OK(Emit(graph, out, Interaction::CreateViz(MakeVizSpec(sink))));
  for (const std::string& s : sources) {
    IDB_RETURN_NOT_OK(Emit(graph, out, Interaction::Link(s, sink)));
  }

  while (static_cast<int>(out->interactions.size()) < target) {
    const std::string& s = sources[static_cast<size_t>(
        rng_.UniformInt(0, static_cast<int64_t>(sources.size()) - 1))];
    if (rng_.Bernoulli(0.6)) {
      IDB_ASSIGN_OR_RETURN(query::VizSpec spec, graph->GetViz(s));
      const FilterExpr sel = MakeSelectionFor(spec);
      if (sel.empty()) continue;
      IDB_RETURN_NOT_OK(Emit(graph, out, Interaction::SetSelection(s, sel)));
    } else {
      FilterExpr f;
      f.And(MakeFilterPredicate(config_.min_filter_selectivity,
                                config_.max_filter_selectivity));
      IDB_RETURN_NOT_OK(Emit(graph, out, Interaction::SetFilter(s, f)));
    }
  }
  return Status::OK();
}

Status WorkflowGenerator::GenerateMixed(VizGraph* graph, Workflow* out,
                                        int target) {
  while (static_cast<int>(out->interactions.size()) < target) {
    const std::vector<std::string> names = graph->VizNames();
    const int live = static_cast<int>(names.size());
    const double roll = rng_.NextDouble();
    if (live == 0 || (roll < 0.30 && live < config_.max_vizs)) {
      const std::string v = "viz_" + std::to_string(next_viz_id_++);
      IDB_RETURN_NOT_OK(
          Emit(graph, out, Interaction::CreateViz(MakeVizSpec(v))));
      // Half of new vizs get linked to an existing one.
      if (live >= 1 && rng_.Bernoulli(0.5)) {
        const std::string& from =
            names[static_cast<size_t>(rng_.UniformInt(0, live - 1))];
        Status st = Emit(graph, out, Interaction::Link(from, v));
        if (!st.ok()) continue;  // cycle rejected; skip the link
      }
    } else if (roll < 0.58) {
      const std::string& viz =
          names[static_cast<size_t>(rng_.UniformInt(0, live - 1))];
      FilterExpr f;
      f.And(MakeFilterPredicate(config_.min_filter_selectivity,
                                config_.max_filter_selectivity));
      IDB_RETURN_NOT_OK(Emit(graph, out, Interaction::SetFilter(viz, f)));
    } else if (roll < 0.85) {
      const std::string& viz =
          names[static_cast<size_t>(rng_.UniformInt(0, live - 1))];
      IDB_ASSIGN_OR_RETURN(query::VizSpec spec, graph->GetViz(viz));
      const FilterExpr sel = MakeSelectionFor(spec);
      if (sel.empty()) continue;
      IDB_RETURN_NOT_OK(Emit(graph, out, Interaction::SetSelection(viz, sel)));
    } else if (roll < 0.95 && live >= 2) {
      const std::string& from =
          names[static_cast<size_t>(rng_.UniformInt(0, live - 1))];
      const std::string& to =
          names[static_cast<size_t>(rng_.UniformInt(0, live - 1))];
      if (from == to) continue;
      Status st = Emit(graph, out, Interaction::Link(from, to));
      if (!st.ok()) continue;  // duplicate or cycle; try something else
    } else if (live >= 3) {
      const std::string& viz =
          names[static_cast<size_t>(rng_.UniformInt(0, live - 1))];
      IDB_RETURN_NOT_OK(Emit(graph, out, Interaction::Discard(viz)));
    }
  }
  return Status::OK();
}

Result<Workflow> WorkflowGenerator::Generate(WorkflowType type,
                                             const std::string& name) {
  Workflow out;
  out.name = name;
  out.type = type;
  next_viz_id_ = 0;
  VizGraph graph;
  const int target = static_cast<int>(
      rng_.UniformInt(config_.min_interactions, config_.max_interactions));
  Status st;
  switch (type) {
    case WorkflowType::kIndependent:
      st = GenerateIndependent(&graph, &out, target);
      break;
    case WorkflowType::kSequential:
      st = GenerateSequential(&graph, &out, target);
      break;
    case WorkflowType::kOneToN:
      st = GenerateOneToN(&graph, &out, target);
      break;
    case WorkflowType::kNToOne:
      st = GenerateNToOne(&graph, &out, target);
      break;
    case WorkflowType::kMixed:
      st = GenerateMixed(&graph, &out, target);
      break;
  }
  IDB_RETURN_NOT_OK(st);
  return out;
}

Result<std::vector<Workflow>> WorkflowGenerator::GenerateDefaultSuite(
    int per_type) {
  std::vector<Workflow> out;
  for (WorkflowType type : AllWorkflowTypes()) {
    for (int i = 0; i < per_type; ++i) {
      const std::string name =
          std::string(WorkflowTypeName(type)) + "_" + std::to_string(i);
      IDB_ASSIGN_OR_RETURN(Workflow w, Generate(type, name));
      out.push_back(std::move(w));
    }
  }
  return out;
}

}  // namespace idebench::workflow
