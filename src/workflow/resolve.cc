#include "workflow/resolve.h"

#include <string>
#include <utility>

#include "expr/predicate.h"
#include "storage/table.h"

namespace idebench::workflow {

Status ResolveQueryAgainst(const storage::Catalog& catalog,
                           query::QuerySpec* spec) {
  IDB_RETURN_NOT_OK(spec->ResolveBins(catalog));
  // Rewrite label-based nominal predicates to the owning column's
  // dictionary codes (workflow files are portable across catalog layouts;
  // codes are not).
  std::vector<expr::Predicate> rewritten;
  for (expr::Predicate p : spec->filter.predicates()) {
    if (!p.string_values.empty()) {
      IDB_ASSIGN_OR_RETURN(const storage::Table* owner,
                           catalog.TableForColumn(p.column));
      const storage::Column* col = owner->ColumnByName(p.column);
      if (col != nullptr && col->type() == storage::DataType::kString) {
        if (p.op == expr::CompareOp::kIn) {
          p.set_values.clear();
          for (const std::string& label : p.string_values) {
            const int64_t code = col->dictionary().Lookup(label);
            // Labels unknown in this catalog select nothing; encode as an
            // impossible code rather than dropping the predicate.
            p.set_values.push_back(code >= 0 ? static_cast<double>(code)
                                             : -1.0);
          }
        } else {
          const int64_t code = col->dictionary().Lookup(p.string_values[0]);
          p.value = code >= 0 ? static_cast<double>(code) : -1.0;
        }
      }
    }
    rewritten.push_back(std::move(p));
  }
  spec->filter = expr::FilterExpr(std::move(rewritten));
  return Status::OK();
}

Status ApplyInteraction(const storage::Catalog& catalog,
                        const Interaction& interaction, VizGraph* graph,
                        std::vector<query::QuerySpec>* specs) {
  std::vector<std::string> affected;
  IDB_RETURN_NOT_OK(graph->Apply(interaction, &affected));
  specs->reserve(specs->size() + affected.size());
  for (const std::string& viz_name : affected) {
    IDB_ASSIGN_OR_RETURN(query::QuerySpec spec, graph->BuildQuery(viz_name));
    IDB_RETURN_NOT_OK(ResolveQueryAgainst(catalog, &spec));
    specs->push_back(std::move(spec));
  }
  return Status::OK();
}

Status ForEachInteraction(
    const storage::Catalog& catalog, const Workflow& wf,
    const std::function<Status(const Interaction& interaction,
                               int64_t interaction_id,
                               std::vector<query::QuerySpec>& specs)>& fn) {
  VizGraph graph;
  for (size_t i = 0; i < wf.interactions.size(); ++i) {
    const Interaction& interaction = wf.interactions[i];
    std::vector<query::QuerySpec> specs;
    IDB_RETURN_NOT_OK(ApplyInteraction(catalog, interaction, &graph, &specs));
    IDB_RETURN_NOT_OK(fn(interaction, static_cast<int64_t>(i), specs));
  }
  return Status::OK();
}

}  // namespace idebench::workflow
