#ifndef IDEBENCH_WORKFLOW_WORKFLOW_H_
#define IDEBENCH_WORKFLOW_WORKFLOW_H_

/// \file workflow.h
/// A workflow: a named, typed sequence of interactions (paper §4.3).

#include <string>
#include <vector>

#include "common/json.h"
#include "common/result.h"
#include "workflow/interaction.h"

namespace idebench::workflow {

/// The four IDE browsing patterns of the paper (Figure 3) plus "mixed".
enum class WorkflowType : uint8_t {
  kIndependent = 0,  // unlinked overview browsing
  kSequential = 1,   // chain of linked vizs (targeted drill-down)
  kOneToN = 2,       // one source viz fans out to N linked targets
  kNToOne = 3,       // N filter vizs feed one target
  kMixed = 4,        // segments of all four
};

/// Stable name ("independent", "sequential", "one_to_n", "n_to_one",
/// "mixed").
const char* WorkflowTypeName(WorkflowType type);

/// Parses a stable name back to the enum.
Result<WorkflowType> WorkflowTypeFromName(const std::string& name);

/// All five workflow types, in declaration order.
const std::vector<WorkflowType>& AllWorkflowTypes();

/// A named sequence of interactions.
struct Workflow {
  std::string name;
  WorkflowType type = WorkflowType::kMixed;
  std::vector<Interaction> interactions;

  /// Number of interactions.
  size_t size() const { return interactions.size(); }

  /// JSON round-trip; `SaveToFile`/`LoadFromFile` for the on-disk format.
  JsonValue ToJson() const;
  static Result<Workflow> FromJson(const JsonValue& j);

  Status SaveToFile(const std::string& path) const;
  static Result<Workflow> LoadFromFile(const std::string& path);
};

}  // namespace idebench::workflow

#endif  // IDEBENCH_WORKFLOW_WORKFLOW_H_
