#ifndef IDEBENCH_WORKFLOW_RESOLVE_H_
#define IDEBENCH_WORKFLOW_RESOLVE_H_

/// \file resolve.h
/// Catalog-aware interaction replay: the single definition of "which
/// executable queries does an interaction trigger".  Shared by the
/// benchmark driver (driver/benchmark_driver.h keeps thin forwarding
/// wrappers), the session serving layer (session/session.h), and the
/// test harnesses, so their query enumeration can never drift apart.

#include <functional>
#include <vector>

#include "common/result.h"
#include "query/spec.h"
#include "storage/catalog.h"
#include "workflow/viz_graph.h"
#include "workflow/workflow.h"

namespace idebench::workflow {

/// Resolves an executable query against `catalog`: resolves bin
/// boundaries and rewrites nominal predicates expressed as string labels
/// into the owning column's dictionary codes (workflow files are portable
/// across catalog layouts; codes are not).
Status ResolveQueryAgainst(const storage::Catalog& catalog,
                           query::QuerySpec* spec);

/// Applies one interaction to `graph` and appends the resolved executable
/// query of every affected viz to `specs` (each spec carries its viz
/// name), in the graph's deterministic update order.  The per-interaction
/// core of `ForEachInteraction`, exposed so incremental clients (sessions)
/// trigger exactly the queries a batch replay would.
Status ApplyInteraction(const storage::Catalog& catalog,
                        const Interaction& interaction, VizGraph* graph,
                        std::vector<query::QuerySpec>* specs);

/// Replays `wf`'s interactions on a fresh dashboard graph and invokes
/// `fn(interaction, interaction_id, specs)` once per interaction in
/// driver order, where `specs` holds the resolved executable query of
/// every affected viz.
Status ForEachInteraction(
    const storage::Catalog& catalog, const Workflow& wf,
    const std::function<Status(const Interaction& interaction,
                               int64_t interaction_id,
                               std::vector<query::QuerySpec>& specs)>& fn);

}  // namespace idebench::workflow

#endif  // IDEBENCH_WORKFLOW_RESOLVE_H_
