#include "session/session.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "workflow/resolve.h"

namespace idebench::session {

using workflow::Interaction;
using workflow::InteractionType;

// --- ExplorationSession ----------------------------------------------------

Result<std::vector<SubmittedQuery>> ExplorationSession::SubmitInteraction(
    const Interaction& interaction, double budget_scale) {
  if (closed_) return Status::Invalid("session is closed");
  if (!(budget_scale > 0.0) || budget_scale > 1.0) {
    return Status::Invalid("budget_scale must be in (0, 1]");
  }
  // Forward dashboard hints before any submission (seed driver order).
  // Engine-facing names are session-qualified: per-viz engine state
  // (speculation specs, link edges, per-viz reuse snapshots) must never
  // collide across sessions sharing the engine.
  if (interaction.type == InteractionType::kLink) {
    manager_->engine()->LinkVizs(
        SessionManager::QualifiedViz(id_, interaction.link_from),
        SessionManager::QualifiedViz(id_, interaction.link_to));
  } else if (interaction.type == InteractionType::kDiscard) {
    manager_->engine()->DiscardViz(
        SessionManager::QualifiedViz(id_, interaction.viz_name));
  }
  std::vector<query::QuerySpec> specs;
  IDB_RETURN_NOT_OK(workflow::ApplyInteraction(manager_->catalog(),
                                               interaction, &graph_, &specs));
  return manager_->SubmitBatch(this, next_interaction_id_++, std::move(specs),
                               budget_scale);
}

Status ExplorationSession::Cancel(int64_t query_id) {
  auto it = manager_->queries_.find(query_id);
  // Idempotent: unknown ids and queries that already finished (or belong
  // to another session) are simply not ours to cancel anymore.
  if (it == manager_->queries_.end() || it->second.session != this) {
    return Status::OK();
  }
  return manager_->Finalize(&it->second,
                            SessionManager::FinalizeReason::kClientCancel);
}

Result<std::vector<SubmittedQuery>> ExplorationSession::LinkVizs(
    const std::string& from, const std::string& to) {
  return SubmitInteraction(Interaction::Link(from, to));
}

Result<std::vector<SubmittedQuery>> ExplorationSession::DiscardViz(
    const std::string& viz) {
  return SubmitInteraction(Interaction::Discard(viz));
}

void ExplorationSession::Think(Micros duration) {
  manager_->engine()->OnThink(duration);
}

void ExplorationSession::ResetDashboard() { graph_.Clear(); }

// --- SessionManager --------------------------------------------------------

std::string SessionManager::QualifiedViz(int64_t session_id,
                                         const std::string& viz) {
  if (viz.empty()) return viz;
  return "s" + std::to_string(session_id) + "/" + viz;
}

SessionManager::SessionManager(SessionManagerOptions options,
                               engines::Engine* engine,
                               std::shared_ptr<const storage::Catalog> catalog)
    : options_(options), engine_(engine), catalog_(std::move(catalog)) {}

SessionManager::~SessionManager() {
  in_destructor_ = true;
  // Detach every sink first: on an error-path unwind the client's sinks
  // may be destroyed before the manager, so the implicit close must not
  // push updates into them.
  for (auto& [id, q] : queries_) q.sink = nullptr;
  for (const auto& s : sessions_) s->sink_ = nullptr;
  std::vector<ExplorationSession*> open;
  open.reserve(sessions_.size());
  for (const auto& s : sessions_) open.push_back(s.get());
  for (ExplorationSession* s : open) {
    const Status st = CloseSession(s);
    (void)st;
  }
}

Result<ExplorationSession*> SessionManager::CreateSession(ResultSink* sink) {
  auto session = std::unique_ptr<ExplorationSession>(
      new ExplorationSession(this, next_session_id_++, sink));
  ExplorationSession* handle = session.get();
  const bool first_session = open_sessions_ == 0;
  sessions_.push_back(std::move(session));
  ++open_sessions_;
  ++stats_.sessions_opened;
  // Notify the engine only when serving starts (no session was open):
  // WorkflowStart resets engine-wide state (reuse snapshots, link hints),
  // which must not be wiped from under other live sessions just because a
  // new user arrived.  With sequential single-session clients (the
  // benchmark driver) this fires for every session — seed behavior.
  if (first_session) engine_->WorkflowStart();
  return handle;
}

Status SessionManager::CloseSession(ExplorationSession* session) {
  auto it = std::find_if(
      sessions_.begin(), sessions_.end(),
      [session](const auto& owned) { return owned.get() == session; });
  if (it == sessions_.end()) {
    return Status::Invalid("session does not belong to this manager");
  }
  if (session->closed_) return Status::OK();  // idempotent double close
  // Cancel whatever the session still has in flight.  During manager
  // destruction poll faults are moot — everything is being torn down.
  const std::vector<int64_t> order = run_queue_;
  for (int64_t id : order) {
    auto qit = queries_.find(id);
    if (qit == queries_.end() || qit->second.session != session) continue;
    IDB_RETURN_NOT_OK(Finalize(&qit->second, FinalizeReason::kClientCancel,
                               /*swallow_poll_error=*/in_destructor_));
  }
  session->closed_ = true;
  --open_sessions_;
  // The closed handle is retained in sessions_ so later calls through a
  // stale pointer fail cleanly.  Mirror of CreateSession: the engine
  // learns serving ended only when the last open session closes.
  if (open_sessions_ == 0) engine_->WorkflowEnd();
  return Status::OK();
}

Result<std::vector<SubmittedQuery>> SessionManager::SubmitBatch(
    ExplorationSession* session, int64_t interaction_id,
    std::vector<query::QuerySpec> specs, double budget_scale) {
  // Contention factor at admission: the batch runs alongside everything
  // already live.  With a single session this degenerates to the seed
  // driver's per-interaction concurrency (nothing else is live when an
  // interaction is submitted), including unsupported queries in the count.
  const int n = static_cast<int>(run_queue_.size() + specs.size());
  Micros budget = options_.time_requirement;
  if (n > 1 && options_.contention_penalty > 0.0) {
    budget = static_cast<Micros>(
        static_cast<double>(budget) /
        (1.0 + options_.contention_penalty * static_cast<double>(n - 1)));
  }
  if (budget_scale < 1.0) {
    // Graceful degradation: the ratekeeper shrinks the compute
    // entitlement, not the deadline — degraded queries answer on time
    // from a smaller sample instead of answering late.
    budget = std::max<Micros>(
        1, static_cast<Micros>(static_cast<double>(budget) * budget_scale));
  }

  std::vector<SubmittedQuery> out;
  out.reserve(specs.size());
  for (query::QuerySpec& spec : specs) {
    SubmittedQuery sq;
    sq.query_id = next_query_id_++;
    sq.spec = std::move(spec);
    ++stats_.queries_submitted;
    // The engine sees the session-qualified name; the client-facing
    // SubmittedQuery/updates keep the raw one.  Names are excluded from
    // query signatures, so qualification never perturbs walk offsets or
    // reuse keys — single-session results stay bit-identical.
    query::QuerySpec engine_spec = sq.spec;
    engine_spec.viz_name = QualifiedViz(session->id_, engine_spec.viz_name);
    auto submit = engine_->Submit(engine_spec);
    bool pending = false;
    if (!submit.ok()) {
      const StatusCode code = submit.status().code();
      if (code == StatusCode::kNotImplemented) {
        // The engine cannot run this query at all: report it as a final
        // unsupported update with nothing delivered.
        sq.unsupported = true;
        ++stats_.unsupported;
        if (session->sink_ != nullptr) {
          ProgressiveUpdate u;
          u.session_id = session->id_;
          u.query_id = sq.query_id;
          u.interaction_id = interaction_id;
          u.viz_name = sq.spec.viz_name;
          u.confidence = options_.confidence_level;
          u.virtual_time = virtual_now_;
          u.budget = budget;
          u.final_update = true;
          u.unsupported = true;
          session->sink_->OnUpdate(u);
          ++stats_.updates_pushed;
        }
        out.push_back(std::move(sq));
        continue;
      }
      if (!IsTransientEngineError(code)) return submit.status();
      // Transient submission failure: admit the query as *pending* — it
      // enters the scheduler with no engine handle and a backed-off
      // retry time; its deadline and entitlement run from now like any
      // other admission.
      pending = true;
    }

    LiveQuery q;
    q.query_id = sq.query_id;
    q.session_id = session->id_;
    q.interaction_id = interaction_id;
    q.viz_name = sq.spec.viz_name;
    q.spec = std::move(engine_spec);  // qualified: retries resubmit as-is
    q.handle = pending ? -1 : *submit;
    q.sink = session->sink_;
    q.session = session;
    q.submit_time = virtual_now_;
    q.deadline = virtual_now_ + options_.time_requirement;
    q.budget = budget;
    queries_.emplace(q.query_id, q);
    run_queue_.push_back(q.query_id);
    ++session->live_;
    if (pending) {
      auto qit = queries_.find(q.query_id);
      IDB_RETURN_NOT_OK(HandleEngineFault(&qit->second, submit.status()));
    }
    out.push_back(std::move(sq));
  }
  return out;
}

Micros SessionManager::EntitledAt(const LiveQuery& q, Micros t) const {
  const Micros t_eff = std::min(t, q.deadline);
  const Micros elapsed = t_eff - q.submit_time;
  if (elapsed <= 0) return 0;
  const Micros tr = options_.time_requirement;
  if (elapsed >= tr) return q.budget;
  return static_cast<Micros>(static_cast<__int128>(elapsed) * q.budget / tr);
}

Micros SessionManager::MinDeadline() const {
  Micros min_deadline = std::numeric_limits<Micros>::max();
  for (const auto& [id, q] : queries_) {
    min_deadline = std::min(min_deadline, q.deadline);
  }
  return min_deadline;
}

Micros SessionManager::NextWakeup() const {
  Micros t = MinDeadline();
  for (const auto& [id, q] : queries_) {
    if (q.handle < 0) t = std::min(t, std::max(q.retry_at, virtual_now_));
  }
  return t;
}

// --- Ingest channel --------------------------------------------------------

void SessionManager::AttachIngest(ingest::Ingestor* ingestor) {
  ingestor_ = ingestor;
}

Status SessionManager::EnqueueAppend(ingest::RowBatch batch, Micros at,
                                     bool publish) {
  if (ingestor_ == nullptr) {
    return Status::Invalid("no ingestor attached to this manager");
  }
  if (batch.empty() && !publish) return Status::OK();  // nothing to do
  IngestEvent event;
  event.batch = std::move(batch);
  event.publish = publish;
  ingest_events_.emplace(std::max(at, virtual_now_), std::move(event));
  ++ingest_stats_.events_enqueued;
  return Status::OK();
}

Micros SessionManager::NextIngestAt() const {
  return ingest_events_.empty() ? std::numeric_limits<Micros>::max()
                                : ingest_events_.begin()->first;
}

void SessionManager::DrainIngest() {
  // Runs on the scheduling thread strictly between engine calls — the
  // Ingestor's single-writer protocol.  Zero virtual cost: visibility
  // changes instantly at the event's scheduled time, and no query loses
  // entitlement to it (deadline overshoot stays 0 by construction).
  // Failures are weather (chaos faults, capacity, bad rows): counted,
  // never propagated — staged rows simply wait for a later publish.
  while (!ingest_events_.empty() &&
         ingest_events_.begin()->first <= virtual_now_) {
    IngestEvent event = std::move(ingest_events_.begin()->second);
    ingest_events_.erase(ingest_events_.begin());
    if (!event.batch.empty()) {
      const Status st = ingestor_->Append(event.batch);
      if (st.ok()) {
        ++ingest_stats_.batches_applied;
        ingest_stats_.rows_applied += event.batch.size();
      } else {
        ++ingest_stats_.append_failures;
      }
    }
    if (event.publish) {
      const int64_t before = ingestor_->visible_rows();
      auto watermark = ingestor_->Publish();
      if (watermark.ok()) {
        if (*watermark > before) ++ingest_stats_.publishes;
      } else {
        ++ingest_stats_.publish_failures;
      }
    }
  }
}

bool SessionManager::IsTransientEngineError(StatusCode code) {
  switch (code) {
    case StatusCode::kIoError:
    case StatusCode::kResourceExhausted:
    case StatusCode::kCancelled:
    case StatusCode::kUnknown:
      return true;
    default:
      return false;
  }
}

Status SessionManager::HandleEngineFault(LiveQuery* q, const Status& error) {
  if (!IsTransientEngineError(error.code())) return error;
  ++stats_.transient_faults;
  if (q->handle >= 0) {
    // Drop the wedged handle.  Engine Cancel may snapshot the partial
    // aggregate into the reuse cache — fine, the cache only displaces
    // physical work — and the retry resubmits from a clean handle.
    engine_->Cancel(q->handle);
    q->handle = -1;
    q->last_pushed_rows = -1;
  }
  ++q->faults;
  if (q->faults > options_.max_engine_retries) {
    return Finalize(q, FinalizeReason::kFailed);
  }
  // Exponential backoff in virtual time: 1x, 2x, 4x, ... of the base.
  // The deadline keeps running, so backoff spends the query's own TR
  // window; FinalizeOverdue still fires exactly at the deadline.
  q->retry_at =
      virtual_now_ + (options_.retry_backoff << std::min(q->faults - 1, 20));
  return Status::OK();
}

ProgressiveUpdate SessionManager::MakeUpdate(const LiveQuery& q) const {
  ProgressiveUpdate u;
  u.session_id = q.session_id;
  u.query_id = q.query_id;
  u.interaction_id = q.interaction_id;
  u.viz_name = q.viz_name;
  u.confidence = options_.confidence_level;
  u.virtual_time = virtual_now_;
  u.consumed = q.consumed;
  u.budget = q.budget;
  return u;
}

void SessionManager::PushPartial(LiveQuery* q) {
  auto result = engine_->PollResult(q->handle);
  if (!result.ok() || !result->available) return;
  // Stream only when new bins materialized since the last push.
  if (result->rows_processed == q->last_pushed_rows) return;
  q->last_pushed_rows = result->rows_processed;
  ProgressiveUpdate u = MakeUpdate(*q);
  u.result = std::move(result).MoveValueUnsafe();
  u.progress = u.result.progress;
  q->sink->OnUpdate(u);
  ++stats_.updates_pushed;
  ++stats_.partial_updates;
}

Status SessionManager::Finalize(LiveQuery* q, FinalizeReason reason,
                                bool swallow_poll_error) {
  ProgressiveUpdate u = MakeUpdate(*q);
  u.final_update = true;
  bool poll_failed = false;
  Status poll_status = Status::OK();
  if (q->handle >= 0) {
    u.completed =
        reason == FinalizeReason::kCompleted && engine_->IsDone(q->handle);
    auto result = engine_->PollResult(q->handle);
    poll_failed = !result.ok();
    if (poll_failed) {
      poll_status = result.status();
    } else {
      u.result = std::move(result).MoveValueUnsafe();
    }
    engine_->Cancel(q->handle);
  }
  u.cancelled = reason == FinalizeReason::kDeadline ||
                reason == FinalizeReason::kClientCancel;
  u.failed = reason == FinalizeReason::kFailed;
  u.progress = u.result.progress;

  switch (reason) {
    case FinalizeReason::kCompleted:
      ++stats_.completed;
      break;
    case FinalizeReason::kDeadline:
      ++stats_.deadline_cancelled;
      stats_.max_deadline_overshoot = std::max(stats_.max_deadline_overshoot,
                                               virtual_now_ - q->deadline);
      break;
    case FinalizeReason::kClientCancel:
      ++stats_.client_cancelled;
      break;
    case FinalizeReason::kFailed:
      ++stats_.failed;
      break;
  }

  ResultSink* sink = q->sink;
  ExplorationSession* session = q->session;
  const int64_t id = q->query_id;
  --session->live_;
  run_queue_.erase(std::remove(run_queue_.begin(), run_queue_.end(), id),
                   run_queue_.end());
  queries_.erase(id);  // `q` is dangling from here on
  ++finalized_events_;
  if (poll_failed && !swallow_poll_error &&
      !IsTransientEngineError(poll_status.code())) {
    // A programming-error poll status (unknown handle etc.) is a bug,
    // not weather: the query is retired, but the run aborts the way the
    // seed driver's pull loop did (no update is pushed).
    return poll_status;
  }
  // A transient poll failure degrades to an unavailable result — the
  // query still receives exactly one terminal update.
  if (sink != nullptr) {
    sink->OnUpdate(u);
    ++stats_.updates_pushed;
  }
  return Status::OK();
}

Status SessionManager::RunSliceTo(Micros slice_end) {
  // One round-robin pass in admission order; every live query receives
  // the compute entitlement it accrued up to `slice_end`.  The RunFor
  // loop of each turn replicates the seed driver's; completed queries
  // finalize at the end of their own turn (see the seed-parity note in
  // session.h).
  const std::vector<int64_t> order = run_queue_;
  for (int64_t id : order) {
    auto it = queries_.find(id);
    if (it == queries_.end()) continue;  // finalized earlier in this pass
    LiveQuery& q = it->second;
    if (q.handle < 0) {
      // Pending after a transient fault: resubmit once its backoff
      // elapsed.  A successful resubmission rejoins the round-robin in
      // this very pass with the full entitlement accrued while waiting.
      if (virtual_now_ < q.retry_at) continue;
      auto submit = engine_->Submit(q.spec);
      if (!submit.ok()) {
        IDB_RETURN_NOT_OK(HandleEngineFault(&q, submit.status()));
        continue;  // retired or rescheduled; `q` may be dangling
      }
      q.handle = *submit;
      ++stats_.retries;
    }
    const Micros entitled = EntitledAt(q, slice_end);
    Micros remaining = entitled - q.offered;
    q.offered = entitled;
    while (remaining > 0 && !engine_->IsDone(q.handle)) {
      const Micros step = engine_->RunFor(q.handle, remaining);
      if (step <= 0) break;
      q.consumed += step;
      remaining -= step;
    }
    if (engine_->IsDone(q.handle)) {
      IDB_RETURN_NOT_OK(Finalize(&q, FinalizeReason::kCompleted));
    } else if (remaining > 0) {
      // The engine refused budget it was entitled to: every engine here
      // consumes its whole slice while running, so a zero step with
      // entitlement left means the handle wedged.  Probe to distinguish
      // an injected run fault (retry) from a genuine programming error
      // (abort, seed semantics).
      auto probe = engine_->PollResult(q.handle);
      if (!probe.ok()) {
        IDB_RETURN_NOT_OK(HandleEngineFault(&q, probe.status()));
        continue;  // retired or rescheduled; `q` may be dangling
      }
      if (options_.push_partials && q.sink != nullptr) PushPartial(&q);
    } else if (options_.push_partials && q.sink != nullptr) {
      PushPartial(&q);
    }
  }
  return Status::OK();
}

Status SessionManager::FinalizeOverdue() {
  const std::vector<int64_t> order = run_queue_;
  for (int64_t id : order) {
    auto it = queries_.find(id);
    if (it == queries_.end()) continue;
    if (it->second.deadline <= virtual_now_) {
      IDB_RETURN_NOT_OK(Finalize(&it->second, FinalizeReason::kDeadline));
    }
  }
  return Status::OK();
}

Status SessionManager::AdvanceTo(Micros t) {
  while (true) {
    DrainIngest();  // due appends/publishes apply between engine calls
    IDB_RETURN_NOT_OK(FinalizeOverdue());
    if (virtual_now_ >= t) return Status::OK();
    if (run_queue_.empty()) {
      // Idle gap: virtual time is free, but land exactly on each queued
      // ingest event so visibility changes at its scheduled instant.
      virtual_now_ = std::min(t, NextIngestAt());
      continue;
    }
    const Micros horizon = std::min({t, NextWakeup(), NextIngestAt()});
    Micros slice_end = horizon;
    if (options_.quantum > 0) {
      slice_end = std::min(horizon, virtual_now_ + options_.quantum);
    }
    virtual_now_ = slice_end;
    IDB_RETURN_NOT_OK(RunSliceTo(slice_end));
  }
}

Result<int> SessionManager::StepUntilEvent(Micros cap) {
  const int64_t before = finalized_events_;
  while (true) {
    DrainIngest();  // due appends/publishes apply between engine calls
    IDB_RETURN_NOT_OK(FinalizeOverdue());
    if (finalized_events_ > before) {
      return static_cast<int>(finalized_events_ - before);
    }
    if (virtual_now_ >= cap) return 0;
    if (run_queue_.empty()) {
      virtual_now_ = std::min(cap, NextIngestAt());
      continue;
    }
    const Micros horizon = std::min({cap, NextWakeup(), NextIngestAt()});
    Micros slice_end = horizon;
    if (options_.quantum > 0) {
      slice_end = std::min(horizon, virtual_now_ + options_.quantum);
    }
    virtual_now_ = slice_end;
    IDB_RETURN_NOT_OK(RunSliceTo(slice_end));
  }
}

Status SessionManager::RunUntilIdle() {
  while (HasLive() || !ingest_events_.empty()) {
    if (!HasLive()) {
      // No queries to schedule: jump straight to the next ingest instant
      // and apply it — enqueued publishes must not be lost just because
      // the fleet went quiet (queries submitted later depend on them).
      virtual_now_ = std::max(virtual_now_, NextIngestAt());
      DrainIngest();
      continue;
    }
    IDB_ASSIGN_OR_RETURN(int finalized, StepUntilEvent(MinDeadline()));
    (void)finalized;
  }
  return Status::OK();
}

SchedulerStats SessionManager::stats() const {
  SchedulerStats s = stats_;
  s.virtual_now = virtual_now_;
  return s;
}

Status ReplaySessionsToCompletion(SessionManager* manager,
                                  const std::vector<SessionReplay>& runs,
                                  Micros think_time, Micros step_cap) {
  std::vector<size_t> next(runs.size(), 0);
  while (true) {
    bool pending = false;
    for (size_t i = 0; i < runs.size(); ++i) {
      const workflow::Workflow& wf = *runs[i].workflow;
      if (next[i] < wf.interactions.size()) pending = true;
      // A session submits its next interaction once its previous batch
      // fully finalized (every update pushed).
      if (runs[i].session->live_queries() > 0 ||
          next[i] >= wf.interactions.size()) {
        continue;
      }
      runs[i].session->Think(think_time);
      IDB_ASSIGN_OR_RETURN(std::vector<SubmittedQuery> submitted,
                           runs[i].session->SubmitInteraction(
                               wf.interactions[next[i]]));
      (void)submitted;
      ++next[i];
    }
    if (!pending && !manager->HasLive()) return Status::OK();
    if (manager->HasLive()) {
      IDB_ASSIGN_OR_RETURN(
          int finalized,
          manager->StepUntilEvent(manager->VirtualNow() + step_cap));
      (void)finalized;
    }
  }
}

}  // namespace idebench::session
