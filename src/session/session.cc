#include "session/session.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "workflow/resolve.h"

namespace idebench::session {

using workflow::Interaction;
using workflow::InteractionType;

// --- ExplorationSession ----------------------------------------------------

Result<std::vector<SubmittedQuery>> ExplorationSession::SubmitInteraction(
    const Interaction& interaction) {
  if (closed_) return Status::Invalid("session is closed");
  // Forward dashboard hints before any submission (seed driver order).
  if (interaction.type == InteractionType::kLink) {
    manager_->engine()->LinkVizs(interaction.link_from, interaction.link_to);
  } else if (interaction.type == InteractionType::kDiscard) {
    manager_->engine()->DiscardViz(interaction.viz_name);
  }
  std::vector<query::QuerySpec> specs;
  IDB_RETURN_NOT_OK(workflow::ApplyInteraction(manager_->catalog(),
                                               interaction, &graph_, &specs));
  return manager_->SubmitBatch(this, next_interaction_id_++,
                               std::move(specs));
}

Status ExplorationSession::Cancel(int64_t query_id) {
  auto it = manager_->queries_.find(query_id);
  // Idempotent: unknown ids and queries that already finished (or belong
  // to another session) are simply not ours to cancel anymore.
  if (it == manager_->queries_.end() || it->second.session != this) {
    return Status::OK();
  }
  return manager_->Finalize(&it->second,
                            SessionManager::FinalizeReason::kClientCancel);
}

Result<std::vector<SubmittedQuery>> ExplorationSession::LinkVizs(
    const std::string& from, const std::string& to) {
  return SubmitInteraction(Interaction::Link(from, to));
}

Result<std::vector<SubmittedQuery>> ExplorationSession::DiscardViz(
    const std::string& viz) {
  return SubmitInteraction(Interaction::Discard(viz));
}

void ExplorationSession::Think(Micros duration) {
  manager_->engine()->OnThink(duration);
}

void ExplorationSession::ResetDashboard() { graph_.Clear(); }

// --- SessionManager --------------------------------------------------------

SessionManager::SessionManager(SessionManagerOptions options,
                               engines::Engine* engine,
                               std::shared_ptr<const storage::Catalog> catalog)
    : options_(options), engine_(engine), catalog_(std::move(catalog)) {}

SessionManager::~SessionManager() {
  in_destructor_ = true;
  // Detach every sink first: on an error-path unwind the client's sinks
  // may be destroyed before the manager, so the implicit close must not
  // push updates into them.
  for (auto& [id, q] : queries_) q.sink = nullptr;
  for (const auto& s : sessions_) s->sink_ = nullptr;
  std::vector<ExplorationSession*> open;
  open.reserve(sessions_.size());
  for (const auto& s : sessions_) open.push_back(s.get());
  for (ExplorationSession* s : open) {
    const Status st = CloseSession(s);
    (void)st;
  }
}

Result<ExplorationSession*> SessionManager::CreateSession(ResultSink* sink) {
  auto session = std::unique_ptr<ExplorationSession>(
      new ExplorationSession(this, next_session_id_++, sink));
  ExplorationSession* handle = session.get();
  const bool first_session = sessions_.empty();
  sessions_.push_back(std::move(session));
  ++stats_.sessions_opened;
  // Notify the engine only when serving starts (no session was open):
  // WorkflowStart resets engine-wide state (reuse snapshots, link hints),
  // which must not be wiped from under other live sessions just because a
  // new user arrived.  With sequential single-session clients (the
  // benchmark driver) this fires for every session — seed behavior.
  if (first_session) engine_->WorkflowStart();
  return handle;
}

Status SessionManager::CloseSession(ExplorationSession* session) {
  auto it = std::find_if(
      sessions_.begin(), sessions_.end(),
      [session](const auto& owned) { return owned.get() == session; });
  if (it == sessions_.end()) {
    return Status::Invalid("unknown or already-closed session");
  }
  // Cancel whatever the session still has in flight.  During manager
  // destruction poll faults are moot — everything is being torn down.
  const std::vector<int64_t> order = run_queue_;
  for (int64_t id : order) {
    auto qit = queries_.find(id);
    if (qit == queries_.end() || qit->second.session != session) continue;
    IDB_RETURN_NOT_OK(Finalize(&qit->second, FinalizeReason::kClientCancel,
                               /*swallow_poll_error=*/in_destructor_));
  }
  session->closed_ = true;
  sessions_.erase(it);
  // Mirror of CreateSession: the engine learns serving ended only when
  // the last session closes.
  if (sessions_.empty()) engine_->WorkflowEnd();
  return Status::OK();
}

Result<std::vector<SubmittedQuery>> SessionManager::SubmitBatch(
    ExplorationSession* session, int64_t interaction_id,
    std::vector<query::QuerySpec> specs) {
  // Contention factor at admission: the batch runs alongside everything
  // already live.  With a single session this degenerates to the seed
  // driver's per-interaction concurrency (nothing else is live when an
  // interaction is submitted), including unsupported queries in the count.
  const int n = static_cast<int>(run_queue_.size() + specs.size());
  Micros budget = options_.time_requirement;
  if (n > 1 && options_.contention_penalty > 0.0) {
    budget = static_cast<Micros>(
        static_cast<double>(budget) /
        (1.0 + options_.contention_penalty * static_cast<double>(n - 1)));
  }

  std::vector<SubmittedQuery> out;
  out.reserve(specs.size());
  for (query::QuerySpec& spec : specs) {
    SubmittedQuery sq;
    sq.query_id = next_query_id_++;
    sq.spec = std::move(spec);
    ++stats_.queries_submitted;
    auto submit = engine_->Submit(sq.spec);
    if (!submit.ok()) {
      if (submit.status().code() != StatusCode::kNotImplemented) {
        return submit.status();
      }
      // The engine cannot run this query at all: report it as a final
      // unsupported update with nothing delivered.
      sq.unsupported = true;
      ++stats_.unsupported;
      if (session->sink_ != nullptr) {
        ProgressiveUpdate u;
        u.session_id = session->id_;
        u.query_id = sq.query_id;
        u.interaction_id = interaction_id;
        u.viz_name = sq.spec.viz_name;
        u.confidence = options_.confidence_level;
        u.virtual_time = virtual_now_;
        u.budget = budget;
        u.final_update = true;
        u.unsupported = true;
        session->sink_->OnUpdate(u);
        ++stats_.updates_pushed;
      }
      out.push_back(std::move(sq));
      continue;
    }

    LiveQuery q;
    q.query_id = sq.query_id;
    q.session_id = session->id_;
    q.interaction_id = interaction_id;
    q.viz_name = sq.spec.viz_name;
    q.handle = *submit;
    q.sink = session->sink_;
    q.session = session;
    q.submit_time = virtual_now_;
    q.deadline = virtual_now_ + options_.time_requirement;
    q.budget = budget;
    queries_.emplace(q.query_id, q);
    run_queue_.push_back(q.query_id);
    ++session->live_;
    out.push_back(std::move(sq));
  }
  return out;
}

Micros SessionManager::EntitledAt(const LiveQuery& q, Micros t) const {
  const Micros t_eff = std::min(t, q.deadline);
  const Micros elapsed = t_eff - q.submit_time;
  if (elapsed <= 0) return 0;
  const Micros tr = options_.time_requirement;
  if (elapsed >= tr) return q.budget;
  return static_cast<Micros>(static_cast<__int128>(elapsed) * q.budget / tr);
}

Micros SessionManager::MinDeadline() const {
  Micros min_deadline = std::numeric_limits<Micros>::max();
  for (const auto& [id, q] : queries_) {
    min_deadline = std::min(min_deadline, q.deadline);
  }
  return min_deadline;
}

ProgressiveUpdate SessionManager::MakeUpdate(const LiveQuery& q) const {
  ProgressiveUpdate u;
  u.session_id = q.session_id;
  u.query_id = q.query_id;
  u.interaction_id = q.interaction_id;
  u.viz_name = q.viz_name;
  u.confidence = options_.confidence_level;
  u.virtual_time = virtual_now_;
  u.consumed = q.consumed;
  u.budget = q.budget;
  return u;
}

void SessionManager::PushPartial(LiveQuery* q) {
  auto result = engine_->PollResult(q->handle);
  if (!result.ok() || !result->available) return;
  // Stream only when new bins materialized since the last push.
  if (result->rows_processed == q->last_pushed_rows) return;
  q->last_pushed_rows = result->rows_processed;
  ProgressiveUpdate u = MakeUpdate(*q);
  u.result = std::move(result).MoveValueUnsafe();
  u.progress = u.result.progress;
  q->sink->OnUpdate(u);
  ++stats_.updates_pushed;
  ++stats_.partial_updates;
}

Status SessionManager::Finalize(LiveQuery* q, FinalizeReason reason,
                                bool swallow_poll_error) {
  ProgressiveUpdate u = MakeUpdate(*q);
  u.final_update = true;
  u.completed =
      reason == FinalizeReason::kCompleted && engine_->IsDone(q->handle);
  u.cancelled = reason != FinalizeReason::kCompleted;
  auto result = engine_->PollResult(q->handle);
  const bool poll_failed = !result.ok();
  const Status poll_status = poll_failed ? result.status() : Status::OK();
  if (result.ok()) u.result = std::move(result).MoveValueUnsafe();
  u.progress = u.result.progress;
  engine_->Cancel(q->handle);

  switch (reason) {
    case FinalizeReason::kCompleted:
      ++stats_.completed;
      break;
    case FinalizeReason::kDeadline:
      ++stats_.deadline_cancelled;
      stats_.max_deadline_overshoot = std::max(stats_.max_deadline_overshoot,
                                               virtual_now_ - q->deadline);
      break;
    case FinalizeReason::kClientCancel:
      ++stats_.client_cancelled;
      break;
  }

  ResultSink* sink = q->sink;
  ExplorationSession* session = q->session;
  const int64_t id = q->query_id;
  --session->live_;
  run_queue_.erase(std::remove(run_queue_.begin(), run_queue_.end(), id),
                   run_queue_.end());
  queries_.erase(id);  // `q` is dangling from here on
  ++finalized_events_;
  if (poll_failed && !swallow_poll_error) {
    // A poll *error* is an engine fault, not an unavailable answer; the
    // query is retired, but the run aborts the way the seed driver's
    // pull loop did (no update is pushed for a faulted query).
    return poll_status;
  }
  if (sink != nullptr) {
    sink->OnUpdate(u);
    ++stats_.updates_pushed;
  }
  return Status::OK();
}

Status SessionManager::RunSliceTo(Micros slice_end) {
  // One round-robin pass in admission order; every live query receives
  // the compute entitlement it accrued up to `slice_end`.  The RunFor
  // loop of each turn replicates the seed driver's; completed queries
  // finalize at the end of their own turn (see the seed-parity note in
  // session.h).
  const std::vector<int64_t> order = run_queue_;
  for (int64_t id : order) {
    auto it = queries_.find(id);
    if (it == queries_.end()) continue;  // finalized earlier in this pass
    LiveQuery& q = it->second;
    const Micros entitled = EntitledAt(q, slice_end);
    Micros remaining = entitled - q.offered;
    q.offered = entitled;
    while (remaining > 0 && !engine_->IsDone(q.handle)) {
      const Micros step = engine_->RunFor(q.handle, remaining);
      if (step <= 0) break;
      q.consumed += step;
      remaining -= step;
    }
    if (engine_->IsDone(q.handle)) {
      IDB_RETURN_NOT_OK(Finalize(&q, FinalizeReason::kCompleted));
    } else if (options_.push_partials && q.sink != nullptr) {
      PushPartial(&q);
    }
  }
  return Status::OK();
}

Status SessionManager::FinalizeOverdue() {
  const std::vector<int64_t> order = run_queue_;
  for (int64_t id : order) {
    auto it = queries_.find(id);
    if (it == queries_.end()) continue;
    if (it->second.deadline <= virtual_now_) {
      IDB_RETURN_NOT_OK(Finalize(&it->second, FinalizeReason::kDeadline));
    }
  }
  return Status::OK();
}

Status SessionManager::AdvanceTo(Micros t) {
  while (true) {
    IDB_RETURN_NOT_OK(FinalizeOverdue());
    if (virtual_now_ >= t) return Status::OK();
    if (run_queue_.empty()) {
      virtual_now_ = t;  // idle gap: virtual time is free
      return Status::OK();
    }
    const Micros horizon = std::min(t, MinDeadline());
    Micros slice_end = horizon;
    if (options_.quantum > 0) {
      slice_end = std::min(horizon, virtual_now_ + options_.quantum);
    }
    virtual_now_ = slice_end;
    IDB_RETURN_NOT_OK(RunSliceTo(slice_end));
  }
}

Result<int> SessionManager::StepUntilEvent(Micros cap) {
  const int64_t before = finalized_events_;
  while (true) {
    IDB_RETURN_NOT_OK(FinalizeOverdue());
    if (finalized_events_ > before) {
      return static_cast<int>(finalized_events_ - before);
    }
    if (virtual_now_ >= cap) return 0;
    if (run_queue_.empty()) {
      virtual_now_ = cap;
      return 0;
    }
    const Micros horizon = std::min(cap, MinDeadline());
    Micros slice_end = horizon;
    if (options_.quantum > 0) {
      slice_end = std::min(horizon, virtual_now_ + options_.quantum);
    }
    virtual_now_ = slice_end;
    IDB_RETURN_NOT_OK(RunSliceTo(slice_end));
  }
}

Status SessionManager::RunUntilIdle() {
  while (HasLive()) {
    IDB_ASSIGN_OR_RETURN(int finalized, StepUntilEvent(MinDeadline()));
    (void)finalized;
  }
  return Status::OK();
}

SchedulerStats SessionManager::stats() const {
  SchedulerStats s = stats_;
  s.virtual_now = virtual_now_;
  return s;
}

Status ReplaySessionsToCompletion(SessionManager* manager,
                                  const std::vector<SessionReplay>& runs,
                                  Micros think_time, Micros step_cap) {
  std::vector<size_t> next(runs.size(), 0);
  while (true) {
    bool pending = false;
    for (size_t i = 0; i < runs.size(); ++i) {
      const workflow::Workflow& wf = *runs[i].workflow;
      if (next[i] < wf.interactions.size()) pending = true;
      // A session submits its next interaction once its previous batch
      // fully finalized (every update pushed).
      if (runs[i].session->live_queries() > 0 ||
          next[i] >= wf.interactions.size()) {
        continue;
      }
      runs[i].session->Think(think_time);
      IDB_ASSIGN_OR_RETURN(std::vector<SubmittedQuery> submitted,
                           runs[i].session->SubmitInteraction(
                               wf.interactions[next[i]]));
      (void)submitted;
      ++next[i];
    }
    if (!pending && !manager->HasLive()) return Status::OK();
    if (manager->HasLive()) {
      IDB_ASSIGN_OR_RETURN(
          int finalized,
          manager->StepUntilEvent(manager->VirtualNow() + step_cap));
      (void)finalized;
    }
  }
}

}  // namespace idebench::session
