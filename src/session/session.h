#ifndef IDEBENCH_SESSION_SESSION_H_
#define IDEBENCH_SESSION_SESSION_H_

/// \file session.h
/// Session-based asynchronous serving API.
///
/// The seed codebase hard-wired one synchronous client: a driver pulling
/// one engine through `Submit`/`RunFor`/`PollResult`.  This subsystem
/// inverts that into the shape a serving system needs (and the shape
/// push-based maintenance of incrementally computed answers suggests —
/// cf. Berkholz et al., "Answering FO+MOD queries under updates"):
///
///  * a `SessionManager` owns one shared engine (whose physical execution
///    runs on the process-wide `exec::WorkerPool`) and multiplexes any
///    number of `ExplorationSession`s over it;
///  * each `ExplorationSession` models one user/dashboard: it keeps its
///    own visualization graph, turns interactions into resolved queries
///    (`workflow::ApplyInteraction` — the same enumeration the benchmark
///    driver uses), and submits them;
///  * results are *pushed*: a client installs a `ResultSink` and receives
///    `ProgressiveUpdate` events as partial bins materialize, instead of
///    polling;
///  * a deadline-aware round-robin time-slice scheduler divides engine
///    compute fairly across all live queries of all sessions on a global
///    virtual clock, shrinking per-query compute entitlements by the
///    configured contention penalty (`driver::Settings::
///    concurrency_penalty` semantics) and cancelling every query that
///    reaches its time requirement — a query can never starve past its
///    deadline (`SchedulerStats::max_deadline_overshoot` stays 0).
///
/// Determinism: scheduling depends only on virtual time, admission order
/// and the options — never on wall time or physical thread count — so a
/// multi-session run is exactly reproducible, and the morsel-parallel
/// execution underneath keeps results bit-identical at any `threads`.
///
/// Viz namespacing: engine-side per-viz state (speculation specs, link
/// edges, per-viz reuse snapshots) is keyed by viz *name*, and every
/// dashboard names its vizs "viz_0", "viz_1", ... — so two sessions on
/// one shared engine would collide.  The manager therefore qualifies
/// every engine-facing viz name as "s<session_id>/<name>" (query specs
/// at submission, Link/Discard hints) and keeps the raw name on
/// everything client-facing (`SubmittedQuery::spec`,
/// `ProgressiveUpdate::viz_name`).  Names are excluded from query
/// signatures (see query::QuerySpec::CoreSignature), so qualification
/// never perturbs walk offsets or reuse-cache matching — single-session
/// results stay bit-identical to the legacy pull path.
///
/// Seed-parity contract: with a single session and `quantum == 0` (run-
/// to-entitlement turns), the manager issues the seed `BenchmarkDriver`
/// loop's engine call sequence with one deliberate difference — a query
/// that completes before its deadline is polled + cancelled at the end
/// of its own turn, not after every turn of its batch.  That reorder is
/// invisible in results (a completed query's answer is frozen, and the
/// reuse cache any earlier Cancel may populate is result-transparent by
/// contract), so single-session results are bit-identical to the legacy
/// pull path — enforced differentially by tests/workflow_fuzz_test.cc.
/// Physical side channels (reuse-cache hit/miss telemetry, wall-clock)
/// may differ from the seed loop when the cache is enabled.

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include <map>

#include "common/clock.h"
#include "common/result.h"
#include "engines/engine.h"
#include "ingest/ingest.h"
#include "query/result.h"
#include "query/spec.h"
#include "storage/catalog.h"
#include "workflow/interaction.h"
#include "workflow/viz_graph.h"
#include "workflow/workflow.h"

namespace idebench::session {

/// One pushed result event.  Non-final updates stream while a query runs
/// (when the manager's `push_partials` is on and the engine has a
/// fetchable intermediate answer); exactly one final update is pushed per
/// submitted query — on completion, deadline cancellation, client
/// cancellation, engine failure after exhausted retries, or immediately
/// for queries the engine cannot run.
struct ProgressiveUpdate {
  int64_t session_id = 0;
  int64_t query_id = 0;        // manager-global query identifier
  int64_t interaction_id = 0;  // session-local interaction index
  std::string viz_name;

  query::QueryResult result;   // current (possibly partial) answer
  double confidence = 0.95;    // confidence level of the result's margins
  double progress = 0.0;       // == result.progress (convenience)
  Micros virtual_time = 0;     // scheduler virtual time of this event

  Micros consumed = 0;         // engine compute consumed so far
  Micros budget = 0;           // compute entitlement over the TR window

  bool final_update = false;   // last event for this query
  bool completed = false;      // engine finished before the deadline
  bool cancelled = false;      // cancelled (deadline or client)
  bool unsupported = false;    // engine refused the query at submission
  bool failed = false;         // engine fault persisted past every retry
};

/// Push-delivery interface a client installs per session.  Callbacks run
/// synchronously on the scheduling thread; implementations should be
/// cheap and must not call back into the manager.
class ResultSink {
 public:
  virtual ~ResultSink() = default;
  virtual void OnUpdate(const ProgressiveUpdate& update) = 0;
};

/// Scheduler configuration.
struct SessionManagerOptions {
  /// Wall (virtual) deadline of every query; overdue queries are
  /// cancelled exactly at it (driver::Settings::time_requirement).
  Micros time_requirement = 3 * kMicrosPerSecond;

  /// Per-extra-live-query slowdown applied to the compute entitlement at
  /// admission: a query admitted alongside n-1 others receives
  /// time_requirement / (1 + penalty * (n - 1)) compute over its TR
  /// window (driver::Settings::concurrency_penalty semantics; 0 models
  /// perfectly parallel cores as the paper's Exp. 4 found).
  double contention_penalty = 0.0;

  /// Round-robin time slice.  0 = run-to-entitlement turns: each live
  /// query receives its whole pending entitlement once per scheduling
  /// horizon, which reproduces the seed driver's call sequence exactly
  /// (the single-session parity mode).  > 0 = slice the horizon so live
  /// queries interleave at `quantum` granularity and partial results
  /// stream while others run.
  Micros quantum = 0;

  /// Push non-final updates whenever a query's fetchable answer advanced
  /// since the last push.  Off, only final updates are delivered.
  bool push_partials = true;

  /// Confidence level stamped on updates (matches the engine's).
  double confidence_level = 0.95;

  /// Transient engine faults (I/O errors, resource exhaustion, spurious
  /// cancellations — the classes chaos injection exercises) are retried
  /// up to this many times per query before the query is finalized with a
  /// terminal `failed` update.  Programming errors (invalid argument,
  /// unknown handle) are never retried and abort like the seed driver.
  int max_engine_retries = 3;

  /// Virtual-time backoff before the first retry; doubles per attempt.
  /// A query under backoff keeps accruing its compute entitlement and its
  /// deadline keeps running — retries spend the query's own TR window.
  Micros retry_backoff = 50'000;  // 50ms
};

/// Scheduler telemetry: fairness and liveness counters for one manager.
struct SchedulerStats {
  int64_t sessions_opened = 0;
  int64_t queries_submitted = 0;   // includes unsupported
  int64_t completed = 0;
  int64_t deadline_cancelled = 0;  // cancelled exactly at their TR
  int64_t client_cancelled = 0;    // ExplorationSession::Cancel / close
  int64_t unsupported = 0;
  int64_t failed = 0;              // engine fault persisted past retries
  int64_t transient_faults = 0;    // transient engine faults observed
  int64_t retries = 0;             // successful resubmissions after a fault
  int64_t updates_pushed = 0;      // final + partial
  int64_t partial_updates = 0;
  /// Max (finalize time - deadline) over all queries; the scheduler
  /// guarantees 0 — no query ever starves past its time requirement.
  Micros max_deadline_overshoot = 0;
  /// Virtual time of the manager when the stats were read.
  Micros virtual_now = 0;
};

/// Telemetry for the manager's ingest channel.
struct IngestChannelStats {
  int64_t events_enqueued = 0;
  int64_t batches_applied = 0;   // successful appends
  int64_t rows_applied = 0;
  int64_t publishes = 0;         // publishes that moved the watermark
  int64_t append_failures = 0;   // chaos faults, capacity, parse errors
  int64_t publish_failures = 0;  // chaos faults (watermark did not move)
};

class SessionManager;

/// One submitted query of one interaction, in submission order.
struct SubmittedQuery {
  int64_t query_id = 0;
  query::QuerySpec spec;      // resolved executable query
  bool unsupported = false;   // engine returned NotImplemented
};

/// One simulated user/dashboard multiplexed onto the shared engine.
/// Created by (and owned by) a `SessionManager`; not thread-safe — all
/// sessions of a manager are driven from one scheduling thread.
class ExplorationSession {
 public:
  int64_t id() const { return id_; }

  /// Applies `interaction` to this session's dashboard graph, forwards
  /// link/discard hints to the engine, and submits one query per affected
  /// viz at the current virtual time.  Queries the engine cannot run
  /// (NotImplemented) are reported through the sink as final unsupported
  /// updates; any other engine error aborts.  Returns the submitted
  /// queries in driver order.
  ///
  /// `budget_scale` in (0, 1] shrinks the batch's compute entitlement —
  /// the graceful-degradation hook the net ratekeeper pulls under
  /// overload: a degraded query keeps its deadline but receives
  /// `budget_scale` of the budget it would otherwise accrue, so it
  /// answers from a smaller sample instead of being refused.  1.0 (the
  /// default) is bit-identical to the undegraded path.
  Result<std::vector<SubmittedQuery>> SubmitInteraction(
      const workflow::Interaction& interaction, double budget_scale = 1.0);

  /// Client-initiated cancellation.  Idempotent: cancelling an unknown,
  /// already-finished or already-cancelled query is a no-op.
  Status Cancel(int64_t query_id);

  /// Dashboard conveniences: submit a link / discard interaction.
  Result<std::vector<SubmittedQuery>> LinkVizs(const std::string& from,
                                               const std::string& to);
  Result<std::vector<SubmittedQuery>> DiscardViz(const std::string& viz);

  /// Grants idle (think) time to the engine on this session's behalf.
  void Think(Micros duration);

  /// Clears this session's dashboard graph (the user closes every viz
  /// and starts a fresh exploration).  Live queries keep running; the
  /// shared engine is not notified — with other sessions multiplexed on
  /// it, engine-wide resets are a session-creation-time event only.
  void ResetDashboard();

  /// Queries of this session still live in the scheduler.
  int64_t live_queries() const { return live_; }

  /// True once the session has been closed.  The handle itself stays
  /// valid until the manager dies; operations on a closed session fail
  /// with a clean Status instead of touching freed memory.
  bool closed() const { return closed_; }

 private:
  friend class SessionManager;
  ExplorationSession(SessionManager* manager, int64_t id, ResultSink* sink)
      : manager_(manager), id_(id), sink_(sink) {}

  SessionManager* manager_;
  int64_t id_;
  ResultSink* sink_;
  workflow::VizGraph graph_;
  int64_t next_interaction_id_ = 0;
  int64_t live_ = 0;
  bool closed_ = false;
};

/// Owns the shared engine multiplexing and the scheduler.  The engine
/// and catalog must outlive the manager; the engine must be prepared
/// before queries are submitted.
class SessionManager {
 public:
  SessionManager(SessionManagerOptions options, engines::Engine* engine,
                 std::shared_ptr<const storage::Catalog> catalog);

  /// Closes all remaining sessions, cancelling their live queries.  No
  /// updates are pushed from the destructor: client sinks may already be
  /// gone when a manager dies on an error path.
  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Opens a session.  `sink` may be null (results are discarded); it
  /// must outlive the session.  When this is the first open session the
  /// engine is notified that serving starts (Engine::WorkflowStart) —
  /// never while other sessions are live, since that reset is
  /// engine-wide.  The returned handle is owned by the manager and valid
  /// until CloseSession (or manager destruction).
  Result<ExplorationSession*> CreateSession(ResultSink* sink);

  /// Cancels the session's live queries (pushing final cancelled
  /// updates) and marks the session closed; closing the last open
  /// session notifies the engine (Engine::WorkflowEnd).  Idempotent:
  /// closing an already-closed session is a no-op returning OK.  The
  /// handle stays valid (owned by the manager until destruction), so a
  /// double close — or a submit after close — fails cleanly instead of
  /// dereferencing freed memory.
  Status CloseSession(ExplorationSession* session);

  /// Scheduler virtual time (microseconds since manager creation).
  Micros VirtualNow() const { return virtual_now_; }

  /// True while any query of any session is live.
  bool HasLive() const { return !run_queue_.empty(); }

  /// Runs the scheduler until virtual time `t`: every live query
  /// receives its compute entitlement over the elapsed span in
  /// round-robin time slices, completions and deadline cancellations push
  /// final updates, and the clock lands exactly on `t` (idle gaps skip
  /// instantly — virtual time is free).
  Status AdvanceTo(Micros t);

  /// Runs until the next finalization event (completion or deadline
  /// cancellation) or virtual time `cap`, whichever comes first; returns
  /// the number of queries finalized.  The building block for event loops
  /// that interleave new submissions with scheduling: control returns at
  /// every point a session's readiness may have changed.
  Result<int> StepUntilEvent(Micros cap);

  /// Runs until no live query remains (each completes or reaches its
  /// deadline); virtual time ends at the last finalization.  Ingest
  /// events scheduled past the last finalization stay queued for the
  /// next advance.
  Status RunUntilIdle();

  // --- Ingest channel (streaming ingest) -----------------------------
  //
  // Appends and publishes are *scheduled on the virtual clock* and
  // applied on the scheduling thread strictly between engine calls —
  // the single-writer protocol `ingest::Ingestor` requires.  An ingest
  // event costs zero virtual time and never displaces query compute, so
  // attaching ingest cannot push any query past its deadline
  // (`max_deadline_overshoot` stays 0 by construction); the scheduler
  // merely lands its slices exactly on each event's instant so
  // visibility changes at a deterministic point in every run.

  /// Attaches the ingest channel.  `ingestor` must feed this manager's
  /// catalog and outlive the manager.  At most one per manager.
  void AttachIngest(ingest::Ingestor* ingestor);

  /// Schedules `batch` to be appended at virtual time `at` (clamped to
  /// now), followed — when `publish` is set — by an epoch publish.  An
  /// empty batch with `publish` schedules a bare publish.  Events at
  /// equal times apply in enqueue order.  Failures (chaos faults,
  /// capacity, parse errors) are counted in `ingest_stats()`, not
  /// propagated: ingest is weather, serving must not abort on it.
  Status EnqueueAppend(ingest::RowBatch batch, Micros at, bool publish);

  /// Ingest events not yet applied.
  int64_t pending_ingest_events() const {
    return static_cast<int64_t>(ingest_events_.size());
  }

  const IngestChannelStats& ingest_stats() const { return ingest_stats_; }

  SchedulerStats stats() const;

  engines::Engine* engine() const { return engine_; }
  const storage::Catalog& catalog() const { return *catalog_; }
  const SessionManagerOptions& options() const { return options_; }

 private:
  friend class ExplorationSession;

  /// One live query in the scheduler.  `handle < 0` means the query is
  /// *pending*: its engine submission faulted transiently and it waits
  /// (in virtual time) for `retry_at` to resubmit — still live, still
  /// accruing entitlement, still bounded by its deadline.
  struct LiveQuery {
    int64_t query_id = 0;
    int64_t session_id = 0;
    int64_t interaction_id = 0;
    std::string viz_name;
    query::QuerySpec spec;          // kept for retry resubmission
    engines::QueryHandle handle = -1;
    ResultSink* sink = nullptr;     // owning session's sink (may be null)
    ExplorationSession* session = nullptr;
    Micros submit_time = 0;         // virtual admission time
    Micros deadline = 0;            // submit_time + time_requirement
    Micros budget = 0;              // total compute entitlement
    Micros offered = 0;             // entitlement granted to the engine
    Micros consumed = 0;            // compute the engine reported consumed
    int64_t last_pushed_rows = -1;  // rows_processed at the last push
    int faults = 0;                 // transient engine faults so far
    Micros retry_at = 0;            // earliest resubmission time if pending
  };

  /// Admission: registers a batch of queries submitted together (the
  /// contention factor is computed from live + batch size, the seed
  /// driver's per-interaction concurrency semantics).  `budget_scale`
  /// further shrinks the batch's entitlement (degradation; 1.0 = none).
  Result<std::vector<SubmittedQuery>> SubmitBatch(
      ExplorationSession* session, int64_t interaction_id,
      std::vector<query::QuerySpec> specs, double budget_scale);

  /// Engine-facing viz name of `viz` in `session` ("s<id>/<viz>"); empty
  /// names stay empty (no per-viz engine state to namespace).
  static std::string QualifiedViz(int64_t session_id, const std::string& viz);

  /// Compute entitlement accrued by `q` at virtual time `t`.
  Micros EntitledAt(const LiveQuery& q, Micros t) const;

  /// Grants every live query its pending entitlement up to `slice_end`
  /// (one round-robin pass), finalizing queries that complete.
  Status RunSliceTo(Micros slice_end);

  /// Finalizes queries whose deadline has arrived.
  Status FinalizeOverdue();

  /// Earliest deadline over live queries.
  Micros MinDeadline() const;

  /// Earliest scheduling event: the min over live-query deadlines and
  /// pending-query retry times (clamped to now) — the horizon a slice may
  /// run to without skipping a deadline or a scheduled retry.
  Micros NextWakeup() const;

  /// Applies every ingest event due at or before the current virtual
  /// time, in (time, enqueue) order.  Called between engine calls only.
  void DrainIngest();

  /// Virtual time of the earliest queued ingest event (max() when none):
  /// slices and idle jumps never skip past it.
  Micros NextIngestAt() const;

  enum class FinalizeReason { kCompleted, kDeadline, kClientCancel, kFailed };

  /// Classifies an engine error as retryable.  I/O errors, resource
  /// exhaustion, spurious cancellations and unclassified failures are the
  /// transient classes (the ones chaos injection produces); anything else
  /// is a programming error and aborts.
  static bool IsTransientEngineError(StatusCode code);

  /// Reacts to a transient-or-worse engine fault on `q`: cancels the
  /// handle if any, schedules a backed-off retry, or — retries exhausted —
  /// finalizes the query with a terminal `failed` update.  Returns a
  /// non-OK status only for non-transient (programming) errors, which
  /// abort like the seed driver.  `q` may be retired on return.
  Status HandleEngineFault(LiveQuery* q, const Status& error);

  /// Polls the final answer, pushes the final update, cancels the engine
  /// query and retires it.  A *transient* PollResult error degrades to an
  /// unavailable result (the query still gets its one terminal update); a
  /// programming-error status aborts like the seed driver did — unless
  /// `swallow_poll_error` (destructor teardown), which retires the query
  /// with a default unavailable result regardless.  Pending queries
  /// (handle < 0) skip the engine entirely.
  Status Finalize(LiveQuery* q, FinalizeReason reason,
                  bool swallow_poll_error = false);

  void PushPartial(LiveQuery* q);
  ProgressiveUpdate MakeUpdate(const LiveQuery& q) const;

  SessionManagerOptions options_;
  engines::Engine* engine_;
  std::shared_ptr<const storage::Catalog> catalog_;
  Micros virtual_now_ = 0;
  int64_t next_session_id_ = 0;
  int64_t next_query_id_ = 0;
  /// All sessions ever created, open and closed alike: closed handles are
  /// retained (cheap — a few pointers each) so stale client pointers stay
  /// dereferenceable and double-close is idempotent.
  std::vector<std::unique_ptr<ExplorationSession>> sessions_;
  int64_t open_sessions_ = 0;
  std::unordered_map<int64_t, LiveQuery> queries_;
  /// Admission-ordered ids of live queries — the round-robin order.
  std::vector<int64_t> run_queue_;
  int64_t finalized_events_ = 0;
  bool in_destructor_ = false;
  SchedulerStats stats_;

  /// One scheduled ingest event: an append batch (possibly empty) and an
  /// optional epoch publish after it.
  struct IngestEvent {
    ingest::RowBatch batch;
    bool publish = false;
  };

  ingest::Ingestor* ingestor_ = nullptr;
  /// Queued events keyed by virtual apply time; equal keys preserve
  /// enqueue order (multimap insertion-order guarantee), so replays with
  /// the same enqueue sequence apply identically.
  std::multimap<Micros, IngestEvent> ingest_events_;
  IngestChannelStats ingest_stats_;
};

/// One (session, workflow) pair for `ReplaySessionsToCompletion`.
struct SessionReplay {
  ExplorationSession* session = nullptr;
  const workflow::Workflow* workflow = nullptr;
};

/// Drives every session through its workflow until all interactions have
/// been submitted and every query finalized: a session submits its next
/// interaction (after `think_time` of engine think) as soon as its
/// previous batch fully finalized, while the scheduler advances in
/// bounded `step_cap` steps.  The canonical concurrent-replay loop shared
/// by tests and benchmarks; the benchmark driver layers record-building
/// and report timing on its own richer variant.
Status ReplaySessionsToCompletion(SessionManager* manager,
                                  const std::vector<SessionReplay>& runs,
                                  Micros think_time,
                                  Micros step_cap = 1 * kMicrosPerSecond);

}  // namespace idebench::session

#endif  // IDEBENCH_SESSION_SESSION_H_
