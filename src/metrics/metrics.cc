#include "metrics/metrics.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace idebench::metrics {

QueryMetrics Evaluate(const query::QueryResult& result,
                      const query::QueryResult& ground_truth,
                      bool tr_violated) {
  QueryMetrics m;
  m.tr_violated = tr_violated || !result.available;
  m.bins_in_gt = static_cast<int64_t>(ground_truth.bins.size());

  // Delivered bins that exist in the ground truth.  (With shared bin
  // resolution a delivered bin absent from the ground truth cannot occur
  // for exact filters; it is counted as delivered but contributes no
  // error pair.)
  int64_t delivered_in_gt = 0;
  std::vector<double> rel_errors;
  std::vector<double> smapes;
  std::vector<double> rel_margins;
  double sum_est = 0.0;
  double sum_true = 0.0;
  double dot = 0.0;
  double norm_est = 0.0;
  double norm_true = 0.0;

  if (result.available) {
    m.bins_delivered = static_cast<int64_t>(result.bins.size());
    for (const auto& [key, bin] : result.bins) {
      auto gt_it = ground_truth.bins.find(key);
      if (gt_it == ground_truth.bins.end()) continue;
      ++delivered_in_gt;
      const size_t n_aggs =
          std::min(bin.values.size(), gt_it->second.values.size());
      for (size_t a = 0; a < n_aggs; ++a) {
        const double f = bin.values[a].estimate;
        const double truth = gt_it->second.values[a].estimate;
        const double margin = bin.values[a].margin;

        if (truth != 0.0) {
          rel_errors.push_back(std::fabs(f - truth) / std::fabs(truth));
        }
        const double denom = std::fabs(f) + std::fabs(truth);
        smapes.push_back(denom > 0.0 ? std::fabs(f - truth) / denom : 0.0);
        if (f != 0.0) {
          rel_margins.push_back(std::fabs(margin / f));
        }
        // The tolerance absorbs floating-point summation-order noise
        // between the engine's accumulation order and the oracle's.
        const double tolerance =
            1e-9 * std::max({std::fabs(f), std::fabs(truth), 1.0});
        if (std::fabs(f - truth) > margin + tolerance) {
          ++m.bins_out_of_margin;
        }

        sum_est += f;
        sum_true += truth;
      }
    }

    // Cosine distance over the union of bins (first aggregate), with
    // missing entries as zeros.
    for (const auto& [key, gt_bin] : ground_truth.bins) {
      const double truth =
          gt_bin.values.empty() ? 0.0 : gt_bin.values[0].estimate;
      double f = 0.0;
      auto it = result.bins.find(key);
      if (it != result.bins.end() && !it->second.values.empty()) {
        f = it->second.values[0].estimate;
      }
      dot += f * truth;
      norm_est += f * f;
      norm_true += truth * truth;
    }
    // Delivered bins outside the ground truth extend the vectors with
    // (f, 0) pairs: they increase |F| without adding to the dot product.
    for (const auto& [key, bin] : result.bins) {
      if (ground_truth.bins.count(key) != 0 || bin.values.empty()) continue;
      norm_est += bin.values[0].estimate * bin.values[0].estimate;
    }
  }

  m.missing_bins =
      m.bins_in_gt > 0
          ? 1.0 - static_cast<double>(delivered_in_gt) /
                      static_cast<double>(m.bins_in_gt)
          : 0.0;

  auto mean_of = [](const std::vector<double>& v) {
    if (v.empty()) return 0.0;
    double s = 0.0;
    for (double x : v) s += x;
    return s / static_cast<double>(v.size());
  };
  auto stdev_of = [&](const std::vector<double>& v, double mean) {
    if (v.size() < 2) return 0.0;
    double ss = 0.0;
    for (double x : v) ss += (x - mean) * (x - mean);
    return std::sqrt(ss / static_cast<double>(v.size() - 1));
  };

  m.mean_rel_error = mean_of(rel_errors);
  m.rel_error_stdev = stdev_of(rel_errors, m.mean_rel_error);
  m.smape = mean_of(smapes);
  m.mean_margin_rel = mean_of(rel_margins);
  m.margin_stdev = stdev_of(rel_margins, m.mean_margin_rel);

  if (norm_est > 0.0 && norm_true > 0.0) {
    double cosine = dot / (std::sqrt(norm_est) * std::sqrt(norm_true));
    cosine = std::clamp(cosine, -1.0, 1.0);
    m.cosine_distance = 1.0 - cosine;
  } else if (m.bins_in_gt > 0) {
    // Nothing delivered against a non-empty truth: maximal distance.
    m.cosine_distance = 1.0;
  }

  m.bias = sum_true != 0.0 ? sum_est / sum_true : 1.0;
  return m;
}

}  // namespace idebench::metrics
