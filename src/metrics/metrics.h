#ifndef IDEBENCH_METRICS_METRICS_H_
#define IDEBENCH_METRICS_METRICS_H_

/// \file metrics.h
/// The IDEBench quality metrics (paper §4.7), computed per query from the
/// engine's answer and the exact ground truth:
///
///  * Time Requirement Violated — no fetchable result at the deadline;
///  * Missing Bins — ground-truth bins with no delivered result;
///  * Mean Relative Error — mean of |F−A|/|A| over delivered bins
///    (undefined for A = 0; such pairs are skipped, as the paper notes);
///  * SMAPE — the bounded symmetric alternative the paper discusses;
///  * Cosine Distance — shape deviation over the bin vector (missing
///    bins contribute zeros);
///  * Mean (relative) Margin of Error and its standard deviation;
///  * Out of Margin — delivered values whose true value lies outside the
///    returned confidence interval;
///  * Bias — Σ estimates / Σ true values over delivered bins.

#include <cstdint>

#include "query/result.h"

namespace idebench::metrics {

/// Per-query evaluation results (one row of the detailed report).
struct QueryMetrics {
  bool tr_violated = false;

  int64_t bins_delivered = 0;
  int64_t bins_in_gt = 0;
  double missing_bins = 0.0;  // ratio in [0, 1]

  double mean_rel_error = 0.0;
  double rel_error_stdev = 0.0;
  double smape = 0.0;

  double cosine_distance = 0.0;

  double mean_margin_rel = 0.0;
  double margin_stdev = 0.0;
  int64_t bins_out_of_margin = 0;

  double bias = 1.0;
};

/// Telemetry of a cross-interaction result-reuse cache
/// (exec/reuse_cache.h): how often interactions hit snapshots of earlier
/// ones, and how much physical work the hits displaced.  Surfaced per
/// engine and aggregated into the CLI report.
struct ReuseCacheStats {
  int64_t equal_hits = 0;       // submissions matching a cached signature
  int64_t refinement_hits = 0;  // submissions refining a cached predicate set
  int64_t misses = 0;           // submissions with no usable entry
  int64_t stores = 0;           // snapshots stored or extended
  int64_t evictions = 0;        // entries dropped by the per-viz LRU
  int64_t poisoned = 0;         // entries dropped as corrupt (fault injection)
  int64_t rows_served = 0;      // feed positions served from snapshots
  /// Entries dropped because an ingest epoch published after they were
  /// stored (`ReuseCacheOptions::invalidate_on_growth` only — the
  /// baseline the delta-maintained default is benchmarked against).
  int64_t stale_invalidations = 0;
  int64_t entries = 0;          // live entries at sampling time

  ReuseCacheStats& operator+=(const ReuseCacheStats& o) {
    equal_hits += o.equal_hits;
    refinement_hits += o.refinement_hits;
    misses += o.misses;
    stores += o.stores;
    evictions += o.evictions;
    poisoned += o.poisoned;
    rows_served += o.rows_served;
    stale_invalidations += o.stale_invalidations;
    // `entries` is a gauge, not a counter: across engines/configurations
    // report the peak, not a meaningless sum.
    entries = entries > o.entries ? entries : o.entries;
    return *this;
  }
};

/// Evaluates `result` against `ground_truth`.
///
/// When `tr_violated` is set (or the result is unavailable), the quality
/// fields are computed anyway when possible, but the summary report
/// excludes them, matching the paper ("the distribution of mean relative
/// errors for all queries which did not violate the time requirement").
QueryMetrics Evaluate(const query::QueryResult& result,
                      const query::QueryResult& ground_truth,
                      bool tr_violated);

}  // namespace idebench::metrics

#endif  // IDEBENCH_METRICS_METRICS_H_
