#ifndef IDEBENCH_INGEST_WAL_H_
#define IDEBENCH_INGEST_WAL_H_

/// \file wal.h
/// Write-ahead log for streaming ingest: the durability half of the
/// epoch-visibility protocol.
///
/// The single-writer `Ingestor` logs every accepted batch and every
/// publish before it takes effect in memory, so a crashed process can be
/// rebuilt by replaying the log over the segment-cache baseline.  The
/// recovery contract (enforced by `Ingestor::Recover` and swept by
/// `tools/crash_runner`):
///
///  * only fully committed epochs become visible — a batch without a
///    following commit record is dropped wholesale;
///  * the recovered watermark equals the last durable publish;
///  * because a shuffled walk is a pure function of (seed, epoch
///    history), post-recovery queries are bit-identical to a process
///    that never crashed.
///
/// Record framing (native-endian, like `storage/segment.cc` — the magic
/// doubles as an endianness check):
///
///     [u32 magic 'IWAL'] [u8 type] [u64 sequence] [u32 payload_bytes]
///     [payload ...] [u64 fnv1a over all preceding record bytes]
///
/// Types: header (0) — table name, baseline row count, column count,
/// written once at creation; batch (1) — row count, column count, then
/// length-prefixed text fields row-major (the exact strings that feed
/// `Column::AppendParsed`, so a replayed row is bit-identical to the
/// original append); commit (2) — the new watermark and epoch ordinal.
/// Sequences are dense from 0: a gap with valid checksums means records
/// from two different logs were spliced, which is rejected.
///
/// Torn tail vs. corruption: when a record fails validation, the reader
/// scans forward for any later fully valid record.  None found → the
/// damage reaches EOF, i.e. a torn tail from a crash mid-append: it is
/// truncated away (only ever uncommitted data, because commits are
/// fsynced before being acknowledged).  Found → damage *inside* the log
/// with intact history after it: that is bit rot, and the whole log is
/// rejected rather than silently dropping a committed epoch.
///
/// Failed-write discipline: on any mid-record write fault or a failed
/// commit fsync the writer ftruncates back to the pre-record offset, so
/// the on-disk log always equals the committed history plus whole batch
/// records.  This is what keeps replayed epoch boundaries identical to
/// the live process's: a commit record must never survive a publish that
/// reported failure.
///
/// Fsync policy: `kEveryCommit` syncs inside every `AppendCommit` (a
/// publish that returns OK is durable); `kGrouped` syncs every
/// `group_commit_interval` commits (bounded-loss group commit — `Sync`
/// drains the remainder, e.g. on SIGTERM); `kNone` never syncs except on
/// explicit `Sync` (benchmark baseline).
///
/// Chaos sites `wal.append`, `wal.commit`, `wal.fsync` fire mid-write /
/// at the sync exactly as documented in `chaos/fault_injector.h`.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace idebench::ingest {

enum class WalRecordType : uint8_t {
  kHeader = 0,
  kBatch = 1,
  kCommit = 2,
};

/// When the log reaches disk relative to commits.
enum class WalSync {
  kEveryCommit = 0,  // fsync inside every AppendCommit
  kGrouped = 1,      // fsync every group_commit_interval commits
  kNone = 2,         // only on explicit Sync()
};

struct WalOptions {
  WalSync sync = WalSync::kEveryCommit;
  /// Commits between fsyncs under kGrouped (>= 1).
  int64_t group_commit_interval = 8;
};

const char* WalSyncName(WalSync sync);

/// The creation-time identity record: recovery refuses to replay a log
/// over a baseline it was not written against.
struct WalHeader {
  std::string table_name;
  int64_t baseline_rows = 0;
  int num_columns = 0;
};

/// One decoded record (fields populated per `type`).
struct WalRecord {
  WalRecordType type = WalRecordType::kHeader;
  uint64_t sequence = 0;
  uint64_t offset = 0;  // byte offset of the record's frame start
  uint64_t bytes = 0;   // total framed size

  WalHeader header;                            // kHeader
  std::vector<std::vector<std::string>> rows;  // kBatch
  int64_t watermark = 0;                       // kCommit
  int64_t epoch = 0;                           // kCommit
};

/// Everything a scan of the log yields.
struct WalScan {
  WalHeader header;
  std::vector<WalRecord> records;  // every valid record, header included
  uint64_t valid_bytes = 0;        // end of the last valid record
  uint64_t committed_bytes = 0;    // end of the last commit record
  uint64_t torn_bytes = 0;         // truncated torn tail (crash debris)
  int64_t last_commit_watermark = -1;  // -1: no commit in the log
  int64_t commits = 0;
  uint64_t next_sequence = 0;  // one past the last valid record
};

/// Scans `path` front to back.  Fails IOError when the file cannot be
/// read and Invalid on mid-log corruption (see torn-tail vs. corruption
/// above); a torn tail is not an error, it is reported via `torn_bytes`.
Result<WalScan> ReadWal(const std::string& path);

/// Cumulative writer telemetry (surfaced through server stats).
struct WalStats {
  int64_t batches_logged = 0;
  int64_t commits_logged = 0;
  int64_t syncs = 0;            // completed fsyncs
  int64_t bytes_logged = 0;     // bytes surviving on disk
  int64_t append_faults = 0;    // injected wal.append fires
  int64_t commit_faults = 0;    // injected wal.commit fires
  int64_t fsync_faults = 0;     // injected wal.fsync fires
  int64_t rollback_bytes = 0;   // bytes truncated back after faults
};

/// The append-only writer.  Single-threaded like its owner (`Ingestor`).
class WalWriter {
 public:
  /// Creates a fresh log at `path` (truncating any previous file) and
  /// durably writes the header record.
  static Result<std::unique_ptr<WalWriter>> Create(const std::string& path,
                                                   const WalHeader& header,
                                                   WalOptions options);

  /// Resumes appending to an existing log that a scan validated:
  /// truncates the file to `committed_bytes` (dropping the uncommitted
  /// tail the replay also dropped — the log and the table must tell the
  /// same story) and continues the sequence at `next_sequence`.
  static Result<std::unique_ptr<WalWriter>> Resume(const std::string& path,
                                                   const WalScan& scan,
                                                   WalOptions options);

  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Logs one append batch.  On any failure the log is truncated back to
  /// the previous record boundary and nothing is considered logged.
  Status AppendBatch(const std::vector<std::vector<std::string>>& rows);

  /// Logs one epoch commit and makes it durable per the sync policy.  On
  /// failure (write fault or commit-time fsync fault) the commit record
  /// is rolled back off the log entirely: a publish that reports failure
  /// leaves no trace for replay to disagree with.
  Status AppendCommit(int64_t watermark, int64_t epoch);

  /// Flushes everything logged so far to disk (group-commit drain; also
  /// the SIGTERM path).  No-op when already durable.
  Status Sync();

  /// True when every logged byte has been fsynced.
  bool durable() const { return synced_bytes_ == offset_; }

  const WalStats& stats() const { return stats_; }
  const WalOptions& options() const { return options_; }
  const std::string& path() const { return path_; }

 private:
  WalWriter(std::string path, int fd, WalOptions options);

  /// Frames and writes one record, drawing `site` mid-write; truncates
  /// back to the pre-record offset on any failure.
  Status WriteRecord(const std::string& frame, int chaos_site,
                     int64_t* fault_counter);
  Status SyncInternal(uint64_t rollback_to, int64_t* fault_counter);

  std::string path_;
  int fd_ = -1;
  WalOptions options_;
  uint64_t offset_ = 0;        // bytes in the log (all records whole)
  uint64_t synced_bytes_ = 0;  // bytes known durable
  uint64_t next_sequence_ = 0;
  int64_t commits_since_sync_ = 0;
  WalStats stats_;
};

}  // namespace idebench::ingest

#endif  // IDEBENCH_INGEST_WAL_H_
