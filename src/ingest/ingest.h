#ifndef IDEBENCH_INGEST_INGEST_H_
#define IDEBENCH_INGEST_INGEST_H_

/// \file ingest.h
/// Streaming ingest: rows arrive while sessions serve progressive queries.
///
/// The `Ingestor` is the single writer of a catalog's fact table under the
/// epoch-visibility protocol (`storage::Table::BeginIngest`):
///
///  * `Append` stages whole row batches into the *open* epoch.  Staged
///    rows are invisible to every reader — engines pin
///    `Table::visible_rows()` at query submission and never look past it.
///  * `Publish` moves the visible watermark over all staged rows in one
///    atomic step (and republishes per-column min/max/dictionary stats at
///    the boundary), creating a new epoch.  A query submitted afterwards
///    sees the new rows; queries already in flight keep refining against
///    their pinned watermark, bit-identical to a run against a table
///    frozen there.
///
/// Threading contract: appends and publishes happen on the serving
/// scheduler thread, interleaved *between* engine calls (the session
/// manager's ingest channel guarantees this).  Nothing here is
/// thread-safe on its own — the protocol is what makes concurrent-looking
/// ingest safe, not locks.
///
/// Capacity contract: compiled scan kernels hold raw `Int64Data()` /
/// `DoubleData()` pointers into the fact columns, so the columns must
/// never reallocate once queries run.  `Create` reserves `capacity` rows
/// in every column up front and `Append` refuses to grow past it
/// (`ResourceExhausted`), keeping every kernel pointer valid for the
/// ingestor's lifetime.
///
/// Durability (opt-in via `CreateDurable`/`Recover`): a write-ahead log
/// (`ingest/wal.h`) records every accepted batch before it stages and
/// every publish before the watermark moves, fsynced per `WalOptions`.
/// After a crash, `Recover` replays the committed prefix over the same
/// baseline and reconstructs the identical epoch history — post-recovery
/// queries (stats, shuffled walks, reuse-cache watermarks) are
/// bit-identical to a process that never crashed.
///
/// Scope: streaming ingest requires a *denormalized* catalog (single
/// fact table).  Appending to a normalized star schema would need
/// foreign-key maintenance on the materialized/lazy join indexes, which
/// the engines build per-dimension and treat as immutable; `Create`
/// rejects such catalogs.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "ingest/wal.h"
#include "storage/catalog.h"
#include "storage/table.h"

namespace idebench::ingest {

/// One append batch: rows of text fields in fact-schema column order.
/// Fields parse through the same strict path as CSV load
/// (`Column::AppendParsed`), so an ingested row is bit-identical to the
/// same row loaded at startup.
struct RowBatch {
  std::vector<std::vector<std::string>> rows;

  int64_t size() const { return static_cast<int64_t>(rows.size()); }
  bool empty() const { return rows.empty(); }
};

/// Builds a batch from rows [begin, end) of `source` (rendered as text in
/// schema order).  This is how a CSV tail held in a staging table replays
/// through the ingest path.  Out-of-range bounds are clamped.
RowBatch BatchFromTable(const storage::Table& source, int64_t begin,
                        int64_t end);

/// Parses comma-separated lines (no quoting — matches the repo's CSV
/// dialect) into a batch.  Fails on a line whose field count differs from
/// `num_fields`.
Result<RowBatch> BatchFromCsvLines(const std::vector<std::string>& lines,
                                   int num_fields);

/// Cumulative ingest telemetry.
struct IngestStats {
  int64_t rows_staged = 0;       // rows accepted into the open epoch
  int64_t batches = 0;           // successful Append calls
  int64_t epochs_published = 0;  // Publish calls that moved the watermark
  int64_t append_faults = 0;     // injected ingest.append failures
  int64_t publish_faults = 0;    // injected ingest.publish failures
  int64_t rejected_rows = 0;     // rows refused (capacity / parse errors)
};

/// What a WAL replay reconstructed (all counts post-baseline).
struct RecoverInfo {
  int64_t epochs_replayed = 0;
  int64_t rows_replayed = 0;
  int64_t watermark = 0;                // recovered visible watermark
  int64_t uncommitted_rows_dropped = 0; // logged but never committed
  int64_t torn_bytes_dropped = 0;       // crash debris truncated off
};

/// The single-writer ingest front door for one catalog's fact table.
class Ingestor {
 public:
  /// Binds an ingestor to `catalog`'s fact table: reserves `capacity`
  /// total rows (must be >= the current row count) in every column and
  /// enters epoch-visibility mode (`BeginIngest`).  Fails on empty or
  /// normalized catalogs — see the header comment for why.
  static Result<std::unique_ptr<Ingestor>> Create(
      const std::shared_ptr<storage::Catalog>& catalog, int64_t capacity);

  /// Like `Create`, plus durability: starts a fresh WAL in `wal_dir`
  /// (created if missing) whose header pins the fact table's name, column
  /// count, and current row count as the replay baseline.  Every accepted
  /// batch is logged before it stages and every publish is logged (and
  /// fsynced per `options`) before the watermark moves.
  static Result<std::unique_ptr<Ingestor>> CreateDurable(
      const std::shared_ptr<storage::Catalog>& catalog, int64_t capacity,
      const std::string& wal_dir, WalOptions options = WalOptions());

  /// Rebuilds a crashed ingestor: replays the WAL in `wal_dir` over
  /// `catalog` (which must hold the same baseline the WAL was created
  /// against — same fact table name, columns, and row count).  Only
  /// fully committed epochs are replayed, in original batch/publish
  /// order, so the recovered watermark equals the last durable publish
  /// and the epoch history — hence every epoch-seeded shuffled walk —
  /// is bit-identical to the uncrashed process's.  The log itself is
  /// truncated to the committed prefix and appending resumes.  On
  /// failure the catalog may be partially mutated: discard it.
  static Result<std::unique_ptr<Ingestor>> Recover(
      const std::shared_ptr<storage::Catalog>& catalog, int64_t capacity,
      const std::string& wal_dir, WalOptions options = WalOptions(),
      RecoverInfo* info = nullptr);

  /// The WAL file inside `wal_dir` ("<dir>/ingest.wal").
  static std::string WalPath(const std::string& wal_dir);

  ~Ingestor();

  /// Stages `batch` into the open epoch.  All-or-nothing: the whole batch
  /// is validated (field counts and strict scalar parses) before any row
  /// lands, so a failed append leaves the open epoch exactly as it was.
  /// Chaos site `ingest.append` fails here, before staging.  Fails with
  /// `ResourceExhausted` when the batch would exceed the reserved
  /// capacity (kernel pointers must never dangle — see header).
  Status Append(const RowBatch& batch);

  /// Publishes all staged rows as one epoch; returns the new watermark.
  /// Chaos site `ingest.publish` fails *before* the watermark moves:
  /// staged rows stay invisible and a later publish picks them up
  /// (visibility is atomic or not at all).  Publishing with nothing
  /// staged is a no-op returning the current watermark.
  Result<int64_t> Publish();

  /// Rows visible to readers (the published watermark).
  int64_t visible_rows() const { return table_->visible_rows(); }

  /// Rows staged in the open epoch.
  int64_t staged_rows() const { return table_->staged_rows(); }

  /// Total row capacity reserved at creation.
  int64_t capacity() const { return capacity_; }

  /// True when a WAL is attached and every logged byte is on disk: the
  /// serving layer reports this per append/publish so clients know
  /// whether their rows would survive a crash right now.
  bool durable() const { return wal_ != nullptr && wal_->durable(); }

  /// The attached WAL, or nullptr for a volatile (Create'd) ingestor.
  const WalWriter* wal() const { return wal_.get(); }

  /// Flushes the WAL tail to disk (group-commit drain / SIGTERM path).
  /// No-op without a WAL.
  Status SyncWal();

  const IngestStats& stats() const { return stats_; }

  const storage::Table& table() const { return *table_; }

 private:
  Ingestor(std::shared_ptr<storage::Table> table, int64_t capacity)
      : table_(std::move(table)), capacity_(capacity) {}

  std::shared_ptr<storage::Table> table_;
  int64_t capacity_ = 0;
  std::unique_ptr<WalWriter> wal_;
  IngestStats stats_;
};

}  // namespace idebench::ingest

#endif  // IDEBENCH_INGEST_INGEST_H_
