#include "ingest/ingest.h"

#include <filesystem>
#include <string>
#include <utility>

#include "chaos/fault_injector.h"
#include "common/logging.h"
#include "common/string_util.h"

namespace idebench::ingest {

RowBatch BatchFromTable(const storage::Table& source, int64_t begin,
                        int64_t end) {
  RowBatch batch;
  if (begin < 0) begin = 0;
  if (end > source.num_rows()) end = source.num_rows();
  if (begin >= end) return batch;
  batch.rows.reserve(static_cast<size_t>(end - begin));
  for (int64_t r = begin; r < end; ++r) {
    std::vector<std::string> fields;
    fields.reserve(static_cast<size_t>(source.num_columns()));
    for (int c = 0; c < source.num_columns(); ++c) {
      fields.push_back(source.column(c).ValueAsString(r));
    }
    batch.rows.push_back(std::move(fields));
  }
  return batch;
}

Result<RowBatch> BatchFromCsvLines(const std::vector<std::string>& lines,
                                   int num_fields) {
  RowBatch batch;
  batch.rows.reserve(lines.size());
  for (const std::string& line : lines) {
    std::vector<std::string> fields = Split(line, ',');
    for (std::string& f : fields) f = Trim(f);
    if (static_cast<int>(fields.size()) != num_fields) {
      return Status::Invalid(
          "csv line has " + std::to_string(fields.size()) + " fields, want " +
          std::to_string(num_fields) + ": '" + line + "'");
    }
    batch.rows.push_back(std::move(fields));
  }
  return batch;
}

namespace {

/// Validates one field against its column type without appending: the
/// same strict parses `Column::AppendParsed` performs, run up front so a
/// bad row anywhere in a batch rejects the whole batch before any column
/// is touched (all-or-nothing; columns have no truncate to roll back
/// with).  Strings always parse.
Status ValidateField(const storage::Column& col, const std::string& text) {
  switch (col.type()) {
    case storage::DataType::kInt64: {
      int64_t v = 0;
      if (ParseInt64Strict(Trim(text), &v) != StrictParseResult::kOk) {
        return Status::Invalid("column '" + col.name() +
                               "': cannot parse int64 from '" + text + "'");
      }
      return Status::OK();
    }
    case storage::DataType::kDouble: {
      double v = 0.0;
      if (ParseDoubleStrict(Trim(text), &v) != StrictParseResult::kOk) {
        return Status::Invalid("column '" + col.name() +
                               "': cannot parse double from '" + text + "'");
      }
      return Status::OK();
    }
    case storage::DataType::kString:
      return Status::OK();
  }
  return Status::Invalid("column '" + col.name() + "': unknown type");
}

/// Shared Create/CreateDurable/Recover validation: resolves the fact
/// table and checks the catalog shape and capacity.  Does NOT touch the
/// table yet.
Result<std::shared_ptr<storage::Table>> ResolveFactTable(
    const std::shared_ptr<storage::Catalog>& catalog, int64_t capacity) {
  if (catalog == nullptr || catalog->fact_table() == nullptr) {
    return Status::Invalid("ingest: empty catalog");
  }
  if (catalog->is_normalized()) {
    // Join indexes are built per-dimension and treated as immutable by
    // every engine; growing the fact side would silently desynchronize
    // them.  Denormalize first (storage::Denormalize) to ingest.
    return Status::Invalid(
        "streaming ingest requires a denormalized catalog");
  }
  std::shared_ptr<storage::Table> fact =
      catalog->GetTableShared(catalog->fact_table()->name());
  if (fact == nullptr) {
    return Status::Invalid("ingest: fact table not shared through catalog");
  }
  if (capacity < fact->num_rows()) {
    return Status::Invalid("ingest capacity " + std::to_string(capacity) +
                           " below current row count " +
                           std::to_string(fact->num_rows()));
  }
  return fact;
}

}  // namespace

Ingestor::~Ingestor() = default;

std::string Ingestor::WalPath(const std::string& wal_dir) {
  return wal_dir + "/ingest.wal";
}

Result<std::unique_ptr<Ingestor>> Ingestor::Create(
    const std::shared_ptr<storage::Catalog>& catalog, int64_t capacity) {
  IDB_ASSIGN_OR_RETURN(std::shared_ptr<storage::Table> fact,
                       ResolveFactTable(catalog, capacity));
  // One up-front reservation keeps every column's storage at a stable
  // address for the ingestor's lifetime: compiled kernels cache raw data
  // pointers, and an append-triggered reallocation would dangle them.
  fact->Reserve(capacity);
  fact->BeginIngest();
  return std::unique_ptr<Ingestor>(new Ingestor(std::move(fact), capacity));
}

Result<std::unique_ptr<Ingestor>> Ingestor::CreateDurable(
    const std::shared_ptr<storage::Catalog>& catalog, int64_t capacity,
    const std::string& wal_dir, WalOptions options) {
  IDB_ASSIGN_OR_RETURN(std::shared_ptr<storage::Table> fact,
                       ResolveFactTable(catalog, capacity));
  std::error_code ec;
  std::filesystem::create_directories(wal_dir, ec);
  if (ec) {
    return Status::IOError("cannot create wal dir '" + wal_dir +
                           "': " + ec.message());
  }
  WalHeader header;
  header.table_name = fact->name();
  header.baseline_rows = fact->num_rows();
  header.num_columns = fact->num_columns();
  IDB_ASSIGN_OR_RETURN(std::unique_ptr<WalWriter> wal,
                       WalWriter::Create(WalPath(wal_dir), header, options));
  fact->Reserve(capacity);
  fact->BeginIngest();
  std::unique_ptr<Ingestor> ingestor(
      new Ingestor(std::move(fact), capacity));
  ingestor->wal_ = std::move(wal);
  return ingestor;
}

Result<std::unique_ptr<Ingestor>> Ingestor::Recover(
    const std::shared_ptr<storage::Catalog>& catalog, int64_t capacity,
    const std::string& wal_dir, WalOptions options, RecoverInfo* info) {
  IDB_ASSIGN_OR_RETURN(std::shared_ptr<storage::Table> fact,
                       ResolveFactTable(catalog, capacity));
  const std::string path = WalPath(wal_dir);
  IDB_ASSIGN_OR_RETURN(WalScan scan, ReadWal(path));
  if (scan.records.empty() ||
      scan.records.front().type != WalRecordType::kHeader) {
    return Status::Invalid("wal '" + path + "' has no header record");
  }
  // The baseline must be the exact state the log was written against —
  // replaying over anything else would fabricate rows that never passed
  // through Append.
  const WalHeader& header = scan.header;
  if (header.table_name != fact->name()) {
    return Status::Invalid("wal '" + path + "' is for table '" +
                           header.table_name + "', catalog has '" +
                           fact->name() + "'");
  }
  if (header.num_columns != fact->num_columns()) {
    return Status::Invalid(
        "wal '" + path + "' has " + std::to_string(header.num_columns) +
        " columns, catalog has " + std::to_string(fact->num_columns()));
  }
  if (header.baseline_rows != fact->num_rows()) {
    return Status::Invalid(
        "wal '" + path + "' baseline is " +
        std::to_string(header.baseline_rows) + " rows, catalog has " +
        std::to_string(fact->num_rows()) +
        " — not the baseline this log was created against");
  }

  fact->Reserve(capacity);
  fact->BeginIngest();

  RecoverInfo local;
  int64_t batches_replayed = 0;
  const int ncols = fact->num_columns();
  for (const WalRecord& rec : scan.records) {
    const bool committed = rec.offset + rec.bytes <= scan.committed_bytes;
    switch (rec.type) {
      case WalRecordType::kHeader:
        break;
      case WalRecordType::kBatch: {
        if (!committed) {
          // Logged but never followed by a durable commit: the epoch was
          // never visible, so it must not become visible now.
          local.uncommitted_rows_dropped +=
              static_cast<int64_t>(rec.rows.size());
          break;
        }
        if (fact->num_rows() + static_cast<int64_t>(rec.rows.size()) >
            capacity) {
          return Status::ResourceExhausted(
              "wal replay exceeds ingest capacity " +
              std::to_string(capacity));
        }
        for (const std::vector<std::string>& row : rec.rows) {
          if (static_cast<int>(row.size()) != ncols) {
            return Status::Invalid("wal '" + path + "': batch row has " +
                                   std::to_string(row.size()) +
                                   " fields, table has " +
                                   std::to_string(ncols) + " columns");
          }
          for (int c = 0; c < ncols; ++c) {
            // Batches were validated before being logged, so a replay
            // parse failure means the log and catalog disagree.
            IDB_RETURN_NOT_OK(fact->mutable_column(c).AppendParsed(
                row[static_cast<size_t>(c)]));
          }
          ++local.rows_replayed;
        }
        ++batches_replayed;
        break;
      }
      case WalRecordType::kCommit: {
        if (!committed) break;  // unreachable: a commit commits itself
        if (rec.watermark != fact->num_rows()) {
          return Status::Invalid(
              "wal '" + path + "': commit watermark " +
              std::to_string(rec.watermark) + " != replayed row count " +
              std::to_string(fact->num_rows()));
        }
        fact->PublishEpoch();
        ++local.epochs_replayed;
        break;
      }
    }
  }
  IDB_CHECK(fact->staged_rows() == 0);  // committed prefix ends at a commit
  local.watermark = fact->visible_rows();
  local.torn_bytes_dropped = static_cast<int64_t>(scan.torn_bytes);

  IDB_ASSIGN_OR_RETURN(std::unique_ptr<WalWriter> wal,
                       WalWriter::Resume(path, scan, options));
  std::unique_ptr<Ingestor> ingestor(
      new Ingestor(std::move(fact), capacity));
  ingestor->wal_ = std::move(wal);
  // Seed the telemetry so serving counters reflect the whole log's
  // history, not just the post-recovery tail.
  ingestor->stats_.rows_staged = local.rows_replayed;
  ingestor->stats_.batches = batches_replayed;
  ingestor->stats_.epochs_published = local.epochs_replayed;
  if (info != nullptr) *info = local;
  return ingestor;
}

Status Ingestor::Append(const RowBatch& batch) {
  if (batch.empty()) return Status::OK();
  // Chaos site: the append fails I/O-style before staging any row.  The
  // open epoch is untouched, so a retry (or a later batch) starts clean.
  if (chaos::FaultInjector::Fire(chaos::FaultSite::kIngestAppend)) {
    ++stats_.append_faults;
    return Status::IOError("injected ingest append fault");
  }
  if (table_->num_rows() + batch.size() > capacity_) {
    stats_.rejected_rows += batch.size();
    return Status::ResourceExhausted(
        "ingest capacity exhausted: " + std::to_string(table_->num_rows()) +
        " rows + batch of " + std::to_string(batch.size()) + " > " +
        std::to_string(capacity_));
  }
  const int ncols = table_->num_columns();
  for (const std::vector<std::string>& row : batch.rows) {
    if (static_cast<int>(row.size()) != ncols) {
      stats_.rejected_rows += batch.size();
      return Status::Invalid("ingest row has " + std::to_string(row.size()) +
                             " fields, want " + std::to_string(ncols));
    }
    for (int c = 0; c < ncols; ++c) {
      const Status st =
          ValidateField(table_->column(c), row[static_cast<size_t>(c)]);
      if (!st.ok()) {
        stats_.rejected_rows += batch.size();
        return st;
      }
    }
  }
  // Log-then-stage: the batch reaches the WAL before any column sees it,
  // so replay can never contain fewer rows than the table (the converse —
  // logged but not staged, because we crashed right here — is exactly
  // what commit records exist to exclude from recovery).
  if (wal_ != nullptr) {
    const Status st = wal_->AppendBatch(batch.rows);
    if (!st.ok()) {
      stats_.rejected_rows += batch.size();
      return st;
    }
  }
  // Every row validated: the appends below cannot fail.
  for (const std::vector<std::string>& row : batch.rows) {
    for (int c = 0; c < ncols; ++c) {
      const Status st =
          table_->mutable_column(c).AppendParsed(row[static_cast<size_t>(c)]);
      IDB_CHECK(st.ok());  // pre-validated above: cannot fail
    }
  }
  stats_.rows_staged += batch.size();
  ++stats_.batches;
  return Status::OK();
}

Result<int64_t> Ingestor::Publish() {
  // Chaos site: the publish fails before the watermark moves.  Staged
  // rows stay invisible; the next successful publish folds them in.
  if (chaos::FaultInjector::Fire(chaos::FaultSite::kIngestPublish)) {
    ++stats_.publish_faults;
    return Status::IOError("injected ingest publish fault");
  }
  const int64_t staged = table_->staged_rows();
  // Commit-then-publish: the epoch is durable (per the sync policy)
  // before it becomes visible, so recovery can never show a watermark
  // the log cannot justify.  On failure the WAL has already rolled the
  // commit record back — staged rows stay invisible, the watermark does
  // not move, and the next successful publish folds them in.
  if (wal_ != nullptr && staged > 0) {
    IDB_RETURN_NOT_OK(wal_->AppendCommit(table_->num_rows(),
                                         stats_.epochs_published + 1));
  }
  const int64_t watermark = table_->PublishEpoch();
  if (staged > 0) ++stats_.epochs_published;
  return watermark;
}

Status Ingestor::SyncWal() {
  if (wal_ == nullptr) return Status::OK();
  return wal_->Sync();
}

}  // namespace idebench::ingest
