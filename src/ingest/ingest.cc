#include "ingest/ingest.h"

#include <string>
#include <utility>

#include "chaos/fault_injector.h"
#include "common/logging.h"
#include "common/string_util.h"

namespace idebench::ingest {

RowBatch BatchFromTable(const storage::Table& source, int64_t begin,
                        int64_t end) {
  RowBatch batch;
  if (begin < 0) begin = 0;
  if (end > source.num_rows()) end = source.num_rows();
  if (begin >= end) return batch;
  batch.rows.reserve(static_cast<size_t>(end - begin));
  for (int64_t r = begin; r < end; ++r) {
    std::vector<std::string> fields;
    fields.reserve(static_cast<size_t>(source.num_columns()));
    for (int c = 0; c < source.num_columns(); ++c) {
      fields.push_back(source.column(c).ValueAsString(r));
    }
    batch.rows.push_back(std::move(fields));
  }
  return batch;
}

Result<RowBatch> BatchFromCsvLines(const std::vector<std::string>& lines,
                                   int num_fields) {
  RowBatch batch;
  batch.rows.reserve(lines.size());
  for (const std::string& line : lines) {
    std::vector<std::string> fields = Split(line, ',');
    for (std::string& f : fields) f = Trim(f);
    if (static_cast<int>(fields.size()) != num_fields) {
      return Status::Invalid(
          "csv line has " + std::to_string(fields.size()) + " fields, want " +
          std::to_string(num_fields) + ": '" + line + "'");
    }
    batch.rows.push_back(std::move(fields));
  }
  return batch;
}

namespace {

/// Validates one field against its column type without appending: the
/// same strict parses `Column::AppendParsed` performs, run up front so a
/// bad row anywhere in a batch rejects the whole batch before any column
/// is touched (all-or-nothing; columns have no truncate to roll back
/// with).  Strings always parse.
Status ValidateField(const storage::Column& col, const std::string& text) {
  switch (col.type()) {
    case storage::DataType::kInt64: {
      int64_t v = 0;
      if (ParseInt64Strict(Trim(text), &v) != StrictParseResult::kOk) {
        return Status::Invalid("column '" + col.name() +
                               "': cannot parse int64 from '" + text + "'");
      }
      return Status::OK();
    }
    case storage::DataType::kDouble: {
      double v = 0.0;
      if (ParseDoubleStrict(Trim(text), &v) != StrictParseResult::kOk) {
        return Status::Invalid("column '" + col.name() +
                               "': cannot parse double from '" + text + "'");
      }
      return Status::OK();
    }
    case storage::DataType::kString:
      return Status::OK();
  }
  return Status::Invalid("column '" + col.name() + "': unknown type");
}

}  // namespace

Result<std::unique_ptr<Ingestor>> Ingestor::Create(
    const std::shared_ptr<storage::Catalog>& catalog, int64_t capacity) {
  if (catalog == nullptr || catalog->fact_table() == nullptr) {
    return Status::Invalid("ingest: empty catalog");
  }
  if (catalog->is_normalized()) {
    // Join indexes are built per-dimension and treated as immutable by
    // every engine; growing the fact side would silently desynchronize
    // them.  Denormalize first (storage::Denormalize) to ingest.
    return Status::Invalid(
        "streaming ingest requires a denormalized catalog");
  }
  std::shared_ptr<storage::Table> fact =
      catalog->GetTableShared(catalog->fact_table()->name());
  if (fact == nullptr) {
    return Status::Invalid("ingest: fact table not shared through catalog");
  }
  if (capacity < fact->num_rows()) {
    return Status::Invalid("ingest capacity " + std::to_string(capacity) +
                           " below current row count " +
                           std::to_string(fact->num_rows()));
  }
  // One up-front reservation keeps every column's storage at a stable
  // address for the ingestor's lifetime: compiled kernels cache raw data
  // pointers, and an append-triggered reallocation would dangle them.
  fact->Reserve(capacity);
  fact->BeginIngest();
  return std::unique_ptr<Ingestor>(new Ingestor(std::move(fact), capacity));
}

Status Ingestor::Append(const RowBatch& batch) {
  if (batch.empty()) return Status::OK();
  // Chaos site: the append fails I/O-style before staging any row.  The
  // open epoch is untouched, so a retry (or a later batch) starts clean.
  if (chaos::FaultInjector::Fire(chaos::FaultSite::kIngestAppend)) {
    ++stats_.append_faults;
    return Status::IOError("injected ingest append fault");
  }
  if (table_->num_rows() + batch.size() > capacity_) {
    stats_.rejected_rows += batch.size();
    return Status::ResourceExhausted(
        "ingest capacity exhausted: " + std::to_string(table_->num_rows()) +
        " rows + batch of " + std::to_string(batch.size()) + " > " +
        std::to_string(capacity_));
  }
  const int ncols = table_->num_columns();
  for (const std::vector<std::string>& row : batch.rows) {
    if (static_cast<int>(row.size()) != ncols) {
      stats_.rejected_rows += batch.size();
      return Status::Invalid("ingest row has " + std::to_string(row.size()) +
                             " fields, want " + std::to_string(ncols));
    }
    for (int c = 0; c < ncols; ++c) {
      const Status st =
          ValidateField(table_->column(c), row[static_cast<size_t>(c)]);
      if (!st.ok()) {
        stats_.rejected_rows += batch.size();
        return st;
      }
    }
  }
  // Every row validated: the appends below cannot fail.
  for (const std::vector<std::string>& row : batch.rows) {
    for (int c = 0; c < ncols; ++c) {
      const Status st =
          table_->mutable_column(c).AppendParsed(row[static_cast<size_t>(c)]);
      IDB_CHECK(st.ok());  // pre-validated above: cannot fail
    }
  }
  stats_.rows_staged += batch.size();
  ++stats_.batches;
  return Status::OK();
}

Result<int64_t> Ingestor::Publish() {
  // Chaos site: the publish fails before the watermark moves.  Staged
  // rows stay invisible; the next successful publish folds them in.
  if (chaos::FaultInjector::Fire(chaos::FaultSite::kIngestPublish)) {
    ++stats_.publish_faults;
    return Status::IOError("injected ingest publish fault");
  }
  const int64_t staged = table_->staged_rows();
  const int64_t watermark = table_->PublishEpoch();
  if (staged > 0) ++stats_.epochs_published;
  return watermark;
}

}  // namespace idebench::ingest
