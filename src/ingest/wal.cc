#include "ingest/wal.h"

#include <errno.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <utility>

#include "chaos/fault_injector.h"
#include "common/logging.h"
#include "storage/durable_io.h"

namespace idebench::ingest {

namespace {

// 'I''W''A''L' read back as a native-endian u32 on a little-endian host.
// Same trick as the segment magic: a log from a different-endian machine
// fails this compare before any multi-byte field is trusted.
constexpr uint32_t kWalMagic = 0x4C415749u;
constexpr uint64_t kFrameHeaderBytes = 4 + 1 + 8 + 4;  // magic,type,seq,len
constexpr uint64_t kFrameTrailerBytes = 8;             // fnv1a
constexpr uint64_t kMinFrameBytes = kFrameHeaderBytes + kFrameTrailerBytes;

uint64_t Fnv1a(const uint8_t* data, uint64_t n) {
  uint64_t h = 14695981039346656037ULL;
  for (uint64_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 1099511628211ULL;
  }
  return h;
}

void PutBytes(std::string* buf, const void* p, size_t n) {
  buf->append(static_cast<const char*>(p), n);
}
void PutU8(std::string* buf, uint8_t v) { PutBytes(buf, &v, 1); }
void PutU32(std::string* buf, uint32_t v) { PutBytes(buf, &v, 4); }
void PutU64(std::string* buf, uint64_t v) { PutBytes(buf, &v, 8); }
void PutString(std::string* buf, const std::string& s) {
  PutU32(buf, static_cast<uint32_t>(s.size()));
  PutBytes(buf, s.data(), s.size());
}

/// Frames one record: header, payload, fnv1a over everything preceding.
std::string FrameRecord(WalRecordType type, uint64_t sequence,
                        const std::string& payload) {
  std::string frame;
  frame.reserve(kMinFrameBytes + payload.size());
  PutU32(&frame, kWalMagic);
  PutU8(&frame, static_cast<uint8_t>(type));
  PutU64(&frame, sequence);
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  frame += payload;
  PutU64(&frame,
         Fnv1a(reinterpret_cast<const uint8_t*>(frame.data()), frame.size()));
  return frame;
}

/// Bounds-checked sequential reader over a byte range; any out-of-bounds
/// read trips `ok` and every later read no-ops (the caller checks once).
struct Cursor {
  const uint8_t* data;
  uint64_t size;
  uint64_t off = 0;
  bool ok = true;

  bool Take(void* dst, uint64_t n) {
    if (!ok || size - off < n) {
      ok = false;
      return false;
    }
    std::memcpy(dst, data + off, n);
    off += n;
    return true;
  }
  uint8_t U8() {
    uint8_t v = 0;
    Take(&v, 1);
    return v;
  }
  uint32_t U32() {
    uint32_t v = 0;
    Take(&v, 4);
    return v;
  }
  uint64_t U64() {
    uint64_t v = 0;
    Take(&v, 8);
    return v;
  }
  std::string Str() {
    const uint32_t n = U32();
    if (!ok || size - off < n) {
      ok = false;
      return std::string();
    }
    std::string s(reinterpret_cast<const char*>(data + off), n);
    off += n;
    return s;
  }
};

/// Structural validation + decode of the frame at `off`.  Checks framing,
/// bounds, checksum, and that the payload decodes cleanly and completely;
/// does NOT check sequence continuity or record ordering (the scan loop
/// owns those).  Returns false without touching `rec` on any defect.
bool ParseFrameAt(const uint8_t* data, uint64_t size, uint64_t off,
                  WalRecord* rec) {
  if (size - off < kMinFrameBytes) return false;
  Cursor cur{data + off, size - off};
  if (cur.U32() != kWalMagic) return false;
  const uint8_t type = cur.U8();
  if (type > static_cast<uint8_t>(WalRecordType::kCommit)) return false;
  const uint64_t sequence = cur.U64();
  const uint64_t payload = cur.U32();
  if (payload > size - off - kMinFrameBytes) return false;
  const uint64_t body = kFrameHeaderBytes + payload;
  uint64_t stored = 0;
  std::memcpy(&stored, data + off + body, 8);
  if (Fnv1a(data + off, body) != stored) return false;

  WalRecord out;
  out.type = static_cast<WalRecordType>(type);
  out.sequence = sequence;
  out.offset = off;
  out.bytes = body + kFrameTrailerBytes;
  Cursor pay{data + off + kFrameHeaderBytes, payload};
  switch (out.type) {
    case WalRecordType::kHeader:
      out.header.table_name = pay.Str();
      out.header.baseline_rows = static_cast<int64_t>(pay.U64());
      out.header.num_columns = static_cast<int>(pay.U32());
      break;
    case WalRecordType::kBatch: {
      const uint32_t rows = pay.U32();
      const uint32_t cols = pay.U32();
      // Cheap bound before reserving: every field costs >= 4 bytes.
      if (!pay.ok || static_cast<uint64_t>(rows) * cols > payload / 4) {
        return false;
      }
      out.rows.reserve(rows);
      for (uint32_t r = 0; r < rows && pay.ok; ++r) {
        std::vector<std::string> fields;
        fields.reserve(cols);
        for (uint32_t c = 0; c < cols; ++c) fields.push_back(pay.Str());
        out.rows.push_back(std::move(fields));
      }
      break;
    }
    case WalRecordType::kCommit:
      out.watermark = static_cast<int64_t>(pay.U64());
      out.epoch = static_cast<int64_t>(pay.U64());
      break;
  }
  // A checksum-valid record whose payload over- or under-runs its length
  // field is malformed framing, not bit rot — reject it the same way.
  if (!pay.ok || pay.off != payload) return false;
  *rec = std::move(out);
  return true;
}

/// True when any fully valid record frame starts in [from, size): the
/// discriminator between a torn tail (crash debris, truncatable) and
/// mid-log corruption (bit rot, must hard-error).
bool AnyValidFrameAfter(const uint8_t* data, uint64_t size, uint64_t from) {
  if (size < kMinFrameBytes) return false;
  WalRecord scratch;
  for (uint64_t o = from; o + kMinFrameBytes <= size; ++o) {
    uint32_t magic = 0;
    std::memcpy(&magic, data + o, 4);
    if (magic != kWalMagic) continue;
    if (ParseFrameAt(data, size, o, &scratch)) return true;
  }
  return false;
}

std::string Errno(const char* op, const std::string& path) {
  return std::string(op) + " '" + path + "': " + std::strerror(errno);
}

}  // namespace

const char* WalSyncName(WalSync sync) {
  switch (sync) {
    case WalSync::kEveryCommit:
      return "every_commit";
    case WalSync::kGrouped:
      return "grouped";
    case WalSync::kNone:
      return "none";
  }
  return "unknown";
}

Result<WalScan> ReadWal(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open wal '" + path + "'");
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  const uint8_t* data = reinterpret_cast<const uint8_t*>(bytes.data());
  const uint64_t size = bytes.size();

  WalScan scan;
  uint64_t off = 0;
  uint64_t expected_seq = 0;
  while (off < size) {
    WalRecord rec;
    if (!ParseFrameAt(data, size, off, &rec)) {
      if (AnyValidFrameAfter(data, size, off + 1)) {
        return Status::Invalid(
            "wal '" + path + "' corrupt at offset " + std::to_string(off) +
            " with valid records after it (bit rot, not a torn tail); "
            "refusing to silently drop committed history");
      }
      scan.torn_bytes = size - off;
      break;
    }
    // Structure is sound; now the log-level invariants.  These can only
    // fail on checksum-valid records, i.e. a spliced or logic-corrupt
    // log — never crash debris — so they always hard-error.
    if (rec.sequence != expected_seq) {
      return Status::Invalid("wal '" + path + "': sequence " +
                             std::to_string(rec.sequence) + " at offset " +
                             std::to_string(off) + ", want " +
                             std::to_string(expected_seq));
    }
    const bool is_header = rec.type == WalRecordType::kHeader;
    if (is_header != (off == 0)) {
      return Status::Invalid(
          "wal '" + path + "': header record " +
          (is_header ? "repeated mid-log" : "missing at offset 0"));
    }
    if (is_header) scan.header = rec.header;
    off += rec.bytes;
    ++expected_seq;
    if (rec.type == WalRecordType::kCommit) {
      scan.committed_bytes = off;
      scan.last_commit_watermark = rec.watermark;
      ++scan.commits;
    }
    scan.records.push_back(std::move(rec));
  }
  scan.valid_bytes = off;
  scan.next_sequence = expected_seq;
  return scan;
}

// --- Writer ------------------------------------------------------------

WalWriter::WalWriter(std::string path, int fd, WalOptions options)
    : path_(std::move(path)), fd_(fd), options_(options) {}

WalWriter::~WalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<WalWriter>> WalWriter::Create(const std::string& path,
                                                     const WalHeader& header,
                                                     WalOptions options) {
  if (options.group_commit_interval < 1) {
    return Status::Invalid("wal group_commit_interval must be >= 1");
  }
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return Status::IOError(Errno("open wal", path));
  std::unique_ptr<WalWriter> wal(new WalWriter(path, fd, options));

  std::string payload;
  PutString(&payload, header.table_name);
  PutU64(&payload, static_cast<uint64_t>(header.baseline_rows));
  PutU32(&payload, static_cast<uint32_t>(header.num_columns));
  // Creation is not a swept crash point: no chaos on the header write or
  // its sync, so wal.append/wal.fsync draw indices count from the first
  // logged batch/commit (deterministic crash-point addressing).
  IDB_RETURN_NOT_OK(
      wal->WriteRecord(FrameRecord(WalRecordType::kHeader, 0, payload),
                       /*chaos_site=*/-1, nullptr));
  if (::fsync(fd) != 0) return Status::IOError(Errno("fsync wal", path));
  wal->synced_bytes_ = wal->offset_;
  // The log's existence must survive a crash too.
  IDB_RETURN_NOT_OK(storage::FsyncDirectory(
      std::filesystem::path(path).parent_path().string()));
  return wal;
}

Result<std::unique_ptr<WalWriter>> WalWriter::Resume(const std::string& path,
                                                     const WalScan& scan,
                                                     WalOptions options) {
  if (options.group_commit_interval < 1) {
    return Status::Invalid("wal group_commit_interval must be >= 1");
  }
  if (scan.records.empty() ||
      scan.records.front().type != WalRecordType::kHeader) {
    return Status::Invalid("cannot resume wal '" + path + "': no header");
  }
  const int fd = ::open(path.c_str(), O_WRONLY | O_CLOEXEC);
  if (fd < 0) return Status::IOError(Errno("open wal", path));
  std::unique_ptr<WalWriter> wal(new WalWriter(path, fd, options));
  // Drop the uncommitted tail the replay also dropped: from here on the
  // log and the recovered table tell the same story, and new appends
  // land right after the last committed record.  The header always
  // survives (a commitless log truncates back to just the header).
  const uint64_t keep = scan.commits > 0
                            ? scan.committed_bytes
                            : scan.records.front().bytes;
  if (::ftruncate(fd, static_cast<off_t>(keep)) != 0) {
    return Status::IOError(Errno("truncate wal", path));
  }
  if (::fsync(fd) != 0) return Status::IOError(Errno("fsync wal", path));
  wal->offset_ = keep;
  wal->synced_bytes_ = keep;
  // Continue the sequence after the last *surviving* record (the scan's
  // next_sequence counts truncated tail records too).
  uint64_t next = 0;
  for (const WalRecord& rec : scan.records) {
    if (rec.offset + rec.bytes <= keep) next = rec.sequence + 1;
  }
  wal->next_sequence_ = next;
  return wal;
}

Status WalWriter::WriteRecord(const std::string& frame, int chaos_site,
                              int64_t* fault_counter) {
  const uint64_t start = offset_;
  const size_t n = frame.size();
  const size_t half = n / 2;
  size_t written = 0;
  Status st = Status::OK();
  while (written < n) {
    if (written == half && chaos_site >= 0 &&
        chaos::FaultInjector::Fire(
            static_cast<chaos::FaultSite>(chaos_site))) {
      if (fault_counter != nullptr) ++*fault_counter;
      st = Status::IOError("injected wal fault mid-record (" +
                           std::string(chaos::FaultSiteName(
                               static_cast<chaos::FaultSite>(chaos_site))) +
                           ")");
      break;
    }
    // Cap writes at the half boundary so the chaos draw above sits at a
    // deterministic byte offset (and a kill there leaves a real torn
    // half-record on disk for recovery to truncate).
    const size_t want = written < half ? half - written : n - written;
    const ssize_t rc = ::pwrite(fd_, frame.data() + written, want,
                                static_cast<off_t>(start + written));
    if (rc < 0) {
      if (errno == EINTR) continue;
      st = Status::IOError(Errno("write wal", path_));
      break;
    }
    if (rc == 0) {
      st = Status::IOError("short write to wal '" + path_ + "'");
      break;
    }
    written += static_cast<size_t>(rc);
  }
  if (!st.ok()) {
    // Truncate-on-failure: the log must never hold a partial record
    // while the process lives — replay would otherwise disagree with
    // the in-memory epoch history after a failed-then-retried publish.
    if (::ftruncate(fd_, static_cast<off_t>(start)) != 0) {
      return Status::IOError(st.message() + "; and " +
                             Errno("rollback truncate failed on", path_));
    }
    stats_.rollback_bytes += static_cast<int64_t>(written);
    return st;
  }
  offset_ = start + n;
  ++next_sequence_;
  stats_.bytes_logged = static_cast<int64_t>(offset_);
  return Status::OK();
}

Status WalWriter::AppendBatch(
    const std::vector<std::vector<std::string>>& rows) {
  if (rows.empty()) return Status::OK();
  const uint32_t cols = static_cast<uint32_t>(rows.front().size());
  std::string payload;
  PutU32(&payload, static_cast<uint32_t>(rows.size()));
  PutU32(&payload, cols);
  for (const std::vector<std::string>& row : rows) {
    IDB_CHECK(row.size() == cols);  // Ingestor validated the batch shape
    for (const std::string& field : row) PutString(&payload, field);
  }
  IDB_RETURN_NOT_OK(WriteRecord(
      FrameRecord(WalRecordType::kBatch, next_sequence_, payload),
      static_cast<int>(chaos::FaultSite::kWalAppend), &stats_.append_faults));
  ++stats_.batches_logged;
  return Status::OK();
}

Status WalWriter::AppendCommit(int64_t watermark, int64_t epoch) {
  const uint64_t start = offset_;
  std::string payload;
  PutU64(&payload, static_cast<uint64_t>(watermark));
  PutU64(&payload, static_cast<uint64_t>(epoch));
  IDB_RETURN_NOT_OK(WriteRecord(
      FrameRecord(WalRecordType::kCommit, next_sequence_, payload),
      static_cast<int>(chaos::FaultSite::kWalCommit), &stats_.commit_faults));
  const bool sync_now =
      options_.sync == WalSync::kEveryCommit ||
      (options_.sync == WalSync::kGrouped &&
       commits_since_sync_ + 1 >= options_.group_commit_interval);
  if (sync_now) {
    const Status st = SyncInternal(start, &stats_.fsync_faults);
    if (!st.ok()) return st;
    commits_since_sync_ = 0;
  } else {
    ++commits_since_sync_;
  }
  ++stats_.commits_logged;
  return Status::OK();
}

Status WalWriter::SyncInternal(uint64_t rollback_to, int64_t* fault_counter) {
  // The wal.fsync site models the sync that makes a commit durable
  // failing (with kill-on-fire: the process dying right before it).
  Status st = Status::OK();
  if (chaos::FaultInjector::Fire(chaos::FaultSite::kWalFsync)) {
    if (fault_counter != nullptr) ++*fault_counter;
    st = Status::IOError("injected wal fsync fault");
  } else if (::fsync(fd_) != 0) {
    st = Status::IOError(Errno("fsync wal", path_));
  }
  if (!st.ok()) {
    if (rollback_to < offset_) {
      // Roll the just-written commit record off the log: the publish is
      // about to report failure with the watermark unmoved, so replay
      // must never see this commit either.
      if (::ftruncate(fd_, static_cast<off_t>(rollback_to)) != 0) {
        return Status::IOError(st.message() + "; and " +
                               Errno("rollback truncate failed on", path_));
      }
      stats_.rollback_bytes += static_cast<int64_t>(offset_ - rollback_to);
      offset_ = rollback_to;
      --next_sequence_;
      stats_.bytes_logged = static_cast<int64_t>(offset_);
      if (synced_bytes_ > offset_) synced_bytes_ = offset_;
    }
    return st;
  }
  synced_bytes_ = offset_;
  ++stats_.syncs;
  return Status::OK();
}

Status WalWriter::Sync() {
  if (durable()) return Status::OK();
  // A standalone sync (group-commit drain, SIGTERM) has no record to
  // roll back: failure just leaves the tail non-durable for a retry.
  const Status st = SyncInternal(offset_, &stats_.fsync_faults);
  if (st.ok()) commits_since_sync_ = 0;
  return st;
}

}  // namespace idebench::ingest
