#include "common/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <system_error>

namespace idebench {

JsonValue JsonValue::Object() {
  JsonValue v;
  v.type_ = Type::kObject;
  return v;
}

JsonValue JsonValue::Array() {
  JsonValue v;
  v.type_ = Type::kArray;
  return v;
}

size_t JsonValue::size() const {
  if (type_ == Type::kArray) return array_.size();
  if (type_ == Type::kObject) return members_.size();
  return 0;
}

const JsonValue& JsonValue::at(size_t i) const {
  static const JsonValue kNull;
  if (type_ != Type::kArray || i >= array_.size()) return kNull;
  return array_[i];
}

void JsonValue::Append(JsonValue v) {
  if (type_ != Type::kArray) {
    type_ = Type::kArray;
    array_.clear();
  }
  array_.push_back(std::move(v));
}

bool JsonValue::Has(const std::string& key) const {
  for (const auto& m : members_) {
    if (m.first == key) return true;
  }
  return false;
}

const JsonValue& JsonValue::Get(const std::string& key) const {
  static const JsonValue kNull;
  for (const auto& m : members_) {
    if (m.first == key) return m.second;
  }
  return kNull;
}

void JsonValue::Set(const std::string& key, JsonValue v) {
  if (type_ != Type::kObject) {
    type_ = Type::kObject;
    members_.clear();
  }
  for (auto& m : members_) {
    if (m.first == key) {
      m.second = std::move(v);
      return;
    }
  }
  members_.emplace_back(key, std::move(v));
}

double JsonValue::GetDouble(const std::string& key, double fallback) const {
  const JsonValue& v = Get(key);
  return v.is_number() ? v.AsDouble() : fallback;
}

int64_t JsonValue::GetInt(const std::string& key, int64_t fallback) const {
  const JsonValue& v = Get(key);
  return v.is_number() ? v.AsInt() : fallback;
}

bool JsonValue::GetBool(const std::string& key, bool fallback) const {
  const JsonValue& v = Get(key);
  return v.is_bool() ? v.AsBool() : fallback;
}

std::string JsonValue::GetString(const std::string& key,
                                 const std::string& fallback) const {
  const JsonValue& v = Get(key);
  return v.is_string() ? v.AsString() : fallback;
}

namespace {

void EscapeTo(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void NumberTo(double d, std::string* out) {
  if (std::isfinite(d) && d == std::floor(d) && std::fabs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
    *out += buf;
    return;
  }
  if (!std::isfinite(d)) {  // JSON has no Inf/NaN; emit null.
    *out += "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  *out += buf;
}

void Indent(std::string* out, int indent, int depth) {
  if (indent <= 0) return;
  out->push_back('\n');
  out->append(static_cast<size_t>(indent * depth), ' ');
}

}  // namespace

void JsonValue::DumpTo(std::string* out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull:
      *out += "null";
      return;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      return;
    case Type::kNumber:
      NumberTo(number_, out);
      return;
    case Type::kString:
      EscapeTo(string_, out);
      return;
    case Type::kArray: {
      if (array_.empty()) {
        *out += "[]";
        return;
      }
      out->push_back('[');
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out->push_back(',');
        Indent(out, indent, depth + 1);
        array_[i].DumpTo(out, indent, depth + 1);
      }
      Indent(out, indent, depth);
      out->push_back(']');
      return;
    }
    case Type::kObject: {
      if (members_.empty()) {
        *out += "{}";
        return;
      }
      out->push_back('{');
      for (size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out->push_back(',');
        Indent(out, indent, depth + 1);
        EscapeTo(members_[i].first, out);
        *out += indent > 0 ? ": " : ":";
        members_[i].second.DumpTo(out, indent, depth + 1);
      }
      Indent(out, indent, depth);
      out->push_back('}');
      return;
    }
  }
}

std::string JsonValue::Dump() const {
  std::string out;
  DumpTo(&out, /*indent=*/0, /*depth=*/0);
  return out;
}

std::string JsonValue::DumpPretty() const {
  std::string out;
  DumpTo(&out, /*indent=*/2, /*depth=*/0);
  return out;
}

bool JsonValue::operator==(const JsonValue& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull:
      return true;
    case Type::kBool:
      return bool_ == other.bool_;
    case Type::kNumber:
      return number_ == other.number_;
    case Type::kString:
      return string_ == other.string_;
    case Type::kArray:
      return array_ == other.array_;
    case Type::kObject:
      return members_ == other.members_;
  }
  return false;
}

namespace {

/// Recursive-descent JSON parser over a string view.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<JsonValue> ParseDocument() {
    SkipWs();
    JsonValue v;
    IDB_RETURN_NOT_OK(ParseValue(&v));
    SkipWs();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return v;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::Invalid("JSON parse error at offset " +
                           std::to_string(pos_) + ": " + what);
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out) {
    if (++depth_ > kMaxDepth) return Error("nesting too deep");
    SkipWs();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    Status st;
    switch (text_[pos_]) {
      case '{':
        st = ParseObject(out);
        break;
      case '[':
        st = ParseArray(out);
        break;
      case '"': {
        std::string s;
        st = ParseString(&s);
        if (st.ok()) *out = JsonValue(std::move(s));
        break;
      }
      case 't':
        st = ParseLiteral("true");
        if (st.ok()) *out = JsonValue(true);
        break;
      case 'f':
        st = ParseLiteral("false");
        if (st.ok()) *out = JsonValue(false);
        break;
      case 'n':
        st = ParseLiteral("null");
        if (st.ok()) *out = JsonValue(nullptr);
        break;
      default:
        st = ParseNumber(out);
    }
    --depth_;
    return st;
  }

  Status ParseLiteral(const char* lit) {
    size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (text_.compare(pos_, n, lit) != 0) return Error("invalid literal");
    pos_ += n;
    return Status::OK();
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("invalid number");
    // std::from_chars: locale-independent (strtod honors the C locale's
    // decimal separator), and out-of-range input is an explicit error
    // instead of a silent ±HUGE_VAL.  The full token must be consumed.
    double d = 0.0;
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    const auto [ptr, ec] = std::from_chars(first, last, d);
    if (ec == std::errc::result_out_of_range) {
      return Error("number out of range");
    }
    if (ec != std::errc() || ptr != last) return Error("invalid number");
    *out = JsonValue(d);
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Error("expected '\"'");
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (c == '\\') {
        if (pos_ >= text_.size()) return Error("unterminated escape");
        char e = text_[pos_++];
        switch (e) {
          case '"':
            out->push_back('"');
            break;
          case '\\':
            out->push_back('\\');
            break;
          case '/':
            out->push_back('/');
            break;
          case 'b':
            out->push_back('\b');
            break;
          case 'f':
            out->push_back('\f');
            break;
          case 'n':
            out->push_back('\n');
            break;
          case 'r':
            out->push_back('\r');
            break;
          case 't':
            out->push_back('\t');
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Error("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code += static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code += static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code += static_cast<unsigned>(h - 'A' + 10);
              } else {
                return Error("bad \\u escape");
              }
            }
            // UTF-8 encode the BMP code point (surrogate pairs are passed
            // through as-is; workflow specs are ASCII in practice).
            if (code < 0x80) {
              out->push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out->push_back(static_cast<char>(0xC0 | (code >> 6)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out->push_back(static_cast<char>(0xE0 | (code >> 12)));
              out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return Error("unknown escape");
        }
      } else {
        out->push_back(c);
      }
    }
    return Error("unterminated string");
  }

  Status ParseArray(JsonValue* out) {
    Consume('[');
    *out = JsonValue::Array();
    SkipWs();
    if (Consume(']')) return Status::OK();
    while (true) {
      JsonValue elem;
      IDB_RETURN_NOT_OK(ParseValue(&elem));
      out->Append(std::move(elem));
      SkipWs();
      if (Consume(']')) return Status::OK();
      if (!Consume(',')) return Error("expected ',' or ']'");
    }
  }

  Status ParseObject(JsonValue* out) {
    Consume('{');
    *out = JsonValue::Object();
    SkipWs();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWs();
      std::string key;
      IDB_RETURN_NOT_OK(ParseString(&key));
      SkipWs();
      if (!Consume(':')) return Error("expected ':'");
      JsonValue value;
      IDB_RETURN_NOT_OK(ParseValue(&value));
      out->Set(key, std::move(value));
      SkipWs();
      if (Consume('}')) return Status::OK();
      if (!Consume(',')) return Error("expected ',' or '}'");
    }
  }

  static constexpr int kMaxDepth = 128;

  const std::string& text_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Result<JsonValue> JsonValue::Parse(const std::string& text) {
  Parser p(text);
  return p.ParseDocument();
}

}  // namespace idebench
