#ifndef IDEBENCH_COMMON_CLOCK_H_
#define IDEBENCH_COMMON_CLOCK_H_

/// \file clock.h
/// Time source abstraction for the benchmark driver.
///
/// The paper's experiments enforce wall-clock time requirements on
/// terabyte-scale installations.  This reproduction replaces the authors'
/// testbed with a deterministic *virtual clock*: engines are cooperative
/// simulators that charge a calibrated per-tuple cost, and the driver
/// advances a `VirtualClock` accordingly.  `WallClock` is provided for
/// sanity runs against real elapsed time.

#include <cstdint>

namespace idebench {

/// A duration/time-point in microseconds.  Signed so arithmetic on
/// deadlines is safe.
using Micros = int64_t;

constexpr Micros kMicrosPerSecond = 1'000'000;

/// Converts seconds (double) to microseconds, rounding to nearest.
constexpr Micros SecondsToMicros(double seconds) {
  return static_cast<Micros>(seconds * static_cast<double>(kMicrosPerSecond) +
                             (seconds >= 0 ? 0.5 : -0.5));
}

/// Converts microseconds to seconds.
constexpr double MicrosToSeconds(Micros micros) {
  return static_cast<double>(micros) / static_cast<double>(kMicrosPerSecond);
}

/// Abstract monotonic time source.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Current time in microseconds since an arbitrary epoch.
  virtual Micros Now() const = 0;

  /// Advances time by `duration` microseconds.  For a wall clock this
  /// sleeps; for a virtual clock it is a constant-time bookkeeping update.
  virtual void Advance(Micros duration) = 0;
};

/// Deterministic clock: time moves only when `Advance` is called.
class VirtualClock : public Clock {
 public:
  explicit VirtualClock(Micros start = 0) : now_(start) {}

  Micros Now() const override { return now_; }
  void Advance(Micros duration) override {
    if (duration > 0) now_ += duration;
  }

  /// Sets the absolute time; only moves forward.
  void AdvanceTo(Micros t) {
    if (t > now_) now_ = t;
  }

 private:
  Micros now_;
};

/// Real elapsed time backed by std::chrono::steady_clock.
class WallClock : public Clock {
 public:
  WallClock();
  Micros Now() const override;
  /// Sleeps for `duration` microseconds.
  void Advance(Micros duration) override;

 private:
  Micros epoch_;
};

}  // namespace idebench

#endif  // IDEBENCH_COMMON_CLOCK_H_
