#include "common/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace idebench {

std::vector<std::string> Split(const std::string& s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(delim, start);
    if (pos == std::string::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string Trim(const std::string& s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::string ToLower(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string StringPrintf(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap_copy;
  va_copy(ap_copy, ap);
  const int needed = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  if (needed < 0) {
    va_end(ap_copy);
    return {};
  }
  std::string out(static_cast<size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, ap_copy);
  va_end(ap_copy);
  return out;
}

std::string FormatDouble(double value, int decimals) {
  return StringPrintf("%.*f", decimals, value);
}

std::string FormatPercent(double ratio, int decimals) {
  return StringPrintf("%.*f%%", decimals, ratio * 100.0);
}

std::string HumanCount(int64_t n) {
  const char* suffix = "";
  double v = static_cast<double>(n);
  if (n >= 1'000'000'000 && n % 100'000'000 == 0) {
    v /= 1e9;
    suffix = "B";
  } else if (n >= 1'000'000 && n % 100'000 == 0) {
    v /= 1e6;
    suffix = "M";
  } else if (n >= 1'000 && n % 100 == 0) {
    v /= 1e3;
    suffix = "K";
  } else {
    return std::to_string(n);
  }
  if (v == static_cast<int64_t>(v)) {
    return StringPrintf("%lld%s", static_cast<long long>(v), suffix);
  }
  return StringPrintf("%.1f%s", v, suffix);
}

}  // namespace idebench
