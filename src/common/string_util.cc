#include "common/string_util.h"

#include <cctype>
#include <charconv>
#include <cstdarg>
#include <cstdio>
#include <system_error>

namespace idebench {

std::vector<std::string> Split(const std::string& s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(delim, start);
    if (pos == std::string::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string Trim(const std::string& s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::string ToLower(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string StringPrintf(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap_copy;
  va_copy(ap_copy, ap);
  const int needed = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  if (needed < 0) {
    va_end(ap_copy);
    return {};
  }
  std::string out(static_cast<size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, ap_copy);
  va_end(ap_copy);
  return out;
}

std::string FormatDouble(double value, int decimals) {
  return StringPrintf("%.*f", decimals, value);
}

std::string FormatPercent(double ratio, int decimals) {
  return StringPrintf("%.*f%%", decimals, ratio * 100.0);
}

std::string HumanCount(int64_t n) {
  const char* suffix = "";
  double v = static_cast<double>(n);
  if (n >= 1'000'000'000 && n % 100'000'000 == 0) {
    v /= 1e9;
    suffix = "B";
  } else if (n >= 1'000'000 && n % 100'000 == 0) {
    v /= 1e6;
    suffix = "M";
  } else if (n >= 1'000 && n % 100 == 0) {
    v /= 1e3;
    suffix = "K";
  } else {
    return std::to_string(n);
  }
  if (v == static_cast<int64_t>(v)) {
    return StringPrintf("%lld%s", static_cast<long long>(v), suffix);
  }
  return StringPrintf("%.1f%s", v, suffix);
}

namespace {

/// std::from_chars does not accept a leading '+' (strtol/strtod do);
/// tolerate exactly one so previously-valid inputs keep parsing.
std::string_view StripLeadingPlus(std::string_view s) {
  if (s.size() > 1 && s.front() == '+') s.remove_prefix(1);
  return s;
}

}  // namespace

StrictParseResult ParseInt64Strict(std::string_view s, int64_t* out) {
  s = StripLeadingPlus(s);
  if (s.empty()) return StrictParseResult::kInvalid;
  int64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec == std::errc::result_out_of_range) {
    return StrictParseResult::kOutOfRange;
  }
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    return StrictParseResult::kInvalid;
  }
  *out = v;
  return StrictParseResult::kOk;
}

StrictParseResult ParseDoubleStrict(std::string_view s, double* out) {
  s = StripLeadingPlus(s);
  if (s.empty()) return StrictParseResult::kInvalid;
  double v = 0.0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec == std::errc::result_out_of_range) {
    // Overflow *and* underflow: a value strtod would clamp to ±HUGE_VAL
    // or round to zero while setting ERANGE.  Subnormals that from_chars
    // can represent parse fine and do not land here.
    return StrictParseResult::kOutOfRange;
  }
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    return StrictParseResult::kInvalid;
  }
  *out = v;
  return StrictParseResult::kOk;
}

}  // namespace idebench
