#include "common/clock.h"

#include <chrono>
#include <thread>

namespace idebench {
namespace {

Micros SteadyNowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

WallClock::WallClock() : epoch_(SteadyNowMicros()) {}

Micros WallClock::Now() const { return SteadyNowMicros() - epoch_; }

void WallClock::Advance(Micros duration) {
  if (duration > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(duration));
  }
}

}  // namespace idebench
