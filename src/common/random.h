#ifndef IDEBENCH_COMMON_RANDOM_H_
#define IDEBENCH_COMMON_RANDOM_H_

/// \file random.h
/// Deterministic pseudo-random number generation.
///
/// All stochastic components of IDEBench (data generator, workflow
/// generator, sampling engines) consume a `Rng` seeded explicitly so that a
/// benchmark run is byte-reproducible.  The generator is xoshiro256**,
/// which is fast, has a 256-bit state, and passes BigCrush.

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace idebench {

/// xoshiro256** pseudo-random generator with convenience distributions.
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the state from a single 64-bit value via SplitMix64.
  explicit Rng(uint64_t seed = 0x1debe9c4u) { Seed(seed); }

  /// Re-seeds the generator.
  void Seed(uint64_t seed);

  /// Returns the next raw 64-bit output.
  uint64_t Next();

  // UniformRandomBitGenerator interface (usable with <random> adapters).
  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() { return ~uint64_t{0}; }
  uint64_t operator()() { return Next(); }

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive); requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal deviate (Box–Muller with caching).
  double Gaussian();

  /// Normal deviate with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Exponential deviate with the given rate parameter lambda > 0.
  double Exponential(double lambda);

  /// Bernoulli draw: true with probability `p` (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Zipf-distributed integer in [0, n) with skew `s` (s = 0 is uniform).
  /// Uses rejection-inversion; O(1) amortized.
  int64_t Zipf(int64_t n, double s);

  /// Samples an index according to `weights` (need not be normalized;
  /// non-positive total falls back to uniform).  Returns -1 for empty input.
  int64_t Categorical(const std::vector<double>& weights);

  /// Fisher–Yates shuffles `v` in place.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Forks a child generator with an independent stream derived from this
  /// generator's state and `stream_id`; the parent state is not advanced.
  Rng Fork(uint64_t stream_id) const;

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace idebench

#endif  // IDEBENCH_COMMON_RANDOM_H_
