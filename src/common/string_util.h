#ifndef IDEBENCH_COMMON_STRING_UTIL_H_
#define IDEBENCH_COMMON_STRING_UTIL_H_

/// \file string_util.h
/// Small string helpers used across modules (CSV parsing, SQL generation,
/// report formatting).

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace idebench {

/// Splits `s` on `delim`; keeps empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(const std::string& s, char delim);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// Removes leading/trailing ASCII whitespace.
std::string Trim(const std::string& s);

/// ASCII lower-casing.
std::string ToLower(const std::string& s);

/// True when `s` starts with `prefix`.
bool StartsWith(const std::string& s, const std::string& prefix);

/// True when `s` ends with `suffix`.
bool EndsWith(const std::string& s, const std::string& suffix);

/// printf-style formatting into a std::string.
std::string StringPrintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Formats a double with `decimals` fraction digits.
std::string FormatDouble(double value, int decimals);

/// Formats a ratio in [0,1] as a percentage string, e.g. "12.3%".
std::string FormatPercent(double ratio, int decimals = 1);

/// Renders row counts like 100000000 as "100M", 1500 as "1.5K".
std::string HumanCount(int64_t n);

/// Outcome of the strict scalar parsers below.  `kOutOfRange` flags text
/// that *is* a well-formed number but does not fit the target type —
/// exactly the case `strtod`/`strtoll` silently clamp to ±HUGE_VAL /
/// LLONG_MAX (and zone maps would then ingest the clamped garbage).
enum class StrictParseResult : uint8_t {
  kOk = 0,
  kInvalid = 1,      // empty, trailing garbage, or not a number at all
  kOutOfRange = 2,   // well-formed but outside the representable range
};

/// Strict, locale-independent scalar parsing built on std::from_chars:
/// the *entire* string must form one value (no leading/trailing junk; a
/// single leading '+' is tolerated for compatibility with strtol-parsed
/// inputs).  Unlike strtod, never consults the C locale and never clamps
/// out-of-range input to ±HUGE_VAL.  `*out` is written only on `kOk`.
StrictParseResult ParseInt64Strict(std::string_view s, int64_t* out);
StrictParseResult ParseDoubleStrict(std::string_view s, double* out);

}  // namespace idebench

#endif  // IDEBENCH_COMMON_STRING_UTIL_H_
