#include "common/status.h"

namespace idebench {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kKeyError:
      return "KeyError";
    case StatusCode::kOutOfBounds:
      return "OutOfBounds";
    case StatusCode::kIoError:
      return "IOError";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kUnknown:
      return "Unknown";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "UnknownCode";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

}  // namespace idebench
