#ifndef IDEBENCH_COMMON_STATUS_H_
#define IDEBENCH_COMMON_STATUS_H_

/// \file status.h
/// Error propagation primitives in the Arrow/RocksDB style.
///
/// Public APIs in this library never throw across module boundaries;
/// fallible operations return a `Status`, or a `Result<T>` when they also
/// produce a value.  The `IDB_RETURN_NOT_OK` / `IDB_ASSIGN_OR_RETURN`
/// macros keep call sites compact.

#include <memory>
#include <ostream>
#include <string>
#include <utility>

namespace idebench {

/// Machine-readable classification of an error.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kKeyError = 2,
  kOutOfBounds = 3,
  kIoError = 4,
  kNotImplemented = 5,
  kAlreadyExists = 6,
  kCancelled = 7,
  kUnknown = 8,
  kResourceExhausted = 9,
};

/// Returns a stable human-readable name for a status code.
const char* StatusCodeToString(StatusCode code);

/// An operation outcome: either OK, or an error code plus message.
///
/// `Status` is cheap to copy in the OK case (a single null pointer); error
/// states allocate a small shared payload.
///
/// `[[nodiscard]]`: a silently dropped `Status` is a swallowed failure —
/// callers must consume it (`IDB_RETURN_NOT_OK`, a branch, or an explicit
/// `(void)` cast at the few sites where ignoring is the contract).
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string msg) {
    if (code != StatusCode::kOk) {
      state_ = std::make_shared<State>(State{code, std::move(msg)});
    }
  }

  /// Returns an OK status.
  static Status OK() { return Status(); }

  static Status Invalid(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status KeyError(std::string msg) {
    return Status(StatusCode::kKeyError, std::move(msg));
  }
  static Status OutOfBounds(std::string msg) {
    return Status(StatusCode::kOutOfBounds, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Unknown(std::string msg) {
    return Status(StatusCode::kUnknown, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  /// True when the operation succeeded.
  bool ok() const { return state_ == nullptr; }

  /// The status code (kOk when `ok()`).
  StatusCode code() const { return state_ ? state_->code : StatusCode::kOk; }

  /// The error message; empty when `ok()`.
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ ? state_->msg : kEmpty;
  }

  /// Renders "OK" or "<CODE>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  std::shared_ptr<State> state_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Returns early with the error if the expression produces a non-OK status.
#define IDB_RETURN_NOT_OK(expr)                 \
  do {                                          \
    ::idebench::Status _idb_st = (expr);        \
    if (!_idb_st.ok()) return _idb_st;          \
  } while (false)

}  // namespace idebench

#endif  // IDEBENCH_COMMON_STATUS_H_
