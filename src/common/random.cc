#include "common/random.h"

#include <cmath>

namespace idebench {
namespace {

uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(&s);
  has_cached_gaussian_ = false;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  if (lo >= hi) return lo;
  const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  // Unbiased rejection sampling (Lemire's method would be faster; this is
  // simple and correct, and the rejection probability is tiny for the
  // ranges used in this library).
  const uint64_t limit = max() - max() % range;
  uint64_t draw;
  do {
    draw = Next();
  } while (draw >= limit && limit != 0);
  return lo + static_cast<int64_t>(draw % range);
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box–Muller: two uniforms -> two independent normals.
  double u1 = NextDouble();
  while (u1 <= 0.0) u1 = NextDouble();
  const double u2 = NextDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = radius * std::sin(theta);
  has_cached_gaussian_ = true;
  return radius * std::cos(theta);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

double Rng::Exponential(double lambda) {
  double u = NextDouble();
  while (u <= 0.0) u = NextDouble();
  return -std::log(u) / lambda;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

int64_t Rng::Zipf(int64_t n, double s) {
  if (n <= 1) return 0;
  if (s <= 0.0) return UniformInt(0, n - 1);
  // Rejection-inversion sampling (Hörmann & Derflinger).
  const double b = std::pow(2.0, s - 1.0);
  double x;
  double t;
  do {
    const double u = NextDouble();
    const double v = NextDouble();
    x = std::floor(std::pow(static_cast<double>(n) + 1.0, u));
    if (x < 1.0) x = 1.0;
    if (x > static_cast<double>(n)) x = static_cast<double>(n);
    t = std::pow(1.0 + 1.0 / x, s - 1.0);
    if (v * x * (t - 1.0) / (b - 1.0) <= t / b) break;
  } while (true);
  return static_cast<int64_t>(x) - 1;
}

int64_t Rng::Categorical(const std::vector<double>& weights) {
  if (weights.empty()) return -1;
  double total = 0.0;
  for (double w : weights) {
    if (w > 0.0) total += w;
  }
  if (total <= 0.0) {
    return UniformInt(0, static_cast<int64_t>(weights.size()) - 1);
  }
  double draw = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (draw < w) return static_cast<int64_t>(i);
    draw -= w;
  }
  return static_cast<int64_t>(weights.size()) - 1;
}

Rng Rng::Fork(uint64_t stream_id) const {
  // Mix the parent state with the stream id through SplitMix64 so sibling
  // streams are decorrelated without advancing the parent.
  uint64_t mix = state_[0] ^ (state_[3] + 0x632be59bd9b4e019ull * (stream_id + 1));
  Rng child(0);
  child.Seed(SplitMix64(&mix));
  return child;
}

}  // namespace idebench
