#ifndef IDEBENCH_COMMON_RESULT_H_
#define IDEBENCH_COMMON_RESULT_H_

/// \file result.h
/// `Result<T>`: a value-or-Status union, mirroring arrow::Result.

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace idebench {

/// Holds either a successfully produced `T` or the `Status` explaining why
/// production failed.  Constructing from an OK status is a programming
/// error and is converted to `StatusCode::kUnknown`.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs from a value (implicit, to allow `return value;`).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from an error status (implicit, to allow `return status;`).
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    if (std::get<Status>(repr_).ok()) {
      repr_ = Status::Unknown("Result constructed from OK status");
    }
  }

  /// True when a value is held.
  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The status: OK when a value is held, the error otherwise.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  /// Borrows the held value; requires `ok()`.
  const T& ValueOrDie() const& {
    assert(ok());
    return std::get<T>(repr_);
  }

  /// Borrows the held value mutably; requires `ok()`.
  T& ValueOrDie() & {
    assert(ok());
    return std::get<T>(repr_);
  }

  /// Moves the held value out; requires `ok()`.
  T ValueOrDie() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  /// Moves the held value out; requires `ok()`.
  T MoveValueUnsafe() { return std::get<T>(std::move(repr_)); }

  /// Returns the held value or `alternative` on error.
  T ValueOr(T alternative) const {
    return ok() ? std::get<T>(repr_) : std::move(alternative);
  }

  /// Dereference sugar; requires `ok()`.
  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::variant<Status, T> repr_;
};

/// Evaluates an expression producing a Result; on success binds the value,
/// otherwise returns the error from the enclosing function.
#define IDB_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                              \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).MoveValueUnsafe();

#define IDB_ASSIGN_OR_RETURN_CONCAT_(x, y) x##y
#define IDB_ASSIGN_OR_RETURN_CONCAT(x, y) IDB_ASSIGN_OR_RETURN_CONCAT_(x, y)

#define IDB_ASSIGN_OR_RETURN(lhs, rexpr) \
  IDB_ASSIGN_OR_RETURN_IMPL(             \
      IDB_ASSIGN_OR_RETURN_CONCAT(_idb_result_, __LINE__), lhs, rexpr)

}  // namespace idebench

#endif  // IDEBENCH_COMMON_RESULT_H_
