#include "common/logging.h"

namespace idebench {
namespace {

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

Logger& Logger::Get() {
  static Logger logger;
  return logger;
}

void Logger::Log(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < static_cast<int>(level_)) return;
  std::cerr << "[idebench " << LevelName(level) << "] " << msg << std::endl;
}

}  // namespace idebench
