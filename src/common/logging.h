#ifndef IDEBENCH_COMMON_LOGGING_H_
#define IDEBENCH_COMMON_LOGGING_H_

/// \file logging.h
/// Minimal leveled logging plus debug-time invariant checks.
///
/// Logging defaults to `kWarning` so tests and benchmarks stay quiet;
/// drivers raise it to `kInfo` when `--verbose` is requested.

#include <iostream>
#include <sstream>
#include <string>

namespace idebench {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide log configuration.
class Logger {
 public:
  /// Returns the singleton.
  static Logger& Get();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  /// Emits one line to stderr when `level` is enabled.
  void Log(LogLevel level, const std::string& msg);

 private:
  LogLevel level_ = LogLevel::kWarning;
};

/// Stream-style log statement builder.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { Logger::Get().Log(level_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

#define IDB_LOG(level) ::idebench::LogMessage(::idebench::LogLevel::level)

/// Fatal invariant check (enabled in all build types).
#define IDB_CHECK(cond)                                                     \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::cerr << "IDB_CHECK failed at " << __FILE__ << ":" << __LINE__    \
                << ": " #cond << std::endl;                                 \
      std::abort();                                                         \
    }                                                                       \
  } while (false)

}  // namespace idebench

#endif  // IDEBENCH_COMMON_LOGGING_H_
