#ifndef IDEBENCH_COMMON_JSON_H_
#define IDEBENCH_COMMON_JSON_H_

/// \file json.h
/// A small self-contained JSON document model, parser and writer.
///
/// IDEBench workflow specifications are exchanged as JSON (paper Figure 4).
/// This module implements the subset of JSON needed for that format plus
/// configuration files: objects, arrays, strings, numbers, booleans, null.
/// Object key order is preserved so serialized workflows diff cleanly.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace idebench {

/// A JSON value (object / array / string / number / bool / null).
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Ordered key/value list; keys are unique (later `Set` overwrites).
  using Member = std::pair<std::string, JsonValue>;

  JsonValue() : type_(Type::kNull) {}
  JsonValue(std::nullptr_t) : type_(Type::kNull) {}          // NOLINT
  JsonValue(bool b) : type_(Type::kBool), bool_(b) {}        // NOLINT
  JsonValue(double d) : type_(Type::kNumber), number_(d) {}  // NOLINT
  JsonValue(int i)                                           // NOLINT
      : type_(Type::kNumber), number_(static_cast<double>(i)) {}
  JsonValue(int64_t i)  // NOLINT
      : type_(Type::kNumber), number_(static_cast<double>(i)) {}
  JsonValue(uint64_t i)  // NOLINT
      : type_(Type::kNumber), number_(static_cast<double>(i)) {}
  JsonValue(const char* s) : type_(Type::kString), string_(s) {}  // NOLINT
  JsonValue(std::string s)                                        // NOLINT
      : type_(Type::kString), string_(std::move(s)) {}

  /// Creates an empty object.
  static JsonValue Object();
  /// Creates an empty array.
  static JsonValue Array();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Accessors; each requires the corresponding type.
  bool AsBool() const { return bool_; }
  double AsDouble() const { return number_; }
  int64_t AsInt() const { return static_cast<int64_t>(number_); }
  const std::string& AsString() const { return string_; }

  /// Array access.
  size_t size() const;
  const JsonValue& at(size_t i) const;
  void Append(JsonValue v);

  /// Object access.  `Get` returns null-value reference for missing keys.
  bool Has(const std::string& key) const;
  const JsonValue& Get(const std::string& key) const;
  void Set(const std::string& key, JsonValue v);
  const std::vector<Member>& members() const { return members_; }

  /// Typed lookups with defaults, for configuration reading.
  double GetDouble(const std::string& key, double fallback) const;
  int64_t GetInt(const std::string& key, int64_t fallback) const;
  bool GetBool(const std::string& key, bool fallback) const;
  std::string GetString(const std::string& key,
                        const std::string& fallback) const;

  /// Serializes to a compact JSON string.
  std::string Dump() const;

  /// Serializes with 2-space indentation.
  std::string DumpPretty() const;

  /// Parses a JSON document; rejects trailing garbage.
  static Result<JsonValue> Parse(const std::string& text);

  bool operator==(const JsonValue& other) const;

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<Member> members_;
};

}  // namespace idebench

#endif  // IDEBENCH_COMMON_JSON_H_
