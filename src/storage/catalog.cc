#include "storage/catalog.h"

namespace idebench::storage {

Status Catalog::AddTable(std::shared_ptr<Table> table) {
  if (table == nullptr) return Status::Invalid("null table");
  if (GetTable(table->name()) != nullptr) {
    return Status::AlreadyExists("table '" + table->name() + "' exists");
  }
  tables_.push_back(std::move(table));
  return Status::OK();
}

Status Catalog::AddForeignKey(ForeignKey fk) {
  const Table* fact = fact_table();
  if (fact == nullptr) return Status::Invalid("catalog has no fact table");
  if (fact->ColumnByName(fk.fact_column) == nullptr) {
    return Status::KeyError("fact table has no column '" + fk.fact_column +
                            "'");
  }
  const Table* dim = GetTable(fk.dimension_table);
  if (dim == nullptr) {
    return Status::KeyError("no dimension table '" + fk.dimension_table + "'");
  }
  if (dim->ColumnByName(fk.dimension_key) == nullptr) {
    return Status::KeyError("dimension table '" + fk.dimension_table +
                            "' has no column '" + fk.dimension_key + "'");
  }
  foreign_keys_.push_back(std::move(fk));
  return Status::OK();
}

const Table* Catalog::fact_table() const {
  return tables_.empty() ? nullptr : tables_[0].get();
}

const Table* Catalog::GetTable(const std::string& name) const {
  for (const auto& t : tables_) {
    if (t->name() == name) return t.get();
  }
  return nullptr;
}

std::shared_ptr<Table> Catalog::GetTableShared(const std::string& name) const {
  for (const auto& t : tables_) {
    if (t->name() == name) return t;
  }
  return nullptr;
}

const ForeignKey* Catalog::FindForeignKey(
    const std::string& dimension_table) const {
  for (const auto& fk : foreign_keys_) {
    if (fk.dimension_table == dimension_table) return &fk;
  }
  return nullptr;
}

Result<const Table*> Catalog::TableForColumn(
    const std::string& column_name) const {
  for (const auto& t : tables_) {
    if (t->ColumnByName(column_name) != nullptr) return t.get();
  }
  return Status::KeyError("no table owns column '" + column_name + "'");
}

int64_t Catalog::nominal_rows() const {
  if (nominal_rows_ > 0) return nominal_rows_;
  const Table* fact = fact_table();
  // Under streaming ingest only the published watermark counts: staged
  // rows must not change the nominal/actual scale a query was planned at.
  return fact == nullptr ? 0 : fact->visible_rows();
}

}  // namespace idebench::storage
