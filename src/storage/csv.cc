#include "storage/csv.h"

#include <fstream>

#include "chaos/fault_injector.h"
#include "common/string_util.h"

namespace idebench::storage {

std::vector<std::string> ParseCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c != '\r') {
      current.push_back(c);
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

namespace {

/// Reads one RFC-4180 *record* from `in` — not one physical line: a
/// quoted field may contain separators, escaped quotes ("") and line
/// breaks, so a record can span several lines (the line-at-a-time
/// reader this replaces split such records and corrupted row counts).
/// CRLF and LF records both end at the unquoted line break; a bare '\r'
/// outside quotes is dropped (tolerance the old parser had, kept so a
/// CRLF file's blank lines and padded fields behave as before).
///
/// Returns true when a record was read into `fields`, false at EOF, and
/// an error status for an unterminated quoted field.  `lines_consumed`
/// advances by the physical line breaks consumed; `saw_quote` tells the
/// caller whether any quoting appeared (so an explicitly quoted empty
/// field `""` is distinguishable from a blank line).
Result<bool> ReadCsvRecord(std::istream& in, std::vector<std::string>* fields,
                           int64_t* lines_consumed, bool* saw_quote) {
  fields->clear();
  *saw_quote = false;
  std::string current;
  bool in_quotes = false;
  bool any = false;
  const int64_t start_line = *lines_consumed + 1;
  for (;;) {
    const int ch = in.get();
    if (ch == std::char_traits<char>::eof()) {
      if (in_quotes) {
        return Status::Invalid("unterminated quoted field starting at line " +
                               std::to_string(start_line));
      }
      if (!any) return false;
      fields->push_back(std::move(current));
      return true;
    }
    any = true;
    const char c = static_cast<char>(ch);
    if (in_quotes) {
      if (c == '"') {
        if (in.peek() == '"') {
          in.get();
          current.push_back('"');
        } else {
          in_quotes = false;
        }
      } else {
        if (c == '\n') ++*lines_consumed;
        current.push_back(c);
      }
    } else if (c == '"') {
      *saw_quote = true;
      in_quotes = true;
    } else if (c == ',') {
      fields->push_back(std::move(current));
      current.clear();
    } else if (c == '\n') {
      ++*lines_consumed;
      fields->push_back(std::move(current));
      return true;
    } else if (c != '\r') {
      current.push_back(c);
    }
  }
}

/// A record is a skippable blank line iff it is one empty unquoted field
/// (covers "", "\r" and "\r\n" lines; an explicit `""` field is data).
bool IsBlankRecord(const std::vector<std::string>& fields, bool saw_quote) {
  return !saw_quote && fields.size() == 1 && fields[0].empty();
}

}  // namespace

Result<Table> ReadCsv(const std::string& path, const std::string& table_name,
                      const Schema& schema) {
  // Chaos site: the open itself fails (transient filesystem error) before
  // any bytes are read, so a retry starts from scratch.
  if (chaos::FaultInjector::Fire(chaos::FaultSite::kCsvOpen)) {
    return Status::IOError("injected open fault for '" + path + "'");
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open '" + path + "' for reading");

  std::vector<std::string> fields;
  int64_t lines_consumed = 0;
  bool saw_quote = false;
  IDB_ASSIGN_OR_RETURN(bool got,
                       ReadCsvRecord(in, &fields, &lines_consumed, &saw_quote));
  if (!got) {
    return Status::IOError("'" + path + "' is empty (missing header)");
  }
  if (static_cast<int>(fields.size()) != schema.num_fields()) {
    return Status::Invalid("header has " + std::to_string(fields.size()) +
                           " fields, schema has " +
                           std::to_string(schema.num_fields()));
  }
  for (int i = 0; i < schema.num_fields(); ++i) {
    if (Trim(fields[static_cast<size_t>(i)]) != schema.field(i).name) {
      return Status::Invalid("header field '" + fields[static_cast<size_t>(i)] +
                             "' does not match schema field '" +
                             schema.field(i).name + "'");
    }
  }

  Table table(table_name, schema);
  for (;;) {
    const int64_t record_line = lines_consumed + 1;
    IDB_ASSIGN_OR_RETURN(
        got, ReadCsvRecord(in, &fields, &lines_consumed, &saw_quote));
    if (!got) break;
    if (IsBlankRecord(fields, saw_quote)) continue;
    // Chaos site: column-buffer growth fails mid-load; the partial table
    // is dropped with the returned error, never handed out half-built.
    if (chaos::FaultInjector::Fire(chaos::FaultSite::kCsvAlloc)) {
      return Status::ResourceExhausted("injected allocation fault at line " +
                                       std::to_string(record_line) + " of '" +
                                       path + "'");
    }
    if (static_cast<int>(fields.size()) != schema.num_fields()) {
      return Status::Invalid("line " + std::to_string(record_line) + " has " +
                             std::to_string(fields.size()) + " fields");
    }
    for (int c = 0; c < schema.num_fields(); ++c) {
      Status st = table.mutable_column(c).AppendParsed(
          fields[static_cast<size_t>(c)]);
      if (!st.ok()) {
        return Status::Invalid("line " + std::to_string(record_line) +
                               ", column " + schema.field(c).name + ": " +
                               st.message());
      }
    }
  }
  return table;
}

namespace {

bool NeedsQuoting(const std::string& s) {
  return s.find_first_of(",\"\n\r") != std::string::npos;
}

void WriteField(std::ofstream& out, const std::string& s) {
  if (!NeedsQuoting(s)) {
    out << s;
    return;
  }
  out << '"';
  for (char c : s) {
    if (c == '"') out << '"';
    out << c;
  }
  out << '"';
}

}  // namespace

Status WriteCsv(const Table& table, const std::string& path) {
  // Chaos site: symmetric with ReadCsv — the open fails before any bytes
  // are written.
  if (chaos::FaultInjector::Fire(chaos::FaultSite::kCsvOpen)) {
    return Status::IOError("injected open fault for '" + path + "'");
  }
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  for (int c = 0; c < table.num_columns(); ++c) {
    if (c > 0) out << ',';
    WriteField(out, table.schema().field(c).name);
  }
  out << '\n';
  const int64_t n = table.num_rows();
  for (int64_t i = 0; i < n; ++i) {
    for (int c = 0; c < table.num_columns(); ++c) {
      if (c > 0) out << ',';
      WriteField(out, table.column(c).ValueAsString(i));
    }
    out << '\n';
  }
  if (!out) return Status::IOError("write to '" + path + "' failed");
  return Status::OK();
}

}  // namespace idebench::storage
