#include "storage/csv.h"

#include <fstream>

#include "chaos/fault_injector.h"
#include "common/string_util.h"

namespace idebench::storage {

std::vector<std::string> ParseCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c != '\r') {
      current.push_back(c);
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

Result<Table> ReadCsv(const std::string& path, const std::string& table_name,
                      const Schema& schema) {
  // Chaos site: the open itself fails (transient filesystem error) before
  // any bytes are read, so a retry starts from scratch.
  if (chaos::FaultInjector::Fire(chaos::FaultSite::kCsvOpen)) {
    return Status::IOError("injected open fault for '" + path + "'");
  }
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open '" + path + "' for reading");

  std::string line;
  if (!std::getline(in, line)) {
    return Status::IOError("'" + path + "' is empty (missing header)");
  }
  const std::vector<std::string> header = ParseCsvLine(line);
  if (static_cast<int>(header.size()) != schema.num_fields()) {
    return Status::Invalid("header has " + std::to_string(header.size()) +
                           " fields, schema has " +
                           std::to_string(schema.num_fields()));
  }
  for (int i = 0; i < schema.num_fields(); ++i) {
    if (Trim(header[static_cast<size_t>(i)]) != schema.field(i).name) {
      return Status::Invalid("header field '" + header[static_cast<size_t>(i)] +
                             "' does not match schema field '" +
                             schema.field(i).name + "'");
    }
  }

  Table table(table_name, schema);
  int64_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    // Chaos site: column-buffer growth fails mid-load; the partial table
    // is dropped with the returned error, never handed out half-built.
    if (chaos::FaultInjector::Fire(chaos::FaultSite::kCsvAlloc)) {
      return Status::ResourceExhausted("injected allocation fault at line " +
                                       std::to_string(line_no) + " of '" +
                                       path + "'");
    }
    const std::vector<std::string> values = ParseCsvLine(line);
    if (static_cast<int>(values.size()) != schema.num_fields()) {
      return Status::Invalid("line " + std::to_string(line_no) + " has " +
                             std::to_string(values.size()) + " fields");
    }
    for (int c = 0; c < schema.num_fields(); ++c) {
      Status st = table.mutable_column(c).AppendParsed(
          values[static_cast<size_t>(c)]);
      if (!st.ok()) {
        return Status::Invalid("line " + std::to_string(line_no) + ", column " +
                               schema.field(c).name + ": " + st.message());
      }
    }
  }
  return table;
}

namespace {

bool NeedsQuoting(const std::string& s) {
  return s.find_first_of(",\"\n\r") != std::string::npos;
}

void WriteField(std::ofstream& out, const std::string& s) {
  if (!NeedsQuoting(s)) {
    out << s;
    return;
  }
  out << '"';
  for (char c : s) {
    if (c == '"') out << '"';
    out << c;
  }
  out << '"';
}

}  // namespace

Status WriteCsv(const Table& table, const std::string& path) {
  // Chaos site: symmetric with ReadCsv — the open fails before any bytes
  // are written.
  if (chaos::FaultInjector::Fire(chaos::FaultSite::kCsvOpen)) {
    return Status::IOError("injected open fault for '" + path + "'");
  }
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  for (int c = 0; c < table.num_columns(); ++c) {
    if (c > 0) out << ',';
    WriteField(out, table.schema().field(c).name);
  }
  out << '\n';
  const int64_t n = table.num_rows();
  for (int64_t i = 0; i < n; ++i) {
    for (int c = 0; c < table.num_columns(); ++c) {
      if (c > 0) out << ',';
      WriteField(out, table.column(c).ValueAsString(i));
    }
    out << '\n';
  }
  if (!out) return Status::IOError("write to '" + path + "' failed");
  return Status::OK();
}

}  // namespace idebench::storage
