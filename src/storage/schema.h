#ifndef IDEBENCH_STORAGE_SCHEMA_H_
#define IDEBENCH_STORAGE_SCHEMA_H_

/// \file schema.h
/// Ordered collection of fields with name lookup.

#include <string>
#include <vector>

#include "common/result.h"
#include "storage/types.h"

namespace idebench::storage {

/// An ordered list of named, typed fields.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  /// Number of fields.
  int num_fields() const { return static_cast<int>(fields_.size()); }

  /// Field at position `i`.
  const Field& field(int i) const { return fields_[static_cast<size_t>(i)]; }

  /// All fields in order.
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of the field named `name`, or -1 when absent.
  int FieldIndex(const std::string& name) const;

  /// Field descriptor by name.
  Result<Field> FieldByName(const std::string& name) const;

  /// Appends a field; returns AlreadyExists on duplicate names.
  Status AddField(Field field);

  bool operator==(const Schema& other) const {
    return fields_ == other.fields_;
  }

  /// Human-readable rendering, e.g. "(dep_delay: double, carrier: string)".
  std::string ToString() const;

 private:
  std::vector<Field> fields_;
};

}  // namespace idebench::storage

#endif  // IDEBENCH_STORAGE_SCHEMA_H_
