#ifndef IDEBENCH_STORAGE_CSV_H_
#define IDEBENCH_STORAGE_CSV_H_

/// \file csv.h
/// CSV import/export for tables.
///
/// Systems in the paper ingest the flights dataset from a CSV file
/// (§5.2 "data preparation time").  The reader expects a header row and
/// supports RFC-4180 quoting; the writer quotes only when needed.

#include <string>

#include "common/result.h"
#include "storage/table.h"

namespace idebench::storage {

/// Reads a CSV file into a new table using `schema` (header must match the
/// schema's field names in order).
Result<Table> ReadCsv(const std::string& path, const std::string& table_name,
                      const Schema& schema);

/// Writes `table` (header + rows) to `path`.
Status WriteCsv(const Table& table, const std::string& path);

/// Parses one CSV record (handles quotes/escaped quotes).  Exposed for
/// testing.
std::vector<std::string> ParseCsvLine(const std::string& line);

}  // namespace idebench::storage

#endif  // IDEBENCH_STORAGE_CSV_H_
