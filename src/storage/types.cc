#include "storage/types.h"

namespace idebench::storage {

const char* DataTypeName(DataType type) {
  switch (type) {
    case DataType::kInt64:
      return "int64";
    case DataType::kDouble:
      return "double";
    case DataType::kString:
      return "string";
  }
  return "unknown";
}

const char* AttributeKindName(AttributeKind kind) {
  switch (kind) {
    case AttributeKind::kQuantitative:
      return "quantitative";
    case AttributeKind::kNominal:
      return "nominal";
  }
  return "unknown";
}

}  // namespace idebench::storage
