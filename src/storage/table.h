#ifndef IDEBENCH_STORAGE_TABLE_H_
#define IDEBENCH_STORAGE_TABLE_H_

/// \file table.h
/// An immutable-schema, append-only in-memory columnar table.

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/column.h"
#include "storage/schema.h"

namespace idebench::storage {

/// A named columnar table.  Rows are appended through typed column access
/// or `AppendRowFrom`; all columns always have equal length.
class Table {
 public:
  /// Creates an empty table with the given schema.
  Table(std::string name, Schema schema);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  /// Number of rows (all columns agree).
  int64_t num_rows() const;

  /// Number of columns.
  int num_columns() const { return static_cast<int>(columns_.size()); }

  /// Column at position `i`.
  const Column& column(int i) const { return *columns_[static_cast<size_t>(i)]; }
  Column& mutable_column(int i) { return *columns_[static_cast<size_t>(i)]; }

  /// Column by name; nullptr when absent.
  const Column* ColumnByName(const std::string& name) const;
  Column* MutableColumnByName(const std::string& name);

  /// Index of the column named `name`, or -1.
  int ColumnIndex(const std::string& name) const {
    return schema_.FieldIndex(name);
  }

  /// Reserves capacity in every column.
  void Reserve(int64_t n);

  /// Copies row `row` of `other` into this table.  Schemas must match by
  /// position and type (names may differ).
  Status AppendRowFrom(const Table& other, int64_t row);

  /// Verifies that all columns have equal length.
  Status Validate() const;

  /// Renders row `i` as comma-separated text (debugging aid).
  std::string RowToString(int64_t i) const;

 private:
  std::string name_;
  Schema schema_;
  std::vector<std::unique_ptr<Column>> columns_;
};

}  // namespace idebench::storage

#endif  // IDEBENCH_STORAGE_TABLE_H_
