#ifndef IDEBENCH_STORAGE_TABLE_H_
#define IDEBENCH_STORAGE_TABLE_H_

/// \file table.h
/// An immutable-schema, append-only in-memory columnar table.

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/column.h"
#include "storage/schema.h"

namespace idebench::storage {

/// A named columnar table.  Rows are appended through typed column access
/// or `AppendRowFrom`; all columns always have equal length.
class Table {
 public:
  /// Creates an empty table with the given schema.
  Table(std::string name, Schema schema);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  /// Number of rows (all columns agree).
  int64_t num_rows() const;

  /// Number of columns.
  int num_columns() const { return static_cast<int>(columns_.size()); }

  /// Column at position `i`.
  const Column& column(int i) const { return *columns_[static_cast<size_t>(i)]; }
  Column& mutable_column(int i) { return *columns_[static_cast<size_t>(i)]; }

  /// Column by name; nullptr when absent.
  const Column* ColumnByName(const std::string& name) const;
  Column* MutableColumnByName(const std::string& name);

  /// Index of the column named `name`, or -1.
  int ColumnIndex(const std::string& name) const {
    return schema_.FieldIndex(name);
  }

  /// Reserves capacity in every column.
  void Reserve(int64_t n);

  /// Copies row `row` of `other` into this table.  Schemas must match by
  /// position and type (names may differ).
  Status AppendRowFrom(const Table& other, int64_t row);

  /// Verifies that all columns have equal length.
  Status Validate() const;

  /// Renders row `i` as comma-separated text (debugging aid).
  std::string RowToString(int64_t i) const;

  // --- Epoch visibility (streaming ingest) ---------------------------
  //
  // `BeginIngest` seals the current contents as epoch 0 and switches the
  // table to epoch-visibility mode: subsequent appends land in an *open*
  // epoch that readers cannot see until `PublishEpoch` moves the
  // watermark over them atomically (single-threaded protocol: all
  // appends and publishes happen on the serving scheduler thread,
  // between engine calls).  Readers pin `visible_rows()` at query
  // submission and never look past it, so progressive refinement stays
  // bit-identical to a run against a table frozen at that watermark.

  /// Enters ingest mode: the current rows become epoch 0 (all visible)
  /// and every column's stats are published at this boundary.  Idempotent.
  void BeginIngest();

  /// Publishes all staged rows as one new epoch, advancing the visible
  /// watermark and republishing column stats.  No-op when nothing is
  /// staged (no empty epochs).  Returns the new watermark.
  int64_t PublishEpoch();

  /// Rows visible to readers: the published watermark under ingest mode,
  /// `num_rows()` otherwise.
  int64_t visible_rows() const {
    return ingest_enabled_ ? epoch_rows_.back() : num_rows();
  }

  /// Rows staged in the open epoch (appended but not yet published).
  int64_t staged_rows() const {
    return ingest_enabled_ ? num_rows() - epoch_rows_.back() : 0;
  }

  /// Cumulative row watermarks, one per published epoch: {N0, W1, ...}.
  /// Empty until `BeginIngest`.
  const std::vector<int64_t>& epoch_boundaries() const { return epoch_rows_; }

  bool ingest_enabled() const { return ingest_enabled_; }

 private:
  std::string name_;
  Schema schema_;
  std::vector<std::unique_ptr<Column>> columns_;
  bool ingest_enabled_ = false;
  std::vector<int64_t> epoch_rows_;  // watermark after each published epoch
};

}  // namespace idebench::storage

#endif  // IDEBENCH_STORAGE_TABLE_H_
