#ifndef IDEBENCH_STORAGE_DURABLE_IO_H_
#define IDEBENCH_STORAGE_DURABLE_IO_H_

/// \file durable_io.h
/// Crash-safe file writes shared by the segment writer and the WAL.
///
/// Two primitives, both built on raw fds so short writes and ENOSPC are
/// visible (iostream swallows both into a sticky failbit with no errno):
///
///  * `WriteFileAtomic` — write-temp-then-rename with fsync of the file
///    *and* its directory.  After it returns OK the destination durably
///    holds exactly the new bytes; after a crash at any point the
///    destination holds either the complete old content or the complete
///    new content, never a torn mix.  Failed attempts unlink their temp.
///  * `FsyncDirectory` — flushes directory metadata (a rename or create
///    is not durable until its directory entry is).
///
/// Both thread the `segment.write` chaos site so the crash harness can
/// kill the process mid-write and prove the atomicity contract on the
/// real filesystem.

#include <string>

#include "common/status.h"

namespace idebench::storage {

/// Atomically replaces `path` with `data`: writes `path + ".tmp"`, fsyncs
/// it, renames over `path`, and fsyncs the parent directory.  Any failure
/// (open, short write, ENOSPC, fsync, rename) surfaces as an IOError and
/// leaves `path` untouched with the temp unlinked.  Chaos site
/// `segment.write` fires mid-write, after roughly half the payload.
Status WriteFileAtomic(const std::string& path, const std::string& data);

/// Fsyncs the directory at `dir`, making renames/creates inside it
/// durable.  An empty `dir` (relative path with no parent) fsyncs ".".
Status FsyncDirectory(const std::string& dir);

}  // namespace idebench::storage

#endif  // IDEBENCH_STORAGE_DURABLE_IO_H_
