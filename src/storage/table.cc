#include "storage/table.h"

#include "common/logging.h"

namespace idebench::storage {

Table::Table(std::string name, Schema schema)
    : name_(std::move(name)), schema_(std::move(schema)) {
  columns_.reserve(static_cast<size_t>(schema_.num_fields()));
  for (const Field& f : schema_.fields()) {
    columns_.push_back(std::make_unique<Column>(f));
  }
}

int64_t Table::num_rows() const {
  return columns_.empty() ? 0 : columns_[0]->size();
}

const Column* Table::ColumnByName(const std::string& name) const {
  const int idx = schema_.FieldIndex(name);
  return idx < 0 ? nullptr : columns_[static_cast<size_t>(idx)].get();
}

Column* Table::MutableColumnByName(const std::string& name) {
  const int idx = schema_.FieldIndex(name);
  return idx < 0 ? nullptr : columns_[static_cast<size_t>(idx)].get();
}

void Table::Reserve(int64_t n) {
  for (auto& col : columns_) col->Reserve(n);
}

Status Table::AppendRowFrom(const Table& other, int64_t row) {
  if (other.num_columns() != num_columns()) {
    return Status::Invalid("column count mismatch in AppendRowFrom");
  }
  if (row < 0 || row >= other.num_rows()) {
    return Status::OutOfBounds("row index out of range in AppendRowFrom");
  }
  for (int c = 0; c < num_columns(); ++c) {
    if (columns_[static_cast<size_t>(c)]->type() != other.column(c).type()) {
      return Status::Invalid("column type mismatch in AppendRowFrom");
    }
    columns_[static_cast<size_t>(c)]->AppendFrom(other.column(c), row);
  }
  return Status::OK();
}

Status Table::Validate() const {
  const int64_t n = num_rows();
  for (const auto& col : columns_) {
    if (col->size() != n) {
      return Status::Invalid("column '" + col->name() +
                             "' length mismatch: " + std::to_string(col->size()) +
                             " vs " + std::to_string(n));
    }
  }
  return Status::OK();
}

void Table::BeginIngest() {
  if (ingest_enabled_) return;
  ingest_enabled_ = true;
  epoch_rows_ = {num_rows()};
  for (auto& col : columns_) col->PublishStats();
}

int64_t Table::PublishEpoch() {
  IDB_CHECK(ingest_enabled_);
  const int64_t n = num_rows();
  if (n > epoch_rows_.back()) {
    epoch_rows_.push_back(n);
    for (auto& col : columns_) col->PublishStats();
  }
  return epoch_rows_.back();
}

std::string Table::RowToString(int64_t i) const {
  std::string out;
  for (int c = 0; c < num_columns(); ++c) {
    if (c > 0) out += ",";
    out += column(c).ValueAsString(i);
  }
  return out;
}

}  // namespace idebench::storage
