#ifndef IDEBENCH_STORAGE_CATALOG_H_
#define IDEBENCH_STORAGE_CATALOG_H_

/// \file catalog.h
/// A database instance handed to an engine: either one de-normalized table
/// or a star schema (one fact table plus dimension tables reached through
/// foreign keys).  IDEBench runs every engine against both layouts
/// (paper §5.3, Figure 6e).

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/table.h"

namespace idebench::storage {

/// A foreign-key edge: fact.fk_column -> dimension.pk_column.
struct ForeignKey {
  std::string fact_column;       // FK column in the fact table
  std::string dimension_table;   // referenced dimension table
  std::string dimension_key;     // PK column in the dimension table
};

/// Owns the tables of one database instance.
class Catalog {
 public:
  Catalog() = default;

  /// Registers a table; the first registered table is the fact table.
  Status AddTable(std::shared_ptr<Table> table);

  /// Declares a foreign key; both endpoints must exist.
  Status AddForeignKey(ForeignKey fk);

  /// The fact table (first added).  nullptr when empty.
  const Table* fact_table() const;

  /// Table by name; nullptr when absent.
  const Table* GetTable(const std::string& name) const;
  std::shared_ptr<Table> GetTableShared(const std::string& name) const;

  /// All tables in registration order.
  const std::vector<std::shared_ptr<Table>>& tables() const { return tables_; }

  /// Declared foreign keys.
  const std::vector<ForeignKey>& foreign_keys() const { return foreign_keys_; }

  /// True when more than one table is registered (star schema layout).
  bool is_normalized() const { return tables_.size() > 1; }

  /// Finds the foreign key that links the fact table to `dimension_table`;
  /// nullptr when absent.
  const ForeignKey* FindForeignKey(const std::string& dimension_table) const;

  /// Locates the table that owns `column_name`, searching the fact table
  /// first and then dimensions.  Returns the table or an error.
  Result<const Table*> TableForColumn(const std::string& column_name) const;

  /// Total number of nominal "logical" rows this catalog represents; used
  /// by the virtual cost model.  Defaults to the fact-table row count.
  int64_t nominal_rows() const;
  void set_nominal_rows(int64_t n) { nominal_rows_ = n; }

 private:
  std::vector<std::shared_ptr<Table>> tables_;
  std::vector<ForeignKey> foreign_keys_;
  int64_t nominal_rows_ = -1;
};

}  // namespace idebench::storage

#endif  // IDEBENCH_STORAGE_CATALOG_H_
