#ifndef IDEBENCH_STORAGE_SEGMENT_H_
#define IDEBENCH_STORAGE_SEGMENT_H_

/// \file segment.h
/// Tiered columnar storage: compressed on-disk segments.
///
/// A segment file freezes one in-memory `Table` into fixed-size row
/// segments of `kSegmentRows` rows (the last segment may be short).  The
/// segment size deliberately equals `kZoneMapBlockRows` and `kMorselRows`:
/// one segment == one zone-map block == one morsel, so the zone map the
/// column already maintains can be persisted per segment verbatim, and a
/// parallel scan can hand whole segments to workers without splitting a
/// zone entry across tasks.
///
/// Per-segment encoding is chosen from the segment's own statistics,
/// independently per segment (a sorted prefix can be RLE while a noisy
/// tail bit-packs):
///
///  * `kRawInt64` / `kRawDouble` — verbatim little-endian values.  Doubles
///    are *always* raw: a byte-exact memcpy round-trips every NaN payload
///    and signed zero, which the bit-identity contract requires.
///  * `kRle` — run-length encoding: `int64 values[num_runs]` followed by
///    `int32 lengths[num_runs]`.  Wins on sorted or low-cardinality
///    int64/code data.
///  * `kBitPacked` — frame-of-reference bit-packing: `value - base` packed
///    LSB-first into little-endian uint64 words at a fixed width of 1..32
///    bits.  Wins on narrow-range data (dates, small codes).
///
/// The smallest encoding wins; ties break RLE < bit-packed < raw (run
/// structure is worth more to the scan kernels than equal bytes).
///
/// String columns persist their dictionary (in code order) in the footer
/// and encode the code stream like any int64 column.  Each string-column
/// segment also stores a *presence bitset* over dictionary codes, so an
/// equality/membership probe can prove "code not in this segment" without
/// touching the payload even when the zone-map range is too wide to help.
///
/// File layout (native-endian; a same-host cache format, not a portable
/// interchange format — the header magic doubles as an endianness check):
///
///     [u64 head magic]
///     [payload blobs, each 8-byte aligned, zero-padded between]
///     [footer: table/column/segment metadata, dictionaries, bitsets]
///     [u64 footer_size][u64 fnv1a checksum][u64 tail magic]
///
/// The checksum covers every byte from offset 0 through the footer_size
/// field inclusive (i.e. [0, file_size - 16)), so a flipped bit anywhere
/// in payload, footer, or trailer-length field is caught.  `Open` memory-
/// maps the file read-only, verifies the checksum, and bounds-checks every
/// footer field before any typed pointer is formed; a corrupt or truncated
/// file is rejected wholesale with a `Status`, never half-loaded.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/catalog.h"
#include "storage/column.h"
#include "storage/table.h"

namespace idebench::storage {

/// Rows per segment.  Equal to the zone-map block and morsel size by
/// design; see the file comment.
inline constexpr int64_t kSegmentRows = kZoneMapBlockRows;

/// Physical encoding of one segment's payload blob.
enum class SegmentEncoding : uint8_t {
  kRawInt64 = 0,
  kRawDouble = 1,
  kRle = 2,
  kBitPacked = 3,
};

/// Returns "raw_int64", "raw_double", "rle" or "bit_packed".
const char* SegmentEncodingName(SegmentEncoding encoding);

/// Metadata for one segment of one column, parsed out of the footer.  The
/// payload pointer aliases the file mapping and stays valid for the
/// lifetime of the owning `SegmentFile`.
struct SegmentView {
  SegmentEncoding encoding = SegmentEncoding::kRawInt64;
  const uint8_t* data = nullptr;  // 8-byte-aligned payload blob
  uint64_t bytes = 0;             // payload blob size
  int64_t rows = 0;               // rows in this segment (1..kSegmentRows)
  ZoneEntry zone;                 // persisted zone-map entry

  // kBitPacked only: packed value = (raw - base) in `bits` bits.
  int64_t base = 0;
  uint8_t bits = 0;

  // kRle only.
  int32_t num_runs = 0;

  // String columns only: bit `c` set iff dictionary code `c` occurs in
  // this segment.  Owned by the parsed footer, not the mapping.
  const uint64_t* dict_bits = nullptr;
  int32_t dict_bit_words = 0;

  // --- Typed payload accessors (encoding must match) ------------------

  const int64_t* raw_int64() const {
    return reinterpret_cast<const int64_t*>(data);
  }
  const double* raw_double() const {
    return reinterpret_cast<const double*>(data);
  }
  const int64_t* rle_values() const {
    return reinterpret_cast<const int64_t*>(data);
  }
  const int32_t* rle_lengths() const {
    return reinterpret_cast<const int32_t*>(
        data + static_cast<uint64_t>(num_runs) * 8);
  }
  const uint64_t* packed_words() const {
    return reinterpret_cast<const uint64_t*>(data);
  }

  /// String columns: false proves code `code` does not occur in this
  /// segment (true means "maybe").  Out-of-range codes are absent.
  bool MightContainCode(int64_t code) const {
    if (dict_bits == nullptr) return true;  // not a string column
    if (code < 0 || code >= static_cast<int64_t>(dict_bit_words) * 64) {
      return false;
    }
    return (dict_bits[code >> 6] >> (code & 63)) & 1;
  }
};

/// Per-column metadata parsed out of the footer.
struct SegmentColumnMeta {
  Field field;
  std::vector<std::string> dict_values;  // string columns, in code order
  std::vector<SegmentView> segments;
};

/// A memory-mapped, checksum-verified segment file.  Move-only; the
/// mapping lives until destruction, and every `SegmentView::data` pointer
/// handed out aliases it.  Const access is safe to share across threads.
class SegmentFile {
 public:
  /// Maps and validates `path`.  Chaos sites `segment.open`,
  /// `segment.mmap` and `segment.checksum` inject the corresponding
  /// failures (chaos/fault_injector.h).
  static Result<SegmentFile> Open(const std::string& path);

  SegmentFile(SegmentFile&& other) noexcept;
  SegmentFile& operator=(SegmentFile&& other) noexcept;
  SegmentFile(const SegmentFile&) = delete;
  SegmentFile& operator=(const SegmentFile&) = delete;
  ~SegmentFile();

  const std::string& table_name() const { return table_name_; }
  int64_t num_rows() const { return num_rows_; }
  int num_columns() const { return static_cast<int>(columns_.size()); }
  int64_t num_segments() const { return num_segments_; }

  const SegmentColumnMeta& column_meta(int i) const {
    return columns_[static_cast<size_t>(i)];
  }

  /// Index of the column named `name`, or -1.
  int ColumnIndex(const std::string& name) const;

  /// Segment `seg` of column `col`.
  const SegmentView& view(int col, int64_t seg) const {
    return columns_[static_cast<size_t>(col)]
        .segments[static_cast<size_t>(seg)];
  }

  /// Rows in segment `seg` (same for every column).
  int64_t segment_rows(int64_t seg) const;

  /// Total mapped bytes (telemetry).
  uint64_t file_bytes() const { return size_; }

  /// Decompresses the whole file back into an in-memory `Table`.  Values
  /// are replayed through the normal append paths in row order, so the
  /// rebuilt table's stats, zone maps and dictionary are bit-identical to
  /// the table that was packed — engines running on a decoded catalog
  /// produce byte-for-byte the results of the original in-memory path.
  Result<Table> Decode() const;

 private:
  SegmentFile() = default;

  Status Parse();

  std::string path_;
  const uint8_t* map_ = nullptr;  // mmap base (nullptr when moved-from)
  uint64_t size_ = 0;

  std::string table_name_;
  int64_t num_rows_ = 0;
  int64_t num_segments_ = 0;
  std::vector<SegmentColumnMeta> columns_;
  // Backing store for every segment's dict_bits pointer.
  std::vector<std::unique_ptr<uint64_t[]>> bitset_storage_;
};

/// Packs `table` into a segment file at `path` (overwrites).  Encoding is
/// chosen per segment per column as described in the file comment.
Status WriteSegmentFile(const Table& table, const std::string& path);

/// Packs every table of `catalog` into `dir` (one `<table>.seg` per
/// table) plus a `manifest.json` recording registration order, foreign
/// keys and nominal rows.  Creates `dir` if needed.
Status WriteCatalogSegments(const Catalog& catalog, const std::string& dir);

/// Rebuilds a catalog from `dir` (written by `WriteCatalogSegments`) by
/// decoding every segment file.  The result is bit-identical to the
/// catalog that was packed: same table order, same dictionaries, same
/// stats and zone maps, same foreign keys and nominal row count.
Result<Catalog> LoadCatalogSegments(const std::string& dir);

}  // namespace idebench::storage

#endif  // IDEBENCH_STORAGE_SEGMENT_H_
