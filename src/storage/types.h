#ifndef IDEBENCH_STORAGE_TYPES_H_
#define IDEBENCH_STORAGE_TYPES_H_

/// \file types.h
/// Logical column types for the in-memory column store.
///
/// The flights schema (paper Figure 2) needs three physical types:
/// 64-bit integers (counts, codes, dates), doubles (delays, distances) and
/// dictionary-encoded strings (airport/carrier names).  Nominal attributes
/// are always dictionary-encoded so group-by on them is an integer
/// operation, as in columnar engines like MonetDB.

#include <cstdint>
#include <string>

namespace idebench::storage {

/// Physical type of a column.
enum class DataType : uint8_t {
  kInt64 = 0,
  kDouble = 1,
  kString = 2,  // dictionary-encoded
};

/// Returns a lower-case type name ("int64", "double", "string").
const char* DataTypeName(DataType type);

/// Statistical role of an attribute, used by binning and the data
/// generator (paper: nominal vs. quantitative binning).
enum class AttributeKind : uint8_t {
  kQuantitative = 0,  // continuous or discrete numeric; range-binned
  kNominal = 1,       // categorical; one bin per distinct value
};

/// Returns "quantitative" or "nominal".
const char* AttributeKindName(AttributeKind kind);

/// A named, typed column descriptor.
struct Field {
  std::string name;
  DataType type = DataType::kDouble;
  AttributeKind kind = AttributeKind::kQuantitative;

  bool operator==(const Field& other) const {
    return name == other.name && type == other.type && kind == other.kind;
  }
};

}  // namespace idebench::storage

#endif  // IDEBENCH_STORAGE_TYPES_H_
