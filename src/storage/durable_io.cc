#include "storage/durable_io.h"

#include <errno.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>

#include "chaos/fault_injector.h"

namespace idebench::storage {

namespace {

std::string Errno(const char* op, const std::string& path) {
  return std::string(op) + " '" + path + "': " + std::strerror(errno);
}

/// Writes all of [data, data+n) to fd, retrying short writes / EINTR.
/// The `segment.write` chaos site is drawn once per write call, *between*
/// the two halves of the payload: a fire (or a kill-on-fire crash) leaves
/// a genuinely torn file, which is exactly the state the atomic-rename
/// protocol must make unobservable at the destination path.
Status WriteAll(int fd, const char* data, size_t n, const std::string& path) {
  const size_t half = n / 2;
  size_t written = 0;
  while (written < n) {
    if (written == half &&
        chaos::FaultInjector::Fire(chaos::FaultSite::kSegmentWrite)) {
      errno = ENOSPC;
      return Status::IOError(Errno("injected mid-write fault on", path));
    }
    // Cap each syscall at the half boundary so the chaos draw above sits
    // at a deterministic byte offset regardless of kernel write sizes.
    const size_t want = written < half ? half - written : n - written;
    const ssize_t rc = ::write(fd, data + written, want);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(Errno("write to", path));
    }
    if (rc == 0) return Status::IOError("short write to '" + path + "'");
    written += static_cast<size_t>(rc);
  }
  return Status::OK();
}

}  // namespace

Status FsyncDirectory(const std::string& dir) {
  const std::string target = dir.empty() ? "." : dir;
  const int fd = ::open(target.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return Status::IOError(Errno("open directory", target));
  const int rc = ::fsync(fd);
  const int saved = errno;
  ::close(fd);
  if (rc != 0) {
    errno = saved;
    return Status::IOError(Errno("fsync directory", target));
  }
  return Status::OK();
}

Status WriteFileAtomic(const std::string& path, const std::string& data) {
  // Per-process temp name: concurrent writers of the same destination
  // (e.g. test shards sharing a cache path) must not race on one temp
  // file — each renames its own, and the last rename wins atomically.
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return Status::IOError(Errno("open", tmp));

  Status st = WriteAll(fd, data.data(), data.size(), tmp);
  if (st.ok() && ::fsync(fd) != 0) st = Status::IOError(Errno("fsync", tmp));
  if (::close(fd) != 0 && st.ok()) st = Status::IOError(Errno("close", tmp));
  if (!st.ok()) {
    ::unlink(tmp.c_str());
    return st;
  }

  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    st = Status::IOError(Errno("rename to", path));
    ::unlink(tmp.c_str());
    return st;
  }
  // The rename is not durable until the directory entry is.
  const std::string parent =
      std::filesystem::path(path).parent_path().string();
  return FsyncDirectory(parent);
}

}  // namespace idebench::storage
