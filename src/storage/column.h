#ifndef IDEBENCH_STORAGE_COLUMN_H_
#define IDEBENCH_STORAGE_COLUMN_H_

/// \file column.h
/// A single in-memory column: contiguous typed storage plus (for strings)
/// a dictionary.  Columns expose a uniform numeric view used by binning
/// and aggregation: string columns surface their dictionary codes.

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/types.h"

namespace idebench::storage {

/// Rows covered by one zone-map entry.  Matches the morsel size of the
/// parallel execution layer (exec/parallel.h), so a full-scan morsel is
/// covered by exactly one zone entry and can be skipped wholesale when
/// the entry's range provably cannot satisfy a query's predicates.
inline constexpr int64_t kZoneMapBlockRows = 64 * 1024;

/// Min/max (numeric view) plus NaN count over one block of
/// `kZoneMapBlockRows` consecutive rows.  Bounds cover the block's
/// *finite* values only — NaN appends bump `nan_count` and never touch
/// them (a NaN-first block must not poison the bounds for later finite
/// rows, or pruning would drop their matches).  A block with no finite
/// values keeps the `min > max` sentinels; every range test on it fails,
/// which pruning soundly reads as "no possible match" (NaN rows match no
/// predicate and bin to no key).
struct ZoneEntry {
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  // The storage layer's "null" analog.  No prune check consults it yet
  // (NaN rows can never match, so min/max alone are sound); it is
  // maintained now so future NaN-aware consumers (e.g. COUNT(col)
  // block-level answers, data-quality reports) get full maps without a
  // rescan, and so tests can pin the NaN-vs-bounds invariant directly.
  int64_t nan_count = 0;
};

/// Dictionary for string columns: code <-> string, insertion-ordered.
class Dictionary {
 public:
  /// Returns the code for `value`, inserting it if new.
  int64_t GetOrInsert(const std::string& value);

  /// Returns the code for `value` or -1 when absent.
  int64_t Lookup(const std::string& value) const;

  /// Returns the string for `code`; requires a valid code.
  const std::string& At(int64_t code) const;

  /// Number of distinct values.
  int64_t size() const { return static_cast<int64_t>(values_.size()); }

  /// All distinct values in code order.
  const std::vector<std::string>& values() const { return values_; }

 private:
  std::vector<std::string> values_;
  std::unordered_map<std::string, int64_t> index_;
};

/// An append-only typed column.
class Column {
 public:
  /// Creates an empty column of the given type.
  explicit Column(Field field);

  const Field& field() const { return field_; }
  DataType type() const { return field_.type; }
  const std::string& name() const { return field_.name; }

  /// Number of rows.
  int64_t size() const;

  // --- Appending (type must match) -----------------------------------

  void AppendInt(int64_t v);
  void AppendDouble(double v);
  void AppendString(const std::string& v);

  /// Appends a value parsed from text according to the column type.
  Status AppendParsed(const std::string& text);

  /// Appends row `row` of `other` (same type required).
  void AppendFrom(const Column& other, int64_t row);

  /// Appends `n` zero rows in bulk: value 0 for int64, 0.0 for double,
  /// dictionary code 0 for strings (the dictionary must be non-empty).
  /// Stats and zone map end up bit-identical to `n` single appends, but
  /// the fold runs once per zone block instead of once per row.  This is
  /// how the compressed segment scan (exec/segment_scan.h) sizes its
  /// staging columns before overwriting them through `Mutable*Data`.
  void AppendPlaceholderZeros(int64_t n);

  /// Reserves capacity for `n` rows.
  void Reserve(int64_t n);

  // --- Reading --------------------------------------------------------

  /// Numeric view of row `i`: raw value for int64/double, dictionary code
  /// for strings.  This is the access path used by all operators.
  double ValueAsDouble(int64_t i) const;

  /// Integer view of row `i` (truncates doubles; code for strings).
  int64_t ValueAsInt(int64_t i) const;

  /// Renders row `i` as text (dictionary-decoded for strings).
  std::string ValueAsString(int64_t i) const;

  /// Raw typed storage (requires matching type).
  const std::vector<int64_t>& ints() const { return ints_; }
  const std::vector<double>& doubles() const { return doubles_; }
  const std::vector<int64_t>& codes() const { return ints_; }

  /// Contiguous typed accessors for vectorized kernels.  `Int64Data()` is
  /// the raw array for int64 columns and the dictionary-code array for
  /// string columns; `DoubleData()` is the raw array for double columns.
  /// Pointers are invalidated by appends.
  const int64_t* Int64Data() const { return ints_.data(); }
  const double* DoubleData() const { return doubles_.data(); }

  /// Mutable raw storage — the escape hatch for the compressed segment
  /// scan's *staging* columns (exec/segment_scan.h), which decode each
  /// 64K segment into a fixed-size buffer the compiled kernels already
  /// point at.  Writes through these pointers bypass the `UpdateStats`
  /// funnel: min/max and the zone map go stale, so they are only legal on
  /// columns whose stats nothing consults.  Never use on catalog tables.
  int64_t* MutableInt64Data() { return ints_.data(); }
  double* MutableDoubleData() { return doubles_.data(); }
  const Dictionary& dictionary() const { return dict_; }
  Dictionary& mutable_dictionary() { return dict_; }

  /// Appends a pre-encoded dictionary code (string columns only; the code
  /// must already exist in the dictionary).
  void AppendCode(int64_t code);

  /// Minimum/maximum over the numeric view; zero for empty columns.
  /// Maintained incrementally on append (O(1) reads, no re-scan); const
  /// reads never mutate state, so they are safe to share across threads.
  double Min() const { return size() == 0 ? 0.0 : cached_min_; }
  double Max() const { return size() == 0 ? 0.0 : cached_max_; }

  // --- Epoch-published stats (streaming ingest) ----------------------
  //
  // Under streaming ingest (Table::BeginIngest), rows staged in the open
  // epoch must not leak into the stats a query planner consults: a reader
  // holding an old watermark would otherwise observe min/max bounds — and
  // dictionary entries — that include rows it cannot see, changing bin
  // layouts relative to a run against the table frozen at that watermark.
  // `PublishStats` snapshots the live stats at an epoch-publish boundary;
  // the `Visible*` accessors serve the last published snapshot, falling
  // back to the live values on tables that never entered ingest mode.

  /// Snapshots live min/max and dictionary size as the published-visible
  /// stats.  Called by `Table::BeginIngest`/`Table::PublishEpoch` only.
  void PublishStats() {
    visible_min_ = Min();
    visible_max_ = Max();
    visible_dict_size_ = dict_.size();
    stats_published_ = true;
  }

  /// Min/max/dictionary size as of the last published epoch; identical to
  /// the live values when stats were never published (no ingest).
  double VisibleMin() const { return stats_published_ ? visible_min_ : Min(); }
  double VisibleMax() const { return stats_published_ ? visible_max_ : Max(); }
  int64_t VisibleDictSize() const {
    return stats_published_ ? visible_dict_size_ : dict_.size();
  }

  /// Per-block zone map over the numeric view: entry `b` covers rows
  /// [b * kZoneMapBlockRows, (b+1) * kZoneMapBlockRows).  Maintained on
  /// *every* append path — including the pre-encoded-dictionary
  /// `AppendCode` path — through the single `UpdateStats` funnel, so the
  /// map can never go stale relative to the data.  Like Min/Max, const
  /// reads never mutate state and are safe to share across threads once
  /// appends have stopped.
  const std::vector<ZoneEntry>& zone_map() const { return zones_; }

 private:
  /// Folds one appended numeric-view value into the whole-column min/max
  /// cache *and* the current zone-map block (same std::min/std::max fold
  /// the old full scans performed, so cached values are identical —
  /// including NaN-ignoring semantics).  Every Append* entry point must
  /// route through here, exactly once per appended row.
  void UpdateStats(double v) {
    if (size() == 1) {
      cached_min_ = v;
      cached_max_ = v;
    } else {
      cached_min_ = std::min(cached_min_, v);
      cached_max_ = std::max(cached_max_, v);
    }
    const int64_t row = size() - 1;  // the row just appended
    if (row % kZoneMapBlockRows == 0) zones_.emplace_back();
    ZoneEntry& z = zones_.back();
    if (v == v) {
      z.min = std::min(z.min, v);
      z.max = std::max(z.max, v);
    } else {
      ++z.nan_count;
    }
  }

  Field field_;
  std::vector<int64_t> ints_;     // int64 values or dictionary codes
  std::vector<double> doubles_;   // double values
  Dictionary dict_;               // string columns only
  double cached_min_ = 0.0;
  double cached_max_ = 0.0;
  std::vector<ZoneEntry> zones_;  // one entry per kZoneMapBlockRows rows
  bool stats_published_ = false;  // ever snapshotted by an epoch publish?
  double visible_min_ = 0.0;      // stats as of the last published epoch
  double visible_max_ = 0.0;
  int64_t visible_dict_size_ = 0;
};

}  // namespace idebench::storage

#endif  // IDEBENCH_STORAGE_COLUMN_H_
