#include "storage/column.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"

namespace idebench::storage {

int64_t Dictionary::GetOrInsert(const std::string& value) {
  auto it = index_.find(value);
  if (it != index_.end()) return it->second;
  const int64_t code = static_cast<int64_t>(values_.size());
  values_.push_back(value);
  index_.emplace(value, code);
  return code;
}

int64_t Dictionary::Lookup(const std::string& value) const {
  auto it = index_.find(value);
  return it == index_.end() ? -1 : it->second;
}

const std::string& Dictionary::At(int64_t code) const {
  IDB_CHECK(code >= 0 && code < size());
  return values_[static_cast<size_t>(code)];
}

Column::Column(Field field) : field_(std::move(field)) {
  if (field_.type == DataType::kString) {
    field_.kind = AttributeKind::kNominal;
  }
}

int64_t Column::size() const {
  return field_.type == DataType::kDouble
             ? static_cast<int64_t>(doubles_.size())
             : static_cast<int64_t>(ints_.size());
}

void Column::AppendInt(int64_t v) {
  IDB_CHECK(field_.type == DataType::kInt64);
  ints_.push_back(v);
  UpdateStats(static_cast<double>(v));
}

void Column::AppendDouble(double v) {
  IDB_CHECK(field_.type == DataType::kDouble);
  doubles_.push_back(v);
  UpdateStats(v);
}

void Column::AppendString(const std::string& v) {
  IDB_CHECK(field_.type == DataType::kString);
  const int64_t code = dict_.GetOrInsert(v);
  ints_.push_back(code);
  UpdateStats(static_cast<double>(code));
}

void Column::AppendCode(int64_t code) {
  IDB_CHECK(field_.type == DataType::kString);
  IDB_CHECK(code >= 0 && code < dict_.size());
  ints_.push_back(code);
  UpdateStats(static_cast<double>(code));
}

void Column::AppendPlaceholderZeros(int64_t n) {
  if (n <= 0) return;
  if (field_.type == DataType::kString) {
    IDB_CHECK(dict_.size() > 0);  // the zeros are dictionary code 0
  }
  if (field_.type == DataType::kDouble) {
    doubles_.resize(doubles_.size() + static_cast<size_t>(n), 0.0);
  } else {
    ints_.resize(ints_.size() + static_cast<size_t>(n), 0);
  }
  // Fold the n zeros into the stats in bulk — one min/max fold per zone
  // block instead of one per row.  Identical result to n single appends:
  // every appended numeric-view value is exactly 0.0.
  const int64_t new_size = size();
  const int64_t first_row = new_size - n;
  if (first_row == 0) {
    cached_min_ = 0.0;
    cached_max_ = 0.0;
  } else {
    cached_min_ = std::min(cached_min_, 0.0);
    cached_max_ = std::max(cached_max_, 0.0);
  }
  for (int64_t row = first_row; row < new_size;
       row = (row / kZoneMapBlockRows + 1) * kZoneMapBlockRows) {
    if (row % kZoneMapBlockRows == 0) zones_.emplace_back();
    ZoneEntry& z = zones_.back();
    z.min = std::min(z.min, 0.0);
    z.max = std::max(z.max, 0.0);
  }
}

Status Column::AppendParsed(const std::string& text) {
  // Strict, locale-independent parsing (common/string_util.h): the whole
  // trimmed token must form one value.  strtod/strtoll would accept
  // trailing garbage ("12abc"), consult the C locale for the decimal
  // separator, and silently clamp out-of-range input to ±HUGE_VAL /
  // LLONG_MAX — clamped values would then poison min/max and zone maps.
  switch (field_.type) {
    case DataType::kInt64: {
      int64_t v = 0;
      switch (ParseInt64Strict(Trim(text), &v)) {
        case StrictParseResult::kOk:
          break;
        case StrictParseResult::kOutOfRange:
          return Status::Invalid("int64 out of range: '" + text + "'");
        case StrictParseResult::kInvalid:
          return Status::Invalid("cannot parse int64 from '" + text + "'");
      }
      ints_.push_back(v);
      UpdateStats(static_cast<double>(v));
      return Status::OK();
    }
    case DataType::kDouble: {
      double v = 0.0;
      switch (ParseDoubleStrict(Trim(text), &v)) {
        case StrictParseResult::kOk:
          break;
        case StrictParseResult::kOutOfRange:
          return Status::Invalid("double out of range: '" + text + "'");
        case StrictParseResult::kInvalid:
          return Status::Invalid("cannot parse double from '" + text + "'");
      }
      doubles_.push_back(v);
      UpdateStats(v);
      return Status::OK();
    }
    case DataType::kString: {
      const int64_t code = dict_.GetOrInsert(text);
      ints_.push_back(code);
      UpdateStats(static_cast<double>(code));
      return Status::OK();
    }
  }
  return Status::Invalid("unknown column type");
}

void Column::AppendFrom(const Column& other, int64_t row) {
  IDB_CHECK(other.field_.type == field_.type);
  switch (field_.type) {
    case DataType::kInt64: {
      const int64_t v = other.ints_[static_cast<size_t>(row)];
      ints_.push_back(v);
      UpdateStats(static_cast<double>(v));
      return;
    }
    case DataType::kDouble: {
      const double v = other.doubles_[static_cast<size_t>(row)];
      doubles_.push_back(v);
      UpdateStats(v);
      return;
    }
    case DataType::kString: {
      const int64_t code = dict_.GetOrInsert(
          other.dict_.At(other.ints_[static_cast<size_t>(row)]));
      ints_.push_back(code);
      UpdateStats(static_cast<double>(code));
      return;
    }
  }
}

void Column::Reserve(int64_t n) {
  if (field_.type == DataType::kDouble) {
    doubles_.reserve(static_cast<size_t>(n));
  } else {
    ints_.reserve(static_cast<size_t>(n));
  }
}

double Column::ValueAsDouble(int64_t i) const {
  return field_.type == DataType::kDouble
             ? doubles_[static_cast<size_t>(i)]
             : static_cast<double>(ints_[static_cast<size_t>(i)]);
}

int64_t Column::ValueAsInt(int64_t i) const {
  return field_.type == DataType::kDouble
             ? static_cast<int64_t>(doubles_[static_cast<size_t>(i)])
             : ints_[static_cast<size_t>(i)];
}

std::string Column::ValueAsString(int64_t i) const {
  switch (field_.type) {
    case DataType::kInt64:
      return std::to_string(ints_[static_cast<size_t>(i)]);
    case DataType::kDouble:
      return FormatDouble(doubles_[static_cast<size_t>(i)], 6);
    case DataType::kString:
      return dict_.At(ints_[static_cast<size_t>(i)]);
  }
  return {};
}

}  // namespace idebench::storage
