#include "storage/schema.h"

namespace idebench::storage {

int Schema::FieldIndex(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

Result<Field> Schema::FieldByName(const std::string& name) const {
  const int idx = FieldIndex(name);
  if (idx < 0) return Status::KeyError("no field named '" + name + "'");
  return fields_[static_cast<size_t>(idx)];
}

Status Schema::AddField(Field field) {
  if (FieldIndex(field.name) >= 0) {
    return Status::AlreadyExists("field '" + field.name + "' already exists");
  }
  fields_.push_back(std::move(field));
  return Status::OK();
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].name;
    out += ": ";
    out += DataTypeName(fields_[i].type);
  }
  out += ")";
  return out;
}

}  // namespace idebench::storage
