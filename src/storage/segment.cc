#include "storage/segment.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <utility>

#include "chaos/fault_injector.h"
#include "common/json.h"
#include "storage/durable_io.h"
#include "storage/schema.h"

namespace idebench::storage {

namespace {

// "IDBSEG01" / "IDBSEGT1" as native-endian u64s.  The head magic doubles
// as both a format-version stamp (bump the trailing digits on layout
// changes) and an endianness check: a file from a different-endian host
// fails the magic comparison before anything else is trusted.
constexpr uint64_t kHeadMagic = 0x3130474553424449ULL;
constexpr uint64_t kTailMagic = 0x3154474553424449ULL;
constexpr uint64_t kTrailerBytes = 24;  // footer_size + checksum + tail magic

uint64_t Fnv1a(const uint8_t* data, uint64_t n) {
  uint64_t h = 14695981039346656037ULL;
  for (uint64_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 1099511628211ULL;
  }
  return h;
}

// --- Little write helpers over a growing byte buffer -------------------

void PutBytes(std::string* buf, const void* p, size_t n) {
  buf->append(static_cast<const char*>(p), n);
}
void PutU8(std::string* buf, uint8_t v) { PutBytes(buf, &v, 1); }
void PutU32(std::string* buf, uint32_t v) { PutBytes(buf, &v, 4); }
void PutU64(std::string* buf, uint64_t v) { PutBytes(buf, &v, 8); }
void PutI64(std::string* buf, int64_t v) { PutBytes(buf, &v, 8); }
void PutF64(std::string* buf, double v) { PutBytes(buf, &v, 8); }
void PutString(std::string* buf, const std::string& s) {
  PutU32(buf, static_cast<uint32_t>(s.size()));
  PutBytes(buf, s.data(), s.size());
}

/// Bits needed to represent `range` (1 for a constant segment, so a
/// packed blob never has zero-width values).
uint8_t BitWidthFor(uint64_t range) {
  if (range == 0) return 1;
  return static_cast<uint8_t>(64 - __builtin_clzll(range));
}

uint64_t PackedWords(int64_t rows, uint8_t bits) {
  return (static_cast<uint64_t>(rows) * bits + 63) / 64;
}

struct EncodedBlob {
  SegmentEncoding encoding = SegmentEncoding::kRawInt64;
  std::string bytes;
  int64_t base = 0;
  uint8_t bits = 0;
  int32_t num_runs = 0;
};

/// Encodes `rows` int64 values (raw values or dictionary codes) with the
/// cheapest of raw / RLE / frame-of-reference bit-packing.
EncodedBlob EncodeInt64Segment(const int64_t* values, int64_t rows) {
  int64_t min = values[0];
  int64_t max = values[0];
  int64_t num_runs = 1;
  for (int64_t i = 1; i < rows; ++i) {
    min = std::min(min, values[i]);
    max = std::max(max, values[i]);
    if (values[i] != values[i - 1]) ++num_runs;
  }

  const uint64_t raw_bytes = static_cast<uint64_t>(rows) * 8;
  const uint64_t rle_bytes = static_cast<uint64_t>(num_runs) * 12;
  const uint64_t range =
      static_cast<uint64_t>(max) - static_cast<uint64_t>(min);
  const uint8_t bits = BitWidthFor(range);
  const uint64_t packed_bytes =
      bits <= 32 ? PackedWords(rows, bits) * 8 : UINT64_MAX;

  EncodedBlob blob;
  if (rle_bytes <= packed_bytes && rle_bytes <= raw_bytes) {
    blob.encoding = SegmentEncoding::kRle;
    blob.num_runs = static_cast<int32_t>(num_runs);
    blob.bytes.reserve(rle_bytes);
    std::string lengths;
    int64_t run_start = 0;
    for (int64_t i = 1; i <= rows; ++i) {
      if (i == rows || values[i] != values[i - 1]) {
        PutI64(&blob.bytes, values[run_start]);
        PutU32(&lengths, static_cast<uint32_t>(i - run_start));
        run_start = i;
      }
    }
    blob.bytes += lengths;
  } else if (packed_bytes <= raw_bytes) {
    blob.encoding = SegmentEncoding::kBitPacked;
    blob.base = min;
    blob.bits = bits;
    std::vector<uint64_t> words(PackedWords(rows, bits), 0);
    for (int64_t i = 0; i < rows; ++i) {
      const uint64_t u =
          static_cast<uint64_t>(values[i]) - static_cast<uint64_t>(min);
      const uint64_t bitpos = static_cast<uint64_t>(i) * bits;
      const uint64_t word = bitpos >> 6;
      const uint64_t shift = bitpos & 63;
      words[word] |= u << shift;
      if (shift + bits > 64) words[word + 1] |= u >> (64 - shift);
    }
    PutBytes(&blob.bytes, words.data(), words.size() * 8);
  } else {
    blob.encoding = SegmentEncoding::kRawInt64;
    PutBytes(&blob.bytes, values, static_cast<size_t>(rows) * 8);
  }
  return blob;
}

// --- Bounds-checked footer cursor --------------------------------------

class FooterCursor {
 public:
  FooterCursor(const uint8_t* begin, const uint8_t* end)
      : p_(begin), end_(end) {}

  Status ReadU8(uint8_t* out) { return ReadRaw(out, 1); }
  Status ReadU32(uint32_t* out) { return ReadRaw(out, 4); }
  Status ReadU64(uint64_t* out) { return ReadRaw(out, 8); }
  Status ReadI64(int64_t* out) { return ReadRaw(out, 8); }
  Status ReadF64(double* out) { return ReadRaw(out, 8); }

  Status ReadString(std::string* out, uint32_t max_len) {
    uint32_t len = 0;
    IDB_RETURN_NOT_OK(ReadU32(&len));
    if (len > max_len) return Status::Invalid("segment footer: string too long");
    if (static_cast<uint64_t>(end_ - p_) < len) return Truncated();
    out->assign(reinterpret_cast<const char*>(p_), len);
    p_ += len;
    return Status::OK();
  }

  bool AtEnd() const { return p_ == end_; }

 private:
  Status ReadRaw(void* out, uint64_t n) {
    if (static_cast<uint64_t>(end_ - p_) < n) return Truncated();
    std::memcpy(out, p_, n);  // footer fields are unaligned by design
    p_ += n;
    return Status::OK();
  }
  static Status Truncated() {
    return Status::Invalid("segment footer: truncated");
  }

  const uint8_t* p_;
  const uint8_t* end_;
};

Status SegmentError(const std::string& path, const std::string& what) {
  return Status::Invalid("segment file '" + path + "': " + what);
}

}  // namespace

const char* SegmentEncodingName(SegmentEncoding encoding) {
  switch (encoding) {
    case SegmentEncoding::kRawInt64:
      return "raw_int64";
    case SegmentEncoding::kRawDouble:
      return "raw_double";
    case SegmentEncoding::kRle:
      return "rle";
    case SegmentEncoding::kBitPacked:
      return "bit_packed";
  }
  return "unknown";
}

// --- Writer ------------------------------------------------------------

Status WriteSegmentFile(const Table& table, const std::string& path) {
  IDB_RETURN_NOT_OK(table.Validate());
  const int64_t num_rows = table.num_rows();
  const int64_t num_segments = (num_rows + kSegmentRows - 1) / kSegmentRows;

  std::string file;
  PutU64(&file, kHeadMagic);

  // Per column, per segment: encode the payload blob (8-byte aligned in
  // the file) and remember everything the footer needs.
  struct SegRecord {
    SegmentEncoding encoding;
    uint64_t offset;
    uint64_t bytes;
    int64_t rows;
    ZoneEntry zone;
    int64_t base;
    uint8_t bits;
    int32_t num_runs;
    std::vector<uint64_t> dict_bits;
  };
  std::vector<std::vector<SegRecord>> records(
      static_cast<size_t>(table.num_columns()));

  for (int c = 0; c < table.num_columns(); ++c) {
    const Column& col = table.column(c);
    const bool is_string = col.type() == DataType::kString;
    const int64_t dict_words =
        is_string ? (col.dictionary().size() + 63) / 64 : 0;
    for (int64_t seg = 0; seg < num_segments; ++seg) {
      const int64_t first = seg * kSegmentRows;
      const int64_t rows = std::min(kSegmentRows, num_rows - first);
      SegRecord rec;
      rec.rows = rows;
      // One segment == one zone block (kSegmentRows == kZoneMapBlockRows),
      // so the persisted zone is the column's live entry, verbatim.
      rec.zone = col.zone_map()[static_cast<size_t>(seg)];
      rec.base = 0;
      rec.bits = 0;
      rec.num_runs = 0;

      std::string blob;
      if (col.type() == DataType::kDouble) {
        rec.encoding = SegmentEncoding::kRawDouble;
        PutBytes(&blob, col.DoubleData() + first,
                 static_cast<size_t>(rows) * 8);
      } else {
        const int64_t* values = col.Int64Data() + first;
        EncodedBlob enc = EncodeInt64Segment(values, rows);
        rec.encoding = enc.encoding;
        rec.base = enc.base;
        rec.bits = enc.bits;
        rec.num_runs = enc.num_runs;
        blob = std::move(enc.bytes);
        if (is_string) {
          rec.dict_bits.assign(static_cast<size_t>(dict_words), 0);
          for (int64_t i = 0; i < rows; ++i) {
            const int64_t code = values[i];
            rec.dict_bits[static_cast<size_t>(code >> 6)] |= 1ULL
                                                             << (code & 63);
          }
        }
      }

      file.resize((file.size() + 7) & ~size_t{7});  // 8-align the blob
      rec.offset = file.size();
      rec.bytes = blob.size();
      file += blob;
      records[static_cast<size_t>(c)].push_back(std::move(rec));
    }
  }

  // Footer.
  std::string footer;
  PutString(&footer, table.name());
  PutU64(&footer, static_cast<uint64_t>(num_rows));
  PutU64(&footer, static_cast<uint64_t>(num_segments));
  PutU32(&footer, static_cast<uint32_t>(table.num_columns()));
  for (int c = 0; c < table.num_columns(); ++c) {
    const Column& col = table.column(c);
    PutString(&footer, col.name());
    PutU8(&footer, static_cast<uint8_t>(col.type()));
    PutU8(&footer, static_cast<uint8_t>(col.field().kind));
    if (col.type() == DataType::kString) {
      PutU32(&footer, static_cast<uint32_t>(col.dictionary().size()));
      for (const std::string& v : col.dictionary().values()) {
        PutString(&footer, v);
      }
    } else {
      PutU32(&footer, 0);
    }
    for (const SegRecord& rec : records[static_cast<size_t>(c)]) {
      PutU8(&footer, static_cast<uint8_t>(rec.encoding));
      PutU64(&footer, rec.offset);
      PutU64(&footer, rec.bytes);
      PutU32(&footer, static_cast<uint32_t>(rec.rows));
      PutF64(&footer, rec.zone.min);
      PutF64(&footer, rec.zone.max);
      PutU64(&footer, static_cast<uint64_t>(rec.zone.nan_count));
      PutI64(&footer, rec.base);
      PutU8(&footer, rec.bits);
      PutU32(&footer, static_cast<uint32_t>(rec.num_runs));
      PutU32(&footer, static_cast<uint32_t>(rec.dict_bits.size()));
      for (uint64_t word : rec.dict_bits) PutU64(&footer, word);
    }
  }

  file += footer;
  PutU64(&file, footer.size());
  // The checksum covers [0, file_size - 16): everything written so far,
  // footer_size field included.
  const uint64_t checksum =
      Fnv1a(reinterpret_cast<const uint8_t*>(file.data()), file.size());
  PutU64(&file, checksum);
  PutU64(&file, kTailMagic);

  // Atomic + durable: a crash or ENOSPC mid-write must never leave a torn
  // segment at `path` — readers reject corrupt files wholesale, but a torn
  // file silently masquerading as "written OK" would lose the old copy too.
  return WriteFileAtomic(path, file);
}

// --- Reader ------------------------------------------------------------

SegmentFile::SegmentFile(SegmentFile&& other) noexcept {
  *this = std::move(other);
}

SegmentFile& SegmentFile::operator=(SegmentFile&& other) noexcept {
  if (this == &other) return *this;
  if (map_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(map_), static_cast<size_t>(size_));
  }
  path_ = std::move(other.path_);
  map_ = std::exchange(other.map_, nullptr);
  size_ = std::exchange(other.size_, 0);
  table_name_ = std::move(other.table_name_);
  num_rows_ = other.num_rows_;
  num_segments_ = other.num_segments_;
  columns_ = std::move(other.columns_);
  bitset_storage_ = std::move(other.bitset_storage_);
  return *this;
}

SegmentFile::~SegmentFile() {
  if (map_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(map_), static_cast<size_t>(size_));
  }
}

Result<SegmentFile> SegmentFile::Open(const std::string& path) {
  // Chaos site: the open fails before a descriptor exists (transient
  // filesystem error); callers fall back to rebuilding from source.
  if (chaos::FaultInjector::Fire(chaos::FaultSite::kSegmentOpen)) {
    return Status::IOError("injected open fault for '" + path + "'");
  }
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return Status::IOError("cannot open '" + path + "' for reading");
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError("cannot stat '" + path + "'");
  }
  const uint64_t size = static_cast<uint64_t>(st.st_size);
  if (size < 8 + kTrailerBytes) {
    ::close(fd);
    return SegmentError(path, "too small to hold header and trailer");
  }
  // Chaos site: the mapping itself fails (address-space style error); the
  // descriptor must still be released.
  void* map = chaos::FaultInjector::Fire(chaos::FaultSite::kSegmentMmap)
                  ? MAP_FAILED
                  : ::mmap(nullptr, static_cast<size_t>(size), PROT_READ,
                           MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  if (map == MAP_FAILED) {
    return Status::IOError("cannot mmap '" + path + "'");
  }

  SegmentFile file;
  file.path_ = path;
  file.map_ = static_cast<const uint8_t*>(map);
  file.size_ = size;
  IDB_RETURN_NOT_OK(file.Parse());
  return file;
}

Status SegmentFile::Parse() {
  const uint8_t* base = map_;
  uint64_t head = 0;
  std::memcpy(&head, base, 8);
  if (head != kHeadMagic) {
    return SegmentError(path_, "bad magic (not a segment file, a different "
                               "format version, or foreign endianness)");
  }
  uint64_t tail = 0;
  std::memcpy(&tail, base + size_ - 8, 8);
  if (tail != kTailMagic) {
    return SegmentError(path_, "bad tail magic (truncated or overwritten)");
  }
  uint64_t stored_checksum = 0;
  std::memcpy(&stored_checksum, base + size_ - 16, 8);
  const uint64_t actual_checksum = Fnv1a(base, size_ - 16);
  // Chaos site: the verification itself reports rot on intact bytes; the
  // file must be rejected exactly like a genuinely corrupt one.
  const bool forced =
      chaos::FaultInjector::Fire(chaos::FaultSite::kSegmentChecksum);
  if (forced || actual_checksum != stored_checksum) {
    return SegmentError(path_, "checksum mismatch (corrupt file)");
  }
  uint64_t footer_size = 0;
  std::memcpy(&footer_size, base + size_ - kTrailerBytes, 8);
  if (footer_size == 0 || footer_size > size_ - 8 - kTrailerBytes) {
    return SegmentError(path_, "footer size out of bounds");
  }
  const uint64_t footer_start = size_ - kTrailerBytes - footer_size;
  const uint64_t payload_end = footer_start;

  FooterCursor cur(base + footer_start, base + footer_start + footer_size);
  constexpr uint32_t kMaxName = 1 << 20;
  IDB_RETURN_NOT_OK(cur.ReadString(&table_name_, kMaxName));
  uint64_t num_rows = 0;
  uint64_t num_segments = 0;
  uint32_t num_columns = 0;
  IDB_RETURN_NOT_OK(cur.ReadU64(&num_rows));
  IDB_RETURN_NOT_OK(cur.ReadU64(&num_segments));
  IDB_RETURN_NOT_OK(cur.ReadU32(&num_columns));
  num_rows_ = static_cast<int64_t>(num_rows);
  num_segments_ = static_cast<int64_t>(num_segments);
  if (num_rows_ < 0 ||
      num_segments_ != (num_rows_ + kSegmentRows - 1) / kSegmentRows) {
    return SegmentError(path_, "segment count does not match row count");
  }
  if (num_columns == 0 || num_columns > kMaxName) {
    return SegmentError(path_, "implausible column count");
  }

  columns_.reserve(num_columns);
  for (uint32_t c = 0; c < num_columns; ++c) {
    SegmentColumnMeta meta;
    IDB_RETURN_NOT_OK(cur.ReadString(&meta.field.name, kMaxName));
    uint8_t type = 0;
    uint8_t kind = 0;
    IDB_RETURN_NOT_OK(cur.ReadU8(&type));
    IDB_RETURN_NOT_OK(cur.ReadU8(&kind));
    if (type > static_cast<uint8_t>(DataType::kString) || kind > 1) {
      return SegmentError(path_, "invalid column type or kind");
    }
    meta.field.type = static_cast<DataType>(type);
    meta.field.kind = static_cast<AttributeKind>(kind);
    const bool is_string = meta.field.type == DataType::kString;
    uint32_t dict_size = 0;
    IDB_RETURN_NOT_OK(cur.ReadU32(&dict_size));
    if (!is_string && dict_size != 0) {
      return SegmentError(path_, "dictionary on a non-string column");
    }
    meta.dict_values.reserve(dict_size);
    for (uint32_t i = 0; i < dict_size; ++i) {
      std::string v;
      IDB_RETURN_NOT_OK(cur.ReadString(&v, kMaxName));
      meta.dict_values.push_back(std::move(v));
    }
    const int64_t dict_words =
        is_string ? (static_cast<int64_t>(dict_size) + 63) / 64 : 0;

    meta.segments.reserve(static_cast<size_t>(num_segments_));
    for (int64_t seg = 0; seg < num_segments_; ++seg) {
      SegmentView view;
      uint8_t encoding = 0;
      uint64_t offset = 0;
      uint64_t bytes = 0;
      uint32_t rows = 0;
      uint64_t nan_count = 0;
      uint32_t num_runs = 0;
      uint32_t bit_words = 0;
      IDB_RETURN_NOT_OK(cur.ReadU8(&encoding));
      IDB_RETURN_NOT_OK(cur.ReadU64(&offset));
      IDB_RETURN_NOT_OK(cur.ReadU64(&bytes));
      IDB_RETURN_NOT_OK(cur.ReadU32(&rows));
      IDB_RETURN_NOT_OK(cur.ReadF64(&view.zone.min));
      IDB_RETURN_NOT_OK(cur.ReadF64(&view.zone.max));
      IDB_RETURN_NOT_OK(cur.ReadU64(&nan_count));
      IDB_RETURN_NOT_OK(cur.ReadI64(&view.base));
      IDB_RETURN_NOT_OK(cur.ReadU8(&view.bits));
      IDB_RETURN_NOT_OK(cur.ReadU32(&num_runs));
      IDB_RETURN_NOT_OK(cur.ReadU32(&bit_words));
      if (encoding > static_cast<uint8_t>(SegmentEncoding::kBitPacked)) {
        return SegmentError(path_, "invalid segment encoding");
      }
      view.encoding = static_cast<SegmentEncoding>(encoding);
      view.zone.nan_count = static_cast<int64_t>(nan_count);
      view.rows = rows;
      view.bytes = bytes;
      view.num_runs = static_cast<int32_t>(num_runs);

      const int64_t expect_rows =
          std::min(kSegmentRows, num_rows_ - seg * kSegmentRows);
      if (view.rows != expect_rows) {
        return SegmentError(path_, "segment row count out of place");
      }
      if (offset < 8 || offset % 8 != 0 || bytes > payload_end ||
          offset > payload_end - bytes) {
        return SegmentError(path_, "segment payload out of bounds");
      }
      view.data = base + offset;

      const bool double_col = meta.field.type == DataType::kDouble;
      switch (view.encoding) {
        case SegmentEncoding::kRawInt64:
        case SegmentEncoding::kRawDouble: {
          const bool want_double =
              view.encoding == SegmentEncoding::kRawDouble;
          if (want_double != double_col) {
            return SegmentError(path_, "encoding does not match column type");
          }
          if (bytes != static_cast<uint64_t>(view.rows) * 8) {
            return SegmentError(path_, "raw segment size mismatch");
          }
          break;
        }
        case SegmentEncoding::kRle: {
          if (double_col) {
            return SegmentError(path_, "rle on a double column");
          }
          if (view.num_runs <= 0 || view.num_runs > view.rows ||
              bytes != static_cast<uint64_t>(view.num_runs) * 12) {
            return SegmentError(path_, "rle segment size mismatch");
          }
          // Lengths must tile the segment exactly; a bad length would
          // otherwise overrun buffers when runs are expanded.
          int64_t total = 0;
          const int32_t* lengths = view.rle_lengths();
          for (int32_t r = 0; r < view.num_runs; ++r) {
            if (lengths[r] <= 0) {
              return SegmentError(path_, "non-positive rle run length");
            }
            total += lengths[r];
          }
          if (total != view.rows) {
            return SegmentError(path_, "rle run lengths do not sum to rows");
          }
          if (is_string) {
            const int64_t* values = view.rle_values();
            for (int32_t r = 0; r < view.num_runs; ++r) {
              if (values[r] < 0 ||
                  values[r] >= static_cast<int64_t>(dict_size)) {
                return SegmentError(path_, "rle code outside dictionary");
              }
            }
          }
          break;
        }
        case SegmentEncoding::kBitPacked: {
          if (double_col) {
            return SegmentError(path_, "bit packing on a double column");
          }
          if (view.bits < 1 || view.bits > 32 ||
              bytes != PackedWords(view.rows, view.bits) * 8) {
            return SegmentError(path_, "bit-packed segment size mismatch");
          }
          break;
        }
      }

      if (bit_words != static_cast<uint32_t>(dict_words)) {
        return SegmentError(path_, "dictionary bitset size mismatch");
      }
      if (dict_words > 0) {
        auto bits = std::make_unique<uint64_t[]>(static_cast<size_t>(dict_words));
        for (int64_t w = 0; w < dict_words; ++w) {
          IDB_RETURN_NOT_OK(cur.ReadU64(&bits[w]));
        }
        view.dict_bits = bits.get();
        view.dict_bit_words = static_cast<int32_t>(dict_words);
        bitset_storage_.push_back(std::move(bits));
      }
      meta.segments.push_back(view);
    }
    columns_.push_back(std::move(meta));
  }
  if (!cur.AtEnd()) {
    return SegmentError(path_, "trailing bytes after footer");
  }
  return Status::OK();
}

int SegmentFile::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].field.name == name) return static_cast<int>(i);
  }
  return -1;
}

int64_t SegmentFile::segment_rows(int64_t seg) const {
  return std::min(kSegmentRows, num_rows_ - seg * kSegmentRows);
}

Result<Table> SegmentFile::Decode() const {
  std::vector<Field> fields;
  fields.reserve(columns_.size());
  for (const SegmentColumnMeta& meta : columns_) fields.push_back(meta.field);
  Table table(table_name_, Schema(std::move(fields)));
  table.Reserve(num_rows_);

  std::vector<int64_t> buf(static_cast<size_t>(kSegmentRows));
  for (int c = 0; c < num_columns(); ++c) {
    const SegmentColumnMeta& meta = columns_[static_cast<size_t>(c)];
    Column& col = table.mutable_column(c);
    if (meta.field.type == DataType::kString) {
      // Restore the dictionary in code order first, so replayed codes map
      // to exactly the original strings with exactly the original codes.
      for (const std::string& v : meta.dict_values) {
        col.mutable_dictionary().GetOrInsert(v);
      }
    }
    // Values replay through the normal append funnel in row order, so
    // min/max caches and zone maps are rebuilt bit-identically — including
    // the NaN-handling corner cases the live paths have.
    for (const SegmentView& view : meta.segments) {
      switch (view.encoding) {
        case SegmentEncoding::kRawDouble: {
          const double* values = view.raw_double();
          for (int64_t i = 0; i < view.rows; ++i) col.AppendDouble(values[i]);
          break;
        }
        case SegmentEncoding::kRawInt64: {
          const int64_t* values = view.raw_int64();
          if (meta.field.type == DataType::kString) {
            for (int64_t i = 0; i < view.rows; ++i) {
              const int64_t code = values[i];
              if (code < 0 || code >= col.dictionary().size()) {
                return SegmentError(path_, "code outside dictionary");
              }
              col.AppendCode(code);
            }
          } else {
            for (int64_t i = 0; i < view.rows; ++i) col.AppendInt(values[i]);
          }
          break;
        }
        case SegmentEncoding::kRle: {
          const int64_t* values = view.rle_values();
          const int32_t* lengths = view.rle_lengths();
          const bool is_string = meta.field.type == DataType::kString;
          for (int32_t r = 0; r < view.num_runs; ++r) {
            for (int32_t i = 0; i < lengths[r]; ++i) {
              if (is_string) {
                col.AppendCode(values[r]);
              } else {
                col.AppendInt(values[r]);
              }
            }
          }
          break;
        }
        case SegmentEncoding::kBitPacked: {
          const uint64_t* words = view.packed_words();
          const uint8_t bits = view.bits;
          const uint64_t mask =
              bits == 64 ? ~uint64_t{0} : (uint64_t{1} << bits) - 1;
          for (int64_t i = 0; i < view.rows; ++i) {
            const uint64_t bitpos = static_cast<uint64_t>(i) * bits;
            const uint64_t word = bitpos >> 6;
            const uint64_t shift = bitpos & 63;
            uint64_t u = words[word] >> shift;
            if (shift + bits > 64) u |= words[word + 1] << (64 - shift);
            buf[static_cast<size_t>(i)] = static_cast<int64_t>(
                static_cast<uint64_t>(view.base) + (u & mask));
          }
          if (meta.field.type == DataType::kString) {
            for (int64_t i = 0; i < view.rows; ++i) {
              const int64_t code = buf[static_cast<size_t>(i)];
              if (code < 0 || code >= col.dictionary().size()) {
                return SegmentError(path_, "code outside dictionary");
              }
              col.AppendCode(code);
            }
          } else {
            for (int64_t i = 0; i < view.rows; ++i) {
              col.AppendInt(buf[static_cast<size_t>(i)]);
            }
          }
          break;
        }
      }
    }
  }
  IDB_RETURN_NOT_OK(table.Validate());
  return table;
}

// --- Catalog-level packing ---------------------------------------------

namespace {

constexpr int kManifestVersion = 1;

std::string SegmentPath(const std::string& dir, const std::string& table) {
  return dir + "/" + table + ".seg";
}

std::string ManifestPath(const std::string& dir) {
  return dir + "/manifest.json";
}

}  // namespace

Status WriteCatalogSegments(const Catalog& catalog, const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create directory '" + dir +
                           "': " + ec.message());
  }
  JsonValue manifest = JsonValue::Object();
  manifest.Set("version", kManifestVersion);
  manifest.Set("nominal_rows", catalog.nominal_rows());
  JsonValue tables = JsonValue::Array();
  for (const auto& table : catalog.tables()) {
    IDB_RETURN_NOT_OK(
        WriteSegmentFile(*table, SegmentPath(dir, table->name())));
    tables.Append(table->name());
  }
  manifest.Set("tables", std::move(tables));
  JsonValue fks = JsonValue::Array();
  for (const ForeignKey& fk : catalog.foreign_keys()) {
    JsonValue edge = JsonValue::Object();
    edge.Set("fact_column", fk.fact_column);
    edge.Set("dimension_table", fk.dimension_table);
    edge.Set("dimension_key", fk.dimension_key);
    fks.Append(std::move(edge));
  }
  manifest.Set("foreign_keys", std::move(fks));

  // Temp-then-rename: the manifest is the commit point for the whole
  // directory, so rewriting it in place would let a crash mid-write tear
  // the previous (valid) catalog.  After the rename either the old or the
  // new manifest is durably present, never a mix.
  return WriteFileAtomic(ManifestPath(dir), manifest.DumpPretty() + "\n");
}

Result<Catalog> LoadCatalogSegments(const std::string& dir) {
  std::ifstream in(ManifestPath(dir));
  if (!in) {
    return Status::IOError("cannot open '" + ManifestPath(dir) +
                           "' for reading");
  }
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  IDB_ASSIGN_OR_RETURN(JsonValue manifest, JsonValue::Parse(text));
  const int64_t version = manifest.GetInt("version", -1);
  if (version != kManifestVersion) {
    return Status::Invalid("segment manifest '" + ManifestPath(dir) +
                           "': unsupported version " +
                           std::to_string(version));
  }
  const JsonValue& tables = manifest.Get("tables");
  if (!tables.is_array() || tables.size() == 0) {
    return Status::Invalid("segment manifest '" + ManifestPath(dir) +
                           "': missing tables");
  }
  Catalog catalog;
  for (size_t i = 0; i < tables.size(); ++i) {
    const std::string& name = tables.at(i).AsString();
    IDB_ASSIGN_OR_RETURN(SegmentFile file,
                         SegmentFile::Open(SegmentPath(dir, name)));
    if (file.table_name() != name) {
      return Status::Invalid("segment file '" + SegmentPath(dir, name) +
                             "' holds table '" + file.table_name() + "'");
    }
    IDB_ASSIGN_OR_RETURN(Table table, file.Decode());
    IDB_RETURN_NOT_OK(
        catalog.AddTable(std::make_shared<Table>(std::move(table))));
  }
  const JsonValue& fks = manifest.Get("foreign_keys");
  if (fks.is_array()) {
    for (size_t i = 0; i < fks.size(); ++i) {
      const JsonValue& edge = fks.at(i);
      ForeignKey fk;
      fk.fact_column = edge.GetString("fact_column", "");
      fk.dimension_table = edge.GetString("dimension_table", "");
      fk.dimension_key = edge.GetString("dimension_key", "");
      IDB_RETURN_NOT_OK(catalog.AddForeignKey(std::move(fk)));
    }
  }
  catalog.set_nominal_rows(manifest.GetInt("nominal_rows", -1));
  return catalog;
}

}  // namespace idebench::storage
