#ifndef IDEBENCH_AQP_CONFIDENCE_H_
#define IDEBENCH_AQP_CONFIDENCE_H_

/// \file confidence.h
/// Normal-distribution helpers for confidence-interval computation.
///
/// AQP systems report margins of error at a configured confidence level
/// (IDEBench default: 95 %, paper §4.6).  The margin for a CLT-normal
/// estimator is z * stderr where z is the standard-normal quantile of
/// (1 + level) / 2.

namespace idebench::aqp {

/// Standard normal cumulative distribution function.
double NormalCdf(double x);

/// Inverse standard normal CDF (Acklam's rational approximation; relative
/// error < 1.15e-9 over (0, 1)).
double NormalQuantile(double p);

/// Two-sided z-score for a confidence level in (0, 1); e.g. 0.95 -> 1.96.
double ZScoreForConfidence(double confidence_level);

}  // namespace idebench::aqp

#endif  // IDEBENCH_AQP_CONFIDENCE_H_
