#ifndef IDEBENCH_AQP_SAMPLER_H_
#define IDEBENCH_AQP_SAMPLER_H_

/// \file sampler.h
/// Sampling primitives used by the approximate engines.
///
///  * `ShuffledIndex` — a random permutation of row ids.  A progressive
///    engine that walks the permutation front-to-back sees a uniform
///    sample that grows without replacement (online sampling, IDEA-style).
///  * `ReservoirSampler` — classic Algorithm R, for fixed-size uniform
///    samples of streams.
///  * `BuildStratifiedSample` — offline stratified sample table with
///    per-row Horvitz–Thompson weights (System X-style).

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "storage/table.h"

namespace idebench::aqp {

/// A random permutation of [0, n), optionally extended with further
/// *epoch segments* under streaming ingest.
///
/// The index is a concatenation of independently shuffled segments: the
/// constructor builds one segment over [0, n); each `ExtendTo(m, rng)`
/// appends a shuffled permutation of the new rows [n, m) as its own
/// segment.  Because earlier segments are never reshuffled, the mapping
/// of every position below a watermark W is invariant under later
/// extensions — the *prefix property* that keeps in-flight walks and
/// cached replay positions valid while new epochs arrive.
class ShuffledIndex {
 public:
  /// Builds a permutation of `n` row ids with `rng`.
  ShuffledIndex(int64_t n, Rng* rng);

  /// Row id at permutation position `pos` (positions wrap modulo n).
  int64_t At(int64_t pos) const {
    return permutation_[static_cast<size_t>(pos % size())];
  }

  /// Copies `count` consecutive permutation entries starting at position
  /// `start_pos` (wrapping modulo n) into `out` — the batch gather used
  /// by the vectorized sampling engines instead of per-call `At`.
  /// Ignores segment structure (legacy single-segment walks only).
  void Gather(int64_t start_pos, int64_t count, int64_t* out) const;

  /// Segment-aware keyed walk: position `pos` inside the segment spanning
  /// rows [s0, s1) of length L maps to `permutation[s0 + (key % L +
  /// (pos - s0)) % L]` — each segment is walked as its own ring, rotated
  /// by the per-query `key`.  With a single segment this is bit-identical
  /// to `Gather(key + pos, ...)` for any key in [0, n), since
  /// (key % n + pos) % n == (key + pos) % n.  Positions must stay below
  /// the current total size.
  void GatherWalk(int64_t key, int64_t start_pos, int64_t count,
                  int64_t* out) const;

  /// Appends rows [size(), new_n) as one new shuffled segment.  No-op
  /// when `new_n <= size()`.
  void ExtendTo(int64_t new_n, Rng* rng);

  int64_t size() const { return static_cast<int64_t>(permutation_.size()); }

  const std::vector<int64_t>& permutation() const { return permutation_; }

  /// Cumulative segment end positions: {n} after construction, one more
  /// entry per `ExtendTo`.
  const std::vector<int64_t>& segment_bounds() const { return bounds_; }

 private:
  std::vector<int64_t> permutation_;
  std::vector<int64_t> bounds_;  // cumulative segment ends
};

/// Fixed-capacity uniform sample of a stream (Vitter's Algorithm R).
class ReservoirSampler {
 public:
  /// Creates a reservoir holding at most `capacity` elements.
  ReservoirSampler(int64_t capacity, Rng* rng);

  /// Offers stream element `value` (a row id).
  void Offer(int64_t value);

  /// Elements currently in the reservoir.
  const std::vector<int64_t>& sample() const { return sample_; }

  /// Total elements offered so far.
  int64_t stream_size() const { return seen_; }

 private:
  int64_t capacity_;
  int64_t seen_ = 0;
  Rng* rng_;
  std::vector<int64_t> sample_;
};

/// An offline stratified sample: base-table row ids plus per-row weights
/// (weight = stratum size / stratum sample size).
struct StratifiedSample {
  std::vector<int64_t> rows;
  std::vector<double> weights;
  int64_t base_rows = 0;
  int64_t num_strata = 0;

  int64_t size() const { return static_cast<int64_t>(rows.size()); }
};

/// Builds a stratified sample of rows [row_begin, row_end) of `table`
/// (`row_end < 0` means all rows).
///
/// Strata are the distinct numeric-view values of `strat_column` (pass an
/// empty string for a single stratum, i.e. plain uniform sampling).  Each
/// stratum contributes `max(min_per_stratum, round(rate * stratum_size))`
/// rows, capped at the stratum size, drawn without replacement.  Under
/// streaming ingest the row range restricts the sample to published rows
/// (and lets per-epoch delta samples cover just [W_{e-1}, W_e)); strata
/// sizes and weights are range-local.
Result<StratifiedSample> BuildStratifiedSample(const storage::Table& table,
                                               const std::string& strat_column,
                                               double rate,
                                               int64_t min_per_stratum,
                                               Rng* rng,
                                               int64_t row_begin = 0,
                                               int64_t row_end = -1);

}  // namespace idebench::aqp

#endif  // IDEBENCH_AQP_SAMPLER_H_
