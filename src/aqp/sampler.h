#ifndef IDEBENCH_AQP_SAMPLER_H_
#define IDEBENCH_AQP_SAMPLER_H_

/// \file sampler.h
/// Sampling primitives used by the approximate engines.
///
///  * `ShuffledIndex` — a random permutation of row ids.  A progressive
///    engine that walks the permutation front-to-back sees a uniform
///    sample that grows without replacement (online sampling, IDEA-style).
///  * `ReservoirSampler` — classic Algorithm R, for fixed-size uniform
///    samples of streams.
///  * `BuildStratifiedSample` — offline stratified sample table with
///    per-row Horvitz–Thompson weights (System X-style).

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "storage/table.h"

namespace idebench::aqp {

/// A random permutation of [0, n).
class ShuffledIndex {
 public:
  /// Builds a permutation of `n` row ids with `rng`.
  ShuffledIndex(int64_t n, Rng* rng);

  /// Row id at permutation position `pos` (positions wrap modulo n).
  int64_t At(int64_t pos) const {
    return permutation_[static_cast<size_t>(pos % size())];
  }

  /// Copies `count` consecutive permutation entries starting at position
  /// `start_pos` (wrapping modulo n) into `out` — the batch gather used
  /// by the vectorized sampling engines instead of per-call `At`.
  void Gather(int64_t start_pos, int64_t count, int64_t* out) const;

  int64_t size() const { return static_cast<int64_t>(permutation_.size()); }

  const std::vector<int64_t>& permutation() const { return permutation_; }

 private:
  std::vector<int64_t> permutation_;
};

/// Fixed-capacity uniform sample of a stream (Vitter's Algorithm R).
class ReservoirSampler {
 public:
  /// Creates a reservoir holding at most `capacity` elements.
  ReservoirSampler(int64_t capacity, Rng* rng);

  /// Offers stream element `value` (a row id).
  void Offer(int64_t value);

  /// Elements currently in the reservoir.
  const std::vector<int64_t>& sample() const { return sample_; }

  /// Total elements offered so far.
  int64_t stream_size() const { return seen_; }

 private:
  int64_t capacity_;
  int64_t seen_ = 0;
  Rng* rng_;
  std::vector<int64_t> sample_;
};

/// An offline stratified sample: base-table row ids plus per-row weights
/// (weight = stratum size / stratum sample size).
struct StratifiedSample {
  std::vector<int64_t> rows;
  std::vector<double> weights;
  int64_t base_rows = 0;
  int64_t num_strata = 0;

  int64_t size() const { return static_cast<int64_t>(rows.size()); }
};

/// Builds a stratified sample of `table`.
///
/// Strata are the distinct numeric-view values of `strat_column` (pass an
/// empty string for a single stratum, i.e. plain uniform sampling).  Each
/// stratum contributes `max(min_per_stratum, round(rate * stratum_size))`
/// rows, capped at the stratum size, drawn without replacement.
Result<StratifiedSample> BuildStratifiedSample(const storage::Table& table,
                                               const std::string& strat_column,
                                               double rate,
                                               int64_t min_per_stratum,
                                               Rng* rng);

}  // namespace idebench::aqp

#endif  // IDEBENCH_AQP_SAMPLER_H_
