#include "aqp/sampler.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/logging.h"

namespace idebench::aqp {

ShuffledIndex::ShuffledIndex(int64_t n, Rng* rng) {
  permutation_.resize(static_cast<size_t>(std::max<int64_t>(n, 0)));
  for (int64_t i = 0; i < n; ++i) permutation_[static_cast<size_t>(i)] = i;
  rng->Shuffle(&permutation_);
  bounds_ = {size()};
}

void ShuffledIndex::Gather(int64_t start_pos, int64_t count,
                           int64_t* out) const {
  const int64_t n = size();
  if (n <= 0 || count <= 0) return;
  int64_t pos = start_pos % n;
  int64_t remaining = count;
  while (remaining > 0) {
    const int64_t run = std::min(remaining, n - pos);
    std::copy_n(permutation_.begin() + static_cast<ptrdiff_t>(pos),
                static_cast<size_t>(run), out);
    out += run;
    remaining -= run;
    pos = 0;
  }
}

void ShuffledIndex::GatherWalk(int64_t key, int64_t start_pos, int64_t count,
                               int64_t* out) const {
  if (size() <= 0 || count <= 0) return;
  IDB_CHECK(key >= 0 && start_pos >= 0);
  // Locate the segment containing start_pos, then stream runs segment by
  // segment; within a segment the walk is a ring rotated by key % len.
  size_t seg = static_cast<size_t>(
      std::upper_bound(bounds_.begin(), bounds_.end(), start_pos) -
      bounds_.begin());
  int64_t pos = start_pos;
  int64_t remaining = count;
  while (remaining > 0) {
    IDB_CHECK(seg < bounds_.size());  // positions must stay below size()
    const int64_t s0 = seg == 0 ? 0 : bounds_[seg - 1];
    const int64_t s1 = bounds_[seg];
    const int64_t len = s1 - s0;
    const int64_t take = std::min(remaining, s1 - pos);
    int64_t local = (key % len + (pos - s0)) % len;
    int64_t left = take;
    while (left > 0) {
      const int64_t run = std::min(left, len - local);
      std::copy_n(permutation_.begin() + static_cast<ptrdiff_t>(s0 + local),
                  static_cast<size_t>(run), out);
      out += run;
      left -= run;
      local = 0;
    }
    remaining -= take;
    pos += take;
    ++seg;
  }
}

void ShuffledIndex::ExtendTo(int64_t new_n, Rng* rng) {
  const int64_t old_n = size();
  if (new_n <= old_n) return;
  std::vector<int64_t> tail(static_cast<size_t>(new_n - old_n));
  for (int64_t i = old_n; i < new_n; ++i) {
    tail[static_cast<size_t>(i - old_n)] = i;
  }
  rng->Shuffle(&tail);
  permutation_.insert(permutation_.end(), tail.begin(), tail.end());
  bounds_.push_back(new_n);
}

ReservoirSampler::ReservoirSampler(int64_t capacity, Rng* rng)
    : capacity_(std::max<int64_t>(capacity, 0)), rng_(rng) {
  sample_.reserve(static_cast<size_t>(capacity_));
}

void ReservoirSampler::Offer(int64_t value) {
  ++seen_;
  if (static_cast<int64_t>(sample_.size()) < capacity_) {
    sample_.push_back(value);
    return;
  }
  const int64_t j = rng_->UniformInt(0, seen_ - 1);
  if (j < capacity_) sample_[static_cast<size_t>(j)] = value;
}

Result<StratifiedSample> BuildStratifiedSample(const storage::Table& table,
                                               const std::string& strat_column,
                                               double rate,
                                               int64_t min_per_stratum,
                                               Rng* rng,
                                               int64_t row_begin,
                                               int64_t row_end) {
  if (rate <= 0.0 || rate > 1.0) {
    return Status::Invalid("sampling rate must be in (0, 1]");
  }
  if (row_end < 0) row_end = table.num_rows();
  if (row_begin < 0 || row_end > table.num_rows() || row_begin > row_end) {
    return Status::OutOfBounds("stratified sample row range out of bounds");
  }
  const int64_t n = row_end - row_begin;

  // Partition row ids into strata.
  std::unordered_map<double, std::vector<int64_t>> strata;
  if (strat_column.empty()) {
    strata[0.0].reserve(static_cast<size_t>(n));
    for (int64_t r = row_begin; r < row_end; ++r) strata[0.0].push_back(r);
  } else {
    const storage::Column* col = table.ColumnByName(strat_column);
    if (col == nullptr) {
      return Status::KeyError("stratification column '" + strat_column +
                              "' not found");
    }
    for (int64_t r = row_begin; r < row_end; ++r) {
      strata[col->ValueAsDouble(r)].push_back(r);
    }
  }

  StratifiedSample out;
  out.base_rows = n;
  out.num_strata = static_cast<int64_t>(strata.size());

  // Deterministic iteration order: sort strata by key.
  std::vector<double> keys;
  keys.reserve(strata.size());
  for (const auto& [key, rows] : strata) keys.push_back(key);
  std::sort(keys.begin(), keys.end());

  for (double key : keys) {
    std::vector<int64_t>& rows = strata[key];
    const int64_t stratum_size = static_cast<int64_t>(rows.size());
    int64_t take = static_cast<int64_t>(
        std::llround(rate * static_cast<double>(stratum_size)));
    take = std::max(take, min_per_stratum);
    take = std::min(take, stratum_size);
    if (take <= 0) continue;
    rng->Shuffle(&rows);
    const double weight =
        static_cast<double>(stratum_size) / static_cast<double>(take);
    for (int64_t i = 0; i < take; ++i) {
      out.rows.push_back(rows[static_cast<size_t>(i)]);
      out.weights.push_back(weight);
    }
  }
  return out;
}

}  // namespace idebench::aqp
