#ifndef IDEBENCH_QUERY_SQL_H_
#define IDEBENCH_QUERY_SQL_H_

/// \file sql.h
/// SQL rendering of executable queries.
///
/// The benchmark driver "automatically translates queries to SQL"
/// (paper §4.4, Figure 4).  Our in-process engines consume `QuerySpec`
/// directly, but the SQL text is part of the benchmark's public surface:
/// it is what an adapter for an external DBMS would submit, and it appears
/// in the detailed report for auditability.

#include <string>

#include "query/spec.h"
#include "storage/catalog.h"

namespace idebench::query {

/// Renders `spec` as a SQL SELECT against `catalog`.
///
/// For a de-normalized catalog this is a single-table GROUP BY.  For a
/// star schema, any filter/binning column owned by a dimension table adds
/// the corresponding `JOIN dim ON fact.fk = dim.pk` clause.
std::string GenerateSql(const QuerySpec& spec, const storage::Catalog& catalog);

}  // namespace idebench::query

#endif  // IDEBENCH_QUERY_SQL_H_
