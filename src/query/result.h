#ifndef IDEBENCH_QUERY_RESULT_H_
#define IDEBENCH_QUERY_RESULT_H_

/// \file result.h
/// The result format every engine returns to the benchmark driver: one
/// entry per delivered bin, each with an estimate and a margin of error
/// per aggregate, plus execution progress metadata.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "query/binning.h"

namespace idebench::query {

/// One aggregate value in one bin.
struct AggValue {
  double estimate = 0.0;
  /// Absolute half-width of the confidence interval at the configured
  /// confidence level; 0 for exact results.
  double margin = 0.0;
};

/// All aggregates for one bin (parallel to the query's aggregate list).
struct BinResult {
  std::vector<AggValue> values;
};

/// A (possibly partial, possibly approximate) query answer.
struct QueryResult {
  /// True when this answer is fetchable by a frontend.  A blocking engine
  /// only has an available result once the query completes; progressive
  /// engines have one as soon as any rows were processed.  Note that an
  /// *available* result may legitimately contain zero bins (a filter that
  /// matches nothing).
  bool available = false;

  /// Delivered bins keyed by packed bin key (see binning.h).
  std::unordered_map<int64_t, BinResult> bins;

  /// Fraction of the (nominal) data incorporated so far, in [0, 1].
  double progress = 0.0;

  /// True when the answer is exact (complete scan, no sampling).
  bool exact = false;

  /// Number of base-table rows actually aggregated (diagnostics).
  int64_t rows_processed = 0;

  /// True when at least one bin has been delivered.
  bool has_result() const { return !bins.empty(); }

  /// Sum of the first aggregate's estimates over all bins (diagnostics).
  double TotalEstimate(size_t agg_index = 0) const {
    double total = 0.0;
    for (const auto& [key, bin] : bins) {
      if (agg_index < bin.values.size()) total += bin.values[agg_index].estimate;
    }
    return total;
  }
};

}  // namespace idebench::query

#endif  // IDEBENCH_QUERY_RESULT_H_
