#ifndef IDEBENCH_QUERY_BINNING_H_
#define IDEBENCH_QUERY_BINNING_H_

/// \file binning.h
/// Bin definitions for visualization queries.
///
/// The paper (§2.2) distinguishes two ways to define quantitative bin
/// boundaries: (1) a fixed *number* of bins, which requires the current
/// min/max of the attribute, and (2) a fixed bin *width* anchored at a
/// reference value.  Nominal attributes get one bin per distinct value.
/// A `BinDimension` starts as a declarative spec and is *resolved* against
/// a dataset (filling lo/width/bin count) before execution, so that every
/// engine and the ground-truth oracle bin identically.

#include <cstdint>
#include <string>

#include "common/json.h"
#include "common/result.h"
#include "storage/table.h"

namespace idebench::query {

/// How bin boundaries are derived.
enum class BinningMode : uint8_t {
  kNominal = 0,     // one bin per dictionary code
  kFixedCount = 1,  // N equi-width bins over [min, max]
  kFixedWidth = 2,  // bins of a given width anchored at `origin`
};

/// Stable name ("nominal", "fixed_count", "fixed_width").
const char* BinningModeName(BinningMode mode);

/// Parses a stable name back to the enum.
Result<BinningMode> BinningModeFromName(const std::string& name);

/// One binning dimension of a visualization (1-D histograms have one,
/// binned scatter plots / heat maps have two — paper Figure 1).
struct BinDimension {
  std::string column;
  BinningMode mode = BinningMode::kFixedCount;
  int64_t requested_bins = 10;  // kFixedCount
  double width = 0.0;           // kFixedWidth; filled on resolve otherwise
  double origin = 0.0;          // kFixedWidth anchor; resolved lo otherwise

  // --- Filled by Resolve() -------------------------------------------
  bool resolved = false;
  double lo = 0.0;          // inclusive lower bound of bin 0
  int64_t bin_count = 0;    // total number of bins

  /// Resolves boundaries against the data in `table` (uses column min/max
  /// for kFixedCount / kFixedWidth, dictionary size for kNominal).
  Status Resolve(const storage::Table& table);

  /// Maps a numeric-view value to its bin index, or -1 when out of range.
  /// Requires `resolved`.
  int64_t BinIndex(double v) const;

  /// Lower edge of bin `index` (quantitative modes).
  double BinLowerEdge(int64_t index) const { return lo + width * static_cast<double>(index); }

  /// Human-readable label of bin `index` ("[10, 20)" or the nominal value;
  /// `table` decodes dictionary codes).
  std::string BinLabel(int64_t index, const storage::Table* table) const;

  /// Renders the SQL grouping expression, e.g.
  /// "FLOOR((dep_delay - 0) / 10)" or just the column for nominal bins.
  std::string ToSqlExpr() const;

  /// JSON round-trip.
  JsonValue ToJson() const;
  static Result<BinDimension> FromJson(const JsonValue& j);

  bool operator==(const BinDimension& other) const;
};

/// Packs up to two bin indices into one map key.  Index values must be in
/// [0, kBinKeyStride).
constexpr int64_t kBinKeyStride = 1 << 21;

/// Encodes a 1-D key.
constexpr int64_t EncodeBinKey(int64_t i0) { return i0; }

/// Encodes a 2-D key (row-major).
constexpr int64_t EncodeBinKey(int64_t i0, int64_t i1) {
  return i0 * kBinKeyStride + i1;
}

/// Splits a key back into (i0, i1); i1 is 0 for 1-D keys.
constexpr int64_t BinKeyDim0(int64_t key) { return key / kBinKeyStride; }
constexpr int64_t BinKeyDim1(int64_t key) { return key % kBinKeyStride; }

/// Encodes a key for a 1-D or 2-D query given per-row indices; returns -1
/// when any index is -1 (value out of binning range).
inline int64_t EncodeBinKeyChecked(int64_t i0, int64_t i1, bool two_d) {
  if (i0 < 0) return -1;
  if (!two_d) return EncodeBinKey(0, i0);
  if (i1 < 0) return -1;
  return EncodeBinKey(i0, i1);
}

}  // namespace idebench::query

#endif  // IDEBENCH_QUERY_BINNING_H_
