#include "query/spec.h"

#include <algorithm>

namespace idebench::query {

Status VizSpec::Validate() const {
  if (name.empty()) return Status::Invalid("viz has no name");
  if (source.empty()) return Status::Invalid("viz '" + name + "' has no source");
  if (bins.empty() || bins.size() > 2) {
    return Status::Invalid("viz '" + name + "' must have 1 or 2 bin dimensions");
  }
  if (aggregates.empty()) {
    return Status::Invalid("viz '" + name + "' must have >= 1 aggregate");
  }
  for (const AggregateSpec& agg : aggregates) {
    if (agg.type != AggregateType::kCount && agg.column.empty()) {
      return Status::Invalid("viz '" + name + "': aggregate needs a column");
    }
  }
  return Status::OK();
}

JsonValue VizSpec::ToJson() const {
  JsonValue j = JsonValue::Object();
  j.Set("name", name);
  j.Set("source", source);
  JsonValue bin_arr = JsonValue::Array();
  for (const BinDimension& d : bins) bin_arr.Append(d.ToJson());
  j.Set("binning", std::move(bin_arr));
  JsonValue agg_arr = JsonValue::Array();
  for (const AggregateSpec& a : aggregates) agg_arr.Append(a.ToJson());
  j.Set("aggregates", std::move(agg_arr));
  if (!filter.empty()) j.Set("filter", filter.ToJson());
  if (!selection.empty()) j.Set("selection", selection.ToJson());
  return j;
}

Result<VizSpec> VizSpec::FromJson(const JsonValue& j) {
  if (!j.is_object()) return Status::Invalid("viz spec must be an object");
  VizSpec v;
  v.name = j.GetString("name", "");
  v.source = j.GetString("source", "");
  const JsonValue& bin_arr = j.Get("binning");
  for (size_t i = 0; i < bin_arr.size(); ++i) {
    IDB_ASSIGN_OR_RETURN(BinDimension d, BinDimension::FromJson(bin_arr.at(i)));
    v.bins.push_back(std::move(d));
  }
  const JsonValue& agg_arr = j.Get("aggregates");
  for (size_t i = 0; i < agg_arr.size(); ++i) {
    IDB_ASSIGN_OR_RETURN(AggregateSpec a, AggregateSpec::FromJson(agg_arr.at(i)));
    v.aggregates.push_back(std::move(a));
  }
  if (j.Has("filter")) {
    IDB_ASSIGN_OR_RETURN(v.filter, expr::FilterExpr::FromJson(j.Get("filter")));
  }
  if (j.Has("selection")) {
    IDB_ASSIGN_OR_RETURN(v.selection,
                         expr::FilterExpr::FromJson(j.Get("selection")));
  }
  IDB_RETURN_NOT_OK(v.Validate());
  return v;
}

Status QuerySpec::ResolveBins(const storage::Catalog& catalog) {
  for (BinDimension& d : bins) {
    IDB_ASSIGN_OR_RETURN(const storage::Table* table,
                         catalog.TableForColumn(d.column));
    IDB_RETURN_NOT_OK(d.Resolve(*table));
  }
  return Status::OK();
}

std::vector<std::string> CanonicalPredicates(const expr::FilterExpr& filter) {
  std::vector<std::string> preds;
  preds.reserve(filter.size());
  for (const expr::Predicate& p : filter.predicates()) {
    preds.push_back(p.ToJson().Dump());
  }
  std::sort(preds.begin(), preds.end());
  preds.erase(std::unique(preds.begin(), preds.end()), preds.end());
  return preds;
}

std::string QuerySpec::CoreSignature() const {
  JsonValue j = JsonValue::Object();
  JsonValue bin_arr = JsonValue::Array();
  for (const BinDimension& d : bins) bin_arr.Append(d.ToJson());
  j.Set("bins", std::move(bin_arr));
  JsonValue agg_arr = JsonValue::Array();
  for (const AggregateSpec& a : aggregates) agg_arr.Append(a.ToJson());
  j.Set("aggs", std::move(agg_arr));
  return j.Dump();
}

std::string QuerySpec::Signature() const {
  JsonValue j = JsonValue::Object();
  j.Set("core", CoreSignature());
  JsonValue parr = JsonValue::Array();
  for (const std::string& p : CanonicalPredicates(filter)) parr.Append(p);
  j.Set("filter", std::move(parr));
  return j.Dump();
}

int64_t QuerySpec::MaxBinCount() const {
  int64_t total = 1;
  for (const BinDimension& d : bins) {
    total *= d.bin_count > 0 ? d.bin_count : 1;
  }
  return total;
}

}  // namespace idebench::query
