#include "query/aggregate.h"

#include "common/string_util.h"

namespace idebench::query {

const char* AggregateTypeName(AggregateType type) {
  switch (type) {
    case AggregateType::kCount:
      return "count";
    case AggregateType::kSum:
      return "sum";
    case AggregateType::kAvg:
      return "avg";
    case AggregateType::kMin:
      return "min";
    case AggregateType::kMax:
      return "max";
  }
  return "unknown";
}

Result<AggregateType> AggregateTypeFromName(const std::string& name) {
  const std::string lower = ToLower(name);
  if (lower == "count") return AggregateType::kCount;
  if (lower == "sum") return AggregateType::kSum;
  if (lower == "avg") return AggregateType::kAvg;
  if (lower == "min") return AggregateType::kMin;
  if (lower == "max") return AggregateType::kMax;
  return Status::Invalid("unknown aggregate '" + name + "'");
}

std::string AggregateSpec::ToSql() const {
  std::string fn = AggregateTypeName(type);
  for (char& c : fn) c = static_cast<char>(std::toupper(c));
  if (type == AggregateType::kCount) return fn + "(*)";
  return fn + "(" + column + ")";
}

JsonValue AggregateSpec::ToJson() const {
  JsonValue j = JsonValue::Object();
  j.Set("type", AggregateTypeName(type));
  if (!column.empty()) j.Set("column", column);
  return j;
}

Result<AggregateSpec> AggregateSpec::FromJson(const JsonValue& j) {
  if (!j.is_object()) return Status::Invalid("aggregate must be an object");
  AggregateSpec spec;
  IDB_ASSIGN_OR_RETURN(spec.type,
                       AggregateTypeFromName(j.GetString("type", "count")));
  spec.column = j.GetString("column", "");
  if (spec.type != AggregateType::kCount && spec.column.empty()) {
    return Status::Invalid("aggregate '" +
                           std::string(AggregateTypeName(spec.type)) +
                           "' requires a column");
  }
  return spec;
}

}  // namespace idebench::query
