#ifndef IDEBENCH_QUERY_AGGREGATE_H_
#define IDEBENCH_QUERY_AGGREGATE_H_

/// \file aggregate.h
/// Aggregate function specifications for visualization queries.

#include <string>

#include "common/json.h"
#include "common/result.h"

namespace idebench::query {

/// Aggregate function applied per bin (paper §2.2: COUNT/SUM/AVG dominate
/// IDE workloads; MIN/MAX appear in axis computation).
enum class AggregateType : uint8_t {
  kCount = 0,
  kSum = 1,
  kAvg = 2,
  kMin = 3,
  kMax = 4,
};

/// Stable lower-case name ("count", "sum", "avg", "min", "max").
const char* AggregateTypeName(AggregateType type);

/// Parses a stable name back to the enum.
Result<AggregateType> AggregateTypeFromName(const std::string& name);

/// One aggregate in a query: a function and (except COUNT) a column.
struct AggregateSpec {
  AggregateType type = AggregateType::kCount;
  std::string column;  // empty for COUNT

  /// Renders "COUNT(*)" / "AVG(dep_delay)".
  std::string ToSql() const;

  /// JSON round-trip.
  JsonValue ToJson() const;
  static Result<AggregateSpec> FromJson(const JsonValue& j);

  bool operator==(const AggregateSpec& other) const {
    return type == other.type && column == other.column;
  }
};

}  // namespace idebench::query

#endif  // IDEBENCH_QUERY_AGGREGATE_H_
