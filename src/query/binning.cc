#include "query/binning.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace idebench::query {

const char* BinningModeName(BinningMode mode) {
  switch (mode) {
    case BinningMode::kNominal:
      return "nominal";
    case BinningMode::kFixedCount:
      return "fixed_count";
    case BinningMode::kFixedWidth:
      return "fixed_width";
  }
  return "unknown";
}

Result<BinningMode> BinningModeFromName(const std::string& name) {
  if (name == "nominal") return BinningMode::kNominal;
  if (name == "fixed_count") return BinningMode::kFixedCount;
  if (name == "fixed_width") return BinningMode::kFixedWidth;
  return Status::Invalid("unknown binning mode '" + name + "'");
}

Status BinDimension::Resolve(const storage::Table& table) {
  const storage::Column* col = table.ColumnByName(column);
  if (col == nullptr) {
    return Status::KeyError("binning column '" + column + "' not found in '" +
                            table.name() + "'");
  }
  switch (mode) {
    // All bounds below come from the epoch-visible stats (VisibleMin/
    // VisibleMax/VisibleDictSize == live stats on non-ingest tables):
    // rows staged but unpublished must not widen a query's bin layout,
    // or results would diverge from a run against the table frozen at
    // the query's watermark.
    case BinningMode::kNominal: {
      if (col->type() != storage::DataType::kString) {
        // Integer-coded nominal attribute (e.g. day_of_week): bins span
        // [min, max] with width 1.
        lo = col->VisibleMin();
        width = 1.0;
        bin_count =
            static_cast<int64_t>(col->VisibleMax() - col->VisibleMin()) + 1;
      } else {
        lo = 0.0;
        width = 1.0;
        bin_count = col->VisibleDictSize();
      }
      break;
    }
    case BinningMode::kFixedCount: {
      if (requested_bins <= 0) {
        return Status::Invalid("requested_bins must be positive");
      }
      const double min = col->VisibleMin();
      const double max = col->VisibleMax();
      lo = min;
      bin_count = requested_bins;
      const double span = max - min;
      // Widen slightly so the max value falls in the last bin instead of
      // creating an extra boundary bin.
      width = span > 0 ? span / static_cast<double>(requested_bins) * (1.0 + 1e-9)
                       : 1.0;
      break;
    }
    case BinningMode::kFixedWidth: {
      if (width <= 0) return Status::Invalid("width must be positive");
      const double min = col->VisibleMin();
      const double max = col->VisibleMax();
      lo = origin + std::floor((min - origin) / width) * width;
      bin_count =
          static_cast<int64_t>(std::floor((max - lo) / width)) + 1;
      break;
    }
  }
  if (bin_count <= 0) bin_count = 1;
  if (bin_count >= kBinKeyStride) {
    return Status::Invalid("bin count " + std::to_string(bin_count) +
                           " exceeds limit");
  }
  resolved = true;
  return Status::OK();
}

int64_t BinDimension::BinIndex(double v) const {
  if (!resolved) return -1;
  if (mode == BinningMode::kNominal) {
    const int64_t idx = static_cast<int64_t>(v - lo);
    return (idx >= 0 && idx < bin_count) ? idx : -1;
  }
  const int64_t idx =
      static_cast<int64_t>(std::floor((v - lo) / width));
  return (idx >= 0 && idx < bin_count) ? idx : -1;
}

std::string BinDimension::BinLabel(int64_t index,
                                   const storage::Table* table) const {
  if (mode == BinningMode::kNominal) {
    if (table != nullptr) {
      const storage::Column* col = table->ColumnByName(column);
      if (col != nullptr && col->type() == storage::DataType::kString) {
        const int64_t code = index + static_cast<int64_t>(lo);
        if (code >= 0 && code < col->dictionary().size()) {
          return col->dictionary().At(code);
        }
      }
    }
    return std::to_string(index + static_cast<int64_t>(lo));
  }
  const double edge = BinLowerEdge(index);
  return "[" + FormatDouble(edge, 2) + ", " + FormatDouble(edge + width, 2) +
         ")";
}

std::string BinDimension::ToSqlExpr() const {
  if (mode == BinningMode::kNominal) return column;
  return StringPrintf("FLOOR((%s - %g) / %g)", column.c_str(), lo, width);
}

JsonValue BinDimension::ToJson() const {
  JsonValue j = JsonValue::Object();
  j.Set("column", column);
  j.Set("mode", BinningModeName(mode));
  switch (mode) {
    case BinningMode::kFixedCount:
      j.Set("bins", requested_bins);
      break;
    case BinningMode::kFixedWidth:
      j.Set("width", width);
      j.Set("origin", origin);
      break;
    case BinningMode::kNominal:
      break;
  }
  return j;
}

Result<BinDimension> BinDimension::FromJson(const JsonValue& j) {
  if (!j.is_object()) return Status::Invalid("bin dimension must be object");
  BinDimension d;
  d.column = j.GetString("column", "");
  if (d.column.empty()) return Status::Invalid("bin dimension needs 'column'");
  IDB_ASSIGN_OR_RETURN(d.mode,
                       BinningModeFromName(j.GetString("mode", "fixed_count")));
  d.requested_bins = j.GetInt("bins", 10);
  d.width = j.GetDouble("width", 0.0);
  d.origin = j.GetDouble("origin", 0.0);
  return d;
}

bool BinDimension::operator==(const BinDimension& other) const {
  return column == other.column && mode == other.mode &&
         requested_bins == other.requested_bins && width == other.width &&
         origin == other.origin;
}

}  // namespace idebench::query
