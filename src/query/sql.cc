#include "query/sql.h"

#include <algorithm>

#include "common/string_util.h"

namespace idebench::query {
namespace {

/// Collects the dimension tables referenced by the query's binning,
/// filter or aggregate columns.
std::vector<std::string> ReferencedDimensions(
    const QuerySpec& spec, const storage::Catalog& catalog) {
  std::vector<std::string> dims;
  auto consider = [&](const std::string& column) {
    const storage::Table* fact = catalog.fact_table();
    if (fact != nullptr && fact->ColumnByName(column) != nullptr) return;
    for (const auto& table : catalog.tables()) {
      if (table.get() == fact) continue;
      if (table->ColumnByName(column) != nullptr) {
        if (std::find(dims.begin(), dims.end(), table->name()) == dims.end()) {
          dims.push_back(table->name());
        }
        return;
      }
    }
  };
  for (const BinDimension& d : spec.bins) consider(d.column);
  for (const expr::Predicate& p : spec.filter.predicates()) consider(p.column);
  for (const AggregateSpec& a : spec.aggregates) {
    if (!a.column.empty()) consider(a.column);
  }
  return dims;
}

}  // namespace

std::string GenerateSql(const QuerySpec& spec,
                        const storage::Catalog& catalog) {
  const storage::Table* fact = catalog.fact_table();
  const std::string fact_name = fact != nullptr ? fact->name() : "fact";

  std::vector<std::string> select_exprs;
  std::vector<std::string> group_exprs;
  for (size_t i = 0; i < spec.bins.size(); ++i) {
    const BinDimension& d = spec.bins[i];
    const std::string alias = "bin_" + d.column;
    select_exprs.push_back(d.ToSqlExpr() + " AS " + alias);
    group_exprs.push_back(alias);
  }
  for (const AggregateSpec& a : spec.aggregates) {
    select_exprs.push_back(a.ToSql());
  }

  std::string sql = "SELECT " + Join(select_exprs, ", ") + " FROM " + fact_name;

  for (const std::string& dim_name : ReferencedDimensions(spec, catalog)) {
    const storage::ForeignKey* fk = catalog.FindForeignKey(dim_name);
    if (fk == nullptr) continue;
    sql += " JOIN " + dim_name + " ON " + fact_name + "." + fk->fact_column +
           " = " + dim_name + "." + fk->dimension_key;
  }

  if (!spec.filter.empty()) {
    // Decode dictionary literals against whichever table owns each column.
    std::vector<std::string> parts;
    for (const expr::Predicate& p : spec.filter.predicates()) {
      const storage::Table* owner = nullptr;
      auto owner_result = catalog.TableForColumn(p.column);
      if (owner_result.ok()) owner = owner_result.ValueOrDie();
      parts.push_back(p.ToSql(owner));
    }
    sql += " WHERE " + Join(parts, " AND ");
  }

  sql += " GROUP BY " + Join(group_exprs, ", ");
  return sql;
}

}  // namespace idebench::query
