#ifndef IDEBENCH_QUERY_SPEC_H_
#define IDEBENCH_QUERY_SPEC_H_

/// \file spec.h
/// Visualization and query specifications.
///
/// A `VizSpec` is the declarative description of one visualization as an
/// IDE frontend would create it (paper Figure 4): a data source, one or
/// two binning dimensions, one or more aggregates, and the viz's own
/// filter.  The driver combines a VizSpec with the filters/selections
/// propagated along visualization links into an executable `QuerySpec`.

#include <string>
#include <vector>

#include "common/json.h"
#include "common/result.h"
#include "expr/predicate.h"
#include "query/aggregate.h"
#include "query/binning.h"
#include "storage/catalog.h"

namespace idebench::query {

/// Declarative specification of a visualization.
struct VizSpec {
  std::string name;                     // e.g. "viz_0"
  std::string source;                   // fact table name
  std::vector<BinDimension> bins;       // 1 or 2 dimensions
  std::vector<AggregateSpec> aggregates;  // >= 1
  expr::FilterExpr filter;              // the viz's own filter
  expr::FilterExpr selection;           // brushed selection, exposed to links

  /// Validates structural constraints (1-2 dims, >=1 aggregate, ...).
  Status Validate() const;

  /// JSON round-trip (workflow specification format, Figure 4).
  JsonValue ToJson() const;
  static Result<VizSpec> FromJson(const JsonValue& j);
};

/// An executable query: a VizSpec flattened with all filters that apply
/// after link propagation, with binning resolved against the dataset.
struct QuerySpec {
  std::string viz_name;
  std::vector<BinDimension> bins;        // resolved before execution
  std::vector<AggregateSpec> aggregates;
  expr::FilterExpr filter;               // full effective conjunction

  /// True when the query groups on two dimensions.
  bool two_dimensional() const { return bins.size() == 2; }

  /// Resolves all bin dimensions against the catalog (each binning column
  /// is looked up in the table that owns it).
  Status ResolveBins(const storage::Catalog& catalog);

  /// Total number of ground-truth bins (product of dimension bin counts);
  /// requires resolved bins.
  int64_t MaxBinCount() const;

  /// Packs per-dimension indices into a key; -1 when out of range.
  int64_t EncodeKey(int64_t i0, int64_t i1) const {
    return EncodeBinKeyChecked(i0, i1, two_dimensional());
  }

  /// Canonical signature of the query *shape*: bin spec + aggregate list
  /// (and, implicitly, the table/join chain — every column name resolves
  /// through the catalog's fixed fact table and foreign keys).  The viz
  /// name and the filter are excluded: queries sharing a core signature
  /// read the same columns through the same joins and bin identically, so
  /// their sampled walks are interchangeable — the basis of result reuse
  /// across filter refinements.
  std::string CoreSignature() const;

  /// Full canonical signature: `CoreSignature()` plus the canonicalized
  /// predicate set (see `CanonicalPredicates`).  Two specs with equal
  /// signatures answer identically.
  std::string Signature() const;
};

/// Canonical form of a conjunctive predicate set: per-predicate JSON,
/// sorted and deduplicated (conjunction is order-insensitive, and the same
/// predicate can arrive via several link paths).
std::vector<std::string> CanonicalPredicates(const expr::FilterExpr& filter);

}  // namespace idebench::query

#endif  // IDEBENCH_QUERY_SPEC_H_
