#ifndef IDEBENCH_CHAOS_INVARIANTS_H_
#define IDEBENCH_CHAOS_INVARIANTS_H_

/// \file invariants.h
/// Invariant checking over the virtual-clock scheduler under chaos.
///
/// An `InvariantChecker` is a `session::ResultSink` that watches every
/// pushed update of a scenario run and accumulates violations of the
/// scheduler's contract instead of asserting, so a sweep can report every
/// broken seed at once.  The invariants:
///
///  1. *No starvation*: every terminal update lands at or before the
///     query's deadline (`submit_time + time_requirement`), and the
///     manager's `max_deadline_overshoot` stays exactly 0.
///  2. *Exactly one terminal update* per submitted query, carrying
///     exactly one of {completed, cancelled, unsupported, failed}; no
///     update of any kind after the terminal one.
///  3. *Fairness bounds*: no query consumes more than its admission-time
///     compute entitlement, and — when no compute-stealing fault sites
///     are armed — a deadline-cancelled query consumed *exactly* its
///     entitlement (the round-robin neither starves nor over-serves).
///  4. *No leaked or stuck queries*: after a drain, nothing is live and
///     the terminal-outcome counters add up to the submission count.
///  5. *Result integrity* (cross-run): queries that completed despite
///     injected faults must match an uninjected reference run — bit-
///     identical for result-transparent fault sites, within a relative
///     epsilon when morsel-slowdown faults legitimately regroup
///     floating-point merges (see exec/parallel.cc).

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/clock.h"
#include "query/result.h"
#include "session/session.h"

namespace idebench::chaos {

/// One broken invariant: which one, and a human-readable detail line.
struct InvariantViolation {
  std::string invariant;
  std::string detail;
};

/// Compares two query results bit-for-bit (`rel_eps == 0`) or within a
/// relative epsilon on estimates/margins.  On mismatch returns false and
/// fills `why` (if non-null) with the first difference found.
bool ResultsMatch(const query::QueryResult& a, const query::QueryResult& b,
                  double rel_eps, std::string* why);

/// Scenario-run watcher; install as the sink of every session in the run.
class InvariantChecker : public session::ResultSink {
 public:
  struct Options {
    /// The manager's time requirement (per-query deadline span).
    Micros time_requirement = 0;
    /// Assert the fairness lower bound (deadline-cancelled queries
    /// consumed their full entitlement).  Disable when engine-fault
    /// sites are armed: a query wedged by an injected fault legitimately
    /// consumes less than it was offered.
    bool expect_full_entitlement = true;
  };

  explicit InvariantChecker(Options options) : options_(options) {}

  /// Registers a submitted batch (call right after SubmitInteraction with
  /// the manager's current virtual time).  Unsupported queries have
  /// already pushed their terminal update by the time this runs; the
  /// checker reconciles either order.
  void NoteSubmitted(const std::vector<session::SubmittedQuery>& batch,
                     Micros now);

  /// ResultSink: runs the per-event invariants.
  void OnUpdate(const session::ProgressiveUpdate& u) override;

  /// Post-drain checks against the manager: nothing live, overshoot 0,
  /// outcome counters consistent with the observed terminal updates.
  void CheckDrained(const session::SessionManager& manager);

  /// Cross-checks this (injected) run against an uninjected reference:
  /// every query completed here must exist, be completed, and match in
  /// the reference.  `rel_eps == 0` demands bit identity.
  void CompareCompletedAgainstReference(const InvariantChecker& reference,
                                        double rel_eps);

  const std::vector<InvariantViolation>& violations() const {
    return violations_;
  }
  const std::map<int64_t, session::ProgressiveUpdate>& finals() const {
    return finals_;
  }
  int64_t submitted() const { return static_cast<int64_t>(submits_.size()); }
  int64_t finals_seen() const { return static_cast<int64_t>(finals_.size()); }

  /// Optional deterministic event log: when set, terminal updates append
  /// one line each (used for seed-replay identity checks).
  void set_event_log(std::vector<std::string>* log) { log_ = log; }

 private:
  void Violate(const std::string& invariant, const std::string& detail);

  Options options_;
  /// query_id -> virtual submit time.
  std::map<int64_t, Micros> submits_;
  /// query_id -> the one terminal update.
  std::map<int64_t, session::ProgressiveUpdate> finals_;
  std::vector<InvariantViolation> violations_;
  std::vector<std::string>* log_ = nullptr;
};

}  // namespace idebench::chaos

#endif  // IDEBENCH_CHAOS_INVARIANTS_H_
