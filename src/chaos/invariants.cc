#include "chaos/invariants.h"

#include <cmath>
#include <cstring>
#include <sstream>

namespace idebench::chaos {

namespace {

/// Bitwise double equality (distinguishes -0.0/0.0, treats NaN == NaN —
/// two runs that both produce NaN in the same slot agree).
bool SameBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

bool Close(double a, double b, double rel_eps) {
  if (rel_eps <= 0.0) return SameBits(a, b);
  if (SameBits(a, b)) return true;
  const double scale = std::max(std::fabs(a), std::fabs(b));
  return std::fabs(a - b) <= rel_eps * std::max(scale, 1.0);
}

std::string OutcomeName(const session::ProgressiveUpdate& u) {
  if (u.completed) return "completed";
  if (u.failed) return "failed";
  if (u.unsupported) return "unsupported";
  if (u.cancelled) return "cancelled";
  return "none";
}

}  // namespace

bool ResultsMatch(const query::QueryResult& a, const query::QueryResult& b,
                  double rel_eps, std::string* why) {
  const auto fail = [&](const std::string& detail) {
    if (why != nullptr) *why = detail;
    return false;
  };
  if (a.available != b.available) return fail("available differs");
  if (a.exact != b.exact) return fail("exact differs");
  if (a.rows_processed != b.rows_processed) {
    return fail("rows_processed " + std::to_string(a.rows_processed) + " vs " +
                std::to_string(b.rows_processed));
  }
  if (!Close(a.progress, b.progress, rel_eps)) return fail("progress differs");
  if (a.bins.size() != b.bins.size()) {
    return fail("bin count " + std::to_string(a.bins.size()) + " vs " +
                std::to_string(b.bins.size()));
  }
  for (const auto& [key, bin] : a.bins) {
    auto it = b.bins.find(key);
    if (it == b.bins.end()) {
      return fail("bin " + std::to_string(key) + " missing");
    }
    if (bin.values.size() != it->second.values.size()) {
      return fail("bin " + std::to_string(key) + " aggregate count differs");
    }
    for (size_t i = 0; i < bin.values.size(); ++i) {
      if (!Close(bin.values[i].estimate, it->second.values[i].estimate,
                 rel_eps)) {
        return fail("bin " + std::to_string(key) + " agg " +
                    std::to_string(i) + " estimate differs");
      }
      if (!Close(bin.values[i].margin, it->second.values[i].margin, rel_eps)) {
        return fail("bin " + std::to_string(key) + " agg " +
                    std::to_string(i) + " margin differs");
      }
    }
  }
  return true;
}

void InvariantChecker::Violate(const std::string& invariant,
                               const std::string& detail) {
  violations_.push_back({invariant, detail});
}

void InvariantChecker::NoteSubmitted(
    const std::vector<session::SubmittedQuery>& batch, Micros now) {
  for (const session::SubmittedQuery& sq : batch) {
    if (!submits_.emplace(sq.query_id, now).second) {
      Violate("unique-query-id",
              "query " + std::to_string(sq.query_id) + " submitted twice");
      continue;
    }
    // Unsupported queries push their terminal update synchronously inside
    // the submission; re-run the deadline check now that we know when.
    auto fit = finals_.find(sq.query_id);
    if (fit != finals_.end() &&
        fit->second.virtual_time > now + options_.time_requirement) {
      Violate("no-starvation",
              "query " + std::to_string(sq.query_id) + " finalized past its "
              "deadline");
    }
  }
}

void InvariantChecker::OnUpdate(const session::ProgressiveUpdate& u) {
  const std::string qid = std::to_string(u.query_id);
  auto fit = finals_.find(u.query_id);
  if (fit != finals_.end()) {
    Violate(u.final_update ? "one-terminal-update" : "no-update-after-final",
            "query " + qid + " received an update after its terminal one");
    return;
  }
  if (u.consumed > u.budget) {
    Violate("entitlement-bound",
            "query " + qid + " consumed " + std::to_string(u.consumed) +
                " of budget " + std::to_string(u.budget));
  }
  if (u.progress < 0.0) {
    Violate("progress-range", "query " + qid + " progress < 0");
  }
  if (!u.final_update) {
    if (u.completed || u.cancelled || u.unsupported || u.failed) {
      Violate("terminal-flags-on-partial",
              "query " + qid + " carries terminal flags on a partial update");
    }
    return;
  }

  const int terminal = (u.completed ? 1 : 0) + (u.cancelled ? 1 : 0) +
                       (u.unsupported ? 1 : 0) + (u.failed ? 1 : 0);
  if (terminal != 1) {
    Violate("one-terminal-outcome",
            "query " + qid + " terminal update carries " +
                std::to_string(terminal) + " outcome flags");
  }
  auto sit = submits_.find(u.query_id);
  if (sit != submits_.end()) {
    const Micros deadline = sit->second + options_.time_requirement;
    if (u.virtual_time > deadline) {
      Violate("no-starvation", "query " + qid + " finalized at " +
                                   std::to_string(u.virtual_time) +
                                   " past deadline " +
                                   std::to_string(deadline));
    }
    // A terminal update exactly at the deadline is a deadline
    // cancellation (client cancels always land strictly earlier — an
    // overdue query is finalized before control ever returns to a
    // client).  The round-robin must have served it its whole
    // entitlement by then.
    if (options_.expect_full_entitlement && u.cancelled &&
        u.virtual_time == deadline && u.consumed != u.budget) {
      Violate("fairness-full-entitlement",
              "query " + qid + " deadline-cancelled with " +
                  std::to_string(u.consumed) + " of " +
                  std::to_string(u.budget) + " entitlement consumed");
    }
  }
  finals_.emplace(u.query_id, u);
  if (log_ != nullptr) {
    std::ostringstream line;
    line << "t=" << u.virtual_time << " final q" << u.query_id << " "
         << OutcomeName(u) << " viz=" << u.viz_name
         << " consumed=" << u.consumed << " rows=" << u.result.rows_processed;
    log_->push_back(line.str());
  }
}

void InvariantChecker::CheckDrained(const session::SessionManager& manager) {
  if (manager.HasLive()) {
    Violate("no-stuck-queries", "manager still has live queries after drain");
  }
  const session::SchedulerStats stats = manager.stats();
  if (stats.max_deadline_overshoot != 0) {
    Violate("no-starvation",
            "scheduler max_deadline_overshoot = " +
                std::to_string(stats.max_deadline_overshoot));
  }
  const int64_t terminal = stats.completed + stats.deadline_cancelled +
                           stats.client_cancelled + stats.unsupported +
                           stats.failed;
  if (terminal != stats.queries_submitted) {
    Violate("no-leaked-queries",
            std::to_string(stats.queries_submitted) + " submitted but " +
                std::to_string(terminal) + " terminal outcomes counted");
  }
  for (const auto& [id, submit_time] : submits_) {
    if (finals_.find(id) == finals_.end()) {
      Violate("one-terminal-update",
              "query " + std::to_string(id) + " never got a terminal update");
    }
  }
  // The manager may have counted queries this checker never saw only if
  // some session ran without this sink — a harness bug worth flagging.
  if (static_cast<int64_t>(submits_.size()) != stats.queries_submitted) {
    Violate("checker-coverage",
            "checker saw " + std::to_string(submits_.size()) +
                " submissions, manager counted " +
                std::to_string(stats.queries_submitted));
  }
}

void InvariantChecker::CompareCompletedAgainstReference(
    const InvariantChecker& reference, double rel_eps) {
  for (const auto& [id, final] : finals_) {
    if (!final.completed) continue;
    const std::string qid = std::to_string(id);
    auto rit = reference.finals_.find(id);
    if (rit == reference.finals_.end()) {
      Violate("reference-identity",
              "query " + qid + " completed under faults but is unknown to "
              "the reference run");
      continue;
    }
    // Faults only ever *remove* compute headroom, so a query that still
    // completed under injection must complete in the fault-free run.
    if (!rit->second.completed) {
      Violate("reference-identity",
              "query " + qid + " completed under faults but the reference "
              "run finished it as " + OutcomeName(rit->second));
      continue;
    }
    std::string why;
    if (!ResultsMatch(final.result, rit->second.result, rel_eps, &why)) {
      Violate("reference-identity",
              "query " + qid + " result diverged from reference: " + why);
    }
  }
}

}  // namespace idebench::chaos
