#ifndef IDEBENCH_CHAOS_SCENARIO_H_
#define IDEBENCH_CHAOS_SCENARIO_H_

/// \file scenario.h
/// Adversarial workload scenarios over the virtual-clock scheduler.
///
/// A `ScenarioSpec` describes one chaos experiment: a fleet of session
/// actors (submit/cancel/kill/flood decisions drawn from per-actor rng
/// streams), a scheduler configuration, and a fault plan for the seeded
/// `FaultInjector`.  `RunScenario` executes it deterministically — every
/// actor decision is a pure function of (scenario seed, actor, tick),
/// never of query outcomes — so the same seed replays the same run
/// bit-for-bit, and an uninjected run of the same seed submits the exact
/// same query sequence (the basis of the reference-identity invariant).
///
/// Determinism contract for actors: decisions may read only their own
/// rng stream and counters derived from the submission schedule (which
/// is itself seed-pure).  They must never branch on results, completion
/// order, or fault outcomes — that would fork the chaos and reference
/// runs apart and void the cross-run comparison.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "chaos/fault_injector.h"
#include "chaos/invariants.h"
#include "common/clock.h"
#include "common/result.h"
#include "session/session.h"

namespace idebench::chaos {

/// One chaos experiment configuration.
struct ScenarioSpec {
  std::string name;
  std::string description;

  // Workload shape.
  int sessions = 2;
  int ticks = 30;
  Micros tick = 100'000;  // virtual time between actor decision points

  // Per-tick, per-actor action probabilities (drawn in a fixed order so
  // actor rng streams stay aligned whatever the outcomes are).
  double submit_prob = 0.85;  // submit the next workflow interaction
  int flood_batch = 1;        // interactions submitted per submit action
  double cancel_prob = 0.0;   // cancel a random query id seen so far
  double kill_prob = 0.0;     // close the session mid-run (stays closed)

  // Workflow generator shape (small workflows cycle faster: more
  // create/link/discard churn on the VizGraph).
  int min_interactions = 14;
  int max_interactions = 24;

  // Engine/execution shape.
  int threads = 2;
  bool reuse_cache = true;

  // Scheduler configuration.
  session::SessionManagerOptions scheduler;

  // Fault plan applied through the process-global injector.
  std::vector<std::pair<FaultSite, FaultSiteConfig>> faults;

  // Round-trip the catalog through CSV at setup (exercises the csv fault
  // sites with retry-on-transient handling).
  bool csv_round_trip = false;

  // Engine-fault sites steal compute from wedged queries, so the
  // fairness lower bound (deadline-cancelled => full entitlement
  // consumed) only holds without them; specs arming such sites clear
  // this.
  bool expect_full_entitlement = true;

  // Morsel-slowdown faults change the morsel merge tree, which may
  // regroup floating-point partial sums in the last ulp; specs arming
  // that site compare against the reference within this relative
  // epsilon instead of bit-for-bit (0 = demand bit identity).
  double reference_rel_eps = 0.0;

  // Faults normally only *delay* queries, so completing under injection
  // implies completing in the reference run.  That breaks once kEngineRun
  // is armed: a wedged query's cancel + retry re-enters Submit, where
  // engines may share state across submissions — the exec reuse cache
  // snapshots the cancelled partial answer, and the progressive/
  // stratified engines' internal semantic reuse hands the retry a
  // sibling's more-advanced sample state — letting the retry finish
  // *faster* than the fault-free run ever did.  Specs arming kEngineRun
  // clear this; the cross-run check then only demands matching results
  // for queries completed in both runs (completed answers are full-data
  // and path-independent).
  bool completion_monotone = true;

  // Serving-layer behaviors driven by the net fault sites.  These make
  // the run itself depend on fault draws (a dropped partial, a torn
  // connection), so the uninjected reference run's schedule diverges by
  // construction — specs using them clear `compare_reference`.
  //
  // kNetWrite: each non-terminal push to a client sink may be dropped
  // (the real server coalesces it into the next write); terminal updates
  // always pass — the exactly-one-terminal contract must survive any
  // write-side weather.
  bool net_slow_client = false;
  // kNetRead: a connection tears mid-query; the actor's session closes
  // immediately (like a kill, but drawn at the injector).  Every live
  // query must still drain with exactly one terminal update.
  bool net_disconnect = false;

  // Streaming ingest: > 0 builds a *fresh* per-run catalog (ingest
  // mutates the fact table, so the process-shared base catalog must
  // never be used), attaches an `ingest::Ingestor` through the
  // manager's ingest channel, and enqueues one append-and-publish event
  // of this many rows per tick — epoch publishes racing the actor
  // fleet's submits and cancels.  Faulted appends/publishes are
  // weather (the batch is lost / the publish waits), but with ingest
  // fault sites armed the *visible data itself* depends on the draws,
  // so such specs clear `compare_reference`.
  int ingest_rows_per_tick = 0;

  // Cross-run reference identity only holds when the actor schedule is
  // independent of fault draws; net scenarios above opt out.
  bool compare_reference = true;

  bool has_faults() const { return !faults.empty(); }
};

/// Everything one scenario run produced.
struct ChaosReport {
  std::string scenario;
  std::string engine;
  uint64_t seed = 0;
  bool injected = false;

  /// Abort-class error (a programming-error Status escaping the run).
  /// Scenario runs must never produce one; it is reported, not thrown.
  Status run_error = Status::OK();

  session::SchedulerStats stats;
  std::vector<InvariantViolation> violations;
  /// Deterministic event log: submissions, actor actions, terminal
  /// updates, fault summary.  Same seed => byte-identical log.
  std::vector<std::string> event_log;
  std::string fault_summary;
  int64_t total_fires = 0;
  int prepare_attempts = 1;
  /// query_id -> terminal update (for cross-run comparisons).
  std::map<int64_t, session::ProgressiveUpdate> finals;

  bool ok() const { return run_error.ok() && violations.empty(); }
};

/// The built-in scenario catalog (see README "Chaos harness").
const std::vector<ScenarioSpec>& ScenarioCatalog();

/// Finds a catalog scenario by name; null when unknown.
const ScenarioSpec* FindScenario(const std::string& name);

/// Prepares `engine` against `catalog`, retrying transient failures up
/// to `max_attempts` times (injected prepare faults leave the engine
/// clean, so a later attempt can succeed).  Returns the attempt count.
Result<int> PrepareWithRetry(engines::Engine* engine,
                             std::shared_ptr<const storage::Catalog> catalog,
                             int max_attempts = 16);

/// Runs one scenario on one engine with one seed.  `inject == false`
/// runs the identical actor schedule without installing the injector
/// (the reference run).  Never throws; abort-class errors land in
/// `ChaosReport::run_error`.
ChaosReport RunScenario(const ScenarioSpec& spec,
                        const std::string& engine_name, uint64_t seed,
                        bool inject = true);

/// Runs the scenario injected, then uninjected, and cross-checks the
/// reference-identity invariant; returns the injected run's report with
/// any cross-run violations appended.  For fault-free specs this is just
/// RunScenario (there is nothing to compare against).
ChaosReport RunScenarioWithReference(const ScenarioSpec& spec,
                                     const std::string& engine_name,
                                     uint64_t seed);

}  // namespace idebench::chaos

#endif  // IDEBENCH_CHAOS_SCENARIO_H_
