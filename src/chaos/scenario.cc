#include "chaos/scenario.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <sstream>
#include <utility>

#include "common/logging.h"
#include "common/random.h"
#include "datagen/flights_seed.h"
#include "engines/registry.h"
#include "ingest/ingest.h"
#include "storage/csv.h"
#include "workflow/generator.h"

namespace idebench::chaos {

namespace {

/// Mirrors SessionManager's transient classification for the setup path
/// (Prepare / CSV ingest), which runs before any manager exists.
bool IsTransientStatus(StatusCode code) {
  switch (code) {
    case StatusCode::kIoError:
    case StatusCode::kResourceExhausted:
    case StatusCode::kCancelled:
    case StatusCode::kUnknown:
      return true;
    default:
      return false;
  }
}

/// The shared chaos dataset: the fuzz fixture's small denormalized
/// flights catalog (below exec::kMorselRows, so fault-free runs stay on
/// the single-morsel direct path and bit-identity is meaningful).
std::shared_ptr<const storage::Catalog> BaseCatalog() {
  static const std::shared_ptr<const storage::Catalog> catalog = [] {
    datagen::FlightsSeedConfig config;
    config.rows = 4000;
    config.seed = 11;
    auto table = datagen::GenerateFlightsSeed(config);
    IDB_CHECK(table.ok());
    auto c = std::make_shared<storage::Catalog>();
    IDB_CHECK(c->AddTable(std::make_shared<storage::Table>(
                              std::move(table).MoveValueUnsafe()))
                  .ok());
    return std::static_pointer_cast<const storage::Catalog>(c);
  }();
  return catalog;
}

/// Round-trips the base fact table through CSV with retry-on-transient,
/// exercising the kCsvOpen/kCsvAlloc sites the way a resilient loader
/// would.  The file lands in the working directory and is removed.
Result<std::shared_ptr<const storage::Catalog>> CsvRoundTripCatalog(
    const ScenarioSpec& spec, const std::string& engine_name, uint64_t seed,
    std::vector<std::string>* log) {
  const storage::Table* fact = BaseCatalog()->fact_table();
  const std::string path = "chaos_roundtrip_" + spec.name + "_" + engine_name +
                           "_" + std::to_string(seed) + ".csv";
  constexpr int kMaxAttempts = 16;
  Status last = Status::OK();
  for (int attempt = 1; attempt <= kMaxAttempts; ++attempt) {
    last = storage::WriteCsv(*fact, path);
    if (last.ok()) {
      auto read = storage::ReadCsv(path, fact->name(), fact->schema());
      if (read.ok()) {
        std::remove(path.c_str());
        log->push_back("csv round-trip ok after " + std::to_string(attempt) +
                       " attempt(s)");
        auto c = std::make_shared<storage::Catalog>();
        IDB_RETURN_NOT_OK(c->AddTable(std::make_shared<storage::Table>(
            std::move(read).MoveValueUnsafe())));
        return std::static_pointer_cast<const storage::Catalog>(c);
      }
      last = read.status();
    }
    if (!IsTransientStatus(last.code())) break;
  }
  std::remove(path.c_str());
  return last;
}

/// One adversarial session actor.  Every decision it takes is drawn from
/// its own rng stream in a fixed order, so the schedule is a pure
/// function of (scenario seed, actor index, tick) — identical in the
/// injected and reference runs.
struct Actor {
  session::ExplorationSession* session = nullptr;
  workflow::Workflow workflow;
  Rng rng{0};
  size_t next_interaction = 0;
  bool closed = false;
};

/// Serving-layer stand-in for a slow client: when the kNetWrite site
/// fires, a partial update is dropped (the real server coalesces it into
/// the connection's next write instead of buffering without bound).
/// Terminal updates always pass through — whatever the write-side
/// weather, every admitted query delivers exactly one terminal update.
class SlowClientSink : public session::ResultSink {
 public:
  explicit SlowClientSink(session::ResultSink* inner) : inner_(inner) {}

  void OnUpdate(const session::ProgressiveUpdate& update) override {
    if (!update.final_update &&
        FaultInjector::Fire(FaultSite::kNetWrite)) {
      ++dropped_;
      return;
    }
    inner_->OnUpdate(update);
  }

  int64_t dropped() const { return dropped_; }

 private:
  session::ResultSink* inner_;
  int64_t dropped_ = 0;
};

}  // namespace

const std::vector<ScenarioSpec>& ScenarioCatalog() {
  static const std::vector<ScenarioSpec>* catalog = [] {
    auto* out = new std::vector<ScenarioSpec>();
    const auto scheduler = [](Micros tr, Micros quantum, double penalty) {
      session::SessionManagerOptions o;
      o.time_requirement = tr;
      o.quantum = quantum;
      o.contention_penalty = penalty;
      return o;
    };

    {
      ScenarioSpec s;
      s.name = "baseline";
      s.description = "fault-free multi-session mix (sanity floor)";
      s.sessions = 2;
      s.ticks = 25;
      s.scheduler = scheduler(400'000, 50'000, 0.25);
      out->push_back(std::move(s));
    }
    {
      ScenarioSpec s;
      s.name = "cancel_storm";
      s.description = "clients hammer Cancel on random global query ids";
      s.sessions = 3;
      s.ticks = 30;
      s.submit_prob = 0.9;
      s.cancel_prob = 0.6;
      s.scheduler = scheduler(400'000, 50'000, 0.25);
      out->push_back(std::move(s));
    }
    {
      ScenarioSpec s;
      s.name = "session_kill";
      s.description = "sessions die mid-exploration with live queries";
      s.sessions = 4;
      s.ticks = 25;
      s.kill_prob = 0.12;
      s.scheduler = scheduler(400'000, 50'000, 0.25);
      out->push_back(std::move(s));
    }
    {
      ScenarioSpec s;
      s.name = "submit_flood";
      s.description = "every actor floods multiple interactions per tick";
      s.sessions = 3;
      s.ticks = 20;
      s.submit_prob = 1.0;
      s.flood_batch = 3;
      s.scheduler = scheduler(300'000, 50'000, 0.5);
      out->push_back(std::move(s));
    }
    {
      ScenarioSpec s;
      s.name = "deadline_epsilon";
      s.description = "time requirement so small nearly everything "
                      "deadline-cancels at exactly its entitlement";
      s.sessions = 3;
      s.ticks = 30;
      s.tick = 10'000;
      s.scheduler = scheduler(2'000, 0, 0.25);
      out->push_back(std::move(s));
    }
    {
      ScenarioSpec s;
      s.name = "link_churn";
      s.description = "short workflows cycle fast: constant viz "
                      "create/link/discard churn on the dashboards";
      s.sessions = 3;
      s.ticks = 30;
      s.submit_prob = 1.0;
      s.min_interactions = 6;
      s.max_interactions = 10;
      s.scheduler = scheduler(300'000, 50'000, 0.25);
      out->push_back(std::move(s));
    }
    {
      ScenarioSpec s;
      s.name = "engine_faults";
      s.description = "injected prepare + run faults; scheduler retries "
                      "with virtual-time backoff";
      s.sessions = 2;
      s.ticks = 25;
      s.scheduler = scheduler(400'000, 50'000, 0.25);
      s.faults = {{FaultSite::kEnginePrepare, {0.3, -1}},
                  {FaultSite::kEngineRun, {0.02, -1}}};
      // A wedged query legitimately consumes less than it was offered.
      s.expect_full_entitlement = false;
      // Retries re-enter Submit, where engine-internal semantic reuse can
      // hand them a sibling's more-advanced state (see
      // ScenarioSpec::completion_monotone).
      s.completion_monotone = false;
      out->push_back(std::move(s));
    }
    {
      ScenarioSpec s;
      s.name = "reuse_churn";
      s.description = "reuse-cache poisoning + eviction storms + morsel "
                      "slowdowns + pool stalls (result-transparency under "
                      "physical-path chaos)";
      s.sessions = 3;
      s.ticks = 25;
      s.faults = {{FaultSite::kReusePoison, {0.3, -1}},
                  {FaultSite::kReuseEvictStorm, {0.2, -1}},
                  {FaultSite::kMorselSlowdown, {0.1, -1}},
                  {FaultSite::kWorkerPoolStall, {0.2, -1}}};
      s.threads = 4;
      // Morsel slowdowns regroup floating-point merges (last-ulp).
      s.reference_rel_eps = 1e-9;
      s.scheduler = scheduler(400'000, 50'000, 0.25);
      out->push_back(std::move(s));
    }
    {
      ScenarioSpec s;
      s.name = "io_faults";
      s.description = "CSV ingest + engine prepare fail transiently; "
                      "setup retries until the budgets run dry";
      s.sessions = 2;
      s.ticks = 20;
      s.csv_round_trip = true;
      s.faults = {{FaultSite::kCsvOpen, {0.4, 6}},
                  {FaultSite::kCsvAlloc, {0.001, 3}},
                  {FaultSite::kEnginePrepare, {0.5, 4}}};
      s.scheduler = scheduler(400'000, 50'000, 0.25);
      out->push_back(std::move(s));
    }
    {
      ScenarioSpec s;
      s.name = "thrash";
      s.description = "everything at once, lightly: kills, cancels, "
                      "floods, engine faults and physical-path chaos";
      s.sessions = 4;
      s.ticks = 30;
      s.submit_prob = 0.9;
      s.flood_batch = 2;
      s.cancel_prob = 0.2;
      s.kill_prob = 0.05;
      s.threads = 4;
      s.faults = {{FaultSite::kEngineRun, {0.01, -1}},
                  {FaultSite::kReusePoison, {0.1, -1}},
                  {FaultSite::kReuseEvictStorm, {0.05, -1}},
                  {FaultSite::kWorkerPoolStall, {0.1, -1}},
                  {FaultSite::kMorselSlowdown, {0.05, -1}}};
      s.expect_full_entitlement = false;
      s.reference_rel_eps = 1e-9;
      // kEngineRun + reuse cache: retries may beat the reference.
      s.completion_monotone = false;
      s.scheduler = scheduler(400'000, 50'000, 0.25);
      out->push_back(std::move(s));
    }
    {
      ScenarioSpec s;
      s.name = "ingest_storm";
      s.description = "append batches and epoch publishes race a cancel "
                      "storm; injected append/publish faults drop batches "
                      "and delay visibility";
      s.sessions = 3;
      s.ticks = 30;
      s.submit_prob = 0.9;
      s.cancel_prob = 0.5;
      s.ingest_rows_per_tick = 40;
      s.faults = {{FaultSite::kIngestAppend, {0.2, -1}},
                  {FaultSite::kIngestPublish, {0.2, -1}}};
      // Faulted appends/publishes change which rows become visible, so
      // the uninjected run answers from different data by construction.
      s.compare_reference = false;
      s.scheduler = scheduler(400'000, 50'000, 0.25);
      out->push_back(std::move(s));
    }
    {
      ScenarioSpec s;
      s.name = "slow_client";
      s.description = "clients stop reading: partial pushes coalesce/drop "
                      "at the write queue, terminals always arrive";
      s.sessions = 3;
      s.ticks = 25;
      s.faults = {{FaultSite::kNetWrite, {0.5, -1}}};
      s.net_slow_client = true;
      // Drops are drawn at the injector, so the uninjected run pushes a
      // different partial stream; finals are what the invariants pin.
      s.compare_reference = false;
      s.scheduler = scheduler(400'000, 50'000, 0.25);
      out->push_back(std::move(s));
    }
    {
      ScenarioSpec s;
      s.name = "disconnect_mid_query";
      s.description = "connections tear mid-query: sessions close with "
                      "live queries, which must drain with exactly one "
                      "terminal update each";
      s.sessions = 4;
      s.ticks = 25;
      s.submit_prob = 0.9;
      s.faults = {{FaultSite::kNetRead, {0.06, -1}},
                  {FaultSite::kNetWrite, {0.2, -1}}};
      s.net_disconnect = true;
      s.net_slow_client = true;
      // Disconnects reshape the actor schedule itself.
      s.compare_reference = false;
      s.scheduler = scheduler(400'000, 50'000, 0.25);
      out->push_back(std::move(s));
    }
    return out;
  }();
  return *catalog;
}

const ScenarioSpec* FindScenario(const std::string& name) {
  for (const ScenarioSpec& spec : ScenarioCatalog()) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

Result<int> PrepareWithRetry(engines::Engine* engine,
                             std::shared_ptr<const storage::Catalog> catalog,
                             int max_attempts) {
  Status last = Status::OK();
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    auto prepared = engine->Prepare(catalog);
    if (prepared.ok()) return attempt;
    last = prepared.status();
    if (!IsTransientStatus(last.code())) return last;
  }
  return last;
}

ChaosReport RunScenario(const ScenarioSpec& spec,
                        const std::string& engine_name, uint64_t seed,
                        bool inject) {
  ChaosReport report;
  report.scenario = spec.name;
  report.engine = engine_name;
  report.seed = seed;
  report.injected = inject && spec.has_faults();

  // The injector lives for the whole run (declared before the manager so
  // it outlives teardown) but is only installed when injecting.
  FaultInjector injector(seed);
  for (const auto& [site, config] : spec.faults) injector.Arm(site, config);
  ScopedFaultInjector scope(report.injected ? &injector : nullptr);

  auto engine = engines::CreateEngine(engine_name, /*seed=*/0, spec.threads,
                                      spec.reuse_cache);
  if (!engine.ok()) {
    report.run_error = engine.status();
    return report;
  }

  std::shared_ptr<const storage::Catalog> catalog;
  std::unique_ptr<ingest::Ingestor> ingestor;   // outlives the manager
  std::shared_ptr<storage::Table> ingest_tail;  // pre-generated tail rows
  int64_t ingest_cursor = 0;
  if (spec.ingest_rows_per_tick > 0) {
    // Fresh per-run catalog — never the process-shared BaseCatalog,
    // which ingest would mutate under every other scenario.  Base and
    // tail are generated together up front, so a control run can load
    // the identical rows pre-staged instead of ingesting them.
    const int64_t base_rows = 4000;
    const int64_t tail_rows =
        static_cast<int64_t>(spec.ticks) * spec.ingest_rows_per_tick;
    datagen::FlightsSeedConfig config;
    config.rows = base_rows + tail_rows;
    config.seed = 11;
    auto full = datagen::GenerateFlightsSeed(config);
    if (!full.ok()) {
      report.run_error = full.status();
      return report;
    }
    ingest_tail =
        std::make_shared<storage::Table>(std::move(full).MoveValueUnsafe());
    auto fact = std::make_shared<storage::Table>(ingest_tail->name(),
                                                 ingest_tail->schema());
    for (int64_t r = 0; r < base_rows; ++r) {
      const Status st = fact->AppendRowFrom(*ingest_tail, r);
      if (!st.ok()) {
        report.run_error = st;
        return report;
      }
    }
    auto mutable_catalog = std::make_shared<storage::Catalog>();
    const Status added = mutable_catalog->AddTable(fact);
    if (!added.ok()) {
      report.run_error = added;
      return report;
    }
    auto created =
        ingest::Ingestor::Create(mutable_catalog, base_rows + tail_rows);
    if (!created.ok()) {
      report.run_error = created.status();
      return report;
    }
    ingestor = std::move(created).MoveValueUnsafe();
    ingest_cursor = base_rows;
    catalog = std::static_pointer_cast<const storage::Catalog>(mutable_catalog);
  } else if (spec.csv_round_trip) {
    auto round_trip =
        CsvRoundTripCatalog(spec, engine_name, seed, &report.event_log);
    if (!round_trip.ok()) {
      report.run_error = round_trip.status();
      return report;
    }
    catalog = std::move(round_trip).MoveValueUnsafe();
  } else {
    catalog = BaseCatalog();
  }

  auto attempts = PrepareWithRetry(engine->get(), catalog);
  if (!attempts.ok()) {
    report.run_error = attempts.status();
    return report;
  }
  report.prepare_attempts = *attempts;
  report.event_log.push_back("prepare attempts=" + std::to_string(*attempts));

  InvariantChecker::Options check_options;
  check_options.time_requirement = spec.scheduler.time_requirement;
  // Fault-free runs always honor the fairness lower bound; injected runs
  // honor it unless a compute-stealing site is armed.
  check_options.expect_full_entitlement =
      report.injected ? spec.expect_full_entitlement : true;
  InvariantChecker checker(check_options);
  checker.set_event_log(&report.event_log);

  // Slow-client mode interposes a dropping sink per session (declared
  // before the manager so it outlives teardown pushes).
  SlowClientSink slow_sink(&checker);
  session::ResultSink* sink =
      spec.net_slow_client ? static_cast<session::ResultSink*>(&slow_sink)
                           : &checker;

  session::SessionManager manager(spec.scheduler, engine->get(), catalog);
  if (ingestor != nullptr) manager.AttachIngest(ingestor.get());

  // Spin up the actor fleet: per-actor decision streams forked from the
  // scenario seed, per-actor workflows from independently seeded
  // generators (all pure in the seed — the reference run regenerates the
  // exact same fleet).
  std::vector<Actor> actors(static_cast<size_t>(spec.sessions));
  Rng master(seed);
  for (int i = 0; i < spec.sessions; ++i) {
    Actor& actor = actors[static_cast<size_t>(i)];
    auto created = manager.CreateSession(sink);
    if (!created.ok()) {
      report.run_error = created.status();
      return report;
    }
    actor.session = *created;
    actor.rng = master.Fork(static_cast<uint64_t>(i) + 100);

    workflow::GeneratorConfig config;
    config.min_interactions = spec.min_interactions;
    config.max_interactions = spec.max_interactions;
    workflow::WorkflowGenerator generator(
        catalog->fact_table(), config,
        seed ^ (0x9E3779B97F4A7C15ULL * (static_cast<uint64_t>(i) + 1)));
    auto wf = generator.Generate(workflow::WorkflowType::kMixed,
                                 spec.name + "_a" + std::to_string(i));
    if (!wf.ok()) {
      report.run_error = wf.status();
      return report;
    }
    actor.workflow = std::move(wf).MoveValueUnsafe();
  }

  const auto log_line = [&](const std::string& line) {
    report.event_log.push_back(line);
  };

  // Highest query id handed out so far (ids are manager-global and
  // sequential, so this doubles as the cancel-target range).  Derived
  // from the seed-pure submission schedule only — never from outcomes.
  int64_t queries_issued = 0;

  for (int tick = 0; tick < spec.ticks; ++tick) {
    const Micros now = manager.VirtualNow();
    for (size_t a = 0; a < actors.size(); ++a) {
      Actor& actor = actors[a];
      if (actor.closed) continue;
      const std::string tag =
          "t=" + std::to_string(now) + " a" + std::to_string(a);

      // A torn connection closes the session right here, live queries
      // and all — the drain invariants still demand one terminal each.
      if (spec.net_disconnect &&
          FaultInjector::Fire(FaultSite::kNetRead)) {
        const Status closed = manager.CloseSession(actor.session);
        if (!closed.ok()) {
          report.run_error = closed;
          return report;
        }
        actor.closed = true;
        log_line(tag + " disconnect s" + std::to_string(actor.session->id()));
        continue;
      }

      if (spec.kill_prob > 0.0 && actor.rng.Bernoulli(spec.kill_prob)) {
        const Status closed = manager.CloseSession(actor.session);
        if (!closed.ok()) {
          report.run_error = closed;
          return report;
        }
        actor.closed = true;
        log_line(tag + " kill s" + std::to_string(actor.session->id()));
        continue;
      }

      if (spec.cancel_prob > 0.0 && queries_issued > 0 &&
          actor.rng.Bernoulli(spec.cancel_prob)) {
        const int64_t target = actor.rng.UniformInt(0, queries_issued - 1);
        const Status cancelled = actor.session->Cancel(target);
        if (!cancelled.ok()) {
          report.run_error = cancelled;
          return report;
        }
        log_line(tag + " cancel q" + std::to_string(target));
      }

      if (actor.rng.Bernoulli(spec.submit_prob)) {
        for (int f = 0; f < spec.flood_batch; ++f) {
          if (actor.next_interaction >= actor.workflow.interactions.size()) {
            actor.session->ResetDashboard();
            actor.next_interaction = 0;
          }
          const workflow::Interaction& interaction =
              actor.workflow.interactions[actor.next_interaction];
          ++actor.next_interaction;
          auto batch = actor.session->SubmitInteraction(interaction);
          if (!batch.ok()) {
            report.run_error = batch.status();
            return report;
          }
          checker.NoteSubmitted(*batch, manager.VirtualNow());
          for (const session::SubmittedQuery& sq : *batch) {
            queries_issued = std::max(queries_issued, sq.query_id + 1);
          }
          log_line(tag + " submit n=" + std::to_string(batch->size()));
        }
      }
    }

    // Ingest schedule: one append-and-publish mid-tick, racing whatever
    // the actors just submitted.  The cursor advances by the *scheduled*
    // batch regardless of fault outcomes (a faulted append loses those
    // rows for good), keeping the schedule seed-pure.
    if (ingestor != nullptr && ingest_cursor < ingest_tail->num_rows()) {
      const int64_t end = std::min<int64_t>(
          ingest_cursor + spec.ingest_rows_per_tick, ingest_tail->num_rows());
      const Status enqueued = manager.EnqueueAppend(
          ingest::BatchFromTable(*ingest_tail, ingest_cursor, end),
          now + spec.tick / 2, /*publish=*/true);
      if (!enqueued.ok()) {
        report.run_error = enqueued;
        return report;
      }
      log_line("t=" + std::to_string(now) +
               " ingest rows=" + std::to_string(end - ingest_cursor));
      ingest_cursor = end;
    }

    const Status advanced =
        manager.AdvanceTo(static_cast<Micros>(tick + 1) * spec.tick);
    if (!advanced.ok()) {
      report.run_error = advanced;
      return report;
    }
  }

  const Status drained = manager.RunUntilIdle();
  if (!drained.ok()) {
    report.run_error = drained;
    return report;
  }
  for (Actor& actor : actors) {
    // Idempotent for actors the kill draw already closed.
    const Status closed = manager.CloseSession(actor.session);
    if (!closed.ok()) {
      report.run_error = closed;
      return report;
    }
    actor.closed = true;
  }

  checker.CheckDrained(manager);

  report.stats = manager.stats();
  report.violations = checker.violations();
  report.finals = checker.finals();
  if (report.injected) {
    report.fault_summary = injector.Summary();
    report.total_fires = injector.total_fires();
    if (spec.net_slow_client) {
      report.event_log.push_back(
          "slow-client dropped partials=" + std::to_string(slow_sink.dropped()));
    }
  }
  {
    const session::SchedulerStats& s = report.stats;
    std::ostringstream line;
    line << "drained t=" << s.virtual_now << " submitted="
         << s.queries_submitted << " completed=" << s.completed
         << " deadline=" << s.deadline_cancelled
         << " client=" << s.client_cancelled
         << " unsupported=" << s.unsupported << " failed=" << s.failed
         << " transient_faults=" << s.transient_faults
         << " retries=" << s.retries << " fires=" << report.total_fires;
    report.event_log.push_back(line.str());
  }
  if (ingestor != nullptr) {
    const session::IngestChannelStats& is = manager.ingest_stats();
    std::ostringstream line;
    line << "ingest applied=" << is.batches_applied
         << " rows=" << is.rows_applied << " publishes=" << is.publishes
         << " append_failures=" << is.append_failures
         << " publish_failures=" << is.publish_failures
         << " visible=" << ingestor->visible_rows()
         << " staged=" << ingestor->staged_rows();
    report.event_log.push_back(line.str());
  }
  return report;
}

ChaosReport RunScenarioWithReference(const ScenarioSpec& spec,
                                     const std::string& engine_name,
                                     uint64_t seed) {
  ChaosReport report = RunScenario(spec, engine_name, seed, /*inject=*/true);
  if (!spec.has_faults() || !spec.compare_reference || !report.run_error.ok()) {
    return report;
  }

  const ChaosReport reference =
      RunScenario(spec, engine_name, seed, /*inject=*/false);
  if (!reference.run_error.ok()) {
    report.violations.push_back(
        {"reference-identity",
         "reference run failed: " + reference.run_error.ToString()});
    return report;
  }
  for (const InvariantViolation& v : reference.violations) {
    report.violations.push_back({v.invariant, "[reference] " + v.detail});
  }

  // Faults only ever delay queries, so everything that completed under
  // injection must be completed — with a matching answer — without it.
  for (const auto& [id, final] : report.finals) {
    if (!final.completed) continue;
    const std::string qid = std::to_string(id);
    auto rit = reference.finals.find(id);
    if (rit == reference.finals.end()) {
      report.violations.push_back(
          {"reference-identity",
           "query " + qid +
               " completed under faults but is unknown to the reference run"});
      continue;
    }
    if (!rit->second.completed) {
      if (spec.completion_monotone) {
        report.violations.push_back(
            {"reference-identity",
             "query " + qid + " completed under faults but the reference run "
                              "did not complete it"});
      }
      continue;
    }
    std::string why;
    if (!ResultsMatch(final.result, rit->second.result,
                      spec.reference_rel_eps, &why)) {
      report.violations.push_back(
          {"reference-identity",
           "query " + qid + " result diverged from reference: " + why});
    }
  }
  return report;
}

}  // namespace idebench::chaos
