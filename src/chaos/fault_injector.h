#ifndef IDEBENCH_CHAOS_FAULT_INJECTOR_H_
#define IDEBENCH_CHAOS_FAULT_INJECTOR_H_

/// \file fault_injector.h
/// Seeded, deterministic fault injection for the chaos harness.
///
/// A `FaultInjector` owns one independent xoshiro stream per *injection
/// site* (forked from a single master seed), so whether a given draw at a
/// given site fires is a pure function of `(seed, site, draw index)` —
/// never of wall time, thread scheduling, or what other sites drew in
/// between.  Two runs with the same seed therefore inject the exact same
/// faults at the exact same points, which is what makes every chaotic
/// schedule replayable (FDB-simulation style).
///
/// Sites are threaded through the layers that matter:
///
///  * `kEnginePrepare` — `EngineBase::Attach` fails with an I/O-style
///    error before binding the catalog (engines recover on re-Prepare);
///  * `kEngineRun` — an engine's `RunFor` wedges the query: the handle
///    stops making progress and `PollResult` reports the fault, which the
///    session scheduler turns into a cancel + resubmit with virtual-time
///    backoff;
///  * `kMorselSlowdown` — `exec::MorselProcess*` degrades to one-batch
///    morsels (maximum merge overhead; results bit-identical by the
///    morsel determinism contract);
///  * `kWorkerPoolStall` — `WorkerPool::ParallelFor` refuses to dispatch
///    and drains the job inline on the calling thread (a stalled pool
///    must degrade, never hang);
///  * `kReusePoison` — a reuse-cache lookup that found a snapshot treats
///    it as corrupt: the entry is dropped and the query pays the physical
///    work (results unchanged by the cache transparency contract);
///  * `kReuseEvictStorm` — a store first evicts every resident snapshot;
///  * `kCsvOpen` / `kCsvAlloc` — `storage::ReadCsv`/`WriteCsv` fail with
///    I/O-style and allocation-style `Status` errors;
///  * `kNetAccept` — the serving loop refuses an incoming connection
///    (accept fails transiently; the listener must keep serving);
///  * `kNetRead` — a connection read fails mid-stream: the server drops
///    the connection and must drain its sessions cleanly;
///  * `kNetWrite` — a connection write fails / the client stops reading:
///    backpressure coalesces partials, finals still reach the queue or
///    the disconnect is counted explicitly;
///  * `kNetPartialFrame` — an outbound frame is split at an arbitrary
///    byte boundary (the decoder must reassemble, never misparse);
///  * `kSegmentOpen` — `storage::SegmentFile::Open` fails before the
///    file descriptor is obtained (transient filesystem error; callers
///    fall back to rebuilding from source data);
///  * `kSegmentMmap` — the mmap of an opened segment file fails (address
///    space exhaustion style; the fd must still be closed);
///  * `kSegmentChecksum` — the footer checksum verification reports a
///    mismatch even though the bytes are intact (torn write / bit rot:
///    the file must be rejected wholesale, never half-loaded);
///  * `kIngestAppend` — `ingest::Ingestor::Append` fails I/O-style
///    before staging any row of the batch (all-or-nothing: a failed
///    append must leave the open epoch exactly as it was);
///  * `kIngestPublish` — `ingest::Ingestor::Publish` fails before moving
///    the watermark: staged rows stay invisible and a later publish
///    picks them up (visibility is atomic or not at all).
///
/// Installation is process-global (`Install`/`ScopedFaultInjector`) so
/// deep layers need no plumbing; when nothing is installed every site
/// check is a single relaxed atomic load.  `ShouldFire` serializes draws
/// with a mutex: replayability additionally requires that the *order* of
/// draws per site be deterministic, which holds in chaos runs because all
/// sites are driven from the single scheduling thread.

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "common/random.h"

namespace idebench::chaos {

/// Named injection sites (stable ordinals: per-site rng streams fork on
/// them, so reordering would change every seeded schedule).
enum class FaultSite : int {
  kEnginePrepare = 0,
  kEngineRun = 1,
  kMorselSlowdown = 2,
  kWorkerPoolStall = 3,
  kReusePoison = 4,
  kReuseEvictStorm = 5,
  kCsvOpen = 6,
  kCsvAlloc = 7,
  kNetAccept = 8,
  kNetRead = 9,
  kNetWrite = 10,
  kNetPartialFrame = 11,
  kSegmentOpen = 12,
  kSegmentMmap = 13,
  kSegmentChecksum = 14,
  kIngestAppend = 15,
  kIngestPublish = 16,
};

inline constexpr int kFaultSiteCount = 17;

/// Stable human-readable site name ("engine.prepare", ...).
const char* FaultSiteName(FaultSite site);

/// Per-site arming: fire with `probability` per draw, at most `budget`
/// times (-1 = unlimited).  A zero probability site never draws from its
/// stream, so arming extra sites never perturbs another site's schedule.
struct FaultSiteConfig {
  double probability = 0.0;
  int64_t budget = -1;
};

/// Per-site telemetry.
struct FaultSiteStats {
  int64_t draws = 0;  // times the site was evaluated while armed
  int64_t fires = 0;  // times it injected
};

class FaultInjector {
 public:
  /// All sites disarmed; arm with `Arm`.
  explicit FaultInjector(uint64_t seed);

  /// Arms one site.
  void Arm(FaultSite site, FaultSiteConfig config);

  /// Arms every site with the same probability and per-site budget.
  void ArmAll(double probability, int64_t budget_per_site = -1);

  /// Deterministic draw: true when the site fires this time.  Disarmed
  /// sites return false without consuming randomness.
  bool ShouldFire(FaultSite site);

  FaultSiteStats site_stats(FaultSite site) const;

  /// Total fires across all sites.
  int64_t total_fires() const;

  /// One line per armed site: "engine.run: 3/17" (fires/draws).
  std::string Summary() const;

  /// Process-global installation; pass nullptr to uninstall.  Returns the
  /// previously installed injector.
  static FaultInjector* Install(FaultInjector* injector);

  /// The installed injector, or nullptr (the common, fault-free case).
  static FaultInjector* Current();

  /// Convenience for call sites: draws on the installed injector, false
  /// when none is installed.
  static bool Fire(FaultSite site);

 private:
  struct Site {
    FaultSiteConfig config;
    Rng rng{0};
    FaultSiteStats stats;
  };

  mutable std::mutex mu_;
  std::array<Site, kFaultSiteCount> sites_;
};

/// RAII installer: installs `injector` for the enclosing scope and
/// restores the previous one on destruction.
class ScopedFaultInjector {
 public:
  explicit ScopedFaultInjector(FaultInjector* injector)
      : previous_(FaultInjector::Install(injector)) {}
  ~ScopedFaultInjector() { FaultInjector::Install(previous_); }

  ScopedFaultInjector(const ScopedFaultInjector&) = delete;
  ScopedFaultInjector& operator=(const ScopedFaultInjector&) = delete;

 private:
  FaultInjector* previous_;
};

}  // namespace idebench::chaos

#endif  // IDEBENCH_CHAOS_FAULT_INJECTOR_H_
