#ifndef IDEBENCH_CHAOS_FAULT_INJECTOR_H_
#define IDEBENCH_CHAOS_FAULT_INJECTOR_H_

/// \file fault_injector.h
/// Seeded, deterministic fault injection for the chaos harness.
///
/// A `FaultInjector` owns one independent xoshiro stream per *injection
/// site* (forked from a single master seed), so whether a given draw at a
/// given site fires is a pure function of `(seed, site, draw index)` —
/// never of wall time, thread scheduling, or what other sites drew in
/// between.  Two runs with the same seed therefore inject the exact same
/// faults at the exact same points, which is what makes every chaotic
/// schedule replayable (FDB-simulation style).
///
/// Sites are threaded through the layers that matter:
///
///  * `kEnginePrepare` — `EngineBase::Attach` fails with an I/O-style
///    error before binding the catalog (engines recover on re-Prepare);
///  * `kEngineRun` — an engine's `RunFor` wedges the query: the handle
///    stops making progress and `PollResult` reports the fault, which the
///    session scheduler turns into a cancel + resubmit with virtual-time
///    backoff;
///  * `kMorselSlowdown` — `exec::MorselProcess*` degrades to one-batch
///    morsels (maximum merge overhead; results bit-identical by the
///    morsel determinism contract);
///  * `kWorkerPoolStall` — `WorkerPool::ParallelFor` refuses to dispatch
///    and drains the job inline on the calling thread (a stalled pool
///    must degrade, never hang);
///  * `kReusePoison` — a reuse-cache lookup that found a snapshot treats
///    it as corrupt: the entry is dropped and the query pays the physical
///    work (results unchanged by the cache transparency contract);
///  * `kReuseEvictStorm` — a store first evicts every resident snapshot;
///  * `kCsvOpen` / `kCsvAlloc` — `storage::ReadCsv`/`WriteCsv` fail with
///    I/O-style and allocation-style `Status` errors;
///  * `kNetAccept` — the serving loop refuses an incoming connection
///    (accept fails transiently; the listener must keep serving);
///  * `kNetRead` — a connection read fails mid-stream: the server drops
///    the connection and must drain its sessions cleanly;
///  * `kNetWrite` — a connection write fails / the client stops reading:
///    backpressure coalesces partials, finals still reach the queue or
///    the disconnect is counted explicitly;
///  * `kNetPartialFrame` — an outbound frame is split at an arbitrary
///    byte boundary (the decoder must reassemble, never misparse);
///  * `kSegmentOpen` — `storage::SegmentFile::Open` fails before the
///    file descriptor is obtained (transient filesystem error; callers
///    fall back to rebuilding from source data);
///  * `kSegmentMmap` — the mmap of an opened segment file fails (address
///    space exhaustion style; the fd must still be closed);
///  * `kSegmentChecksum` — the footer checksum verification reports a
///    mismatch even though the bytes are intact (torn write / bit rot:
///    the file must be rejected wholesale, never half-loaded);
///  * `kIngestAppend` — `ingest::Ingestor::Append` fails I/O-style
///    before staging any row of the batch (all-or-nothing: a failed
///    append must leave the open epoch exactly as it was);
///  * `kIngestPublish` — `ingest::Ingestor::Publish` fails before moving
///    the watermark: staged rows stay invisible and a later publish
///    picks them up (visibility is atomic or not at all);
///  * `kWalAppend` — a WAL batch record fails *mid-write* (short write /
///    ENOSPC): the writer must truncate back to the record boundary so
///    the log never holds a half-record, and the append must surface an
///    error without staging anything;
///  * `kWalCommit` — a WAL epoch-commit record fails mid-write, same
///    truncate-back contract: a failed publish leaves the log equal to
///    the committed history plus fully-framed batch records;
///  * `kWalFsync` — the fsync that makes a commit durable fails: the
///    commit record is rolled back off the log and the publish reports
///    an I/O error with the watermark unmoved;
///  * `kSegmentWrite` — a segment/manifest file write fails mid-stream
///    (ENOSPC-style): the writer must surface a `Status` error and leave
///    no torn destination file behind (temp files are unlinked).
///
/// Installation is process-global (`Install`/`ScopedFaultInjector`) so
/// deep layers need no plumbing; when nothing is installed every site
/// check is a single relaxed atomic load.  `ShouldFire` serializes draws
/// with a mutex: replayability additionally requires that the *order* of
/// draws per site be deterministic, which holds in chaos runs because all
/// sites are driven from the single scheduling thread.
///
/// Crash simulation: `set_kill_on_fire(true)` turns every fire into an
/// immediate `SIGKILL` of the calling process — the site placements above
/// are deliberately *mid-operation*, so a kill there leaves exactly the
/// torn on-disk state a real crash would (a half-written WAL record, a
/// commit that never synced, a segment temp file).  Combined with
/// `FaultSiteConfig::fire_on_draw` (fire exactly on the Nth draw of a
/// site, no randomness consumed), a (site, draw) pair fully determines
/// the crash point, which is what `crash_runner` sweeps and replays.

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "common/random.h"

namespace idebench::chaos {

/// Named injection sites (stable ordinals: per-site rng streams fork on
/// them, so reordering would change every seeded schedule).
enum class FaultSite : int {
  kEnginePrepare = 0,
  kEngineRun = 1,
  kMorselSlowdown = 2,
  kWorkerPoolStall = 3,
  kReusePoison = 4,
  kReuseEvictStorm = 5,
  kCsvOpen = 6,
  kCsvAlloc = 7,
  kNetAccept = 8,
  kNetRead = 9,
  kNetWrite = 10,
  kNetPartialFrame = 11,
  kSegmentOpen = 12,
  kSegmentMmap = 13,
  kSegmentChecksum = 14,
  kIngestAppend = 15,
  kIngestPublish = 16,
  kWalAppend = 17,
  kWalFsync = 18,
  kWalCommit = 19,
  kSegmentWrite = 20,
};

inline constexpr int kFaultSiteCount = 21;

/// Stable human-readable site name ("engine.prepare", ...).
const char* FaultSiteName(FaultSite site);

/// Per-site arming: fire with `probability` per draw, at most `budget`
/// times (-1 = unlimited).  A zero probability site never draws from its
/// stream, so arming extra sites never perturbs another site's schedule.
///
/// `fire_on_draw >= 0` replaces the probabilistic trigger with an exact
/// one: the site fires on precisely that 0-based draw index and no other,
/// consuming no randomness (the site's rng stream stays untouched, so a
/// deterministic crash point never perturbs a probabilistic schedule).
struct FaultSiteConfig {
  double probability = 0.0;
  int64_t budget = -1;
  int64_t fire_on_draw = -1;
};

/// Per-site telemetry.
struct FaultSiteStats {
  int64_t draws = 0;  // times the site was evaluated while armed
  int64_t fires = 0;  // times it injected
};

class FaultInjector {
 public:
  /// All sites disarmed; arm with `Arm`.
  explicit FaultInjector(uint64_t seed);

  /// Arms one site.
  void Arm(FaultSite site, FaultSiteConfig config);

  /// Arms every site with the same probability and per-site budget.
  void ArmAll(double probability, int64_t budget_per_site = -1);

  /// Deterministic draw: true when the site fires this time.  Disarmed
  /// sites return false without consuming randomness.
  bool ShouldFire(FaultSite site);

  /// Crash mode: when set, any fire raises SIGKILL on the calling process
  /// instead of returning — the process dies exactly at the injection
  /// point, torn state and all.  Used by `crash_runner`'s forked children.
  void set_kill_on_fire(bool kill) { kill_on_fire_ = kill; }

  FaultSiteStats site_stats(FaultSite site) const;

  /// Total fires across all sites.
  int64_t total_fires() const;

  /// One line per armed site: "engine.run: 3/17" (fires/draws).
  std::string Summary() const;

  /// Process-global installation; pass nullptr to uninstall.  Returns the
  /// previously installed injector.
  static FaultInjector* Install(FaultInjector* injector);

  /// The installed injector, or nullptr (the common, fault-free case).
  static FaultInjector* Current();

  /// Convenience for call sites: draws on the installed injector, false
  /// when none is installed.
  static bool Fire(FaultSite site);

 private:
  struct Site {
    FaultSiteConfig config;
    Rng rng{0};
    FaultSiteStats stats;
  };

  mutable std::mutex mu_;
  std::array<Site, kFaultSiteCount> sites_;
  bool kill_on_fire_ = false;
};

/// RAII installer: installs `injector` for the enclosing scope and
/// restores the previous one on destruction.
class ScopedFaultInjector {
 public:
  explicit ScopedFaultInjector(FaultInjector* injector)
      : previous_(FaultInjector::Install(injector)) {}
  ~ScopedFaultInjector() { FaultInjector::Install(previous_); }

  ScopedFaultInjector(const ScopedFaultInjector&) = delete;
  ScopedFaultInjector& operator=(const ScopedFaultInjector&) = delete;

 private:
  FaultInjector* previous_;
};

}  // namespace idebench::chaos

#endif  // IDEBENCH_CHAOS_FAULT_INJECTOR_H_
