#include "chaos/fault_injector.h"

#include <signal.h>
#include <unistd.h>

#include <sstream>

namespace idebench::chaos {

namespace {

std::atomic<FaultInjector*> g_injector{nullptr};

}  // namespace

const char* FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kEnginePrepare:
      return "engine.prepare";
    case FaultSite::kEngineRun:
      return "engine.run";
    case FaultSite::kMorselSlowdown:
      return "exec.morsel_slowdown";
    case FaultSite::kWorkerPoolStall:
      return "exec.worker_pool_stall";
    case FaultSite::kReusePoison:
      return "reuse.poison";
    case FaultSite::kReuseEvictStorm:
      return "reuse.evict_storm";
    case FaultSite::kCsvOpen:
      return "csv.open";
    case FaultSite::kCsvAlloc:
      return "csv.alloc";
    case FaultSite::kNetAccept:
      return "net.accept";
    case FaultSite::kNetRead:
      return "net.read";
    case FaultSite::kNetWrite:
      return "net.write";
    case FaultSite::kNetPartialFrame:
      return "net.partial_frame";
    case FaultSite::kSegmentOpen:
      return "segment.open";
    case FaultSite::kSegmentMmap:
      return "segment.mmap";
    case FaultSite::kSegmentChecksum:
      return "segment.checksum";
    case FaultSite::kIngestAppend:
      return "ingest.append";
    case FaultSite::kIngestPublish:
      return "ingest.publish";
    case FaultSite::kWalAppend:
      return "wal.append";
    case FaultSite::kWalFsync:
      return "wal.fsync";
    case FaultSite::kWalCommit:
      return "wal.commit";
    case FaultSite::kSegmentWrite:
      return "segment.write";
  }
  return "unknown";
}

FaultInjector::FaultInjector(uint64_t seed) {
  // Each site forks its own stream off the master seed: a site's draw
  // sequence depends only on its own draw index, never on how draws at
  // other sites interleave with it.
  Rng master(seed);
  for (int i = 0; i < kFaultSiteCount; ++i) {
    sites_[static_cast<size_t>(i)].rng =
        master.Fork(static_cast<uint64_t>(i) + 1);
  }
}

void FaultInjector::Arm(FaultSite site, FaultSiteConfig config) {
  std::lock_guard<std::mutex> lock(mu_);
  sites_[static_cast<size_t>(site)].config = config;
}

void FaultInjector::ArmAll(double probability, int64_t budget_per_site) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Site& site : sites_) {
    site.config.probability = probability;
    site.config.budget = budget_per_site;
  }
}

bool FaultInjector::ShouldFire(FaultSite site) {
  std::lock_guard<std::mutex> lock(mu_);
  Site& s = sites_[static_cast<size_t>(site)];
  if (s.config.probability <= 0.0 && s.config.fire_on_draw < 0) return false;
  if (s.config.budget >= 0 && s.stats.fires >= s.config.budget) return false;
  ++s.stats.draws;
  if (s.config.fire_on_draw >= 0) {
    // Exact trigger: fire on the configured 0-based draw index only.  No
    // rng draw — the site's stream stays byte-identical to a disarmed run.
    if (s.stats.draws - 1 != s.config.fire_on_draw) return false;
  } else if (!s.rng.Bernoulli(s.config.probability)) {
    return false;
  }
  ++s.stats.fires;
  if (kill_on_fire_) {
    // Crash simulation: die exactly here, mid-operation.  SIGKILL cannot
    // be caught, so no destructor, flush, or fsync runs — the on-disk
    // state is whatever the interrupted operation had already written.
    ::kill(::getpid(), SIGKILL);
  }
  return true;
}

FaultSiteStats FaultInjector::site_stats(FaultSite site) const {
  std::lock_guard<std::mutex> lock(mu_);
  return sites_[static_cast<size_t>(site)].stats;
}

int64_t FaultInjector::total_fires() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t total = 0;
  for (const Site& site : sites_) total += site.stats.fires;
  return total;
}

std::string FaultInjector::Summary() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  for (int i = 0; i < kFaultSiteCount; ++i) {
    const Site& site = sites_[static_cast<size_t>(i)];
    if (site.config.probability <= 0.0 && site.stats.draws == 0) continue;
    if (out.tellp() > 0) out << ", ";
    out << FaultSiteName(static_cast<FaultSite>(i)) << ": "
        << site.stats.fires << "/" << site.stats.draws;
  }
  return out.str();
}

FaultInjector* FaultInjector::Install(FaultInjector* injector) {
  return g_injector.exchange(injector, std::memory_order_acq_rel);
}

FaultInjector* FaultInjector::Current() {
  return g_injector.load(std::memory_order_acquire);
}

bool FaultInjector::Fire(FaultSite site) {
  FaultInjector* injector = Current();
  return injector != nullptr && injector->ShouldFire(site);
}

}  // namespace idebench::chaos
