#include "driver/ground_truth.h"

#include "engines/engine_base.h"
#include "exec/parallel.h"

namespace idebench::driver {

GroundTruthOracle::GroundTruthOracle(
    std::shared_ptr<const storage::Catalog> catalog, int threads)
    : catalog_(std::move(catalog)), threads_(threads) {}

Result<const query::QueryResult*> GroundTruthOracle::Get(
    const query::QuerySpec& spec) {
  const std::string signature = engines::QuerySignature(spec);
  auto it = cache_.find(signature);
  if (it != cache_.end()) {
    ++cache_hits_;
    return it->second.get();
  }

  IDB_ASSIGN_OR_RETURN(std::vector<std::string> dims,
                       exec::BoundQuery::RequiredJoins(spec, *catalog_));
  std::vector<const exec::JoinIndex*> joins;
  for (const std::string& dim : dims) {
    auto join_it = joins_.find(dim);
    if (join_it == joins_.end()) {
      const storage::ForeignKey* fk = catalog_->FindForeignKey(dim);
      if (fk == nullptr) {
        return Status::KeyError("no foreign key to dimension '" + dim + "'");
      }
      IDB_ASSIGN_OR_RETURN(exec::JoinIndex index,
                           exec::JoinIndex::BuildMaterialized(*catalog_, *fk));
      join_it = joins_
                    .emplace(dim, std::make_unique<exec::JoinIndex>(
                                      std::move(index)))
                    .first;
    }
    joins.push_back(join_it->second.get());
  }

  IDB_ASSIGN_OR_RETURN(exec::BoundQuery bound,
                       exec::BoundQuery::Bind(spec, *catalog_, joins));
  exec::BinnedAggregator aggregator(&bound);
  // Morsel-parallel full scan; results do not depend on the thread count
  // (exec/parallel.h), so cached answers are machine-independent.
  exec::MorselProcessRange(&aggregator, 0, catalog_->fact_table()->num_rows(),
                           exec::ResolveThreadCount(threads_));
  auto result = std::make_unique<query::QueryResult>(aggregator.ExactResult());
  result->available = true;
  const query::QueryResult* ptr = result.get();
  cache_.emplace(signature, std::move(result));
  return ptr;
}

}  // namespace idebench::driver
