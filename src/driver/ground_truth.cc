#include "driver/ground_truth.h"

#include <unordered_set>
#include <utility>

#include "engines/engine_base.h"
#include "exec/parallel.h"

namespace idebench::driver {

GroundTruthOracle::GroundTruthOracle(
    std::shared_ptr<const storage::Catalog> catalog, int threads)
    : catalog_(std::move(catalog)), threads_(threads) {}

Result<std::vector<const exec::JoinIndex*>> GroundTruthOracle::JoinsFor(
    const query::QuerySpec& spec) {
  IDB_ASSIGN_OR_RETURN(std::vector<std::string> dims,
                       exec::BoundQuery::RequiredJoins(spec, *catalog_));
  std::vector<const exec::JoinIndex*> joins;
  for (const std::string& dim : dims) {
    auto join_it = joins_.find(dim);
    if (join_it == joins_.end()) {
      const storage::ForeignKey* fk = catalog_->FindForeignKey(dim);
      if (fk == nullptr) {
        return Status::KeyError("no foreign key to dimension '" + dim + "'");
      }
      IDB_ASSIGN_OR_RETURN(exec::JoinIndex index,
                           exec::JoinIndex::BuildMaterialized(*catalog_, *fk));
      join_it = joins_
                    .emplace(dim, std::make_unique<exec::JoinIndex>(
                                      std::move(index)))
                    .first;
    }
    joins.push_back(join_it->second.get());
  }
  return joins;
}

Result<query::QueryResult> GroundTruthOracle::Compute(
    const query::QuerySpec& spec,
    const std::vector<const exec::JoinIndex*>& joins) const {
  IDB_ASSIGN_OR_RETURN(exec::BoundQuery bound,
                       exec::BoundQuery::Bind(spec, *catalog_, joins));
  exec::BinnedAggregator aggregator(&bound);
  // Morsel-parallel full scan; results do not depend on the thread count
  // (exec/parallel.h), so cached answers are machine-independent.  The
  // dispatcher consults the fact columns' zone maps and skips whole
  // morsels the query's filter/bin ranges provably exclude — on the
  // selective ground-truth queries of a warm-up pass most blocks never
  // get scanned, and skipped rows are still accounted so the exact
  // answers are bit-identical to an unpruned scan.
  exec::MorselProcessRange(&aggregator, 0, catalog_->fact_table()->num_rows(),
                           exec::ResolveThreadCount(threads_));
  query::QueryResult result = aggregator.ExactResult();
  result.available = true;
  return result;
}

Result<const query::QueryResult*> GroundTruthOracle::Get(
    const query::QuerySpec& spec) {
  const std::string signature = engines::QuerySignature(spec);
  auto it = cache_.find(signature);
  if (it != cache_.end()) {
    ++cache_hits_;
    return it->second.get();
  }
  IDB_ASSIGN_OR_RETURN(std::vector<const exec::JoinIndex*> joins,
                       JoinsFor(spec));
  IDB_ASSIGN_OR_RETURN(query::QueryResult computed, Compute(spec, joins));
  auto result = std::make_unique<query::QueryResult>(std::move(computed));
  const query::QueryResult* ptr = result.get();
  cache_.emplace(signature, std::move(result));
  return ptr;
}

Status GroundTruthOracle::Warm(const std::vector<query::QuerySpec>& specs) {
  // Collect the uncached work-list (first occurrence per signature) and
  // pre-build every join index serially — the parallel section below must
  // only read frozen state.
  struct Pending {
    const query::QuerySpec* spec = nullptr;
    std::string signature;
    std::vector<const exec::JoinIndex*> joins;
    Result<query::QueryResult> result = query::QueryResult{};
  };
  std::vector<Pending> pending;
  std::unordered_set<std::string> queued;
  for (const query::QuerySpec& spec : specs) {
    std::string signature = engines::QuerySignature(spec);
    if (cache_.count(signature) != 0 || !queued.insert(signature).second) {
      continue;
    }
    Pending p;
    p.spec = &spec;
    p.signature = std::move(signature);
    IDB_ASSIGN_OR_RETURN(p.joins, JoinsFor(spec));
    pending.push_back(std::move(p));
  }
  if (pending.empty()) return Status::OK();

  // One task per query; each task's scan is itself morsel-parallel but
  // runs inline when the pool is saturated by the outer fan-out, so the
  // pool never oversubscribes.
  exec::WorkerPool::Shared().ParallelFor(
      static_cast<int64_t>(pending.size()),
      exec::ResolveThreadCount(threads_), [&](int64_t i) {
        Pending& p = pending[static_cast<size_t>(i)];
        p.result = Compute(*p.spec, p.joins);
      });

  // Fill the cache in input order (deterministic, single-threaded).
  for (Pending& p : pending) {
    IDB_RETURN_NOT_OK(p.result.status());
    cache_.emplace(p.signature,
                   std::make_unique<query::QueryResult>(
                       std::move(p.result).MoveValueUnsafe()));
  }
  return Status::OK();
}

}  // namespace idebench::driver
