#ifndef IDEBENCH_DRIVER_SETTINGS_H_
#define IDEBENCH_DRIVER_SETTINGS_H_

/// \file settings.h
/// Benchmark settings (paper §4.6): time requirement, dataset size,
/// think time, schema layout, confidence level.

#include <cstdint>
#include <string>

#include "common/clock.h"
#include "common/json.h"
#include "common/result.h"

namespace idebench::driver {

/// One benchmark configuration.
struct Settings {
  /// Maximum execution duration of a query; queries exceeding it are
  /// cancelled (default 3 s; the paper sweeps 0.5/1/3/5/10 s).
  Micros time_requirement = 3 * kMicrosPerSecond;

  /// Delay between two consecutive interactions (paper recommends
  /// 3–10 s; the stress experiments use 1 s).
  Micros think_time = 1 * kMicrosPerSecond;

  /// Confidence level at which AQP engines report margins of error.
  double confidence_level = 0.95;

  /// Human-readable dataset size label for reports ("500m").
  std::string data_size_label = "500m";

  /// Whether the catalog is a star schema (reporting only; the catalog
  /// itself determines execution).
  bool use_joins = false;

  /// Per-extra-concurrent-query slowdown factor (0 = perfectly parallel,
  /// the default; the paper's Exp. 4 found no significant concurrency
  /// effect on a 20-core box).  An ablation bench sweeps this.
  double concurrency_penalty = 0.0;

  /// Physical worker threads for the engines' batch execution pipeline
  /// (exec/parallel.h): 1 (default) = the exact single-threaded code
  /// path, 0 = hardware concurrency, n = n-way morsel-parallel
  /// execution.  Affects wall-clock throughput only, never the virtual
  /// cost model; results are identical for every value >= 2 (and 0).
  int threads = 1;

  /// Cross-interaction result-reuse cache (exec/reuse_cache.h): engines
  /// snapshot partial aggregations and resume when a later interaction's
  /// query equals or refines an earlier one.  Displaces physical work
  /// only — the virtual cost model and every result are unchanged — and
  /// defaults off so baseline/oracle runs carry no cache state.
  bool reuse_cache = false;

  /// Concurrent exploration sessions (simulated users/dashboards) served
  /// by one shared engine (session/session.h).  1 (default) = the exact
  /// seed single-client behavior; n > 1 distributes the workflow suite
  /// round-robin over n sessions of one `session::SessionManager`, whose
  /// deadline-aware time-slice scheduler divides compute fairly across
  /// all live queries (shrunk by `concurrency_penalty`) — the paper's
  /// Exp. 4 concurrent-user scenario.
  int sessions = 1;

  /// JSON round-trip for configuration files.
  JsonValue ToJson() const;
  static Result<Settings> FromJson(const JsonValue& j);

  /// Validates ranges.
  Status Validate() const;
};

}  // namespace idebench::driver

#endif  // IDEBENCH_DRIVER_SETTINGS_H_
