#ifndef IDEBENCH_DRIVER_BENCHMARK_DRIVER_H_
#define IDEBENCH_DRIVER_BENCHMARK_DRIVER_H_

/// \file benchmark_driver.h
/// The IDEBench benchmark driver (paper §4.4): simulates workflows on a
/// virtual clock, enforces the time requirement, grants think time,
/// computes ground truth, and evaluates every query into a
/// detailed-report row.
///
/// Since the session-based serving redesign the driver is ONE CLIENT of
/// the `session::SessionManager` API (session/session.h): it opens an
/// `ExplorationSession` per workflow, submits interactions, and consumes
/// pushed `ProgressiveUpdate`s instead of pulling the engine directly.
/// Single-session scheduling (`quantum == 0`) keeps records bit-identical
/// to the pre-session driver (see the seed-parity note in session.h for
/// the one — result-invisible — call-order difference).  With
/// `Settings::sessions > 1`, RunWorkflows
/// multiplexes the workflows over that many concurrent sessions on the
/// shared engine — the paper's Exp. 4 concurrent-user scenario — and the
/// scheduler's fairness telemetry is exposed via `scheduler_stats()`.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "driver/ground_truth.h"
#include "driver/settings.h"
#include "engines/engine.h"
#include "metrics/metrics.h"
#include "session/session.h"
#include "storage/catalog.h"
#include "workflow/resolve.h"
#include "workflow/viz_graph.h"
#include "workflow/workflow.h"

namespace idebench::driver {

/// DEPRECATED forwarding wrapper — the definition moved to
/// `workflow::ResolveQueryAgainst` (workflow/resolve.h) so the session
/// layer shares it; prefer calling that directly.
inline Status ResolveQueryAgainst(const storage::Catalog& catalog,
                                  query::QuerySpec* spec) {
  return workflow::ResolveQueryAgainst(catalog, spec);
}

/// DEPRECATED forwarding wrapper — the definition moved to
/// `workflow::ForEachInteraction` (workflow/resolve.h); prefer calling
/// that directly.
inline Status ForEachInteraction(
    const storage::Catalog& catalog, const workflow::Workflow& wf,
    const std::function<Status(const workflow::Interaction& interaction,
                               int64_t interaction_id,
                               std::vector<query::QuerySpec>& specs)>& fn) {
  return workflow::ForEachInteraction(catalog, wf, fn);
}

/// One row of the detailed report (paper Table 1).
struct QueryRecord {
  int64_t id = 0;               // query identifier
  int64_t interaction_id = 0;   // index of the triggering interaction
  std::string viz_name;
  std::string driver_name;      // engine under test
  std::string data_size;
  Micros think_time = 0;
  Micros time_requirement = 0;
  std::string workflow;
  std::string workflow_type;
  Micros start_time = 0;        // virtual micros since workflow start
  Micros end_time = 0;          // completion or cancellation time
  int bin_dims = 1;
  std::string binning_type;     // "nominal", "quantitative", ...
  std::string agg_type;         // "count", "avg", ...
  int num_concurrent = 1;       // queries triggered by the same interaction
  int session = 0;              // serving session (0 in single-session runs)
  std::string sql;              // the query as SQL text
  double progress = 0.0;        // engine-reported progress at fetch time
  metrics::QueryMetrics metrics;
};

/// Runs workflows against one prepared engine.
class BenchmarkDriver {
 public:
  /// `engine` and `catalog` must outlive the driver.
  BenchmarkDriver(Settings settings, engines::Engine* engine,
                  std::shared_ptr<const storage::Catalog> catalog);

  /// As above, but evaluates against a caller-owned oracle so its exact-
  /// answer cache can be shared across drivers (e.g. one oracle for a
  /// whole time-requirement sweep over the same catalog).
  BenchmarkDriver(Settings settings, engines::Engine* engine,
                  std::shared_ptr<const storage::Catalog> catalog,
                  std::shared_ptr<GroundTruthOracle> oracle);

  /// Installs an alternative time source.  The default is an internal
  /// `VirtualClock` (deterministic, instant).  Installing a `WallClock`
  /// makes the driver pace interactions in real time — think time
  /// actually elapses — which is useful for demos and sanity runs; the
  /// engines' *compute* accounting stays virtual either way.
  void SetClock(Clock* clock) { external_clock_ = clock; }

  /// Calls Engine::Prepare and records the data-preparation time.
  Result<Micros> PrepareEngine();

  /// Data-preparation time reported by Prepare (0 before).
  Micros data_preparation_time() const { return prep_time_; }

  /// Simulates one workflow through a dedicated exploration session;
  /// appends one record per executed query.
  Status RunWorkflow(const workflow::Workflow& workflow,
                     std::vector<QueryRecord>* records);

  /// Runs a list of workflows.  With `Settings::sessions <= 1` the
  /// workflows run sequentially (seed behavior); otherwise they are
  /// distributed round-robin over that many concurrent sessions of one
  /// `session::SessionManager` and executed under the fair time-slice
  /// scheduler.
  Result<std::vector<QueryRecord>> RunWorkflows(
      const std::vector<workflow::Workflow>& workflows);

  const Settings& settings() const { return settings_; }

  /// Scheduler telemetry of the most recent multi-session RunWorkflows
  /// call (zeros for single-session runs).
  const session::SchedulerStats& scheduler_stats() const {
    return scheduler_stats_;
  }

  /// Resolves an executable query against the catalog: resolves bin
  /// boundaries and rewrites nominal predicates expressed as string
  /// labels into the owning column's dictionary codes.  Exposed for
  /// tests and custom drivers.
  Status ResolveQuery(query::QuerySpec* spec) const;

  /// Pre-computes ground truth for every query `workflows` will trigger
  /// by dry-running the visualization graphs (no engine involvement),
  /// then warming the oracle in parallel across queries
  /// (GroundTruthOracle::Warm).  Called automatically by RunWorkflows
  /// when `Settings::threads != 1`; answers are identical either way.
  Status WarmGroundTruth(const std::vector<workflow::Workflow>& workflows);

 private:
  /// The multi-session concurrent run (Settings::sessions > 1).
  Result<std::vector<QueryRecord>> RunWorkflowsConcurrent(
      const std::vector<workflow::Workflow>& workflows);

  /// Builds one detailed-report row from a query's final pushed update.
  Result<QueryRecord> MakeRecord(const session::SubmittedQuery& sq,
                                 const session::ProgressiveUpdate& fin,
                                 const workflow::Workflow& wf,
                                 int64_t interaction_id, int concurrency,
                                 Micros start_time, Micros end_time,
                                 int session_id);

  Settings settings_;
  engines::Engine* engine_;
  std::shared_ptr<const storage::Catalog> catalog_;
  std::shared_ptr<GroundTruthOracle> oracle_;
  Clock* external_clock_ = nullptr;
  Micros prep_time_ = 0;
  int64_t next_query_id_ = 0;
  session::SchedulerStats scheduler_stats_;
};

}  // namespace idebench::driver

#endif  // IDEBENCH_DRIVER_BENCHMARK_DRIVER_H_
