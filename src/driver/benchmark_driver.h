#ifndef IDEBENCH_DRIVER_BENCHMARK_DRIVER_H_
#define IDEBENCH_DRIVER_BENCHMARK_DRIVER_H_

/// \file benchmark_driver.h
/// The IDEBench benchmark driver (paper §4.4): simulates workflows on a
/// virtual clock, delegates interactions to the engine under test,
/// enforces the time requirement (cancelling overdue queries), grants
/// think time, computes ground truth, and evaluates every query into a
/// detailed-report row.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "driver/ground_truth.h"
#include "driver/settings.h"
#include "engines/engine.h"
#include "metrics/metrics.h"
#include "storage/catalog.h"
#include "workflow/viz_graph.h"
#include "workflow/workflow.h"

namespace idebench::driver {

/// Resolves an executable query against `catalog`: resolves bin
/// boundaries and rewrites nominal predicates expressed as string labels
/// into the owning column's dictionary codes (workflow files are portable
/// across catalog layouts; codes are not).  The free-function form of
/// `BenchmarkDriver::ResolveQuery`, shared with test harnesses.
Status ResolveQueryAgainst(const storage::Catalog& catalog,
                           query::QuerySpec* spec);

/// Replays `wf`'s interactions on a fresh dashboard graph and invokes
/// `fn(interaction, interaction_id, specs)` once per interaction in
/// driver order, where `specs` holds the resolved executable query of
/// every affected viz (each spec carries its viz name).  The single
/// definition of "which queries does this workflow trigger" — shared by
/// the benchmark run, the ground-truth warm pass, and the test
/// harnesses, so they can never drift apart.
Status ForEachInteraction(
    const storage::Catalog& catalog, const workflow::Workflow& wf,
    const std::function<Status(const workflow::Interaction& interaction,
                               int64_t interaction_id,
                               std::vector<query::QuerySpec>& specs)>& fn);

/// One row of the detailed report (paper Table 1).
struct QueryRecord {
  int64_t id = 0;               // query identifier
  int64_t interaction_id = 0;   // index of the triggering interaction
  std::string viz_name;
  std::string driver_name;      // engine under test
  std::string data_size;
  Micros think_time = 0;
  Micros time_requirement = 0;
  std::string workflow;
  std::string workflow_type;
  Micros start_time = 0;        // virtual micros since workflow start
  Micros end_time = 0;          // completion or cancellation time
  int bin_dims = 1;
  std::string binning_type;     // "nominal", "quantitative", ...
  std::string agg_type;         // "count", "avg", ...
  int num_concurrent = 1;       // queries triggered by the same interaction
  std::string sql;              // the query as SQL text
  double progress = 0.0;        // engine-reported progress at fetch time
  metrics::QueryMetrics metrics;
};

/// Runs workflows against one prepared engine.
class BenchmarkDriver {
 public:
  /// `engine` and `catalog` must outlive the driver.
  BenchmarkDriver(Settings settings, engines::Engine* engine,
                  std::shared_ptr<const storage::Catalog> catalog);

  /// As above, but evaluates against a caller-owned oracle so its exact-
  /// answer cache can be shared across drivers (e.g. one oracle for a
  /// whole time-requirement sweep over the same catalog).
  BenchmarkDriver(Settings settings, engines::Engine* engine,
                  std::shared_ptr<const storage::Catalog> catalog,
                  std::shared_ptr<GroundTruthOracle> oracle);

  /// Installs an alternative time source.  The default is an internal
  /// `VirtualClock` (deterministic, instant).  Installing a `WallClock`
  /// makes the driver pace interactions in real time — think time
  /// actually elapses — which is useful for demos and sanity runs; the
  /// engines' *compute* accounting stays virtual either way.
  void SetClock(Clock* clock) { external_clock_ = clock; }

  /// Calls Engine::Prepare and records the data-preparation time.
  Result<Micros> PrepareEngine();

  /// Data-preparation time reported by Prepare (0 before).
  Micros data_preparation_time() const { return prep_time_; }

  /// Simulates one workflow; appends one record per executed query.
  Status RunWorkflow(const workflow::Workflow& workflow,
                     std::vector<QueryRecord>* records);

  /// Runs a list of workflows.
  Result<std::vector<QueryRecord>> RunWorkflows(
      const std::vector<workflow::Workflow>& workflows);

  const Settings& settings() const { return settings_; }

  /// Resolves an executable query against the catalog: resolves bin
  /// boundaries and rewrites nominal predicates expressed as string
  /// labels into the owning column's dictionary codes.  Exposed for
  /// tests and custom drivers.
  Status ResolveQuery(query::QuerySpec* spec) const;

  /// Pre-computes ground truth for every query `workflows` will trigger
  /// by dry-running the visualization graphs (no engine involvement),
  /// then warming the oracle in parallel across queries
  /// (GroundTruthOracle::Warm).  Called automatically by RunWorkflows
  /// when `Settings::threads != 1`; answers are identical either way.
  Status WarmGroundTruth(const std::vector<workflow::Workflow>& workflows);

 private:
  Settings settings_;
  engines::Engine* engine_;
  std::shared_ptr<const storage::Catalog> catalog_;
  std::shared_ptr<GroundTruthOracle> oracle_;
  Clock* external_clock_ = nullptr;
  Micros prep_time_ = 0;
  int64_t next_query_id_ = 0;
};

}  // namespace idebench::driver

#endif  // IDEBENCH_DRIVER_BENCHMARK_DRIVER_H_
