#include "driver/settings.h"

namespace idebench::driver {

JsonValue Settings::ToJson() const {
  JsonValue j = JsonValue::Object();
  j.Set("time_requirement_s", MicrosToSeconds(time_requirement));
  j.Set("think_time_s", MicrosToSeconds(think_time));
  j.Set("confidence_level", confidence_level);
  j.Set("data_size_label", data_size_label);
  j.Set("use_joins", use_joins);
  j.Set("concurrency_penalty", concurrency_penalty);
  j.Set("threads", static_cast<double>(threads));
  j.Set("reuse_cache", reuse_cache);
  j.Set("sessions", static_cast<double>(sessions));
  return j;
}

Result<Settings> Settings::FromJson(const JsonValue& j) {
  if (!j.is_object()) return Status::Invalid("settings must be an object");
  Settings s;
  s.time_requirement = SecondsToMicros(j.GetDouble("time_requirement_s", 3.0));
  s.think_time = SecondsToMicros(j.GetDouble("think_time_s", 1.0));
  s.confidence_level = j.GetDouble("confidence_level", 0.95);
  s.data_size_label = j.GetString("data_size_label", "500m");
  s.use_joins = j.GetBool("use_joins", false);
  s.concurrency_penalty = j.GetDouble("concurrency_penalty", 0.0);
  s.threads = static_cast<int>(j.GetDouble("threads", 1.0));
  s.reuse_cache = j.GetBool("reuse_cache", false);
  s.sessions = static_cast<int>(j.GetDouble("sessions", 1.0));
  IDB_RETURN_NOT_OK(s.Validate());
  return s;
}

Status Settings::Validate() const {
  if (time_requirement <= 0) {
    return Status::Invalid("time_requirement must be positive");
  }
  if (think_time < 0) return Status::Invalid("think_time must be >= 0");
  if (confidence_level <= 0.0 || confidence_level >= 1.0) {
    return Status::Invalid("confidence_level must be in (0, 1)");
  }
  if (concurrency_penalty < 0.0) {
    return Status::Invalid("concurrency_penalty must be >= 0");
  }
  if (threads < 0) {
    return Status::Invalid("threads must be >= 0 (0 = hardware concurrency)");
  }
  if (sessions < 1) {
    return Status::Invalid("sessions must be >= 1");
  }
  return Status::OK();
}

}  // namespace idebench::driver
