#include "driver/benchmark_driver.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "common/logging.h"
#include "query/sql.h"

namespace idebench::driver {

using query::QuerySpec;
using workflow::Interaction;
using workflow::Workflow;

namespace {

/// Round-robin time slice of the multi-session scheduler (virtual
/// micros).  Coarse enough that slicing overhead stays negligible, fine
/// enough that 64 sessions interleave visibly within one time
/// requirement.  Single-session runs use quantum 0 (seed-exact turns).
constexpr Micros kMultiSessionQuantum = 100'000;

/// Collects the final pushed update of every query of one session.
class FinalsSink : public session::ResultSink {
 public:
  void OnUpdate(const session::ProgressiveUpdate& update) override {
    if (update.final_update) finals_[update.query_id] = update;
  }

  const session::ProgressiveUpdate* Final(int64_t query_id) const {
    auto it = finals_.find(query_id);
    return it == finals_.end() ? nullptr : &it->second;
  }

 private:
  std::unordered_map<int64_t, session::ProgressiveUpdate> finals_;
};

/// Space-separated binning kinds, e.g. "quantitative quantitative".
std::string BinningTypeLabel(const QuerySpec& spec) {
  std::string out;
  for (size_t i = 0; i < spec.bins.size(); ++i) {
    if (i > 0) out += " ";
    out += spec.bins[i].mode == query::BinningMode::kNominal ? "nominal"
                                                             : "quantitative";
  }
  return out;
}

std::string AggTypeLabel(const QuerySpec& spec) {
  std::string out;
  for (size_t i = 0; i < spec.aggregates.size(); ++i) {
    if (i > 0) out += " ";
    out += query::AggregateTypeName(spec.aggregates[i].type);
  }
  return out;
}

}  // namespace

BenchmarkDriver::BenchmarkDriver(
    Settings settings, engines::Engine* engine,
    std::shared_ptr<const storage::Catalog> catalog)
    : settings_(std::move(settings)),
      engine_(engine),
      catalog_(std::move(catalog)),
      // The oracle inherits the configured execution parallelism; its
      // answers are thread-count independent (morsel path), so this only
      // affects cold-start wall-clock time.
      oracle_(std::make_shared<GroundTruthOracle>(catalog_,
                                                  settings_.threads)) {}

BenchmarkDriver::BenchmarkDriver(
    Settings settings, engines::Engine* engine,
    std::shared_ptr<const storage::Catalog> catalog,
    std::shared_ptr<GroundTruthOracle> oracle)
    : settings_(std::move(settings)),
      engine_(engine),
      catalog_(std::move(catalog)),
      oracle_(std::move(oracle)) {}

Result<Micros> BenchmarkDriver::PrepareEngine() {
  IDB_ASSIGN_OR_RETURN(prep_time_, engine_->Prepare(catalog_));
  return prep_time_;
}

Status BenchmarkDriver::ResolveQuery(query::QuerySpec* spec) const {
  return workflow::ResolveQueryAgainst(*catalog_, spec);
}

Status BenchmarkDriver::WarmGroundTruth(
    const std::vector<Workflow>& workflows) {
  // Dry-run the dashboard graphs to enumerate every query the workflows
  // will trigger; graph application is engine-independent and cheap next
  // to the full scans the oracle runs.
  std::vector<query::QuerySpec> specs;
  for (const Workflow& wf : workflows) {
    IDB_RETURN_NOT_OK(workflow::ForEachInteraction(
        *catalog_, wf,
        [&](const Interaction&, int64_t, std::vector<query::QuerySpec>& s) {
          for (query::QuerySpec& spec : s) specs.push_back(std::move(spec));
          return Status::OK();
        }));
  }
  return oracle_->Warm(specs);
}

Result<QueryRecord> BenchmarkDriver::MakeRecord(
    const session::SubmittedQuery& sq, const session::ProgressiveUpdate& fin,
    const Workflow& wf, int64_t interaction_id, int concurrency,
    Micros start_time, Micros end_time, int session_id) {
  const query::QueryResult& result = fin.result;
  const bool tr_violated = !result.available;
  IDB_ASSIGN_OR_RETURN(const query::QueryResult* truth, oracle_->Get(sq.spec));

  QueryRecord record;
  record.id = next_query_id_++;
  record.interaction_id = interaction_id;
  record.viz_name = sq.spec.viz_name;
  record.driver_name = engine_->name();
  record.data_size = settings_.data_size_label;
  record.think_time = settings_.think_time;
  record.time_requirement = settings_.time_requirement;
  record.workflow = wf.name;
  record.workflow_type = workflow::WorkflowTypeName(wf.type);
  record.start_time = start_time;
  record.end_time = end_time;
  record.bin_dims = static_cast<int>(sq.spec.bins.size());
  record.binning_type = BinningTypeLabel(sq.spec);
  record.agg_type = AggTypeLabel(sq.spec);
  record.num_concurrent = concurrency;
  record.session = session_id;
  record.sql = query::GenerateSql(sq.spec, *catalog_);
  record.progress = result.progress;
  record.metrics = metrics::Evaluate(result, *truth, tr_violated);
  return record;
}

Status BenchmarkDriver::RunWorkflow(const Workflow& wf,
                                    std::vector<QueryRecord>* records) {
  // One exploration session per workflow on a single-session manager in
  // seed-parity mode: quantum 0 (run-to-entitlement turns) keeps results
  // and records bit-identical to the pre-session driver (see the
  // seed-parity note in session.h).
  session::SessionManagerOptions mopts;
  mopts.time_requirement = settings_.time_requirement;
  mopts.contention_penalty = settings_.concurrency_penalty;
  mopts.quantum = 0;
  mopts.push_partials = false;  // the driver consumes final updates only
  mopts.confidence_level = settings_.confidence_level;
  // The sink must outlive the manager: an error-path unwind destroys the
  // manager, whose implicit close touches the registered sinks.
  FinalsSink sink;
  session::SessionManager manager(mopts, engine_, catalog_);
  IDB_ASSIGN_OR_RETURN(session::ExplorationSession * sess,
                       manager.CreateSession(&sink));

  // Default deterministic time source; SetClock can substitute a
  // WallClock to pace the workflow in real time.
  VirtualClock internal_clock;
  Clock* clock = external_clock_ != nullptr
                     ? external_clock_
                     : static_cast<Clock*>(&internal_clock);
  const Micros workflow_epoch = clock->Now();

  for (size_t i = 0; i < wf.interactions.size(); ++i) {
    IDB_ASSIGN_OR_RETURN(std::vector<session::SubmittedQuery> submitted,
                         sess->SubmitInteraction(wf.interactions[i]));
    // All queries of one interaction run concurrently under the
    // scheduler; each completes or is cancelled at its deadline.
    IDB_RETURN_NOT_OK(manager.RunUntilIdle());

    const int concurrency = static_cast<int>(submitted.size());
    const Micros now = clock->Now() - workflow_epoch;
    for (const session::SubmittedQuery& sq : submitted) {
      const session::ProgressiveUpdate* fin = sink.Final(sq.query_id);
      if (fin == nullptr) {
        return Status::Unknown("no final update for submitted query");
      }
      // Legacy timing: completed queries end after their consumed
      // compute; overdue (and unsupported) ones occupy the full budget.
      const Micros end =
          now + (fin->completed ? std::min(fin->consumed, fin->budget)
                                : fin->budget);
      IDB_ASSIGN_OR_RETURN(
          QueryRecord record,
          MakeRecord(sq, *fin, wf, static_cast<int64_t>(i), concurrency, now,
                     end, /*session_id=*/0));
      records->push_back(std::move(record));
    }

    // Think time separates consecutive interactions; speculative engines
    // may spend it.  A wall clock actually sleeps here.
    sess->Think(settings_.think_time);
    clock->Advance(settings_.think_time);
  }

  return manager.CloseSession(sess);
}

Result<std::vector<QueryRecord>> BenchmarkDriver::RunWorkflowsConcurrent(
    const std::vector<Workflow>& workflows) {
  const int sessions = std::max(
      1, std::min<int>(settings_.sessions,
                       static_cast<int>(workflows.size())));

  session::SessionManagerOptions mopts;
  mopts.time_requirement = settings_.time_requirement;
  mopts.contention_penalty = settings_.concurrency_penalty;
  mopts.quantum = kMultiSessionQuantum;
  mopts.push_partials = false;  // the driver consumes final updates only
  mopts.confidence_level = settings_.confidence_level;

  /// One concurrent user: a session replaying its share of the workflow
  /// suite, one interaction at a time, with think time between them.
  struct SessionRun {
    session::ExplorationSession* sess = nullptr;
    FinalsSink sink;
    std::vector<const Workflow*> queue;  // round-robin share of the suite
    size_t wf = 0;                       // current workflow in `queue`
    size_t inter = 0;                    // next interaction in it
    Micros ready_at = 0;                 // next submission time (idle only)
    bool busy = false;                   // a batch awaits final updates
    std::vector<session::SubmittedQuery> batch;
    const Workflow* batch_wf = nullptr;
    int64_t batch_interaction = 0;
    Micros batch_start = 0;
    std::vector<QueryRecord> records;
  };

  // The runs (and their sinks) must outlive the manager: an error-path
  // unwind destroys the manager, whose implicit close touches the
  // registered sinks.
  std::vector<SessionRun> runs(static_cast<size_t>(sessions));
  session::SessionManager manager(mopts, engine_, catalog_);
  for (size_t i = 0; i < workflows.size(); ++i) {
    runs[i % runs.size()].queue.push_back(&workflows[i]);
  }
  for (SessionRun& r : runs) {
    IDB_ASSIGN_OR_RETURN(r.sess, manager.CreateSession(&r.sink));
  }

  const Micros kNever = std::numeric_limits<Micros>::max();
  auto has_more = [](const SessionRun& r) { return r.wf < r.queue.size(); };

  // Resolves every busy session whose batch has all its final updates:
  // builds records, grants think time, and computes the next ready time.
  auto resolve_batches = [&]() -> Status {
    for (SessionRun& r : runs) {
      if (!r.busy) continue;
      Micros last_final = r.batch_start;
      bool complete = true;
      for (const session::SubmittedQuery& sq : r.batch) {
        const session::ProgressiveUpdate* fin = r.sink.Final(sq.query_id);
        if (fin == nullptr) {
          complete = false;
          break;
        }
        last_final = std::max(last_final, fin->virtual_time);
      }
      if (!complete) continue;
      const int concurrency = static_cast<int>(r.batch.size());
      const int session_id = static_cast<int>(r.sess->id());
      for (const session::SubmittedQuery& sq : r.batch) {
        const session::ProgressiveUpdate* fin = r.sink.Final(sq.query_id);
        // Scheduler-timeline timing: interactions occupy real virtual
        // time here (unlike the instant single-session clock), so start
        // is the admission time and end the finalization time — exactly
        // submit + TR for deadline cancellations.
        IDB_ASSIGN_OR_RETURN(
            QueryRecord record,
            MakeRecord(sq, *fin, *r.batch_wf, r.batch_interaction,
                       concurrency, r.batch_start, fin->virtual_time,
                       session_id));
        r.records.push_back(std::move(record));
      }
      r.batch.clear();
      r.busy = false;
      r.sess->Think(settings_.think_time);
      r.ready_at =
          std::max(last_final, manager.VirtualNow()) + settings_.think_time;
    }
    return Status::OK();
  };

  while (true) {
    // Submit for every idle session whose ready time has arrived; loop
    // until quiescent (instantly-resolved batches may re-ready sessions).
    bool progressed = true;
    while (progressed) {
      progressed = false;
      for (SessionRun& r : runs) {
        if (r.busy || !has_more(r) || r.ready_at > manager.VirtualNow()) {
          continue;
        }
        const Workflow& wf = *r.queue[r.wf];
        if (r.inter >= wf.interactions.size()) {
          // Workflow boundary: the user starts a fresh exploration on an
          // empty dashboard (the per-workflow graph reset of the
          // sequential driver, scoped to this session).
          r.sess->ResetDashboard();
          r.inter = 0;
          ++r.wf;
          progressed = true;
          continue;
        }
        const int64_t interaction_id = static_cast<int64_t>(r.inter);
        IDB_ASSIGN_OR_RETURN(
            std::vector<session::SubmittedQuery> submitted,
            r.sess->SubmitInteraction(wf.interactions[r.inter]));
        ++r.inter;  // the boundary branch above handles workflow wrap
        if (submitted.empty()) {
          // No queries triggered (e.g. a discard): think and move on.
          r.sess->Think(settings_.think_time);
          r.ready_at = manager.VirtualNow() + settings_.think_time;
          progressed = true;
          continue;
        }
        r.batch = std::move(submitted);
        r.batch_wf = &wf;
        r.batch_interaction = interaction_id;
        r.batch_start = manager.VirtualNow();
        r.busy = true;
        progressed = true;
      }
      IDB_RETURN_NOT_OK(resolve_batches());
    }

    bool any_work = false;
    Micros next_ready = kNever;
    for (const SessionRun& r : runs) {
      if (r.busy) {
        any_work = true;
      } else if (has_more(r)) {
        any_work = true;
        next_ready = std::min(next_ready, r.ready_at);
      }
    }
    if (!any_work) break;

    if (manager.HasLive()) {
      // Run until the next finalization (a session may become ready) or
      // the next submission time, whichever comes first.
      IDB_ASSIGN_OR_RETURN(int finalized, manager.StepUntilEvent(next_ready));
      (void)finalized;
      IDB_RETURN_NOT_OK(resolve_batches());
    } else {
      // Nothing executing: skip the idle gap to the next submission.
      IDB_CHECK(next_ready != kNever);
      IDB_RETURN_NOT_OK(manager.AdvanceTo(next_ready));
    }
  }

  std::vector<QueryRecord> records;
  for (SessionRun& r : runs) {
    for (QueryRecord& record : r.records) records.push_back(std::move(record));
  }
  for (SessionRun& r : runs) {
    IDB_RETURN_NOT_OK(manager.CloseSession(r.sess));
  }
  scheduler_stats_ = manager.stats();
  return records;
}

Result<std::vector<QueryRecord>> BenchmarkDriver::RunWorkflows(
    const std::vector<Workflow>& workflows) {
  // Cold-start bottleneck: the oracle's per-query full scans.  With
  // physical parallelism configured, compute them across queries up
  // front (ROADMAP: "parallelize ground-truth warm-up across queries");
  // the per-query answers are identical either way.
  if (settings_.threads != 1) {
    IDB_RETURN_NOT_OK(WarmGroundTruth(workflows));
  }
  if (settings_.sessions > 1) {
    return RunWorkflowsConcurrent(workflows);
  }
  std::vector<QueryRecord> records;
  for (const Workflow& wf : workflows) {
    IDB_RETURN_NOT_OK(RunWorkflow(wf, &records));
  }
  return records;
}

}  // namespace idebench::driver
