#include "driver/benchmark_driver.h"

#include <algorithm>

#include "common/logging.h"
#include "query/sql.h"

namespace idebench::driver {

using query::QuerySpec;
using workflow::Interaction;
using workflow::InteractionType;

BenchmarkDriver::BenchmarkDriver(
    Settings settings, engines::Engine* engine,
    std::shared_ptr<const storage::Catalog> catalog)
    : settings_(std::move(settings)),
      engine_(engine),
      catalog_(std::move(catalog)),
      // The oracle inherits the configured execution parallelism; its
      // answers are thread-count independent (morsel path), so this only
      // affects cold-start wall-clock time.
      oracle_(std::make_shared<GroundTruthOracle>(catalog_,
                                                  settings_.threads)) {}

BenchmarkDriver::BenchmarkDriver(
    Settings settings, engines::Engine* engine,
    std::shared_ptr<const storage::Catalog> catalog,
    std::shared_ptr<GroundTruthOracle> oracle)
    : settings_(std::move(settings)),
      engine_(engine),
      catalog_(std::move(catalog)),
      oracle_(std::move(oracle)) {}

Result<Micros> BenchmarkDriver::PrepareEngine() {
  IDB_ASSIGN_OR_RETURN(prep_time_, engine_->Prepare(catalog_));
  return prep_time_;
}

Status ResolveQueryAgainst(const storage::Catalog& catalog,
                           query::QuerySpec* spec) {
  IDB_RETURN_NOT_OK(spec->ResolveBins(catalog));
  // Rewrite label-based nominal predicates to the owning column's
  // dictionary codes (workflow files are portable across catalog layouts;
  // codes are not).
  std::vector<expr::Predicate> rewritten;
  for (expr::Predicate p : spec->filter.predicates()) {
    if (!p.string_values.empty()) {
      IDB_ASSIGN_OR_RETURN(const storage::Table* owner,
                           catalog.TableForColumn(p.column));
      const storage::Column* col = owner->ColumnByName(p.column);
      if (col != nullptr && col->type() == storage::DataType::kString) {
        if (p.op == expr::CompareOp::kIn) {
          p.set_values.clear();
          for (const std::string& label : p.string_values) {
            const int64_t code = col->dictionary().Lookup(label);
            // Labels unknown in this catalog select nothing; encode as an
            // impossible code rather than dropping the predicate.
            p.set_values.push_back(code >= 0 ? static_cast<double>(code)
                                             : -1.0);
          }
        } else {
          const int64_t code = col->dictionary().Lookup(p.string_values[0]);
          p.value = code >= 0 ? static_cast<double>(code) : -1.0;
        }
      }
    }
    rewritten.push_back(std::move(p));
  }
  spec->filter = expr::FilterExpr(std::move(rewritten));
  return Status::OK();
}

Status BenchmarkDriver::ResolveQuery(query::QuerySpec* spec) const {
  return ResolveQueryAgainst(*catalog_, spec);
}

Status ForEachInteraction(
    const storage::Catalog& catalog, const workflow::Workflow& wf,
    const std::function<Status(const workflow::Interaction& interaction,
                               int64_t interaction_id,
                               std::vector<query::QuerySpec>& specs)>& fn) {
  workflow::VizGraph graph;
  for (size_t i = 0; i < wf.interactions.size(); ++i) {
    const Interaction& interaction = wf.interactions[i];
    std::vector<std::string> affected;
    IDB_RETURN_NOT_OK(graph.Apply(interaction, &affected));
    std::vector<query::QuerySpec> specs;
    specs.reserve(affected.size());
    for (const std::string& viz_name : affected) {
      IDB_ASSIGN_OR_RETURN(query::QuerySpec spec, graph.BuildQuery(viz_name));
      IDB_RETURN_NOT_OK(ResolveQueryAgainst(catalog, &spec));
      specs.push_back(std::move(spec));
    }
    IDB_RETURN_NOT_OK(fn(interaction, static_cast<int64_t>(i), specs));
  }
  return Status::OK();
}

Status BenchmarkDriver::WarmGroundTruth(
    const std::vector<workflow::Workflow>& workflows) {
  // Dry-run the dashboard graphs to enumerate every query the workflows
  // will trigger; graph application is engine-independent and cheap next
  // to the full scans the oracle runs.
  std::vector<query::QuerySpec> specs;
  for (const workflow::Workflow& wf : workflows) {
    IDB_RETURN_NOT_OK(ForEachInteraction(
        *catalog_, wf,
        [&](const Interaction&, int64_t, std::vector<query::QuerySpec>& s) {
          for (query::QuerySpec& spec : s) specs.push_back(std::move(spec));
          return Status::OK();
        }));
  }
  return oracle_->Warm(specs);
}

namespace {

/// Space-separated binning kinds, e.g. "quantitative quantitative".
std::string BinningTypeLabel(const QuerySpec& spec) {
  std::string out;
  for (size_t i = 0; i < spec.bins.size(); ++i) {
    if (i > 0) out += " ";
    out += spec.bins[i].mode == query::BinningMode::kNominal ? "nominal"
                                                             : "quantitative";
  }
  return out;
}

std::string AggTypeLabel(const QuerySpec& spec) {
  std::string out;
  for (size_t i = 0; i < spec.aggregates.size(); ++i) {
    if (i > 0) out += " ";
    out += query::AggregateTypeName(spec.aggregates[i].type);
  }
  return out;
}

}  // namespace

Status BenchmarkDriver::RunWorkflow(const workflow::Workflow& wf,
                                    std::vector<QueryRecord>* records) {
  engine_->WorkflowStart();
  // Default deterministic time source; SetClock can substitute a
  // WallClock to pace the workflow in real time.
  VirtualClock internal_clock;
  Clock* clock = external_clock_ != nullptr
                     ? external_clock_
                     : static_cast<Clock*>(&internal_clock);
  const Micros workflow_epoch = clock->Now();

  IDB_RETURN_NOT_OK(ForEachInteraction(
      *catalog_, wf,
      [&](const Interaction& interaction, int64_t interaction_id,
          std::vector<QuerySpec>& specs) -> Status {
    // Forward dashboard hints.
    if (interaction.type == InteractionType::kLink) {
      engine_->LinkVizs(interaction.link_from, interaction.link_to);
    } else if (interaction.type == InteractionType::kDiscard) {
      engine_->DiscardViz(interaction.viz_name);
    }

    // Submit one query per affected viz.  All queries of one interaction
    // run concurrently.
    struct InFlight {
      QuerySpec spec;
      engines::QueryHandle handle = -1;
      Micros consumed = 0;
      bool done = false;
      bool unsupported = false;
    };
    std::vector<InFlight> inflight;
    for (QuerySpec& spec : specs) {
      InFlight q;
      q.spec = std::move(spec);
      auto submit = engine_->Submit(q.spec);
      if (!submit.ok()) {
        if (submit.status().code() == StatusCode::kNotImplemented) {
          // The engine cannot run this query at all; report it as a
          // time-requirement violation with nothing delivered.
          q.unsupported = true;
          inflight.push_back(std::move(q));
          continue;
        }
        return submit.status();
      }
      q.handle = submit.ValueOrDie();
      inflight.push_back(std::move(q));
    }

    // Grant each concurrent query its TR budget (optionally shrunk by the
    // contention ablation knob).
    const int concurrency = static_cast<int>(inflight.size());
    Micros budget = settings_.time_requirement;
    if (concurrency > 1 && settings_.concurrency_penalty > 0.0) {
      budget = static_cast<Micros>(
          static_cast<double>(budget) /
          (1.0 + settings_.concurrency_penalty *
                     static_cast<double>(concurrency - 1)));
    }
    for (InFlight& q : inflight) {
      if (q.unsupported) continue;
      while (q.consumed < budget && !engine_->IsDone(q.handle)) {
        const Micros step = engine_->RunFor(q.handle, budget - q.consumed);
        if (step <= 0) break;
        q.consumed += step;
      }
      q.done = engine_->IsDone(q.handle);
    }

    // Fetch, evaluate and cancel.
    for (InFlight& q : inflight) {
      query::QueryResult result;  // unavailable by default
      if (!q.unsupported) {
        IDB_ASSIGN_OR_RETURN(result, engine_->PollResult(q.handle));
      }
      const bool tr_violated = !result.available;

      IDB_ASSIGN_OR_RETURN(const query::QueryResult* truth,
                           oracle_->Get(q.spec));

      QueryRecord record;
      record.id = next_query_id_++;
      record.interaction_id = static_cast<int64_t>(interaction_id);
      record.viz_name = q.spec.viz_name;
      record.driver_name = engine_->name();
      record.data_size = settings_.data_size_label;
      record.think_time = settings_.think_time;
      record.time_requirement = settings_.time_requirement;
      record.workflow = wf.name;
      record.workflow_type = workflow::WorkflowTypeName(wf.type);
      const Micros now = clock->Now() - workflow_epoch;
      record.start_time = now;
      record.end_time =
          now + (q.done ? std::min(q.consumed, budget) : budget);
      record.bin_dims = static_cast<int>(q.spec.bins.size());
      record.binning_type = BinningTypeLabel(q.spec);
      record.agg_type = AggTypeLabel(q.spec);
      record.num_concurrent = concurrency;
      record.sql = query::GenerateSql(q.spec, *catalog_);
      record.progress = result.progress;
      record.metrics = metrics::Evaluate(result, *truth, tr_violated);
      records->push_back(std::move(record));

      // Queries that exceed TR are cancelled (paper §4.7); completed ones
      // are released as the frontend has consumed their result.
      if (!q.unsupported) engine_->Cancel(q.handle);
    }

    // Think time separates consecutive interactions; speculative engines
    // may spend it.  A wall clock actually sleeps here.
    engine_->OnThink(settings_.think_time);
    clock->Advance(settings_.think_time);
    return Status::OK();
  }));

  engine_->WorkflowEnd();
  return Status::OK();
}

Result<std::vector<QueryRecord>> BenchmarkDriver::RunWorkflows(
    const std::vector<workflow::Workflow>& workflows) {
  // Cold-start bottleneck: the oracle's per-query full scans.  With
  // physical parallelism configured, compute them across queries up
  // front (ROADMAP: "parallelize ground-truth warm-up across queries");
  // the per-query answers are identical either way.
  if (settings_.threads != 1) {
    IDB_RETURN_NOT_OK(WarmGroundTruth(workflows));
  }
  std::vector<QueryRecord> records;
  for (const workflow::Workflow& wf : workflows) {
    IDB_RETURN_NOT_OK(RunWorkflow(wf, &records));
  }
  return records;
}

}  // namespace idebench::driver
