#ifndef IDEBENCH_DRIVER_GROUND_TRUTH_H_
#define IDEBENCH_DRIVER_GROUND_TRUTH_H_

/// \file ground_truth.h
/// The exact-answer oracle all quality metrics compare against.  It runs
/// the shared operators directly over the materialized data (no clock, no
/// cost model) and caches answers by canonical query signature.

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "exec/aggregator.h"
#include "query/result.h"
#include "query/spec.h"
#include "storage/catalog.h"

namespace idebench::driver {

/// Exact-answer oracle with a signature-keyed cache.
class GroundTruthOracle {
 public:
  /// `threads` is the physical parallelism of the full-table scan each
  /// uncached query runs (the slowest cold-start step of the benchmark
  /// driver): 0 (default) = hardware concurrency.  The scan always uses
  /// the morsel-parallel path, whose results are independent of the
  /// thread count — oracle answers are reproducible across machines.
  explicit GroundTruthOracle(std::shared_ptr<const storage::Catalog> catalog,
                             int threads = 0);

  /// Exact answer for `spec` (bins must be resolved).  The returned
  /// pointer stays valid for the oracle's lifetime.
  Result<const query::QueryResult*> Get(const query::QuerySpec& spec);

  /// Pre-computes the answers for every uncached spec in `specs`,
  /// parallelizing *across queries* on the shared worker pool (each
  /// query's own scan additionally uses the morsel path) — the warm-up
  /// bottleneck of a cold benchmark run is many independent full scans.
  /// Answers are identical to sequential `Get` calls: each query runs
  /// the same thread-count-independent morsel scan, and the cache is
  /// filled in deterministic (input) order.
  Status Warm(const std::vector<query::QuerySpec>& specs);

  /// Number of oracle executions that hit the cache.
  int64_t cache_hits() const { return cache_hits_; }

  /// Number of cached answers.
  int64_t cache_size() const { return static_cast<int64_t>(cache_.size()); }

 private:
  /// Returns (building and caching if needed) the join indexes `spec`
  /// requires, in RequiredJoins order.
  Result<std::vector<const exec::JoinIndex*>> JoinsFor(
      const query::QuerySpec& spec);

  /// Computes the exact answer (no cache interaction).
  Result<query::QueryResult> Compute(
      const query::QuerySpec& spec,
      const std::vector<const exec::JoinIndex*>& joins) const;
  std::shared_ptr<const storage::Catalog> catalog_;
  int threads_ = 0;
  std::unordered_map<std::string, std::unique_ptr<exec::JoinIndex>> joins_;
  std::unordered_map<std::string, std::unique_ptr<query::QueryResult>> cache_;
  int64_t cache_hits_ = 0;
};

}  // namespace idebench::driver

#endif  // IDEBENCH_DRIVER_GROUND_TRUTH_H_
