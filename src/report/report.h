#ifndef IDEBENCH_REPORT_REPORT_H_
#define IDEBENCH_REPORT_REPORT_H_

/// \file report.h
/// Report generation (paper §4.8): a detailed per-query report (Table 1)
/// and an aggregated summary report (Figure 5) with the mean-relative-
/// error CDF and its area-above-the-curve statistic.

#include <string>
#include <vector>

#include "common/result.h"
#include "driver/benchmark_driver.h"
#include "session/session.h"

namespace idebench::report {

/// CSV header of the detailed report (Table 1 columns).
std::string DetailedReportHeader();

/// One detailed-report CSV row.
std::string DetailedReportRow(const driver::QueryRecord& record);

/// Writes the detailed report to `path`.
Status WriteDetailedReport(const std::vector<driver::QueryRecord>& records,
                           const std::string& path);

/// Renders the first `limit` detailed rows as an aligned text table.
std::string RenderDetailedTable(const std::vector<driver::QueryRecord>& records,
                                size_t limit = 30);

/// Aggregated statistics for one group of queries (one cell of the
/// summary report).
struct SummaryRow {
  std::string group;
  int64_t queries = 0;
  double tr_violation_rate = 0.0;
  double mean_missing_bins = 0.0;   // over non-violating queries
  double median_mre = 0.0;          // over non-violating queries
  double mean_mre = 0.0;
  /// Area above the CDF of MREs truncated at 100 % — the smaller, the
  /// better (Figure 5).
  double area_above_cdf = 0.0;
  double median_margin = 0.0;
  double mean_cosine_distance = 0.0;
  double mean_bias = 1.0;
  double out_of_margin_rate = 0.0;  // share of value pairs out of margin
  double mean_smape = 0.0;
};

/// Aggregates `records` into one summary row labeled `group`.
SummaryRow Summarize(const std::string& group,
                     const std::vector<const driver::QueryRecord*>& records);

/// Convenience: group records by a key function and summarize each group
/// (groups appear in first-encounter order).
template <typename KeyFn>
std::vector<SummaryRow> SummarizeBy(
    const std::vector<driver::QueryRecord>& records, KeyFn key_fn) {
  std::vector<std::string> order;
  std::vector<std::vector<const driver::QueryRecord*>> buckets;
  for (const driver::QueryRecord& r : records) {
    const std::string key = key_fn(r);
    size_t idx = 0;
    for (; idx < order.size(); ++idx) {
      if (order[idx] == key) break;
    }
    if (idx == order.size()) {
      order.push_back(key);
      buckets.emplace_back();
    }
    buckets[idx].push_back(&r);
  }
  std::vector<SummaryRow> rows;
  rows.reserve(order.size());
  for (size_t i = 0; i < order.size(); ++i) {
    rows.push_back(Summarize(order[i], buckets[i]));
  }
  return rows;
}

/// Renders summary rows as an aligned text table.
std::string RenderSummaryTable(const std::vector<SummaryRow>& rows);

/// Renders reuse-cache telemetry as one compact line, e.g.
/// "reuse cache: 12 equal + 7 refinement hits, 31 misses, 19 stores,
/// 2 evictions, 48123 rows served, 11 entries".
std::string RenderReuseStats(const metrics::ReuseCacheStats& stats);

/// Renders multi-session scheduler telemetry (session/session.h) as one
/// compact line, e.g. "scheduler: 16 sessions, 640 queries (598 completed,
/// 40 cancelled at TR, 0 client-cancelled, 2 unsupported), 640 updates,
/// max deadline overshoot 0 us, virtual time 312.4 s".
std::string RenderSessionStats(const session::SchedulerStats& stats);

/// Empirical CDF of the (non-violating) queries' MREs evaluated at
/// `points` equally spaced thresholds in [0, 1].
std::vector<double> MreCdf(
    const std::vector<const driver::QueryRecord*>& records, int points = 21);

/// Renders a CDF as a compact ASCII sparkline-style row.
std::string RenderCdf(const std::vector<double>& cdf);

}  // namespace idebench::report

#endif  // IDEBENCH_REPORT_REPORT_H_
