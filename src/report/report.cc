#include "report/report.h"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "common/string_util.h"

namespace idebench::report {

std::string DetailedReportHeader() {
  return "id,interaction,viz_name,driver,data_size,think_time,time_req,"
         "workflow,workflow_type,start_time,end_time,tr_violated,bin_dims,"
         "binning_type,agg_type,num_concurrent,session,bins_delivered,"
         "bins_in_gt,bins_ofm,rel_error_avg,rel_error_stdev,smape,"
         "missing_bins,cosine_distance,margin_avg,margin_stdev,bias,progress";
}

std::string DetailedReportRow(const driver::QueryRecord& r) {
  const metrics::QueryMetrics& m = r.metrics;
  return StringPrintf(
      "%lld,%lld,%s,%s,%s,%lld,%lld,%s,%s,%lld,%lld,%s,%d,%s,%s,%d,%d,%lld,"
      "%lld,%lld,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f",
      static_cast<long long>(r.id), static_cast<long long>(r.interaction_id),
      r.viz_name.c_str(), r.driver_name.c_str(), r.data_size.c_str(),
      static_cast<long long>(r.think_time / 1000),
      static_cast<long long>(r.time_requirement / 1000), r.workflow.c_str(),
      r.workflow_type.c_str(), static_cast<long long>(r.start_time / 1000),
      static_cast<long long>(r.end_time / 1000),
      m.tr_violated ? "TRUE" : "FALSE", r.bin_dims, r.binning_type.c_str(),
      r.agg_type.c_str(), r.num_concurrent, r.session,
      static_cast<long long>(m.bins_delivered),
      static_cast<long long>(m.bins_in_gt),
      static_cast<long long>(m.bins_out_of_margin), m.mean_rel_error,
      m.rel_error_stdev, m.smape, m.missing_bins, m.cosine_distance,
      m.mean_margin_rel, m.margin_stdev, m.bias, r.progress);
}

Status WriteDetailedReport(const std::vector<driver::QueryRecord>& records,
                           const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  out << DetailedReportHeader() << "\n";
  for (const driver::QueryRecord& r : records) {
    out << DetailedReportRow(r) << "\n";
  }
  if (!out) return Status::IOError("write to '" + path + "' failed");
  return Status::OK();
}

std::string RenderDetailedTable(const std::vector<driver::QueryRecord>& records,
                                size_t limit) {
  std::string out = StringPrintf(
      "%-4s %-5s %-8s %-12s %-6s %-6s %-5s %-22s %-6s %-6s %-7s %-7s %-7s "
      "%-7s\n",
      "id", "inter", "viz", "driver", "dims", "aggs", "tr!", "binning",
      "bins", "gt", "mre", "miss", "cos", "margin");
  const size_t n = std::min(limit, records.size());
  for (size_t i = 0; i < n; ++i) {
    const driver::QueryRecord& r = records[i];
    const metrics::QueryMetrics& m = r.metrics;
    out += StringPrintf(
        "%-4lld %-5lld %-8s %-12s %-6d %-6s %-5s %-22s %-6lld %-6lld %-7.3f "
        "%-7.3f %-7.3f %-7.3f\n",
        static_cast<long long>(r.id),
        static_cast<long long>(r.interaction_id), r.viz_name.c_str(),
        r.driver_name.c_str(), r.bin_dims, r.agg_type.c_str(),
        m.tr_violated ? "yes" : "no", r.binning_type.c_str(),
        static_cast<long long>(m.bins_delivered),
        static_cast<long long>(m.bins_in_gt), m.mean_rel_error,
        m.missing_bins, m.cosine_distance, m.mean_margin_rel);
  }
  if (records.size() > n) {
    out += StringPrintf("... (%zu more rows)\n", records.size() - n);
  }
  return out;
}

namespace {

double MedianOf(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const size_t n = values.size();
  return n % 2 == 1 ? values[n / 2]
                    : 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

}  // namespace

SummaryRow Summarize(const std::string& group,
                     const std::vector<const driver::QueryRecord*>& records) {
  SummaryRow row;
  row.group = group;
  row.queries = static_cast<int64_t>(records.size());
  if (records.empty()) return row;

  int64_t violations = 0;
  std::vector<double> mres;
  std::vector<double> margins;
  std::vector<double> missing;
  std::vector<double> cosines;
  std::vector<double> smapes;
  std::vector<double> biases;
  int64_t ofm = 0;
  int64_t delivered = 0;

  for (const driver::QueryRecord* r : records) {
    const metrics::QueryMetrics& m = r->metrics;
    if (m.tr_violated) {
      ++violations;
      continue;
    }
    // Quality statistics cover only queries within the time requirement
    // (paper §4.8).
    mres.push_back(m.mean_rel_error);
    margins.push_back(m.mean_margin_rel);
    missing.push_back(m.missing_bins);
    cosines.push_back(m.cosine_distance);
    smapes.push_back(m.smape);
    biases.push_back(m.bias);
    ofm += m.bins_out_of_margin;
    delivered += m.bins_delivered;
  }

  row.tr_violation_rate = static_cast<double>(violations) /
                          static_cast<double>(records.size());
  auto mean_of = [](const std::vector<double>& v) {
    if (v.empty()) return 0.0;
    double s = 0.0;
    for (double x : v) s += x;
    return s / static_cast<double>(v.size());
  };
  row.mean_missing_bins = mean_of(missing);
  row.median_mre = MedianOf(mres);
  row.mean_mre = mean_of(mres);
  row.median_margin = MedianOf(margins);
  row.mean_cosine_distance = mean_of(cosines);
  row.mean_smape = mean_of(smapes);
  row.mean_bias = biases.empty() ? 1.0 : mean_of(biases);
  row.out_of_margin_rate =
      delivered > 0 ? static_cast<double>(ofm) / static_cast<double>(delivered)
                    : 0.0;
  // Area above the truncated CDF equals the mean of min(error, 1).
  double area = 0.0;
  for (double e : mres) area += std::min(e, 1.0);
  row.area_above_cdf = mres.empty() ? 0.0 : area / static_cast<double>(mres.size());
  return row;
}

std::string RenderSummaryTable(const std::vector<SummaryRow>& rows) {
  std::string out = StringPrintf(
      "%-28s %7s %8s %9s %8s %8s %9s %9s %8s %8s\n", "group", "queries",
      "tr_viol", "missing", "mre_med", "mre_avg", "area>cdf", "margin",
      "cosine", "ofm");
  for (const SummaryRow& r : rows) {
    out += StringPrintf(
        "%-28s %7lld %8s %9s %8.3f %8.3f %9s %9.3f %8.3f %8s\n",
        r.group.c_str(), static_cast<long long>(r.queries),
        FormatPercent(r.tr_violation_rate).c_str(),
        FormatPercent(r.mean_missing_bins).c_str(), r.median_mre, r.mean_mre,
        FormatPercent(r.area_above_cdf).c_str(), r.median_margin,
        r.mean_cosine_distance, FormatPercent(r.out_of_margin_rate).c_str());
  }
  return out;
}

std::string RenderSessionStats(const session::SchedulerStats& stats) {
  return StringPrintf(
      "scheduler: %lld sessions, %lld queries (%lld completed, %lld "
      "cancelled at TR, %lld client-cancelled, %lld unsupported), %lld "
      "updates (%lld partial), max deadline overshoot %lld us, virtual "
      "time %.1f s",
      static_cast<long long>(stats.sessions_opened),
      static_cast<long long>(stats.queries_submitted),
      static_cast<long long>(stats.completed),
      static_cast<long long>(stats.deadline_cancelled),
      static_cast<long long>(stats.client_cancelled),
      static_cast<long long>(stats.unsupported),
      static_cast<long long>(stats.updates_pushed),
      static_cast<long long>(stats.partial_updates),
      static_cast<long long>(stats.max_deadline_overshoot),
      MicrosToSeconds(stats.virtual_now));
}

std::string RenderReuseStats(const metrics::ReuseCacheStats& stats) {
  return StringPrintf(
      "reuse cache: %lld equal + %lld refinement hits, %lld misses, "
      "%lld stores, %lld evictions, %lld rows served, %lld entries",
      static_cast<long long>(stats.equal_hits),
      static_cast<long long>(stats.refinement_hits),
      static_cast<long long>(stats.misses),
      static_cast<long long>(stats.stores),
      static_cast<long long>(stats.evictions),
      static_cast<long long>(stats.rows_served),
      static_cast<long long>(stats.entries));
}

std::vector<double> MreCdf(
    const std::vector<const driver::QueryRecord*>& records, int points) {
  std::vector<double> mres;
  for (const driver::QueryRecord* r : records) {
    if (!r->metrics.tr_violated) mres.push_back(r->metrics.mean_rel_error);
  }
  std::vector<double> cdf(static_cast<size_t>(std::max(points, 2)), 0.0);
  if (mres.empty()) return cdf;
  std::sort(mres.begin(), mres.end());
  for (int i = 0; i < points; ++i) {
    const double threshold =
        static_cast<double>(i) / static_cast<double>(points - 1);
    const auto it = std::upper_bound(mres.begin(), mres.end(), threshold);
    cdf[static_cast<size_t>(i)] =
        static_cast<double>(it - mres.begin()) /
        static_cast<double>(mres.size());
  }
  return cdf;
}

std::string RenderCdf(const std::vector<double>& cdf) {
  static const char* kBlocks[] = {" ", "▁", "▂", "▃", "▄", "▅", "▆", "▇", "█"};
  std::string out;
  for (double v : cdf) {
    const int level = static_cast<int>(std::round(v * 8.0));
    out += kBlocks[std::clamp(level, 0, 8)];
  }
  return out;
}

}  // namespace idebench::report
