#ifndef IDEBENCH_EXPR_PREDICATE_H_
#define IDEBENCH_EXPR_PREDICATE_H_

/// \file predicate.h
/// Filter predicates over single columns, and conjunctions thereof.
///
/// IDE frontends build *conjunctive* filters incrementally: brushing a
/// histogram adds a range predicate, clicking a bar adds an equality or
/// set predicate (paper §2.2).  A `FilterExpr` is therefore a conjunction
/// of per-column `Predicate`s; that is exactly the class of WHERE clauses
/// IDEBench generates (Figure 4).

#include <string>
#include <vector>

#include "common/json.h"
#include "common/result.h"
#include "storage/table.h"

namespace idebench::expr {

/// Comparison operator of a single predicate.
enum class CompareOp : uint8_t {
  kEq = 0,        // column == value           (nominal or quantitative)
  kNeq = 1,       // column != value
  kLt = 2,        // column <  value
  kLe = 3,        // column <= value
  kGt = 4,        // column >  value
  kGe = 5,        // column >= value
  kRange = 6,     // lo <= column < hi          (brushed quantitative range)
  kIn = 7,        // column IN (set)            (multi-selected nominal bins)
};

/// Returns the benchmark's stable name of `op` ("eq", "range", ...).
const char* CompareOpName(CompareOp op);

/// Parses the stable name back to an operator.
Result<CompareOp> CompareOpFromName(const std::string& name);

/// A predicate over one column.  Values are expressed in the column's
/// numeric view (dictionary codes for strings); `string_values` carries the
/// human-readable literals for SQL rendering of nominal predicates.
struct Predicate {
  std::string column;
  CompareOp op = CompareOp::kEq;
  double value = 0.0;   // kEq..kGe
  double lo = 0.0;      // kRange
  double hi = 0.0;      // kRange (exclusive)
  std::vector<double> set_values;            // kIn (numeric view)
  std::vector<std::string> string_values;    // kIn / kEq on nominal columns

  /// True when the numeric-view value `v` satisfies the predicate.
  bool Matches(double v) const;

  /// Renders the predicate as a SQL boolean expression.  `table` (optional)
  /// is used to decode dictionary codes into string literals.
  std::string ToSql(const storage::Table* table) const;

  /// JSON round-trip (workflow specification format).
  JsonValue ToJson() const;
  static Result<Predicate> FromJson(const JsonValue& j);

  bool operator==(const Predicate& other) const;
};

/// True when satisfying `a` guarantees satisfying `b` (sound, not
/// complete: false negatives are allowed, false positives are not).
/// Covers the shapes IDE frontends generate: identical predicates, point
/// predicates (kEq, kIn) checked against `b` directly, and range
/// containment against ranges and ordering operators.  Predicates on
/// different columns never imply each other.
bool Implies(const Predicate& a, const Predicate& b);

/// A conjunction of predicates, possibly over columns of several tables
/// (the driver resolves tables at execution time).
class FilterExpr {
 public:
  FilterExpr() = default;
  explicit FilterExpr(std::vector<Predicate> predicates)
      : predicates_(std::move(predicates)) {}

  /// True when no predicates are present (matches everything).
  bool empty() const { return predicates_.empty(); }

  /// Number of predicates.
  size_t size() const { return predicates_.size(); }

  const std::vector<Predicate>& predicates() const { return predicates_; }

  /// Adds a conjunct.
  void And(Predicate p) { predicates_.push_back(std::move(p)); }

  /// Replaces any existing predicate(s) on `p.column` with `p` — the
  /// "refine filter" interaction in IDE frontends.
  void ReplaceOn(Predicate p);

  /// Removes all predicates on `column`.
  void RemoveOn(const std::string& column);

  /// Columns referenced by this filter (deduplicated, in first-use order).
  std::vector<std::string> Columns() const;

  /// Row test against a single table that must own all referenced columns.
  bool Matches(const storage::Table& table, int64_t row) const;

  /// Renders "a >= 1 AND a < 5 AND c = 'AA'"; empty string when empty.
  std::string ToSql(const storage::Table* table) const;

  /// JSON round-trip.
  JsonValue ToJson() const;
  static Result<FilterExpr> FromJson(const JsonValue& j);

  bool operator==(const FilterExpr& other) const {
    return predicates_ == other.predicates_;
  }

 private:
  std::vector<Predicate> predicates_;
};

/// True when conjunction `a` refines conjunction `b`: every predicate of
/// `b` is implied by some predicate of `a`, so every row matching `a`
/// also matches `b`.  Equal filters trivially refine each other.
bool Refines(const FilterExpr& a, const FilterExpr& b);

}  // namespace idebench::expr

#endif  // IDEBENCH_EXPR_PREDICATE_H_
