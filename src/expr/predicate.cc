#include "expr/predicate.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace idebench::expr {

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "eq";
    case CompareOp::kNeq:
      return "neq";
    case CompareOp::kLt:
      return "lt";
    case CompareOp::kLe:
      return "le";
    case CompareOp::kGt:
      return "gt";
    case CompareOp::kGe:
      return "ge";
    case CompareOp::kRange:
      return "range";
    case CompareOp::kIn:
      return "in";
  }
  return "unknown";
}

Result<CompareOp> CompareOpFromName(const std::string& name) {
  static const std::pair<const char*, CompareOp> kOps[] = {
      {"eq", CompareOp::kEq},   {"neq", CompareOp::kNeq},
      {"lt", CompareOp::kLt},   {"le", CompareOp::kLe},
      {"gt", CompareOp::kGt},   {"ge", CompareOp::kGe},
      {"range", CompareOp::kRange}, {"in", CompareOp::kIn},
  };
  for (const auto& [n, op] : kOps) {
    if (name == n) return op;
  }
  return Status::Invalid("unknown compare op '" + name + "'");
}

bool Predicate::Matches(double v) const {
  switch (op) {
    case CompareOp::kEq:
      return v == value;
    case CompareOp::kNeq:
      return v != value;
    case CompareOp::kLt:
      return v < value;
    case CompareOp::kLe:
      return v <= value;
    case CompareOp::kGt:
      return v > value;
    case CompareOp::kGe:
      return v >= value;
    case CompareOp::kRange:
      return v >= lo && v < hi;
    case CompareOp::kIn:
      return std::find(set_values.begin(), set_values.end(), v) !=
             set_values.end();
  }
  return false;
}

namespace {

/// Renders a numeric-view value as a SQL literal, decoding dictionary
/// codes back to quoted strings when the column is nominal.
std::string SqlLiteral(const storage::Table* table, const std::string& column,
                       double v, const std::vector<std::string>& strings,
                       size_t string_index) {
  if (string_index < strings.size()) {
    return "'" + strings[string_index] + "'";
  }
  if (table != nullptr) {
    const storage::Column* col = table->ColumnByName(column);
    if (col != nullptr && col->type() == storage::DataType::kString) {
      const int64_t code = static_cast<int64_t>(v);
      if (code >= 0 && code < col->dictionary().size()) {
        return "'" + col->dictionary().At(code) + "'";
      }
    }
  }
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    return std::to_string(static_cast<long long>(v));
  }
  return FormatDouble(v, 6);
}

const char* SqlOp(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNeq:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
    default:
      return "?";
  }
}

}  // namespace

std::string Predicate::ToSql(const storage::Table* table) const {
  switch (op) {
    case CompareOp::kRange:
      return "(" + column + " >= " +
             SqlLiteral(table, column, lo, {}, 1) + " AND " + column + " < " +
             SqlLiteral(table, column, hi, {}, 1) + ")";
    case CompareOp::kIn: {
      std::vector<std::string> lits;
      lits.reserve(set_values.size());
      for (size_t i = 0; i < set_values.size(); ++i) {
        lits.push_back(
            SqlLiteral(table, column, set_values[i], string_values, i));
      }
      return column + " IN (" + Join(lits, ", ") + ")";
    }
    default:
      return column + " " + SqlOp(op) + " " +
             SqlLiteral(table, column, value, string_values, 0);
  }
}

JsonValue Predicate::ToJson() const {
  JsonValue j = JsonValue::Object();
  j.Set("column", column);
  j.Set("op", CompareOpName(op));
  switch (op) {
    case CompareOp::kRange:
      j.Set("lo", lo);
      j.Set("hi", hi);
      break;
    case CompareOp::kIn: {
      JsonValue arr = JsonValue::Array();
      for (double v : set_values) arr.Append(v);
      j.Set("values", std::move(arr));
      if (!string_values.empty()) {
        JsonValue sarr = JsonValue::Array();
        for (const auto& s : string_values) sarr.Append(s);
        j.Set("labels", std::move(sarr));
      }
      break;
    }
    default:
      j.Set("value", value);
      if (!string_values.empty()) j.Set("label", string_values[0]);
  }
  return j;
}

Result<Predicate> Predicate::FromJson(const JsonValue& j) {
  if (!j.is_object()) return Status::Invalid("predicate must be an object");
  Predicate p;
  p.column = j.GetString("column", "");
  if (p.column.empty()) return Status::Invalid("predicate missing 'column'");
  IDB_ASSIGN_OR_RETURN(p.op, CompareOpFromName(j.GetString("op", "eq")));
  switch (p.op) {
    case CompareOp::kRange:
      p.lo = j.GetDouble("lo", 0.0);
      p.hi = j.GetDouble("hi", 0.0);
      break;
    case CompareOp::kIn: {
      const JsonValue& arr = j.Get("values");
      for (size_t i = 0; i < arr.size(); ++i) {
        p.set_values.push_back(arr.at(i).AsDouble());
      }
      const JsonValue& labels = j.Get("labels");
      for (size_t i = 0; i < labels.size(); ++i) {
        p.string_values.push_back(labels.at(i).AsString());
      }
      break;
    }
    default:
      p.value = j.GetDouble("value", 0.0);
      if (j.Has("label")) p.string_values.push_back(j.GetString("label", ""));
  }
  return p;
}

bool Predicate::operator==(const Predicate& other) const {
  return column == other.column && op == other.op && value == other.value &&
         lo == other.lo && hi == other.hi && set_values == other.set_values &&
         string_values == other.string_values;
}

bool Implies(const Predicate& a, const Predicate& b) {
  if (a.column != b.column) return false;
  if (a == b) return true;
  if (!a.string_values.empty() || !b.string_values.empty()) {
    // Label-carrying nominal predicates: reason over the labels, never
    // the numeric view — it may be unresolved (a default 0.0 would make
    // distinct labels wrongly imply each other).
    if (a.string_values.empty() || b.string_values.empty()) return false;
    const bool point_ops = (a.op == CompareOp::kEq || a.op == CompareOp::kIn) &&
                           (b.op == CompareOp::kEq || b.op == CompareOp::kIn);
    if (!point_ops) return false;
    const size_t a_labels = a.op == CompareOp::kEq ? 1 : a.string_values.size();
    for (size_t i = 0; i < a_labels && i < a.string_values.size(); ++i) {
      const std::string& label = a.string_values[i];
      const size_t b_labels =
          b.op == CompareOp::kEq ? 1 : b.string_values.size();
      bool found = false;
      for (size_t j = 0; j < b_labels && j < b.string_values.size(); ++j) {
        if (b.string_values[j] == label) {
          found = true;
          break;
        }
      }
      if (!found) return false;
    }
    return true;
  }
  switch (a.op) {
    case CompareOp::kEq:
      // a pins the column to one value: implied iff b accepts it.
      return b.Matches(a.value);
    case CompareOp::kIn: {
      // Every member of a's set must satisfy b.
      if (a.set_values.empty()) return false;
      for (double v : a.set_values) {
        if (!b.Matches(v)) return false;
      }
      return true;
    }
    case CompareOp::kRange:
      // a constrains the column to [lo, hi); check b accepts the whole
      // interval.  (Empty a-intervals are not special-cased: the checks
      // below remain sound for them.)
      switch (b.op) {
        case CompareOp::kRange:
          return a.lo >= b.lo && a.hi <= b.hi;
        case CompareOp::kGe:
          return a.lo >= b.value;
        case CompareOp::kGt:
          return a.lo > b.value;
        case CompareOp::kLt:
          return a.hi <= b.value;
        case CompareOp::kLe:
          // v < a.hi <= b.value ensures v <= b.value.
          return a.hi <= b.value;
        case CompareOp::kNeq:
          return b.value < a.lo || b.value >= a.hi;
        default:
          return false;
      }
    case CompareOp::kLt:
      return (b.op == CompareOp::kLt || b.op == CompareOp::kLe) &&
             a.value <= b.value;
    case CompareOp::kLe:
      // v <= a.value implies v < b.value only past a strict gap.
      return (b.op == CompareOp::kLe && a.value <= b.value) ||
             (b.op == CompareOp::kLt && a.value < b.value);
    case CompareOp::kGt:
      return (b.op == CompareOp::kGt || b.op == CompareOp::kGe) &&
             a.value >= b.value;
    case CompareOp::kGe:
      // v >= a.value implies v > b.value only past a strict gap.
      return (b.op == CompareOp::kGe && a.value >= b.value) ||
             (b.op == CompareOp::kGt && a.value > b.value);
    default:
      return false;
  }
}

bool Refines(const FilterExpr& a, const FilterExpr& b) {
  for (const Predicate& pb : b.predicates()) {
    bool implied = false;
    for (const Predicate& pa : a.predicates()) {
      if (Implies(pa, pb)) {
        implied = true;
        break;
      }
    }
    if (!implied) return false;
  }
  return true;
}

void FilterExpr::ReplaceOn(Predicate p) {
  RemoveOn(p.column);
  predicates_.push_back(std::move(p));
}

void FilterExpr::RemoveOn(const std::string& column) {
  predicates_.erase(
      std::remove_if(predicates_.begin(), predicates_.end(),
                     [&](const Predicate& p) { return p.column == column; }),
      predicates_.end());
}

std::vector<std::string> FilterExpr::Columns() const {
  std::vector<std::string> cols;
  for (const Predicate& p : predicates_) {
    if (std::find(cols.begin(), cols.end(), p.column) == cols.end()) {
      cols.push_back(p.column);
    }
  }
  return cols;
}

bool FilterExpr::Matches(const storage::Table& table, int64_t row) const {
  for (const Predicate& p : predicates_) {
    const storage::Column* col = table.ColumnByName(p.column);
    if (col == nullptr) return false;
    if (!p.Matches(col->ValueAsDouble(row))) return false;
  }
  return true;
}

std::string FilterExpr::ToSql(const storage::Table* table) const {
  std::vector<std::string> parts;
  parts.reserve(predicates_.size());
  for (const Predicate& p : predicates_) parts.push_back(p.ToSql(table));
  return Join(parts, " AND ");
}

JsonValue FilterExpr::ToJson() const {
  JsonValue arr = JsonValue::Array();
  for (const Predicate& p : predicates_) arr.Append(p.ToJson());
  return arr;
}

Result<FilterExpr> FilterExpr::FromJson(const JsonValue& j) {
  if (!j.is_array()) return Status::Invalid("filter must be an array");
  FilterExpr f;
  for (size_t i = 0; i < j.size(); ++i) {
    IDB_ASSIGN_OR_RETURN(Predicate p, Predicate::FromJson(j.at(i)));
    f.And(std::move(p));
  }
  return f;
}

}  // namespace idebench::expr
