/// \file workflow_authoring.cpp
/// Workflow tooling walkthrough: generate the paper's default workflow
/// suite, save a workflow to its JSON file format (Figure 4), load it
/// back, and inspect the SQL the benchmark driver would issue for every
/// interaction — the IDEBench "interactive viewer" as a terminal tool.
///
/// Usage: example_workflow_authoring [output.json]

#include <cstdio>
#include <iostream>

#include "core/dataset.h"
#include "query/sql.h"
#include "workflow/generator.h"
#include "workflow/viz_graph.h"

using namespace idebench;

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "generated_workflow.json";

  core::DatasetConfig dataset = core::SmallDataset();
  dataset.actual_rows = 40'000;
  dataset.seed_rows = 20'000;
  auto catalog = core::BuildFlightsCatalog(dataset);
  if (!catalog.ok()) {
    std::cerr << catalog.status() << "\n";
    return 1;
  }

  // Generate one workflow per type and report their shapes.
  workflow::GeneratorConfig config;
  workflow::WorkflowGenerator generator((*catalog)->fact_table(), config,
                                        /*seed=*/2026);
  std::printf("%-14s %12s %8s %8s %8s %8s\n", "type", "interactions",
              "creates", "filters", "selects", "links");
  std::vector<workflow::Workflow> suite;
  for (workflow::WorkflowType type : workflow::AllWorkflowTypes()) {
    auto wf = generator.Generate(type, std::string("demo_") +
                                           workflow::WorkflowTypeName(type));
    if (!wf.ok()) {
      std::cerr << wf.status() << "\n";
      return 1;
    }
    int counts[5] = {0, 0, 0, 0, 0};
    for (const auto& i : wf->interactions) {
      ++counts[static_cast<int>(i.type)];
    }
    std::printf("%-14s %12zu %8d %8d %8d %8d\n",
                workflow::WorkflowTypeName(type), wf->size(), counts[0],
                counts[1], counts[2], counts[3]);
    suite.push_back(std::move(wf).MoveValueUnsafe());
  }

  // Save the 1:N workflow and load it back (the benchmark file format).
  const workflow::Workflow& one_to_n = suite[2];
  if (auto st = one_to_n.SaveToFile(path); !st.ok()) {
    std::cerr << st << "\n";
    return 1;
  }
  auto loaded = workflow::Workflow::LoadFromFile(path);
  if (!loaded.ok()) {
    std::cerr << loaded.status() << "\n";
    return 1;
  }
  std::printf("\nsaved + reloaded '%s' (%zu interactions) -> %s\n",
              loaded->name.c_str(), loaded->size(), path.c_str());

  // Replay the workflow through a viz graph and print, per interaction,
  // which visualizations update and the SQL each would run.
  std::printf("\nreplay with SQL translation:\n");
  workflow::VizGraph graph;
  for (size_t i = 0; i < loaded->interactions.size() && i < 8; ++i) {
    const workflow::Interaction& interaction = loaded->interactions[i];
    std::vector<std::string> affected;
    if (auto st = graph.Apply(interaction, &affected); !st.ok()) {
      std::cerr << st << "\n";
      return 1;
    }
    std::printf("%2zu. %-14s -> %zu update(s)\n", i,
                workflow::InteractionTypeName(interaction.type),
                affected.size());
    for (const std::string& viz : affected) {
      auto query = graph.BuildQuery(viz);
      if (!query.ok()) continue;
      if (auto st = query->ResolveBins(**catalog); !st.ok()) continue;
      std::printf("      %s\n",
                  query::GenerateSql(*query, **catalog).c_str());
    }
  }

  std::printf("\nfirst interaction as JSON (the Figure 4 format):\n%s\n",
              loaded->interactions[0].ToJson().DumpPretty().c_str());
  return 0;
}
