/// \file custom_adapter.cpp
/// Implementing a system adapter (paper §4.5, Listing 1).
///
/// To benchmark your own engine, implement the `engines::Engine`
/// interface — the C++ rendering of the paper's `SampleAdapter` stub.
/// This example writes a deliberately naive adapter ("InstantEngine": an
/// oracle-like engine with a fixed per-query latency and a uniform-noise
/// error injection) and runs the full benchmark driver against it,
/// demonstrating that the harness accepts third-party systems.

#include <cstdio>
#include <iostream>
#include <unordered_map>

#include "core/dataset.h"
#include "driver/benchmark_driver.h"
#include "engines/engine.h"
#include "exec/aggregator.h"
#include "exec/bound_query.h"
#include "report/report.h"
#include "workflow/generator.h"

using namespace idebench;

namespace {

/// A toy system under test: computes exact answers instantly (well — for
/// a fixed 200 ms virtual latency) and then perturbs them by +/-5 % to
/// emulate a lossy transport.  Useful as a template: every method shows
/// the minimal contract a real adapter must fulfill.
class InstantEngine : public engines::Engine {
 public:
  const std::string& name() const override { return name_; }

  Result<Micros> Prepare(
      std::shared_ptr<const storage::Catalog> catalog) override {
    catalog_ = std::move(catalog);
    // 1. translate/copy data into the system: free for this toy.
    return Micros{0};
  }

  Result<engines::QueryHandle> Submit(const query::QuerySpec& spec) override {
    // 2. translate to a query format understood by the system + execute.
    RunningQuery rq;
    rq.spec = spec;
    IDB_ASSIGN_OR_RETURN(exec::BoundQuery bound,
                         exec::BoundQuery::Bind(rq.spec, *catalog_));
    exec::BinnedAggregator aggregator(&bound);
    aggregator.ProcessRange(0, catalog_->fact_table()->num_rows());
    rq.result = aggregator.ExactResult();
    rq.result.available = true;
    // Perturb estimates to emulate an approximate transport.
    for (auto& [key, bin] : rq.result.bins) {
      for (auto& value : bin.values) {
        const double noise = 0.95 + 0.1 * rng_.NextDouble();
        value.estimate *= noise;
        value.margin = 0.03 * std::abs(value.estimate);
      }
    }
    rq.result.exact = false;
    const engines::QueryHandle handle = next_handle_++;
    queries_.emplace(handle, std::move(rq));
    return handle;
  }

  Micros RunFor(engines::QueryHandle handle, Micros budget) override {
    auto it = queries_.find(handle);
    if (it == queries_.end() || it->second.latency_remaining <= 0) return 0;
    const Micros spent = std::min(budget, it->second.latency_remaining);
    it->second.latency_remaining -= spent;
    return spent;
  }

  bool IsDone(engines::QueryHandle handle) const override {
    auto it = queries_.find(handle);
    return it != queries_.end() && it->second.latency_remaining == 0;
  }

  Result<query::QueryResult> PollResult(engines::QueryHandle handle) override {
    auto it = queries_.find(handle);
    if (it == queries_.end()) return Status::KeyError("unknown handle");
    if (it->second.latency_remaining > 0) {
      query::QueryResult pending;  // 3. fetch result: not ready yet
      return pending;
    }
    return it->second.result;  // 4. write results back to the driver
  }

  void Cancel(engines::QueryHandle handle) override {
    queries_.erase(handle);  // free memory, if applicable
  }

 private:
  struct RunningQuery {
    query::QuerySpec spec;
    query::QueryResult result;
    Micros latency_remaining = 200'000;  // fixed 200 ms per query
  };

  std::string name_ = "instant";
  std::shared_ptr<const storage::Catalog> catalog_;
  std::unordered_map<engines::QueryHandle, RunningQuery> queries_;
  engines::QueryHandle next_handle_ = 1;
  Rng rng_{99};
};

}  // namespace

int main() {
  core::DatasetConfig dataset = core::SmallDataset();
  dataset.actual_rows = 40'000;
  dataset.seed_rows = 20'000;
  auto catalog = core::BuildFlightsCatalog(dataset);
  if (!catalog.ok()) {
    std::cerr << catalog.status() << "\n";
    return 1;
  }

  workflow::GeneratorConfig generator_config;
  workflow::WorkflowGenerator generator((*catalog)->fact_table(),
                                        generator_config, 4);
  auto wf = generator.Generate(workflow::WorkflowType::kMixed, "adapter_demo");
  if (!wf.ok()) {
    std::cerr << wf.status() << "\n";
    return 1;
  }

  InstantEngine engine;
  driver::Settings settings;
  settings.time_requirement = SecondsToMicros(0.5);
  settings.think_time = SecondsToMicros(1.0);
  settings.data_size_label = "100m";
  driver::BenchmarkDriver driver(settings, &engine, *catalog);
  if (auto prep = driver.PrepareEngine(); !prep.ok()) {
    std::cerr << prep.status() << "\n";
    return 1;
  }

  std::vector<driver::QueryRecord> records;
  if (auto st = driver.RunWorkflow(*wf, &records); !st.ok()) {
    std::cerr << st << "\n";
    return 1;
  }

  std::printf("custom adapter '%s' ran %zu queries\n\n",
              engine.name().c_str(), records.size());
  std::vector<const driver::QueryRecord*> ptrs;
  for (const auto& r : records) ptrs.push_back(&r);
  const report::SummaryRow summary = report::Summarize("instant", ptrs);
  std::printf("tr violations: %.1f%%  mean MRE: %.3f  out-of-margin: %.1f%%\n",
              summary.tr_violation_rate * 100.0, summary.mean_mre,
              summary.out_of_margin_rate * 100.0);
  std::printf(
      "\nthe injected +/-5%% noise shows up as a ~2.5%% mean relative error\n"
      "and a nonzero out-of-margin rate, while the fixed 200 ms latency\n"
      "never violates TR=0.5s — the metrics separate speed from quality.\n");
  return 0;
}
