/// \file custom_dataset.cpp
/// Bringing your own dataset (paper §4.2: "users can use any other
/// dataset to customize the benchmark", §3.2: "scale any seed dataset to
/// an arbitrary size while preserving the original distributions").
///
/// The example writes a small retail-orders CSV, loads it through the
/// CSV reader, scales it 20x with the paper's Cholesky/copula generator,
/// generates workflows against the scaled data, and benchmarks two
/// engines on it — demonstrating that nothing in the pipeline is
/// flights-specific.

#include <cstdio>
#include <fstream>
#include <iostream>

#include "common/random.h"
#include "common/string_util.h"
#include "core/dataset.h"
#include "datagen/cholesky_scaler.h"
#include "driver/benchmark_driver.h"
#include "engines/registry.h"
#include "report/report.h"
#include "storage/csv.h"
#include "workflow/generator.h"

using namespace idebench;

namespace {

/// Synthesizes orders.csv: region and channel drive price/quantity.
std::string WriteOrdersCsv() {
  const std::string path = "orders_seed.csv";
  std::ofstream out(path);
  out << "order_value,quantity,discount,region,channel\n";
  Rng rng(2025);
  const char* regions[] = {"north", "south", "east", "west"};
  const char* channels[] = {"web", "store", "partner"};
  for (int i = 0; i < 4000; ++i) {
    const int region = static_cast<int>(rng.Zipf(4, 0.9));
    const int channel = static_cast<int>(rng.Zipf(3, 0.7));
    const double base = 40.0 + 25.0 * region + 15.0 * channel;
    const double quantity = std::max(1.0, rng.Gaussian(3.0 + channel, 2.0));
    const double value =
        std::max(5.0, base * quantity * rng.Uniform(0.8, 1.3));
    const double discount =
        channel == 0 ? rng.Uniform(0.0, 0.3) : rng.Uniform(0.0, 0.1);
    out << FormatDouble(value, 2) << ',' << static_cast<int>(quantity) << ','
        << FormatDouble(discount, 3) << ',' << regions[region] << ','
        << channels[channel] << "\n";
  }
  return path;
}

}  // namespace

int main() {
  // 1. Load the seed CSV with an explicit schema.
  const std::string csv_path = WriteOrdersCsv();
  storage::Schema schema({
      {"order_value", storage::DataType::kDouble,
       storage::AttributeKind::kQuantitative},
      {"quantity", storage::DataType::kInt64,
       storage::AttributeKind::kQuantitative},
      {"discount", storage::DataType::kDouble,
       storage::AttributeKind::kQuantitative},
      {"region", storage::DataType::kString, storage::AttributeKind::kNominal},
      {"channel", storage::DataType::kString,
       storage::AttributeKind::kNominal},
  });
  auto seed = storage::ReadCsv(csv_path, "orders", schema);
  if (!seed.ok()) {
    std::cerr << seed.status() << "\n";
    return 1;
  }
  std::printf("loaded %lld seed rows from %s\n",
              static_cast<long long>(seed->num_rows()), csv_path.c_str());

  // 2. Scale 20x with the paper's generator (no derived columns here).
  datagen::ScalerConfig scaler;
  scaler.target_rows = seed->num_rows() * 20;
  scaler.seed = 11;
  auto scaled = datagen::ScaleDataset(*seed, scaler);
  if (!scaled.ok()) {
    std::cerr << scaled.status() << "\n";
    return 1;
  }
  auto catalog = std::make_shared<storage::Catalog>();
  if (auto st = catalog->AddTable(std::make_shared<storage::Table>(
          std::move(scaled).MoveValueUnsafe()));
      !st.ok()) {
    std::cerr << st << "\n";
    return 1;
  }
  catalog->set_nominal_rows(200'000'000);  // pretend it is 200 M orders
  std::printf("scaled to %lld rows (representing 200M)\n",
              static_cast<long long>(catalog->fact_table()->num_rows()));

  // 3. Generate workflows against the custom schema.  The generator
  //    needs column weights only for the flights schema; for custom data
  //    it falls back to whatever columns exist — check it found some.
  workflow::GeneratorConfig generator_config;
  workflow::WorkflowGenerator generator(catalog->fact_table(),
                                        generator_config, 8);
  auto wf = generator.Generate(workflow::WorkflowType::kMixed, "orders_mix");
  if (!wf.ok()) {
    std::cerr << wf.status() << "\n";
    return 1;
  }

  // 4. Benchmark two engines on the same workflow.
  auto oracle = std::make_shared<driver::GroundTruthOracle>(catalog);
  for (const std::string& name :
       {std::string("blocking"), std::string("progressive")}) {
    auto engine = engines::CreateEngine(name);
    if (!engine.ok()) {
      std::cerr << engine.status() << "\n";
      return 1;
    }
    driver::Settings settings;
    settings.time_requirement = SecondsToMicros(1.0);
    settings.think_time = SecondsToMicros(1.0);
    settings.data_size_label = "200m";
    driver::BenchmarkDriver driver(settings, engine->get(), catalog, oracle);
    if (auto prep = driver.PrepareEngine(); !prep.ok()) {
      std::cerr << prep.status() << "\n";
      return 1;
    }
    std::vector<driver::QueryRecord> records;
    if (auto st = driver.RunWorkflow(*wf, &records); !st.ok()) {
      std::cerr << st << "\n";
      return 1;
    }
    std::vector<const driver::QueryRecord*> ptrs;
    for (const auto& r : records) ptrs.push_back(&r);
    const report::SummaryRow row = report::Summarize(name, ptrs);
    std::printf("%-12s: %zu queries, %s TR violations, %.1f%% missing bins, "
                "MRE median %.3f\n",
                name.c_str(), records.size(),
                FormatPercent(row.tr_violation_rate).c_str(),
                row.mean_missing_bins * 100.0, row.median_mre);
  }
  std::remove(csv_path.c_str());
  return 0;
}
