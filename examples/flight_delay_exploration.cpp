/// \file flight_delay_exploration.cpp
/// The paper's §2.1 use case, transplanted to the flights dataset: an
/// analyst explores delays the way Jean explores hospital admissions —
/// overview first, then zoom and filter, with linked visualizations.
///
/// The example builds the dashboard interaction by interaction through
/// the public API, runs it on the progressive engine, and narrates what
/// each (approximate) result shows, including margins of error.

#include <cstdio>
#include <iostream>

#include "core/dataset.h"
#include "driver/benchmark_driver.h"
#include "engines/progressive_engine.h"
#include "query/sql.h"
#include "report/report.h"

using namespace idebench;

namespace {

query::VizSpec Histogram(const std::string& name, const std::string& column,
                         int64_t bins) {
  query::VizSpec viz;
  viz.name = name;
  viz.source = "flights";
  query::BinDimension dim;
  dim.column = column;
  dim.mode = bins > 0 ? query::BinningMode::kFixedCount
                      : query::BinningMode::kNominal;
  dim.requested_bins = bins;
  viz.bins.push_back(dim);
  query::AggregateSpec count;
  count.type = query::AggregateType::kCount;
  viz.aggregates.push_back(count);
  return viz;
}

expr::FilterExpr RangeFilter(const std::string& column, double lo, double hi) {
  expr::FilterExpr f;
  expr::Predicate p;
  p.column = column;
  p.op = expr::CompareOp::kRange;
  p.lo = lo;
  p.hi = hi;
  f.And(p);
  return f;
}

void Narrate(const driver::QueryRecord& r, const char* story) {
  std::printf("  [%s] %s\n", r.viz_name.c_str(), story);
  std::printf("      -> %lld/%lld bins in %.2fs, mean rel. error %.1f%%, "
              "mean margin %.1f%%%s\n",
              static_cast<long long>(r.metrics.bins_delivered),
              static_cast<long long>(r.metrics.bins_in_gt),
              MicrosToSeconds(r.end_time - r.start_time),
              r.metrics.mean_rel_error * 100.0,
              r.metrics.mean_margin_rel * 100.0,
              r.metrics.tr_violated ? "  (TIME REQUIREMENT VIOLATED)" : "");
}

}  // namespace

int main() {
  // A 100 M-row (nominal) flights dataset, materialized small.
  core::DatasetConfig dataset = core::SmallDataset();
  dataset.actual_rows = 80'000;
  dataset.seed_rows = 30'000;
  auto catalog_result = core::BuildFlightsCatalog(dataset);
  if (!catalog_result.ok()) {
    std::cerr << catalog_result.status() << "\n";
    return 1;
  }
  auto catalog = *catalog_result;

  engines::ProgressiveEngine engine;
  driver::Settings settings;
  settings.time_requirement = SecondsToMicros(1.0);
  settings.think_time = SecondsToMicros(3.0);
  settings.data_size_label = core::DataSizeLabel(dataset.nominal_rows);
  driver::BenchmarkDriver driver(settings, &engine, catalog);
  auto prep = driver.PrepareEngine();
  if (!prep.ok()) {
    std::cerr << prep.status() << "\n";
    return 1;
  }
  std::printf("connected; data preparation took %.0fs (virtual)\n\n",
              MicrosToSeconds(*prep));

  // The exploration session, as a workflow.
  using workflow::Interaction;
  workflow::Workflow session;
  session.name = "delay_exploration";
  session.type = workflow::WorkflowType::kSequential;

  // 1. Overview: distribution of departure delays.
  session.interactions.push_back(
      Interaction::CreateViz(Histogram("delays", "dep_delay", 50)));
  // 2. When do flights leave?  Departures per hour of day.
  session.interactions.push_back(
      Interaction::CreateViz(Histogram("by_hour", "dep_time", 24)));
  // 3. Link the hour histogram to the delay histogram: brushing a time
  //    range now filters the delay distribution.
  session.interactions.push_back(Interaction::Link("by_hour", "delays"));
  // 4. The evening bump: brush 17:00-22:00.
  session.interactions.push_back(Interaction::SetSelection(
      "by_hour", RangeFilter("dep_time", 17.0, 22.0)));
  // 5. Who flies then?  Carrier histogram, linked from the hour brush.
  session.interactions.push_back(
      Interaction::CreateViz(Histogram("carriers", "day_of_week", 0)));
  session.interactions.push_back(Interaction::Link("by_hour", "carriers"));
  // 6. Drill down: long-haul evening flights only.
  session.interactions.push_back(Interaction::SetFilter(
      "delays", RangeFilter("distance", 1500.0, 6000.0)));

  std::vector<driver::QueryRecord> records;
  auto status = driver.RunWorkflow(session, &records);
  if (!status.ok()) {
    std::cerr << status << "\n";
    return 1;
  }

  static const char* kStories[] = {
      "overview: departure delays are heavily right-skewed",
      "departures cluster in morning / midday / evening peaks",
      "brushing hours now cross-filters the delay histogram",
      "evening departures (17-22h): delays shift right (knock-on delays)",
      "weekday distribution of those evening flights",
      "the weekday histogram follows the same brush",
      "long-haul evening flights: the delay tail grows further",
  };
  std::printf("exploration transcript:\n");
  for (size_t i = 0; i < records.size(); ++i) {
    Narrate(records[i],
            i < std::size(kStories) ? kStories[i] : "linked update");
  }

  std::printf("\nSQL issued for the final drill-down:\n  %s\n",
              records.back().sql.c_str());
  std::printf("\nsession summary:\n%s",
              report::RenderDetailedTable(records, records.size()).c_str());
  return 0;
}
