/// \file quickstart.cpp
/// Minimal end-to-end IDEBench run: build a small flights dataset, run
/// the mixed-workflow suite against the progressive engine at two time
/// requirements, and print the summary report.
///
/// Usage: example_quickstart [engine]
///   engine: blocking | online | progressive | stratified | frontend

#include <cstdio>
#include <iostream>

#include "core/idebench.h"

int main(int argc, char** argv) {
  using namespace idebench;

  core::BenchmarkConfig config;
  config.engine = argc > 1 ? argv[1] : "progressive";
  // Keep the quickstart fast: a 100 M-nominal dataset materialized at
  // 50 k rows, two TRs, three mixed workflows.
  config.dataset = core::SmallDataset();
  config.dataset.actual_rows = 50'000;
  config.dataset.seed_rows = 20'000;
  config.time_requirements_s = {0.5, 3.0};
  config.workflows_per_type = 3;

  auto outcome = core::RunBenchmark(config);
  if (!outcome.ok()) {
    std::cerr << "benchmark failed: " << outcome.status() << "\n";
    return 1;
  }

  std::printf("IDEBench quickstart — engine '%s', dataset %s\n",
              config.engine.c_str(),
              core::DataSizeLabel(config.dataset.nominal_rows).c_str());
  std::printf("data preparation time: %.1f s (virtual)\n\n",
              MicrosToSeconds(outcome->data_preparation_time));
  std::cout << report::RenderSummaryTable(outcome->summary) << "\n";
  std::cout << "First queries of the detailed report:\n"
            << report::RenderDetailedTable(outcome->records, 12);
  return 0;
}
