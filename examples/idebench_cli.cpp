/// \file idebench_cli.cpp
/// The IDEBench command-line driver (paper §4.4: "a simple command line
/// application configured to load and simulate workflows").
///
/// Usage:
///   example_idebench_cli [options]
///     --engine NAME        blocking|online|progressive|stratified|frontend
///     --size N             nominal rows: 100m | 500m | 1b (default 500m)
///     --rows N             materialized rows (default 120000)
///     --tr SECONDS         time requirement, repeatable (default 0.5,1,3,5,10)
///     --think SECONDS      think time (default 1)
///     --workflows N        workflows per type (default 10)
///     --types LIST         comma list: independent,sequential,one_to_n,
///                          n_to_one,mixed (default mixed)
///     --normalized         use the star-schema layout
///     --threads N          execution threads: 1 = single-threaded path
///                          (default), 0 = all cores, n = n-way morsel
///                          parallelism (results identical for any n)
///     --sessions N         concurrent exploration sessions served by one
///                          shared engine (default 1 = the legacy single
///                          client; try 1/4/16/64 for the concurrency
///                          sweep)
///     --reuse-cache        enable the cross-interaction result-reuse
///                          cache (physical work only; results identical)
///     --seed N             master seed (default 7)
///     --report FILE        write the detailed report CSV here
///     --save-workflows DIR write generated workflow JSON files here

#include <cstdio>
#include <cstring>
#include <iostream>

#include "common/string_util.h"
#include "core/idebench.h"

using namespace idebench;

namespace {

int64_t ParseSize(const std::string& text) {
  if (text == "100m") return 100'000'000;
  if (text == "500m") return 500'000'000;
  if (text == "1b") return 1'000'000'000;
  return std::atoll(text.c_str());
}

void PrintUsageAndExit() {
  std::fprintf(stderr, "see the header of examples/idebench_cli.cpp\n");
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  core::BenchmarkConfig config;
  config.engine = "progressive";
  config.dataset = core::MediumDataset();
  config.dataset.actual_rows = 120'000;
  std::vector<double> trs;
  std::string report_path;
  std::string workflow_dir;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) PrintUsageAndExit();
      return argv[++i];
    };
    if (arg == "--engine") {
      config.engine = next();
    } else if (arg == "--size") {
      config.dataset.nominal_rows = ParseSize(next());
    } else if (arg == "--rows") {
      config.dataset.actual_rows = std::atoll(next().c_str());
    } else if (arg == "--tr") {
      trs.push_back(std::atof(next().c_str()));
    } else if (arg == "--think") {
      config.think_time_s = std::atof(next().c_str());
    } else if (arg == "--threads") {
      config.threads = std::atoi(next().c_str());
    } else if (arg == "--sessions") {
      config.sessions = std::atoi(next().c_str());
    } else if (arg == "--workflows") {
      config.workflows_per_type = std::atoi(next().c_str());
    } else if (arg == "--types") {
      config.workflow_types.clear();
      for (const std::string& name : Split(next(), ',')) {
        auto type = workflow::WorkflowTypeFromName(Trim(name));
        if (!type.ok()) {
          std::cerr << type.status() << "\n";
          return 2;
        }
        config.workflow_types.push_back(*type);
      }
    } else if (arg == "--reuse-cache") {
      config.reuse_cache = true;
    } else if (arg == "--normalized") {
      config.dataset.normalized = true;
    } else if (arg == "--seed") {
      config.seed = static_cast<uint64_t>(std::atoll(next().c_str()));
    } else if (arg == "--report") {
      report_path = next();
    } else if (arg == "--save-workflows") {
      workflow_dir = next();
    } else if (arg == "--help" || arg == "-h") {
      PrintUsageAndExit();
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      PrintUsageAndExit();
    }
  }
  if (!trs.empty()) config.time_requirements_s = trs;

  if (!workflow_dir.empty()) {
    // Generate and persist the workflow suite without running it.
    auto catalog = core::BuildFlightsCatalog(config.dataset);
    if (!catalog.ok()) {
      std::cerr << catalog.status() << "\n";
      return 1;
    }
    workflow::GeneratorConfig generator_config;
    workflow::WorkflowGenerator generator((*catalog)->fact_table(),
                                          generator_config, config.seed);
    int written = 0;
    for (workflow::WorkflowType type : config.workflow_types) {
      for (int i = 0; i < config.workflows_per_type; ++i) {
        const std::string name =
            std::string(workflow::WorkflowTypeName(type)) + "_" +
            std::to_string(i);
        auto wf = generator.Generate(type, name);
        if (!wf.ok()) {
          std::cerr << wf.status() << "\n";
          return 1;
        }
        const std::string path = workflow_dir + "/" + name + ".json";
        if (auto st = wf->SaveToFile(path); !st.ok()) {
          std::cerr << st << "\n";
          return 1;
        }
        ++written;
      }
    }
    std::printf("wrote %d workflow files to %s\n", written,
                workflow_dir.c_str());
    return 0;
  }

  std::printf(
      "engine=%s size=%s rows=%lld think=%.1fs types=%zu x %d threads=%d "
      "sessions=%d\n",
      config.engine.c_str(),
      core::DataSizeLabel(config.dataset.nominal_rows).c_str(),
      static_cast<long long>(config.dataset.EffectiveActualRows()),
      config.think_time_s, config.workflow_types.size(),
      config.workflows_per_type, config.threads, config.sessions);

  auto outcome = core::RunBenchmark(config);
  if (!outcome.ok()) {
    std::cerr << "benchmark failed: " << outcome.status() << "\n";
    return 1;
  }

  std::printf("data preparation time: %.1f min (virtual)\n\n",
              MicrosToSeconds(outcome->data_preparation_time) / 60.0);
  std::cout << report::RenderSummaryTable(outcome->summary);
  if (config.reuse_cache) {
    std::cout << "\n" << report::RenderReuseStats(outcome->reuse) << "\n";
  }
  if (config.sessions > 1) {
    std::cout << "\n" << report::RenderSessionStats(outcome->scheduler) << "\n";
  }

  if (!report_path.empty()) {
    if (auto st = report::WriteDetailedReport(outcome->records, report_path);
        !st.ok()) {
      std::cerr << st << "\n";
      return 1;
    }
    std::printf("\ndetailed report: %s (%zu rows)\n", report_path.c_str(),
                outcome->records.size());
  }
  return 0;
}
