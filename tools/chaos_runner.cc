/// \file chaos_runner.cc
/// Chaos sweep driver: runs seed x scenario x engine combinations of the
/// deterministic fault-injection harness and reports every invariant
/// violation found.
///
/// Usage:
///   chaos_runner [--seeds N] [--seed-base B] [--scenario NAME]
///                [--engine NAME] [--list] [--replay SEED] [--verbose]
///
///   --seeds N        seeds per (scenario, engine) cell (default 20)
///   --seed-base B    first seed of the sweep (default 1)
///   --scenario NAME  restrict to one catalog scenario (default: all)
///   --engine NAME    restrict to one engine (default: all built-ins)
///   --list           print the scenario catalog and exit
///   --replay SEED    run one (scenario, engine, seed) cell and dump its
///                    full deterministic event log + fault summary
///                    (requires --scenario and --engine)
///   --verbose        per-cell stats lines even when everything passes
///
/// Every cell runs the injected schedule and, when the scenario arms
/// faults, an uninjected reference run for the result-identity check.
/// Exit status is the number of failing cells (capped at 99).

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "chaos/scenario.h"
#include "engines/registry.h"

namespace {

using idebench::chaos::ChaosReport;
using idebench::chaos::FindScenario;
using idebench::chaos::InvariantViolation;
using idebench::chaos::RunScenarioWithReference;
using idebench::chaos::ScenarioCatalog;
using idebench::chaos::ScenarioSpec;

struct Args {
  int seeds = 20;
  uint64_t seed_base = 1;
  std::string scenario;
  std::string engine;
  bool list = false;
  bool verbose = false;
  bool replay = false;
  uint64_t replay_seed = 0;
};

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--seeds") {
      const char* v = next();
      if (v == nullptr) return false;
      args->seeds = std::atoi(v);
    } else if (arg == "--seed-base") {
      const char* v = next();
      if (v == nullptr) return false;
      args->seed_base = std::strtoull(v, nullptr, 10);
    } else if (arg == "--scenario") {
      const char* v = next();
      if (v == nullptr) return false;
      args->scenario = v;
    } else if (arg == "--engine") {
      const char* v = next();
      if (v == nullptr) return false;
      args->engine = v;
    } else if (arg == "--replay") {
      const char* v = next();
      if (v == nullptr) return false;
      args->replay = true;
      args->replay_seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--list") {
      args->list = true;
    } else if (arg == "--verbose") {
      args->verbose = true;
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return false;
    }
  }
  return true;
}

void PrintCatalog() {
  std::cout << "scenario catalog:\n";
  for (const ScenarioSpec& spec : ScenarioCatalog()) {
    std::cout << "  " << spec.name << (spec.has_faults() ? "  [faults]" : "")
              << "\n      " << spec.description << "\n";
  }
}

std::string CellName(const ChaosReport& r) {
  return r.scenario + " / " + r.engine + " / seed " + std::to_string(r.seed);
}

void PrintReport(const ChaosReport& r, bool full_log) {
  std::cout << CellName(r) << (r.ok() ? ": ok" : ": FAILED") << "\n";
  const auto& s = r.stats;
  std::cout << "  submitted=" << s.queries_submitted
            << " completed=" << s.completed
            << " deadline=" << s.deadline_cancelled
            << " client=" << s.client_cancelled
            << " unsupported=" << s.unsupported << " failed=" << s.failed
            << " transient_faults=" << s.transient_faults
            << " retries=" << s.retries << " fires=" << r.total_fires
            << " prepare_attempts=" << r.prepare_attempts << "\n";
  if (!r.run_error.ok()) {
    std::cout << "  run error: " << r.run_error.ToString() << "\n";
  }
  for (const InvariantViolation& v : r.violations) {
    std::cout << "  violation [" << v.invariant << "] " << v.detail << "\n";
  }
  if (full_log) {
    if (!r.fault_summary.empty()) {
      std::cout << "fault summary:\n" << r.fault_summary;
    }
    std::cout << "event log (" << r.event_log.size() << " lines):\n";
    for (const std::string& line : r.event_log) {
      std::cout << "  " << line << "\n";
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    std::cerr << "usage: chaos_runner [--seeds N] [--seed-base B] "
                 "[--scenario NAME] [--engine NAME] [--list] "
                 "[--replay SEED] [--verbose]\n";
    return 100;
  }
  if (args.list) {
    PrintCatalog();
    return 0;
  }

  std::vector<const ScenarioSpec*> scenarios;
  if (!args.scenario.empty()) {
    const ScenarioSpec* spec = FindScenario(args.scenario);
    if (spec == nullptr) {
      std::cerr << "unknown scenario '" << args.scenario << "' (--list)\n";
      return 100;
    }
    scenarios.push_back(spec);
  } else {
    for (const ScenarioSpec& spec : ScenarioCatalog()) {
      scenarios.push_back(&spec);
    }
  }

  std::vector<std::string> engines;
  if (!args.engine.empty()) {
    engines.push_back(args.engine);
  } else {
    engines = idebench::engines::BuiltinEngineNames();
  }

  if (args.replay) {
    if (scenarios.size() != 1 || engines.size() != 1) {
      std::cerr << "--replay needs --scenario and --engine\n";
      return 100;
    }
    const ChaosReport report = RunScenarioWithReference(
        *scenarios[0], engines[0], args.replay_seed);
    PrintReport(report, /*full_log=*/true);
    return report.ok() ? 0 : 1;
  }

  int failures = 0;
  int cells = 0;
  for (const ScenarioSpec* spec : scenarios) {
    for (const std::string& engine : engines) {
      for (int s = 0; s < args.seeds; ++s) {
        const uint64_t seed = args.seed_base + static_cast<uint64_t>(s);
        const ChaosReport report =
            RunScenarioWithReference(*spec, engine, seed);
        ++cells;
        if (!report.ok()) {
          ++failures;
          PrintReport(report, /*full_log=*/false);
          std::cout << "  replay: chaos_runner --scenario " << spec->name
                    << " --engine " << engine << " --replay " << seed << "\n";
        } else if (args.verbose) {
          PrintReport(report, /*full_log=*/false);
        }
      }
    }
  }
  std::cout << "chaos sweep: " << cells - failures << "/" << cells
            << " cells passed\n";
  return failures > 99 ? 99 : failures;
}
