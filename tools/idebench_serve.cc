/// \file idebench_serve.cc
/// Standalone serving front-end: binds the overload-hardened socket
/// server (net/server.h) over one simulated engine and the synthetic
/// flights dataset, and serves framed-JSON clients until SIGINT/SIGTERM.
///
/// Usage:
///   idebench_serve [--port P] [--host H] [--engine NAME] [--rows N]
///                  [--nominal N] [--seed S] [--threads N]
///                  [--time-requirement US] [--quantum US]
///                  [--soft N] [--hard N] [--virtual] [--reuse-cache]
///                  [--ingest-rate R] [--ingest-tail N]
///
///   --port P              listening port (default 8765; 0 = ephemeral)
///   --host H              bind address (default 127.0.0.1)
///   --engine NAME         engine to serve (default progressive)
///   --rows N              synthetic seed rows (default 50000)
///   --nominal N           nominal dataset size for estimates (default 10M)
///   --seed S              datagen + engine seed (default 42)
///   --threads N           engine execution threads (default 1)
///   --time-requirement US per-interaction deadline (default 3s)
///   --quantum US          scheduler slice (default 50ms)
///   --soft N / --hard N   ratekeeper live-query limits (default 32/64)
///   --virtual             virtual-clock pacing instead of wall pacing
///   --reuse-cache         enable the cross-interaction reuse cache
///   --ingest-rate R       replay a CSV tail through `append` frames at R
///                         rows/sec (default 0 = no ingest); each batch
///                         publishes its epoch, so serve_bench clients see
///                         the watermark advance while they query
///   --ingest-tail N       rows generated beyond --rows as the ingest
///                         tail (default 5000; exhausted tail ends the
///                         feed, serving continues)
///   --wal-dir DIR         durable ingest: log appends/publishes to a
///                         write-ahead log in DIR.  When DIR already
///                         holds a log, the committed epochs are
///                         recovered over the (re-generated, identical)
///                         baseline before serving and the feed resumes
///                         past them; otherwise a fresh log starts.
///                         `append` replies gain "durable", SIGTERM
///                         drains the log before exit.
///   --wal-sync MODE       every_commit (default) | grouped | none
///   --wal-group N         commits per fsync under grouped (default 8)
///
/// The bound port is printed as the first stdout line ("listening HOST
/// PORT"), so callers binding port 0 can discover it.  On shutdown the
/// server drains every connection and prints a stats summary.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "datagen/flights_seed.h"
#include "engines/registry.h"
#include "ingest/ingest.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "storage/catalog.h"

namespace {

using idebench::JsonValue;
using idebench::Micros;
using idebench::net::Client;
using idebench::net::Server;
using idebench::net::ServerOptions;

struct Args {
  int port = 8765;
  std::string host = "127.0.0.1";
  std::string engine = "progressive";
  int64_t rows = 50'000;
  int64_t nominal = 10'000'000;
  uint64_t seed = 42;
  int threads = 1;
  Micros time_requirement = 3'000'000;
  Micros quantum = 50'000;
  int soft = 32;
  int hard = 64;
  bool wall = true;
  bool reuse_cache = false;
  double ingest_rate = 0.0;
  int64_t ingest_tail = 5'000;
  std::string wal_dir;
  std::string wal_sync = "every_commit";
  int64_t wal_group = 8;
};

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--port" && (v = next())) {
      args->port = std::atoi(v);
    } else if (arg == "--host" && (v = next())) {
      args->host = v;
    } else if (arg == "--engine" && (v = next())) {
      args->engine = v;
    } else if (arg == "--rows" && (v = next())) {
      args->rows = std::strtoll(v, nullptr, 10);
    } else if (arg == "--nominal" && (v = next())) {
      args->nominal = std::strtoll(v, nullptr, 10);
    } else if (arg == "--seed" && (v = next())) {
      args->seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--threads" && (v = next())) {
      args->threads = std::atoi(v);
    } else if (arg == "--time-requirement" && (v = next())) {
      args->time_requirement = std::strtoll(v, nullptr, 10);
    } else if (arg == "--quantum" && (v = next())) {
      args->quantum = std::strtoll(v, nullptr, 10);
    } else if (arg == "--soft" && (v = next())) {
      args->soft = std::atoi(v);
    } else if (arg == "--hard" && (v = next())) {
      args->hard = std::atoi(v);
    } else if (arg == "--virtual") {
      args->wall = false;
    } else if (arg == "--reuse-cache") {
      args->reuse_cache = true;
    } else if (arg == "--ingest-rate" && (v = next())) {
      args->ingest_rate = std::strtod(v, nullptr);
    } else if (arg == "--ingest-tail" && (v = next())) {
      args->ingest_tail = std::strtoll(v, nullptr, 10);
    } else if (arg == "--wal-dir" && (v = next())) {
      args->wal_dir = v;
    } else if (arg == "--wal-sync" && (v = next())) {
      args->wal_sync = v;
    } else if (arg == "--wal-group" && (v = next())) {
      args->wal_group = std::strtoll(v, nullptr, 10);
    } else {
      std::cerr << "unknown or incomplete argument: " << arg << "\n";
      return false;
    }
  }
  return true;
}

std::atomic<Server*> g_server{nullptr};
std::atomic<bool> g_stop_feed{false};

void HandleSignal(int) {
  g_stop_feed.store(true, std::memory_order_release);
  Server* server = g_server.load(std::memory_order_acquire);
  if (server != nullptr) server->RequestStop();
}

/// Replays the generated tail rows `[begin, source->num_rows())` through
/// the wire `append` frame as a loopback client: each tick serializes a
/// batch to CSV text (the append frame's field contract), parses it back
/// through `BatchFromCsvLines`, sends it with publish=true, and honors
/// explicit rejections by retrying the same rows next tick — so ingest
/// backs off exactly when the ratekeeper sheds it.
void IngestFeed(const std::string& host, int port,
                std::shared_ptr<const idebench::storage::Table> source,
                int64_t begin, double rate) {
  constexpr Micros kTick = 250'000;
  const int64_t per_tick = std::max<int64_t>(
      1, static_cast<int64_t>(std::llround(rate * kTick / 1e6)));

  auto client = Client::Connect(host, port, "ingest-feeder");
  if (!client.ok()) {
    std::cerr << "ingest feeder connect failed: "
              << client.status().ToString() << "\n";
    return;
  }

  int64_t cursor = begin;
  int64_t request = 0;
  int64_t rows_appended = 0;
  int64_t epochs = 0;
  int64_t rejected = 0;
  while (!g_stop_feed.load(std::memory_order_acquire) &&
         cursor < source->num_rows()) {
    const auto tick_start = std::chrono::steady_clock::now();
    const int64_t end = std::min(cursor + per_tick, source->num_rows());

    std::vector<std::string> lines;
    lines.reserve(static_cast<size_t>(end - cursor));
    for (int64_t r = cursor; r < end; ++r) {
      std::string line;
      for (int c = 0; c < source->num_columns(); ++c) {
        if (c > 0) line += ',';
        line += source->column(c).ValueAsString(r);
      }
      lines.push_back(std::move(line));
    }
    auto batch =
        idebench::ingest::BatchFromCsvLines(lines, source->num_columns());
    if (!batch.ok()) {
      std::cerr << "ingest feeder: " << batch.status().ToString() << "\n";
      return;
    }

    JsonValue msg = JsonValue::Object();
    msg.Set("type", "append");
    msg.Set("request", ++request);
    JsonValue rows = JsonValue::Array();
    for (const std::vector<std::string>& row : batch->rows) {
      JsonValue wire_row = JsonValue::Array();
      for (const std::string& field : row) wire_row.Append(field);
      rows.Append(std::move(wire_row));
    }
    msg.Set("rows", std::move(rows));
    msg.Set("publish", true);
    if (!(*client)->Send(msg).ok()) break;

    bool advanced = false;
    JsonValue reply;
    while (true) {
      auto got = (*client)->Next(&reply, 5 * idebench::kMicrosPerSecond);
      if (!got.ok() || !*got) break;  // torn feed: the server serves on
      const std::string type = idebench::net::MessageType(reply);
      if (type == "appended") {
        advanced = true;
        break;
      }
      if (type == "rejected") {
        ++rejected;
        break;  // shed under load: retry the same rows next tick
      }
    }
    if (advanced) {
      rows_appended += end - cursor;
      ++epochs;
      cursor = end;
    }

    std::this_thread::sleep_until(tick_start +
                                  std::chrono::microseconds(kTick));
  }
  std::cout << "ingest feed done: rows=" << rows_appended
            << " epochs=" << epochs << " shed=" << rejected << "\n"
            << std::flush;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    std::cerr << "usage: idebench_serve [--port P] [--host H] "
                 "[--engine NAME] [--rows N] [--nominal N] [--seed S] "
                 "[--threads N] [--time-requirement US] [--quantum US] "
                 "[--soft N] [--hard N] [--virtual] [--reuse-cache] "
                 "[--ingest-rate R] [--ingest-tail N] [--wal-dir DIR] "
                 "[--wal-sync MODE] [--wal-group N]\n";
    return 2;
  }

  const bool ingest_on = args.ingest_rate > 0.0 && args.ingest_tail > 0;

  idebench::datagen::FlightsSeedConfig datagen;
  datagen.rows = args.rows + (ingest_on ? args.ingest_tail : 0);
  datagen.seed = args.seed;
  auto table = idebench::datagen::GenerateFlightsSeed(datagen);
  if (!table.ok()) {
    std::cerr << "datagen failed: " << table.status().ToString() << "\n";
    return 1;
  }
  auto source = std::make_shared<idebench::storage::Table>(
      std::move(table).MoveValueUnsafe());

  // Under ingest the generated table splits in two: the first --rows rows
  // seed the served fact table, the tail replays through `append` frames.
  auto fact = source;
  if (ingest_on) {
    fact = std::make_shared<idebench::storage::Table>(source->name(),
                                                      source->schema());
    for (int64_t r = 0; r < args.rows; ++r) {
      if (const auto st = fact->AppendRowFrom(*source, r); !st.ok()) {
        std::cerr << "seed copy failed: " << st.ToString() << "\n";
        return 1;
      }
    }
  }

  auto catalog = std::make_shared<idebench::storage::Catalog>();
  if (const auto st = catalog->AddTable(fact); !st.ok()) {
    std::cerr << "catalog failed: " << st.ToString() << "\n";
    return 1;
  }
  catalog->set_nominal_rows(args.nominal);

  std::unique_ptr<idebench::ingest::Ingestor> ingestor;
  int64_t feed_begin = args.rows;
  if (ingest_on) {
    if (!args.wal_dir.empty()) {
      idebench::ingest::WalOptions wal_options;
      if (args.wal_sync == "every_commit") {
        wal_options.sync = idebench::ingest::WalSync::kEveryCommit;
      } else if (args.wal_sync == "grouped") {
        wal_options.sync = idebench::ingest::WalSync::kGrouped;
      } else if (args.wal_sync == "none") {
        wal_options.sync = idebench::ingest::WalSync::kNone;
      } else {
        std::cerr << "unknown --wal-sync mode: " << args.wal_sync << "\n";
        return 2;
      }
      wal_options.group_commit_interval = args.wal_group;

      std::error_code ec;
      const bool have_log = std::filesystem::exists(
          idebench::ingest::Ingestor::WalPath(args.wal_dir), ec);
      if (have_log) {
        idebench::ingest::RecoverInfo info;
        auto recovered = idebench::ingest::Ingestor::Recover(
            catalog, source->num_rows(), args.wal_dir, wal_options, &info);
        if (!recovered.ok()) {
          std::cerr << "wal recovery failed: "
                    << recovered.status().ToString() << "\n";
          return 1;
        }
        ingestor = std::move(*recovered);
        // Committed epochs are back; the feed resumes past them.
        feed_begin = ingestor->visible_rows();
        std::cout << "recovered wal: epochs=" << info.epochs_replayed
                  << " rows=" << info.rows_replayed
                  << " watermark=" << info.watermark
                  << " dropped_uncommitted=" << info.uncommitted_rows_dropped
                  << " torn_bytes=" << info.torn_bytes_dropped << "\n"
                  << std::flush;
      } else {
        auto created = idebench::ingest::Ingestor::CreateDurable(
            catalog, source->num_rows(), args.wal_dir, wal_options);
        if (!created.ok()) {
          std::cerr << "durable ingestor failed: "
                    << created.status().ToString() << "\n";
          return 1;
        }
        ingestor = std::move(*created);
      }
    } else {
      auto created =
          idebench::ingest::Ingestor::Create(catalog, source->num_rows());
      if (!created.ok()) {
        std::cerr << "ingestor failed: " << created.status().ToString()
                  << "\n";
        return 1;
      }
      ingestor = std::move(*created);
    }
  }

  auto engine = idebench::engines::CreateEngine(
      args.engine, args.seed, args.threads, args.reuse_cache,
      /*sessions=*/args.hard);
  if (!engine.ok()) {
    std::cerr << "engine '" << args.engine
              << "' failed: " << engine.status().ToString() << "\n";
    return 1;
  }
  if (const auto prepared = (*engine)->Prepare(catalog); !prepared.ok()) {
    std::cerr << "prepare failed: " << prepared.status().ToString() << "\n";
    return 1;
  }

  ServerOptions options;
  options.host = args.host;
  options.port = args.port;
  options.wall_pacing = args.wall;
  options.engine_label = args.engine;
  options.scheduler.time_requirement = args.time_requirement;
  options.scheduler.quantum = args.quantum;
  options.ratekeeper.soft_live_limit = args.soft;
  options.ratekeeper.hard_live_limit = args.hard;

  auto server = Server::Create(options, engine->get(), catalog);
  if (!server.ok()) {
    std::cerr << "bind failed: " << server.status().ToString() << "\n";
    return 1;
  }
  if (ingestor != nullptr) (*server)->AttachIngestor(ingestor.get());
  g_server.store(server->get(), std::memory_order_release);
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  std::cout << "listening " << args.host << " " << (*server)->port() << "\n"
            << std::flush;
  std::thread feeder;
  if (ingestor != nullptr) {
    feeder = std::thread(IngestFeed, args.host, (*server)->port(), source,
                         feed_begin, args.ingest_rate);
  }
  const auto status = (*server)->Serve();
  g_server.store(nullptr, std::memory_order_release);
  g_stop_feed.store(true, std::memory_order_release);
  if (feeder.joinable()) feeder.join();
  // SIGTERM drain: whatever the sync policy left unsynced reaches disk
  // before we exit, so a clean shutdown loses nothing.
  if (ingestor != nullptr) {
    if (const auto st = ingestor->SyncWal(); !st.ok()) {
      std::cerr << "wal drain failed: " << st.ToString() << "\n";
    }
  }
  if (!status.ok()) {
    std::cerr << "serve failed: " << status.ToString() << "\n";
    return 1;
  }

  const auto& stats = (*server)->stats();
  const auto rk = (*server)->ratekeeper().stats();
  std::cout << "drained: connections=" << stats.connections_accepted
            << " frames_in=" << stats.frames_received
            << " updates_out=" << stats.updates_sent
            << " coalesced=" << stats.partials_coalesced
            << " dropped=" << stats.partials_dropped
            << " slow_disconnects=" << stats.slow_client_disconnects
            << " admitted=" << rk.admitted << " degraded=" << rk.degraded
            << " throttled=" << rk.throttled << " rejected=" << rk.rejected
            << " max_backlog=" << stats.max_backlog << "\n";
  if (ingestor != nullptr) {
    const auto& in = ingestor->stats();
    std::cout << "ingested: rows=" << in.rows_staged
              << " epochs=" << in.epochs_published
              << " rejected=" << in.rejected_rows
              << " visible=" << ingestor->visible_rows()
              << " staged=" << ingestor->staged_rows() << "\n";
    if (ingestor->wal() != nullptr) {
      const auto& ws = ingestor->wal()->stats();
      std::cout << "wal: batches=" << ws.batches_logged
                << " commits=" << ws.commits_logged
                << " syncs=" << ws.syncs << " bytes=" << ws.bytes_logged
                << " durable=" << (ingestor->durable() ? "true" : "false")
                << "\n";
    }
  }
  return 0;
}
