/// \file idebench_serve.cc
/// Standalone serving front-end: binds the overload-hardened socket
/// server (net/server.h) over one simulated engine and the synthetic
/// flights dataset, and serves framed-JSON clients until SIGINT/SIGTERM.
///
/// Usage:
///   idebench_serve [--port P] [--host H] [--engine NAME] [--rows N]
///                  [--nominal N] [--seed S] [--threads N]
///                  [--time-requirement US] [--quantum US]
///                  [--soft N] [--hard N] [--virtual] [--reuse-cache]
///
///   --port P              listening port (default 8765; 0 = ephemeral)
///   --host H              bind address (default 127.0.0.1)
///   --engine NAME         engine to serve (default progressive)
///   --rows N              synthetic seed rows (default 50000)
///   --nominal N           nominal dataset size for estimates (default 10M)
///   --seed S              datagen + engine seed (default 42)
///   --threads N           engine execution threads (default 1)
///   --time-requirement US per-interaction deadline (default 3s)
///   --quantum US          scheduler slice (default 50ms)
///   --soft N / --hard N   ratekeeper live-query limits (default 32/64)
///   --virtual             virtual-clock pacing instead of wall pacing
///   --reuse-cache         enable the cross-interaction reuse cache
///
/// The bound port is printed as the first stdout line ("listening HOST
/// PORT"), so callers binding port 0 can discover it.  On shutdown the
/// server drains every connection and prints a stats summary.

#include <atomic>
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "datagen/flights_seed.h"
#include "engines/registry.h"
#include "net/server.h"
#include "storage/catalog.h"

namespace {

using idebench::Micros;
using idebench::net::Server;
using idebench::net::ServerOptions;

struct Args {
  int port = 8765;
  std::string host = "127.0.0.1";
  std::string engine = "progressive";
  int64_t rows = 50'000;
  int64_t nominal = 10'000'000;
  uint64_t seed = 42;
  int threads = 1;
  Micros time_requirement = 3'000'000;
  Micros quantum = 50'000;
  int soft = 32;
  int hard = 64;
  bool wall = true;
  bool reuse_cache = false;
};

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--port" && (v = next())) {
      args->port = std::atoi(v);
    } else if (arg == "--host" && (v = next())) {
      args->host = v;
    } else if (arg == "--engine" && (v = next())) {
      args->engine = v;
    } else if (arg == "--rows" && (v = next())) {
      args->rows = std::strtoll(v, nullptr, 10);
    } else if (arg == "--nominal" && (v = next())) {
      args->nominal = std::strtoll(v, nullptr, 10);
    } else if (arg == "--seed" && (v = next())) {
      args->seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--threads" && (v = next())) {
      args->threads = std::atoi(v);
    } else if (arg == "--time-requirement" && (v = next())) {
      args->time_requirement = std::strtoll(v, nullptr, 10);
    } else if (arg == "--quantum" && (v = next())) {
      args->quantum = std::strtoll(v, nullptr, 10);
    } else if (arg == "--soft" && (v = next())) {
      args->soft = std::atoi(v);
    } else if (arg == "--hard" && (v = next())) {
      args->hard = std::atoi(v);
    } else if (arg == "--virtual") {
      args->wall = false;
    } else if (arg == "--reuse-cache") {
      args->reuse_cache = true;
    } else {
      std::cerr << "unknown or incomplete argument: " << arg << "\n";
      return false;
    }
  }
  return true;
}

std::atomic<Server*> g_server{nullptr};

void HandleSignal(int) {
  Server* server = g_server.load(std::memory_order_acquire);
  if (server != nullptr) server->RequestStop();
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    std::cerr << "usage: idebench_serve [--port P] [--host H] "
                 "[--engine NAME] [--rows N] [--nominal N] [--seed S] "
                 "[--threads N] [--time-requirement US] [--quantum US] "
                 "[--soft N] [--hard N] [--virtual] [--reuse-cache]\n";
    return 2;
  }

  idebench::datagen::FlightsSeedConfig datagen;
  datagen.rows = args.rows;
  datagen.seed = args.seed;
  auto table = idebench::datagen::GenerateFlightsSeed(datagen);
  if (!table.ok()) {
    std::cerr << "datagen failed: " << table.status().ToString() << "\n";
    return 1;
  }
  auto catalog = std::make_shared<idebench::storage::Catalog>();
  if (const auto st = catalog->AddTable(std::make_shared<idebench::storage::Table>(
          std::move(table).MoveValueUnsafe()));
      !st.ok()) {
    std::cerr << "catalog failed: " << st.ToString() << "\n";
    return 1;
  }
  catalog->set_nominal_rows(args.nominal);

  auto engine = idebench::engines::CreateEngine(
      args.engine, args.seed, args.threads, args.reuse_cache,
      /*sessions=*/args.hard);
  if (!engine.ok()) {
    std::cerr << "engine '" << args.engine
              << "' failed: " << engine.status().ToString() << "\n";
    return 1;
  }
  if (const auto prepared = (*engine)->Prepare(catalog); !prepared.ok()) {
    std::cerr << "prepare failed: " << prepared.status().ToString() << "\n";
    return 1;
  }

  ServerOptions options;
  options.host = args.host;
  options.port = args.port;
  options.wall_pacing = args.wall;
  options.engine_label = args.engine;
  options.scheduler.time_requirement = args.time_requirement;
  options.scheduler.quantum = args.quantum;
  options.ratekeeper.soft_live_limit = args.soft;
  options.ratekeeper.hard_live_limit = args.hard;

  auto server = Server::Create(options, engine->get(), catalog);
  if (!server.ok()) {
    std::cerr << "bind failed: " << server.status().ToString() << "\n";
    return 1;
  }
  g_server.store(server->get(), std::memory_order_release);
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  std::cout << "listening " << args.host << " " << (*server)->port() << "\n"
            << std::flush;
  const auto status = (*server)->Serve();
  g_server.store(nullptr, std::memory_order_release);
  if (!status.ok()) {
    std::cerr << "serve failed: " << status.ToString() << "\n";
    return 1;
  }

  const auto& stats = (*server)->stats();
  const auto rk = (*server)->ratekeeper().stats();
  std::cout << "drained: connections=" << stats.connections_accepted
            << " frames_in=" << stats.frames_received
            << " updates_out=" << stats.updates_sent
            << " coalesced=" << stats.partials_coalesced
            << " dropped=" << stats.partials_dropped
            << " slow_disconnects=" << stats.slow_client_disconnects
            << " admitted=" << rk.admitted << " degraded=" << rk.degraded
            << " throttled=" << rk.throttled << " rejected=" << rk.rejected
            << " max_backlog=" << stats.max_backlog << "\n";
  return 0;
}
