/// \file segment_pack.cc
/// Segment-file utility: pack catalogs into the compressed on-disk
/// format (storage/segment.h), inspect what a file holds, and verify
/// that a file decodes back to exactly what it claims.
///
/// Usage:
///   segment_pack pack-flights --out DIR [--nominal-rows N]
///                [--actual-rows N] [--seed S] [--normalized]
///       synthesize the flights benchmark catalog and pack it into DIR
///       (one .seg per table plus manifest.json)
///   segment_pack describe FILE.seg
///       print the footer: schema, per-segment encoding / rows / zones /
///       compressed bytes, whole-file compression ratio
///   segment_pack verify FILE.seg
///       open, validate (magic / checksum / footer bounds), fully decode,
///       and re-encode; fails when anything does not round-trip
///
/// Exit status 0 on success, 1 on any error.

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/dataset.h"
#include "storage/segment.h"

namespace {

using idebench::Result;
using idebench::Status;
using idebench::storage::SegmentEncodingName;
using idebench::storage::SegmentFile;
using idebench::storage::SegmentView;

int Fail(const Status& status) {
  std::fprintf(stderr, "segment_pack: %s\n", status.ToString().c_str());
  return 1;
}

int PackFlights(int argc, char** argv) {
  idebench::core::DatasetConfig config;
  std::string out;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--out") {
      const char* v = next();
      if (v == nullptr) return Fail(Status::Invalid("--out needs a value"));
      out = v;
    } else if (arg == "--nominal-rows") {
      const char* v = next();
      if (v == nullptr) return Fail(Status::Invalid("--nominal-rows value"));
      config.nominal_rows = std::strtoll(v, nullptr, 10);
    } else if (arg == "--actual-rows") {
      const char* v = next();
      if (v == nullptr) return Fail(Status::Invalid("--actual-rows value"));
      config.actual_rows = std::strtoll(v, nullptr, 10);
    } else if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr) return Fail(Status::Invalid("--seed value"));
      config.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--normalized") {
      config.normalized = true;
    } else {
      return Fail(Status::Invalid("unknown flag '" + arg + "'"));
    }
  }
  if (out.empty()) return Fail(Status::Invalid("pack-flights needs --out"));

  Result<std::shared_ptr<idebench::storage::Catalog>> catalog =
      idebench::core::BuildFlightsCatalog(config);
  if (!catalog.ok()) return Fail(catalog.status());
  const Status st =
      idebench::storage::WriteCatalogSegments(**catalog, out);
  if (!st.ok()) return Fail(st);
  std::printf("packed %zu table(s) into %s\n", (*catalog)->tables().size(),
              out.c_str());
  return 0;
}

int Describe(const std::string& path) {
  Result<SegmentFile> file = SegmentFile::Open(path);
  if (!file.ok()) return Fail(file.status());

  uint64_t payload = 0;
  std::printf("table   %s\n", file->table_name().c_str());
  std::printf("rows    %" PRId64 "  (%" PRId64 " segment(s) x %" PRId64
              " rows)\n",
              file->num_rows(), file->num_segments(),
              idebench::storage::kSegmentRows);
  for (int c = 0; c < file->num_columns(); ++c) {
    const auto& meta = file->column_meta(c);
    std::printf("column  %-24s", meta.field.name.c_str());
    if (!meta.dict_values.empty()) {
      std::printf("  dict=%zu", meta.dict_values.size());
    }
    std::printf("\n");
    for (int64_t s = 0; s < file->num_segments(); ++s) {
      const SegmentView& v = file->view(c, s);
      payload += v.bytes;
      std::printf("  seg %-4" PRId64 " %-10s %7" PRId64 " rows %10" PRIu64
                  " B  zone [%g, %g]",
                  s, SegmentEncodingName(v.encoding), v.rows, v.bytes,
                  v.zone.min, v.zone.max);
      if (v.zone.nan_count > 0) {
        std::printf("  nan=%" PRId64, v.zone.nan_count);
      }
      std::printf("\n");
    }
  }
  const double flat =
      static_cast<double>(file->num_rows()) * file->num_columns() * 8.0;
  std::printf("payload %" PRIu64 " B  (%.2fx vs flat, file %" PRIu64
              " B)\n",
              payload, payload > 0 ? flat / static_cast<double>(payload) : 0.0,
              file->file_bytes());
  return 0;
}

int Verify(const std::string& path) {
  Result<SegmentFile> file = SegmentFile::Open(path);
  if (!file.ok()) return Fail(file.status());
  Result<idebench::storage::Table> decoded = file->Decode();
  if (!decoded.ok()) return Fail(decoded.status());
  if (decoded->num_rows() != file->num_rows()) {
    return Fail(Status::Invalid("decoded row count mismatch"));
  }
  // Round-trip: re-encoding the decoded table must reproduce the file's
  // encodings and zone entries segment for segment.
  const std::string tmp = path + ".verify-tmp";
  Status st = idebench::storage::WriteSegmentFile(*decoded, tmp);
  if (!st.ok()) return Fail(st);
  Result<SegmentFile> reread = SegmentFile::Open(tmp);
  std::remove(tmp.c_str());
  if (!reread.ok()) return Fail(reread.status());
  for (int c = 0; c < file->num_columns(); ++c) {
    for (int64_t s = 0; s < file->num_segments(); ++s) {
      const SegmentView& a = file->view(c, s);
      const SegmentView& b = reread->view(c, s);
      if (a.encoding != b.encoding || a.bytes != b.bytes ||
          std::memcmp(a.data, b.data, a.bytes) != 0) {
        return Fail(Status::Invalid(
            "round-trip mismatch in column " +
            file->column_meta(c).field.name + " segment " +
            std::to_string(s)));
      }
    }
  }
  std::printf("ok: %s (%" PRId64 " rows, %" PRId64 " segment(s))\n",
              path.c_str(), file->num_rows(), file->num_segments());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: segment_pack pack-flights --out DIR [...]\n"
                 "       segment_pack describe FILE.seg\n"
                 "       segment_pack verify FILE.seg\n");
    return 1;
  }
  const std::string cmd = argv[1];
  if (cmd == "pack-flights") return PackFlights(argc - 2, argv + 2);
  if (cmd == "describe" && argc == 3) return Describe(argv[2]);
  if (cmd == "verify" && argc == 3) return Verify(argv[2]);
  std::fprintf(stderr, "segment_pack: unknown command '%s'\n", cmd.c_str());
  return 1;
}
